# Tier-1 gate: the fast correctness bar every change must clear.
#   make test
# Tier-2 gate: the full verification sweep — static analysis, the whole
# suite under the race detector, and a soak pass with the cycle-level
# invariant engine (config.Checks) sweeping every cycle:
#   make check
# CI should run tier-1 on every push and tier-2 before merging.

GO ?= go

.PHONY: build test vet race soak check fuzz clean

build:
	$(GO) build ./...

# Tier-1: build + full test suite.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short soak with the invariant engine on every cycle, all schemes
# (TestSoakWithChecks), plus the long-run soak's -short stub.
soak:
	$(GO) test -short -run Soak ./internal/network/

# Tier-2: everything above.
check: vet test race soak

# Optional: extended coverage-guided fuzzing of the trace parser and the
# end-to-end fuzz harness (FUZZTIME per target).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/traffic/ -run FuzzReadTrace -fuzz FuzzReadTrace -fuzztime $(FUZZTIME)
	$(GO) test ./internal/traffic/ -run FuzzNetworkEndToEnd -fuzz FuzzNetworkEndToEnd -fuzztime $(FUZZTIME)

clean:
	$(GO) clean ./...
