# Tier-1 gate: the fast correctness bar every change must clear.
#   make test
# Tier-2 gate: the full verification sweep — static analysis, the whole
# suite under the race detector, a soak pass with the cycle-level
# invariant engine (config.Checks) sweeping every cycle, and the
# benchmark regression gate against the committed BENCH_*.json baseline:
#   make check
# CI should run tier-1 on every push and tier-2 before merging.

GO ?= go

.PHONY: build test vet race soak soak-obs soak-par soak-cmp soak-serve api apicheck check fuzz clean bench bench-check

build:
	$(GO) build ./...

# Tier-1: build + full test suite.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short soak with the invariant engine on every cycle, all schemes
# (TestSoakWithChecks), plus the long-run soak's -short stub.
soak:
	$(GO) test -short -run Soak ./internal/network/

# Observability soak: the obs-enabled soak suite — every scheme with
# counter, sampler, and trace sinks attached and the invariant engine
# sweeping every cycle — plus the observed-vs-unobserved golden test,
# under vet and the race detector.
soak-obs: vet
	$(GO) test -race -run 'TestSoakObserved|TestObservedRunIsGoldenIdentical' ./internal/network/

# Parallel-engine soak: every scheme on every fabric on the sharded
# tick engine with the invariant engine sweeping every cycle, plus a
# recycled high-load leg at eight workers, bounded large-fabric legs
# (32x32 checked, 64x64 FlyOver — the sparse-active-set regime where
# the occupancy-aware regrouping does real work), and an energy-enabled leg
# (TestSoakParallelEnergy: per-component accounting + timeline sampler
# on all schemes x mesh/torus) — under the race detector, so the
# section bodies, barrier handoffs, replay buffers, per-worker pools,
# and counter lanes get full data-race coverage. The golden
# differential suite (TestParallelMatchesSerial and friends, tier-1)
# locks bit-identical results; this target locks race-freedom and
# liveness.
soak-par: vet
	$(GO) test -race -run 'TestSoakParallel' ./internal/network/

# Full-system soak: one short PARSEC profile per gating scheme driven
# to completion through the public API with the invariant engine
# sweeping every cycle, probes attached, and the parallel engine on the
# punch schemes — under the race detector, covering the workload's
# delivery callbacks, delayed submissions, and event-flush buffering.
soak-cmp: vet
	$(GO) test -race -run 'TestSoakCMP' .

# Campaign-server soak: the whole internal/serve suite under the race
# detector — concurrent clients racing the single-flight result cache,
# admission control, graceful shutdown + resume from persisted state,
# and the golden HTTP-vs-in-process loadsweep CSV equivalence.
soak-serve: vet
	$(GO) test -race -count=1 ./internal/serve/

# Public API surface lock: API.txt is the committed `go doc -all .`
# golden. After a deliberate surface change, run `make api` and commit
# the diff; `make apicheck` fails when the exported surface drifts
# without the golden moving with it.
api: build
	$(GO) doc -all . > API.txt

apicheck: build
	@$(GO) doc -all . > /tmp/api_new.txt; \
	if ! diff -u API.txt /tmp/api_new.txt; then \
		echo "apicheck: exported API drifted from API.txt (run 'make api' and commit if intended)"; \
		exit 1; \
	fi
	@# Deprecation gate: the Scheme.Uses* predicates survive only for
	@# external callers; internal packages must resolve the scheme.Policy
	@# once (Scheme.Policy / Config capability fields) instead of
	@# re-querying string-keyed predicates per call site.
	@bad=$$(grep -rn '\.Uses\(EarlyWakeup\|IdleTimeoutFilter\|PowerGating\|Punch\|NISlack\)(' \
		internal/ cmd/ *.go 2>/dev/null \
		| grep -v '_test\.go' | grep -v '^internal/config/config\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "apicheck: deprecated Scheme.Uses* predicate called outside internal/config/config.go:"; \
		echo "$$bad"; \
		exit 1; \
	fi

# Tier-2: everything above plus the benchmark regression gate.
check: vet test race soak soak-obs soak-par soak-cmp soak-serve apicheck bench-check

# Benchmark baseline maintenance. `make bench` runs the locked tick
# benchmarks (per scheme and load point, active-set and full-walk, with
# -benchmem) and writes BENCH_<today>.json; commit it to move the
# baseline. `make bench-check` runs the same suite and fails on a >10%
# regression in ns/op, allocs/op, or cycles/sec against the newest
# committed BENCH_*.json. Both run the whole suite BENCHCOUNT times as
# separate interleaved passes (not `-count`, which samples back-to-back
# inside the same machine-noise phase) and bench-json keeps the best
# pass per metric, so minute-scale frequency/neighbour phases on shared
# machines do not trip the gate; bench-diff additionally normalizes out
# remaining drift per benchmark family (phases are temporally local
# and families run contiguously). The gate locks the per-scheme/load
# tick benchmarks only (8x8 mesh plus the torus and ring rows of
# BenchmarkTickTopo*); sub-microsecond micros (NetworkStepIdle,
# PunchFabricStep) are too jitter-prone for a threshold gate — run
# those by hand with `go test -bench`.
BENCHES    ?= ^BenchmarkTick$$|^BenchmarkTickEnergy$$|^BenchmarkTickFlyOver$$|^BenchmarkTickFullWalk$$|^BenchmarkTickTopo$$|^BenchmarkTickTopoFullWalk$$|^BenchmarkTickPar$$|^BenchmarkTickCMP$$
BENCHTIME  ?= 0.5s
BENCHCOUNT ?= 5
# bench-diff defaults to a 10% gate; shared development machines show
# sustained ±15% frequency/neighbour phases between identical runs even
# after interleaved best-of-N and drift normalization, so the Makefile
# gate allows 20%. Tighten to 0.10 on dedicated CI hardware.
MAXREGRESS ?= 0.20
BASELINE   ?= $(lastword $(sort $(wildcard BENCH_*.json)))

define run_bench_passes
	: > /tmp/bench_raw.txt
	for i in $$(seq $(BENCHCOUNT)); do \
		$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime $(BENCHTIME) . \
			| tee -a /tmp/bench_raw.txt || exit 1; \
	done
endef

bench: build
	$(run_bench_passes)
	$(GO) run ./cmd/noctrace bench-json -in /tmp/bench_raw.txt -out BENCH_$$(date +%F).json

bench-check: build
	@test -n "$(BASELINE)" || { echo "bench-check: no committed BENCH_*.json baseline"; exit 1; }
	$(run_bench_passes)
	$(GO) run ./cmd/noctrace bench-json -in /tmp/bench_raw.txt -out /tmp/bench_new.json
	$(GO) run ./cmd/noctrace bench-diff -base $(BASELINE) -new /tmp/bench_new.json -max-regress $(MAXREGRESS)

# Optional: extended coverage-guided fuzzing of the trace parser and the
# end-to-end fuzz harness (FUZZTIME per target).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/traffic/ -run FuzzReadTrace -fuzz FuzzReadTrace -fuzztime $(FUZZTIME)
	$(GO) test ./internal/traffic/ -run FuzzNetworkEndToEnd -fuzz FuzzNetworkEndToEnd -fuzztime $(FUZZTIME)

clean:
	$(GO) clean ./...
