// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact), plus microbenchmarks of the simulator's hot
// paths. Each figure benchmark runs its experiment at Quick fidelity and
// reports the headline quantities via b.ReportMetric; cmd/powerpunch
// -full produces the paper-quality versions.
//
//	go test -bench=. -benchmem
package powerpunch

import (
	"fmt"
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/core"
	"powerpunch/internal/experiments"
	"powerpunch/internal/mesh"
	"powerpunch/internal/network"
	"powerpunch/internal/parsec"
	"powerpunch/internal/traffic"
)

// benchBenches is the benchmark subset used by the figure benchmarks: a
// compute-bound and a network-hungry profile bracket the range.
var benchBenches = []string{"swaptions", "canneal"}

func runFullSystem(b *testing.B) []experiments.BenchResult {
	b.Helper()
	res, err := experiments.RunFullSystem(experiments.FullSystemOptions{
		Fidelity:   experiments.Quick,
		Benchmarks: benchBenches,
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func avg(res []experiments.BenchResult, s config.Scheme, f func(experiments.SchemeMetrics) float64) float64 {
	sum := 0.0
	for _, br := range res {
		sum += f(br.PerScheme[s])
	}
	return sum / float64(len(res))
}

// BenchmarkTable1Encoding regenerates Table 1: the 22-entry punch-signal
// code book of router 27's X+ channel.
func BenchmarkTable1Encoding(b *testing.B) {
	m := mesh.New(8, 8)
	var codes int
	for i := 0; i < b.N; i++ {
		enc := core.EncodeChannel(m, 27, mesh.East, 3)
		codes = len(enc.Codes)
	}
	b.ReportMetric(float64(codes), "distinct-sets")
}

// BenchmarkTable2Config regenerates Table 2 (configuration validation
// and rendering).
func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Default()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = experiments.FormatTable2()
	}
}

// BenchmarkFig7Latency regenerates Figure 7: average packet latency per
// benchmark under the four schemes.
func BenchmarkFig7Latency(b *testing.B) {
	var res []experiments.BenchResult
	for i := 0; i < b.N; i++ {
		res = runFullSystem(b)
	}
	lat := func(m experiments.SchemeMetrics) float64 { return m.AvgLatency }
	base := avg(res, config.NoPG, lat)
	b.ReportMetric(base, "noPG-cycles/pkt")
	b.ReportMetric(avg(res, config.ConvOptPG, lat), "convopt-cycles/pkt")
	b.ReportMetric(avg(res, config.PowerPunchPG, lat), "punchPG-cycles/pkt")
}

// BenchmarkFig8ExecTime regenerates Figure 8: execution time normalized
// to No-PG.
func BenchmarkFig8ExecTime(b *testing.B) {
	var res []experiments.BenchResult
	for i := 0; i < b.N; i++ {
		res = runFullSystem(b)
	}
	norm := func(s config.Scheme) float64 {
		sum := 0.0
		for _, br := range res {
			sum += float64(br.PerScheme[s].ExecTime) / float64(br.PerScheme[config.NoPG].ExecTime)
		}
		return sum / float64(len(res))
	}
	b.ReportMetric(norm(config.ConvOptPG), "convopt-norm-exec")
	b.ReportMetric(norm(config.PowerPunchSignal), "signal-norm-exec")
	b.ReportMetric(norm(config.PowerPunchPG), "punchPG-norm-exec")
}

// BenchmarkFig9Blocked regenerates Figure 9: powered-off routers
// encountered per packet.
func BenchmarkFig9Blocked(b *testing.B) {
	var res []experiments.BenchResult
	for i := 0; i < b.N; i++ {
		res = runFullSystem(b)
	}
	blocked := func(m experiments.SchemeMetrics) float64 { return m.Blocked }
	b.ReportMetric(avg(res, config.ConvOptPG, blocked), "convopt-blocked/pkt")
	b.ReportMetric(avg(res, config.PowerPunchSignal, blocked), "signal-blocked/pkt")
	b.ReportMetric(avg(res, config.PowerPunchPG, blocked), "punchPG-blocked/pkt")
}

// BenchmarkFig10WaitCycles regenerates Figure 10: cycles per packet
// spent waiting for router wakeup.
func BenchmarkFig10WaitCycles(b *testing.B) {
	var res []experiments.BenchResult
	for i := 0; i < b.N; i++ {
		res = runFullSystem(b)
	}
	wait := func(m experiments.SchemeMetrics) float64 { return m.WakeWait }
	b.ReportMetric(avg(res, config.ConvOptPG, wait), "convopt-wait/pkt")
	b.ReportMetric(avg(res, config.PowerPunchSignal, wait), "signal-wait/pkt")
	b.ReportMetric(avg(res, config.PowerPunchPG, wait), "punchPG-wait/pkt")
}

// BenchmarkFig11Energy regenerates Figure 11: the router energy
// breakdown and static-energy savings.
func BenchmarkFig11Energy(b *testing.B) {
	var res []experiments.BenchResult
	for i := 0; i < b.N; i++ {
		res = runFullSystem(b)
	}
	saved := func(m experiments.SchemeMetrics) float64 { return m.StaticSaved }
	b.ReportMetric(100*avg(res, config.ConvOptPG, saved), "convopt-static-saved-%")
	b.ReportMetric(100*avg(res, config.PowerPunchPG, saved), "punchPG-static-saved-%")
}

// BenchmarkFig12LoadSweep regenerates Figure 12: latency and router
// static power across the load range for the three traffic patterns.
func BenchmarkFig12LoadSweep(b *testing.B) {
	var pts []experiments.LoadPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.RunLoadSweep(experiments.LoadSweepOptions{
			Fidelity: experiments.Quick,
			Rates:    []float64{0.01, 0.05, 0.10},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the low-load gap that defines the "power-gating curve".
	var noPG, conv, punch float64
	for _, p := range pts {
		if p.Pattern == "uniform" && p.Rate == 0.01 {
			switch p.Scheme {
			case config.NoPG:
				noPG = p.AvgLatency
			case config.ConvOptPG:
				conv = p.AvgLatency
			case config.PowerPunchPG:
				punch = p.AvgLatency
			}
		}
	}
	b.ReportMetric(noPG, "uniform@0.01-noPG")
	b.ReportMetric(conv, "uniform@0.01-convopt")
	b.ReportMetric(punch, "uniform@0.01-punchPG")
}

// BenchmarkFig13Sensitivity regenerates Figure 13: wakeup-latency and
// router-pipeline sensitivity.
func BenchmarkFig13Sensitivity(b *testing.B) {
	var pts []experiments.SensitivityPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.RunSensitivity(experiments.SensitivityOptions{Fidelity: experiments.Quick})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.RouterStages == 3 && p.WakeupLatency == 10 {
			b.ReportMetric(100*(p.Latency[config.PowerPunchPG]/p.Latency[config.NoPG]-1), "worstcase-punch-pen-%")
		}
	}
}

// BenchmarkScalability regenerates the Section 6.6(2) mesh-size study.
func BenchmarkScalability(b *testing.B) {
	var pts []experiments.ScalabilityPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.RunScalability(experiments.Quick, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Width == 16 {
			b.ReportMetric(p.SavedCycles, "16x16-cycles-saved")
			b.ReportMetric(100*p.Reduction, "16x16-reduction-%")
		}
	}
}

// BenchmarkAreaModel regenerates the Section 6.6(1) area estimate.
func BenchmarkAreaModel(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		rep := core.EstimateArea(config.Default(), core.DefaultAreaModel())
		frac = rep.OverheadFrac
	}
	b.ReportMetric(100*frac, "area-overhead-%")
}

// BenchmarkAblationPunchDesign runs the design-choice ablation
// (hop count, timeout, strict encoding) from DESIGN.md.
func BenchmarkAblationPunchDesign(b *testing.B) {
	var pts []experiments.AblationPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.RunAblation(experiments.Quick, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Label == "hops=3 (paper)" {
			b.ReportMetric(p.AvgLatency, "hops3-cycles/pkt")
		}
	}
}

// --- Microbenchmarks of the simulator hot paths ---

// BenchmarkNetworkStepIdle measures the per-cycle cost of a fully idle
// gated 8x8 network (the common case at PARSEC loads).
func BenchmarkNetworkStepIdle(b *testing.B) {
	cfg := config.Default()
	net, err := network.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		net.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkNetworkStepLoaded measures the per-cycle cost under moderate
// uniform load with Power Punch active.
func BenchmarkNetworkStepLoaded(b *testing.B) {
	cfg := config.Default()
	net, err := network.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	drv := traffic.NewSynthetic(traffic.UniformRandom{}, 0.10, 1)
	for i := 0; i < 2000; i++ {
		drv.Tick(net, net.Now())
		net.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.Tick(net, net.Now())
		net.Step()
	}
}

// tickBench steps a warmed 8x8 network one simulation cycle per
// benchmark op, so ns/op reads directly as ns/cycle. The driver runs
// inside the measured loop exactly as in a real experiment; cycles/sec
// is reported as a locked metric for the regression harness
// (cmd/noctrace bench-diff).
func tickBench(b *testing.B, scheme config.Scheme, load float64, fullTick bool) {
	b.Helper()
	tickBenchOn(b, "mesh", 8, 8, scheme, load, fullTick)
}

// tickBenchOn is tickBench over an arbitrary fabric; the topology
// benchmarks below lock torus and ring rows into the baseline alongside
// the 8x8 mesh.
func tickBenchOn(b *testing.B, topoName string, w, h int, scheme config.Scheme, load float64, fullTick bool) {
	b.Helper()
	cfg := config.Default()
	cfg.Scheme = scheme
	cfg.Topology = topoName
	cfg.Width, cfg.Height = w, h
	cfg.FullTick = fullTick
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	// Packet recycling keeps the whole inject+step loop allocation-free
	// at every locked load (the committed baseline pins allocs/op = 0);
	// results are bit-identical either way.
	cfg.RecyclePackets = true
	net, err := network.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	drv := traffic.NewSynthetic(traffic.UniformRandom{}, load, 1)
	for i := 0; i < 3000; i++ {
		drv.Tick(net, net.Now())
		net.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.Tick(net, net.Now())
		net.Step()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "cycles/sec")
	}
}

// tickLoads are the locked load points of the benchmark baseline: the
// paper's low-load regime (where power gating pays and the active-set
// scheduler skips most of the mesh), a moderate point, and a high-load
// point where nearly every node stays hot.
var tickLoads = []float64{0.02, 0.10, 0.30}

// BenchmarkTick measures per-cycle simulation cost with the active-set
// scheduler (the default tick) for every scheme and locked load point.
func BenchmarkTick(b *testing.B) {
	for _, s := range config.Schemes {
		for _, load := range tickLoads {
			s, load := s, load
			b.Run(fmt.Sprintf("%s/load=%.2f", s, load), func(b *testing.B) {
				tickBench(b, s, load, false)
			})
		}
	}
}

// BenchmarkTickEnergy is BenchmarkTick's PowerPunch-PG rows with the
// per-component energy accountant enabled for the measured window —
// every emission site pays its float charge plus an integer event
// counter bump. The gap to the matching BenchmarkTick row is the
// whole cost of DSENT-style component accounting; the committed
// baseline pins it small and allocs/op at exactly 0.
func BenchmarkTickEnergy(b *testing.B) {
	for _, load := range tickLoads {
		load := load
		b.Run(fmt.Sprintf("%s/load=%.2f", config.PowerPunchPG, load), func(b *testing.B) {
			cfg := config.Default()
			cfg.Scheme = config.PowerPunchPG
			cfg.WarmupCycles = 0
			cfg.MeasureCycles = 1 << 40
			cfg.RecyclePackets = true
			net, err := network.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			net.SetAccounting(true)
			drv := traffic.NewSynthetic(traffic.UniformRandom{}, load, 1)
			for i := 0; i < 3000; i++ {
				drv.Tick(net, net.Now())
				net.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drv.Tick(net, net.Now())
				net.Step()
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)/s, "cycles/sec")
			}
		})
	}
}

// BenchmarkTickFullWalk is BenchmarkTick under Config.FullTick — the
// seed full-walk tick kept as the differential reference. The gap to
// BenchmarkTick at low load is the active-set speedup the baseline
// locks in (>= 2x on PowerPunch-PG at loads <= 0.2).
func BenchmarkTickFullWalk(b *testing.B) {
	for _, s := range config.Schemes {
		for _, load := range tickLoads {
			s, load := s, load
			b.Run(fmt.Sprintf("%s/load=%.2f", s, load), func(b *testing.B) {
				tickBench(b, s, load, true)
			})
		}
	}
}

// BenchmarkTickFlyOver locks the bypass scheme's per-cycle cost into
// the baseline: FlyOver-PG at every locked load point on the 8x8 mesh
// (active-set and full-walk — the bypass admission probes and the
// ctrlSync catch-up only exist on these paths) plus the 4x4 torus,
// whose dateline classes the landing-VC allocation must consult. The
// committed rows pin allocs/op at exactly 0, same as every other
// scheme's hot path.
func BenchmarkTickFlyOver(b *testing.B) {
	for _, load := range tickLoads {
		load := load
		b.Run(fmt.Sprintf("%s/load=%.2f", config.FlyOverPG, load), func(b *testing.B) {
			tickBench(b, config.FlyOverPG, load, false)
		})
	}
	for _, load := range tickLoads {
		load := load
		b.Run(fmt.Sprintf("fullwalk/%s/load=%.2f", config.FlyOverPG, load), func(b *testing.B) {
			tickBench(b, config.FlyOverPG, load, true)
		})
	}
	for _, load := range tickLoads {
		load := load
		b.Run(fmt.Sprintf("torus/%s/load=%.2f", config.FlyOverPG, load), func(b *testing.B) {
			tickBenchOn(b, "torus", 4, 4, config.FlyOverPG, load, false)
		})
	}
}

// benchFabrics are the locked non-mesh fabric shapes of the baseline:
// the same shapes the golden differential and checked-soak suites run,
// so a benchmark row exists for every fabric the correctness battery
// covers.
var benchFabrics = []struct {
	topo          string
	width, height int
}{
	{"torus", 4, 4},
	{"ring", 8, 1},
}

// BenchmarkTickTopo measures per-cycle simulation cost on the wrapped
// fabrics (4x4 torus, 8-node ring) under PowerPunch-PG — the scheme
// whose punch fabric and dateline VC classes exercise every
// topology-sensitive path — with the active-set scheduler, at the
// locked load points.
func BenchmarkTickTopo(b *testing.B) {
	for _, fab := range benchFabrics {
		for _, load := range tickLoads {
			fab, load := fab, load
			b.Run(fmt.Sprintf("%s/%s/load=%.2f", fab.topo, config.PowerPunchPG, load), func(b *testing.B) {
				tickBenchOn(b, fab.topo, fab.width, fab.height, config.PowerPunchPG, load, false)
			})
		}
	}
}

// BenchmarkTickTopoFullWalk is BenchmarkTickTopo under Config.FullTick,
// locking the active-set speedup on the wrapped fabrics the same way
// BenchmarkTickFullWalk does for the mesh.
func BenchmarkTickTopoFullWalk(b *testing.B) {
	for _, fab := range benchFabrics {
		for _, load := range tickLoads {
			fab, load := fab, load
			b.Run(fmt.Sprintf("%s/%s/load=%.2f", fab.topo, config.PowerPunchPG, load), func(b *testing.B) {
				tickBenchOn(b, fab.topo, fab.width, fab.height, config.PowerPunchPG, load, true)
			})
		}
	}
}

// BenchmarkTickPar measures the occupancy-aware parallel tick engine
// against the recycled serial hot path under PowerPunch-PG, on the
// paper's 8x8 mesh and on the scaled 32x32 and 64x64 fabrics where
// multi-core wins are realistic. Every row enables packet recycling so
// par=0 (serial) and par=N differ only in the engine; cmd/noctrace
// bench-diff derives speedup and per-cycle sync-overhead columns from
// rows that differ only in the /par= label. Large-fabric loads sit
// below uniform-random saturation (~0.05 pkt/node/cyc at 32x32, ~0.025
// at 64x64 for 5-flit packets) so queues stay bounded over the whole
// measured window; warmup shrinks with fabric size to keep bench
// wall-clock sane. Rows are honest wall-clock measurements on whatever
// hardware runs them — on a single-CPU host the parallel rows pay
// rendezvous overhead with no speedup to collect; the engine targets
// multi-core hosts, and the occupancy-aware grouping keeps the
// single-CPU penalty small by running low-occupancy cycles inline on
// the coordinator.
func BenchmarkTickPar(b *testing.B) {
	fabrics := []struct {
		w, h, warm int
		loads      []float64
	}{
		{8, 8, 3000, []float64{0.10, 0.30}},
		{32, 32, 2500, []float64{0.02}},
		{64, 64, 3000, []float64{0.01}},
	}
	for _, fab := range fabrics {
		for _, load := range fab.loads {
			for _, workers := range []int{0, 2, 4, 8} {
				fab, load, workers := fab, load, workers
				name := fmt.Sprintf("%s/%dx%d/load=%.2f/par=%d", config.PowerPunchPG, fab.w, fab.h, load, workers)
				b.Run(name, func(b *testing.B) {
					cfg := config.Default()
					cfg.Scheme = config.PowerPunchPG
					cfg.Width, cfg.Height = fab.w, fab.h
					cfg.WarmupCycles = 0
					cfg.MeasureCycles = 1 << 40
					cfg.Workers = workers
					cfg.RecyclePackets = true
					net, err := network.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					defer net.Close()
					drv := traffic.NewSynthetic(traffic.UniformRandom{}, load, 1)
					for i := 0; i < fab.warm; i++ {
						drv.Tick(net, net.Now())
						net.Step()
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						drv.Tick(net, net.Now())
						net.Step()
					}
					b.StopTimer()
					if s := b.Elapsed().Seconds(); s > 0 {
						b.ReportMetric(float64(b.N)/s, "cycles/sec")
					}
				})
			}
		}
	}
}

// BenchmarkPunchFabricStep measures the punch fabric's per-cycle cost
// with many concurrent punches in flight.
func BenchmarkPunchFabricStep(b *testing.B) {
	m := mesh.New(8, 8)
	f := core.NewFabric(m, 3, false, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := mesh.NodeID(0); n < 64; n += 4 {
			f.EmitSource(n, 63-n)
		}
		f.Step()
	}
}

// BenchmarkFullSystemSwaptions measures end-to-end full-system
// simulation throughput (cycles simulated per wall second is the
// inverse of ns/op divided by the cycle count).
// BenchmarkTickCMP is the locked steady-state cost of one simulated
// cycle under the full-system CMP workload (cores ticking, coherence
// protocol delivering, all three VNs loaded), per scheme, on the
// paper's 8x8 mesh. The per-core instruction budget is effectively
// infinite so the workload stays in steady state for the whole
// measured window; `make bench-check` gates this row like the
// synthetic tick benchmarks.
func BenchmarkTickCMP(b *testing.B) {
	for _, s := range []config.Scheme{config.NoPG, config.ConvOptPG, config.PowerPunchPG} {
		s := s
		b.Run(fmt.Sprintf("%s/canneal", s), func(b *testing.B) {
			cfg := config.Default()
			cfg.Scheme = s
			cfg.WarmupCycles = 0
			cfg.MeasureCycles = 1 << 40
			cfg.RecyclePackets = true
			net, err := network.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer net.Close()
			sys := NewWorkload(parsec.MustProfile("canneal", 1<<40), net, 1)
			for i := 0; i < 3000; i++ {
				sys.Tick(net, net.Now())
				net.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Tick(net, net.Now())
				net.Step()
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "cycles/sec")
			}
		})
	}
}

func BenchmarkFullSystemSwaptions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Default()
		cfg.Scheme = config.PowerPunchPG
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40
		net, err := network.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sys := NewWorkload(parsec.MustProfile("swaptions", 10_000), net, 1)
		res := net.RunUntil(sys, 2_000_000)
		if !res.Drained {
			b.Fatal("did not drain")
		}
		b.ReportMetric(float64(res.Cycles), "sim-cycles")
	}
}
