// Benchmark regression harness: bench-json converts `go test -bench`
// output into the committed BENCH_<date>.json baseline format, and
// bench-diff compares a fresh run against a baseline, failing on
// regressions beyond the tolerance. `make bench` and `make bench-check`
// wire the two together.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchEntry is one benchmark in the baseline file. Metrics holds every
// reported unit (ns/op, B/op, allocs/op, cycles/sec, figure headline
// metrics, ...) keyed by its go-test unit string.
type BenchEntry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// BenchBaseline is the BENCH_<date>.json file format.
type BenchBaseline struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go"`
	Benchmarks []BenchEntry `json:"benchmarks"`
}

// procSuffix matches the -GOMAXPROCS suffix go test appends to benchmark
// names; it is stripped so baselines compare across machines.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts benchmark result lines from `go test -bench`
// output. Lines look like:
//
//	BenchmarkTick/No-PG/load=0.02-8  38370  22341 ns/op  44761 cycles/sec  0 B/op  0 allocs/op
//
// after the name and iteration count, results come in (value, unit)
// pairs in whatever order the testing package prints them. Repeated
// lines for the same benchmark (`-count=N`) are merged keeping the best
// value per metric — best-of-N filters scheduler and frequency jitter
// out of the regression gate, which compares thresholds, not
// distributions.
func parseBenchOutput(r io.Reader) ([]BenchEntry, error) {
	var out []BenchEntry
	index := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." line without results (e.g. -v chatter)
		}
		e := BenchEntry{
			Name:       procSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), ""),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: bad value %q", fields[0], fields[i])
			}
			e.Metrics[fields[i+1]] = v
		}
		if j, ok := index[e.Name]; ok {
			mergeBest(&out[j], e)
			continue
		}
		index[e.Name] = len(out)
		out = append(out, e)
	}
	return out, sc.Err()
}

// mergeBest folds a repeated run of the same benchmark into dst, keeping
// the best value per metric (max for higher-is-better units, min
// otherwise) and the larger iteration count.
func mergeBest(dst *BenchEntry, e BenchEntry) {
	if e.Iterations > dst.Iterations {
		dst.Iterations = e.Iterations
	}
	for unit, v := range e.Metrics {
		cur, ok := dst.Metrics[unit]
		if !ok {
			dst.Metrics[unit] = v
			continue
		}
		if higherIsBetter[unit] {
			if v > cur {
				dst.Metrics[unit] = v
			}
		} else if v < cur {
			dst.Metrics[unit] = v
		}
	}
}

func benchJSON(args []string) {
	fs := flag.NewFlagSet("bench-json", flag.ExitOnError)
	in := fs.String("in", "", "go test -bench output (default stdin)")
	outPath := fs.String("out", "", "output JSON file (default stdout)")
	date := fs.String("date", time.Now().Format("2006-01-02"), "baseline date stamp")
	_ = fs.Parse(args)

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	entries, err := parseBenchOutput(src)
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("bench-json: no benchmark result lines found in input"))
	}
	b := BenchBaseline{Date: *date, GoVersion: runtime.Version(), Benchmarks: entries}
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *outPath == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(entries), *outPath)
}

// higherIsBetter lists the metric units where a larger value is an
// improvement; everything else (ns/op, B/op, allocs/op, latencies, ...)
// regresses upward.
var higherIsBetter = map[string]bool{
	"cycles/sec": true,
	"MB/s":       true,
}

// lockedUnits are the metrics bench-diff guards. Figure headline metrics
// (latencies per packet etc.) are deterministic model outputs, not
// performance, and are locked by the golden tests instead.
var lockedUnits = []string{"ns/op", "allocs/op", "cycles/sec"}

func readBaseline(path string) *BenchBaseline {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var b BenchBaseline
	if err := json.Unmarshal(buf, &b); err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	return &b
}

// speedFactors estimates the machine-speed drift between two runs as
// the median ratio of new/base ns/op across shared benchmarks. Shared
// cloud machines routinely drift 10-20% in sustained phases (frequency
// scaling, noisy neighbours); dividing the drift out makes the gate
// compare the *shape* of the performance profile, so a uniform
// slowdown passes while a localized regression — one code path got
// slower relative to the rest, e.g. the active-set tick relative to
// its full-walk reference — still trips the tolerance. Real
// regressions are localized by construction: they cannot move the
// median of many benchmarks spanning independent code paths.
//
// Phases are *temporally* local: a suite pass runs minutes, and the
// slow large-fabric rows execute in a different phase window than the
// sub-millisecond rows that dominate a global median. Since each
// top-level benchmark family (the name's first path segment) runs
// contiguously, drift is therefore estimated per family — the global
// median is the fallback for families with too few shared rows to
// hide a localized regression in.
func speedFactors(base map[string]BenchEntry, cur []BenchEntry) (global float64, byFamily map[string]float64) {
	// A family median is only trustworthy as a drift estimate when a
	// single regressed row cannot be the median: require several rows.
	const minFamilyRows = 6
	var all []float64
	fam := map[string][]float64{}
	for _, e := range cur {
		be, ok := base[e.Name]
		if !ok {
			continue
		}
		bv, nv := be.Metrics["ns/op"], e.Metrics["ns/op"]
		if bv > 0 && nv > 0 {
			all = append(all, nv/bv)
			f := benchFamily(e.Name)
			fam[f] = append(fam[f], nv/bv)
		}
	}
	if len(all) == 0 {
		return 1, nil
	}
	byFamily = map[string]float64{}
	for f, ratios := range fam {
		if len(ratios) >= minFamilyRows {
			sort.Float64s(ratios)
			byFamily[f] = ratios[len(ratios)/2]
		}
	}
	sort.Float64s(all)
	return all[len(all)/2], byFamily
}

// benchFamily returns the benchmark name's first path segment, e.g.
// "TickPar" for "TickPar/PowerPunch-PG/8x8/load=0.10/par=0".
func benchFamily(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

func benchDiff(args []string) {
	fs := flag.NewFlagSet("bench-diff", flag.ExitOnError)
	basePath := fs.String("base", "", "committed baseline JSON")
	newPath := fs.String("new", "", "fresh run JSON (from bench-json)")
	maxRegress := fs.Float64("max-regress", 0.10, "tolerated fractional regression (after machine-speed normalization)")
	rawTimes := fs.Bool("raw", false, "compare wall-clock times without machine-speed normalization")
	_ = fs.Parse(args)
	if *basePath == "" || *newPath == "" {
		fatal(fmt.Errorf("bench-diff: -base and -new are required"))
	}

	base, cur := readBaseline(*basePath), readBaseline(*newPath)
	baseByName := map[string]BenchEntry{}
	for _, e := range base.Benchmarks {
		baseByName[e.Name] = e
	}
	speed := 1.0
	var famSpeed map[string]float64
	if !*rawTimes {
		speed, famSpeed = speedFactors(baseByName, cur.Benchmarks)
	}

	regressions := 0
	compared := 0
	for _, e := range cur.Benchmarks {
		be, ok := baseByName[e.Name]
		if !ok {
			fmt.Printf("NEW      %-45s (not in baseline)\n", e.Name)
			continue
		}
		delete(baseByName, e.Name)
		for _, unit := range lockedUnits {
			bv, okB := be.Metrics[unit]
			nv, okN := e.Metrics[unit]
			if !okB || !okN {
				continue
			}
			compared++
			// Expected value under the drift — the row's family
			// estimate when available, else global. Counting units
			// (allocs/op) are exact and never normalized; time units
			// scale with the drift, rates scale inversely.
			rowSpeed := speed
			if s, ok := famSpeed[benchFamily(e.Name)]; ok {
				rowSpeed = s
			}
			exp := bv
			switch {
			case unit == "allocs/op" || unit == "B/op":
			case higherIsBetter[unit]:
				exp = bv / rowSpeed
			default:
				exp = bv * rowSpeed
			}
			var frac float64 // fractional regression vs expectation, positive = worse
			switch {
			case exp == 0 && nv == 0:
				continue
			case exp == 0:
				frac = 1 // e.g. allocs/op went 0 -> nonzero: always a regression
			case higherIsBetter[unit]:
				frac = (exp - nv) / exp
			default:
				frac = (nv - exp) / exp
			}
			if frac > *maxRegress {
				regressions++
				fmt.Printf("REGRESS  %-45s %-10s %12.4g -> %-12.4g (%+.1f%% raw, %+.1f%% vs machine drift)\n",
					e.Name, unit, bv, nv, 100*relChange(bv, nv), 100*frac)
			}
		}
	}
	missing := make([]string, 0, len(baseByName))
	for name := range baseByName {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("MISSING  %-45s (in baseline, not in new run)\n", name)
	}
	printSpeedups(cur.Benchmarks)

	fmt.Printf("bench-diff: %d metrics compared against %s (go %s vs %s), tolerance %.0f%%, machine drift %+.1f%% global, %d family estimates\n",
		compared, *basePath, base.GoVersion, cur.GoVersion, *maxRegress*100, (speed-1)*100, len(famSpeed))
	if regressions > 0 || len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "bench-diff: FAIL: %d regression(s), %d missing benchmark(s)\n",
			regressions, len(missing))
		os.Exit(1)
	}
	fmt.Println("bench-diff: OK")
}

// parLabel matches the trailing /par=N component of the parallel-engine
// benchmark rows (BenchmarkTickPar and friends).
var parLabel = regexp.MustCompile(`/par=(\d+)$`)

// printSpeedups derives a speedup column from benchmark rows that
// differ only in their /par=N label: each par=N row (N > 0) is divided
// by its par=0 sibling's cycles/sec. On a multi-core host this is the
// parallel engine's realized speedup; on a single-core host it reads
// below 1.0x and quantifies barrier overhead instead. The sync column
// is the same comparison in absolute terms: ns/op at par=N minus ns/op
// at par=0. Each benchmark op is one simulated cycle, so the column is
// the per-cycle rendezvous/commit overhead the parallel engine pays on
// top of the serial tick (negative once the cores outrun the barriers).
func printSpeedups(entries []BenchEntry) {
	byName := map[string]BenchEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	for _, e := range entries {
		m := parLabel.FindStringSubmatch(e.Name)
		if m == nil || m[1] == "0" {
			continue
		}
		stem := strings.TrimSuffix(e.Name, m[0])
		serial, ok := byName[stem+"/par=0"]
		if !ok {
			continue
		}
		pv, sv := e.Metrics["cycles/sec"], serial.Metrics["cycles/sec"]
		if pv <= 0 || sv <= 0 {
			continue
		}
		sync := "    sync=n/a"
		if pns, sns := e.Metrics["ns/op"], serial.Metrics["ns/op"]; pns > 0 && sns > 0 {
			sync = fmt.Sprintf("sync=%+8.0f ns/cycle", pns-sns)
		}
		fmt.Printf("SPEEDUP  %-45s par=%-3s %5.2fx  %s  (%.4g vs %.4g cycles/sec serial)\n",
			stem, m[1], pv/sv, sync, pv, sv)
	}
}

func relChange(base, cur float64) float64 {
	if base == 0 {
		return 1
	}
	return (cur - base) / base
}
