package main

import (
	"math"
	"testing"
)

func TestBenchFamily(t *testing.T) {
	cases := map[string]string{
		"TickPar/PowerPunch-PG/8x8/load=0.10/par=0": "TickPar",
		"Tick/No-PG/load=0.02":                      "Tick",
		"NetworkStepIdle":                           "NetworkStepIdle",
	}
	for name, want := range cases {
		if got := benchFamily(name); got != want {
			t.Errorf("benchFamily(%q) = %q, want %q", name, got, want)
		}
	}
}

// entryPair builds matching base/cur entries named fam/i with the given
// ns/op ratio applied on the cur side.
func addPair(base map[string]BenchEntry, cur []BenchEntry, fam string, i int, baseNs, ratio float64) []BenchEntry {
	name := fam + "/row" + string(rune('a'+i))
	base[name] = BenchEntry{Name: name, Metrics: map[string]float64{"ns/op": baseNs}}
	return append(cur, BenchEntry{Name: name, Metrics: map[string]float64{"ns/op": baseNs * ratio}})
}

func TestSpeedFactorsPerFamily(t *testing.T) {
	base := map[string]BenchEntry{}
	var cur []BenchEntry
	// A 7-row family in a slow phase (all 1.25x), a 7-row family at
	// parity, and a 3-row family (below minFamilyRows) at 1.10x.
	for i := 0; i < 7; i++ {
		cur = addPair(base, cur, "SlowFam", i, 1000, 1.25)
		cur = addPair(base, cur, "FlatFam", i, 2000, 1.00)
	}
	for i := 0; i < 3; i++ {
		cur = addPair(base, cur, "TinyFam", i, 500, 1.10)
	}
	global, byFam := speedFactors(base, cur)
	if got := byFam["SlowFam"]; math.Abs(got-1.25) > 1e-9 {
		t.Errorf("SlowFam drift = %v, want 1.25", got)
	}
	if got := byFam["FlatFam"]; math.Abs(got-1.00) > 1e-9 {
		t.Errorf("FlatFam drift = %v, want 1.00", got)
	}
	if _, ok := byFam["TinyFam"]; ok {
		t.Errorf("TinyFam has only 3 rows; must fall back to the global median, got %v", byFam["TinyFam"])
	}
	// Global median over 17 ratios: eight 1.00s, three 1.10s, seven
	// 1.25s -> the 9th sorted value is 1.10.
	if math.Abs(global-1.10) > 1e-9 {
		t.Errorf("global drift = %v, want 1.10", global)
	}
	// A single regressed row cannot become its family's estimate.
	cur2 := make([]BenchEntry, len(cur))
	copy(cur2, cur)
	for i := range cur2 {
		if cur2[i].Name == "FlatFam/rowa" {
			cur2[i].Metrics = map[string]float64{"ns/op": 2000 * 1.9}
		}
	}
	_, byFam2 := speedFactors(base, cur2)
	if got := byFam2["FlatFam"]; math.Abs(got-1.00) > 1e-9 {
		t.Errorf("FlatFam drift with one regressed row = %v, want 1.00 (median must absorb it)", got)
	}
}
