// Command noctrace records and replays NoC traffic traces.
//
// Record a synthetic or full-system workload into a JSON-lines trace:
//
//	noctrace record -out trace.jsonl -pattern uniform -rate 0.02 -cycles 20000
//	noctrace record -out trace.jsonl -bench canneal -instr 30000
//
// Replay a trace under any scheme and report the metrics:
//
//	noctrace replay -in trace.jsonl -scheme PowerPunch-PG
//
// Replaying the same trace under different schemes gives a perfectly
// controlled comparison: every message is identical; only the
// power-gating behaviour differs.
//
// Both commands accept -topo mesh|torus|ring with -width/-height; a
// trace records node IDs, so replay it on the fabric shape it was
// recorded on:
//
//	noctrace record -topo torus -width 4 -height 4 -out torus.jsonl -rate 0.05
//	noctrace replay -topo torus -width 4 -height 4 -in torus.jsonl -scheme PowerPunch-PG
//
// Replay a failure artifact written by the invariant engine
// (Config.Checks) and confirm the violation reproduces at the recorded
// cycle:
//
//	noctrace replay-failure -in /tmp/powerpunch-violation-c123-punch-nonblocking.json
//
// Stream the cycle-level observability event trace of a run as JSON
// lines (optionally filtered by kind), or export the power/activity
// timeline as CSV/JSONL:
//
//	noctrace trace -scheme PowerPunch-PG -rate 0.05 -cycles 5000 -kinds pg_wake,pg_gate,punch_emit
//	noctrace timeline -scheme ConvOpt-PG -rate 0.02 -cycles 50000 -interval 500 -format csv -out timeline.csv
//
// trace and timeline also drive full-system CMP/PARSEC workloads with
// -bench/-instr, including the workload's own protocol events
// (wl_miss, wl_fill, wl_dir) in the stream:
//
//	noctrace trace -bench canneal -instr 20000 -kinds wl_miss,wl_fill,eject
//	noctrace timeline -bench swaptions -scheme PowerPunch-PG -format csv -report
//
// Run the campaign server: simulation as a service over HTTP/JSON,
// with a bounded worker pool, a deterministic result cache keyed by
// the canonical (config, seed) hash, sweep campaigns with
// progress/resume and CSV export, JSONL event/timeline streaming, and
// graceful shutdown that drains in-flight jobs and persists campaign
// state (expvar under /debug/vars, pprof under /debug/pprof):
//
//	noctrace serve -addr localhost:6060 -workers 4 -queue 64 -cache 1024 -state campaigns.json
//	curl -d '{"scheme":"PowerPunch-PG","pattern":"uniform","rate":0.05,"cycles":20000,"seed":1}' \
//	    localhost:6060/api/v1/jobs
//
// Maintain the benchmark baseline (see `make bench` / `make bench-check`):
//
//	go test -run '^$' -bench '^BenchmarkTick' -benchmem . | noctrace bench-json -out BENCH_2026-08-06.json
//	noctrace bench-diff -base BENCH_2026-08-06.json -new /tmp/bench_new.json -max-regress 0.10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"powerpunch"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "replay-failure":
		replayFailure(os.Args[2:])
	case "trace":
		traceCmd(os.Args[2:])
	case "timeline":
		timelineCmd(os.Args[2:])
	case "serve":
		serveCmd(os.Args[2:])
	case "bench-json":
		benchJSON(os.Args[2:])
	case "bench-diff":
		benchDiff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: noctrace <command> [flags] (see -h of each)

trace I/O:      record, replay, replay-failure
observability:  trace (event stream), timeline (power/activity samples)
serving:        serve (HTTP/JSON campaign server: jobs, sweep
                campaigns, result cache, streaming; -addr, -workers,
                -queue, -cache, -state, -rate-limit, -rate-burst)
benchmarking:   bench-json, bench-diff`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "noctrace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "trace.jsonl", "output trace file")
	pattern := fs.String("pattern", "uniform", "synthetic pattern (ignored with -bench)")
	rate := fs.Float64("rate", 0.02, "offered load, flits/node/cycle")
	cycles := fs.Int64("cycles", 20_000, "cycles of synthetic injection")
	bench := fs.String("bench", "", "record a PARSEC-like workload instead")
	instr := fs.Int64("instr", 20_000, "instructions per core for -bench")
	seed := fs.Int64("seed", 1, "seed")
	topoName := fs.String("topo", "mesh", "fabric topology: mesh|torus|ring")
	width := fs.Int("width", 8, "fabric width (nodes per row)")
	height := fs.Int("height", 8, "fabric height (rows; must be 1 for -topo ring)")
	workers := fs.Int("workers", 0, "tick-engine workers: 0 or 1 = serial, N > 1 = sharded parallel engine (bit-identical)")
	preset := fs.String("power-preset", "", "power-model calibration: "+strings.Join(powerpunch.PowerPresets(), "|")+" (default: "+powerpunch.DefaultPowerPreset+")")
	_ = fs.Parse(args)

	// Reject combinations that would otherwise be silently ignored.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *bench != "" {
		for _, name := range []string{"pattern", "rate", "cycles"} {
			if set[name] {
				fatal(fmt.Errorf("-%s is ignored with -bench; drop one of them", name))
			}
		}
	} else if set["instr"] {
		fatal(fmt.Errorf("-instr only applies with -bench"))
	}

	cfg := powerpunch.DefaultConfig()
	cfg.Scheme = powerpunch.NoPG // record on the neutral baseline
	cfg.Topology = *topoName
	cfg.Width, cfg.Height = *width, *height
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	cfg.Workers = *workers
	cfg.PowerPreset = *preset
	net, err := powerpunch.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	rec := powerpunch.NewTraceRecorder(net)

	if *bench != "" {
		prof, err := powerpunch.PARSECProfile(*bench, *instr)
		if err != nil {
			fatal(err)
		}
		wl := powerpunch.NewWorkload(prof, net, *seed)
		if res := net.RunUntil(wl, 10_000_000); !res.Drained {
			fatal(fmt.Errorf("workload did not complete"))
		}
	} else {
		pat, err := powerpunch.PatternByName(*pattern)
		if err != nil {
			fatal(err)
		}
		drv := powerpunch.NewSyntheticTraffic(pat, *rate, *seed)
		for net.Now() < *cycles {
			drv.Tick(net, net.Now())
			net.Step()
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr := rec.Trace()
	if _, err := tr.WriteTo(f); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d events to %s\n", len(tr.Events), *out)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "trace.jsonl", "input trace file")
	scheme := fs.String("scheme", "PowerPunch-PG", "power-gating scheme: "+strings.Join(powerpunch.SchemeNames(), "|"))
	maxCycles := fs.Int64("max-cycles", 10_000_000, "safety bound")
	topoName := fs.String("topo", "mesh", "fabric topology the trace was recorded on: mesh|torus|ring")
	width := fs.Int("width", 8, "fabric width")
	height := fs.Int("height", 8, "fabric height (must be 1 for -topo ring)")
	workers := fs.Int("workers", 0, "tick-engine workers: 0 or 1 = serial, N > 1 = sharded parallel engine (bit-identical)")
	preset := fs.String("power-preset", "", "power-model calibration: "+strings.Join(powerpunch.PowerPresets(), "|")+" (default: "+powerpunch.DefaultPowerPreset+")")
	_ = fs.Parse(args)

	s, err := schemeByName(*scheme)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := powerpunch.ReadTrafficTrace(f)
	if err != nil {
		fatal(err)
	}
	spec := powerpunch.TopologySpec{Topology: *topoName, Width: *width, Height: *height}
	if err := powerpunch.ValidateTrafficTrace(spec, tr); err != nil {
		fatal(fmt.Errorf("replay: trace does not fit the %s %dx%d fabric — pass the -topo/-width/-height it was recorded on: %w",
			*topoName, *width, *height, err))
	}

	cfg := powerpunch.DefaultConfig()
	cfg.Scheme = s
	cfg.Topology = *topoName
	cfg.Width, cfg.Height = *width, *height
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	cfg.Workers = *workers
	cfg.PowerPreset = *preset
	net, err := powerpunch.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	res := net.RunUntil(powerpunch.NewTraceReplay(tr), *maxCycles)
	if !res.Drained {
		fatal(fmt.Errorf("replay did not drain within %d cycles", *maxCycles))
	}
	fmt.Printf("%-18s events=%d lat=%.2f blocked=%.2f wait=%.2f staticSaved=%.1f%% cycles=%d\n",
		s, len(tr.Events), res.Summary.AvgLatency, res.Summary.AvgBlocked,
		res.Summary.AvgWakeWait, res.StaticSaved*100, res.Cycles)
}

// replayFailure re-runs a violation artifact deterministically and
// verifies it reproduces: same invariant, same cycle. Exit status 0 on
// a faithful reproduction, 1 on divergence.
func replayFailure(args []string) {
	fs := flag.NewFlagSet("replay-failure", flag.ExitOnError)
	in := fs.String("in", "", "violation artifact (JSON, written by the invariant engine)")
	maxCycles := fs.Int64("max-cycles", 0, "replay bound; 0 = recorded cycle plus a short grace window")
	_ = fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("replay-failure: -in is required"))
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	a, err := powerpunch.ReadCheckArtifact(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recorded: %s\n          scheme=%s seed=%d events=%d\n",
		a.Violation.String(), a.Config.Scheme, a.Seed, len(a.Events))

	got, err := powerpunch.ReplayFailure(a, *maxCycles)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed: %s\n", got.Violation.String())
	if got.Invariant != a.Invariant || got.Cycle != a.Cycle {
		fmt.Fprintln(os.Stderr, "noctrace: replay DIVERGED from the recorded violation")
		os.Exit(1)
	}
	fmt.Println("replay reproduced the recorded violation exactly")
}
