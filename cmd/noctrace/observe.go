// The observability subcommands: stream the cycle-level event trace
// (`trace`), export a power/activity timeline (`timeline`), and expose
// live metrics plus profiling endpoints over HTTP (`serve`). All three
// drive either a synthetic pattern or — with -bench — a full-system
// CMP/PARSEC workload, with observer sinks attached via
// powerpunch.WithObserver.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"
	"sync/atomic"

	"powerpunch"
)

// simFlags is the workload flag block shared by the observability
// subcommands: scheme, fabric, synthetic pattern, and run length.
type simFlags struct {
	scheme  *string
	pattern *string
	rate    *float64
	cycles  *int64
	warmup  *int64
	seed    *int64
	topo    *string
	width   *int
	height  *int
	workers *int
	bench   *string
	instr   *int64
}

func addSimFlags(fs *flag.FlagSet) *simFlags {
	return &simFlags{
		scheme:  fs.String("scheme", "PowerPunch-PG", "No-PG|ConvOpt-PG|PowerPunch-Signal|PowerPunch-PG"),
		pattern: fs.String("pattern", "uniform", "synthetic pattern (ignored with -bench)"),
		rate:    fs.Float64("rate", 0.02, "offered load, flits/node/cycle (ignored with -bench)"),
		cycles:  fs.Int64("cycles", 20_000, "measured cycles (with -bench: safety bound on the run)"),
		warmup:  fs.Int64("warmup", 0, "warmup cycles before measurement (ignored with -bench)"),
		seed:    fs.Int64("seed", 1, "seed"),
		topo:    fs.String("topo", "mesh", "fabric topology: mesh|torus|ring"),
		width:   fs.Int("width", 8, "fabric width (nodes per row)"),
		height:  fs.Int("height", 8, "fabric height (rows; must be 1 for -topo ring)"),
		workers: fs.Int("workers", 0, "tick-engine workers: 0 or 1 = serial, N > 1 = sharded parallel engine (bit-identical, observed event stream included)"),
		bench:   fs.String("bench", "", "drive a full-system CMP/PARSEC workload instead of synthetic traffic (profile name, see powerpunch -list)"),
		instr:   fs.Int64("instr", 20_000, "instructions per core for -bench"),
	}
}

func schemeByName(name string) (powerpunch.Scheme, error) {
	for _, cand := range powerpunch.Schemes {
		if cand.String() == name {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", name)
}

// build assembles the network (observers attached at construction) and
// the driver the flags describe: synthetic traffic by default, a
// full-system CMP workload with -bench.
func (sf *simFlags) build(opts ...powerpunch.Option) (*powerpunch.Network, powerpunch.Driver, error) {
	s, err := schemeByName(*sf.scheme)
	if err != nil {
		return nil, nil, err
	}
	cfg := powerpunch.DefaultConfig()
	cfg.Scheme = s
	cfg.Topology = *sf.topo
	cfg.Width, cfg.Height = *sf.width, *sf.height
	cfg.WarmupCycles = *sf.warmup
	cfg.MeasureCycles = *sf.cycles
	cfg.Workers = *sf.workers
	if *sf.bench != "" {
		// Workload runs measure from cycle 0 until the protocol drains;
		// -cycles only bounds the run (see sf.run).
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40
	}
	net, err := powerpunch.NewNetwork(cfg, opts...)
	if err != nil {
		return nil, nil, err
	}
	if *sf.bench != "" {
		prof, err := powerpunch.PARSECProfile(*sf.bench, *sf.instr)
		if err != nil {
			return nil, nil, err
		}
		return net, powerpunch.NewWorkload(prof, net, *sf.seed), nil
	}
	pat, err := powerpunch.PatternByName(*sf.pattern)
	if err != nil {
		return nil, nil, err
	}
	return net, powerpunch.NewSyntheticTraffic(pat, *sf.rate, *sf.seed), nil
}

// run drives the built driver to completion: a fixed-window Run for
// synthetic traffic, RunUntil (bounded by -cycles, floor 1M) for a
// -bench workload.
func (sf *simFlags) run(net *powerpunch.Network, drv powerpunch.Driver) powerpunch.RunResult {
	if *sf.bench == "" {
		return net.Run(drv)
	}
	bound := *sf.cycles
	if bound < 1_000_000 {
		bound = 1_000_000
	}
	res := net.RunUntil(drv, bound)
	if !res.Drained {
		fatal(fmt.Errorf("workload %s did not complete within %d cycles", *sf.bench, bound))
	}
	return res
}

// openOut resolves an -out flag: "-" means stdout.
func openOut(path string) (io.WriteCloser, error) {
	if path == "-" || path == "" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

// traceCmd streams the full cycle-level event trace of a run as JSON
// lines, optionally filtered to a subset of event kinds.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	sim := addSimFlags(fs)
	out := fs.String("out", "-", "output JSONL file, - for stdout")
	kinds := fs.String("kinds", "", "comma-separated event kinds to keep (empty = all): inject,vc_alloc,switch,link,eject,ni_block,pg_stall,pg_gate,pg_wake,pg_active,punch_emit,punch_local,punch_merge,punch_arrive,punch_hold,wl_miss,wl_fill,wl_dir")
	_ = fs.Parse(args)

	w, err := openOut(*out)
	if err != nil {
		fatal(err)
	}
	var tw *powerpunch.EventTraceWriter
	if *kinds == "" {
		tw = powerpunch.NewEventTraceWriter(w)
	} else {
		var ks []powerpunch.ProbeKind
		for _, name := range strings.Split(*kinds, ",") {
			k, ok := powerpunch.ProbeKindByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown event kind %q", name))
			}
			ks = append(ks, k)
		}
		tw = powerpunch.NewFilteredEventTraceWriter(w, ks...)
	}

	net, drv, err := sim.build(powerpunch.WithObserver(tw))
	if err != nil {
		fatal(err)
	}
	res := sim.run(net, drv)
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	if w != os.Stdout {
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "traced %d events over %d cycles (lat=%.2f, %d packets)\n",
		tw.Events(), res.Cycles, res.Summary.AvgLatency, res.Summary.Ejected)
}

// timelineCmd exports the periodic power/activity timeline of a run as
// CSV or JSONL.
func timelineCmd(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	sim := addSimFlags(fs)
	out := fs.String("out", "-", "output file, - for stdout")
	interval := fs.Int64("interval", 100, "sampling window, cycles")
	format := fs.String("format", "csv", "csv|jsonl")
	report := fs.Bool("report", false, "also print the counters report to stderr")
	_ = fs.Parse(args)

	sampler := powerpunch.NewTimelineSampler(*interval)
	probe := powerpunch.NewCountersProbe()
	net, drv, err := sim.build(powerpunch.WithObserver(sampler, probe))
	if err != nil {
		fatal(err)
	}
	res := sim.run(net, drv)

	w, err := openOut(*out)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "csv":
		err = sampler.WriteCSV(w)
	case "jsonl":
		err = sampler.WriteJSONL(w)
	default:
		err = fmt.Errorf("unknown format %q (want csv or jsonl)", *format)
	}
	if err != nil {
		fatal(err)
	}
	if w != os.Stdout {
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "%d samples over %d cycles (lat=%.2f, hidden=%.2f)\n",
		len(sampler.Samples()), res.Cycles, res.Summary.AvgLatency, probe.HiddenFraction())
	if *report {
		if err := probe.WriteReport(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// liveSnapshot is the JSON document `serve` publishes under the
// "powerpunch" expvar key, refreshed every snapshot window while the
// simulation runs on its own goroutine.
type liveSnapshot struct {
	Cycle       int64   `json:"cycle"`
	Running     bool    `json:"running"`
	Scheme      string  `json:"scheme"`
	Injected    int64   `json:"injected"`
	Ejected     int64   `json:"ejected"`
	AvgLatency  float64 `json:"avg_latency_cycles"`
	StallCycles int64   `json:"stall_cycles"`
	Wakeups     int64   `json:"wakeups"`
	PunchWakes  int64   `json:"punch_wakes"`
	HiddenFrac  float64 `json:"hidden_fraction"`
	Gated       int     `json:"gated"`
	Waking      int     `json:"waking"`
	Active      int     `json:"active"`
}

// serveCmd runs the simulation on a background goroutine and serves
// live metrics (expvar, /debug/vars) and profiling (/debug/pprof) over
// HTTP until interrupted. The simulation goroutine publishes an
// immutable snapshot each window; HTTP handlers only ever read the
// latest published pointer, so the hot loop is never locked.
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	sim := addSimFlags(fs)
	addr := fs.String("addr", "localhost:6060", "HTTP listen address")
	window := fs.Int64("window", 1000, "snapshot refresh interval, cycles")
	_ = fs.Parse(args)

	probe := powerpunch.NewCountersProbe()
	sampler := powerpunch.NewTimelineSampler(*window)
	net, drv, err := sim.build(powerpunch.WithObserver(probe, sampler))
	if err != nil {
		fatal(err)
	}

	var snap atomic.Pointer[liveSnapshot]
	snap.Store(&liveSnapshot{Scheme: *sim.scheme, Running: true})
	publish := func(running bool) {
		s := &liveSnapshot{
			Cycle:       net.Now(),
			Running:     running,
			Scheme:      *sim.scheme,
			Injected:    probe.NIQueue.Count,
			Ejected:     probe.Latency.Count,
			AvgLatency:  probe.Latency.Mean(),
			StallCycles: probe.StallCycles,
			Wakeups:     probe.PunchWakes.Wakeups + probe.ConvWakes.Wakeups,
			PunchWakes:  probe.PunchWakes.Wakeups,
			HiddenFrac:  probe.HiddenFraction(),
		}
		if all := sampler.Samples(); len(all) > 0 {
			last := all[len(all)-1]
			s.Gated, s.Waking, s.Active = last.Gated, last.Waking, last.Active
		}
		snap.Store(s)
	}
	expvar.Publish("powerpunch", expvar.Func(func() any { return *snap.Load() }))

	done := make(chan struct{})
	go func() {
		defer close(done)
		if wl, ok := drv.(*powerpunch.Workload); ok {
			// Full-system workload: run until the protocol drains,
			// publishing a snapshot each window.
			for !wl.Done() || !net.Quiesced() {
				for i := int64(0); i < *window && (!wl.Done() || !net.Quiesced()); i++ {
					wl.Tick(net, net.Now())
					net.Step()
				}
				publish(true)
			}
			publish(false)
			fmt.Fprintf(os.Stderr, "workload completed at cycle %d (exec=%d); still serving (ctrl-c to stop)\n",
				net.Now(), wl.ExecutionTime())
			return
		}
		budget := *sim.warmup + *sim.cycles
		for net.Now() < budget {
			chunk := budget - net.Now()
			if chunk > *window {
				chunk = *window
			}
			for i := int64(0); i < chunk; i++ {
				drv.Tick(net, net.Now())
				net.Step()
			}
			publish(true)
		}
		for !net.Quiesced() {
			net.Step()
		}
		publish(false)
		fmt.Fprintf(os.Stderr, "simulation drained at cycle %d; still serving (ctrl-c to stop)\n", net.Now())
	}()

	fmt.Fprintf(os.Stderr, "serving live metrics on http://%s/debug/vars (pprof on /debug/pprof)\n", *addr)
	if err := http.ListenAndServe(*addr, nil); err != nil {
		fatal(err)
	}
	<-done
}
