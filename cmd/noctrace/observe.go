// The observability subcommands: stream the cycle-level event trace
// (`trace`), export a power/activity timeline (`timeline`), and run
// the HTTP/JSON campaign server (`serve`). trace and timeline drive
// either a synthetic pattern or — with -bench — a full-system
// CMP/PARSEC workload, with observer sinks attached via
// powerpunch.WithObserver; serve accepts the same workloads as job
// specs over HTTP (internal/serve).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"powerpunch"
	"powerpunch/internal/serve"
)

// simFlags is the workload flag block shared by the observability
// subcommands: scheme, fabric, synthetic pattern, and run length.
type simFlags struct {
	scheme  *string
	pattern *string
	rate    *float64
	cycles  *int64
	warmup  *int64
	seed    *int64
	topo    *string
	width   *int
	height  *int
	workers *int
	bench   *string
	instr   *int64
	preset  *string
}

func addSimFlags(fs *flag.FlagSet) *simFlags {
	return &simFlags{
		scheme:  fs.String("scheme", "PowerPunch-PG", "power-gating scheme: "+strings.Join(powerpunch.SchemeNames(), "|")),
		pattern: fs.String("pattern", "uniform", "synthetic pattern (ignored with -bench)"),
		rate:    fs.Float64("rate", 0.02, "offered load, flits/node/cycle (ignored with -bench)"),
		cycles:  fs.Int64("cycles", 20_000, "measured cycles (with -bench: safety bound on the run)"),
		warmup:  fs.Int64("warmup", 0, "warmup cycles before measurement (ignored with -bench)"),
		seed:    fs.Int64("seed", 1, "seed"),
		topo:    fs.String("topo", "mesh", "fabric topology: mesh|torus|ring"),
		width:   fs.Int("width", 8, "fabric width (nodes per row)"),
		height:  fs.Int("height", 8, "fabric height (rows; must be 1 for -topo ring)"),
		workers: fs.Int("workers", 0, "tick-engine workers: 0 or 1 = serial, N > 1 = sharded parallel engine (bit-identical, observed event stream included)"),
		bench:   fs.String("bench", "", "drive a full-system CMP/PARSEC workload instead of synthetic traffic (profile name, see powerpunch -list)"),
		instr:   fs.Int64("instr", 20_000, "instructions per core for -bench"),
		preset:  fs.String("power-preset", "", "power-model calibration: "+strings.Join(powerpunch.PowerPresets(), "|")+" (default: "+powerpunch.DefaultPowerPreset+")"),
	}
}

// rejectIgnored fails on flag combinations the simulation would
// silently ignore: synthetic-traffic flags set alongside -bench, or
// -instr without -bench. Only flags the user actually set (fs.Visit)
// count — defaults are fine.
func (sf *simFlags) rejectIgnored(fs *flag.FlagSet) {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *sf.bench != "" {
		for _, name := range []string{"pattern", "rate", "warmup"} {
			if set[name] {
				fatal(fmt.Errorf("-%s is ignored with -bench; drop one of them", name))
			}
		}
	} else if set["instr"] {
		fatal(fmt.Errorf("-instr only applies with -bench"))
	}
}

// schemeByName resolves a scheme through the registry. Unknown names
// are a usage error: the typed message lists the known schemes and the
// process exits with status 2 (matching the preset-flag contract).
func schemeByName(name string) (powerpunch.Scheme, error) {
	s, err := powerpunch.SchemeByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noctrace:", err)
		os.Exit(2)
	}
	return s, err
}

// build assembles the network (observers attached at construction) and
// the driver the flags describe: synthetic traffic by default, a
// full-system CMP workload with -bench.
func (sf *simFlags) build(opts ...powerpunch.Option) (*powerpunch.Network, powerpunch.Driver, error) {
	s, err := schemeByName(*sf.scheme)
	if err != nil {
		return nil, nil, err
	}
	cfg := powerpunch.DefaultConfig()
	cfg.Scheme = s
	cfg.Topology = *sf.topo
	cfg.Width, cfg.Height = *sf.width, *sf.height
	cfg.WarmupCycles = *sf.warmup
	cfg.MeasureCycles = *sf.cycles
	cfg.Workers = *sf.workers
	cfg.PowerPreset = *sf.preset
	if *sf.bench != "" {
		// Workload runs measure from cycle 0 until the protocol drains;
		// -cycles only bounds the run (see sf.run).
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40
	}
	net, err := powerpunch.NewNetwork(cfg, opts...)
	if err != nil {
		return nil, nil, err
	}
	if *sf.bench != "" {
		prof, err := powerpunch.PARSECProfile(*sf.bench, *sf.instr)
		if err != nil {
			return nil, nil, err
		}
		return net, powerpunch.NewWorkload(prof, net, *sf.seed), nil
	}
	pat, err := powerpunch.PatternByName(*sf.pattern)
	if err != nil {
		return nil, nil, err
	}
	return net, powerpunch.NewSyntheticTraffic(pat, *sf.rate, *sf.seed), nil
}

// run drives the built driver to completion: a fixed-window Run for
// synthetic traffic, RunUntil (bounded by -cycles, floor 1M) for a
// -bench workload.
func (sf *simFlags) run(net *powerpunch.Network, drv powerpunch.Driver) powerpunch.RunResult {
	if *sf.bench == "" {
		return net.Run(drv)
	}
	bound := *sf.cycles
	if bound < 1_000_000 {
		bound = 1_000_000
	}
	res := net.RunUntil(drv, bound)
	if !res.Drained {
		fatal(fmt.Errorf("workload %s did not complete within %d cycles", *sf.bench, bound))
	}
	return res
}

// openOut resolves an -out flag: "-" means stdout.
func openOut(path string) (io.WriteCloser, error) {
	if path == "-" || path == "" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

// traceCmd streams the full cycle-level event trace of a run as JSON
// lines, optionally filtered to a subset of event kinds.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	sim := addSimFlags(fs)
	out := fs.String("out", "-", "output JSONL file, - for stdout")
	kinds := fs.String("kinds", "", "comma-separated event kinds to keep (empty = all): inject,vc_alloc,switch,link,eject,ni_block,pg_stall,pg_gate,pg_wake,pg_active,punch_emit,punch_local,punch_merge,punch_arrive,punch_hold,wl_miss,wl_fill,wl_dir")
	_ = fs.Parse(args)
	sim.rejectIgnored(fs)

	w, err := openOut(*out)
	if err != nil {
		fatal(err)
	}
	var tw *powerpunch.EventTraceWriter
	if *kinds == "" {
		tw = powerpunch.NewEventTraceWriter(w)
	} else {
		var ks []powerpunch.ProbeKind
		for _, name := range strings.Split(*kinds, ",") {
			k, ok := powerpunch.ProbeKindByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown event kind %q", name))
			}
			ks = append(ks, k)
		}
		tw = powerpunch.NewFilteredEventTraceWriter(w, ks...)
	}

	net, drv, err := sim.build(powerpunch.WithObserver(tw))
	if err != nil {
		fatal(err)
	}
	res := sim.run(net, drv)
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	if w != os.Stdout {
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "traced %d events over %d cycles (lat=%.2f, %d packets)\n",
		tw.Events(), res.Cycles, res.Summary.AvgLatency, res.Summary.Ejected)
}

// timelineCmd exports the periodic power/activity timeline of a run as
// CSV or JSONL.
func timelineCmd(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	sim := addSimFlags(fs)
	out := fs.String("out", "-", "output file, - for stdout")
	interval := fs.Int64("interval", 100, "sampling window, cycles")
	format := fs.String("format", "csv", "csv|jsonl")
	report := fs.Bool("report", false, "also print the counters report to stderr")
	_ = fs.Parse(args)
	sim.rejectIgnored(fs)

	sampler := powerpunch.NewTimelineSampler(*interval)
	probe := powerpunch.NewCountersProbe()
	net, drv, err := sim.build(powerpunch.WithObserver(sampler, probe))
	if err != nil {
		fatal(err)
	}
	res := sim.run(net, drv)

	w, err := openOut(*out)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "csv":
		err = sampler.WriteCSV(w)
	case "jsonl":
		err = sampler.WriteJSONL(w)
	default:
		err = fmt.Errorf("unknown format %q (want csv or jsonl)", *format)
	}
	if err != nil {
		fatal(err)
	}
	if w != os.Stdout {
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "%d samples over %d cycles (lat=%.2f, hidden=%.2f)\n",
		len(sampler.Samples()), res.Cycles, res.Summary.AvgLatency, probe.HiddenFraction())
	if *report {
		if err := probe.WriteReport(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// serveCmd mounts the campaign server (internal/serve): simulation as
// a service over HTTP/JSON with a bounded worker pool, admission
// control (full queue -> 429), a deterministic result cache keyed by
// the canonical (config, seed) hash, parameter-sweep campaigns with
// progress/resume, chunked-JSONL event and timeline streaming,
// per-client rate limits, and graceful shutdown that drains in-flight
// jobs and persists campaign state. Live process metrics stay on
// /debug/vars (the server's counters under the "serve" key) and pprof
// on /debug/pprof.
//
// The pre-campaign serve took the simulation flags directly and
// silently ignored several combinations (-pattern/-rate/-warmup under
// -bench, -instr without -bench). Simulations are described by job
// specs over HTTP now; any leftover simulation flag is rejected by
// the flag parser, and the job/campaign validators reject the same
// combinations with a 400 instead of ignoring them.
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:6060", "HTTP listen address")
	workers := fs.Int("workers", 4, "simulation worker pool size (also bounds concurrent streams)")
	queue := fs.Int("queue", 64, "job queue depth; submissions beyond it are rejected with 429")
	cacheSize := fs.Int("cache", 1024, "result cache capacity, entries (keyed by the canonical (config, seed) hash)")
	statePath := fs.String("state", "", "campaign state file: persisted on graceful shutdown, campaigns resumable after restart")
	rateLimit := fs.Float64("rate-limit", 0, "per-client requests/second (0 = unlimited)")
	rateBurst := fs.Int("rate-burst", 0, "per-client burst size (requires -rate-limit)")
	_ = fs.Parse(args)

	switch {
	case *workers < 1:
		fatal(fmt.Errorf("serve: -workers must be >= 1"))
	case *queue < 1:
		fatal(fmt.Errorf("serve: -queue must be >= 1"))
	case *cacheSize < 1:
		fatal(fmt.Errorf("serve: -cache must be >= 1"))
	case *rateLimit < 0:
		fatal(fmt.Errorf("serve: -rate-limit must be >= 0"))
	case *rateBurst != 0 && *rateLimit == 0:
		fatal(fmt.Errorf("serve: -rate-burst without -rate-limit would be silently ignored; set -rate-limit > 0"))
	}

	srv, err := serve.New(serve.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheSize:  *cacheSize,
		StatePath:  *statePath,
		RateLimit:  *rateLimit,
		RateBurst:  *rateBurst,
	})
	if err != nil {
		fatal(err)
	}
	expvar.Publish("serve", srv.Metrics())

	root := http.NewServeMux()
	root.Handle("/debug/", http.DefaultServeMux) // expvar + pprof
	root.Handle("/", srv.Handler())
	hs := &http.Server{Addr: *addr, Handler: root}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "campaign server on http://%s/api/v1 (workers=%d queue=%d cache=%d; metrics /debug/vars, pprof /debug/pprof)\n",
		*addr, *workers, *queue, *cacheSize)
	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "shutting down: draining in-flight jobs")
	sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_ = hs.Shutdown(sctx)
	if err := srv.Shutdown(sctx); err != nil {
		fatal(err)
	}
	if *statePath != "" {
		fmt.Fprintf(os.Stderr, "campaign state persisted to %s\n", *statePath)
	}
}
