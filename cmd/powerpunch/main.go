// Command powerpunch regenerates the paper's tables and figures.
//
// Usage:
//
//	powerpunch -fig table1|table2|fig7|fig8|fig9|fig10|fig11|golden|fig12|fig13|scale|area|ablation|heatmap|all
//	           [-full] [-seed N] [-bench name,name] [-hops N] [-csv dir]
//	           [-scheme name,name]
//
// -fig accepts a comma-separated list; the full-system figures (fig7-11)
// share one set of simulations per invocation.
//
// By default experiments run at Quick fidelity (reduced windows /
// instruction budgets, minutes of wall time for `all`); -full uses the
// paper-quality settings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"powerpunch"
	"powerpunch/internal/config"
	"powerpunch/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "experiment id (see -list)")
	list := flag.Bool("list", false, "list experiment ids")
	full := flag.Bool("full", false, "paper-quality fidelity (slower)")
	seed := flag.Int64("seed", 1, "simulation seed")
	bench := flag.String("bench", "", "comma-separated benchmark subset for fig7-fig11")
	hops := flag.Int("hops", 3, "punch hop count for fig13")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory (fig7-fig13)")
	checks := flag.Bool("checks", false, "run with the cycle-level invariant engine enabled (slower; violations abort with a replayable artifact)")
	workers := flag.Int("workers", 0, "tick-engine workers per simulation: 0 or 1 = serial, N > 1 = sharded parallel engine (bit-identical results)")
	fullTick := flag.Bool("fulltick", false, "use the full-walk tick scheduler instead of the active-set scheduler (bit-identical results)")
	observe := flag.Bool("probes", false, "attach the counters probe to full-system runs and report the wakeup exposed/hidden split")
	topoName := flag.String("topo", "", "fabric for the simulation-backed experiments: mesh|torus|ring (default: the paper's 8x8 mesh)")
	width := flag.Int("width", 0, "fabric width, used with -topo (default 8)")
	height := flag.Int("height", 0, "fabric height, used with -topo (default 8; must be 1 for -topo ring)")
	powerPreset := flag.String("power-preset", "", "power-model calibration: "+strings.Join(powerpunch.PowerPresets(), "|")+" (default: the paper's "+powerpunch.DefaultPowerPreset+"; the golden baselines are pinned to it)")
	schemeList := flag.String("scheme", "", "comma-separated scheme subset for the scheme-parameterized experiments (fig12, heatmap): "+strings.Join(powerpunch.SchemeNames(), "|")+" (default: each experiment's paper set)")
	flag.Parse()

	var schemes []config.Scheme
	if *schemeList != "" {
		for _, name := range strings.Split(*schemeList, ",") {
			s, err := config.SchemeByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "powerpunch: %v\n", err)
				os.Exit(2)
			}
			schemes = append(schemes, s)
		}
	}

	experiments.EnableChecks = *checks
	experiments.Workers = *workers
	experiments.FullTick = *fullTick
	observeFullSystem = *observe

	if *powerPreset != "" {
		if err := experiments.SetPowerPreset(*powerPreset); err != nil {
			fmt.Fprintf(os.Stderr, "powerpunch: %v\n", err)
			os.Exit(2)
		}
	}

	if *topoName != "" || *width != 0 || *height != 0 {
		w, h := *width, *height
		if w == 0 {
			w = 8
		}
		if h == 0 {
			h = 8
			if *topoName == "ring" {
				h = 1
			}
		}
		if err := experiments.SetFabric(*topoName, w, h); err != nil {
			fmt.Fprintf(os.Stderr, "powerpunch: %v\n", err)
			os.Exit(2)
		}
	}

	if *list || *fig == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		if *fig == "" && !*list {
			os.Exit(2)
		}
		return
	}

	fid := experiments.Quick
	if *full {
		fid = experiments.Full
	}
	var benches []string
	if *bench != "" {
		benches = strings.Split(*bench, ",")
	}

	ids := strings.Split(*fig, ",")
	if *fig == "all" {
		ids = nil
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	}

	for _, id := range ids {
		start := time.Now()
		out, err := run(id, fid, *seed, benches, *hops, *csvDir, schemes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powerpunch: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// writeCSV writes one CSV artifact into dir (no-op when dir is empty).
func writeCSV(dir, name string, fn func(w *os.File) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + name)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

// fullSystemCache avoids re-running the shared fig7-fig11 simulations
// within one `-fig all` invocation.
var fullSystemCache []experiments.BenchResult

// observeFullSystem mirrors the -probes flag: full-system runs attach
// the counters probe, so fig9/fig10 can report the wakeup
// exposed-vs-hidden split alongside the blocking averages.
var observeFullSystem bool

func fullSystem(fid experiments.Fidelity, seed int64, benches []string) ([]experiments.BenchResult, error) {
	if fullSystemCache != nil {
		return fullSystemCache, nil
	}
	res, err := experiments.RunFullSystem(experiments.FullSystemOptions{
		Fidelity: fid, Seed: seed, Benchmarks: benches, Observe: observeFullSystem,
	})
	if err == nil {
		fullSystemCache = res
	}
	return res, err
}

func run(id string, fid experiments.Fidelity, seed int64, benches []string, hops int, csvDir string, schemes []config.Scheme) (string, error) {
	switch id {
	case "table1":
		return experiments.FormatTable1(), nil
	case "table2":
		return experiments.FormatTable2(), nil
	case "fig7", "fig8", "fig9", "fig10", "fig11":
		res, err := fullSystem(fid, seed, benches)
		if err != nil {
			return "", err
		}
		if err := writeCSV(csvDir, "fullsystem.csv", func(w *os.File) error {
			return experiments.WriteFullSystemCSV(w, res)
		}); err != nil {
			return "", err
		}
		switch id {
		case "fig7":
			return experiments.FormatFig7(res), nil
		case "fig8":
			return experiments.FormatFig8(res), nil
		case "fig9":
			return experiments.FormatFig9(res), nil
		case "fig10":
			return experiments.FormatFig10(res), nil
		default:
			return experiments.FormatFig11(res), nil
		}
	case "golden":
		g, err := experiments.LoadGolden()
		if err != nil {
			return "", err
		}
		res, err := experiments.RunGolden(g)
		if err != nil {
			return "", err
		}
		return experiments.FormatGolden(g, res), nil
	case "fig12":
		pts, err := experiments.RunLoadSweep(experiments.LoadSweepOptions{Fidelity: fid, Seed: seed, Schemes: schemes})
		if err != nil {
			return "", err
		}
		if err := writeCSV(csvDir, "loadsweep.csv", func(w *os.File) error {
			return experiments.WriteLoadSweepCSV(w, pts)
		}); err != nil {
			return "", err
		}
		return experiments.FormatFig12(pts, schemes), nil
	case "fig13":
		pts, err := experiments.RunSensitivity(experiments.SensitivityOptions{Fidelity: fid, Seed: seed, PunchHops: hops})
		if err != nil {
			return "", err
		}
		if err := writeCSV(csvDir, "sensitivity.csv", func(w *os.File) error {
			return experiments.WriteSensitivityCSV(w, pts)
		}); err != nil {
			return "", err
		}
		return experiments.FormatFig13(pts), nil
	case "heatmap":
		var out string
		hs := schemes
		if len(hs) == 0 {
			hs = []config.Scheme{config.ConvOptPG, config.PowerPunchPG}
		}
		for _, s := range hs {
			h, err := experiments.RunHeatmap(s, fid, seed)
			if err != nil {
				return "", err
			}
			out += experiments.FormatHeatmap(h) + "\n"
		}
		return out, nil
	case "scale":
		pts, err := experiments.RunScalability(fid, seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatScalability(pts), nil
	case "area":
		return experiments.FormatArea(), nil
	case "ablation":
		pts, err := experiments.RunAblation(fid, seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatAblation(pts), nil
	default:
		return "", fmt.Errorf("unknown experiment %q (use -list)", id)
	}
}
