package powerpunch_test

import (
	"fmt"
	"strings"
	"testing"

	"powerpunch"
)

// runCMP drives one full-system CMP workload to completion on the
// given configuration with a counters probe and a JSONL trace writer
// attached, returning everything the golden differential compares: the
// run result, the workload's execution time, the probe report, and the
// full event trace.
func runCMP(t *testing.T, cfg powerpunch.Config, bench string, instr int64) (powerpunch.RunResult, int64, string, string) {
	t.Helper()
	prof, err := powerpunch.PARSECProfile(bench, instr)
	if err != nil {
		t.Fatal(err)
	}
	probe := powerpunch.NewCountersProbe()
	var trace strings.Builder
	tw := powerpunch.NewEventTraceWriter(&trace)
	net, err := powerpunch.NewNetwork(cfg, powerpunch.WithObserver(probe, tw))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	wl := powerpunch.NewWorkload(prof, net, 7)
	res := net.RunUntil(wl, 400_000)
	if !res.Drained {
		t.Fatal("workload incomplete")
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	var rep strings.Builder
	if err := probe.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	return res, wl.ExecutionTime(), rep.String(), trace.String()
}

// TestCMPModernGolden is the full-system counterpart of the synthetic
// golden differential: a CMP/PARSEC workload on the public API, on the
// topology layer (mesh and torus), must produce a bit-identical run
// result, execution time, probe report, AND JSONL event trace across
// every engine — serial active-set (the reference), serial FullTick,
// the sharded parallel engine at 2/4/8 workers, and parallel FullTick.
// The trace comparison is the strictest check available: every event's
// kind, node, cycle stamp, and payload, including the workload's own
// wl_miss/wl_fill/wl_dir protocol events.
func TestCMPModernGolden(t *testing.T) {
	fabrics := []struct {
		topo          string
		width, height int
	}{
		{"mesh", 4, 4},
		{"torus", 4, 4},
	}
	for _, fab := range fabrics {
		for _, s := range []powerpunch.Scheme{powerpunch.ConvOptPG, powerpunch.PowerPunchPG} {
			fab, s := fab, s
			t.Run(fmt.Sprintf("%s/%s", fab.topo, s), func(t *testing.T) {
				t.Parallel()
				base := powerpunch.DefaultConfig()
				base.Scheme = s
				base.Topology = fab.topo
				base.Width, base.Height = fab.width, fab.height
				base.WarmupCycles = 0
				base.MeasureCycles = 1 << 40

				ref, refExec, refProbe, refTrace := runCMP(t, base, "swaptions", 2500)
				if ref.Summary.Ejected == 0 {
					t.Fatalf("degenerate run, nothing ejected: %+v", ref)
				}
				if !strings.Contains(refTrace, `"wl_miss"`) || !strings.Contains(refTrace, `"wl_fill"`) {
					t.Error("trace carries no workload protocol events")
				}

				variants := []struct {
					name     string
					fullTick bool
					workers  int
				}{
					{"fulltick", true, 0},
					{"workers2", false, 2},
					{"workers4", false, 4},
					{"workers8", false, 8},
					{"fulltick-workers4", true, 4},
				}
				for _, v := range variants {
					cfg := base
					cfg.FullTick = v.fullTick
					cfg.Workers = v.workers
					res, exec, probe, trace := runCMP(t, cfg, "swaptions", 2500)
					if res != ref {
						t.Errorf("%s: run result differs:\nref %+v\ngot %+v", v.name, ref, res)
					}
					if exec != refExec {
						t.Errorf("%s: execution time differs: ref %d got %d", v.name, refExec, exec)
					}
					if probe != refProbe {
						t.Errorf("%s: probe reports differ:\nref:\n%s\ngot:\n%s", v.name, refProbe, probe)
					}
					if trace != refTrace {
						t.Errorf("%s: full event traces differ", v.name)
					}
				}
			})
		}
	}
}

// TestCMPObserverDoesNotPerturb proves attaching the observability
// stack to a CMP run changes nothing about the simulation: the run
// result and execution time match an unobserved run exactly (the
// workload's event emission must not consume randomness or alter
// timing).
func TestCMPObserverDoesNotPerturb(t *testing.T) {
	run := func(observe bool) (powerpunch.RunResult, int64) {
		prof, err := powerpunch.PARSECProfile("ferret", 2500)
		if err != nil {
			t.Fatal(err)
		}
		cfg := powerpunch.DefaultConfig()
		cfg.Scheme = powerpunch.PowerPunchPG
		cfg.Width, cfg.Height = 4, 4
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40
		var opts []powerpunch.Option
		if observe {
			opts = append(opts, powerpunch.WithObserver(powerpunch.NewCountersProbe()))
		}
		net, err := powerpunch.NewNetwork(cfg, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		wl := powerpunch.NewWorkload(prof, net, 3)
		res := net.RunUntil(wl, 400_000)
		if !res.Drained {
			t.Fatal("workload incomplete")
		}
		return res, wl.ExecutionTime()
	}
	plain, plainExec := run(false)
	obs, obsExec := run(true)
	if plain != obs || plainExec != obsExec {
		t.Errorf("observer perturbed the run:\nplain    %+v exec=%d\nobserved %+v exec=%d",
			plain, plainExec, obs, obsExec)
	}
}
