package powerpunch_test

import (
	"fmt"
	"testing"

	"powerpunch"
)

// TestRunsAreSeedDeterministic pins the property the whole replay
// harness rests on (and that noctrace and the violation artifacts
// advertise): the simulator has no hidden nondeterminism, so two runs
// built from the same configuration and seed produce byte-identical
// results. Checked per scheme, with the invariant engine enabled on the
// second pair to prove observation does not perturb the simulation.
func TestRunsAreSeedDeterministic(t *testing.T) {
	for _, s := range powerpunch.Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			run := func(checks bool) powerpunch.RunResult {
				cfg := powerpunch.DefaultConfig()
				cfg.Scheme = s
				cfg.Width, cfg.Height = 4, 4
				cfg.WarmupCycles = 500
				cfg.MeasureCycles = 4000
				cfg.Checks = checks
				net, err := powerpunch.NewNetwork(cfg)
				if err != nil {
					t.Fatal(err)
				}
				drv := powerpunch.NewSyntheticTraffic(powerpunch.Uniform(), 0.02, 7)
				return net.Run(drv)
			}
			a, b := run(false), run(false)
			if a != b {
				t.Fatalf("identical config+seed diverged:\n  %+v\n  %+v", a, b)
			}
			if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
				t.Fatalf("rendered results differ:\n  %+v\n  %+v", a, b)
			}
			ca, cb := run(true), run(true)
			if ca != cb {
				t.Fatalf("checked runs diverged:\n  %+v\n  %+v", ca, cb)
			}
			if ca != a {
				t.Fatalf("enabling checks changed the simulation:\nchecked   %+v\nunchecked %+v", ca, a)
			}
			if !a.Drained || a.Summary.Ejected == 0 {
				t.Fatalf("degenerate run: %+v", a)
			}
		})
	}
}
