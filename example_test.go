package powerpunch_test

import (
	"fmt"

	"powerpunch"
)

// ExampleEncodePunchChannel regenerates the headline of the paper's
// Table 1: the X+ punch channel of router 27 on an 8x8 mesh needs only
// 5 bits for its 22 distinct merged target sets.
func ExampleEncodePunchChannel() {
	enc := powerpunch.EncodePunchChannel(8, 8, 27, 2 /* E */, 3)
	fmt.Printf("%d distinct sets, %d-bit channel\n", len(enc.Codes), enc.WidthBits)
	fmt.Printf("first set: %v\n", enc.Codes[0].Set)
	// Output:
	// 22 distinct sets, 5-bit channel
	// first set: { 12 }
}

// ExampleNewNetwork runs a tiny four-scheme comparison and reports the
// facts the paper's evaluation hinges on: power gating blocks packets
// unless Power Punch hides the wakeups.
func ExampleNewNetwork() {
	lat := map[powerpunch.Scheme]float64{}
	for _, scheme := range powerpunch.Schemes {
		cfg := powerpunch.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Width, cfg.Height = 4, 4
		cfg.WarmupCycles = 500
		cfg.MeasureCycles = 4000
		net, err := powerpunch.NewNetwork(cfg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		res := net.Run(powerpunch.NewSyntheticTraffic(powerpunch.Uniform(), 0.02, 7))
		lat[scheme] = res.Summary.AvgLatency
	}
	fmt.Println("ConvOpt slower than No-PG:", lat[powerpunch.ConvOptPG] > 1.3*lat[powerpunch.NoPG])
	fmt.Println("PowerPunch-PG within 25% of No-PG:", lat[powerpunch.PowerPunchPG] < 1.25*lat[powerpunch.NoPG])
	fmt.Println("PowerPunch-PG beats ConvOpt:", lat[powerpunch.PowerPunchPG] < lat[powerpunch.ConvOptPG])
	// Output:
	// ConvOpt slower than No-PG: true
	// PowerPunch-PG within 25% of No-PG: true
	// PowerPunch-PG beats ConvOpt: true
}
