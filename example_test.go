package powerpunch_test

import (
	"bytes"
	"fmt"
	"strings"

	"powerpunch"
)

// ExampleEncodePunchChannel regenerates the headline of the paper's
// Table 1: the X+ punch channel of router 27 on an 8x8 mesh needs only
// 5 bits for its 22 distinct merged target sets. The zero TopologySpec
// is the paper's 8x8 mesh.
func ExampleEncodePunchChannel() {
	enc, err := powerpunch.EncodePunchChannel(powerpunch.TopologySpec{}, 27, powerpunch.DirE, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d distinct sets, %d-bit channel\n", len(enc.Codes), enc.WidthBits)
	fmt.Printf("first set: %v\n", enc.Codes[0].Set)
	// Output:
	// 22 distinct sets, 5-bit channel
	// first set: { 12 }
}

// ExampleNewNetwork runs a tiny four-scheme comparison and reports the
// facts the paper's evaluation hinges on: power gating blocks packets
// unless Power Punch hides the wakeups.
func ExampleNewNetwork() {
	lat := map[powerpunch.Scheme]float64{}
	for _, scheme := range powerpunch.Schemes {
		cfg := powerpunch.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Width, cfg.Height = 4, 4
		cfg.WarmupCycles = 500
		cfg.MeasureCycles = 4000
		net, err := powerpunch.NewNetwork(cfg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		res := net.Run(powerpunch.NewSyntheticTraffic(powerpunch.Uniform(), 0.02, 7))
		lat[scheme] = res.Summary.AvgLatency
	}
	fmt.Println("ConvOpt slower than No-PG:", lat[powerpunch.ConvOptPG] > 1.3*lat[powerpunch.NoPG])
	fmt.Println("PowerPunch-PG within 25% of No-PG:", lat[powerpunch.PowerPunchPG] < 1.25*lat[powerpunch.NoPG])
	fmt.Println("PowerPunch-PG beats ConvOpt:", lat[powerpunch.PowerPunchPG] < lat[powerpunch.ConvOptPG])
	// Output:
	// ConvOpt slower than No-PG: true
	// PowerPunch-PG within 25% of No-PG: true
	// PowerPunch-PG beats ConvOpt: true
}

// ExampleWithObserver attaches a counters probe at construction time.
// Observation never perturbs the simulation — results are bit-identical
// to an unobserved run — and the probe exposes the paper's §6 blocking
// analysis: under PowerPunch-PG, punch signals trigger the wakeups and
// hide their latency from traffic.
func ExampleWithObserver() {
	cfg := powerpunch.DefaultConfig()
	cfg.Scheme = powerpunch.PowerPunchPG
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 4000

	probe := powerpunch.NewCountersProbe()
	net, err := powerpunch.NewNetwork(cfg, powerpunch.WithObserver(probe))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res := net.Run(powerpunch.NewSyntheticTraffic(powerpunch.Uniform(), 0.02, 7))

	fmt.Println("packets observed:", probe.Latency.Count > 0)
	fmt.Println("wakeups observed:", probe.PunchWakes.Wakeups+probe.ConvWakes.Wakeups > 0)
	fmt.Println("most wakeup cycles hidden:", probe.HiddenFraction() > 0.5)
	st := res.Detail.Stages
	sum := st.NIQueueCycles + st.WakeupNICycles + st.WakeupNetCycles + st.TransitCycles
	fmt.Println("stage breakdown exact:", sum == st.LatencyCycles)
	// Output:
	// packets observed: true
	// wakeups observed: true
	// most wakeup cycles hidden: true
	// stage breakdown exact: true
}

// ExampleNewTimelineSampler records a power/activity timeline — how
// many routers are gated or waking over time — exportable as CSV or
// JSONL (see `noctrace timeline` for the CLI form).
func ExampleNewTimelineSampler() {
	cfg := powerpunch.DefaultConfig()
	cfg.Scheme = powerpunch.ConvOptPG
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 2000

	sampler := powerpunch.NewTimelineSampler(256)
	net, err := powerpunch.NewNetwork(cfg, powerpunch.WithObserver(sampler))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	net.Run(powerpunch.NewSyntheticTraffic(powerpunch.Uniform(), 0.01, 3))

	gatedEver := false
	for _, s := range sampler.Samples() {
		if s.Gated > 0 {
			gatedEver = true
		}
	}
	var csv bytes.Buffer
	if err := sampler.WriteCSV(&csv); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("windows sampled:", len(sampler.Samples()) >= 8)
	fmt.Println("routers gated at some point:", gatedEver)
	fmt.Println("csv header:", strings.SplitN(csv.String(), "\n", 2)[0])
	// Output:
	// windows sampled: true
	// routers gated at some point: true
	// csv header: cycle,gated,waking,active,injected,ejected,switched,punches,stalls,wakeups,ni_block,p_buffer_w,p_crossbar_w,p_alloc_w,p_clock_w,p_link_w,p_punch_w,p_wakeup_w,p_gate_w
}

// ExampleNewEventTraceWriter streams the full cycle-level event trace
// as JSON lines (see `noctrace trace` for the CLI form).
func ExampleNewEventTraceWriter() {
	cfg := powerpunch.DefaultConfig()
	cfg.Scheme = powerpunch.PowerPunchPG
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 600

	var buf bytes.Buffer
	tw := powerpunch.NewEventTraceWriter(&buf)
	net, err := powerpunch.NewNetwork(cfg, powerpunch.WithObserver(tw))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	net.Run(powerpunch.NewSyntheticTraffic(powerpunch.Uniform(), 0.02, 1))
	if err := tw.Flush(); err != nil {
		fmt.Println("error:", err)
		return
	}
	lines := strings.Count(buf.String(), "\n")
	fmt.Println("events recorded:", tw.Events() > 0 && int64(lines) == tw.Events())
	fmt.Println("jsonl shaped:", strings.HasPrefix(buf.String(), `{"cycle":`))
	// Output:
	// events recorded: true
	// jsonl shaped: true
}

// ExampleNewTraceRecorder records every NI submission of a run and
// replays the trace bit-exactly on a fresh network (the workflow
// behind `noctrace record` / `noctrace replay`).
func ExampleNewTraceRecorder() {
	cfg := powerpunch.DefaultConfig()
	cfg.Scheme = powerpunch.PowerPunchPG
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 2000

	net, err := powerpunch.NewNetwork(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rec := powerpunch.NewTraceRecorder(net)
	orig := net.Run(powerpunch.NewSyntheticTraffic(powerpunch.Uniform(), 0.02, 9))

	net2, err := powerpunch.NewNetwork(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	replayed := net2.Run(powerpunch.NewTraceReplay(rec.Trace()))

	fmt.Println("replay bit-identical:", replayed == orig)
	// Output:
	// replay bit-identical: true
}
