// Encoding example: print the Table-1 punch-signal code book for any
// router and direction — the hardware-cost argument at the heart of
// Power Punch's contention-free multi-hop wakeup propagation.
//
//	go run ./examples/encoding [router [dir [hops]]]
//
// dir is one of N,S,E,W; defaults reproduce the paper's Table 1
// (router 27, X+ i.e. E, 3 hops, 8x8 mesh).
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"powerpunch"
)

func main() {
	router, hops := 27, 3
	dir := powerpunch.DirE // the paper's Table 1 is the X+ channel
	dirNames := map[string]powerpunch.Direction{
		"N": powerpunch.DirN, "S": powerpunch.DirS,
		"E": powerpunch.DirE, "W": powerpunch.DirW,
	}
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("router must be an integer: %v", err)
		}
		router = v
	}
	if len(os.Args) > 2 {
		v, ok := dirNames[os.Args[2]]
		if !ok {
			log.Fatalf("dir must be one of N,S,E,W")
		}
		dir = v
	}
	if len(os.Args) > 3 {
		v, err := strconv.Atoi(os.Args[3])
		if err != nil || v < 1 || v > 4 {
			log.Fatalf("hops must be in [1,4]")
		}
		hops = v
	}

	// The zero TopologySpec is the paper's 8x8 mesh.
	enc, err := powerpunch.EncodePunchChannel(powerpunch.TopologySpec{}, powerpunch.NodeID(router), dir, hops)
	if err != nil {
		log.Fatal(err)
	}
	if enc == nil {
		log.Fatalf("router %d has no %s channel (mesh edge)", router, os.Args[2])
	}
	fmt.Print(enc.FormatTable())
	fmt.Printf("\n%d distinct target sets -> %d-bit channel (paper Table 1: 22 sets, 5 bits for R27 X+)\n",
		len(enc.Codes), enc.WidthBits)
}
