// Load-sweep example: reproduce the shape of the paper's Figure 12 on
// one traffic pattern — the "power-gating curve" of conventional
// power-gating (high latency at low load, dipping, then rising into
// saturation) versus Power Punch tracking the No-PG curve across the
// whole range.
//
//	go run ./examples/loadsweep [pattern]
//
// Patterns: uniform, transpose, bit-complement, tornado, neighbor
// (default: uniform).
package main

import (
	"fmt"
	"log"
	"os"

	"powerpunch"
)

func main() {
	name := "uniform"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	pat, err := powerpunch.PatternByName(name)
	if err != nil {
		log.Fatal(err)
	}

	rates := []float64{0.005, 0.02, 0.05, 0.10, 0.15, 0.20}
	schemes := []powerpunch.Scheme{powerpunch.NoPG, powerpunch.ConvOptPG, powerpunch.PowerPunchPG}

	fmt.Printf("load sweep, %s traffic on the default 8x8 mesh\n\n", name)
	fmt.Printf("%-8s", "rate")
	for _, s := range schemes {
		fmt.Printf("  %-12s", "lat:"+shortName(s))
	}
	for _, s := range schemes {
		fmt.Printf("  %-12s", "W:"+shortName(s))
	}
	fmt.Println()

	for _, rate := range rates {
		fmt.Printf("%-8.3f", rate)
		lats := make([]float64, 0, len(schemes))
		watts := make([]float64, 0, len(schemes))
		for _, s := range schemes {
			cfg := powerpunch.DefaultConfig()
			cfg.Scheme = s
			cfg.WarmupCycles = 2_000
			cfg.MeasureCycles = 10_000
			net, err := powerpunch.NewNetwork(cfg)
			if err != nil {
				log.Fatal(err)
			}
			drv := powerpunch.NewSyntheticTraffic(pat, rate, 1)
			res := net.Run(drv)
			lats = append(lats, res.Summary.AvgLatency)
			watts = append(watts, res.AvgStaticW)
		}
		for _, l := range lats {
			fmt.Printf("  %-12.2f", l)
		}
		for _, w := range watts {
			fmt.Printf("  %-12.3f", w)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected: ConvOpt latency is worst at LOW load (everything gated, packets")
	fmt.Println("blocked repeatedly); PowerPunch-PG tracks No-PG across the whole range while")
	fmt.Println("its static power stays close to ConvOpt's.")
}

func shortName(s powerpunch.Scheme) string {
	switch s {
	case powerpunch.NoPG:
		return "NoPG"
	case powerpunch.ConvOptPG:
		return "Conv"
	case powerpunch.PowerPunchPG:
		return "Punch"
	default:
		return s.String()
	}
}
