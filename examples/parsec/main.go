// Full-system example: run a PARSEC-like coherence workload (cores, L1s,
// shared L2 banks, directory, memory controllers) over the NoC under all
// four schemes and report the execution-time penalty of power-gating —
// the paper's headline result (Figures 7-8: Power Punch saves >83% of
// router static energy for <0.4% execution-time penalty) — plus the
// counters probe's blocking analysis behind Figure 9: under ConvOpt a
// packet waits on ~4 gated routers, under Power Punch wakeups are
// punched ahead of the packet and almost entirely hidden.
//
//	go run ./examples/parsec [benchmark]
//
// Benchmarks: blackscholes bodytrack canneal dedup ferret fluidanimate
// swaptions x264 (default: ferret).
package main

import (
	"fmt"
	"log"
	"os"

	"powerpunch"
)

func main() {
	bench := "ferret"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	prof, err := powerpunch.PARSECProfile(bench, 30_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-system run: %s on an 8x8 CMP (64 cores, MESI over 3 VNs)\n\n", bench)

	var baseExec int64
	for _, scheme := range powerpunch.Schemes {
		cfg := powerpunch.DefaultConfig()
		cfg.Scheme = scheme
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40

		probe := powerpunch.NewCountersProbe()
		net, err := powerpunch.NewNetwork(cfg, powerpunch.WithObserver(probe))
		if err != nil {
			log.Fatal(err)
		}
		wl := powerpunch.NewWorkload(prof, net, 7)
		res := net.RunUntil(wl, 10_000_000)
		net.Close()
		if !res.Drained {
			log.Fatalf("%v: workload did not complete", scheme)
		}

		exec := wl.ExecutionTime()
		if scheme == powerpunch.NoPG {
			baseExec = exec
		}
		fmt.Printf("%-18s execution %8d cycles (%+.2f%% vs No-PG) | packet latency %6.2f | static saved %5.1f%%\n",
			scheme, exec, 100*(float64(exec)/float64(baseExec)-1),
			res.Summary.AvgLatency, res.StaticSaved*100)
		if wakes := probe.PunchWakes.Wakeups + probe.ConvWakes.Wakeups; wakes > 0 {
			fmt.Printf("%-18s gated routers/packet %.2f | wakeups %d (%d punched ahead) | wakeup cycles hidden from traffic %.1f%%\n",
				"", res.Summary.AvgBlocked, wakes, probe.PunchWakes.Wakeups,
				probe.HiddenFraction()*100)
		}
	}
}
