// Full-system example: run a PARSEC-like coherence workload (cores, L1s,
// shared L2 banks, directory, memory controllers) over the NoC under all
// four schemes and report the execution-time penalty of power-gating —
// the paper's headline result (Figures 7-8: Power Punch saves >83% of
// router static energy for <0.4% execution-time penalty).
//
//	go run ./examples/parsec [benchmark]
//
// Benchmarks: blackscholes bodytrack canneal dedup ferret fluidanimate
// swaptions x264 (default: ferret).
package main

import (
	"fmt"
	"log"
	"os"

	"powerpunch"
)

func main() {
	bench := "ferret"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	prof, err := powerpunch.PARSECProfile(bench, 30_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-system run: %s on an 8x8 CMP (64 cores, MESI over 3 VNs)\n\n", bench)

	var baseExec int64
	for _, scheme := range powerpunch.Schemes {
		cfg := powerpunch.DefaultConfig()
		cfg.Scheme = scheme
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40

		net, err := powerpunch.NewNetwork(cfg)
		if err != nil {
			log.Fatal(err)
		}
		wl := powerpunch.NewWorkload(prof, net, 7)
		res := net.RunUntil(wl, 10_000_000)
		if !res.Drained {
			log.Fatalf("%v: workload did not complete", scheme)
		}

		exec := wl.ExecutionTime()
		if scheme == powerpunch.NoPG {
			baseExec = exec
		}
		fmt.Printf("%-18s execution %8d cycles (%+.2f%% vs No-PG) | packet latency %6.2f | static saved %5.1f%%\n",
			scheme, exec, 100*(float64(exec)/float64(baseExec)-1),
			res.Summary.AvgLatency, res.StaticSaved*100)
	}
}
