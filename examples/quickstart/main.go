// Quickstart: build the paper's default 8x8 mesh, offer light uniform
// traffic, and compare Power Punch against the always-on baseline and
// optimized conventional power-gating.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"powerpunch"
)

func main() {
	fmt.Println("Power Punch quickstart: 8x8 mesh, uniform traffic @ 0.02 flits/node/cycle")
	fmt.Println()

	for _, scheme := range powerpunch.Schemes {
		cfg := powerpunch.DefaultConfig()
		cfg.Scheme = scheme
		cfg.WarmupCycles = 3_000
		cfg.MeasureCycles = 15_000

		net, err := powerpunch.NewNetwork(cfg)
		if err != nil {
			log.Fatalf("building network: %v", err)
		}
		drv := powerpunch.NewSyntheticTraffic(powerpunch.Uniform(), 0.02, 42)
		res := net.Run(drv)

		fmt.Printf("%-18s avg latency %6.2f cycles | %5.2f gated routers/packet | "+
			"%5.2f wakeup-wait cycles/packet | %5.1f%% static energy saved\n",
			scheme, res.Summary.AvgLatency, res.Summary.AvgBlocked,
			res.Summary.AvgWakeWait, res.StaticSaved*100)
	}

	fmt.Println()
	fmt.Println("Expected shape (paper, Figures 7-11): ConvOpt-PG pays a large latency")
	fmt.Println("penalty for its ~83% static savings; PowerPunch-PG keeps the savings")
	fmt.Println("while staying within a few percent of the No-PG latency.")
}
