module powerpunch

go 1.22
