package powerpunch_test

import (
	"fmt"
	"testing"

	"powerpunch"
	"powerpunch/internal/traffic"
)

// TestActiveSetMatchesFullWalk is the golden-metrics equivalence suite
// for the active-set tick scheduler: every scheme, on every fabric
// (mesh, torus, ring), over three traffic patterns and three load
// points, must produce results bit-identical to the seed full-walk tick
// (Config.FullTick). RunResult equality covers every headline metric —
// the stats summary, the full energy breakdown (per-cycle
// floating-point accumulations included), static savings and
// gating-event counts — and since experiments.SchemeMetrics is derived
// field-by-field from RunResult, equality here implies SchemeMetrics
// equality for every experiment driver. The per-router utilization
// report is fingerprinted as well so deferred gated-cycle catch-up is
// proven exact per node, not just in aggregate.
func TestActiveSetMatchesFullWalk(t *testing.T) {
	fabrics := []struct {
		topo          string
		width, height int
	}{
		{"mesh", 4, 4},
		{"torus", 4, 4},
		{"ring", 8, 1},
	}
	patterns := []struct {
		name string
		p    powerpunch.TrafficPattern
	}{
		{"uniform", powerpunch.Uniform()},
		{"transpose", powerpunch.TransposeTraffic()},
		{"hotspot", traffic.Hotspot{Node: 5, Frac: 0.5}},
	}
	loads := []float64{0.02, 0.10, 0.30}

	for _, fab := range fabrics {
		for _, s := range powerpunch.Schemes {
			for _, pat := range patterns {
				for _, load := range loads {
					fab, s, pat, load := fab, s, pat, load
					name := fmt.Sprintf("%s/%s/%s/load=%.2f", fab.topo, s, pat.name, load)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						run := func(fullTick bool) (powerpunch.RunResult, string) {
							cfg := powerpunch.DefaultConfig()
							cfg.Scheme = s
							cfg.Topology = fab.topo
							cfg.Width, cfg.Height = fab.width, fab.height
							cfg.WarmupCycles = 300
							cfg.MeasureCycles = 1500
							cfg.FullTick = fullTick
							net, err := powerpunch.NewNetwork(cfg)
							if err != nil {
								t.Fatal(err)
							}
							drv := powerpunch.NewSyntheticTraffic(pat.p, load, 11)
							res := net.Run(drv)
							return res, net.Report().String()
						}
						full, fullRep := run(true)
						act, actRep := run(false)
						if act != full {
							t.Errorf("active-set result differs from full walk:\nfull   %+v\nactive %+v", full, act)
						}
						if actRep != fullRep {
							t.Errorf("per-router reports differ:\nfull:\n%s\nactive:\n%s", fullRep, actRep)
						}
						if full.Summary.Ejected == 0 {
							t.Fatalf("degenerate run, nothing ejected: %+v", full)
						}
					})
				}
			}
		}
	}
}
