// Package check is the cycle-level invariant engine: a pluggable set of
// correctness checks the network runs at the end of every simulated
// cycle when Config.Checks is set. The invariants cover the properties
// the paper's argument rests on — flit and credit conservation, VC
// state-machine legality, power-gating safety (a gated router is empty,
// wakes in exactly Twakeup cycles, and honours every wakeup), the punch
// non-blocking guarantee of Section 4.1, and a deadlock watchdog.
//
// On the first violation the engine produces an Artifact: the full
// configuration, seed, failing cycle, every traffic submission so far,
// and a ring buffer of recent power-gating events. Because the
// simulator is deterministic, re-running the same configuration and
// re-submitting the recorded events reproduces the violation at the
// same cycle; `noctrace replay-failure` and powerpunch.ReplayFailure do
// exactly that.
package check

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
)

// Violation describes one invariant failure.
type Violation struct {
	// Invariant is the stable identifier of the failed check, e.g.
	// "punch-nonblocking" or "flit-conservation".
	Invariant string `json:"invariant"`
	// Cycle is the simulation cycle at whose end the check failed.
	Cycle int64 `json:"cycle"`
	// Detail is a human-readable description of the failing state.
	Detail string `json:"detail"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("cycle %d: invariant %s violated: %s", v.Cycle, v.Invariant, v.Detail)
}

// SubmitEvent is one recorded NI submission. Field names and JSON tags
// match traffic.Event so a recorded artifact doubles as a trace.
type SubmitEvent struct {
	Now   int64               `json:"t"`
	Src   mesh.NodeID         `json:"src"`
	Dst   mesh.NodeID         `json:"dst"`
	VN    flit.VirtualNetwork `json:"vn"`
	Kind  flit.Kind           `json:"kind"`
	Size  int                 `json:"size"`
	Hint  bool                `json:"hint"`
	Delay int                 `json:"delay"`
}

// Artifact is the structured failure report emitted on the first
// violation: everything needed to reproduce the failing run.
type Artifact struct {
	Violation
	// Seed is the RNG seed of the run (Config.Seed; informational — the
	// recorded Events already pin the traffic down exactly).
	Seed int64 `json:"seed"`
	// Config is the complete configuration of the failing run,
	// including any injected Faults, so a replay rebuilds the identical
	// network.
	Config config.Config `json:"config"`
	// Events lists every NI submission up to the failing cycle in
	// submission order.
	Events []SubmitEvent `json:"events"`
	// Recent is the ring buffer of recent notable events (power-gating
	// transitions), oldest first.
	Recent []string `json:"recent"`
}

// Encode serializes the artifact as indented JSON.
func (a *Artifact) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ReadArtifact parses an artifact previously written with Encode.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("check: reading artifact: %w", err)
	}
	return &a, nil
}

// WriteArtifactFile writes the artifact to a JSON file under dir (the
// OS temp directory when dir is empty) and returns the path.
func WriteArtifactFile(a *Artifact, dir string) (string, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	path := filepath.Join(dir, fmt.Sprintf("powerpunch-violation-c%d-%s.json", a.Cycle, a.Invariant))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := a.Encode(f); err != nil {
		return "", err
	}
	return path, nil
}
