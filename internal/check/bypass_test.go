package check_test

import (
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/flit"
)

// TestBypassLegalityCatchesIllegalTurn injects the BypassIllegalTurn
// fault — bypass admission skips the straight-through routing check,
// so a head that must TURN at the flown-over router is granted onto
// the bypass anyway — and expects the bypass-legality invariant to
// catch the tagged flit mid-flight toward the gated router, with a
// deterministic replay of the artifact. This proves the invariant is
// not vacuously satisfied on clean FlyOver runs.
func TestBypassLegalityCatchesIllegalTurn(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.FlyOverPG
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	cfg.CheckInterval = 1
	cfg.Faults.BypassIllegalTurn = true
	n, got := newChecked(t, cfg)

	// Keep the landing router (node 2) awake with a local stream while
	// its West neighbor (node 1) idles into Gated: node 0's packet to
	// node 9 routes East toward node 1 but must turn South THERE, so a
	// legal bypass admission would refuse it — the fault grants it.
	for n.Now() < 300 && len(*got) == 0 {
		if n.Now()%2 == 0 {
			p := n.NewPacket(2, 3, flit.VNRequest, flit.KindControl)
			n.NI(2).Submit(p, false, n.Now())
		}
		if n.Now() == 40 {
			p := n.NewPacket(0, 9, flit.VNRequest, flit.KindControl)
			n.NI(0).Submit(p, false, n.Now())
		}
		n.Step()
	}

	if len(*got) == 0 {
		t.Fatal("BypassIllegalTurn fault was not caught")
	}
	a := (*got)[0]
	if a.Invariant != "bypass-legality" {
		t.Fatalf("fault caught by %q, want bypass-legality (%s)", a.Invariant, a.Detail)
	}
	if !a.Config.Faults.BypassIllegalTurn {
		t.Fatal("artifact config lost the injected fault")
	}
	replayMatches(t, a)
}
