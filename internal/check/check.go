package check

import (
	"fmt"

	"powerpunch/internal/config"
	"powerpunch/internal/core"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/ni"
	"powerpunch/internal/pg"
	"powerpunch/internal/router"
	"powerpunch/internal/topo"
)

// Defaults for the tunable thresholds (see config.CheckInterval and
// config.CheckStallLimit).
const (
	DefaultInterval   = 8
	DefaultStallLimit = 4096
	ringSize          = 256
)

// View gives the engine read access to the network's components. The
// network builds it once at construction; the engine never mutates
// anything it can see.
type View struct {
	Cfg     *config.Config
	M       topo.Topology
	RF      topo.RoutingFunction
	Routers []*router.Router
	NIs     []*ni.NI
	Fabric  *core.Fabric // nil unless a punch scheme is active
}

// stallSlot tracks the deadlock watchdog's per-VC state: the identity of
// the front flit last seen ready-and-routed and for how many consecutive
// cycles. Under a bypass scheme, ns counts the consecutive cycles the
// front has been blocked by a Gated neighbor while NOT bypass-servable:
// servability can lapse mid-stall (the landing router gates), and the
// re-asserted wakeup level needs a cycle to propagate before the gated
// neighbor reacts — the handshake invariant grants that window.
type stallSlot struct {
	f   *flit.Flit
	cnt int64
	ns  int64
}

// Engine runs the invariant suite at the end of every cycle. The cheap
// safety invariants (power-gating state machine, punch non-blocking,
// watchdog) run every cycle; the whole-network sweeps (flit and credit
// conservation, VC legality, pipe hygiene) run every `interval` cycles.
// The engine stops checking after the first violation.
//
// Concurrency contract: the engine is single-threaded. Under the
// sharded parallel tick engine it runs only on the coordinator, after
// the final commit barrier of the cycle, over fully-merged state — the
// same end-of-cycle snapshot the serial engines present — and never
// concurrently with a section body. (Checked runs also disable flit
// pooling, so every retained artifact pointer stays stable.)
type Engine struct {
	view       View
	interval   int64
	stallLimit int64

	perVN        int
	expectWaking int64 // end-of-cycle Waking observations per wake
	// punchGuard gates the punch-nonblocking invariant: the paper's
	// guarantee holds when punches are active, never dropped by strict
	// arbitration, relayed one link per cycle (LinkLatency 1), and the
	// hop slack covers the wakeup latency (k*Trouter >= Twakeup).
	punchGuard bool
	// bypass mirrors the scheme policy's Bypass() answer: under a
	// bypass scheme gated routers legitimately relay tagged flits, so
	// the pg-empty and wake-handshake invariants take their
	// bypass-aware forms.
	bypass bool

	// Per-router power-gating FSM tracking.
	prevState  []pg.State
	wakingFor  []int64 // consecutive Waking observations (current wake)
	gatedSeen  []int64 // total end-of-cycle Gated observations
	wakingSeen []int64 // total end-of-cycle Waking observations

	stalls [][]stallSlot // watchdog state, [router][port*numVCs+vc]

	vcScratch []router.VCView // reused per-router snapshot buffer

	events []SubmitEvent
	ring   [ringSize]string
	ringN  int // total records ever written

	first *Violation
	done  bool
}

// New returns an engine over the given view. The view's slices must be
// fully populated; thresholds come from the config (0 = default).
func New(v View) *Engine {
	n := len(v.Routers)
	e := &Engine{
		view:       v,
		interval:   int64(v.Cfg.CheckInterval),
		stallLimit: int64(v.Cfg.CheckStallLimit),
		perVN:      v.Cfg.VCsPerVN(),
		prevState:  make([]pg.State, n),
		wakingFor:  make([]int64, n),
		gatedSeen:  make([]int64, n),
		wakingSeen: make([]int64, n),
		stalls:     make([][]stallSlot, n),
	}
	if e.interval <= 0 {
		e.interval = DefaultInterval
	}
	if e.stallLimit <= 0 {
		e.stallLimit = DefaultStallLimit
	}
	e.expectWaking = int64(v.Cfg.WakeupLatency) - 1
	if e.expectWaking < 1 {
		e.expectWaking = 1
	}
	pol, perr := v.Cfg.Scheme.Policy()
	if perr != nil {
		// The network validated the config before building the view;
		// an unknown scheme cannot reach here. Fall back to the most
		// conservative invariant set.
		e.punchGuard = false
	} else {
		e.punchGuard = pol.Punches() &&
			!v.Cfg.PunchStrict &&
			v.Cfg.LinkLatency == 1 &&
			v.Cfg.PunchSlackCycles() >= v.Cfg.WakeupLatency
		e.bypass = pol.Bypass()
	}
	for i := range e.stalls {
		e.stalls[i] = make([]stallSlot, mesh.NumPorts*v.Routers[i].NumVCs())
	}
	return e
}

// ObserveNI hooks the NI's submission callback so the engine records
// every traffic event for the failure artifact. Any previously-installed
// callback (e.g. a trace recorder) keeps firing.
func (e *Engine) ObserveNI(n *ni.NI) {
	prev := n.OnSubmit
	n.OnSubmit = func(p *flit.Packet, hintValid bool, delay int, now int64) {
		e.events = append(e.events, SubmitEvent{
			Now: now, Src: p.Src, Dst: p.Dst, VN: p.VN, Kind: p.Kind,
			Size: p.Size, Hint: hintValid, Delay: delay,
		})
		if prev != nil {
			prev(p, hintValid, delay, now)
		}
	}
}

// EndCycle runs the invariant suite for the cycle that just completed
// and returns the first violation found, or nil. After a violation is
// returned once the engine disarms and always returns nil.
func (e *Engine) EndCycle(now int64) *Violation {
	if e.done {
		return nil
	}
	e.checkPG(now)
	e.checkBlockedHeads(now)
	if e.first == nil && now%e.interval == 0 {
		e.checkCredits(now)
		e.checkConservation(now)
		e.checkVCLegality(now)
		e.checkPipes(now)
		e.checkFabric(now)
		e.checkPGStats(now)
	}
	if e.first != nil {
		e.done = true
		return e.first
	}
	return nil
}

// Violated reports whether a violation has been found.
func (e *Engine) Violated() bool { return e.first != nil }

// fail records the first violation; later calls are ignored.
func (e *Engine) fail(now int64, invariant, format string, args ...any) {
	if e.first != nil {
		return
	}
	e.first = &Violation{Invariant: invariant, Cycle: now, Detail: fmt.Sprintf(format, args...)}
	e.record(now, "VIOLATION %s: %s", invariant, e.first.Detail)
}

// record appends a line to the ring buffer of recent events.
func (e *Engine) record(now int64, format string, args ...any) {
	e.ring[e.ringN%ringSize] = fmt.Sprintf("c%d: %s", now, fmt.Sprintf(format, args...))
	e.ringN++
}

// Artifact packages a violation with everything needed to replay it.
func (e *Engine) Artifact(v *Violation) *Artifact {
	a := &Artifact{
		Violation: *v,
		Seed:      e.view.Cfg.Seed,
		Config:    *e.view.Cfg,
		Events:    append([]SubmitEvent(nil), e.events...),
	}
	n := e.ringN
	if n > ringSize {
		n = ringSize
	}
	for i := 0; i < n; i++ {
		a.Recent = append(a.Recent, e.ring[(e.ringN-n+i)%ringSize])
	}
	return a
}
