package check_test

import (
	"bytes"
	"math/rand"
	"testing"

	"powerpunch"
	"powerpunch/internal/check"
	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/network"
)

// allSchemes includes PlainPG and FlyOverPG on top of the paper's
// four, so the invariants are exercised against every gating policy —
// and the bypass datapath — in the tree.
var allSchemes = []config.Scheme{
	config.NoPG, config.ConvOptPG, config.PowerPunchSignal, config.PowerPunchPG,
	config.PlainPG, config.FlyOverPG,
}

func newChecked(t *testing.T, cfg config.Config) (*network.Network, *[]*check.Artifact) {
	t.Helper()
	cfg.Checks = true
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []*check.Artifact
	n.OnViolation = func(a *check.Artifact) { got = append(got, a) }
	return n, &got
}

// TestCleanRunAllSchemes drives random traffic through every scheme with
// the full invariant suite on every cycle and expects zero violations —
// the engine must not cry wolf on a correct simulator.
func TestCleanRunAllSchemes(t *testing.T) {
	for _, s := range allSchemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			cfg := config.Default()
			cfg.Width, cfg.Height = 4, 4
			cfg.Scheme = s
			cfg.WarmupCycles = 0
			cfg.MeasureCycles = 1 << 40
			cfg.CheckInterval = 1 // every sweep, every cycle
			n, got := newChecked(t, cfg)

			rng := rand.New(rand.NewSource(11))
			for cyc := 0; cyc < 4000; cyc++ {
				if rng.Float64() < 0.04 {
					src := mesh.NodeID(rng.Intn(16))
					dst := mesh.NodeID(rng.Intn(16))
					if src != dst {
						kind, vn := flit.KindControl, flit.VNRequest
						if rng.Intn(2) == 0 {
							kind, vn = flit.KindData, flit.VNResponse
						}
						p := n.NewPacket(src, dst, vn, kind)
						n.NI(src).Submit(p, rng.Intn(2) == 0, n.Now())
					}
				}
				n.Step()
			}
			for cyc := 0; cyc < 20000 && !n.Quiesced(); cyc++ {
				n.Step()
			}
			if !n.Quiesced() {
				t.Fatal("network did not quiesce")
			}
			for _, a := range *got {
				t.Errorf("unexpected violation: %v", &a.Violation)
			}
		})
	}
}

// TestCleanRunWrappedFabrics is TestCleanRunAllSchemes on the wrapped
// fabrics: every scheme on a 4x4 torus and an 8-node ring, full
// invariant suite — including the dateline-legality invariant — every
// cycle, zero violations expected.
func TestCleanRunWrappedFabrics(t *testing.T) {
	fabrics := []struct {
		topo          string
		width, height int
	}{
		{"torus", 4, 4},
		{"ring", 8, 1},
	}
	for _, fab := range fabrics {
		for _, s := range allSchemes {
			fab, s := fab, s
			t.Run(fab.topo+"/"+s.String(), func(t *testing.T) {
				t.Parallel()
				cfg := config.Default()
				cfg.Topology = fab.topo
				cfg.Width, cfg.Height = fab.width, fab.height
				cfg.Scheme = s
				cfg.WarmupCycles = 0
				cfg.MeasureCycles = 1 << 40
				cfg.CheckInterval = 1
				n, got := newChecked(t, cfg)

				nodes := fab.width * fab.height
				rng := rand.New(rand.NewSource(13))
				for cyc := 0; cyc < 4000; cyc++ {
					if rng.Float64() < 0.04 {
						src := mesh.NodeID(rng.Intn(nodes))
						dst := mesh.NodeID(rng.Intn(nodes))
						if src != dst {
							kind, vn := flit.KindControl, flit.VNRequest
							if rng.Intn(2) == 0 {
								kind, vn = flit.KindData, flit.VNResponse
							}
							p := n.NewPacket(src, dst, vn, kind)
							n.NI(src).Submit(p, rng.Intn(2) == 0, n.Now())
						}
					}
					n.Step()
				}
				for cyc := 0; cyc < 20000 && !n.Quiesced(); cyc++ {
					n.Step()
				}
				if !n.Quiesced() {
					t.Fatal("network did not quiesce")
				}
				for _, a := range *got {
					t.Errorf("unexpected violation: %v", &a.Violation)
				}
			})
		}
	}
}

// TestDatelineInvariantCatchesInvertedClasses injects the
// InvertDatelineClass fault — every torus packet allocates the opposite
// dateline VC class — and expects the dateline-legality invariant to
// catch the first wrapped departure, proving the invariant is not
// vacuously satisfied on clean runs.
func TestDatelineInvariantCatchesInvertedClasses(t *testing.T) {
	cfg := config.Default()
	cfg.Topology = "torus"
	cfg.Width, cfg.Height = 4, 4
	cfg.Scheme = config.NoPG
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	cfg.CheckInterval = 1
	cfg.Faults.InvertDatelineClass = true
	n, got := newChecked(t, cfg)

	// Node 0 -> node 3: DOR takes the wrap link West out of column 0
	// (one hop instead of three), which is a class-0 departure; the
	// fault flips it to class 1.
	p := n.NewPacket(0, 3, flit.VNRequest, flit.KindControl)
	n.NI(0).Submit(p, false, n.Now())
	for n.Now() < 200 && len(*got) == 0 {
		n.Step()
	}

	if len(*got) == 0 {
		t.Fatal("InvertDatelineClass fault was not caught")
	}
	a := (*got)[0]
	if a.Invariant != "dateline-legality" {
		t.Fatalf("fault caught by %q, want dateline-legality (%s)", a.Invariant, a.Detail)
	}
	if !a.Config.Faults.InvertDatelineClass {
		t.Fatal("artifact config lost the injected fault")
	}
	replayMatches(t, a)
}

// replayMatches round-trips the artifact through its JSON encoding and
// replays it, asserting the violation reproduces at the identical cycle
// with the identical invariant — the deterministic-replay guarantee the
// whole harness rests on.
func replayMatches(t *testing.T, a *check.Artifact) {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := check.ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := powerpunch.ReplayFailure(parsed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Invariant != a.Invariant || got.Cycle != a.Cycle {
		t.Fatalf("replay diverged: got %s at cycle %d, recorded %s at cycle %d",
			got.Invariant, got.Cycle, a.Invariant, a.Cycle)
	}
}

// TestPunchInvariantCatchesDroppedRelays injects the DropPunchRelays
// fault — punch signals reach only one hop, so distant routers are still
// waking when packets arrive — and expects the punch-nonblocking
// invariant (the paper's Section 4.1 guarantee) to catch it, with a
// deterministic replay of the artifact.
func TestPunchInvariantCatchesDroppedRelays(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.PowerPunchPG
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	cfg.Faults.DropPunchRelays = true
	n, got := newChecked(t, cfg)

	// Let every router gate (punch idle timeout is 2 cycles), then send
	// one packet across the mesh: far routers should be punched awake
	// three hops early, but the fault caps punches at one hop.
	for n.Now() < 20 {
		n.Step()
	}
	p := n.NewPacket(0, 63, flit.VNRequest, flit.KindControl)
	n.NI(0).Submit(p, true, n.Now())
	for n.Now() < 2000 && len(*got) == 0 {
		n.Step()
	}

	if len(*got) == 0 {
		t.Fatal("DropPunchRelays fault was not caught")
	}
	a := (*got)[0]
	if a.Invariant != "punch-nonblocking" {
		t.Fatalf("fault caught by %q, want punch-nonblocking (%s)", a.Invariant, a.Detail)
	}
	if len(a.Events) != 1 {
		t.Fatalf("artifact recorded %d events, want 1", len(a.Events))
	}
	if !a.Config.Faults.DropPunchRelays {
		t.Fatal("artifact config lost the injected fault")
	}
	replayMatches(t, a)
}

// TestHandshakeInvariantCatchesIgnoredWakeups injects the IgnoreWakeups
// fault — a gated router never honours WU — and expects the
// pg-wake-handshake invariant to catch the stuck-gated neighbour.
func TestHandshakeInvariantCatchesIgnoredWakeups(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Scheme = config.ConvOptPG
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	cfg.Faults.IgnoreWakeups = true
	n, got := newChecked(t, cfg)

	// Keep routers 0 and 1 awake with local chatter while the rest of
	// the mesh gates, then route a packet into the gated region: router
	// 2 will ignore the wakeup and the head stalls against a router
	// that is still gated at the end of the cycle — impossible under a
	// correct handshake.
	for n.Now() < 400 && len(*got) == 0 {
		now := n.Now()
		if now%2 == 0 {
			p := n.NewPacket(0, 1, flit.VNRequest, flit.KindControl)
			n.NI(0).SubmitDelayed(p, false, 0, now)
		}
		if now == 40 {
			p := n.NewPacket(0, 3, flit.VNRequest, flit.KindControl)
			n.NI(0).SubmitDelayed(p, false, 0, now)
		}
		n.Step()
	}

	if len(*got) == 0 {
		t.Fatal("IgnoreWakeups fault was not caught")
	}
	a := (*got)[0]
	if a.Invariant != "pg-wake-handshake" {
		t.Fatalf("fault caught by %q, want pg-wake-handshake (%s)", a.Invariant, a.Detail)
	}
	replayMatches(t, a)
}

// TestWatchdogFires drives a small mesh into saturation with an
// artificially tiny stall budget: ordinary contention stalls then trip
// the deadlock watchdog, proving the reporting path end to end.
func TestWatchdogFires(t *testing.T) {
	cfg := config.Default()
	cfg.Width, cfg.Height = 3, 3
	cfg.Scheme = config.NoPG
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	cfg.CheckStallLimit = 4
	n, got := newChecked(t, cfg)

	rng := rand.New(rand.NewSource(5))
	for n.Now() < 3000 && len(*got) == 0 {
		for node := 0; node < 9; node++ {
			if rng.Float64() < 0.4 {
				dst := mesh.NodeID(rng.Intn(9))
				if mesh.NodeID(node) == dst {
					continue
				}
				p := n.NewPacket(mesh.NodeID(node), dst, flit.VNResponse, flit.KindData)
				n.NI(mesh.NodeID(node)).SubmitDelayed(p, false, 0, n.Now())
			}
		}
		n.Step()
	}
	if len(*got) == 0 {
		t.Fatal("watchdog did not fire under saturation with stall limit 4")
	}
	if a := (*got)[0]; a.Invariant != "deadlock-watchdog" {
		t.Fatalf("got %q, want deadlock-watchdog (%s)", a.Invariant, a.Detail)
	}
}

// TestCheckerDisabledByDefault pins the zero-cost-off contract: without
// Config.Checks the network carries no engine at all.
func TestCheckerDisabledByDefault(t *testing.T) {
	n, err := network.New(config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if n.Checker != nil {
		t.Fatal("Checker built without Config.Checks")
	}
}

// TestArtifactRoundTrip pins the JSON serialization of artifacts.
func TestArtifactRoundTrip(t *testing.T) {
	a := &check.Artifact{
		Violation: check.Violation{Invariant: "punch-nonblocking", Cycle: 1234, Detail: "detail"},
		Seed:      7,
		Config:    config.Default(),
		Events: []check.SubmitEvent{
			{Now: 10, Src: 1, Dst: 14, VN: flit.VNRequest, Kind: flit.KindControl, Size: 1, Hint: true, Delay: 6},
			{Now: 12, Src: 3, Dst: 0, VN: flit.VNResponse, Kind: flit.KindData, Size: 5, Delay: 0},
		},
		Recent: []string{"c9: router 5: active -> draining"},
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := check.ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Violation != a.Violation || b.Seed != a.Seed || b.Config != a.Config {
		t.Fatalf("round trip mismatch: %+v vs %+v", b, a)
	}
	if len(b.Events) != len(a.Events) || b.Events[0] != a.Events[0] || b.Events[1] != a.Events[1] {
		t.Fatalf("events mismatch: %+v", b.Events)
	}
	if len(b.Recent) != 1 || b.Recent[0] != a.Recent[0] {
		t.Fatalf("recent mismatch: %+v", b.Recent)
	}
}
