package check_test

import (
	"testing"

	"powerpunch/internal/cmp"
	"powerpunch/internal/config"
	"powerpunch/internal/parsec"
)

// TestCMPCleanRunAllSchemes drives the full-system CMP workload — the
// MESI-style directory protocol spread over all three virtual networks,
// with delayed submissions, delivery callbacks, and follow-up packets —
// under the complete invariant suite on every cycle, for every gating
// scheme. The synthetic clean-run tests only exercise the two-VN
// request/response layout; the coherence traffic adds VN1 (invalidations
// and memory fetches) and the protocol's multi-hop dependency chains,
// so VC legality and credit conservation are checked here against the
// paper's actual 3-VN configuration.
func TestCMPCleanRunAllSchemes(t *testing.T) {
	for _, s := range allSchemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			cfg := config.Default()
			cfg.Scheme = s
			cfg.Width, cfg.Height = 4, 4
			cfg.WarmupCycles = 0
			cfg.MeasureCycles = 1 << 40
			cfg.CheckInterval = 1
			n, got := newChecked(t, cfg)
			sys := cmp.NewSystem(parsec.MustProfile("canneal", 2000), n, 5)
			res := n.RunUntil(sys, 300_000)
			if !res.Drained {
				t.Fatal("workload did not complete")
			}
			for _, a := range *got {
				t.Errorf("unexpected violation: %v", &a.Violation)
			}
			// Prove the run actually exercised all three virtual
			// networks: requests (VN0), directory traffic (VN1), and
			// responses (VN2) must all have flowed.
			if sys.PacketsByType[cmp.MsgGetLine] == 0 {
				t.Error("no VN0 request packets sent")
			}
			if sys.PacketsByType[cmp.MsgInv]+sys.PacketsByType[cmp.MsgMemReq] == 0 {
				t.Error("no VN1 coherence packets sent")
			}
			if sys.PacketsByType[cmp.MsgData]+sys.PacketsByType[cmp.MsgAck] == 0 {
				t.Error("no VN2 response packets sent")
			}
		})
	}
}

// TestCMPDatelineFaultCaught runs the CMP workload on a 4x4 torus with
// the InvertDatelineClass fault injected: the first coherence packet to
// take a wrap link with the wrong VC class must trip the
// dateline-legality invariant, and the recorded artifact must replay
// deterministically — proving the fault-injection and replay harness
// covers workload-driven traffic, not just hand-submitted packets.
func TestCMPDatelineFaultCaught(t *testing.T) {
	cfg := config.Default()
	cfg.Topology = "torus"
	cfg.Width, cfg.Height = 4, 4
	cfg.Scheme = config.PowerPunchPG
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	cfg.CheckInterval = 1
	cfg.Faults.InvertDatelineClass = true
	n, got := newChecked(t, cfg)
	sys := cmp.NewSystem(parsec.MustProfile("canneal", 2000), n, 5)
	n.RunUntil(sys, 50_000)

	if len(*got) == 0 {
		t.Fatal("InvertDatelineClass fault was not caught under the CMP workload")
	}
	a := (*got)[0]
	if a.Invariant != "dateline-legality" {
		t.Fatalf("fault caught by %q, want dateline-legality (%s)", a.Invariant, a.Detail)
	}
}
