package check

import (
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/pg"
	"powerpunch/internal/router"
)

// legalTransition is the power-gating FSM's transition relation as
// specified in the paper's Section 2.2 (and implemented in internal/pg):
// gating passes through Draining, waking through Waking, and neither is
// skippable.
func legalTransition(from, to pg.State) bool {
	switch {
	case from == to:
		return true
	case from == pg.Active && to == pg.Draining:
		return true
	case from == pg.Draining && to == pg.Active:
		return true
	case from == pg.Draining && to == pg.Gated:
		return true
	case from == pg.Gated && to == pg.Waking:
		return true
	case from == pg.Waking && to == pg.Active:
		return true
	}
	return false
}

// checkPG runs the per-cycle power-gating safety invariants:
//
//   - pg-fsm-legality: only the transitions of Section 2.2's FSM occur.
//   - pg-wake-duration: a completed wake spent exactly Twakeup-1
//     end-of-cycle observations in Waking (the WU cycle itself is the
//     first of the Twakeup cycles).
//   - pg-empty: a gated or waking router holds no flits and none are in
//     flight toward it — power-gating never catches data in the dark.
func (e *Engine) checkPG(now int64) {
	if e.first != nil {
		return
	}
	for i, r := range e.view.Routers {
		cur := r.Ctrl.State()
		prev := e.prevState[i]
		if cur != prev {
			if !legalTransition(prev, cur) {
				e.fail(now, "pg-fsm-legality", "router %d transitioned %s -> %s", i, prev, cur)
			}
			if prev == pg.Waking && cur == pg.Active {
				// Under a bypass scheme a live stream holds the wake
				// countdown (BypassHold), so Waking may legitimately last
				// longer than Twakeup — but never less.
				if w := e.wakingFor[i]; w < e.expectWaking || (!e.bypass && w != e.expectWaking) {
					e.fail(now, "pg-wake-duration",
						"router %d completed wake after %d waking cycles, want %d (Twakeup=%d)",
						i, w, e.expectWaking, e.view.Cfg.WakeupLatency)
				}
			}
			e.record(now, "router %d: %s -> %s", i, prev, cur)
		}
		if cur == pg.Waking {
			e.wakingFor[i]++
			e.wakingSeen[i]++
		} else {
			e.wakingFor[i] = 0
		}
		if cur == pg.Gated {
			e.gatedSeen[i]++
		}
		e.prevState[i] = cur

		if r.Ctrl.PGAsserted() {
			if !r.Empty() {
				e.fail(now, "pg-empty", "router %d is %s with %d flits buffered", i, cur, r.BufferedFlits())
			}
			id := mesh.NodeID(i)
			for _, d := range mesh.LinkDirections {
				nb := e.view.M.Neighbor(id, d)
				if nb == mesh.Invalid {
					continue
				}
				op := e.view.Routers[nb].Out(d.Opposite())
				if op.FlitOut.Empty() {
					continue
				}
				if !e.bypass {
					e.fail(now, "pg-empty",
						"router %d is %s with %d flits in flight from router %d", i, cur, op.FlitOut.Len(), nb)
					continue
				}
				// Bypass scheme: tagged flits may legally fly toward a
				// gated router — they detour over it, never into it. Each
				// must be tagged AND structurally legal at this router: a
				// straight-through continuation (the bypass path has no
				// turn logic) landing in a class-legal VC.
				travel := d.Opposite()
				op.FlitOut.ForEach(func(ft router.FlitInTransit) {
					if !ft.Bypass {
						e.fail(now, "pg-empty",
							"router %d is %s with an untagged flit of packet %d in flight from router %d",
							i, cur, ft.Flit.Packet.ID, nb)
						return
					}
					next, err := e.view.RF.Route(id, ft.Flit.Dst())
					if err != nil || next != travel {
						e.fail(now, "bypass-legality",
							"router %d: bypass flit of packet %d (dst %d) flying %v over gated router %d would turn (route says %v)",
							nb, ft.Flit.Packet.ID, ft.Flit.Dst(), travel, i, next)
						return
					}
					if e.view.RF.VCClasses() > 1 {
						cls := e.view.RF.ClassFor(id, ft.Flit.Dst(), travel)
						rel := ft.VC % e.perVN
						dlo, dhi := e.view.Cfg.DataVCClassRange(cls)
						clo, chi := e.view.Cfg.CtrlVCClassRange(cls)
						if !(rel >= dlo && rel < dhi) && !(rel >= clo && rel < chi) {
							e.fail(now, "bypass-legality",
								"router %d: bypass flit of packet %d (dst %d) over gated router %d lands in VC %d outside dateline class %d",
								nb, ft.Flit.Packet.ID, ft.Flit.Dst(), i, ft.VC, cls)
						}
					}
				})
			}
		}
	}
}

// checkBlockedHeads runs the per-cycle progress invariants over every
// pipeline-ready routed head flit (the flits eligible for switch
// traversal this cycle):
//
//   - pg-wake-handshake: its downstream router is never still Gated —
//     under every power-gating scheme the WU level derived from this
//     very head reaches the neighbour's controller in the same cycle,
//     so at worst the neighbour is already Waking.
//   - punch-nonblocking: the paper's Section 4.1 guarantee. With k-hop
//     punch, LinkLatency 1 and k*Trouter >= Twakeup, the punch stream a
//     head emits from k hops out holds its downstream routers awake
//     gap-free, so a head more than k hops from its source never finds
//     the next router still waking. (At exactly k hops the injection
//     NI's one-cycle emission delay can legitimately cost a cycle, so
//     the bound is strict.)
//   - deadlock-watchdog: no ready head stalls more than CheckStallLimit
//     consecutive cycles without a gated/waking downstream excuse.
//   - scheduler-liveness: every head flit at the front of a VC is routed
//     by the end of its first full cycle in the router (route
//     computation is look-ahead and unconditional for a stepped
//     router). A head sitting unrouted for a cycle means the router
//     holds work but was never stepped — the failure mode of a lost
//     active-set re-arm, which the deadlock watchdog cannot see because
//     it only tracks routed heads.
func (e *Engine) checkBlockedHeads(now int64) {
	if e.first != nil {
		return
	}
	hops := e.view.Cfg.PunchHops
	for i, r := range e.view.Routers {
		if r.Empty() {
			continue
		}
		trouter := r.PipelineCycles()
		slots := e.stalls[i]
		r.ForEachVC(now, func(vv router.VCView) {
			if vv.Front != nil && vv.Front.Type.IsHead() && !vv.Routed && vv.FrontAge >= 1 {
				e.fail(now, "scheduler-liveness",
					"router %d %v vc%d: head of packet %d unrouted %d cycles after arrival — the router holds work but is not being stepped",
					i, vv.Port, vv.Index, vv.Front.Packet.ID, vv.FrontAge)
			}
			slot := &slots[vv.Key]
			ready := vv.Front != nil && vv.Routed && vv.FrontAge >= trouter
			if !ready {
				slot.f, slot.cnt, slot.ns = nil, 0, 0
				return
			}
			if slot.f == vv.Front {
				slot.cnt++
			} else {
				slot.f, slot.cnt, slot.ns = vv.Front, 1, 0
			}
			if vv.OutDir == mesh.Local {
				return // ejection never blocks (infinite NI credits)
			}
			nb := r.Out(vv.OutDir).Neighbor()
			if nb == mesh.Invalid {
				return
			}
			switch st := e.view.Routers[nb].Ctrl.State(); st {
			case pg.Gated:
				if e.bypass {
					if vv.Bypassing || e.bypassServable(nb, vv) {
						// A gated downstream is not a handshake failure
						// when the bypass path can serve this VC: the
						// router deliberately suppressed the wakeup. The
						// deadlock watchdog still applies — the stream
						// must make progress (credit stalls at the
						// landing router are bounded by its drain).
						slot.ns = 0
						if slot.cnt > e.stallLimit {
							e.fail(now, "deadlock-watchdog",
								"router %d %v vc%d: bypass-eligible flit of packet %d stalled %d cycles toward %v over gated router %d",
								i, vv.Port, vv.Index, vv.Front.Packet.ID, slot.cnt, vv.OutDir, nb)
						}
						return
					}
					// Servability can lapse mid-stall (the landing
					// router gated, closing the detour): the wakeup
					// level re-asserts, but needs a cycle on the wire
					// plus the controller's Gated step before the
					// neighbor reacts. Grant exactly that window; a
					// longer streak means the wakeup really was lost.
					if slot.ns++; slot.ns <= 2 {
						return
					}
				}
				e.fail(now, "pg-wake-handshake",
					"router %d %v vc%d: ready head of packet %d is blocked by router %d still gated (no wakeup honoured)",
					i, vv.Port, vv.Index, vv.Front.Packet.ID, nb)
			case pg.Waking:
				if e.punchGuard && e.view.M.HopDistance(vv.Front.Packet.Src, nb) > hops {
					e.fail(now, "punch-nonblocking",
						"router %d %v vc%d: head of packet %d (src %d, %d hops from router %d) arrived before router %d finished waking — the %d-hop punch did not hide Twakeup",
						i, vv.Port, vv.Index, vv.Front.Packet.ID, vv.Front.Packet.Src,
						e.view.M.HopDistance(vv.Front.Packet.Src, nb), nb, nb, hops)
				}
				slot.cnt, slot.ns = 0, 0 // waking downstream is a legitimate stall
			default:
				slot.ns = 0
				if slot.cnt > e.stallLimit {
					e.fail(now, "deadlock-watchdog",
						"router %d %v vc%d: head of packet %d stalled %d cycles toward %v with downstream router %d %s",
						i, vv.Port, vv.Index, vv.Front.Packet.ID, slot.cnt, vv.OutDir, nb, st)
				}
			}
		})
		if e.first != nil {
			return
		}
	}
}

// bypassServable recomputes, independently of the router's cached
// thruOK bit, whether the bypass path can serve the head at vv's front
// over the gated neighbor nb: the route continues straight through nb
// and the landing router is not itself power-gated — the same
// condition under which the router suppresses its wakeup level.
func (e *Engine) bypassServable(nb mesh.NodeID, vv router.VCView) bool {
	if vv.Front == nil || !vv.Front.Type.IsHead() {
		return false
	}
	c := e.view.M.Neighbor(nb, vv.OutDir)
	if c == mesh.Invalid || e.view.Routers[c].Ctrl.PGAsserted() {
		return false
	}
	next, err := e.view.RF.Route(nb, vv.Front.Dst())
	return err == nil && next == vv.OutDir
}

// checkCredits verifies credit conservation on every link (and on the
// NI's local injection loop): for each VC, upstream credits + downstream
// occupancy + flits on the wire + credits on the return wire add up to
// exactly the buffer depth. Anything else means credits leaked or were
// forged — the failure mode that silently corrupts flow control.
func (e *Engine) checkCredits(now int64) {
	if e.first != nil {
		return
	}
	cfg := e.view.Cfg
	for i, r := range e.view.Routers {
		id := mesh.NodeID(i)
		for _, d := range mesh.LinkDirections {
			nb := e.view.M.Neighbor(id, d)
			if nb == mesh.Invalid {
				continue
			}
			op := r.Out(d)
			ip := e.view.Routers[nb].In(d.Opposite())
			for v := 0; v < r.NumVCs(); v++ {
				depth := cfg.VCDepth(v % e.perVN)
				wire := 0
				op.FlitOut.ForEach(func(ft router.FlitInTransit) {
					// A bypass-tagged flit rides this wire physically but
					// belongs to the next link's ledger: its credit was
					// claimed at the flown-over router's output.
					if ft.VC == v && !ft.Bypass {
						wire++
					}
				})
				thru := 0
				if e.bypass {
					if up := e.view.M.Neighbor(id, d.Opposite()); up != mesh.Invalid {
						e.view.Routers[up].Out(d).FlitOut.ForEach(func(ft router.FlitInTransit) {
							if ft.Bypass && ft.VC == v {
								thru++
							}
						})
					}
				}
				back := 0
				ip.CreditOut.ForEach(func(c router.Credit) {
					if c.VC == v {
						back++
					}
				})
				got := op.Credits(v) + e.view.Routers[nb].VCOccupancy(d.Opposite(), v) + wire + thru + back
				if got != depth {
					e.fail(now, "credit-conservation",
						"link %d->%d vc%d: credits %d + occupancy %d + wire %d + thru %d + returning %d != depth %d",
						i, nb, v, op.Credits(v), e.view.Routers[nb].VCOccupancy(d.Opposite(), v), wire, thru, back, depth)
					return
				}
			}
		}
		// The NI is the upstream "router" of the local input port.
		nif := e.view.NIs[i]
		ip := r.In(mesh.Local)
		for v := 0; v < r.NumVCs(); v++ {
			depth := cfg.VCDepth(v % e.perVN)
			back := 0
			ip.CreditOut.ForEach(func(c router.Credit) {
				if c.VC == v {
					back++
				}
			})
			got := nif.CreditCount(v) + r.VCOccupancy(mesh.Local, v) + back
			if got != depth {
				e.fail(now, "credit-conservation",
					"ni %d local vc%d: credits %d + occupancy %d + returning %d != depth %d",
					i, v, nif.CreditCount(v), r.VCOccupancy(mesh.Local, v), back, depth)
				return
			}
		}
	}
}

// checkConservation verifies per-VN flit conservation across the whole
// network: every flit ever injected is either buffered in a router, on a
// wire, or ejected (a flit counts as ejected once the NI accepts it,
// even while its packet is still reassembling). A leak or a duplicate
// anywhere breaks the sum.
func (e *Engine) checkConservation(now int64) {
	if e.first != nil {
		return
	}
	var injected, ejected, inFlight [flit.NumVirtualNetworks]int64
	for i, r := range e.view.Routers {
		nif := e.view.NIs[i]
		for vn := flit.VirtualNetwork(0); vn < flit.NumVirtualNetworks; vn++ {
			injected[vn] += nif.InjectedFlitsVN(vn)
			ejected[vn] += nif.EjectedFlitsVN(vn)
		}
		if !r.Empty() {
			for v := 0; v < r.NumVCs(); v++ {
				vn := flit.VirtualNetwork(v / e.perVN)
				for p := 0; p < mesh.NumPorts; p++ {
					inFlight[vn] += int64(r.VCOccupancy(mesh.Direction(p), v))
				}
			}
		}
		for p := 0; p < mesh.NumPorts; p++ {
			r.Out(mesh.Direction(p)).FlitOut.ForEach(func(ft router.FlitInTransit) {
				inFlight[ft.Flit.Packet.VN]++
			})
		}
	}
	for vn := flit.VirtualNetwork(0); vn < flit.NumVirtualNetworks; vn++ {
		if injected[vn] != ejected[vn]+inFlight[vn] {
			e.fail(now, "flit-conservation",
				"vn %v: injected %d != ejected %d + in-flight %d",
				vn, injected[vn], ejected[vn], inFlight[vn])
			return
		}
	}
}

// checkVCLegality verifies the per-VC state machine: occupancy within
// depth, VA only after RC, flits in the VCs of their own virtual
// network, routes matching the fabric's routing function, allocated
// out-VCs inside the packet's dateline class on wrapped fabrics, and
// the downstream VC ownership table consistent in both directions.
func (e *Engine) checkVCLegality(now int64) {
	if e.first != nil {
		return
	}
	for i, r := range e.view.Routers {
		views := e.vcScratch[:0]
		r.ForEachVC(now, func(vv router.VCView) { views = append(views, vv) })
		e.vcScratch = views[:0]

		for _, vv := range views {
			if vv.Occupancy > vv.Depth {
				e.fail(now, "vc-legality", "router %d %v vc%d: occupancy %d > depth %d",
					i, vv.Port, vv.Index, vv.Occupancy, vv.Depth)
				return
			}
			if vv.VADone && !vv.Routed {
				e.fail(now, "vc-legality", "router %d %v vc%d: VA done before RC", i, vv.Port, vv.Index)
				return
			}
			if vv.VADone {
				if vv.OutVC/e.perVN != vv.Index/e.perVN {
					e.fail(now, "vc-legality", "router %d %v vc%d: allocated out-VC %d crosses virtual networks",
						i, vv.Port, vv.Index, vv.OutVC)
					return
				}
				if own := r.Out(vv.OutDir).Owner(vv.OutVC); own != vv.Key {
					e.fail(now, "vc-legality",
						"router %d %v vc%d: allocated out-VC %d of %v owned by key %d, want %d",
						i, vv.Port, vv.Index, vv.OutVC, vv.OutDir, own, vv.Key)
					return
				}
			}
			if vv.Front == nil {
				continue
			}
			if int(vv.Front.Packet.VN) != vv.Index/e.perVN {
				e.fail(now, "vc-legality", "router %d %v vc%d: buffered flit of vn %v in a vn-%d VC",
					i, vv.Port, vv.Index, vv.Front.Packet.VN, vv.Index/e.perVN)
				return
			}
			if vv.Front.Type.IsHead() {
				if vv.Routed {
					want, err := e.view.RF.Route(r.ID, vv.Front.Dst())
					if err != nil {
						e.fail(now, "vc-legality",
							"router %d %v vc%d: packet %d has unroutable destination: %v",
							i, vv.Port, vv.Index, vv.Front.Packet.ID, err)
						return
					}
					if vv.OutDir != want {
						e.fail(now, "vc-legality",
							"router %d %v vc%d: packet %d routed %v, %s says %v",
							i, vv.Port, vv.Index, vv.Front.Packet.ID, vv.OutDir, e.view.RF, want)
						return
					}
				}
			} else if !vv.Routed || (!vv.VADone && !vv.Bypassing) {
				e.fail(now, "vc-legality",
					"router %d %v vc%d: body/tail flit at front without held route (routed=%v vaDone=%v bypassing=%v)",
					i, vv.Port, vv.Index, vv.Routed, vv.VADone, vv.Bypassing)
				return
			}
			// A bypassing VC holds a landing VC two hops out instead of a
			// normal VA allocation: it must stay inside the packet's
			// virtual network, the flown-over router's owner table must
			// carry the bypass sentinel for it, and on wrapped fabrics it
			// must sit inside the dateline class computed AT the
			// flown-over router (where the normal path would have
			// reallocated).
			if vv.Bypassing {
				if vv.OutVC/e.perVN != vv.Index/e.perVN {
					e.fail(now, "vc-legality",
						"router %d %v vc%d: bypass landing VC %d crosses virtual networks",
						i, vv.Port, vv.Index, vv.OutVC)
					return
				}
				b := e.view.M.Neighbor(r.ID, vv.OutDir)
				if b == mesh.Invalid {
					e.fail(now, "vc-legality",
						"router %d %v vc%d: bypassing toward %v with no neighbor",
						i, vv.Port, vv.Index, vv.OutDir)
					return
				}
				if own := e.view.Routers[b].Out(vv.OutDir).Owner(vv.OutVC); own != router.BypassOwner {
					e.fail(now, "vc-legality",
						"router %d %v vc%d: bypass landing VC %d of router %d %v owned by key %d, want bypass sentinel %d",
						i, vv.Port, vv.Index, vv.OutVC, b, vv.OutDir, own, router.BypassOwner)
					return
				}
				if e.view.RF.VCClasses() > 1 {
					cls := e.view.RF.ClassFor(b, vv.Front.Dst(), vv.OutDir)
					rel := vv.OutVC % e.perVN
					dlo, dhi := e.view.Cfg.DataVCClassRange(cls)
					clo, chi := e.view.Cfg.CtrlVCClassRange(cls)
					if !(rel >= dlo && rel < dhi) && !(rel >= clo && rel < chi) {
						e.fail(now, "dateline-legality",
							"router %d %v vc%d: packet %d (dst %d) bypassing over %d allocated landing VC %d outside dateline class %d (data [%d,%d), ctrl [%d,%d))",
							i, vv.Port, vv.Index, vv.Front.Packet.ID, vv.Front.Dst(), b,
							rel, cls, dlo, dhi, clo, chi)
						return
					}
				}
			}
			// dateline-legality: on wrapped fabrics (torus, ring) the
			// allocated downstream VC must sit inside the packet's
			// dateline class for the output's direction — the invariant
			// the deadlock-freedom argument rests on.
			if vv.VADone && vv.OutDir != mesh.Local && e.view.RF.VCClasses() > 1 {
				cls := e.view.RF.ClassFor(r.ID, vv.Front.Dst(), vv.OutDir)
				rel := vv.OutVC % e.perVN
				dlo, dhi := e.view.Cfg.DataVCClassRange(cls)
				clo, chi := e.view.Cfg.CtrlVCClassRange(cls)
				if !(rel >= dlo && rel < dhi) && !(rel >= clo && rel < chi) {
					e.fail(now, "dateline-legality",
						"router %d %v vc%d: packet %d (dst %d) toward %v allocated out-VC %d outside dateline class %d (data [%d,%d), ctrl [%d,%d))",
						i, vv.Port, vv.Index, vv.Front.Packet.ID, vv.Front.Dst(), vv.OutDir,
						rel, cls, dlo, dhi, clo, chi)
					return
				}
			}
		}

		// Reverse direction: every owned downstream VC has exactly the
		// input VC its key names, in the allocated state.
		for p := 0; p < mesh.NumPorts; p++ {
			op := r.Out(mesh.Direction(p))
			for v := 0; v < r.NumVCs(); v++ {
				own := op.Owner(v)
				if own < 0 {
					continue
				}
				vv := views[own]
				if !vv.VADone || vv.OutDir != mesh.Direction(p) || vv.OutVC != v {
					e.fail(now, "vc-legality",
						"router %d out %v vc%d: owner key %d does not hold this VC (vaDone=%v outDir=%v outVC=%d)",
						i, mesh.Direction(p), v, own, vv.VADone, vv.OutDir, vv.OutVC)
					return
				}
			}
		}
	}
}

// checkPipes verifies delivery hygiene: after the cycle's delivery phase
// no pipe holds an item that was already due.
func (e *Engine) checkPipes(now int64) {
	if e.first != nil {
		return
	}
	for i, r := range e.view.Routers {
		for p := 0; p < mesh.NumPorts; p++ {
			d := mesh.Direction(p)
			if n := r.Out(d).FlitOut.StaleCount(now); n != 0 {
				e.fail(now, "stale-pipe", "router %d out %v: %d flits missed delivery", i, d, n)
				return
			}
			if n := r.In(d).CreditOut.StaleCount(now); n != 0 {
				e.fail(now, "stale-pipe", "router %d in %v: %d credits missed delivery", i, d, n)
				return
			}
		}
	}
}

// checkFabric verifies punch-fabric sanity: inbound targets are valid
// mesh nodes within the residual hop budget (a target enters a relay
// inbox only after consuming at least one hop).
func (e *Engine) checkFabric(now int64) {
	if e.first != nil || e.view.Fabric == nil {
		return
	}
	hops := e.view.Fabric.Hops()
	for n := 0; n < e.view.M.NumNodes(); n++ {
		id := mesh.NodeID(n)
		for _, t := range e.view.Fabric.InboxTargets(id) {
			if !e.view.M.Contains(t) {
				e.fail(now, "fabric-sanity", "node %d inbox holds invalid target %d", n, t)
				return
			}
			if d := e.view.M.HopDistance(id, t); d > hops-1 {
				e.fail(now, "fabric-sanity",
					"node %d inbox target %d is %d hops away, punch budget leaves at most %d",
					n, t, d, hops-1)
				return
			}
		}
	}
}

// checkPGStats cross-checks the controllers' break-even (BET) accounting
// against the engine's independent observation of the same FSM: gated
// and waking cycle counters must agree exactly (the controller counts at
// its step, the engine at end of cycle, so a period in progress is one
// ahead), and event counters must be mutually consistent.
func (e *Engine) checkPGStats(now int64) {
	if e.first != nil {
		return
	}
	for i, r := range e.view.Routers {
		if !r.Ctrl.Enabled() {
			continue
		}
		st := r.Ctrl.Stats()
		adjG, adjW := int64(0), int64(0)
		switch r.Ctrl.State() {
		case pg.Gated:
			adjG = 1
		case pg.Waking:
			adjW = 1
		}
		if e.gatedSeen[i]-adjG != st.GatedCycles {
			e.fail(now, "pg-bet-accounting",
				"router %d: controller counted %d gated cycles, engine observed %d",
				i, st.GatedCycles, e.gatedSeen[i]-adjG)
			return
		}
		if e.wakingSeen[i]-adjW != st.WakingCycles {
			e.fail(now, "pg-bet-accounting",
				"router %d: controller counted %d waking cycles, engine observed %d",
				i, st.WakingCycles, e.wakingSeen[i]-adjW)
			return
		}
		if st.ShortGatings > st.GatingEvents {
			e.fail(now, "pg-bet-accounting",
				"router %d: %d short gatings exceed %d gating events", i, st.ShortGatings, st.GatingEvents)
			return
		}
		if st.WakeupsPunch+st.WakeupsWU > st.GatingEvents {
			e.fail(now, "pg-bet-accounting",
				"router %d: %d attributed wakeups exceed %d gating events",
				i, st.WakeupsPunch+st.WakeupsWU, st.GatingEvents)
			return
		}
	}
}
