package check

import (
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/pg"
	"powerpunch/internal/router"
)

// legalTransition is the power-gating FSM's transition relation as
// specified in the paper's Section 2.2 (and implemented in internal/pg):
// gating passes through Draining, waking through Waking, and neither is
// skippable.
func legalTransition(from, to pg.State) bool {
	switch {
	case from == to:
		return true
	case from == pg.Active && to == pg.Draining:
		return true
	case from == pg.Draining && to == pg.Active:
		return true
	case from == pg.Draining && to == pg.Gated:
		return true
	case from == pg.Gated && to == pg.Waking:
		return true
	case from == pg.Waking && to == pg.Active:
		return true
	}
	return false
}

// checkPG runs the per-cycle power-gating safety invariants:
//
//   - pg-fsm-legality: only the transitions of Section 2.2's FSM occur.
//   - pg-wake-duration: a completed wake spent exactly Twakeup-1
//     end-of-cycle observations in Waking (the WU cycle itself is the
//     first of the Twakeup cycles).
//   - pg-empty: a gated or waking router holds no flits and none are in
//     flight toward it — power-gating never catches data in the dark.
func (e *Engine) checkPG(now int64) {
	if e.first != nil {
		return
	}
	for i, r := range e.view.Routers {
		cur := r.Ctrl.State()
		prev := e.prevState[i]
		if cur != prev {
			if !legalTransition(prev, cur) {
				e.fail(now, "pg-fsm-legality", "router %d transitioned %s -> %s", i, prev, cur)
			}
			if prev == pg.Waking && cur == pg.Active && e.wakingFor[i] != e.expectWaking {
				e.fail(now, "pg-wake-duration",
					"router %d completed wake after %d waking cycles, want %d (Twakeup=%d)",
					i, e.wakingFor[i], e.expectWaking, e.view.Cfg.WakeupLatency)
			}
			e.record(now, "router %d: %s -> %s", i, prev, cur)
		}
		if cur == pg.Waking {
			e.wakingFor[i]++
			e.wakingSeen[i]++
		} else {
			e.wakingFor[i] = 0
		}
		if cur == pg.Gated {
			e.gatedSeen[i]++
		}
		e.prevState[i] = cur

		if r.Ctrl.PGAsserted() {
			if !r.Empty() {
				e.fail(now, "pg-empty", "router %d is %s with %d flits buffered", i, cur, r.BufferedFlits())
			}
			id := mesh.NodeID(i)
			for _, d := range mesh.LinkDirections {
				nb := e.view.M.Neighbor(id, d)
				if nb == mesh.Invalid {
					continue
				}
				if op := e.view.Routers[nb].Out(d.Opposite()); !op.FlitOut.Empty() {
					e.fail(now, "pg-empty",
						"router %d is %s with %d flits in flight from router %d", i, cur, op.FlitOut.Len(), nb)
				}
			}
		}
	}
}

// checkBlockedHeads runs the per-cycle progress invariants over every
// pipeline-ready routed head flit (the flits eligible for switch
// traversal this cycle):
//
//   - pg-wake-handshake: its downstream router is never still Gated —
//     under every power-gating scheme the WU level derived from this
//     very head reaches the neighbour's controller in the same cycle,
//     so at worst the neighbour is already Waking.
//   - punch-nonblocking: the paper's Section 4.1 guarantee. With k-hop
//     punch, LinkLatency 1 and k*Trouter >= Twakeup, the punch stream a
//     head emits from k hops out holds its downstream routers awake
//     gap-free, so a head more than k hops from its source never finds
//     the next router still waking. (At exactly k hops the injection
//     NI's one-cycle emission delay can legitimately cost a cycle, so
//     the bound is strict.)
//   - deadlock-watchdog: no ready head stalls more than CheckStallLimit
//     consecutive cycles without a gated/waking downstream excuse.
//   - scheduler-liveness: every head flit at the front of a VC is routed
//     by the end of its first full cycle in the router (route
//     computation is look-ahead and unconditional for a stepped
//     router). A head sitting unrouted for a cycle means the router
//     holds work but was never stepped — the failure mode of a lost
//     active-set re-arm, which the deadlock watchdog cannot see because
//     it only tracks routed heads.
func (e *Engine) checkBlockedHeads(now int64) {
	if e.first != nil {
		return
	}
	hops := e.view.Cfg.PunchHops
	for i, r := range e.view.Routers {
		if r.Empty() {
			continue
		}
		trouter := r.PipelineCycles()
		slots := e.stalls[i]
		r.ForEachVC(now, func(vv router.VCView) {
			if vv.Front != nil && vv.Front.Type.IsHead() && !vv.Routed && vv.FrontAge >= 1 {
				e.fail(now, "scheduler-liveness",
					"router %d %v vc%d: head of packet %d unrouted %d cycles after arrival — the router holds work but is not being stepped",
					i, vv.Port, vv.Index, vv.Front.Packet.ID, vv.FrontAge)
			}
			slot := &slots[vv.Key]
			ready := vv.Front != nil && vv.Routed && vv.FrontAge >= trouter
			if !ready {
				slot.f, slot.cnt = nil, 0
				return
			}
			if slot.f == vv.Front {
				slot.cnt++
			} else {
				slot.f, slot.cnt = vv.Front, 1
			}
			if vv.OutDir == mesh.Local {
				return // ejection never blocks (infinite NI credits)
			}
			nb := r.Out(vv.OutDir).Neighbor()
			if nb == mesh.Invalid {
				return
			}
			switch st := e.view.Routers[nb].Ctrl.State(); st {
			case pg.Gated:
				e.fail(now, "pg-wake-handshake",
					"router %d %v vc%d: ready head of packet %d is blocked by router %d still gated (no wakeup honoured)",
					i, vv.Port, vv.Index, vv.Front.Packet.ID, nb)
			case pg.Waking:
				if e.punchGuard && e.view.M.HopDistance(vv.Front.Packet.Src, nb) > hops {
					e.fail(now, "punch-nonblocking",
						"router %d %v vc%d: head of packet %d (src %d, %d hops from router %d) arrived before router %d finished waking — the %d-hop punch did not hide Twakeup",
						i, vv.Port, vv.Index, vv.Front.Packet.ID, vv.Front.Packet.Src,
						e.view.M.HopDistance(vv.Front.Packet.Src, nb), nb, nb, hops)
				}
				slot.cnt = 0 // waking downstream is a legitimate stall
			default:
				if slot.cnt > e.stallLimit {
					e.fail(now, "deadlock-watchdog",
						"router %d %v vc%d: head of packet %d stalled %d cycles toward %v with downstream router %d %s",
						i, vv.Port, vv.Index, vv.Front.Packet.ID, slot.cnt, vv.OutDir, nb, st)
				}
			}
		})
		if e.first != nil {
			return
		}
	}
}

// checkCredits verifies credit conservation on every link (and on the
// NI's local injection loop): for each VC, upstream credits + downstream
// occupancy + flits on the wire + credits on the return wire add up to
// exactly the buffer depth. Anything else means credits leaked or were
// forged — the failure mode that silently corrupts flow control.
func (e *Engine) checkCredits(now int64) {
	if e.first != nil {
		return
	}
	cfg := e.view.Cfg
	for i, r := range e.view.Routers {
		id := mesh.NodeID(i)
		for _, d := range mesh.LinkDirections {
			nb := e.view.M.Neighbor(id, d)
			if nb == mesh.Invalid {
				continue
			}
			op := r.Out(d)
			ip := e.view.Routers[nb].In(d.Opposite())
			for v := 0; v < r.NumVCs(); v++ {
				depth := cfg.VCDepth(v % e.perVN)
				wire := 0
				op.FlitOut.ForEach(func(ft router.FlitInTransit) {
					if ft.VC == v {
						wire++
					}
				})
				back := 0
				ip.CreditOut.ForEach(func(c router.Credit) {
					if c.VC == v {
						back++
					}
				})
				got := op.Credits(v) + e.view.Routers[nb].VCOccupancy(d.Opposite(), v) + wire + back
				if got != depth {
					e.fail(now, "credit-conservation",
						"link %d->%d vc%d: credits %d + occupancy %d + wire %d + returning %d != depth %d",
						i, nb, v, op.Credits(v), e.view.Routers[nb].VCOccupancy(d.Opposite(), v), wire, back, depth)
					return
				}
			}
		}
		// The NI is the upstream "router" of the local input port.
		nif := e.view.NIs[i]
		ip := r.In(mesh.Local)
		for v := 0; v < r.NumVCs(); v++ {
			depth := cfg.VCDepth(v % e.perVN)
			back := 0
			ip.CreditOut.ForEach(func(c router.Credit) {
				if c.VC == v {
					back++
				}
			})
			got := nif.CreditCount(v) + r.VCOccupancy(mesh.Local, v) + back
			if got != depth {
				e.fail(now, "credit-conservation",
					"ni %d local vc%d: credits %d + occupancy %d + returning %d != depth %d",
					i, v, nif.CreditCount(v), r.VCOccupancy(mesh.Local, v), back, depth)
				return
			}
		}
	}
}

// checkConservation verifies per-VN flit conservation across the whole
// network: every flit ever injected is either buffered in a router, on a
// wire, or ejected (a flit counts as ejected once the NI accepts it,
// even while its packet is still reassembling). A leak or a duplicate
// anywhere breaks the sum.
func (e *Engine) checkConservation(now int64) {
	if e.first != nil {
		return
	}
	var injected, ejected, inFlight [flit.NumVirtualNetworks]int64
	for i, r := range e.view.Routers {
		nif := e.view.NIs[i]
		for vn := flit.VirtualNetwork(0); vn < flit.NumVirtualNetworks; vn++ {
			injected[vn] += nif.InjectedFlitsVN(vn)
			ejected[vn] += nif.EjectedFlitsVN(vn)
		}
		if !r.Empty() {
			for v := 0; v < r.NumVCs(); v++ {
				vn := flit.VirtualNetwork(v / e.perVN)
				for p := 0; p < mesh.NumPorts; p++ {
					inFlight[vn] += int64(r.VCOccupancy(mesh.Direction(p), v))
				}
			}
		}
		for p := 0; p < mesh.NumPorts; p++ {
			r.Out(mesh.Direction(p)).FlitOut.ForEach(func(ft router.FlitInTransit) {
				inFlight[ft.Flit.Packet.VN]++
			})
		}
	}
	for vn := flit.VirtualNetwork(0); vn < flit.NumVirtualNetworks; vn++ {
		if injected[vn] != ejected[vn]+inFlight[vn] {
			e.fail(now, "flit-conservation",
				"vn %v: injected %d != ejected %d + in-flight %d",
				vn, injected[vn], ejected[vn], inFlight[vn])
			return
		}
	}
}

// checkVCLegality verifies the per-VC state machine: occupancy within
// depth, VA only after RC, flits in the VCs of their own virtual
// network, routes matching the fabric's routing function, allocated
// out-VCs inside the packet's dateline class on wrapped fabrics, and
// the downstream VC ownership table consistent in both directions.
func (e *Engine) checkVCLegality(now int64) {
	if e.first != nil {
		return
	}
	for i, r := range e.view.Routers {
		views := e.vcScratch[:0]
		r.ForEachVC(now, func(vv router.VCView) { views = append(views, vv) })
		e.vcScratch = views[:0]

		for _, vv := range views {
			if vv.Occupancy > vv.Depth {
				e.fail(now, "vc-legality", "router %d %v vc%d: occupancy %d > depth %d",
					i, vv.Port, vv.Index, vv.Occupancy, vv.Depth)
				return
			}
			if vv.VADone && !vv.Routed {
				e.fail(now, "vc-legality", "router %d %v vc%d: VA done before RC", i, vv.Port, vv.Index)
				return
			}
			if vv.VADone {
				if vv.OutVC/e.perVN != vv.Index/e.perVN {
					e.fail(now, "vc-legality", "router %d %v vc%d: allocated out-VC %d crosses virtual networks",
						i, vv.Port, vv.Index, vv.OutVC)
					return
				}
				if own := r.Out(vv.OutDir).Owner(vv.OutVC); own != vv.Key {
					e.fail(now, "vc-legality",
						"router %d %v vc%d: allocated out-VC %d of %v owned by key %d, want %d",
						i, vv.Port, vv.Index, vv.OutVC, vv.OutDir, own, vv.Key)
					return
				}
			}
			if vv.Front == nil {
				continue
			}
			if int(vv.Front.Packet.VN) != vv.Index/e.perVN {
				e.fail(now, "vc-legality", "router %d %v vc%d: buffered flit of vn %v in a vn-%d VC",
					i, vv.Port, vv.Index, vv.Front.Packet.VN, vv.Index/e.perVN)
				return
			}
			if vv.Front.Type.IsHead() {
				if vv.Routed {
					want, err := e.view.RF.Route(r.ID, vv.Front.Dst())
					if err != nil {
						e.fail(now, "vc-legality",
							"router %d %v vc%d: packet %d has unroutable destination: %v",
							i, vv.Port, vv.Index, vv.Front.Packet.ID, err)
						return
					}
					if vv.OutDir != want {
						e.fail(now, "vc-legality",
							"router %d %v vc%d: packet %d routed %v, %s says %v",
							i, vv.Port, vv.Index, vv.Front.Packet.ID, vv.OutDir, e.view.RF, want)
						return
					}
				}
			} else if !vv.Routed || !vv.VADone {
				e.fail(now, "vc-legality",
					"router %d %v vc%d: body/tail flit at front without held route (routed=%v vaDone=%v)",
					i, vv.Port, vv.Index, vv.Routed, vv.VADone)
				return
			}
			// dateline-legality: on wrapped fabrics (torus, ring) the
			// allocated downstream VC must sit inside the packet's
			// dateline class for the output's direction — the invariant
			// the deadlock-freedom argument rests on.
			if vv.VADone && vv.OutDir != mesh.Local && e.view.RF.VCClasses() > 1 {
				cls := e.view.RF.ClassFor(r.ID, vv.Front.Dst(), vv.OutDir)
				rel := vv.OutVC % e.perVN
				dlo, dhi := e.view.Cfg.DataVCClassRange(cls)
				clo, chi := e.view.Cfg.CtrlVCClassRange(cls)
				if !(rel >= dlo && rel < dhi) && !(rel >= clo && rel < chi) {
					e.fail(now, "dateline-legality",
						"router %d %v vc%d: packet %d (dst %d) toward %v allocated out-VC %d outside dateline class %d (data [%d,%d), ctrl [%d,%d))",
						i, vv.Port, vv.Index, vv.Front.Packet.ID, vv.Front.Dst(), vv.OutDir,
						rel, cls, dlo, dhi, clo, chi)
					return
				}
			}
		}

		// Reverse direction: every owned downstream VC has exactly the
		// input VC its key names, in the allocated state.
		for p := 0; p < mesh.NumPorts; p++ {
			op := r.Out(mesh.Direction(p))
			for v := 0; v < r.NumVCs(); v++ {
				own := op.Owner(v)
				if own < 0 {
					continue
				}
				vv := views[own]
				if !vv.VADone || vv.OutDir != mesh.Direction(p) || vv.OutVC != v {
					e.fail(now, "vc-legality",
						"router %d out %v vc%d: owner key %d does not hold this VC (vaDone=%v outDir=%v outVC=%d)",
						i, mesh.Direction(p), v, own, vv.VADone, vv.OutDir, vv.OutVC)
					return
				}
			}
		}
	}
}

// checkPipes verifies delivery hygiene: after the cycle's delivery phase
// no pipe holds an item that was already due.
func (e *Engine) checkPipes(now int64) {
	if e.first != nil {
		return
	}
	for i, r := range e.view.Routers {
		for p := 0; p < mesh.NumPorts; p++ {
			d := mesh.Direction(p)
			if n := r.Out(d).FlitOut.StaleCount(now); n != 0 {
				e.fail(now, "stale-pipe", "router %d out %v: %d flits missed delivery", i, d, n)
				return
			}
			if n := r.In(d).CreditOut.StaleCount(now); n != 0 {
				e.fail(now, "stale-pipe", "router %d in %v: %d credits missed delivery", i, d, n)
				return
			}
		}
	}
}

// checkFabric verifies punch-fabric sanity: inbound targets are valid
// mesh nodes within the residual hop budget (a target enters a relay
// inbox only after consuming at least one hop).
func (e *Engine) checkFabric(now int64) {
	if e.first != nil || e.view.Fabric == nil {
		return
	}
	hops := e.view.Fabric.Hops()
	for n := 0; n < e.view.M.NumNodes(); n++ {
		id := mesh.NodeID(n)
		for _, t := range e.view.Fabric.InboxTargets(id) {
			if !e.view.M.Contains(t) {
				e.fail(now, "fabric-sanity", "node %d inbox holds invalid target %d", n, t)
				return
			}
			if d := e.view.M.HopDistance(id, t); d > hops-1 {
				e.fail(now, "fabric-sanity",
					"node %d inbox target %d is %d hops away, punch budget leaves at most %d",
					n, t, d, hops-1)
				return
			}
		}
	}
}

// checkPGStats cross-checks the controllers' break-even (BET) accounting
// against the engine's independent observation of the same FSM: gated
// and waking cycle counters must agree exactly (the controller counts at
// its step, the engine at end of cycle, so a period in progress is one
// ahead), and event counters must be mutually consistent.
func (e *Engine) checkPGStats(now int64) {
	if e.first != nil {
		return
	}
	for i, r := range e.view.Routers {
		if !r.Ctrl.Enabled() {
			continue
		}
		st := r.Ctrl.Stats()
		adjG, adjW := int64(0), int64(0)
		switch r.Ctrl.State() {
		case pg.Gated:
			adjG = 1
		case pg.Waking:
			adjW = 1
		}
		if e.gatedSeen[i]-adjG != st.GatedCycles {
			e.fail(now, "pg-bet-accounting",
				"router %d: controller counted %d gated cycles, engine observed %d",
				i, st.GatedCycles, e.gatedSeen[i]-adjG)
			return
		}
		if e.wakingSeen[i]-adjW != st.WakingCycles {
			e.fail(now, "pg-bet-accounting",
				"router %d: controller counted %d waking cycles, engine observed %d",
				i, st.WakingCycles, e.wakingSeen[i]-adjW)
			return
		}
		if st.ShortGatings > st.GatingEvents {
			e.fail(now, "pg-bet-accounting",
				"router %d: %d short gatings exceed %d gating events", i, st.ShortGatings, st.GatingEvents)
			return
		}
		if st.WakeupsPunch+st.WakeupsWU > st.GatingEvents {
			e.fail(now, "pg-bet-accounting",
				"router %d: %d attributed wakeups exceed %d gating events",
				i, st.WakeupsPunch+st.WakeupsWU, st.GatingEvents)
			return
		}
	}
}
