// Package cmp is the full-system substrate standing in for the paper's
// gem5 + GARNET setup: a chip multiprocessor whose cores, private L1s,
// shared distributed L2 banks, MESI-style directory, and corner memory
// controllers generate the three-virtual-network coherence traffic the
// NoC carries, with an execution-time feedback loop (network latency
// lengthens miss latency, which stalls cores and lengthens execution).
//
// The protocol is a statistical MESI skeleton: request (VN0) ->
// directory action (invalidations on VN1, memory fetches on VN1) ->
// responses/acks/writebacks (VN2). VN2 sinks unconditionally at the NIs,
// so the message-dependency chain VN0 -> VN1 -> VN2 is acyclic and the
// protocol is deadlock-free, exactly the property the paper's 3-VN
// configuration provides.
package cmp

import (
	"fmt"
	"math/rand"

	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/network"
	"powerpunch/internal/obs"
)

// MsgType enumerates protocol messages.
type MsgType int

// Protocol message types.
const (
	MsgGetLine MsgType = iota // core -> home: read/write request (VN0, ctrl)
	MsgInv                    // home -> sharer: invalidate (VN1, ctrl)
	MsgMemReq                 // home -> memory controller: fetch (VN1, ctrl)
	MsgAck                    // sharer -> home: invalidation ack (VN2, ctrl)
	MsgData                   // home/MC -> core: line data (VN2, data)
	MsgWB                     // core -> home: writeback (VN2, data)
)

// String returns a short message-type name.
func (t MsgType) String() string {
	switch t {
	case MsgGetLine:
		return "GET"
	case MsgInv:
		return "INV"
	case MsgMemReq:
		return "MEMREQ"
	case MsgAck:
		return "ACK"
	case MsgData:
		return "DATA"
	case MsgWB:
		return "WB"
	default:
		return fmt.Sprintf("Msg(%d)", int(t))
	}
}

// Msg is the protocol payload carried in flit.Packet.Payload.
type Msg struct {
	Type      MsgType
	Txn       uint64
	Requester mesh.NodeID
	Home      mesh.NodeID
	// Write marks a GetX (read-for-ownership); only writes can require
	// sharer invalidations.
	Write bool
}

// Profile parameterizes one workload (one PARSEC-like benchmark).
type Profile struct {
	Name string

	InstrPerCore int64   // instructions each core retires
	MPKI         float64 // L1 misses per kilo-instruction
	L2HitRate    float64 // probability a miss hits in the shared L2
	// WriteFrac is the fraction of misses that are writes (GetX).
	// Zero means the default (0.3); a negative value means read-only.
	WriteFrac float64
	// InvFrac is the probability an L2 hit needs invalidations,
	// expressed over ALL hits; since only writes invalidate, a write
	// hit invalidates with probability InvFrac/WriteFrac (capped at 1).
	InvFrac    float64
	MaxSharers int     // sharers to invalidate (1..MaxSharers)
	WBFrac     float64 // probability a fill triggers a writeback
	BlockFrac  float64 // probability a miss blocks the core until filled
	MSHRs      int     // outstanding misses per core
	// LocalFrac is the probability a miss's home L2 bank lies within
	// LocalRadius hops of the requester (page-coloring / first-touch
	// locality); the remainder are uniformly distributed.
	LocalFrac   float64
	LocalRadius int
	// Misses arrive in bursts of BurstSize spaced BurstGap cycles apart,
	// all to the same home bank (cache-line streaming through a page).
	// MPKI remains the average rate. BurstSize <= 1 disables clustering.
	BurstSize int
	BurstGap  int

	// Phase behaviour: miss rate is multiplied by PhaseScale during the
	// quiet fraction (1 - PhaseDuty) of each PhasePeriod, modelling
	// bursty benchmarks. PhasePeriod == 0 disables phases.
	PhasePeriod int64
	PhaseDuty   float64
	PhaseScale  float64

	// Latencies (cycles).
	L1Latency  int
	L2Latency  int
	MemLatency int
	// MemOccupancy is how long one DRAM access occupies a memory
	// controller (bank-level parallelism folded into one figure); a hot
	// controller queues requests. L2 banks similarly serve one request
	// per L2Latency.
	MemOccupancy int
}

// DefaultProfileLatencies fills in the paper's Table 2 latencies if unset.
func (p *Profile) applyDefaults() {
	if p.L1Latency == 0 {
		p.L1Latency = 1
	}
	if p.L2Latency == 0 {
		p.L2Latency = 6
	}
	if p.MemLatency == 0 {
		p.MemLatency = 128
	}
	if p.MSHRs == 0 {
		p.MSHRs = 8
	}
	if p.MaxSharers == 0 {
		p.MaxSharers = 2
	}
	if p.BurstSize == 0 {
		p.BurstSize = 4
	}
	if p.BurstGap == 0 {
		p.BurstGap = 8
	}
	if p.WriteFrac == 0 {
		p.WriteFrac = 0.3
	}
	if p.WriteFrac < 0 {
		p.WriteFrac = 0
	}
	if p.MemOccupancy == 0 {
		p.MemOccupancy = 16
	}
}

// invProbForWrite returns the per-write-hit invalidation probability
// that yields InvFrac over all hits.
func (p *Profile) invProbForWrite() float64 {
	if p.WriteFrac <= 0 {
		return 0
	}
	pr := p.InvFrac / p.WriteFrac
	if pr > 1 {
		pr = 1
	}
	return pr
}

// core is one processor's execution state.
type core struct {
	node        mesh.NodeID
	remaining   int64
	outstanding int
	blockedOn   uint64 // txn id the core stalls on; 0 = running
	finishedAt  int64  // cycle the budget hit zero; -1 while running

	// Burst state: remaining clustered misses, their common home, and
	// the earliest cycle the next one may issue.
	burstLeft int
	burstHome mesh.NodeID
	burstNext int64

	// Stats.
	Misses      int64
	StallCycles int64
}

// homeTxn tracks a directory transaction awaiting invalidation acks.
type homeTxn struct {
	requester mesh.NodeID
	acksLeft  int
}

// System is a complete CMP workload: it implements network.Driver.
type System struct {
	Prof Profile
	net  *network.Network
	rng  *rand.Rand

	cores   []*core
	mcs     []mesh.NodeID
	pending map[uint64]*homeTxn // keyed by txn, live at the home node
	txnSeq  uint64

	// Contention: each L2 bank serves one request per L2Latency; each
	// memory controller admits one access per MemOccupancy. Requests
	// arriving at a busy resource queue behind it.
	bankBusy map[mesh.NodeID]int64
	mcBusy   map[mesh.NodeID]int64

	// Contention stats.
	BankQueueCycles int64
	MCQueueCycles   int64

	// Observability. The workload publishes protocol-level events
	// (wl_miss, wl_fill, wl_dir) onto the network's bus, alongside the
	// injection/ejection/wakeup events the NIs and controllers already
	// emit, so CMP runs produce the same JSONL traces synthetic runs do.
	// Tick-time events (miss issue) go straight to the bus — Tick runs
	// on the coordinator in every engine. Deliver-time events (directory
	// actions, fills) are buffered in evq and flushed from the next
	// coordinator-side hook (Done or Tick): under the sharded parallel
	// engine the Deliver callbacks replay after the NI events of the
	// same phase, so emitting inline would interleave differently than
	// the serial engines. The buffer is drained at a fixed point of the
	// run loop instead, making the event stream bit-identical across
	// serial, FullTick, and parallel engines. The bus stamps flushed
	// events with the cycle the deliver happened in (SetNow for the next
	// cycle has not run yet at hook time).
	bus *obs.Bus
	evq []obs.Event

	// Stats.
	TotalMisses   int64
	TotalReads    int64
	TotalWrites   int64
	TotalInvs     int64
	TotalMemReqs  int64
	TotalWBs      int64
	PacketsByType [6]int64
}

// NewSystem attaches a CMP workload to net. Every node hosts one core and
// one L2 bank; memory controllers sit at the corners (Table 2). The
// system registers itself as the delivery handler of every NI.
func NewSystem(prof Profile, net *network.Network, seed int64) *System {
	prof.applyDefaults()
	s := &System{
		Prof:     prof,
		net:      net,
		rng:      rand.New(rand.NewSource(seed)),
		pending:  map[uint64]*homeTxn{},
		mcs:      net.M.Corners(),
		bankBusy: map[mesh.NodeID]int64{},
		mcBusy:   map[mesh.NodeID]int64{},
	}
	for id := mesh.NodeID(0); net.M.Contains(id); id++ {
		c := &core{node: id, remaining: prof.InstrPerCore, finishedAt: -1}
		s.cores = append(s.cores, c)
		s.net.NI(id).Deliver = s.deliver
	}
	return s
}

// missProb returns the per-instruction miss probability at cycle now,
// applying phase modulation.
func (s *System) missProb(now int64) float64 {
	p := s.Prof.MPKI / 1000
	if s.Prof.PhasePeriod > 0 {
		pos := float64(now%s.Prof.PhasePeriod) / float64(s.Prof.PhasePeriod)
		if pos >= s.Prof.PhaseDuty {
			p *= s.Prof.PhaseScale
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

// Tick implements network.Driver: each running core retires one
// instruction and possibly issues an L1 miss. Misses cluster in bursts
// (consecutive lines streaming through the same home bank), so the
// base-draw probability is the average divided by the burst size.
func (s *System) Tick(n *network.Network, now int64) {
	if s.bus == nil {
		s.bus = n.Bus()
	}
	s.flushEvents()
	burst := s.Prof.BurstSize
	if burst < 1 {
		burst = 1
	}
	mp := s.missProb(now) / float64(burst)
	for _, c := range s.cores {
		if c.finishedAt >= 0 {
			continue
		}
		if c.blockedOn != 0 || c.outstanding >= s.Prof.MSHRs {
			c.StallCycles++
			continue
		}
		c.remaining--
		if c.remaining <= 0 {
			c.finishedAt = now
			continue
		}
		if c.burstLeft > 0 {
			if now >= c.burstNext {
				c.burstLeft--
				c.burstNext = now + int64(s.Prof.BurstGap)
				s.issueMissTo(c, c.burstHome, now)
			}
			continue
		}
		if s.rng.Float64() < mp {
			c.burstHome = s.pickHome(c.node)
			c.burstLeft = burst - 1
			c.burstNext = now + int64(s.Prof.BurstGap)
			s.issueMissTo(c, c.burstHome, now)
		}
	}
}

// issueMissTo sends a GetS/GetX request from core c to home.
func (s *System) issueMissTo(c *core, home mesh.NodeID, now int64) {
	c.Misses++
	s.TotalMisses++
	s.txnSeq++
	txn := s.txnSeq
	c.outstanding++
	write := s.rng.Float64() < s.Prof.WriteFrac
	if write {
		s.TotalWrites++
	} else {
		s.TotalReads++
	}
	if s.rng.Float64() < s.Prof.BlockFrac {
		c.blockedOn = txn
	}
	s.send(c.node, home, flit.VNRequest, flit.KindControl,
		Msg{Type: MsgGetLine, Txn: txn, Requester: c.node, Home: home, Write: write},
		false, s.Prof.L1Latency, now)
	if s.bus != nil {
		var a int64
		if write {
			a = 1
		}
		// Direct emit: Tick runs on the coordinator in every engine, so
		// driver-time events need no buffering (same convention as the
		// punch fabric's driver-time emissions).
		s.bus.Emit(obs.Event{
			Kind: obs.KindWorkloadMiss, Node: int32(c.node),
			Dst: int32(home), VC: int16(flit.VNRequest), Pkt: txn, A: a,
		})
	}
}

// flushEvents drains buffered deliver-time events onto the bus. Called
// only from coordinator-side hooks (Tick, Done) so the emission point —
// and therefore the JSONL trace — is identical across the serial,
// FullTick, and parallel engines; see the evq field comment.
func (s *System) flushEvents() {
	if s.bus == nil || len(s.evq) == 0 {
		return
	}
	for i := range s.evq {
		s.bus.Emit(s.evq[i])
	}
	s.evq = s.evq[:0]
}

// send builds and submits one protocol packet.
func (s *System) send(src, dst mesh.NodeID, vn flit.VirtualNetwork, kind flit.Kind, m Msg, hint bool, delay int, now int64) {
	p := s.net.NewPacket(src, dst, vn, kind)
	p.Payload = m
	s.PacketsByType[m.Type]++
	s.net.NI(src).SubmitDelayed(p, hint, delay, now)
}

// deliver is the NI ejection handler: it advances the protocol state
// machine at the receiving node.
func (s *System) deliver(p *flit.Packet, now int64) {
	m, ok := p.Payload.(Msg)
	if !ok {
		return // non-protocol packet (mixed workloads)
	}
	here := p.Dst
	switch m.Type {
	case MsgGetLine:
		s.handleRequest(here, m, now)
	case MsgInv:
		// Sharer invalidates its L1 copy and acks the home directory.
		s.send(here, m.Home, flit.VNResponse, flit.KindControl,
			Msg{Type: MsgAck, Txn: m.Txn, Requester: m.Requester, Home: m.Home},
			false, s.Prof.L1Latency, now)
	case MsgAck:
		if t := s.pending[m.Txn]; t != nil {
			t.acksLeft--
			if t.acksLeft <= 0 {
				delete(s.pending, m.Txn)
				// Directory data is ready; respond after a short access.
				s.send(here, t.requester, flit.VNResponse, flit.KindData,
					Msg{Type: MsgData, Txn: m.Txn, Requester: t.requester, Home: here},
					true, 2, now)
			}
		}
	case MsgMemReq:
		// Memory controller: fetch from DRAM (queueing behind earlier
		// accesses), then send the line directly to the requester.
		s.send(here, m.Requester, flit.VNResponse, flit.KindData,
			Msg{Type: MsgData, Txn: m.Txn, Requester: m.Requester, Home: m.Home},
			true, s.mcDelay(here, now), now)
	case MsgData:
		s.handleFill(here, m, now)
	case MsgWB:
		// Writeback absorbed at the home bank.
	}
}

// bankDelay reserves the home L2 bank and returns the total service
// delay (queueing behind earlier requests + the access itself).
func (s *System) bankDelay(home mesh.NodeID, now int64) int {
	start := now
	if busy := s.bankBusy[home]; busy > start {
		s.BankQueueCycles += busy - start
		start = busy
	}
	s.bankBusy[home] = start + int64(s.Prof.L2Latency)
	return int(start-now) + s.Prof.L2Latency
}

// mcDelay reserves the memory controller and returns the total access
// delay (queueing + DRAM latency).
func (s *System) mcDelay(mc mesh.NodeID, now int64) int {
	start := now
	if busy := s.mcBusy[mc]; busy > start {
		s.MCQueueCycles += busy - start
		start = busy
	}
	s.mcBusy[mc] = start + int64(s.Prof.MemOccupancy)
	return int(start-now) + s.Prof.MemLatency
}

// handleRequest processes a GetLine at the home L2 bank / directory.
func (s *System) handleRequest(home mesh.NodeID, m Msg, now int64) {
	delay := s.bankDelay(home, now)
	if s.rng.Float64() >= s.Prof.L2HitRate {
		// L2 miss: forward to the memory controller owning the line.
		s.TotalMemReqs++
		mc := s.mcs[int(m.Txn)%len(s.mcs)]
		s.send(home, mc, flit.VNCoherence, flit.KindControl,
			Msg{Type: MsgMemReq, Txn: m.Txn, Requester: m.Requester, Home: home},
			true, delay, now)
		if s.bus != nil {
			s.evq = append(s.evq, obs.Event{
				Kind: obs.KindWorkloadDir, Node: int32(home),
				Src: int32(m.Requester), Dst: int32(mc), Pkt: m.Txn, A: 2,
			})
		}
		return
	}
	if m.Write && s.Prof.MaxSharers > 0 && s.rng.Float64() < s.Prof.invProbForWrite() {
		// Write hit on a shared line: sharers must be invalidated first
		// (reads never invalidate under MESI).
		k := 1 + s.rng.Intn(s.Prof.MaxSharers)
		s.pending[m.Txn] = &homeTxn{requester: m.Requester, acksLeft: k}
		for i := 0; i < k; i++ {
			sharer := s.randomNodeExcept(home)
			s.TotalInvs++
			s.send(home, sharer, flit.VNCoherence, flit.KindControl,
				Msg{Type: MsgInv, Txn: m.Txn, Requester: m.Requester, Home: home},
				true, delay, now)
		}
		if s.bus != nil {
			s.evq = append(s.evq, obs.Event{
				Kind: obs.KindWorkloadDir, Node: int32(home),
				Src: int32(m.Requester), Pkt: m.Txn, A: 1, B: int64(k),
			})
		}
		return
	}
	// Clean hit: data response after the L2 access.
	s.send(home, m.Requester, flit.VNResponse, flit.KindData,
		Msg{Type: MsgData, Txn: m.Txn, Requester: m.Requester, Home: home},
		true, delay, now)
	if s.bus != nil {
		s.evq = append(s.evq, obs.Event{
			Kind: obs.KindWorkloadDir, Node: int32(home),
			Src: int32(m.Requester), Pkt: m.Txn,
		})
	}
}

// handleFill completes a miss at the requesting core.
func (s *System) handleFill(node mesh.NodeID, m Msg, now int64) {
	c := s.cores[node]
	if c.outstanding > 0 {
		c.outstanding--
	}
	if c.blockedOn == m.Txn {
		c.blockedOn = 0
	}
	if s.bus != nil {
		s.evq = append(s.evq, obs.Event{
			Kind: obs.KindWorkloadFill, Node: int32(node),
			Src: int32(m.Home), Pkt: m.Txn,
		})
	}
	if s.rng.Float64() < s.Prof.WBFrac {
		s.TotalWBs++
		s.send(node, m.Home, flit.VNResponse, flit.KindData,
			Msg{Type: MsgWB, Txn: m.Txn, Requester: node, Home: m.Home},
			false, s.Prof.L1Latency, now)
	}
}

// pickHome chooses the home L2 bank for a miss at node c, honouring the
// profile's locality parameters.
func (s *System) pickHome(c mesh.NodeID) mesh.NodeID {
	if s.Prof.LocalFrac > 0 && s.rng.Float64() < s.Prof.LocalFrac {
		r := s.Prof.LocalRadius
		if r < 1 {
			r = 2
		}
		near := s.net.M.NodesWithin(c, r)
		if len(near) > 0 {
			return near[s.rng.Intn(len(near))]
		}
	}
	return s.randomNodeExcept(c)
}

func (s *System) randomNodeExcept(not mesh.NodeID) mesh.NodeID {
	n := s.net.M.NumNodes()
	d := mesh.NodeID(s.rng.Intn(n - 1))
	if d >= not {
		d++
	}
	return d
}

// Done implements network.Driver: the workload completes when every core
// has retired its budget and no directory transaction is pending. (The
// network's quiescence check covers in-flight packets.)
func (s *System) Done() bool {
	s.flushEvents()
	for _, c := range s.cores {
		if c.finishedAt < 0 {
			return false
		}
	}
	return len(s.pending) == 0
}

// ExecutionTime returns the cycle at which the last core finished, the
// paper's execution-time metric (Figure 8). Valid once Done.
func (s *System) ExecutionTime() int64 {
	var max int64
	for _, c := range s.cores {
		if c.finishedAt > max {
			max = c.finishedAt
		}
	}
	return max
}

// TotalStallCycles sums core stall cycles (network sensitivity metric).
func (s *System) TotalStallCycles() int64 {
	var t int64
	for _, c := range s.cores {
		t += c.StallCycles
	}
	return t
}
