package cmp

import (
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/network"
)

func testProfile() Profile {
	return Profile{
		Name: "test", InstrPerCore: 3000, MPKI: 2.0, L2HitRate: 0.7,
		InvFrac: 0.2, MaxSharers: 2, WBFrac: 0.3, BlockFrac: 0.7,
		LocalFrac: 0.4, LocalRadius: 2,
	}
}

func newSystem(t *testing.T, scheme config.Scheme, prof Profile) (*network.Network, *System) {
	t.Helper()
	cfg := config.Default()
	cfg.Scheme = scheme
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net, NewSystem(prof, net, 11)
}

func TestWorkloadCompletes(t *testing.T) {
	for _, s := range config.AllSchemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			net, sys := newSystem(t, s, testProfile())
			res := net.RunUntil(sys, 500_000)
			if !res.Drained {
				t.Fatalf("workload did not complete (exec=%d)", sys.ExecutionTime())
			}
			if !sys.Done() {
				t.Fatal("Done() false after drain")
			}
			if sys.ExecutionTime() < testProfile().InstrPerCore {
				t.Errorf("execution time %d below instruction budget", sys.ExecutionTime())
			}
		})
	}
}

func TestEveryMissIsFilled(t *testing.T) {
	net, sys := newSystem(t, config.NoPG, testProfile())
	net.RunUntil(sys, 500_000)
	// Conservation: every GetLine leads to exactly one Data fill.
	gets := sys.PacketsByType[MsgGetLine]
	datas := sys.PacketsByType[MsgData]
	if gets == 0 {
		t.Fatal("no misses generated")
	}
	if gets != datas {
		t.Errorf("GET=%d DATA=%d: unfilled misses", gets, datas)
	}
	// Every invalidation is acked.
	if sys.PacketsByType[MsgInv] != sys.PacketsByType[MsgAck] {
		t.Errorf("INV=%d ACK=%d", sys.PacketsByType[MsgInv], sys.PacketsByType[MsgAck])
	}
	// All cores' MSHRs drained.
	for _, c := range sys.cores {
		if c.outstanding != 0 || c.blockedOn != 0 {
			t.Errorf("core %d left with outstanding=%d blocked=%d", c.node, c.outstanding, c.blockedOn)
		}
	}
}

func TestMSHRBound(t *testing.T) {
	prof := testProfile()
	prof.MSHRs = 2
	prof.MPKI = 40 // hammer the MSHRs
	net, sys := newSystem(t, config.NoPG, prof)
	for i := 0; i < 20_000 && !sys.Done(); i++ {
		sys.Tick(net, net.Now())
		for _, c := range sys.cores {
			if c.outstanding > 2 {
				t.Fatalf("core %d exceeded MSHR bound: %d", c.node, c.outstanding)
			}
		}
		net.Step()
	}
}

func TestNetworkLatencyAffectsExecutionTime(t *testing.T) {
	// The execution-time feedback loop: ConvOpt-PG (blocking wakeups)
	// must not run faster than No-PG on a miss-heavy workload.
	prof := testProfile()
	prof.MPKI = 4
	prof.BlockFrac = 0.9
	net1, sys1 := newSystem(t, config.NoPG, prof)
	net1.RunUntil(sys1, 500_000)
	net2, sys2 := newSystem(t, config.ConvOptPG, prof)
	net2.RunUntil(sys2, 500_000)
	if sys2.ExecutionTime() <= sys1.ExecutionTime() {
		t.Errorf("ConvOpt exec %d <= No-PG exec %d; the feedback loop is broken",
			sys2.ExecutionTime(), sys1.ExecutionTime())
	}
}

func TestZeroMPKIIsPureCompute(t *testing.T) {
	prof := testProfile()
	prof.MPKI = 0
	net, sys := newSystem(t, config.NoPG, prof)
	res := net.RunUntil(sys, 100_000)
	if !res.Drained {
		t.Fatal("did not finish")
	}
	if sys.TotalMisses != 0 {
		t.Error("misses with MPKI=0")
	}
	// Execution time == instruction budget (finishedAt is the cycle the
	// budget hits zero, counting from 0).
	if got := sys.ExecutionTime(); got != prof.InstrPerCore-1 {
		t.Errorf("exec = %d, want %d", got, prof.InstrPerCore-1)
	}
}

func TestPhasesModulateMissRate(t *testing.T) {
	prof := testProfile()
	prof.PhasePeriod = 100
	prof.PhaseDuty = 0.5
	prof.PhaseScale = 0.0 // quiet half generates nothing
	_, sys := newSystem(t, config.NoPG, prof)
	if p := sys.missProb(10); p == 0 {
		t.Error("active phase must miss")
	}
	if p := sys.missProb(60); p != 0 {
		t.Error("quiet phase must be scaled to zero")
	}
}

func TestHomesRespectLocality(t *testing.T) {
	prof := testProfile()
	prof.LocalFrac = 1.0
	prof.LocalRadius = 1
	net, sys := newSystem(t, config.NoPG, prof)
	for i := 0; i < 500; i++ {
		h := sys.pickHome(5)
		if net.M.HopDistance(5, h) > 1 {
			t.Fatalf("home %d outside radius 1 of node 5", h)
		}
	}
}

func TestProfileDefaults(t *testing.T) {
	p := Profile{}
	p.applyDefaults()
	if p.L1Latency != 1 || p.L2Latency != 6 || p.MemLatency != 128 ||
		p.MSHRs != 8 || p.MaxSharers != 2 || p.BurstSize != 4 || p.BurstGap != 8 {
		t.Errorf("defaults: %+v", p)
	}
}

func TestVirtualNetworkAssignment(t *testing.T) {
	// Protocol deadlock freedom depends on the VN mapping: requests on
	// VN0, forwards on VN1, responses on VN2.
	net, sys := newSystem(t, config.NoPG, testProfile())
	seen := map[MsgType]flit.VirtualNetwork{}
	for id := range net.NIs {
		orig := net.NIs[id].Deliver
		net.NIs[id].Deliver = func(p *flit.Packet, now int64) {
			if m, ok := p.Payload.(Msg); ok {
				if vn, dup := seen[m.Type]; dup && vn != p.VN {
					t.Fatalf("message type %v on two VNs", m.Type)
				}
				seen[m.Type] = p.VN
			}
			orig(p, now)
		}
	}
	net.RunUntil(sys, 500_000)
	want := map[MsgType]flit.VirtualNetwork{
		MsgGetLine: flit.VNRequest,
		MsgInv:     flit.VNCoherence,
		MsgMemReq:  flit.VNCoherence,
		MsgAck:     flit.VNResponse,
		MsgData:    flit.VNResponse,
		MsgWB:      flit.VNResponse,
	}
	for mt, vn := range seen {
		if want[mt] != vn {
			t.Errorf("%v on VN %v, want %v", mt, vn, want[mt])
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, mt := range []MsgType{MsgGetLine, MsgInv, MsgMemReq, MsgAck, MsgData, MsgWB} {
		if mt.String() == "" {
			t.Errorf("empty name for %d", int(mt))
		}
	}
}

func TestStallCyclesAccumulate(t *testing.T) {
	prof := testProfile()
	prof.MPKI = 10
	prof.BlockFrac = 1.0
	net, sys := newSystem(t, config.NoPG, prof)
	net.RunUntil(sys, 500_000)
	if sys.TotalStallCycles() == 0 {
		t.Error("fully-blocking misses must stall cores")
	}
}

func TestOnlyWritesInvalidate(t *testing.T) {
	prof := testProfile()
	prof.WriteFrac = -1 // read-only workload
	prof.InvFrac = 0.5
	net, sys := newSystem(t, config.NoPG, prof)
	net.RunUntil(sys, 500_000)
	if sys.TotalInvs != 0 {
		t.Errorf("read-only workload produced %d invalidations", sys.TotalInvs)
	}
	if sys.TotalWrites != 0 || sys.TotalReads == 0 {
		t.Errorf("read/write split: reads=%d writes=%d", sys.TotalReads, sys.TotalWrites)
	}
}

func TestWriteFractionRespected(t *testing.T) {
	prof := testProfile()
	prof.WriteFrac = 0.5
	net, sys := newSystem(t, config.NoPG, prof)
	net.RunUntil(sys, 500_000)
	total := sys.TotalReads + sys.TotalWrites
	if total == 0 {
		t.Fatal("no misses")
	}
	frac := float64(sys.TotalWrites) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("write fraction %.2f, want ~0.5", frac)
	}
}

func TestBankContentionQueuesRequests(t *testing.T) {
	// Hammer one home bank: service must serialize at one request per
	// L2Latency, so queueing cycles accumulate.
	prof := testProfile()
	prof.LocalFrac = 0
	net, sys := newSystem(t, config.NoPG, prof)
	home := net.M.NodeAt(mesh.Coord{X: 1, Y: 1})
	for i := 0; i < 10; i++ {
		sys.deliver(&flit.Packet{Dst: home, Payload: Msg{
			Type: MsgGetLine, Txn: uint64(i + 1), Requester: 0, Home: home,
		}}, 100)
	}
	if sys.BankQueueCycles == 0 {
		t.Error("10 same-cycle requests to one bank must queue")
	}
	// Service completes at 100 + 10*L2Latency.
	if got, want := sys.bankBusy[home], int64(100+10*sys.Prof.L2Latency); got != want {
		t.Errorf("bankBusy = %d, want %d", got, want)
	}
}

func TestMCContentionQueuesAccesses(t *testing.T) {
	prof := testProfile()
	net, sys := newSystem(t, config.NoPG, prof)
	mc := net.M.Corners()[0]
	for i := 0; i < 5; i++ {
		sys.deliver(&flit.Packet{Dst: mc, Payload: Msg{
			Type: MsgMemReq, Txn: uint64(i + 1), Requester: 1, Home: 2,
		}}, 50)
	}
	if sys.MCQueueCycles == 0 {
		t.Error("burst of DRAM accesses must queue at the controller")
	}
	if got, want := sys.mcBusy[mc], int64(50+5*sys.Prof.MemOccupancy); got != want {
		t.Errorf("mcBusy = %d, want %d", got, want)
	}
}
