// Package config holds every knob of the simulated system in one place,
// mirroring the paper's Table 2 plus the power-gating and Power Punch
// parameters of Sections 4-5. A zero Config is not usable; start from
// Default and override.
package config

import (
	"fmt"
	"strings"

	"powerpunch/internal/power"
	"powerpunch/internal/scheme"
	"powerpunch/internal/topo"
)

// Scheme selects the power-management policy under evaluation by its
// registered name (internal/scheme). The zero value (empty string) is
// the No-PG baseline; Validate rejects unregistered names with
// *UnknownSchemeError. Historically this was an int enum — the named
// constants below keep every existing call site compiling.
type Scheme string

// The built-in schemes: the paper's comparison set plus the ablation
// and rival schemes.
const (
	// NoPG: baseline, routers always on.
	NoPG Scheme = scheme.NoPG
	// ConvOptPG: conventional power-gating optimized with an idle timeout
	// and one-hop early wakeup (WU asserted when the output direction is
	// computed at the upstream router).
	ConvOptPG Scheme = scheme.ConvOptPG
	// PowerPunchSignal: multi-hop punch signals only; no use of NI slack.
	PowerPunchSignal Scheme = scheme.PowerPunchSignal
	// PowerPunchPG: the comprehensive scheme with multi-hop and NI
	// (injection-node) punch signals.
	PowerPunchPG Scheme = scheme.PowerPunchPG
	// PlainPG: conventional power-gating exactly as in the paper's
	// Section 2.2 — no idle-timeout filtering beyond the 2-cycle
	// minimum and no early wakeup (WU asserted only when the packet
	// reaches switch allocation). Not part of the paper's four-scheme
	// comparison; used by the ablation to quantify what ConvOpt's
	// optimizations buy.
	PlainPG Scheme = scheme.PlainPG
	// FlyOverPG: FlyOver-style bypass gating — straight-through flits
	// detour around gated routers on a 1-cycle latch path instead of
	// waking them; turning and ejecting traffic wakes routers like
	// ConvOpt. Requires LinkLatency == 1.
	FlyOverPG Scheme = scheme.FlyOverPG
)

// Schemes lists the paper's four evaluated schemes in presentation
// order (the golden suite, figures, and soaks iterate this). The full
// registered set — including Plain-PG and FlyOver-PG — is
// SchemeNames.
var Schemes = []Scheme{NoPG, ConvOptPG, PowerPunchSignal, PowerPunchPG}

// AllSchemes extends Schemes with the FlyOver-style bypass scheme —
// the set the engine soaks, allocation gates, and the full-system
// suite iterate (Plain-PG stays a diagnostics-only scheme).
var AllSchemes = []Scheme{NoPG, ConvOptPG, PowerPunchSignal, PowerPunchPG, FlyOverPG}

// SchemeNames returns every registered scheme name, sorted.
func SchemeNames() []string { return scheme.Names() }

// SchemeByName resolves a registered scheme name (the empty string is
// the No-PG baseline). Unknown names fail with *UnknownSchemeError.
func SchemeByName(name string) (Scheme, error) {
	p, err := scheme.Lookup(name)
	if err != nil {
		return "", err
	}
	return Scheme(p.Name()), nil
}

// String returns the scheme's registered (presentation) name.
func (s Scheme) String() string {
	if s == "" {
		return string(NoPG)
	}
	return string(s)
}

// Policy resolves s in the scheme registry. Unknown names fail with
// *UnknownSchemeError (the same error Validate reports).
func (s Scheme) Policy() (scheme.Policy, error) {
	return scheme.Lookup(string(s))
}

// policy resolves s, treating unknown names as the inert baseline so
// the deprecated predicates below stay total functions. Validate is
// the place unknown names are reported.
func (s Scheme) policy() scheme.Policy {
	p, err := scheme.Lookup(string(s))
	if err != nil {
		p, _ = scheme.Lookup(scheme.NoPG)
	}
	return p
}

// UsesEarlyWakeup reports whether WU levels fire at route-computation
// time (the ConvOpt optimization, also subsumed by the punch schemes);
// PlainPG asserts WU only when the packet requests the switch.
//
// Deprecated: resolve the policy once with Scheme.Policy and use
// Policy.EarlyWakeup. The predicates survive only for external
// callers; internal packages go through the policy (make apicheck
// grep-gates it).
func (s Scheme) UsesEarlyWakeup() bool { return s.policy().EarlyWakeup() }

// UsesIdleTimeoutFilter reports whether the long (BET-oriented) idle
// timeout applies; PlainPG uses only the 2-cycle in-flight minimum.
//
// Deprecated: use Policy.IdleFilter via Scheme.Policy.
func (s Scheme) UsesIdleTimeoutFilter() bool { return s.policy().IdleFilter() }

// UsesPowerGating reports whether routers may be gated off under s.
//
// Deprecated: use Policy.Gates via Scheme.Policy.
func (s Scheme) UsesPowerGating() bool { return s.policy().Gates() }

// UsesPunch reports whether multi-hop punch signals are active under s.
//
// Deprecated: use Policy.Punches via Scheme.Policy.
func (s Scheme) UsesPunch() bool { return s.policy().Punches() }

// UsesNISlack reports whether injection-node slack (paper Section 4.2) is
// exploited under s.
//
// Deprecated: use Policy.NISlack via Scheme.Policy.
func (s Scheme) UsesNISlack() bool { return s.policy().NISlack() }

// UnknownSchemeError reports a Scheme name that is not in the scheme
// registry (re-exported from internal/scheme so callers assert on it
// at the config surface, like UnknownPowerPresetError).
type UnknownSchemeError = scheme.UnknownSchemeError

// Config collects all simulation parameters. The defaults reproduce the
// paper's primary configuration (Table 2 and Section 5).
type Config struct {
	// Topology. Topology selects the fabric: "mesh" (default, also the
	// empty string), "torus" (both dimensions wrap; deadlock freedom via
	// a dateline VC class on wrap links, which needs DataVCs >= 2), or
	// "ring" (Width x 1 with a wrapped X dimension).
	Topology string
	Width    int // grid columns
	Height   int // grid rows (1 for a ring)

	// Router microarchitecture.
	RouterStages   int // 3 (speculative SA) or 4 (look-ahead routing only)
	LinkLatency    int // cycles per link traversal (Tlink)
	DataVCs        int // data VCs per virtual network
	CtrlVCs        int // control VCs per virtual network
	DataVCDepth    int // flits per data VC buffer
	CtrlVCDepth    int // flits per control VC buffer
	LinkBandwidth  int // bits per cycle (informational; 1 flit/cycle/link)
	DataPacketSize int // flits per data packet (cache line / link width)
	CtrlPacketSize int // flits per control packet

	// Power gating (Section 2.2, 5).
	Scheme        Scheme
	WakeupLatency int // Twakeup, cycles
	BreakEven     int // BET, cycles
	IdleTimeout   int // idle cycles before gating (min 2)
	// AdaptiveThrottle enables the churn back-off extension: a
	// controller that observes mostly sub-break-even gated periods
	// pauses gating for a window, avoiding the medium-load regime where
	// gating costs more energy than it saves (not in the paper).
	AdaptiveThrottle bool

	// PowerPreset selects the calibrated power-model constants by name
	// (power.Presets lists them). Empty selects power.DefaultPreset
	// (paper-hpca15, the calibration the paper's aggregate numbers and
	// the golden suite are locked against). Unknown names fail Validate
	// with *UnknownPowerPresetError.
	PowerPreset string

	// Power Punch (Section 4).
	PunchHops int // hop-count slack of punch signals (2, 3, or 4)
	// PunchIdleTimeout replaces IdleTimeout under punch schemes: punch
	// signals forewarn arrivals precisely, so only the 2-cycle in-flight
	// minimum remains (Section 4.3).
	PunchIdleTimeout int
	// PunchStrict limits each router to one newly-generated punch per
	// outgoing direction per cycle, matching the single-signal-per-
	// emitter hardware encoding of Table 1 exactly (ablation knob; the
	// default idealized merge is a negligible superset in practice).
	PunchStrict bool

	// Network interface (Section 4.2).
	NILatency int // cycles a packet spends in the NI pipeline
	// ResourceSlack is the paper's "slack 2": the number of cycles before
	// NI entry at which an L2/directory access already guarantees a
	// packet will be generated (L2 access latency, 6 in Table 2).
	ResourceSlack int
	// ResourceSlackValidFrac is the fraction of messages whose generating
	// resource access carries the slack-2 valid bit (L2/directory
	// accesses qualify; L1 accesses do not).
	ResourceSlackValidFrac float64

	// Simulation control.
	Seed          int64
	WarmupCycles  int64 // cycles before statistics collection starts
	MeasureCycles int64 // cycles of measured injection
	DrainCycles   int64 // max cycles to wait for in-flight packets

	// Workers selects the deterministic sharded parallel tick engine:
	// the node set is split into Workers contiguous shards and every
	// tick phase runs across the shards on a persistent worker pool,
	// with cross-shard effects committed through per-worker buffers
	// merged in fixed node order. Results are bit-identical to the
	// serial engine (the golden differential suite asserts it). 0 or 1
	// keeps today's single-threaded engine and its guarantees; values
	// above the node count are clamped. See DESIGN.md §11.
	Workers int

	// RecyclePackets returns ejected packets to a free list so
	// Network.NewPacket allocates nothing in steady state. Off by
	// default because it changes the packet-lifetime contract: a driver
	// that retains *flit.Packet pointers past ejection would observe a
	// later packet's fields once the object is reused (fields stay
	// intact until reuse — recycled packets are zeroed on reacquisition,
	// not on release). Benchmarks and the alloc-pinning tests enable it;
	// recycling changes no simulation state either way. Ignored (no
	// pool exists) when Checks is set, and ejected packets handed to an
	// NI Deliver hook are never recycled.
	RecyclePackets bool

	// FullTick disables the active-set tick scheduler and walks every
	// router, link, and NI each cycle — the seed behaviour. The two paths
	// are bit-identical (the golden-metrics tests assert it); FullTick
	// exists as the differential-testing reference and as a bisection aid
	// when a scheduler bug is suspected.
	FullTick bool

	// Correctness checking (internal/check).
	// Checks enables the per-cycle invariant engine: flit/credit
	// conservation, VC state legality, power-gating safety, the punch
	// non-blocking guarantee, and a deadlock watchdog. Off by default;
	// when disabled the tick loop pays no cost.
	Checks bool
	// CheckInterval is the stride, in cycles, of the expensive
	// whole-network sweeps (conservation and credit accounting). The
	// cheap safety invariants run every cycle regardless. 0 selects the
	// default of 8.
	CheckInterval int
	// CheckStallLimit is the deadlock-watchdog threshold: a routed head
	// flit stalled at the front of a VC for more than this many cycles
	// without a gated-downstream excuse is reported. 0 selects the
	// default of 4096.
	CheckStallLimit int
	// Faults injects deliberate defects for exercising the invariant
	// engine and the replay harness. All false in normal operation.
	Faults Faults
}

// Faults enumerates deliberate, switchable defects. Each one disables a
// safety mechanism the invariant engine is supposed to guard, so tests
// (and `noctrace replay-failure`) can confirm the matching invariant
// fires and that the captured artifact reproduces deterministically.
// The struct is part of Config so a failure artifact carries it and a
// replay re-applies the same defect.
type Faults struct {
	// IgnoreWakeups makes gated PG controllers ignore WU and punch-hold
	// inputs: a gated router never wakes. Caught by the pg-wake-handshake
	// invariant (and eventually the watchdog).
	IgnoreWakeups bool
	// DropPunchRelays suppresses multi-hop punch relaying in the fabric,
	// so punch signals reach only one hop. Caught by the punch-nonblocking
	// invariant: routers farther than one hop from the source are still
	// waking when the packet arrives.
	DropPunchRelays bool
	// DropRearms makes the active-set tick scheduler drop every re-arm
	// event (wakeup wants, punch holds, incoming-flit pushes) aimed at a
	// component it already parked; only local NI injections still
	// activate. A dropped re-arm leaves a gated router asleep forever or
	// a delivered flit forever unserved — caught by pg-wake-handshake
	// (power-gating schemes) or scheduler-liveness (No-PG). No-op under
	// FullTick.
	DropRearms bool
	// InvertDatelineClass makes VC allocation on wrapped fabrics (torus,
	// ring) assign every packet the opposite dateline VC class, breaking
	// the deadlock-freedom discipline. Caught by the dateline-legality
	// invariant on the first packet that departs along a wrapped
	// dimension. No-op on the mesh (one class).
	InvertDatelineClass bool
	// BypassIllegalTurn makes routers under a bypass scheme (FlyOver)
	// skip the straight-through routing check at bypass admission, so a
	// head that should turn or eject at the gated neighbor is flung over
	// it anyway. Caught by the bypass-legality invariant on the first
	// illegally tagged flit in flight. No-op for non-bypass schemes.
	BypassIllegalTurn bool
}

// Any reports whether any fault is enabled.
func (f Faults) Any() bool {
	return f.IgnoreWakeups || f.DropPunchRelays || f.DropRearms ||
		f.InvertDatelineClass || f.BypassIllegalTurn
}

// Default returns the paper's primary configuration: 8x8 mesh, XY routing,
// wormhole switching, 3 VNs with 2x3-flit data VCs and 1x1-flit control
// VC, 128-bit links, 3-stage speculative routers, Twakeup=8, BET=10,
// timeout=4, 3-hop punch, 3-cycle NI.
func Default() Config {
	return Config{
		Width:  8,
		Height: 8,

		RouterStages:   3,
		LinkLatency:    1,
		DataVCs:        2,
		CtrlVCs:        1,
		DataVCDepth:    3,
		CtrlVCDepth:    1,
		LinkBandwidth:  128,
		DataPacketSize: 5, // 64B cache line / 128-bit flits + head
		CtrlPacketSize: 1,

		Scheme:        PowerPunchPG,
		WakeupLatency: 8,
		BreakEven:     10,
		IdleTimeout:   4,

		PowerPreset: power.DefaultPreset,

		PunchHops:        3,
		PunchIdleTimeout: 2,
		PunchStrict:      false,

		NILatency:              3,
		ResourceSlack:          6,
		ResourceSlackValidFrac: 0.8,

		Seed:          1,
		WarmupCycles:  10_000,
		MeasureCycles: 50_000,
		DrainCycles:   30_000,
	}
}

// VCsPerVN returns the number of virtual channels per virtual network.
func (c *Config) VCsPerVN() int { return c.DataVCs + c.CtrlVCs }

// TopologyKind returns the parsed fabric kind; invalid names fall back
// to the mesh (Validate reports them as errors).
func (c *Config) TopologyKind() topo.Kind {
	k, _ := topo.ParseKind(c.Topology)
	return k
}

// BuildRouting constructs the configured topology and its canonical
// routing function.
func (c *Config) BuildRouting() (topo.RoutingFunction, error) {
	return topo.Build(c.Topology, c.Width, c.Height)
}

// DataVCClassRange returns the half-open subrange [lo, hi) of data VC
// indices (within a VN) that dateline class cls may allocate on fabrics
// with wrap links. Class 0 (pre-dateline) gets the lower half, class 1
// the rest; class 1 also carries all never-wrapping traffic, so it gets
// the larger share when DataVCs is odd. On the mesh (one class) the
// router never consults this.
func (c *Config) DataVCClassRange(cls int) (lo, hi int) {
	if cls == 0 {
		return 0, c.DataVCs / 2
	}
	return c.DataVCs / 2, c.DataVCs
}

// CtrlVCClassRange is DataVCClassRange for the control VCs (indices
// after the data VCs). With fewer than two control VCs, class 0's range
// is empty and control packets in class 0 fall back to the class-0 data
// VCs; the whole control range goes to class 1, which is safe because
// the class-1 channel subgraph is acyclic on its own.
func (c *Config) CtrlVCClassRange(cls int) (lo, hi int) {
	base := c.DataVCs
	if c.CtrlVCs >= 2 {
		if cls == 0 {
			return base, base + c.CtrlVCs/2
		}
		return base + c.CtrlVCs/2, base + c.CtrlVCs
	}
	if cls == 0 {
		return base, base
	}
	return base, base + c.CtrlVCs
}

// VCDepth returns the buffer depth of VC index v within a virtual
// network: data VCs come first, control VCs after.
func (c *Config) VCDepth(v int) int {
	if v < c.DataVCs {
		return c.DataVCDepth
	}
	return c.CtrlVCDepth
}

// IsDataVC reports whether VC index v (within a VN) is a data VC.
func (c *Config) IsDataVC(v int) bool { return v < c.DataVCs }

// RouterCycles returns Trouter: pipeline cycles per hop excluding the
// link (3 for the speculative design, 4 for plain look-ahead routing).
func (c *Config) RouterCycles() int { return c.RouterStages }

// PunchSlackCycles returns the wakeup latency a k-hop punch can hide:
// k * Trouter (paper Section 4.1: "hide Twakeup up to 9 cycles for
// 3-stage routers and up to 12 cycles for 4-stage routers").
func (c *Config) PunchSlackCycles() int { return c.PunchHops * c.RouterCycles() }

// UnknownPowerPresetError reports a PowerPreset name that is not in
// the power package's calibration registry. It is a typed error so the
// CLI and the campaign server can reject bad presets loudly and tests
// can assert on it with errors.As.
type UnknownPowerPresetError struct {
	Name  string
	Known []string // valid preset names, sorted
}

func (e *UnknownPowerPresetError) Error() string {
	return fmt.Sprintf("config: unknown power preset %q (known presets: %s)",
		e.Name, strings.Join(e.Known, ", "))
}

// ValidationErrors aggregates every scheme-scoped validation failure
// of one Validate call, so a caller fixing a config sees all of them
// at once instead of peeling one per run. It unwraps to its members,
// so errors.As still finds typed errors inside.
type ValidationErrors []error

func (e ValidationErrors) Error() string {
	msgs := make([]string, len(e))
	for i, err := range e {
		msgs[i] = err.Error()
	}
	return fmt.Sprintf("config: %d invalid parameters: %s", len(e), strings.Join(msgs, "; "))
}

// Unwrap supports errors.Is/As over the aggregated members.
func (e ValidationErrors) Unwrap() []error { return []error(e) }

// Validate reports invalid parameter combinations, or nil. Structural
// errors (topology shape, pipeline depths) report first-wins;
// scheme-scoped violations are aggregated, so a single call reports
// every gating/punch/NI parameter that is out of range for the
// selected scheme (one bare error, or a ValidationErrors when several
// fail together).
func (c *Config) Validate() error {
	kind, err := topo.ParseKind(c.Topology)
	if err != nil {
		return fmt.Errorf("config: %v", err)
	}
	if _, ok := power.PresetByName(c.PowerPreset); !ok {
		return &UnknownPowerPresetError{Name: c.PowerPreset, Known: power.Presets()}
	}
	pol, err := c.Scheme.Policy()
	if err != nil {
		return err
	}
	switch kind {
	case topo.KindRing:
		if c.Height != 1 {
			return fmt.Errorf("config: ring topology needs Height 1, got %dx%d", c.Width, c.Height)
		}
		if c.Width < 2 {
			return fmt.Errorf("config: ring needs at least 2 nodes, got %d", c.Width)
		}
	default:
		if c.Width < 2 || c.Height < 2 {
			return fmt.Errorf("config: %s must be at least 2x2, got %dx%d", kind, c.Width, c.Height)
		}
	}
	switch {
	case c.RouterStages != 3 && c.RouterStages != 4:
		return fmt.Errorf("config: RouterStages must be 3 or 4, got %d", c.RouterStages)
	case c.LinkLatency < 1:
		return fmt.Errorf("config: LinkLatency must be >= 1, got %d", c.LinkLatency)
	case c.DataVCs < 1:
		return fmt.Errorf("config: need at least one data VC per VN, got %d", c.DataVCs)
	case c.CtrlVCs < 0:
		return fmt.Errorf("config: CtrlVCs must be >= 0, got %d", c.CtrlVCs)
	case c.DataVCDepth < 1 || (c.CtrlVCs > 0 && c.CtrlVCDepth < 1):
		return fmt.Errorf("config: VC depths must be >= 1")
	case c.DataPacketSize < 1 || c.CtrlPacketSize < 1:
		return fmt.Errorf("config: packet sizes must be >= 1")
	case c.DataPacketSize > c.DataVCDepth*3+64:
		return nil // arbitrary large packets are fine with wormhole
	}
	var errs []error
	if pol.Gates() {
		if c.WakeupLatency < 1 {
			errs = append(errs, fmt.Errorf("config: WakeupLatency must be >= 1, got %d", c.WakeupLatency))
		}
		if c.IdleTimeout < 2 {
			errs = append(errs, fmt.Errorf("config: IdleTimeout must be >= 2 (in-flight flits must land), got %d", c.IdleTimeout))
		}
		if c.BreakEven < 0 {
			errs = append(errs, fmt.Errorf("config: BreakEven must be >= 0, got %d", c.BreakEven))
		}
	}
	if kind != topo.KindMesh && c.DataVCs < 2 {
		// Wrapped fabrics split the data VCs into two dateline classes;
		// each class needs at least one VC or packets on one side of the
		// dateline could never allocate a buffer.
		return fmt.Errorf("config: %s topology needs DataVCs >= 2 for the dateline VC classes, got %d",
			kind, c.DataVCs)
	}
	if pol.Punches() {
		if c.PunchHops < 1 || c.PunchHops > 4 {
			errs = append(errs, fmt.Errorf("config: PunchHops must be in [1,4], got %d", c.PunchHops))
		} else {
			t, err := topo.New(kind, c.Width, c.Height)
			if err != nil {
				return fmt.Errorf("config: %v", err)
			}
			if d := t.Diameter(); c.PunchHops > d {
				errs = append(errs, fmt.Errorf("config: PunchHops %d exceeds the %s diameter %d (no packet travels that far)",
					c.PunchHops, t, d))
			}
		}
		if c.PunchIdleTimeout < 2 {
			errs = append(errs, fmt.Errorf("config: PunchIdleTimeout must be >= 2, got %d", c.PunchIdleTimeout))
		}
	}
	if pol.NISlack() {
		if c.NILatency < 0 || c.ResourceSlack < 0 {
			errs = append(errs, fmt.Errorf("config: NI slack parameters must be >= 0"))
		}
		if c.ResourceSlackValidFrac < 0 || c.ResourceSlackValidFrac > 1 {
			errs = append(errs, fmt.Errorf("config: ResourceSlackValidFrac must be in [0,1], got %g", c.ResourceSlackValidFrac))
		}
	}
	if pol.Bypass() && c.LinkLatency != 1 {
		// The bypass admission check at the upstream router reads the
		// gated router's latch-path state one cycle before delivery;
		// longer links would let two senders over-commit the same latch.
		errs = append(errs, fmt.Errorf("config: bypass scheme %s requires LinkLatency == 1, got %d",
			c.Scheme, c.LinkLatency))
	}
	switch len(errs) {
	case 0:
	case 1:
		return errs[0]
	default:
		return ValidationErrors(errs)
	}
	if c.NILatency < 1 {
		return fmt.Errorf("config: NILatency must be >= 1, got %d", c.NILatency)
	}
	if c.CheckInterval < 0 {
		return fmt.Errorf("config: CheckInterval must be >= 0, got %d", c.CheckInterval)
	}
	if c.CheckStallLimit < 0 {
		return fmt.Errorf("config: CheckStallLimit must be >= 0, got %d", c.CheckStallLimit)
	}
	if c.Workers < 0 {
		return fmt.Errorf("config: Workers must be >= 0, got %d", c.Workers)
	}
	if c.Workers > 1 && c.Faults.DropRearms {
		// The parallel engine delivers flits by having the (always
		// re-armed) receiver pull them; with re-arms dropped the pull
		// never happens and the engine would diverge from the serial
		// fault behaviour instead of reproducing it.
		return fmt.Errorf("config: the DropRearms fault requires the serial engine (Workers <= 1)")
	}
	return nil
}

// WithScheme returns a copy of c with the scheme replaced. It is a
// convenience for sweeping the four schemes over one base configuration.
func (c Config) WithScheme(s Scheme) Config {
	c.Scheme = s
	return c
}
