package config

import (
	"errors"
	"strings"
	"testing"

	"powerpunch/internal/power"
)

func TestDefaultIsValid(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesPaperTable2(t *testing.T) {
	cfg := Default()
	if cfg.Width != 8 || cfg.Height != 8 {
		t.Error("default mesh must be 8x8")
	}
	if cfg.DataVCs != 2 || cfg.CtrlVCs != 1 || cfg.DataVCDepth != 3 || cfg.CtrlVCDepth != 1 {
		t.Error("VC configuration must match Table 2 (2x3-flit data + 1x1-flit control)")
	}
	if cfg.LinkBandwidth != 128 {
		t.Error("link bandwidth must be 128 bits/cycle")
	}
	if cfg.WakeupLatency != 8 || cfg.BreakEven != 10 || cfg.IdleTimeout != 4 {
		t.Error("power-gating parameters must match Section 5 (Twakeup=8, BET=10, timeout=4)")
	}
	if cfg.PunchHops != 3 || cfg.NILatency != 3 || cfg.ResourceSlack != 6 {
		t.Error("punch/NI parameters must match Sections 4-5")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.Width = 1 },
		func(c *Config) { c.RouterStages = 5 },
		func(c *Config) { c.LinkLatency = 0 },
		func(c *Config) { c.DataVCs = 0 },
		func(c *Config) { c.DataVCDepth = 0 },
		func(c *Config) { c.DataPacketSize = 0 },
		func(c *Config) { c.WakeupLatency = 0 },
		func(c *Config) { c.IdleTimeout = 1 },
		func(c *Config) { c.BreakEven = -1 },
		func(c *Config) { c.PunchHops = 0 },
		func(c *Config) { c.PunchHops = 5 },
		func(c *Config) { c.PunchIdleTimeout = 1 },
		func(c *Config) { c.NILatency = 0 },
		func(c *Config) { c.ResourceSlackValidFrac = 1.5 },
		func(c *Config) { c.Topology = "hypercube" },
		func(c *Config) { c.Topology = "ring" }, // ring needs Height == 1
		func(c *Config) { c.Topology = "ring"; c.Height = 1; c.Width = 1 },
		func(c *Config) { c.Topology = "torus"; c.DataVCs = 1 }, // dateline classes need 2
		func(c *Config) { c.Topology = "ring"; c.Height = 1; c.DataVCs = 1 },
		func(c *Config) { c.Width, c.Height = 2, 2 },                       // PunchHops 3 > mesh diameter 2
		func(c *Config) { c.Topology = "torus"; c.Width, c.Height = 2, 2 }, // PunchHops 3 > torus diameter 2
	}
	for i, m := range mut {
		cfg := Default()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

// TestValidateAcceptsTopologies pins the accepted fabric configurations
// and that diameter-aware punch bounds use the wrapped distance: a 4x4
// torus has diameter 4, so PunchHops 4 passes where the mutation table
// above shows PunchHops 4 failing only past the diameter.
func TestValidateAcceptsTopologies(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Topology = "" },     // default mesh
		func(c *Config) { c.Topology = "mesh" }, // explicit
		func(c *Config) { c.Topology = "torus"; c.Width, c.Height = 4, 4; c.PunchHops = 4 },
		func(c *Config) { c.Topology = "torus"; c.Width, c.Height = 8, 8 },
		func(c *Config) { c.Topology = "ring"; c.Width, c.Height = 8, 1; c.PunchHops = 4 },
		func(c *Config) { c.Topology = "ring"; c.Width, c.Height = 2, 1; c.PunchHops = 1 },
	}
	for i, m := range cases {
		cfg := Default()
		m(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Errorf("case %d: unexpected validation error: %v", i, err)
		}
	}
}

// TestValidateAcceptsLargeFabrics locks 32x32 and 64x64 meshes and
// tori in as first-class configurations: they must validate under
// every scheme (the punch diameter check, dateline VC split, and
// bypass link gate all have to hold at scale) and their routing
// fabrics must build with the expected node count and diameter.
func TestValidateAcceptsLargeFabrics(t *testing.T) {
	fabrics := []struct {
		topology      string
		width, height int
		diameter      int
	}{
		{"mesh", 32, 32, 62},
		{"mesh", 64, 64, 126},
		{"torus", 32, 32, 32},
		{"torus", 64, 64, 64},
	}
	for _, fab := range fabrics {
		for _, s := range AllSchemes {
			cfg := Default()
			cfg.Scheme = s
			cfg.Topology = fab.topology
			cfg.Width, cfg.Height = fab.width, fab.height
			if err := cfg.Validate(); err != nil {
				t.Errorf("%s %dx%d under %s: unexpected validation error: %v",
					fab.topology, fab.width, fab.height, s, err)
			}
		}
		cfg := Default()
		cfg.Topology = fab.topology
		cfg.Width, cfg.Height = fab.width, fab.height
		rf, err := cfg.BuildRouting()
		if err != nil {
			t.Fatalf("%s %dx%d: BuildRouting: %v", fab.topology, fab.width, fab.height, err)
		}
		top := rf.Topology()
		if got := top.NumNodes(); got != fab.width*fab.height {
			t.Errorf("%s %dx%d: %d nodes, want %d", fab.topology, fab.width, fab.height, got, fab.width*fab.height)
		}
		if got := top.Diameter(); got != fab.diameter {
			t.Errorf("%s %dx%d: diameter %d, want %d", fab.topology, fab.width, fab.height, got, fab.diameter)
		}
	}
}

func TestValidateSchemeScoping(t *testing.T) {
	// Power-gating parameters are not validated under No-PG.
	cfg := Default()
	cfg.Scheme = NoPG
	cfg.WakeupLatency = 0
	cfg.IdleTimeout = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("No-PG must not validate PG params: %v", err)
	}
	// Punch parameters are not validated under ConvOpt.
	cfg = Default()
	cfg.Scheme = ConvOptPG
	cfg.PunchHops = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("ConvOpt must not validate punch params: %v", err)
	}
}

func TestSchemePredicates(t *testing.T) {
	cases := []struct {
		s                Scheme
		pg, punch, slack bool
	}{
		{NoPG, false, false, false},
		{ConvOptPG, true, false, false},
		{PowerPunchSignal, true, true, false},
		{PowerPunchPG, true, true, true},
	}
	for _, c := range cases {
		if c.s.UsesPowerGating() != c.pg || c.s.UsesPunch() != c.punch || c.s.UsesNISlack() != c.slack {
			t.Errorf("%v predicates wrong", c.s)
		}
	}
}

func TestVCDepthMapping(t *testing.T) {
	cfg := Default()
	if cfg.VCsPerVN() != 3 {
		t.Fatalf("VCsPerVN = %d", cfg.VCsPerVN())
	}
	if cfg.VCDepth(0) != 3 || cfg.VCDepth(1) != 3 || cfg.VCDepth(2) != 1 {
		t.Error("VC depth mapping: data VCs first (3-flit), control VC last (1-flit)")
	}
	if !cfg.IsDataVC(0) || !cfg.IsDataVC(1) || cfg.IsDataVC(2) {
		t.Error("IsDataVC mapping")
	}
}

func TestPunchSlackCycles(t *testing.T) {
	// Section 4.1: a 3-hop punch hides up to 9 cycles on a 3-stage
	// router and up to 12 on a 4-stage router.
	cfg := Default()
	cfg.RouterStages = 3
	if cfg.PunchSlackCycles() != 9 {
		t.Errorf("3-stage: %d, want 9", cfg.PunchSlackCycles())
	}
	cfg.RouterStages = 4
	if cfg.PunchSlackCycles() != 12 {
		t.Errorf("4-stage: %d, want 12", cfg.PunchSlackCycles())
	}
}

func TestWithScheme(t *testing.T) {
	cfg := Default()
	got := cfg.WithScheme(ConvOptPG)
	if got.Scheme != ConvOptPG || cfg.Scheme != PowerPunchPG {
		t.Error("WithScheme must copy, not mutate")
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		NoPG: "No-PG", ConvOptPG: "ConvOpt-PG",
		PowerPunchSignal: "PowerPunch-Signal", PowerPunchPG: "PowerPunch-PG",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%v.String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestEarlyWakeupAndTimeoutPredicates(t *testing.T) {
	cases := []struct {
		s       Scheme
		early   bool
		timeout bool
	}{
		{NoPG, false, false},
		{PlainPG, false, false},
		{ConvOptPG, true, true},
		{PowerPunchSignal, true, false},
		{PowerPunchPG, true, false},
	}
	for _, c := range cases {
		if c.s.UsesEarlyWakeup() != c.early {
			t.Errorf("%v.UsesEarlyWakeup() = %v", c.s, !c.early)
		}
		if c.s.UsesIdleTimeoutFilter() != c.timeout {
			t.Errorf("%v.UsesIdleTimeoutFilter() = %v", c.s, !c.timeout)
		}
	}
	if PlainPG.String() != "Plain-PG" || !PlainPG.UsesPowerGating() {
		t.Error("PlainPG identity")
	}
}

// TestPowerPresetValidation pins the typed-error contract: every
// registered preset (and the empty default) validates, anything else
// fails with *UnknownPowerPresetError carrying the known names.
func TestPowerPresetValidation(t *testing.T) {
	for _, name := range append([]string{""}, power.Presets()...) {
		cfg := Default()
		cfg.PowerPreset = name
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q rejected: %v", name, err)
		}
	}

	cfg := Default()
	cfg.PowerPreset = "dsent-9000nm"
	err := cfg.Validate()
	if err == nil {
		t.Fatal("unknown power preset accepted")
	}
	var uerr *UnknownPowerPresetError
	if !errors.As(err, &uerr) {
		t.Fatalf("error is %T, want *UnknownPowerPresetError", err)
	}
	if uerr.Name != "dsent-9000nm" || len(uerr.Known) == 0 {
		t.Errorf("typed error incomplete: %+v", uerr)
	}
	for _, k := range uerr.Known {
		if _, ok := power.PresetByName(k); !ok {
			t.Errorf("Known lists %q, which the registry rejects", k)
		}
	}
}

// TestValidationErrorsAggregate pins the multi-error contract: when
// several scheme-scoped parameters are invalid at once, Validate
// returns one ValidationErrors whose message enumerates every failure
// (count-prefixed, semicolon-joined) and which unwraps to its members
// so callers can still errors.As for typed errors inside.
func TestValidationErrorsAggregate(t *testing.T) {
	cfg := Default()
	cfg.Scheme = ConvOptPG
	cfg.WakeupLatency = 0
	cfg.IdleTimeout = 1
	err := cfg.Validate()
	if err == nil {
		t.Fatal("two invalid PG params validated")
	}
	var verrs ValidationErrors
	if !errors.As(err, &verrs) {
		t.Fatalf("error is %T, want ValidationErrors: %v", err, err)
	}
	if len(verrs) != 2 {
		t.Fatalf("aggregated %d errors, want 2: %v", len(verrs), err)
	}
	msg := err.Error()
	for _, want := range []string{
		"config: 2 invalid parameters",
		"WakeupLatency must be >= 1",
		"IdleTimeout must be >= 2",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated message %q missing %q", msg, want)
		}
	}

	// A single failure stays a bare error — no aggregation wrapper.
	cfg = Default()
	cfg.Scheme = ConvOptPG
	cfg.WakeupLatency = 0
	err = cfg.Validate()
	if err == nil {
		t.Fatal("invalid WakeupLatency validated")
	}
	if errors.As(err, &verrs) {
		t.Errorf("single failure wrapped in ValidationErrors: %v", err)
	}
}
