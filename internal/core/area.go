package core

import (
	"fmt"
	"strings"

	"powerpunch/internal/config"
	"powerpunch/internal/mesh"
)

// AreaModel is the analytical overhead estimate behind the paper's
// Section 6.6(1): the punch channels and their relay logic cost ~2.4% of
// NoC area on top of conventional power-gating. Areas are expressed in
// normalized "bit-equivalent" units; the constants are calibrated to the
// paper's synthesis result and documented here so the calibration is
// auditable rather than hidden.
type AreaModel struct {
	// Per-unit areas (arbitrary units; only ratios matter).
	BufferBitArea float64 // one flip-flop/SRAM bit of input buffer
	WireBitArea   float64 // one inter-router wire with repeaters
	GateArea      float64 // one combinational gate-equivalent
	XbarBitArea   float64 // one crossbar crosspoint bit
	// GatesPerCode approximates the relay/decode logic per code-book
	// entry of a punch channel.
	GatesPerCode float64
}

// DefaultAreaModel returns the calibrated constants.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		BufferBitArea: 1.0,
		WireBitArea:   0.30,
		GateArea:      0.50,
		XbarBitArea:   0.15,
		GatesPerCode:  14.0,
	}
}

// AreaReport decomposes the per-tile NoC area and the Power Punch
// overhead.
type AreaReport struct {
	RouterArea   float64 // buffers + crossbar + allocators per tile
	LinkArea     float64 // data + flow-control wiring per tile
	PunchWires   float64 // punch channel wiring per tile
	PunchLogic   float64 // relay/merge logic per tile
	OverheadFrac float64 // (wires+logic) / (router+link)
	XBits        int     // punch channel width, X directions
	YBits        int     // punch channel width, Y directions
}

// EstimateArea computes the Power Punch area overhead for the given
// configuration on its mesh, mirroring the paper's "2.4% of additional
// NoC area as compared to conventional power-gating".
func EstimateArea(cfg config.Config, am AreaModel) AreaReport {
	m := mesh.New(cfg.Width, cfg.Height)
	xBits, yBits := MaxChannelWidths(m, cfg.PunchHops)

	flitBits := cfg.LinkBandwidth
	vcsPerVN := cfg.VCsPerVN()
	bufferFlits := 0
	for v := 0; v < vcsPerVN; v++ {
		bufferFlits += cfg.VCDepth(v)
	}
	bufferFlits *= 3 // virtual networks
	// Buffers on all 5 input ports.
	bufferBits := float64(bufferFlits*flitBits) * float64(mesh.NumPorts)

	router := bufferBits*am.BufferBitArea +
		float64(mesh.NumPorts*mesh.NumPorts*flitBits)*am.XbarBitArea +
		800*am.GateArea // VC + switch allocators, PG controller

	link := float64(mesh.NumLinkDirs*(flitBits+8)) * am.WireBitArea // data + credits/handshake

	punchWires := float64(2*xBits+2*yBits) * am.WireBitArea

	// Relay logic: one decoder/merger per incoming direction, sized by
	// the code-book of the outgoing channel it feeds.
	codes := 0
	for _, d := range mesh.LinkDirections {
		// Use a central router's channel as the representative worst case.
		r := m.NodeAt(mesh.Coord{X: cfg.Width / 2, Y: cfg.Height / 2})
		if enc := EncodeChannel(m, r, d, cfg.PunchHops); enc != nil {
			codes += len(enc.Codes)
		}
	}
	punchLogic := float64(codes) * am.GatesPerCode * am.GateArea

	total := router + link
	return AreaReport{
		RouterArea:   router,
		LinkArea:     link,
		PunchWires:   punchWires,
		PunchLogic:   punchLogic,
		OverheadFrac: (punchWires + punchLogic) / total,
		XBits:        xBits,
		YBits:        yBits,
	}
}

// String renders the report.
func (r AreaReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "punch channel widths: X=%d bits, Y=%d bits\n", r.XBits, r.YBits)
	fmt.Fprintf(&b, "per-tile area (normalized units):\n")
	fmt.Fprintf(&b, "  router (buffers/xbar/alloc): %8.1f\n", r.RouterArea)
	fmt.Fprintf(&b, "  link wiring:                 %8.1f\n", r.LinkArea)
	fmt.Fprintf(&b, "  punch wiring:                %8.1f\n", r.PunchWires)
	fmt.Fprintf(&b, "  punch relay logic:           %8.1f\n", r.PunchLogic)
	fmt.Fprintf(&b, "Power Punch area overhead: %.2f%% of NoC area (paper: 2.4%%)\n", r.OverheadFrac*100)
	return b.String()
}
