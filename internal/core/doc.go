// Package core implements the paper's primary contribution: the Power
// Punch mechanisms for non-blocking power-gating of NoC routers.
//
// It contains three pieces:
//
//   - Fabric: the behavioural punch-signal network. Every cycle, routers
//     holding packets (and, under PowerPunch-PG, network interfaces with
//     pending messages) assert punch signals addressed to the "targeted
//     router" a fixed number of hops ahead on the packet's XY path. The
//     fabric merges all signals arriving at a router in the same cycle
//     (set union — lossless, hence contention-free), holds every router a
//     punch names or transits awake, and relays signals one link per
//     cycle toward their targets (Section 4.1).
//
//   - Encoder: the hardware-cost argument. For any router, direction, and
//     punch hop count it enumerates every distinct merged target set that
//     can legally appear on that punch channel under XY-routing turn
//     restrictions, reproducing Table 1 (22 sets on an interior X+
//     channel, hence 5-bit X channels and 2-bit Y channels for 3-hop
//     punch) and the 8-bit X width quoted for 4-hop punch.
//
//   - Area: the analytical wiring/logic overhead model behind the paper's
//     "2.4% of NoC area" figure (Section 6.6).
package core
