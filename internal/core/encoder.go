package core

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"powerpunch/internal/mesh"
	"powerpunch/internal/topo"
)

// A TargetSet is a reduced, canonical (sorted) set of targeted routers as
// carried by one punch channel in one cycle.
type TargetSet []mesh.NodeID

// Key returns a canonical string key for map lookups.
func (s TargetSet) Key() string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = fmt.Sprintf("%d", t)
	}
	return strings.Join(parts, ",")
}

// String renders the set in the paper's notation, e.g. "{ 21, 36 }".
func (s TargetSet) String() string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = fmt.Sprintf("%d", t)
	}
	return "{ " + strings.Join(parts, ", ") + " }"
}

// Emitter describes one router that can place a wakeup signal on a given
// punch channel, together with the targets it can name (paper Section
// 4.1, step 3).
type Emitter struct {
	Router  mesh.NodeID
	Targets []mesh.NodeID
}

// ChannelCode is one entry of the channel's code book: a distinct reduced
// target set and its binary encoding.
type ChannelCode struct {
	Set  TargetSet
	Code int
}

// ChannelEncoding is the complete code book for one punch channel,
// reproducing the paper's Table 1 for the X+ channel of router 27.
type ChannelEncoding struct {
	Router    mesh.NodeID
	Direction mesh.Direction
	Hops      int
	Emitters  []Emitter
	Codes     []ChannelCode
	// WidthBits is the channel width needed to distinguish every code
	// plus the idle (no punch) state.
	WidthBits int

	rf topo.RoutingFunction // the routing function the book was derived under
}

// xyOn returns the XY routing function over m. The mesh-typed entry
// points below are the paper's special case of the generic enumerator.
func xyOn(m *mesh.Mesh) topo.RoutingFunction {
	return topo.Routing(topo.FromMesh(m))
}

// EncodeChannel is EncodeChannelOn specialized to a 2D mesh under XY
// routing — the configuration the paper derives Table 1 for.
func EncodeChannel(m *mesh.Mesh, r mesh.NodeID, d mesh.Direction, hops int) *ChannelEncoding {
	return EncodeChannelOn(xyOn(m), r, d, hops)
}

// EncodeChannelOn enumerates every distinct reduced target set that can
// appear on the punch channel leaving router r in direction d, for
// punch hop-count `hops`, under the given routing function's legality.
// It applies the paper's five-step reduction (Section 4.1), with the
// routing function supplying the path and legality structure XY used to:
//
//  1. targets are determined by the (deterministic, minimal) routing
//     function,
//  2. intermediate routers need no explicit information,
//  3. only emitters whose routed path crosses the channel can use it,
//  4. a target on the routed path to another target is implicit and
//     removed,
//  5. the remaining distinct sets are numbered; the channel width is
//     ceil(log2(#sets + 1)) to include the idle state.
//
// It returns nil when the channel does not exist (edge of a mesh, Y
// direction of a ring).
func EncodeChannelOn(rf topo.RoutingFunction, r mesh.NodeID, d mesh.Direction, hops int) *ChannelEncoding {
	t := rf.Topology()
	next := t.Neighbor(r, d)
	if next == mesh.Invalid || d == mesh.Local {
		return nil
	}

	emitters := channelEmitters(rf, r, d, hops)

	// Enumerate the distinct reduced sets reachable by choosing at most
	// one target per emitter. Processing emitters one at a time and
	// keeping only distinct reduced sets is sound because reduction keeps
	// the maximal elements of the "lies on the routed path to" partial
	// order, and maximal(maximal(A) ∪ B) == maximal(A ∪ B); it also keeps
	// the enumeration polynomial in the (small) number of distinct codes.
	seen := map[string]TargetSet{"": {}}
	for _, em := range emitters {
		next := make(map[string]TargetSet, len(seen)*2)
		for k, s := range seen {
			next[k] = s // emitter silent
			for _, tg := range em.Targets {
				comb := make([]mesh.NodeID, 0, len(s)+1)
				comb = append(comb, s...)
				comb = append(comb, tg)
				red := reduceTargetsOn(rf, r, comb)
				next[red.Key()] = red
			}
		}
		seen = next
	}
	delete(seen, "") // the idle state is encoded separately

	codes := make([]ChannelCode, 0, len(seen))
	for _, set := range seen {
		codes = append(codes, ChannelCode{Set: set})
	}
	// Deterministic order: smaller sets first, then lexicographic,
	// mirroring Table 1's singles-then-pairs layout.
	sort.Slice(codes, func(i, j int) bool {
		a, b := codes[i].Set, codes[j].Set
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for i := range codes {
		codes[i].Code = i
	}

	return &ChannelEncoding{
		Router:    r,
		Direction: d,
		Hops:      hops,
		Emitters:  emitters,
		Codes:     codes,
		WidthBits: widthBits(len(codes)),
		rf:        rf,
	}
}

// widthBits returns the bits needed for n codes plus one idle state.
func widthBits(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n)) // codes 1..n, 0 = idle
}

// channelEmitters returns, in upstream-to-downstream order ending at r,
// the routers whose wakeup signals can traverse the channel r->d and the
// targets each can name. An emitter E holding a packet names target
// T = Ahead(E, dst, hops); the signal uses this channel iff the routed
// path E->T includes the link r->next. Since dist(E,T) <= hops and T
// lies strictly beyond r, emitters satisfy dist(E,r) < hops.
func channelEmitters(rf topo.RoutingFunction, r mesh.NodeID, d mesh.Direction, hops int) []Emitter {
	t := rf.Topology()
	next := t.Neighbor(r, d)
	var emitters []Emitter
	for n := mesh.NodeID(0); t.Contains(n); n++ {
		if t.HopDistance(n, r) >= hops {
			continue
		}
		var targets []mesh.NodeID
		for tg := mesh.NodeID(0); t.Contains(tg); tg++ {
			if tg == n || t.HopDistance(n, tg) > hops {
				continue
			}
			if topo.PathUsesLink(rf, n, tg, r, next) {
				targets = append(targets, tg)
			}
		}
		if len(targets) > 0 {
			emitters = append(emitters, Emitter{Router: n, Targets: targets})
		}
	}
	// Emitters sorted by distance from r descending (farthest upstream
	// first), matching the paper's presentation (R25, R26, R27).
	sort.Slice(emitters, func(i, j int) bool {
		di, dj := t.HopDistance(emitters[i].Router, r), t.HopDistance(emitters[j].Router, r)
		if di != dj {
			return di > dj
		}
		return emitters[i].Router < emitters[j].Router
	})
	return emitters
}

// reduceTargets is reduceTargetsOn specialized to XY on a mesh.
func reduceTargets(m *mesh.Mesh, r mesh.NodeID, targets []mesh.NodeID) TargetSet {
	return reduceTargetsOn(xyOn(m), r, targets)
}

// reduceTargetsOn removes targets implicitly contained in others: T1 is
// implicit if it lies on the routed path from r to some other target T2
// (paper step 4). The result is canonical (sorted, unique).
func reduceTargetsOn(rf topo.RoutingFunction, r mesh.NodeID, targets []mesh.NodeID) TargetSet {
	uniq := make([]mesh.NodeID, 0, len(targets))
	for _, t := range targets {
		dup := false
		for _, u := range uniq {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, t)
		}
	}
	var out TargetSet
	for _, t := range uniq {
		implicit := false
		for _, u := range uniq {
			if u == t {
				continue
			}
			// t is implicit if it lies on the path r->u (strictly before u).
			if topo.OnPath(rf, r, u, t) {
				implicit = true
				break
			}
		}
		if !implicit {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxChannelWidths is MaxChannelWidthsOn specialized to XY on a mesh.
// The paper reports 5-bit X / 2-bit Y for 3-hop punch and 8-bit X /
// 2-bit Y for 4-hop punch on the 8x8 mesh.
func MaxChannelWidths(m *mesh.Mesh, hops int) (xBits, yBits int) {
	return MaxChannelWidthsOn(xyOn(m), hops)
}

// MaxChannelWidthsOn computes, over every router of the fabric, the
// maximum punch-channel width in each dimension for the given hop count.
func MaxChannelWidthsOn(rf topo.RoutingFunction, hops int) (xBits, yBits int) {
	t := rf.Topology()
	for r := mesh.NodeID(0); t.Contains(r); r++ {
		for _, d := range mesh.LinkDirections {
			enc := EncodeChannelOn(rf, r, d, hops)
			if enc == nil {
				continue
			}
			if d.IsX() && enc.WidthBits > xBits {
				xBits = enc.WidthBits
			}
			if d.IsY() && enc.WidthBits > yBits {
				yBits = enc.WidthBits
			}
		}
	}
	return xBits, yBits
}

// CodeFor returns the channel code for a set of raw (unreduced) targets,
// or -1 if the merged set is not encodable on this channel. Code 0 is
// reserved for the idle state; valid punch codes start at 1. The mesh
// argument is retained for call-site compatibility; reduction uses the
// routing function the encoding was derived under.
func (e *ChannelEncoding) CodeFor(m *mesh.Mesh, targets []mesh.NodeID) int {
	return e.CodeForSet(targets)
}

// CodeForSet returns the channel code for a set of raw (unreduced)
// targets under the encoding's own routing function, or -1 if the
// merged set is not encodable on this channel.
func (e *ChannelEncoding) CodeForSet(targets []mesh.NodeID) int {
	red := reduceTargetsOn(e.rf, e.Router, targets)
	key := red.Key()
	for _, c := range e.Codes {
		if c.Set.Key() == key {
			return c.Code + 1
		}
	}
	return -1
}

// SetFor returns the reduced target set for a wire code (1-based; 0 is
// idle), or nil if the code is out of range.
func (e *ChannelEncoding) SetFor(code int) TargetSet {
	if code < 1 || code > len(e.Codes) {
		return nil
	}
	return e.Codes[code-1].Set
}

// FormatTable renders the encoding as a text table in the style of the
// paper's Table 1.
func (e *ChannelEncoding) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Punch channel: router %d, direction %s, %d-hop (width %d bits)\n",
		e.Router, e.Direction, e.Hops, e.WidthBits)
	fmt.Fprintf(&b, "Emitters:")
	for _, em := range e.Emitters {
		fmt.Fprintf(&b, " R%d(%d targets)", em.Router, len(em.Targets))
	}
	fmt.Fprintf(&b, "\n%-4s %-24s %s\n", "#", "Set of Targeted Routers", "Punch Signal")
	for i, c := range e.Codes {
		fmt.Fprintf(&b, "%-4d %-24s %0*b\n", i+1, c.Set.String(), e.WidthBits, c.Code+1)
	}
	return b.String()
}
