package core

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"powerpunch/internal/mesh"
	"powerpunch/internal/routing"
)

// A TargetSet is a reduced, canonical (sorted) set of targeted routers as
// carried by one punch channel in one cycle.
type TargetSet []mesh.NodeID

// Key returns a canonical string key for map lookups.
func (s TargetSet) Key() string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = fmt.Sprintf("%d", t)
	}
	return strings.Join(parts, ",")
}

// String renders the set in the paper's notation, e.g. "{ 21, 36 }".
func (s TargetSet) String() string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = fmt.Sprintf("%d", t)
	}
	return "{ " + strings.Join(parts, ", ") + " }"
}

// Emitter describes one router that can place a wakeup signal on a given
// punch channel, together with the targets it can name (paper Section
// 4.1, step 3).
type Emitter struct {
	Router  mesh.NodeID
	Targets []mesh.NodeID
}

// ChannelCode is one entry of the channel's code book: a distinct reduced
// target set and its binary encoding.
type ChannelCode struct {
	Set  TargetSet
	Code int
}

// ChannelEncoding is the complete code book for one punch channel,
// reproducing the paper's Table 1 for the X+ channel of router 27.
type ChannelEncoding struct {
	Router    mesh.NodeID
	Direction mesh.Direction
	Hops      int
	Emitters  []Emitter
	Codes     []ChannelCode
	// WidthBits is the channel width needed to distinguish every code
	// plus the idle (no punch) state.
	WidthBits int
}

// EncodeChannel enumerates every distinct reduced target set that can
// appear on the punch channel leaving router r in direction d, for
// punch hop-count `hops`, under XY-routing legality. It applies the
// paper's five-step reduction:
//
//  1. targets are determined by XY routing,
//  2. intermediate routers need no explicit information,
//  3. only emitters whose XY path crosses the channel can use it,
//  4. a target on the XY path to another target is implicit and removed,
//  5. the remaining distinct sets are numbered; the channel width is
//     ceil(log2(#sets + 1)) to include the idle state.
//
// It returns nil when the channel does not exist (edge of the mesh).
func EncodeChannel(m *mesh.Mesh, r mesh.NodeID, d mesh.Direction, hops int) *ChannelEncoding {
	next := m.Neighbor(r, d)
	if next == mesh.Invalid || d == mesh.Local {
		return nil
	}

	emitters := channelEmitters(m, r, d, hops)

	// Enumerate the distinct reduced sets reachable by choosing at most
	// one target per emitter. Processing emitters one at a time and
	// keeping only distinct reduced sets is sound because reduction keeps
	// the maximal elements of the "lies on the XY path to" partial order,
	// and maximal(maximal(A) ∪ B) == maximal(A ∪ B); it also keeps the
	// enumeration polynomial in the (small) number of distinct codes.
	seen := map[string]TargetSet{"": {}}
	for _, em := range emitters {
		next := make(map[string]TargetSet, len(seen)*2)
		for k, s := range seen {
			next[k] = s // emitter silent
			for _, t := range em.Targets {
				comb := make([]mesh.NodeID, 0, len(s)+1)
				comb = append(comb, s...)
				comb = append(comb, t)
				red := reduceTargets(m, r, comb)
				next[red.Key()] = red
			}
		}
		seen = next
	}
	delete(seen, "") // the idle state is encoded separately

	codes := make([]ChannelCode, 0, len(seen))
	for _, set := range seen {
		codes = append(codes, ChannelCode{Set: set})
	}
	// Deterministic order: smaller sets first, then lexicographic,
	// mirroring Table 1's singles-then-pairs layout.
	sort.Slice(codes, func(i, j int) bool {
		a, b := codes[i].Set, codes[j].Set
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for i := range codes {
		codes[i].Code = i
	}

	return &ChannelEncoding{
		Router:    r,
		Direction: d,
		Hops:      hops,
		Emitters:  emitters,
		Codes:     codes,
		WidthBits: widthBits(len(codes)),
	}
}

// widthBits returns the bits needed for n codes plus one idle state.
func widthBits(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n)) // codes 1..n, 0 = idle
}

// channelEmitters returns, in upstream-to-downstream order ending at r,
// the routers whose wakeup signals can traverse the channel r->d and the
// targets each can name. An emitter E holding a packet names target
// T = Ahead(E, dst, hops); the signal uses this channel iff the XY path
// E->T includes the link r->next. Since dist(E,T) <= hops and T lies
// strictly beyond r, emitters satisfy dist(E,r) < hops.
func channelEmitters(m *mesh.Mesh, r mesh.NodeID, d mesh.Direction, hops int) []Emitter {
	next := m.Neighbor(r, d)
	var emitters []Emitter
	for n := mesh.NodeID(0); m.Contains(n); n++ {
		if m.HopDistance(n, r) >= hops {
			continue
		}
		var targets []mesh.NodeID
		for t := mesh.NodeID(0); m.Contains(t); t++ {
			if t == n || m.HopDistance(n, t) > hops {
				continue
			}
			if pathUsesLink(m, n, t, r, next) {
				targets = append(targets, t)
			}
		}
		if len(targets) > 0 {
			emitters = append(emitters, Emitter{Router: n, Targets: targets})
		}
	}
	// Emitters sorted by distance from r descending (farthest upstream
	// first), matching the paper's presentation (R25, R26, R27).
	sort.Slice(emitters, func(i, j int) bool {
		di, dj := m.HopDistance(emitters[i].Router, r), m.HopDistance(emitters[j].Router, r)
		if di != dj {
			return di > dj
		}
		return emitters[i].Router < emitters[j].Router
	})
	return emitters
}

// pathUsesLink reports whether the XY path from src to dst traverses the
// directed link a->b.
func pathUsesLink(m *mesh.Mesh, src, dst, a, b mesh.NodeID) bool {
	cur := src
	for cur != dst {
		nh := routing.NextHop(m, cur, dst)
		if cur == a && nh == b {
			return true
		}
		cur = nh
	}
	return false
}

// reduceTargets removes targets implicitly contained in others: T1 is
// implicit if it lies on the XY path from r to some other target T2
// (paper step 4). The result is canonical (sorted, unique).
func reduceTargets(m *mesh.Mesh, r mesh.NodeID, targets []mesh.NodeID) TargetSet {
	uniq := make([]mesh.NodeID, 0, len(targets))
	for _, t := range targets {
		dup := false
		for _, u := range uniq {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, t)
		}
	}
	var out TargetSet
	for _, t := range uniq {
		implicit := false
		for _, u := range uniq {
			if u == t {
				continue
			}
			// t is implicit if it lies on the path r->u (strictly before u).
			if routing.OnPath(m, r, u, t) {
				implicit = true
				break
			}
		}
		if !implicit {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxChannelWidths computes, over every router of the mesh, the maximum
// punch-channel width in each dimension for the given hop count. The
// paper reports 5-bit X / 2-bit Y for 3-hop punch and 8-bit X / 2-bit Y
// for 4-hop punch.
func MaxChannelWidths(m *mesh.Mesh, hops int) (xBits, yBits int) {
	for r := mesh.NodeID(0); m.Contains(r); r++ {
		for _, d := range mesh.LinkDirections {
			enc := EncodeChannel(m, r, d, hops)
			if enc == nil {
				continue
			}
			if d.IsX() && enc.WidthBits > xBits {
				xBits = enc.WidthBits
			}
			if d.IsY() && enc.WidthBits > yBits {
				yBits = enc.WidthBits
			}
		}
	}
	return xBits, yBits
}

// CodeFor returns the channel code for a set of raw (unreduced) targets,
// or -1 if the merged set is not encodable on this channel. Code 0 is
// reserved for the idle state; valid punch codes start at 1.
func (e *ChannelEncoding) CodeFor(m *mesh.Mesh, targets []mesh.NodeID) int {
	red := reduceTargets(m, e.Router, targets)
	key := red.Key()
	for _, c := range e.Codes {
		if c.Set.Key() == key {
			return c.Code + 1
		}
	}
	return -1
}

// SetFor returns the reduced target set for a wire code (1-based; 0 is
// idle), or nil if the code is out of range.
func (e *ChannelEncoding) SetFor(code int) TargetSet {
	if code < 1 || code > len(e.Codes) {
		return nil
	}
	return e.Codes[code-1].Set
}

// FormatTable renders the encoding as a text table in the style of the
// paper's Table 1.
func (e *ChannelEncoding) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Punch channel: router %d, direction %s, %d-hop (width %d bits)\n",
		e.Router, e.Direction, e.Hops, e.WidthBits)
	fmt.Fprintf(&b, "Emitters:")
	for _, em := range e.Emitters {
		fmt.Fprintf(&b, " R%d(%d targets)", em.Router, len(em.Targets))
	}
	fmt.Fprintf(&b, "\n%-4s %-24s %s\n", "#", "Set of Targeted Routers", "Punch Signal")
	for i, c := range e.Codes {
		fmt.Fprintf(&b, "%-4d %-24s %0*b\n", i+1, c.Set.String(), e.WidthBits, c.Code+1)
	}
	return b.String()
}
