package core

import (
	"math/rand"
	"testing"

	"powerpunch/internal/mesh"
)

// allChannels enumerates every punch channel of the mesh at the given
// hop count.
func allChannels(m *mesh.Mesh, hops int) []*ChannelEncoding {
	var out []*ChannelEncoding
	for r := mesh.NodeID(0); m.Contains(r); r++ {
		for _, d := range mesh.LinkDirections {
			if e := EncodeChannel(m, r, d, hops); e != nil {
				out = append(out, e)
			}
		}
	}
	return out
}

// TestEncoderRoundTripEveryCode is the exhaustive round-trip property
// behind Table 1: for every channel of the 8x8 mesh at 3-hop punch
// (the 5-bit X / 2-bit Y configuration), every wire code decodes to a
// target set that encodes back to the same code, sets are canonical
// (sorted, fully reduced), codes are dense and within the advertised
// channel width, and code 0 stays reserved for idle.
func TestEncoderRoundTripEveryCode(t *testing.T) {
	m := mesh.New(8, 8)
	for _, e := range allChannels(m, 3) {
		if len(e.Codes) >= (1 << e.WidthBits) {
			t.Fatalf("r%d %v: %d codes overflow %d-bit channel (idle needs a state)",
				e.Router, e.Direction, len(e.Codes), e.WidthBits)
		}
		if e.SetFor(0) != nil || e.SetFor(len(e.Codes)+1) != nil {
			t.Fatalf("r%d %v: out-of-range codes must decode to nil", e.Router, e.Direction)
		}
		for code := 1; code <= len(e.Codes); code++ {
			set := e.SetFor(code)
			if len(set) == 0 {
				t.Fatalf("r%d %v: code %d decodes to an empty set", e.Router, e.Direction, code)
			}
			// Canonical: already reduced, sorted, duplicate-free.
			if red := reduceTargets(m, e.Router, set); red.Key() != set.Key() {
				t.Fatalf("r%d %v: code %d set %v is not reduced (-> %v)",
					e.Router, e.Direction, code, set, red)
			}
			if got := e.CodeFor(m, set); got != code {
				t.Fatalf("r%d %v: CodeFor(SetFor(%d)) = %d", e.Router, e.Direction, code, got)
			}
		}
	}
}

// TestEncoderEncodesEveryEmitterChoice is the completeness property the
// fabric relies on: any union of at most one target per emitter — every
// combination the hardware arbitration can produce in one cycle — must
// be in the channel's code book, and must decode to exactly its
// reduction. Exhaustive enumeration is exponential in emitters, so a
// seeded random sample of choices per channel stands in.
func TestEncoderEncodesEveryEmitterChoice(t *testing.T) {
	m := mesh.New(8, 8)
	rng := rand.New(rand.NewSource(31))
	for _, e := range allChannels(m, 3) {
		for trial := 0; trial < 64; trial++ {
			var union []mesh.NodeID
			for _, em := range e.Emitters {
				if rng.Intn(2) == 0 {
					union = append(union, em.Targets[rng.Intn(len(em.Targets))])
				}
			}
			if len(union) == 0 {
				continue
			}
			code := e.CodeFor(m, union)
			if code < 1 {
				t.Fatalf("r%d %v: legal emitter union %v not encodable",
					e.Router, e.Direction, union)
			}
			want := reduceTargets(m, e.Router, union)
			if got := e.SetFor(code); got.Key() != want.Key() {
				t.Fatalf("r%d %v: union %v encoded to %v, want %v",
					e.Router, e.Direction, union, got, want)
			}
		}
	}
}

// TestReduceMergeLossless is the algebraic property EncodeChannel's
// incremental enumeration and the fabric's cycle-merging both depend
// on: reduction keeps the maximal elements of the "lies on the XY path
// to" order, so reducing early loses nothing —
// reduce(A ∪ B) == reduce(reduce(A) ∪ reduce(B)) — and reduction is
// idempotent.
func TestReduceMergeLossless(t *testing.T) {
	m := mesh.New(8, 8)
	rng := rand.New(rand.NewSource(37))
	randomTargets := func(e *ChannelEncoding) []mesh.NodeID {
		var u []mesh.NodeID
		for _, em := range e.Emitters {
			for _, tgt := range em.Targets {
				if rng.Intn(3) == 0 {
					u = append(u, tgt)
				}
			}
		}
		return u
	}
	for _, e := range allChannels(m, 3) {
		for trial := 0; trial < 32; trial++ {
			a, b := randomTargets(e), randomTargets(e)
			direct := reduceTargets(m, e.Router, append(append([]mesh.NodeID{}, a...), b...))
			ra, rb := reduceTargets(m, e.Router, a), reduceTargets(m, e.Router, b)
			staged := reduceTargets(m, e.Router, append(append([]mesh.NodeID{}, ra...), rb...))
			if direct.Key() != staged.Key() {
				t.Fatalf("r%d %v: merge not lossless: reduce(A∪B)=%v but reduce(rA∪rB)=%v (A=%v B=%v)",
					e.Router, e.Direction, direct, staged, a, b)
			}
			if again := reduceTargets(m, e.Router, direct); again.Key() != direct.Key() {
				t.Fatalf("r%d %v: reduction not idempotent: %v -> %v", e.Router, e.Direction, direct, again)
			}
		}
	}
}
