package core

import (
	"fmt"
	"testing"

	"powerpunch/internal/mesh"
	"powerpunch/internal/topo"
)

// bruteForceCodeBook enumerates, without the incremental-reduction
// shortcut EncodeChannelOn uses, every distinct reduced target set a
// channel can carry: all unions of at most one target per emitter,
// each reduced independently. It is the ground truth the fast
// enumerator must match. Returns nil (and ok=false) when the naive
// product of choices is too large to walk.
func bruteForceCodeBook(rf topo.RoutingFunction, e *ChannelEncoding) (map[string]TargetSet, bool) {
	product := 1
	for _, em := range e.Emitters {
		product *= 1 + len(em.Targets)
		if product > 1<<18 {
			return nil, false
		}
	}
	sets := map[string]TargetSet{}
	var walk func(i int, acc []mesh.NodeID)
	walk = func(i int, acc []mesh.NodeID) {
		if i == len(e.Emitters) {
			if len(acc) == 0 {
				return
			}
			red := reduceTargetsOn(rf, e.Router, acc)
			sets[red.Key()] = red
			return
		}
		walk(i+1, acc) // emitter silent
		for _, tg := range e.Emitters[i].Targets {
			walk(i+1, append(acc, tg))
		}
	}
	walk(0, nil)
	return sets, true
}

// TestEncoderMatchesBruteForceAcrossShapes is the satellite property
// test for the generic enumerator: on non-square and tiny meshes (2x2,
// 4x8, 8x4) and on the wrapped fabrics (4x4 torus, 8-node ring), every
// channel's code book must contain exactly the brute-force set of
// reachable reduced target sets — no phantom codes, no missing
// combinations — and every code must round-trip through CodeForSet.
func TestEncoderMatchesBruteForceAcrossShapes(t *testing.T) {
	fabrics := []struct {
		name          string
		width, height int
	}{
		{"mesh", 2, 2},
		{"mesh", 4, 8},
		{"mesh", 8, 4},
		{"torus", 4, 4},
		{"ring", 8, 1},
	}
	for _, fab := range fabrics {
		rf, err := topo.Build(fab.name, fab.width, fab.height)
		if err != nil {
			t.Fatal(err)
		}
		top := rf.Topology()
		for hops := 1; hops <= 3; hops++ {
			if hops > top.Diameter() {
				continue
			}
			t.Run(fmt.Sprintf("%dx%d-%s/hops=%d", fab.width, fab.height, fab.name, hops), func(t *testing.T) {
				channels := 0
				for r := mesh.NodeID(0); top.Contains(r); r++ {
					for _, d := range mesh.LinkDirections {
						e := EncodeChannelOn(rf, r, d, hops)
						if e == nil {
							if top.Neighbor(r, d) != mesh.Invalid {
								t.Fatalf("r%d %v: link exists but channel is nil", r, d)
							}
							continue
						}
						channels++
						want, ok := bruteForceCodeBook(rf, e)
						if !ok {
							t.Fatalf("r%d %v: brute force infeasible (%d emitters)", r, d, len(e.Emitters))
						}
						if len(want) != len(e.Codes) {
							t.Fatalf("r%d %v: enumerator found %d sets, brute force %d",
								r, d, len(e.Codes), len(want))
						}
						for _, c := range e.Codes {
							if _, present := want[c.Set.Key()]; !present {
								t.Fatalf("r%d %v: phantom code %v not reachable by any emitter choice",
									r, d, c.Set)
							}
							if got := e.CodeForSet(c.Set); got != c.Code+1 {
								t.Fatalf("r%d %v: CodeForSet(%v) = %d, want %d", r, d, c.Set, got, c.Code+1)
							}
						}
					}
				}
				if channels == 0 {
					t.Fatal("no channels enumerated")
				}
			})
		}
	}
}

// TestLargeFabricWidthsSaturate pins the punch code-book widths on the
// scaled 32x32 and 64x64 fabrics. The reach set of a punch channel is
// purely local — every target lies within PunchHops of the emitting
// router — so once the fabric is large enough to contain a router with
// a full interior neighborhood the widths stop growing: a 32x32 or
// 64x64 mesh at 3-hop punch needs exactly the paper's Table 1 widths
// (5-bit X, 2-bit Y), and the wrapped torus (every router interior by
// symmetry) saturates at its own fixed point independent of side
// length once width > 2*hops. The property makes the large-fabric
// configs first-class without re-deriving Table 1: scaling the fabric
// scales router count, never punch-channel wiring.
func TestLargeFabricWidthsSaturate(t *testing.T) {
	// maxWidthsOver encodes only the given routers. A router's code
	// book depends solely on its hops-radius neighborhood shape, so a
	// sample covering every distinct edge-distance class yields the
	// same maximum as the full MaxChannelWidthsOn scan at a fraction
	// of the cost (a 64x64 full scan is ~16k channel enumerations).
	maxWidthsOver := func(rf topo.RoutingFunction, hops int, routers []mesh.NodeID) (xBits, yBits int) {
		for _, r := range routers {
			for _, d := range mesh.LinkDirections {
				enc := EncodeChannelOn(rf, r, d, hops)
				if enc == nil {
					continue
				}
				if d.IsX() && enc.WidthBits > xBits {
					xBits = enc.WidthBits
				}
				if d.IsY() && enc.WidthBits > yBits {
					yBits = enc.WidthBits
				}
			}
		}
		return xBits, yBits
	}
	// Every distinct neighborhood shape on a size x size mesh appears
	// among routers whose per-axis border distance is in [0, 2*hops]:
	// sample the full (2*hops+1)^2 corner block and the two clamped
	// axes' worth of classes via a cross through the center.
	meshSample := func(size, hops int) []mesh.NodeID {
		var rs []mesh.NodeID
		classes := func(n int) []int {
			var cs []int
			for d := 0; d <= 2*hops && d < n; d++ {
				cs = append(cs, d, n-1-d)
			}
			return append(cs, n/2)
		}
		for _, y := range classes(size) {
			for _, x := range classes(size) {
				rs = append(rs, mesh.NodeID(y*size+x))
			}
		}
		return rs
	}
	for _, size := range []int{32, 64} {
		rf, err := topo.Build("mesh", size, size)
		if err != nil {
			t.Fatal(err)
		}
		x, y := maxWidthsOver(rf, 3, meshSample(size, 3))
		if x != 5 || y != 2 {
			t.Errorf("%dx%d mesh, 3-hop: widths X=%d Y=%d, want the Table 1 saturation point 5/2",
				size, size, x, y)
		}
	}
	// The 32x32 full scan stays cheap enough to keep one exhaustive
	// MaxChannelWidthsOn call in the property, guarding the sampling
	// shortcut itself.
	full, err := topo.Build("mesh", 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if x, y := MaxChannelWidthsOn(full, 3); x != 5 || y != 2 {
		t.Errorf("32x32 mesh full scan: widths X=%d Y=%d, want 5/2", x, y)
	}
	// Torus fixed point: derive the saturated widths on the smallest
	// unwrapped-reach torus (width > 2*hops on both axes) and require
	// the 32x32 and 64x64 tori to match it exactly. The torus is
	// vertex-transitive, so one router per fabric carries the whole
	// code book; assert that symmetry on a second sampled router.
	ref, err := topo.Build("torus", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantX, wantY := MaxChannelWidthsOn(ref, 3)
	if wantX < 5 || wantY < 2 {
		// Wrapping removes edge truncation, so the torus code book can
		// never be narrower than the mesh interior's.
		t.Fatalf("8x8 torus reference widths X=%d Y=%d below the mesh interior 5/2", wantX, wantY)
	}
	for _, size := range []int{32, 64} {
		rf, err := topo.Build("torus", size, size)
		if err != nil {
			t.Fatal(err)
		}
		sample := []mesh.NodeID{0, mesh.NodeID(size*size/2 + size/2)}
		x, y := maxWidthsOver(rf, 3, sample)
		if x != wantX || y != wantY {
			t.Errorf("%dx%d torus, 3-hop: widths X=%d Y=%d, want the saturated %d/%d",
				size, size, x, y, wantX, wantY)
		}
		for _, r := range sample {
			for _, d := range mesh.LinkDirections {
				if enc := EncodeChannelOn(rf, r, d, 3); enc == nil {
					t.Errorf("%dx%d torus: router %d %v has no punch channel", size, size, r, d)
				}
			}
		}
	}
}

// TestNonSquareWidthsAreConsistent pins the channel widths the
// enumerator derives for the rectangular meshes: X channels see at most
// the same emitter structure as the square mesh's rows, so a 4x8 and an
// 8x4 mesh at 3-hop punch must stay within the paper's 5-bit X / 2-bit
// Y envelope, and the 8x8 values remain the regression oracle.
func TestNonSquareWidthsAreConsistent(t *testing.T) {
	for _, tc := range []struct {
		w, h       int
		maxX, maxY int
	}{
		{2, 2, 2, 1},
		{4, 8, 5, 2},
		{8, 4, 5, 2},
		{8, 8, 5, 2},
	} {
		x, y := MaxChannelWidths(mesh.New(tc.w, tc.h), 3)
		if x > tc.maxX || y > tc.maxY {
			t.Errorf("%dx%d: widths X=%d Y=%d exceed envelope X<=%d Y<=%d",
				tc.w, tc.h, x, y, tc.maxX, tc.maxY)
		}
		if tc.w == 8 && tc.h == 8 && (x != 5 || y != 2) {
			t.Errorf("8x8 regression oracle: got X=%d Y=%d, want 5/2", x, y)
		}
	}
}
