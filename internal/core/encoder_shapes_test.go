package core

import (
	"fmt"
	"testing"

	"powerpunch/internal/mesh"
	"powerpunch/internal/topo"
)

// bruteForceCodeBook enumerates, without the incremental-reduction
// shortcut EncodeChannelOn uses, every distinct reduced target set a
// channel can carry: all unions of at most one target per emitter,
// each reduced independently. It is the ground truth the fast
// enumerator must match. Returns nil (and ok=false) when the naive
// product of choices is too large to walk.
func bruteForceCodeBook(rf topo.RoutingFunction, e *ChannelEncoding) (map[string]TargetSet, bool) {
	product := 1
	for _, em := range e.Emitters {
		product *= 1 + len(em.Targets)
		if product > 1<<18 {
			return nil, false
		}
	}
	sets := map[string]TargetSet{}
	var walk func(i int, acc []mesh.NodeID)
	walk = func(i int, acc []mesh.NodeID) {
		if i == len(e.Emitters) {
			if len(acc) == 0 {
				return
			}
			red := reduceTargetsOn(rf, e.Router, acc)
			sets[red.Key()] = red
			return
		}
		walk(i+1, acc) // emitter silent
		for _, tg := range e.Emitters[i].Targets {
			walk(i+1, append(acc, tg))
		}
	}
	walk(0, nil)
	return sets, true
}

// TestEncoderMatchesBruteForceAcrossShapes is the satellite property
// test for the generic enumerator: on non-square and tiny meshes (2x2,
// 4x8, 8x4) and on the wrapped fabrics (4x4 torus, 8-node ring), every
// channel's code book must contain exactly the brute-force set of
// reachable reduced target sets — no phantom codes, no missing
// combinations — and every code must round-trip through CodeForSet.
func TestEncoderMatchesBruteForceAcrossShapes(t *testing.T) {
	fabrics := []struct {
		name          string
		width, height int
	}{
		{"mesh", 2, 2},
		{"mesh", 4, 8},
		{"mesh", 8, 4},
		{"torus", 4, 4},
		{"ring", 8, 1},
	}
	for _, fab := range fabrics {
		rf, err := topo.Build(fab.name, fab.width, fab.height)
		if err != nil {
			t.Fatal(err)
		}
		top := rf.Topology()
		for hops := 1; hops <= 3; hops++ {
			if hops > top.Diameter() {
				continue
			}
			t.Run(fmt.Sprintf("%dx%d-%s/hops=%d", fab.width, fab.height, fab.name, hops), func(t *testing.T) {
				channels := 0
				for r := mesh.NodeID(0); top.Contains(r); r++ {
					for _, d := range mesh.LinkDirections {
						e := EncodeChannelOn(rf, r, d, hops)
						if e == nil {
							if top.Neighbor(r, d) != mesh.Invalid {
								t.Fatalf("r%d %v: link exists but channel is nil", r, d)
							}
							continue
						}
						channels++
						want, ok := bruteForceCodeBook(rf, e)
						if !ok {
							t.Fatalf("r%d %v: brute force infeasible (%d emitters)", r, d, len(e.Emitters))
						}
						if len(want) != len(e.Codes) {
							t.Fatalf("r%d %v: enumerator found %d sets, brute force %d",
								r, d, len(e.Codes), len(want))
						}
						for _, c := range e.Codes {
							if _, present := want[c.Set.Key()]; !present {
								t.Fatalf("r%d %v: phantom code %v not reachable by any emitter choice",
									r, d, c.Set)
							}
							if got := e.CodeForSet(c.Set); got != c.Code+1 {
								t.Fatalf("r%d %v: CodeForSet(%v) = %d, want %d", r, d, c.Set, got, c.Code+1)
							}
						}
					}
				}
				if channels == 0 {
					t.Fatal("no channels enumerated")
				}
			})
		}
	}
}

// TestNonSquareWidthsAreConsistent pins the channel widths the
// enumerator derives for the rectangular meshes: X channels see at most
// the same emitter structure as the square mesh's rows, so a 4x8 and an
// 8x4 mesh at 3-hop punch must stay within the paper's 5-bit X / 2-bit
// Y envelope, and the 8x8 values remain the regression oracle.
func TestNonSquareWidthsAreConsistent(t *testing.T) {
	for _, tc := range []struct {
		w, h       int
		maxX, maxY int
	}{
		{2, 2, 2, 1},
		{4, 8, 5, 2},
		{8, 4, 5, 2},
		{8, 8, 5, 2},
	} {
		x, y := MaxChannelWidths(mesh.New(tc.w, tc.h), 3)
		if x > tc.maxX || y > tc.maxY {
			t.Errorf("%dx%d: widths X=%d Y=%d exceed envelope X<=%d Y<=%d",
				tc.w, tc.h, x, y, tc.maxX, tc.maxY)
		}
		if tc.w == 8 && tc.h == 8 && (x != 5 || y != 2) {
			t.Errorf("8x8 regression oracle: got X=%d Y=%d, want 5/2", x, y)
		}
	}
}
