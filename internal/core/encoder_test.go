package core

import (
	"sort"
	"testing"
	"testing/quick"

	"powerpunch/internal/mesh"
)

// table1Sets are the 22 distinct sets of the paper's Table 1 (router 27,
// X+ direction, 3-hop punch on an 8x8 mesh).
var table1Sets = [][]mesh.NodeID{
	{28}, {12}, {21}, {30}, {37}, {44}, {20}, {29}, {36},
	{12, 29}, {12, 36}, {21, 20}, {21, 36}, {30, 20}, {30, 36},
	{37, 20}, {37, 36}, {44, 20}, {44, 29}, {20, 29}, {20, 36}, {29, 36},
}

func canon(s []mesh.NodeID) string {
	c := make([]mesh.NodeID, len(s))
	copy(c, s)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return TargetSet(c).Key()
}

func TestEncodeChannelReproducesTable1(t *testing.T) {
	m := mesh.New(8, 8)
	enc := EncodeChannel(m, 27, mesh.East, 3)
	if enc == nil {
		t.Fatal("nil encoding")
	}
	if len(enc.Codes) != 22 {
		t.Fatalf("distinct sets = %d, want 22 (paper Table 1)", len(enc.Codes))
	}
	if enc.WidthBits != 5 {
		t.Fatalf("width = %d bits, want 5", enc.WidthBits)
	}
	want := map[string]bool{}
	for _, s := range table1Sets {
		want[canon(s)] = true
	}
	for _, c := range enc.Codes {
		if !want[c.Set.Key()] {
			t.Errorf("unexpected set %v (not in paper Table 1)", c.Set)
		}
		delete(want, c.Set.Key())
	}
	for k := range want {
		t.Errorf("missing Table 1 set {%s}", k)
	}
}

func TestEncodeChannelEmittersMatchPaper(t *testing.T) {
	// Section 4.1 step 3: on R27's X+ channel, only R25, R26, and R27
	// can be wakeup-signal sources; R27 has 9 possible targets, R26 has
	// 4, and R25 has 1 (always R28).
	m := mesh.New(8, 8)
	enc := EncodeChannel(m, 27, mesh.East, 3)
	if len(enc.Emitters) != 3 {
		t.Fatalf("emitters = %d, want 3", len(enc.Emitters))
	}
	wantTargets := map[mesh.NodeID]int{25: 1, 26: 4, 27: 9}
	for _, e := range enc.Emitters {
		if want, ok := wantTargets[e.Router]; !ok || len(e.Targets) != want {
			t.Errorf("emitter R%d has %d targets, want %d", e.Router, len(e.Targets), wantTargets[e.Router])
		}
	}
	// R25's only target is R28.
	for _, e := range enc.Emitters {
		if e.Router == 25 && (len(e.Targets) != 1 || e.Targets[0] != 28) {
			t.Errorf("R25 targets = %v, want [28]", e.Targets)
		}
	}
}

func TestYChannelHasThreeSets(t *testing.T) {
	// Section 4.1 step 4: Y-direction punch channels have only 3
	// distinct sets ({1 hop}, {2 hops}, {3 hops} straight ahead), hence
	// 2 bits.
	m := mesh.New(8, 8)
	for _, d := range []mesh.Direction{mesh.North, mesh.South} {
		enc := EncodeChannel(m, 27, d, 3)
		if enc == nil {
			t.Fatalf("no %v channel for router 27", d)
		}
		if len(enc.Codes) != 3 {
			t.Errorf("%v channel: %d sets, want 3", d, len(enc.Codes))
		}
		if enc.WidthBits != 2 {
			t.Errorf("%v channel: %d bits, want 2", d, enc.WidthBits)
		}
		for _, c := range enc.Codes {
			if len(c.Set) != 1 {
				t.Errorf("%v channel set %v should be a single target", d, c.Set)
			}
		}
	}
}

func TestMaxChannelWidthsMatchPaper(t *testing.T) {
	m := mesh.New(8, 8)
	x3, y3 := MaxChannelWidths(m, 3)
	if x3 != 5 || y3 != 2 {
		t.Errorf("3-hop widths = (%d,%d), want (5,2) per Section 4.1", x3, y3)
	}
	x4, _ := MaxChannelWidths(m, 4)
	if x4 != 8 {
		t.Errorf("4-hop X width = %d, want 8 per Section 4.1 step 5", x4)
	}
}

func TestEdgeChannelsAreNarrowerOrEqual(t *testing.T) {
	// Routers at the mesh edge have fewer upstream emitters, so their
	// channels never need more bits than an interior router's.
	m := mesh.New(8, 8)
	interior := EncodeChannel(m, 27, mesh.East, 3)
	for _, r := range []mesh.NodeID{0, 7, 56, 63, 8, 1} {
		for _, d := range mesh.LinkDirections {
			enc := EncodeChannel(m, r, d, 3)
			if enc == nil {
				continue
			}
			if d.IsX() && enc.WidthBits > interior.WidthBits {
				t.Errorf("edge router %d %v channel wider (%d) than interior (%d)",
					r, d, enc.WidthBits, interior.WidthBits)
			}
		}
	}
}

func TestEncodeChannelNilCases(t *testing.T) {
	m := mesh.New(8, 8)
	if EncodeChannel(m, 7, mesh.East, 3) != nil {
		t.Error("east edge must have no X+ channel")
	}
	if EncodeChannel(m, 27, mesh.Local, 3) != nil {
		t.Error("Local is not a punch channel")
	}
}

func TestReduceTargetsProperties(t *testing.T) {
	// Property: reduction is idempotent, order-independent, and only
	// removes targets lying on the XY path to a surviving target.
	m := mesh.New(8, 8)
	r := mesh.NodeID(27)
	pool := []mesh.NodeID{28, 29, 30, 20, 21, 36, 37, 44, 12}
	f := func(picksRaw []uint8) bool {
		if len(picksRaw) > 6 {
			picksRaw = picksRaw[:6]
		}
		var targets []mesh.NodeID
		for _, p := range picksRaw {
			targets = append(targets, pool[int(p)%len(pool)])
		}
		red := reduceTargets(m, r, targets)
		// Idempotent.
		again := reduceTargets(m, r, red)
		if again.Key() != red.Key() {
			return false
		}
		// Order-independent.
		rev := make([]mesh.NodeID, len(targets))
		for i, v := range targets {
			rev[len(targets)-1-i] = v
		}
		if reduceTargets(m, r, rev).Key() != red.Key() {
			return false
		}
		// Every original target is either kept or dominated by a kept one.
		for _, tg := range targets {
			covered := false
			for _, k := range red {
				if tg == k || onXYPath(m, r, k, tg) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// onXYPath is a test-local re-check of path membership.
func onXYPath(m *mesh.Mesh, from, to, node mesh.NodeID) bool {
	cur := from
	for {
		if cur == node {
			return true
		}
		if cur == to {
			return false
		}
		c, d := m.CoordOf(cur), m.CoordOf(to)
		switch {
		case d.X > c.X:
			cur = m.NodeAt(mesh.Coord{X: c.X + 1, Y: c.Y})
		case d.X < c.X:
			cur = m.NodeAt(mesh.Coord{X: c.X - 1, Y: c.Y})
		case d.Y > c.Y:
			cur = m.NodeAt(mesh.Coord{X: c.X, Y: c.Y + 1})
		default:
			cur = m.NodeAt(mesh.Coord{X: c.X, Y: c.Y - 1})
		}
	}
}

func TestFabricSetsAreAlwaysEncodable(t *testing.T) {
	// Property tying the behavioural fabric to the hardware encoding:
	// under the strict (one-new-punch-per-emitter-channel) regime, every
	// merged target set observed on a channel must appear in that
	// channel's code book.
	m := mesh.New(8, 8)
	enc := EncodeChannel(m, 27, mesh.East, 3)
	book := map[string]bool{}
	for _, c := range enc.Codes {
		book[c.Set.Key()] = true
	}
	// All single targets an emitter can name are in the book.
	for _, e := range enc.Emitters {
		for _, tg := range e.Targets {
			red := reduceTargets(m, 27, []mesh.NodeID{tg})
			if !book[red.Key()] {
				t.Errorf("single signal %d->%d not encodable", e.Router, tg)
			}
		}
	}
	// All pairwise merges are in the book.
	for i, e1 := range enc.Emitters {
		for j, e2 := range enc.Emitters {
			if i == j {
				continue
			}
			for _, t1 := range e1.Targets {
				for _, t2 := range e2.Targets {
					red := reduceTargets(m, 27, []mesh.NodeID{t1, t2})
					if !book[red.Key()] {
						t.Errorf("merge {%d,%d} not encodable", t1, t2)
					}
				}
			}
		}
	}
}

func TestAreaEstimateMatchesPaperBallpark(t *testing.T) {
	rep := EstimateArea(defaultTestConfig(), DefaultAreaModel())
	if rep.XBits != 5 || rep.YBits != 2 {
		t.Errorf("widths (%d,%d), want (5,2)", rep.XBits, rep.YBits)
	}
	// Paper Section 6.6(1): 2.4% of NoC area. Accept the ballpark.
	if rep.OverheadFrac < 0.005 || rep.OverheadFrac > 0.06 {
		t.Errorf("area overhead %.2f%% far from the paper's 2.4%%", rep.OverheadFrac*100)
	}
	if rep.String() == "" {
		t.Error("empty report")
	}
}

func TestFormatTableOutput(t *testing.T) {
	m := mesh.New(8, 8)
	enc := EncodeChannel(m, 27, mesh.East, 3)
	out := enc.FormatTable()
	if out == "" {
		t.Fatal("empty table")
	}
}

func TestCodeRoundTrip(t *testing.T) {
	m := mesh.New(8, 8)
	enc := EncodeChannel(m, 27, mesh.East, 3)
	// Every code book entry round-trips through CodeFor/SetFor.
	for _, c := range enc.Codes {
		code := enc.CodeFor(m, c.Set)
		if code < 1 {
			t.Fatalf("set %v not found by CodeFor", c.Set)
		}
		if got := enc.SetFor(code); got.Key() != c.Set.Key() {
			t.Fatalf("SetFor(CodeFor(%v)) = %v", c.Set, got)
		}
	}
	// Unreduced inputs reduce before lookup: {28, 29} -> {29}.
	if code := enc.CodeFor(m, []mesh.NodeID{28, 29}); code < 1 || enc.SetFor(code).Key() != "29" {
		t.Errorf("CodeFor({28,29}) should resolve to the {29} code")
	}
	// Unencodable sets report -1; idle/out-of-range codes return nil.
	if enc.CodeFor(m, []mesh.NodeID{21, 30}) != -1 {
		t.Error("{21,30} should be unencodable")
	}
	if enc.SetFor(0) != nil || enc.SetFor(99) != nil {
		t.Error("idle/out-of-range codes must return nil")
	}
}
