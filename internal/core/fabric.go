package core

import (
	"fmt"

	"powerpunch/internal/mesh"
	"powerpunch/internal/obs"
	"powerpunch/internal/power"
	"powerpunch/internal/topo"
)

// TargetedRouter is TargetedRouterOn specialized to XY on a mesh.
func TargetedRouter(m *mesh.Mesh, cur, dst mesh.NodeID, k int) mesh.NodeID {
	return TargetedRouterOn(xyOn(m), cur, dst, k)
}

// TargetedRouterOn computes the paper's targeted router for a packet at
// cur destined to dst with a k-hop punch: the router k hops ahead on
// the routed path, or the destination if it is closer. It returns
// mesh.Invalid when cur == dst (no punch needed).
func TargetedRouterOn(rf topo.RoutingFunction, cur, dst mesh.NodeID, k int) mesh.NodeID {
	if cur == dst {
		return mesh.Invalid
	}
	return topo.Ahead(rf, cur, dst, k)
}

// FabricStats counts punch-fabric activity.
type FabricStats struct {
	SourceEmissions int64 // punches asserted by resident packets / NIs
	RelayedTargets  int64 // target relays across links
	ChannelCycles   int64 // (node, direction) channel-assertion cycles
	StrictDrops     int64 // source emissions deferred by strict arbitration
}

// Fabric is the punch-signal network for one fabric. It is driven by the
// simulator's cycle loop:
//
//	fabric.EmitSource / EmitLocal  (during the cycle, level semantics)
//	fabric.Step()                  (once per cycle, after all emissions)
//	fabric.Hold(node)              (read by the PG controllers)
//
// Signals written in cycle t reach the next router's controller in cycle
// t+1 (one link per cycle); relay through a controller is combinational
// (paper Section 6.6) and adds no extra latency.
type Fabric struct {
	rf   topo.RoutingFunction
	t    topo.Topology
	hops int
	// strict limits each router to one newly-generated punch per outgoing
	// direction per cycle, matching the single-signal-per-emitter model
	// Table 1 encodes. Relays are never dropped (merging is lossless).
	strict bool
	acct   *power.Accountant

	// inbox[n]: targets whose punch arrived at n this cycle.
	inbox [][]mesh.NodeID
	// localHold[n]: NI asserted an injection-node punch at n this cycle.
	localHold []bool
	// pending[n]: targets asserted at n this cycle (sources + local).
	pending [][]mesh.NodeID
	// outbox[n][d]: targets leaving n toward direction d this cycle.
	outbox [][mesh.NumLinkDirs][]mesh.NodeID
	// hold[n]: result of Step — n must stay/awake this cycle.
	hold []bool
	// strictUsed[n][d]: a source emission already used channel (n,d).
	strictUsed [][mesh.NumLinkDirs]bool

	// verify: check every channel's merged set against its Table-1 code
	// book (strict mode only; panics on violation). Code books are
	// built lazily per channel.
	verify    bool
	codebooks map[int]map[string]bool

	// faultDropRelays is a deliberate defect for invariant-engine tests;
	// see SetFaultDropRelays.
	faultDropRelays bool

	// Activity tracking for the network's active-set scheduler: emitted
	// is set by any Emit*/Hold* call since the last Step, inboxAny when
	// the last Step delivered targets into an inbox, and heldList is the
	// set of nodes the last Step computed a hold for. The fabric needs
	// stepping only while any of the three is live (NeedsStep); skipping
	// Step otherwise is safe because all per-cycle state (pending,
	// localHold, outbox, hold) is provably empty/false then.
	emitted  bool
	inboxAny bool
	heldList []mesh.NodeID

	// bus, when non-nil, receives punch emit/local/merge/arrive/hold
	// events.
	bus *obs.Bus

	stats FabricStats
}

// NewFabric is NewFabricOn specialized to XY on a mesh.
func NewFabric(m *mesh.Mesh, hops int, strict bool, acct *power.Accountant) *Fabric {
	return NewFabricOn(xyOn(m), hops, strict, acct)
}

// NewFabricOn returns a punch fabric routed by rf with the given
// hop-count slack (paper default 3). acct may be nil to skip energy
// accounting.
func NewFabricOn(rf topo.RoutingFunction, hops int, strict bool, acct *power.Accountant) *Fabric {
	if hops < 1 {
		panic(fmt.Sprintf("core: punch hops must be >= 1, got %d", hops))
	}
	n := rf.Topology().NumNodes()
	f := &Fabric{
		rf:         rf,
		t:          rf.Topology(),
		hops:       hops,
		strict:     strict,
		acct:       acct,
		inbox:      make([][]mesh.NodeID, n),
		localHold:  make([]bool, n),
		pending:    make([][]mesh.NodeID, n),
		outbox:     make([][mesh.NumLinkDirs][]mesh.NodeID, n),
		hold:       make([]bool, n),
		strictUsed: make([][mesh.NumLinkDirs]bool, n),
	}
	// The per-node target lists are recycled ([:0]) every cycle and
	// their occupancy is bounded by the local reach set, so a small
	// preallocation keeps Step allocation-free in the steady state:
	// without it, large fabrics pay a long tail of first-time-growth
	// appends (each node's lists must individually hit their high-water
	// mark before the hot path stops allocating).
	const punchListCap = 16
	for i := 0; i < n; i++ {
		// The inbox merges targets from all four directions, so it
		// carries a deeper high-water mark than the per-direction lists.
		f.inbox[i] = make([]mesh.NodeID, 0, 2*punchListCap)
		f.pending[i] = make([]mesh.NodeID, 0, punchListCap)
		for d := range f.outbox[i] {
			f.outbox[i][d] = make([]mesh.NodeID, 0, punchListCap)
		}
	}
	return f
}

// Hops returns the configured punch hop-count slack.
func (f *Fabric) Hops() int { return f.hops }

// SetBus attaches an observability bus; a nil bus (the default) keeps
// the fabric silent.
func (f *Fabric) SetBus(b *obs.Bus) { f.bus = b }

// SetVerifyEncodable makes the fabric assert, every cycle, that every
// channel's merged target set appears in that channel's Table-1 code
// book — the runtime proof that the behavioural simulation never needs
// a signal the proposed hardware could not encode. Only meaningful in
// strict mode (the code books assume one new signal per emitter per
// cycle); it panics on the first violation. Intended for tests.
func (f *Fabric) SetVerifyEncodable(v bool) {
	f.verify = v
	if v && f.codebooks == nil {
		f.codebooks = map[int]map[string]bool{}
	}
}

// codebook returns (building lazily) the set of encodable reduced
// target-set keys for channel (node, dirIdx).
func (f *Fabric) codebook(node int, di int) map[string]bool {
	key := node*mesh.NumLinkDirs + di
	if cb, ok := f.codebooks[key]; ok {
		return cb
	}
	cb := map[string]bool{}
	if enc := EncodeChannelOn(f.rf, mesh.NodeID(node), mesh.LinkDirections[di], f.hops); enc != nil {
		for _, c := range enc.Codes {
			cb[c.Set.Key()] = true
		}
	}
	f.codebooks[key] = cb
	return cb
}

// checkEncodable panics if the channel's merged set is outside its code
// book.
func (f *Fabric) checkEncodable(node, di int, targets []mesh.NodeID) {
	red := reduceTargetsOn(f.rf, mesh.NodeID(node), targets)
	if !f.codebook(node, di)[red.Key()] {
		panic(fmt.Sprintf("core: channel %d->%v carries unencodable set %v (reduced %v)",
			node, mesh.LinkDirections[di], targets, red))
	}
}

// Stats returns a copy of the accumulated statistics.
func (f *Fabric) Stats() FabricStats { return f.stats }

// EmitSource asserts, for the current cycle, the punch of a packet
// resident at node cur and destined to dst: the signal targeting
// TargetedRouter(cur, dst, hops). Call once per resident packet head per
// cycle (level semantics: a stalled packet keeps punching). No-op when
// cur == dst.
func (f *Fabric) EmitSource(cur, dst mesh.NodeID) {
	t := TargetedRouterOn(f.rf, cur, dst, f.hops)
	if t == mesh.Invalid {
		return
	}
	if f.strict {
		d := topo.MustRoute(f.rf, cur, t)
		if d != mesh.Local {
			di := dirIndex(d)
			if f.strictUsed[cur][di] {
				f.stats.StrictDrops++
				return
			}
			f.strictUsed[cur][di] = true
		}
	}
	f.stats.SourceEmissions++
	f.pending[cur] = appendUnique(f.pending[cur], t)
	f.emitted = true
	if f.bus != nil {
		f.bus.Emit(obs.Event{Kind: obs.KindPunchEmit, Node: int32(cur),
			Dst: int32(t), A: int64(dst)})
	}
}

// EmitLocal asserts the injection-node punch of PowerPunch-PG's slack 1:
// a message with known destination dst is in node src's NI, so the local
// router is held awake and the multi-hop punch toward the targeted router
// starts immediately (paper Section 4.2). Call once per pending NI
// message per cycle.
func (f *Fabric) EmitLocal(src, dst mesh.NodeID) {
	f.localHold[src] = true
	f.emitted = true
	if f.bus != nil {
		f.bus.Emit(obs.Event{Kind: obs.KindPunchLocal, Node: int32(src)})
	}
	if src != dst {
		f.EmitSource(src, dst)
	}
}

// HoldLocal asserts only the local-router hold at node n (the paper's
// slack 2: a resource access guarantees a packet will be injected, but
// the destination is not yet known, so no multi-hop punch can be formed).
func (f *Fabric) HoldLocal(n mesh.NodeID) {
	f.localHold[n] = true
	f.emitted = true
	if f.bus != nil {
		f.bus.Emit(obs.Event{Kind: obs.KindPunchLocal, Node: int32(n)})
	}
}

// Step processes one cycle: computes each router's hold level from the
// punches arriving or asserted there, relays surviving targets one link
// toward their targets, and prepares the next cycle's inboxes. Call
// exactly once per simulation cycle after all Emit* calls.
func (f *Fabric) Step() {
	n := f.t.NumNodes()
	f.heldList = f.heldList[:0]
	for node := 0; node < n; node++ {
		id := mesh.NodeID(node)
		hold := f.localHold[node] || len(f.pending[node]) > 0 || len(f.inbox[node]) > 0
		if hold {
			f.heldList = append(f.heldList, id)
		}

		// Union of transiting (inbox) and newly-asserted (pending)
		// targets; relay everything not addressed to this router.
		relay := func(targets []mesh.NodeID, isRelay bool) {
			for _, t := range targets {
				if t == id {
					// Absorbed: this router is the target.
					if isRelay && f.bus != nil {
						f.bus.Emit(obs.Event{Kind: obs.KindPunchArrive, Node: int32(id)})
					}
					continue
				}
				d := topo.MustRoute(f.rf, id, t)
				di := dirIndex(d)
				before := len(f.outbox[node][di])
				f.outbox[node][di] = appendUnique(f.outbox[node][di], t)
				if isRelay && len(f.outbox[node][di]) > before {
					f.stats.RelayedTargets++
				}
				if f.bus != nil && before > 0 && len(f.outbox[node][di]) > before {
					// The channel register already carried a target: this
					// is a Table-1 merge.
					f.bus.Emit(obs.Event{Kind: obs.KindPunchMerge, Node: int32(id),
						Dir: int8(mesh.LinkDirections[di]), Dst: int32(t)})
				}
			}
		}
		if !f.faultDropRelays {
			relay(f.inbox[node], true)
		}
		relay(f.pending[node], false)

		f.hold[node] = hold
		if hold && f.bus != nil {
			f.bus.Emit(obs.Event{Kind: obs.KindPunchHold, Node: int32(id)})
		}
	}

	// Deliver: outboxes become neighbours' inboxes for the next cycle.
	for node := 0; node < n; node++ {
		f.inbox[node] = f.inbox[node][:0]
	}
	f.inboxAny = false
	for node := 0; node < n; node++ {
		id := mesh.NodeID(node)
		for di := 0; di < mesh.NumLinkDirs; di++ {
			out := f.outbox[node][di]
			if len(out) == 0 {
				continue
			}
			f.stats.ChannelCycles++
			if f.acct != nil {
				f.acct.PunchHop(node)
			}
			if f.verify {
				f.checkEncodable(node, di, out)
			}
			nb := f.t.Neighbor(id, mesh.LinkDirections[di])
			if nb == mesh.Invalid {
				// A target beyond a fabric edge is impossible under minimal
				// routing toward a valid node; drop defensively.
				f.outbox[node][di] = out[:0]
				continue
			}
			for _, t := range out {
				f.inbox[nb] = appendUnique(f.inbox[nb], t)
			}
			f.inboxAny = true
			f.outbox[node][di] = out[:0]
		}
		f.pending[node] = f.pending[node][:0]
		f.localHold[node] = false
		f.strictUsed[node] = [mesh.NumLinkDirs]bool{}
	}
	f.emitted = false
}

// NeedsStep reports whether skipping this cycle's Step would change any
// observable state: an Emit*/Hold* call was made since the last Step, the
// last Step delivered inbound targets, or it computed a hold (holds are
// level signals that must be recomputed — and cleared — next cycle). When
// false, Step would be a pure no-op and the scheduler may skip it.
func (f *Fabric) NeedsStep() bool {
	return f.emitted || f.inboxAny || len(f.heldList) > 0
}

// Held returns the nodes the last Step computed a hold for. The slice is
// owned by the fabric and valid until the next Step; the scheduler uses
// it to keep punched routers in the active set.
func (f *Fabric) Held() []mesh.NodeID { return f.heldList }

// SetFaultDropRelays installs a deliberate defect: inbound punch targets
// are absorbed instead of relayed, so punch signals reach only one hop
// from their emitter. It exists solely so the punch-nonblocking invariant
// can be demonstrated against a real failure; see config.Faults.
func (f *Fabric) SetFaultDropRelays(v bool) { f.faultDropRelays = v }

// Hold reports whether node n must be awake this cycle because a punch
// named or transited it (valid after Step).
func (f *Fabric) Hold(n mesh.NodeID) bool { return f.hold[n] }

// InboxTargets returns the targets currently inbound at node n (for tests
// and debugging). The returned slice is owned by the fabric.
func (f *Fabric) InboxTargets(n mesh.NodeID) []mesh.NodeID { return f.inbox[n] }

func dirIndex(d mesh.Direction) int {
	for i, ld := range mesh.LinkDirections {
		if ld == d {
			return i
		}
	}
	panic(fmt.Sprintf("core: direction %v is not a link direction", d))
}

func appendUnique(s []mesh.NodeID, t mesh.NodeID) []mesh.NodeID {
	for _, v := range s {
		if v == t {
			return s
		}
	}
	return append(s, t)
}
