package core

import (
	"testing"

	"powerpunch/internal/mesh"
)

func newFab(hops int) (*mesh.Mesh, *Fabric) {
	m := mesh.New(8, 8)
	return m, NewFabric(m, hops, false, nil)
}

func TestTargetedRouterPaperExamples(t *testing.T) {
	m := mesh.New(8, 8)
	// Section 4.1: "if a packet has source R0, destination R7 and is
	// currently in R3, then R6 is the targeted router".
	if got := TargetedRouter(m, 3, 7, 3); got != 6 {
		t.Errorf("TargetedRouter(3,7,3) = %d, want 6", got)
	}
	// Step 1: "a packet currently at R26 with destination R31 knows
	// precisely that the targeted router is R29".
	if got := TargetedRouter(m, 26, 31, 3); got != 29 {
		t.Errorf("TargetedRouter(26,31,3) = %d, want 29", got)
	}
	// At the destination: no punch.
	if got := TargetedRouter(m, 31, 31, 3); got != mesh.Invalid {
		t.Errorf("TargetedRouter at destination = %d, want Invalid", got)
	}
	// Destination closer than the hop slack: target the destination.
	if got := TargetedRouter(m, 26, 28, 3); got != 28 {
		t.Errorf("TargetedRouter(26,28,3) = %d, want 28", got)
	}
}

func TestPunchPropagatesOneHopPerCycle(t *testing.T) {
	// A punch emitted at R26 toward R29 must hold R26 in cycle 0, R27 in
	// cycle 1, R28 in cycle 2, and R29 in cycle 3 — one link per cycle,
	// waking every intermediate router implicitly (Section 4.1 step 2).
	_, f := newFab(3)
	f.EmitSource(26, 31) // target = 29
	f.Step()             // cycle 0 processed
	if !f.Hold(26) {
		t.Error("cycle 0: source router must be held")
	}
	f.Step()
	if !f.Hold(27) {
		t.Error("cycle 1: hop-1 router must be held")
	}
	f.Step()
	if !f.Hold(28) {
		t.Error("cycle 2: hop-2 router must be held")
	}
	f.Step()
	if !f.Hold(29) {
		t.Error("cycle 3: targeted router must be held")
	}
	// The punch is absorbed at its target: R30 must never see it.
	f.Step()
	if f.Hold(30) {
		t.Error("punch must be absorbed at the targeted router")
	}
}

func TestPunchFollowsXYTurn(t *testing.T) {
	// Packet at 27 destined to 21 (paper: path 27->28->29->21, X then
	// Y-). The punch must turn with the path.
	_, f := newFab(3)
	f.EmitSource(27, 21) // target = 21 itself (3 hops)
	f.Step()
	f.Step()
	if !f.Hold(28) {
		t.Error("hop 1 (28) not held")
	}
	f.Step()
	if !f.Hold(29) {
		t.Error("hop 2 (29) not held")
	}
	f.Step()
	if !f.Hold(21) {
		t.Error("target (21) not held after Y turn")
	}
}

func TestLevelSemanticsKeepDownstreamHeld(t *testing.T) {
	// Re-emitting each cycle (a resident, possibly stalled packet) keeps
	// the whole 3-hop-ahead window held every cycle.
	_, f := newFab(3)
	for cyc := 0; cyc < 6; cyc++ {
		f.EmitSource(26, 31)
		f.Step()
	}
	for _, n := range []mesh.NodeID{26, 27, 28, 29} {
		if !f.Hold(n) {
			t.Errorf("router %d not held under level semantics", n)
		}
	}
}

func TestMergeIsLossless(t *testing.T) {
	// Two punches sharing the channel 27->28 in the same cycle must both
	// reach their targets (contention-free merging, Section 4.1).
	_, f := newFab(3)
	for cyc := 0; cyc < 5; cyc++ {
		f.EmitSource(26, 36) // target 36: path 26,27,28,36
		f.EmitSource(27, 21) // target 21: path 27,28,29,21
		f.Step()
	}
	for _, n := range []mesh.NodeID{27, 28, 29, 36, 21} {
		if !f.Hold(n) {
			t.Errorf("router %d not held after merge", n)
		}
	}
}

func TestEmitLocalHoldsSourceAndPunchesAhead(t *testing.T) {
	_, f := newFab(3)
	f.EmitLocal(0, 7)
	f.Step()
	if !f.Hold(0) {
		t.Error("EmitLocal must hold the local router")
	}
	f.Step()
	if !f.Hold(1) {
		t.Error("EmitLocal must start the multi-hop punch")
	}
}

func TestHoldLocalOnly(t *testing.T) {
	_, f := newFab(3)
	f.HoldLocal(5)
	f.Step()
	if !f.Hold(5) {
		t.Error("HoldLocal must hold")
	}
	f.Step()
	for n := mesh.NodeID(0); n < 64; n++ {
		if f.Hold(n) {
			t.Errorf("slack-2 hold must not propagate (router %d held)", n)
		}
	}
}

func TestShortPathPunch(t *testing.T) {
	// One-hop packet: the punch targets the destination directly.
	_, f := newFab(3)
	f.EmitSource(0, 1)
	f.Step()
	f.Step()
	if !f.Hold(1) {
		t.Error("one-hop target not held")
	}
}

func TestStrictModeDropsSecondSourcePunchSameChannel(t *testing.T) {
	m := mesh.New(8, 8)
	f := NewFabric(m, 3, true, nil)
	// Two new punches from the same router out the same (X+) channel in
	// one cycle: strict hardware can encode only one new signal per
	// emitter per cycle.
	f.EmitSource(27, 31) // target 30, via X+
	f.EmitSource(27, 21) // target 21, via X+ too
	if got := f.Stats().StrictDrops; got != 1 {
		t.Errorf("StrictDrops = %d, want 1", got)
	}
	// Different channels are independent.
	f.EmitSource(27, 59) // Y+ channel
	if got := f.Stats().StrictDrops; got != 1 {
		t.Errorf("cross-channel emission dropped: %d", got)
	}
}

func TestRelaysAreNeverDroppedInStrictMode(t *testing.T) {
	m := mesh.New(8, 8)
	f := NewFabric(m, 3, true, nil)
	for cyc := 0; cyc < 5; cyc++ {
		f.EmitSource(25, 29) // target 28 (3 hops)
		f.EmitSource(26, 30) // target 29
		f.Step()
	}
	for _, n := range []mesh.NodeID{28, 29} {
		if !f.Hold(n) {
			t.Errorf("strict mode lost a relayed punch (router %d)", n)
		}
	}
}

func TestFabricStatsCount(t *testing.T) {
	_, f := newFab(3)
	f.EmitSource(26, 31)
	f.Step()
	s := f.Stats()
	if s.SourceEmissions != 1 {
		t.Errorf("SourceEmissions = %d", s.SourceEmissions)
	}
	if s.ChannelCycles == 0 {
		t.Error("ChannelCycles not counted")
	}
}

func TestNewFabricPanicsOnBadHops(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFabric(mesh.New(4, 4), 0, false, nil)
}

func TestVerifyEncodableCatchesIdealizedOverflow(t *testing.T) {
	// In non-strict mode, two same-cycle source punches from one router
	// out the same channel form a set the Table-1 hardware cannot
	// encode; verification must catch it.
	m := mesh.New(8, 8)
	f := NewFabric(m, 3, false, nil)
	f.SetVerifyEncodable(true)
	f.EmitSource(27, 31) // target 30 via X+
	f.EmitSource(27, 21) // target 21 via X+ — {30,21} is not in the code book
	defer func() {
		if recover() == nil {
			t.Error("expected unencodable-set panic in idealized mode")
		}
	}()
	f.Step()
}

func TestVerifyEncodablePassesStrictFabric(t *testing.T) {
	m := mesh.New(8, 8)
	f := NewFabric(m, 3, true, nil)
	f.SetVerifyEncodable(true)
	for cyc := 0; cyc < 10; cyc++ {
		f.EmitSource(27, 31)
		f.EmitSource(26, 36)
		f.EmitSource(25, 29)
		f.Step() // must not panic
	}
	if len(f.InboxTargets(30)) > 3 {
		t.Error("unexpected inbox blowup")
	}
	if f.Hops() != 3 {
		t.Error("Hops accessor")
	}
}
