package core

import "powerpunch/internal/config"

// defaultTestConfig returns the paper's default configuration for area
// tests without creating an import cycle in test helpers.
func defaultTestConfig() config.Config { return config.Default() }
