package experiments

import (
	"fmt"
	"strings"

	"powerpunch/internal/config"
	"powerpunch/internal/network"
	"powerpunch/internal/parsec"
	"powerpunch/internal/traffic"
)

// AblationPoint is one design-choice variation of PowerPunch-PG measured
// under uniform traffic at PARSEC-average load.
type AblationPoint struct {
	Label       string
	AvgLatency  float64
	WakeWait    float64
	StaticSaved float64
}

// RunAblation exercises the design choices DESIGN.md calls out:
// punch hop-count (2/3/4), the punch idle timeout (2 vs ConvOpt's 4),
// and strict single-signal-per-emitter encoding (the Table 1 hardware
// exactly) vs the idealized lossless merge.
func RunAblation(f Fidelity, seed int64) ([]AblationPoint, error) {
	if seed == 0 {
		seed = 1
	}
	type variant struct {
		label string
		mut   func(*config.Config)
	}
	variants := []variant{
		{"hops=2", func(c *config.Config) { c.PunchHops = 2 }},
		{"hops=3 (paper)", func(c *config.Config) { c.PunchHops = 3 }},
		{"hops=4", func(c *config.Config) { c.PunchHops = 4 }},
		{"timeout=4", func(c *config.Config) { c.PunchIdleTimeout = 4 }},
		{"timeout=8", func(c *config.Config) { c.PunchIdleTimeout = 8 }},
		{"strict encoding", func(c *config.Config) { c.PunchStrict = true }},
		{"no NI slack (Signal)", func(c *config.Config) { c.Scheme = config.PowerPunchSignal }},
		{"ConvOpt-PG", func(c *config.Config) { c.Scheme = config.ConvOptPG }},
		{"Plain-PG (no opts)", func(c *config.Config) { c.Scheme = config.PlainPG }},
		{"adaptive throttle", func(c *config.Config) { c.AdaptiveThrottle = true }},
	}
	var out []AblationPoint
	for _, v := range variants {
		cfg := config.Default().WithScheme(config.PowerPunchPG)
		cfg.WarmupCycles = f.warmupCycles()
		cfg.MeasureCycles = f.measureCycles()
		v.mut(&cfg)
		cfg = applyOverrides(cfg)
		net, err := network.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.label, err)
		}
		drv := traffic.NewSynthetic(traffic.UniformRandom{}, parsec.AverageLoadFlitsPerNodeCycle, seed)
		res := net.Run(drv)
		out = append(out, AblationPoint{
			Label:       v.label,
			AvgLatency:  res.Summary.AvgLatency,
			WakeWait:    res.Summary.AvgWakeWait,
			StaticSaved: res.StaticSaved,
		})
	}
	return out, nil
}

// FormatAblation renders the ablation table.
func FormatAblation(points []AblationPoint) string {
	t := &table{header: []string{"variant", "avg latency", "wakeup wait", "static saved"}}
	for _, p := range points {
		t.add(p.Label, fmtF(p.AvgLatency), fmtF(p.WakeWait), fmtPct(p.StaticSaved))
	}
	var b strings.Builder
	b.WriteString("Ablation: PowerPunch-PG design choices (uniform @ PARSEC-average load)\n")
	b.WriteString(t.String())
	b.WriteString("expected: hops=2 under-covers Twakeup=8 (higher wait); hops=4 wakes routers\n" +
		"earlier than needed (lower savings); longer timeouts trade savings for latency;\n" +
		"strict encoding matches the idealized merge closely (contention is rare).\n")
	return b.String()
}
