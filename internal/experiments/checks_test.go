package experiments

import (
	"testing"

	"powerpunch/internal/config"
)

// TestAllDriversCleanUnderChecks runs every experiment driver with the
// cycle-level invariant engine enabled (EnableChecks, the CLI's -checks
// flag). A violation panics with a replayable artifact, so a green run
// here certifies that all four schemes of the paper's evaluation —
// plus the Plain-PG ablation baseline — satisfy every invariant across
// the full driver matrix: full-system workloads, synthetic load sweeps,
// the sensitivity study, scalability, ablation, and the heatmap. The
// shapes are reduced (one benchmark, few rates) but every code path a
// figure exercises is covered, including in -short mode: this test is
// part of the tier-2 correctness gate (see Makefile `check`).
func TestAllDriversCleanUnderChecks(t *testing.T) {
	EnableChecks = true
	defer func() { EnableChecks = false }()

	t.Run("fullsystem", func(t *testing.T) {
		if _, err := RunFullSystem(FullSystemOptions{
			Fidelity: Quick, Benchmarks: []string{"swaptions"}, Seed: 2,
		}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("loadsweep", func(t *testing.T) {
		patterns, rates := []string{"uniform", "transpose"}, []float64{0.01, 0.04}
		if raceEnabled {
			patterns, rates = []string{"uniform"}, []float64{0.02}
		}
		if _, err := RunLoadSweep(LoadSweepOptions{
			Fidelity: Quick,
			Patterns: patterns,
			Rates:    rates,
			Schemes:  config.Schemes,
		}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("sensitivity", func(t *testing.T) {
		if testing.Short() || raceEnabled {
			// The full case matrix is the slowest driver; its scheme
			// coverage is duplicated by loadsweep+scalability+ablation.
			t.Skip("sensitivity matrix covered by the full run")
		}
		if _, err := RunSensitivity(SensitivityOptions{Fidelity: Quick, Seed: 2, PunchHops: 3}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("scalability", func(t *testing.T) {
		if raceEnabled {
			// The 16x16 mesh dominates; the schemes it runs are already
			// checked on 8x8 above.
			t.Skip("race build: scalability covered by the full run")
		}
		if _, err := RunScalability(Quick, 2); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("ablation", func(t *testing.T) {
		if _, err := RunAblation(Quick, 2); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("heatmap", func(t *testing.T) {
		for _, s := range []config.Scheme{config.ConvOptPG, config.PowerPunchPG} {
			if _, err := RunHeatmap(s, Quick, 2); err != nil {
				t.Fatal(err)
			}
		}
	})
}
