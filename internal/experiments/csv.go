package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"powerpunch/internal/config"
)

// WriteFullSystemCSV emits the complete Figure 7-11 dataset as CSV
// (one row per benchmark x scheme), plot-ready.
func WriteFullSystemCSV(w io.Writer, results []BenchResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"benchmark", "scheme", "avg_latency_cycles", "exec_time_cycles",
		"blocked_routers_per_pkt", "wakeup_wait_cycles_per_pkt",
		"dynamic_J", "static_J", "overhead_J", "static_saved_frac", "packets",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, br := range results {
		for _, s := range config.Schemes {
			m := br.PerScheme[s]
			row := []string{
				br.Bench, s.String(),
				f(m.AvgLatency), strconv.FormatInt(m.ExecTime, 10),
				f(m.Blocked), f(m.WakeWait),
				e(m.Energy.Dynamic), e(m.Energy.Static), e(m.Energy.Overhead),
				f(m.StaticSaved), strconv.FormatInt(m.Packets, 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLoadSweepCSV emits the Figure 12 dataset as CSV.
func WriteLoadSweepCSV(w io.Writer, points []LoadPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"pattern", "rate_flits_node_cycle", "scheme",
		"avg_latency_cycles", "throughput_flits_node_cycle", "static_power_W", "saturated",
		"ni_queue_cycles", "wakeup_ni_cycles", "wakeup_net_cycles", "transit_cycles",
	}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			p.Pattern, f(p.Rate), p.Scheme.String(),
			f(p.AvgLatency), f(p.Throughput), e(p.StaticW), strconv.FormatBool(p.Saturated),
			f(p.NIQueue), f(p.WakeupNI), f(p.WakeupNet), f(p.Transit),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSensitivityCSV emits the Figure 13 dataset as CSV.
func WriteSensitivityCSV(w io.Writer, points []SensitivityPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"router_stages", "wakeup_latency", "punch_hops", "scheme", "avg_latency_cycles"}); err != nil {
		return err
	}
	for _, p := range points {
		for s, lat := range p.Latency {
			if err := cw.Write([]string{
				strconv.Itoa(p.RouterStages), strconv.Itoa(p.WakeupLatency),
				strconv.Itoa(p.PunchHops), s.String(), f(lat),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
func e(v float64) string { return fmt.Sprintf("%.6e", v) }
