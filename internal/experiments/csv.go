package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"powerpunch/internal/config"
	"powerpunch/internal/network"
	"powerpunch/internal/power"
)

// energyHeader returns one e_<component>_J column per power component,
// in power.Component order; both sweep CSVs append these columns.
func energyHeader() []string {
	names := power.ComponentNames()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = "e_" + n + "_J"
	}
	return out
}

// energyCells formats the per-component total energies in the same
// order as energyHeader.
func energyCells(b network.EnergyBreakdown) []string {
	out := make([]string, power.NumComponents)
	for c := power.Component(0); c < power.NumComponents; c++ {
		out[c] = e(b.Component(c).Total())
	}
	return out
}

// WriteFullSystemCSV emits the complete Figure 7-11 dataset as CSV
// (one row per benchmark x scheme), plot-ready.
func WriteFullSystemCSV(w io.Writer, results []BenchResult) error {
	cw := csv.NewWriter(w)
	header := append([]string{
		"benchmark", "scheme", "avg_latency_cycles", "exec_time_cycles",
		"blocked_routers_per_pkt", "wakeup_wait_cycles_per_pkt",
		"dynamic_J", "static_J", "overhead_J", "static_saved_frac", "packets",
	}, energyHeader()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, br := range results {
		for _, s := range config.Schemes {
			m := br.PerScheme[s]
			row := append([]string{
				br.Bench, s.String(),
				f(m.AvgLatency), strconv.FormatInt(m.ExecTime, 10),
				f(m.Blocked), f(m.WakeWait),
				e(m.Energy.Dynamic), e(m.Energy.Static), e(m.Energy.Overhead),
				f(m.StaticSaved), strconv.FormatInt(m.Packets, 10),
			}, energyCells(m.Components)...)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLoadSweepCSV emits the Figure 12 dataset as CSV.
func WriteLoadSweepCSV(w io.Writer, points []LoadPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{
		"pattern", "rate_flits_node_cycle", "scheme",
		"avg_latency_cycles", "throughput_flits_node_cycle", "static_power_W", "saturated",
		"ni_queue_cycles", "wakeup_ni_cycles", "wakeup_net_cycles", "transit_cycles",
	}, energyHeader()...)); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write(append([]string{
			p.Pattern, f(p.Rate), p.Scheme.String(),
			f(p.AvgLatency), f(p.Throughput), e(p.StaticW), strconv.FormatBool(p.Saturated),
			f(p.NIQueue), f(p.WakeupNI), f(p.WakeupNet), f(p.Transit),
		}, energyCells(p.Energy)...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSensitivityCSV emits the Figure 13 dataset as CSV.
func WriteSensitivityCSV(w io.Writer, points []SensitivityPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"router_stages", "wakeup_latency", "punch_hops", "scheme", "avg_latency_cycles"}); err != nil {
		return err
	}
	for _, p := range points {
		for s, lat := range p.Latency {
			if err := cw.Write([]string{
				strconv.Itoa(p.RouterStages), strconv.Itoa(p.WakeupLatency),
				strconv.Itoa(p.PunchHops), s.String(), f(lat),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
func e(v float64) string { return fmt.Sprintf("%.6e", v) }
