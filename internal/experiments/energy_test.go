package experiments

import (
	"math"
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/power"
)

// relDiff returns |a-b| / max(|a|,|b|), 0 when both are zero.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// TestEnergyComponentsReconcileWithAggregate is the aggregate-oracle
// differential test of the per-component energy model: for every
// benchmark x scheme of the full-system comparison, the counter-derived
// component breakdown must sum — class by class — to the same numbers
// as the float-accumulated aggregate accountant, within summation
// tolerance. The aggregate is seed-locked by the golden suite, so this
// test pins the component taxonomy to the paper's numbers without
// duplicating them.
func TestEnergyComponentsReconcileWithAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system grid is slow")
	}
	results, err := RunFullSystem(FullSystemOptions{
		Fidelity:     Quick,
		Seed:         1,
		InstrPerCore: 3_000, // the grid matters, not the run length
	})
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	for _, br := range results {
		for _, s := range config.Schemes {
			m := br.PerScheme[s]
			var dyn, stat, ovh float64
			for c := power.Component(0); c < power.NumComponents; c++ {
				ce := m.Components.Component(c)
				dyn += ce.Dynamic
				stat += ce.Static
				ovh += ce.Overhead
			}
			checks := []struct {
				name     string
				got, ref float64
			}{
				{"dynamic", dyn, m.Energy.Dynamic},
				{"static", stat, m.Energy.Static},
				{"overhead", ovh, m.Energy.Overhead},
				{"total", dyn + stat + ovh, m.Energy.Total()},
			}
			for _, c := range checks {
				if rd := relDiff(c.got, c.ref); rd > tol {
					t.Errorf("%s/%v: %s: components sum to %.12e, aggregate %.12e (rel diff %.3e > %.0e)",
						br.Bench, s, c.name, c.got, c.ref, rd, tol)
				}
			}
			if m.Components.Version != 1 {
				t.Errorf("%s/%v: energy breakdown version = %d, want 1", br.Bench, s, m.Components.Version)
			}
			if m.Energy.Total() > 0 && m.Components.Total() == 0 {
				t.Errorf("%s/%v: aggregate energy %.3e but component view is empty", br.Bench, s, m.Energy.Total())
			}
		}
	}
}
