// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 6), each regenerating the corresponding
// rows/series: the four-scheme comparison on PARSEC-like full-system
// workloads (Figures 7-11), the synthetic load sweeps (Figure 12), the
// wakeup-latency sensitivity study (Figure 13), the punch-signal
// encoding (Table 1), the configuration summary (Table 2), and the
// scalability and area analyses of Section 6.6.
//
// Absolute numbers come from this repository's simulator and power
// model, not the authors' gem5/DSENT testbed; the quantities to compare
// are the shapes: which scheme wins, by roughly what factor, and where
// the crossovers fall. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"powerpunch/internal/config"
	"powerpunch/internal/network"
	"powerpunch/internal/power"
)

// EnableChecks turns the cycle-level invariant engine (config.Checks)
// on for every run launched by the experiment drivers. Off by default:
// the engine costs simulation throughput, so it is opted into from the
// CLI (`powerpunch -checks`) and the test suite rather than paid on
// every figure regeneration.
var EnableChecks bool

// Workers sets Config.Workers for every run launched by the experiment
// drivers (`powerpunch -workers N`): 0 or 1 keeps the serial engine,
// N > 1 runs each simulation on the sharded parallel tick engine. Runs
// stay bit-identical to serial either way; on multi-core hosts the
// parallel engine shortens the wall time of the biggest fabrics. Note
// the drivers already run independent simulations concurrently via
// parallelFor, so intra-run workers mostly pay off when a single large
// run dominates (e.g. `-fig scale` at 16x16).
var Workers int

// fabric is the package-wide topology override set by SetFabric. The
// zero value means "paper default" (the 8x8 mesh from config.Default),
// so drivers are unaffected until the CLI asks for another fabric.
var fabric struct {
	set           bool
	topology      string
	width, height int
}

// SetFabric selects the fabric every simulation-backed experiment
// driver runs on (`powerpunch -topo torus -width 4 -height 4`). The
// combination is validated against the paper's default parameters up
// front so a bad topology fails once, loudly, instead of once per
// (pattern, rate, scheme) job. The analytic paper artifacts — Table 1,
// Table 2, the area model — stay on the mesh they describe.
func SetFabric(topology string, width, height int) error {
	cfg := config.Default()
	cfg.Topology, cfg.Width, cfg.Height = topology, width, height
	if err := cfg.Validate(); err != nil {
		return err
	}
	fabric.set = true
	fabric.topology, fabric.width, fabric.height = topology, width, height
	return nil
}

// FullTick switches every run launched by the experiment drivers onto
// the full-walk scheduler (`powerpunch -fulltick`). Results are
// bit-identical to the default active-set scheduler either way; the
// flag exists so sweeps can cross-check the two schedulers end to end.
var FullTick bool

// powerPreset is the package-wide power-calibration override set by
// SetPowerPreset. Empty keeps each run's configured preset (the paper
// calibration by default).
var powerPreset string

// SetPowerPreset selects the power-model calibration every
// simulation-backed experiment driver runs with (`powerpunch
// -power-preset dsent-22nm`). Unknown names fail up front with
// config's typed error, once and loudly, instead of once per job.
// Note the golden suite's committed numbers are captured against the
// default paper-hpca15 preset; regenerating figures under another
// calibration is exploratory by design.
func SetPowerPreset(name string) error {
	if _, ok := power.PresetByName(name); !ok {
		return &config.UnknownPowerPresetError{Name: name, Known: power.Presets()}
	}
	powerPreset = name
	return nil
}

// applyOverrides stamps the package-wide check and fabric settings onto
// one run's configuration; every driver funnels its config through here.
func applyOverrides(cfg config.Config) config.Config {
	if EnableChecks {
		cfg.Checks = true
	}
	if Workers > 1 {
		cfg.Workers = Workers
	}
	if FullTick {
		cfg.FullTick = true
	}
	if fabric.set {
		cfg.Topology = fabric.topology
		cfg.Width, cfg.Height = fabric.width, fabric.height
	}
	if powerPreset != "" {
		cfg.PowerPreset = powerPreset
	}
	return cfg
}

// Fidelity scales experiment cost: Quick keeps unit-test and benchmark
// runtimes low; Full reproduces the paper-quality statistics.
type Fidelity int

// Fidelity levels.
const (
	Quick Fidelity = iota
	Full
)

// instrPerCore returns the per-core instruction budget for full-system
// runs at fidelity f.
func (f Fidelity) instrPerCore() int64 {
	if f == Full {
		return 60_000
	}
	return 12_000
}

// measureCycles returns the synthetic measurement window at fidelity f.
func (f Fidelity) measureCycles() int64 {
	if f == Full {
		return 40_000
	}
	return 8_000
}

// warmupCycles returns the synthetic warmup window at fidelity f.
func (f Fidelity) warmupCycles() int64 {
	if f == Full {
		return 8_000
	}
	return 2_000
}

// SchemeMetrics are the per-scheme measurements every full-system
// experiment shares.
type SchemeMetrics struct {
	AvgLatency  float64                 // cycles (Figure 7 / 12 / 13)
	ExecTime    int64                   // cycles (Figure 8)
	Blocked     float64                 // powered-off routers per packet (Figure 9)
	WakeWait    float64                 // wakeup-wait cycles per packet (Figure 10)
	Energy      power.Breakdown         // float-accumulated aggregate (the regression oracle)
	Components  network.EnergyBreakdown // counter-derived per-component split (DSENT-style)
	StaticSaved float64                 // fraction of No-PG static energy saved
	AvgStaticW  float64                 // watts (Figure 12, lower row)
	Packets     int64
	Drained     bool

	// Wakeup split from the counters probe — only populated when
	// FullSystemOptions.Observe is set. The exposed-vs-hidden ratio is
	// the paper's §6 instrument for the "~1 vs ~4 gated routers per
	// packet" contrast between PunchPG and ConvOpt-PG.
	PunchWakeups int64   // wake windows triggered by punch signals
	ConvWakeups  int64   // wake windows triggered conventionally
	HiddenFrac   float64 // fraction of wakeup cycles hidden from traffic
}

// baseConfig returns the paper's default configuration adjusted for
// full-system runs (no warmup: execution time is measured from cycle 0).
func baseConfig() config.Config {
	cfg := config.Default()
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	return cfg
}

// table is a minimal text-table builder shared by the experiment
// formatters.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Registry maps experiment IDs to human descriptions, for the CLI.
func Registry() []struct{ ID, Description string } {
	return []struct{ ID, Description string }{
		{"table1", "Table 1: punch-signal encoding of an X+ channel (22 sets, 5 bits)"},
		{"table2", "Table 2: key simulation parameters"},
		{"fig7", "Figure 7: average packet latency per PARSEC benchmark, 4 schemes"},
		{"fig8", "Figure 8: execution time normalized to No-PG"},
		{"fig9", "Figure 9: powered-off routers encountered per packet"},
		{"fig10", "Figure 10: cycles per packet waiting for router wakeup"},
		{"fig11", "Figure 11: router energy breakdown (dynamic/static/overhead)"},
		{"golden", "Section 6 headline claims vs the committed golden baseline"},
		{"fig12", "Figure 12: latency & static power across the full load range"},
		{"fig13", "Figure 13: wakeup-latency and pipeline sensitivity"},
		{"scale", "Section 6.6(2): scalability across 4x4/8x8/16x16 meshes"},
		{"area", "Section 6.6(1): punch wiring/logic area overhead"},
		{"ablation", "Extension: punch hop-count / timeout / strict-encoding / baseline ablation"},
		{"heatmap", "Extension: per-router gated-time heatmap under hotspot traffic"},
	}
}

// sortedSchemeNames returns scheme column labels in presentation order.
func schemeLabels() []string {
	out := make([]string, len(config.Schemes))
	for i, s := range config.Schemes {
		out[i] = s.String()
	}
	return out
}

// fmtF formats a float with 2 decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtPct formats a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// keysSorted returns map keys sorted (helper for deterministic output).
func keysSorted[K ~string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
