package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"powerpunch/internal/config"
)

// Tiny fidelity overrides keep these integration smoke tests fast; the
// real statistics come from cmd/powerpunch and the benchmarks.

func TestTable1Output(t *testing.T) {
	out := FormatTable1()
	for _, want := range []string{"22", "5-bit", "{ 21, 36 }", "X=5 bits, Y=2 bits"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestTable2Output(t *testing.T) {
	out := FormatTable2()
	for _, want := range []string{"8x8 mesh", "128 bits/cycle", "3 VNs", "8 cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestAreaOutput(t *testing.T) {
	out := FormatArea()
	if !strings.Contains(out, "area overhead") {
		t.Error("area output malformed")
	}
}

func TestFullSystemExperimentSmoke(t *testing.T) {
	res, err := RunFullSystem(FullSystemOptions{
		Fidelity:   Quick,
		Benchmarks: []string{"swaptions"},
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].PerScheme) != len(FullSystemSchemes) {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	m := res[0].PerScheme
	if !m[config.NoPG].Drained || !m[config.PowerPunchPG].Drained || !m[config.FlyOverPG].Drained {
		t.Error("runs did not drain")
	}
	// FlyOver gates aggressively (ConvOpt-style wake-on-demand plus
	// bypass-suppressed wakeups), so its savings must be substantial.
	if m[config.FlyOverPG].StaticSaved < 0.5 {
		t.Errorf("FlyOver-PG static savings %.2f implausibly low", m[config.FlyOverPG].StaticSaved)
	}
	// The paper's headline ordering on any benchmark.
	if m[config.ConvOptPG].AvgLatency <= m[config.NoPG].AvgLatency {
		t.Error("ConvOpt must pay a latency penalty")
	}
	if m[config.PowerPunchPG].AvgLatency >= m[config.ConvOptPG].AvgLatency {
		t.Error("PowerPunch-PG must beat ConvOpt on latency")
	}
	if m[config.PowerPunchPG].StaticSaved < 0.5 {
		t.Errorf("PowerPunch-PG static savings %.2f implausibly low", m[config.PowerPunchPG].StaticSaved)
	}

	for _, format := range []func([]BenchResult) string{
		FormatFig7, FormatFig8, FormatFig9, FormatFig10, FormatFig11,
	} {
		if out := format(res); !strings.Contains(out, "swaptions") {
			t.Error("formatter dropped the benchmark row")
		}
	}
}

func TestLoadSweepSmoke(t *testing.T) {
	pts, err := RunLoadSweep(LoadSweepOptions{
		Fidelity: Quick,
		Patterns: []string{"uniform"},
		Rates:    []float64{0.01, 0.05},
		Schemes:  []config.Scheme{config.NoPG, config.PowerPunchPG},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	out := FormatFig12(pts, []config.Scheme{config.NoPG, config.PowerPunchPG})
	if !strings.Contains(out, "uniform") {
		t.Error("fig12 output malformed")
	}
	// Static power of the PG scheme must undercut No-PG at low load.
	var noPG, punch float64
	for _, p := range pts {
		if p.Rate == 0.01 {
			switch p.Scheme {
			case config.NoPG:
				noPG = p.StaticW
			case config.PowerPunchPG:
				punch = p.StaticW
			}
		}
	}
	if punch >= noPG {
		t.Errorf("PG static power %.3f >= No-PG %.3f at low load", punch, noPG)
	}
}

func TestScalabilitySmoke(t *testing.T) {
	pts, err := RunScalability(Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("sizes = %d", len(pts))
	}
	for _, p := range pts {
		if p.Reduction <= 0 {
			t.Errorf("%dx%d: PowerPunch must reduce latency vs ConvOpt (got %.2f%%)",
				p.Width, p.Width, p.Reduction*100)
		}
	}
	// Section 6.6: the cumulative blocking penalty removed by Power
	// Punch grows with network size.
	if pts[2].SavedCycles <= pts[0].SavedCycles {
		t.Errorf("absolute cycles saved should grow with size: 4x4=%.1f 16x16=%.1f",
			pts[0].SavedCycles, pts[2].SavedCycles)
	}
	if out := FormatScalability(pts); !strings.Contains(out, "16x16") {
		t.Error("scalability output malformed")
	}
}

func TestRegistryCoversAllPaperArtifacts(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "scale", "area"} {
		if !ids[want] {
			t.Errorf("experiment registry missing %s", want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &table{header: []string{"a", "bb"}}
	tb.add("1", "2")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Errorf("table: %q", out)
	}
}

func TestCSVWriters(t *testing.T) {
	res, err := RunFullSystem(FullSystemOptions{Fidelity: Quick, Benchmarks: []string{"swaptions"}})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteFullSystemCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 1+4 { // header + 4 schemes
		t.Errorf("fullsystem csv has %d lines", lines)
	}

	pts, err := RunLoadSweep(LoadSweepOptions{
		Fidelity: Quick, Patterns: []string{"uniform"}, Rates: []float64{0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteLoadSweepCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "uniform") {
		t.Error("loadsweep csv missing data")
	}

	sens := []SensitivityPoint{{RouterStages: 3, WakeupLatency: 8, PunchHops: 3,
		Latency: map[config.Scheme]float64{config.NoPG: 30}}}
	buf.Reset()
	if err := WriteSensitivityCSV(&buf, sens); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No-PG") {
		t.Error("sensitivity csv missing data")
	}
}

func TestHeatmapShowsSpatialGating(t *testing.T) {
	h, err := RunHeatmap(config.PowerPunchPG, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.GatedFrac) != 64 {
		t.Fatalf("heatmap size %d", len(h.GatedFrac))
	}
	// The hotspot's column neighborhood must be warmer (less gated) than
	// the far corner.
	hot := h.GatedFrac[1*8+1]
	corner := h.GatedFrac[63]
	if hot >= corner {
		t.Errorf("hotspot router gated %.2f >= far corner %.2f", hot, corner)
	}
	if out := FormatHeatmap(h); !strings.Contains(out, "heatmap") {
		t.Error("heatmap formatting")
	}
}

func TestAblationIncludesBaselines(t *testing.T) {
	pts, err := RunAblation(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, p := range pts {
		labels[p.Label] = true
	}
	for _, want := range []string{"hops=2", "hops=3 (paper)", "hops=4", "strict encoding", "Plain-PG (no opts)"} {
		if !labels[want] {
			t.Errorf("ablation missing variant %q", want)
		}
	}
	if out := FormatAblation(pts); !strings.Contains(out, "hops=3") {
		t.Error("ablation formatting")
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	// Force the concurrent path even on single-CPU machines.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, n := range []int{0, 1, 3, 17, 100} {
		hits := make([]int32, n)
		var mu sync.Mutex
		parallelFor(n, func(i int) {
			mu.Lock()
			hits[i]++
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestParallelForChunkCount(t *testing.T) {
	// The dispatch chunk count is pinned to chunksPerWorker chunks per
	// worker (workers themselves sized by runtime.GOMAXPROCS), capped
	// at n so no chunk is empty.
	cases := []struct {
		n, workers, want int
	}{
		{100, 8, 32},  // 8*4, well under n
		{100, 1, 4},   // degenerate worker count still chunks
		{5, 8, 5},     // capped at n
		{32, 8, 32},   // exactly n
		{1000, 4, 16}, // scales with workers, not n
		{0, 8, 0},
	}
	for _, c := range cases {
		if got := chunksFor(c.n, c.workers); got != c.want {
			t.Errorf("chunksFor(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
	// Chunk bounds tile [0, n) exactly: contiguous, non-empty, complete.
	for _, c := range cases {
		chunks := chunksFor(c.n, c.workers)
		prev := 0
		for k := 0; k < chunks; k++ {
			lo, hi := chunkBounds(c.n, chunks, k)
			if lo != prev || hi <= lo {
				t.Fatalf("chunkBounds(%d, %d, %d) = [%d, %d): not a tiling from %d",
					c.n, chunks, k, lo, hi, prev)
			}
			prev = hi
		}
		if chunks > 0 && prev != c.n {
			t.Fatalf("n=%d workers=%d: chunks cover [0, %d), want [0, %d)", c.n, c.workers, prev, c.n)
		}
	}
}

func TestParallelForPropagatesPanic(t *testing.T) {
	// Force the concurrent path even on single-CPU machines.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	var ran int32
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic in fn was swallowed")
		}
		msg, ok := v.(string)
		// Poisoning may stop earlier failing indices from running at
		// all, so any failing index is acceptable — but the message
		// must carry the index, the value, and (implicitly) the stack.
		if !ok || !strings.Contains(msg, "panicked: boom ") {
			t.Fatalf("panic value %v should carry the failing index and cause", v)
		}
	}()
	// Panic on most indices: with naive recovery the feeding goroutine
	// deadlocks once every worker has died; here workers must drain the
	// channel and parallelFor must still return (by panicking) promptly.
	parallelFor(64, func(i int) {
		atomic.AddInt32(&ran, 1)
		if i >= 7 {
			panic(fmt.Sprintf("boom %d", i))
		}
	})
	t.Fatal("parallelFor returned without panicking")
}

func TestParallelRunsAreDeterministic(t *testing.T) {
	run := func() []LoadPoint {
		pts, err := RunLoadSweep(LoadSweepOptions{
			Fidelity: Quick,
			Patterns: []string{"uniform"},
			Rates:    []float64{0.01, 0.04},
			Schemes:  []config.Scheme{config.NoPG, config.PowerPunchPG},
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across parallel runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSensitivitySmoke(t *testing.T) {
	pts, err := RunSensitivity(SensitivityOptions{Fidelity: Quick, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("cases = %d, want 6 (Figure 13)", len(pts))
	}
	for _, p := range pts {
		base := p.Latency[config.NoPG]
		if base <= 0 {
			t.Fatalf("%d-stage Twakeup=%d: no baseline latency", p.RouterStages, p.WakeupLatency)
		}
		if p.Latency[config.ConvOptPG] <= base {
			t.Errorf("%d-stage Twakeup=%d: ConvOpt (%f) should exceed No-PG (%f)",
				p.RouterStages, p.WakeupLatency, p.Latency[config.ConvOptPG], base)
		}
		if p.Latency[config.PowerPunchPG] >= p.Latency[config.ConvOptPG] {
			t.Errorf("%d-stage Twakeup=%d: PunchPG should beat ConvOpt", p.RouterStages, p.WakeupLatency)
		}
	}
	// Worst case: largest PunchPG penalty at (3-stage, Twakeup=10),
	// where the 3-hop punch's 9 cycles of slack cannot cover the wakeup.
	pen := func(p SensitivityPoint) float64 {
		return p.Latency[config.PowerPunchPG] / p.Latency[config.NoPG]
	}
	var worst SensitivityPoint
	for _, p := range pts {
		if worst.Latency == nil || pen(p) > pen(worst) {
			worst = p
		}
	}
	if worst.RouterStages != 3 || worst.WakeupLatency != 10 {
		t.Errorf("worst case at (%d-stage, Twakeup=%d), paper puts it at (3, 10)",
			worst.RouterStages, worst.WakeupLatency)
	}
	if out := FormatFig13(pts); !strings.Contains(out, "Twakeup") {
		t.Error("fig13 formatting")
	}
}

func TestDefaultRatesSpanToSaturation(t *testing.T) {
	for _, pat := range []string{"uniform", "transpose"} {
		for _, fid := range []Fidelity{Quick, Full} {
			rates := defaultRates(pat, fid)
			if len(rates) < 5 {
				t.Errorf("%s/%v: only %d rates", pat, fid, len(rates))
			}
			for i := 1; i < len(rates); i++ {
				if rates[i] <= rates[i-1] {
					t.Errorf("%s: rates not increasing: %v", pat, rates)
				}
			}
		}
	}
	if u, tr := defaultRates("uniform", Full), defaultRates("transpose", Full); u[len(u)-1] <= tr[len(tr)-1] {
		t.Error("uniform must sweep further than permutation patterns (paper Fig 12 axes)")
	}
}
