package experiments

import (
	"fmt"
	"strings"

	"powerpunch/internal/cmp"
	"powerpunch/internal/config"
	"powerpunch/internal/network"
	"powerpunch/internal/obs"
	"powerpunch/internal/parsec"
)

// FullSystemSchemes is the scheme set the full-system suite runs: the
// paper's four (config.Schemes, in presentation order) plus the
// FlyOver-style bypass scheme. Each (benchmark, scheme) cell is an
// independent same-seed simulation, so extending this list adds cells
// without perturbing the existing ones.
var FullSystemSchemes = []config.Scheme{
	config.NoPG, config.ConvOptPG, config.PowerPunchSignal, config.PowerPunchPG, config.FlyOverPG,
}

// BenchResult holds one benchmark's per-scheme comparison.
type BenchResult struct {
	Bench     string
	PerScheme map[config.Scheme]SchemeMetrics
}

// FullSystemOptions parameterizes the PARSEC-style experiments.
type FullSystemOptions struct {
	Fidelity   Fidelity
	Benchmarks []string // defaults to parsec.Benchmarks
	Seed       int64
	MaxCycles  int64 // safety bound per run
	// InstrPerCore overrides the fidelity's per-core instruction budget
	// when positive (the golden suite pins an exact budget so its
	// committed numbers stay meaningful across fidelity retuning).
	InstrPerCore int64
	// Observe attaches a counters probe to every run and fills in the
	// wakeup-split fields of SchemeMetrics (PunchWakeups, ConvWakeups,
	// HiddenFrac — the paper's §6 blocking analysis). Off by default:
	// probes cost a per-event fan-out on the hot path.
	Observe bool
}

func (o *FullSystemOptions) defaults() {
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = parsec.Benchmarks
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 5_000_000
	}
	if o.InstrPerCore == 0 {
		o.InstrPerCore = o.Fidelity.instrPerCore()
	}
}

// RunFullSystem executes every benchmark under every scheme and returns
// the complete metric set; Figures 7-11 are different projections of
// it. The (benchmark, scheme) runs are independent simulations and
// execute in parallel across GOMAXPROCS workers.
func RunFullSystem(o FullSystemOptions) ([]BenchResult, error) {
	o.defaults()
	nb, ns := len(o.Benchmarks), len(FullSystemSchemes)
	metrics := make([]SchemeMetrics, nb*ns)
	errs := make([]error, nb*ns)

	parallelFor(nb*ns, func(i int) {
		bench := o.Benchmarks[i/ns]
		s := FullSystemSchemes[i%ns]
		prof, err := parsec.Profile(bench, o.InstrPerCore)
		if err != nil {
			errs[i] = err
			return
		}
		cfg := applyOverrides(baseConfig().WithScheme(s))
		net, err := network.New(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: %s/%v: %w", bench, s, err)
			return
		}
		defer net.Close()
		var probe *obs.Counters
		if o.Observe {
			probe = &obs.Counters{}
			net.Observe(probe)
		}
		sys := cmp.NewSystem(prof, net, o.Seed)
		res := net.RunUntil(sys, o.MaxCycles)
		metrics[i] = SchemeMetrics{
			AvgLatency:  res.Summary.AvgLatency,
			ExecTime:    sys.ExecutionTime(),
			Blocked:     res.Summary.AvgBlocked,
			WakeWait:    res.Summary.AvgWakeWait,
			Energy:      res.Energy,
			Components:  res.Detail.Energy,
			StaticSaved: res.StaticSaved,
			AvgStaticW:  res.AvgStaticW,
			Packets:     res.Summary.Ejected,
			Drained:     res.Drained,
		}
		if probe != nil {
			metrics[i].PunchWakeups = probe.PunchWakes.Wakeups
			metrics[i].ConvWakeups = probe.ConvWakes.Wakeups
			metrics[i].HiddenFrac = probe.HiddenFraction()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := make([]BenchResult, nb)
	for bi, bench := range o.Benchmarks {
		br := BenchResult{Bench: bench, PerScheme: map[config.Scheme]SchemeMetrics{}}
		for si, s := range FullSystemSchemes {
			br.PerScheme[s] = metrics[bi*ns+si]
		}
		out[bi] = br
	}
	return out, nil
}

// avgOver applies f to every benchmark/scheme and returns per-scheme
// arithmetic means.
func avgOver(results []BenchResult, f func(SchemeMetrics) float64) map[config.Scheme]float64 {
	avg := map[config.Scheme]float64{}
	if len(results) == 0 {
		return avg
	}
	for _, s := range config.Schemes {
		sum := 0.0
		for _, br := range results {
			sum += f(br.PerScheme[s])
		}
		avg[s] = sum / float64(len(results))
	}
	return avg
}

// FormatFig7 renders average packet latency per benchmark (cycles), the
// paper's Figure 7.
func FormatFig7(results []BenchResult) string {
	t := &table{header: append([]string{"benchmark"}, schemeLabels()...)}
	for _, br := range results {
		row := []string{br.Bench}
		for _, s := range config.Schemes {
			row = append(row, fmtF(br.PerScheme[s].AvgLatency))
		}
		t.add(row...)
	}
	avg := avgOver(results, func(m SchemeMetrics) float64 { return m.AvgLatency })
	row := []string{"AVG"}
	for _, s := range config.Schemes {
		row = append(row, fmtF(avg[s]))
	}
	t.add(row...)

	var b strings.Builder
	b.WriteString("Figure 7: average packet latency (cycles)\n")
	b.WriteString(t.String())
	base := avg[config.NoPG]
	if base > 0 {
		fmt.Fprintf(&b, "latency increase vs No-PG: ConvOpt=%+.1f%% Signal=%+.1f%% PunchPG=%+.1f%% (paper: +69.1%%, +12.6%%, +7.9%%)\n",
			(avg[config.ConvOptPG]/base-1)*100,
			(avg[config.PowerPunchSignal]/base-1)*100,
			(avg[config.PowerPunchPG]/base-1)*100)
	}
	return b.String()
}

// FormatFig8 renders execution time normalized to No-PG, the paper's
// Figure 8.
func FormatFig8(results []BenchResult) string {
	t := &table{header: append([]string{"benchmark"}, schemeLabels()...)}
	sums := map[config.Scheme]float64{}
	for _, br := range results {
		row := []string{br.Bench}
		base := float64(br.PerScheme[config.NoPG].ExecTime)
		for _, s := range config.Schemes {
			norm := float64(br.PerScheme[s].ExecTime) / base
			sums[s] += norm
			row = append(row, fmt.Sprintf("%.4f", norm))
		}
		t.add(row...)
	}
	row := []string{"AVG"}
	for _, s := range config.Schemes {
		row = append(row, fmt.Sprintf("%.4f", sums[s]/float64(len(results))))
	}
	t.add(row...)

	var b strings.Builder
	b.WriteString("Figure 8: execution time (normalized to No-PG)\n")
	b.WriteString(t.String())
	n := float64(len(results))
	fmt.Fprintf(&b, "execution-time increase vs No-PG: ConvOpt=%+.2f%% Signal=%+.2f%% PunchPG=%+.2f%% (paper: Signal +2.3%%, PunchPG +0.4%%)\n",
		(sums[config.ConvOptPG]/n-1)*100,
		(sums[config.PowerPunchSignal]/n-1)*100,
		(sums[config.PowerPunchPG]/n-1)*100)
	return b.String()
}

// FormatFig9 renders powered-off routers encountered per packet, the
// paper's Figure 9 (PG schemes only; No-PG is zero by construction).
func FormatFig9(results []BenchResult) string {
	schemes := []config.Scheme{config.ConvOptPG, config.PowerPunchSignal, config.PowerPunchPG}
	hdr := []string{"benchmark"}
	for _, s := range schemes {
		hdr = append(hdr, s.String())
	}
	t := &table{header: hdr}
	for _, br := range results {
		row := []string{br.Bench}
		for _, s := range schemes {
			row = append(row, fmtF(br.PerScheme[s].Blocked))
		}
		t.add(row...)
	}
	avg := avgOver(results, func(m SchemeMetrics) float64 { return m.Blocked })
	t.add("AVG", fmtF(avg[config.ConvOptPG]), fmtF(avg[config.PowerPunchSignal]), fmtF(avg[config.PowerPunchPG]))

	var b strings.Builder
	b.WriteString("Figure 9: powered-off routers encountered per packet (paper AVG: 4.21, 1.09, 0.96)\n")
	b.WriteString(t.String())
	writeHiddenSplit(&b, results)
	return b.String()
}

// writeHiddenSplit appends the counters-probe wakeup split when the
// runs were observed (FullSystemOptions.Observe / `powerpunch -probes`);
// without a probe the fields are zero and the line is omitted.
func writeHiddenSplit(b *strings.Builder, results []BenchResult) {
	observed := false
	for _, br := range results {
		for _, m := range br.PerScheme {
			if m.PunchWakeups != 0 || m.ConvWakeups != 0 {
				observed = true
			}
		}
	}
	if !observed {
		return
	}
	hidden := avgOver(results, func(m SchemeMetrics) float64 { return m.HiddenFrac })
	fmt.Fprintf(b, "wakeup cycles hidden from traffic (probe): ConvOpt=%s Signal=%s PunchPG=%s\n",
		fmtPct(hidden[config.ConvOptPG]), fmtPct(hidden[config.PowerPunchSignal]), fmtPct(hidden[config.PowerPunchPG]))
}

// FormatFig10 renders wakeup-wait cycles per packet, the paper's
// Figure 10.
func FormatFig10(results []BenchResult) string {
	schemes := []config.Scheme{config.ConvOptPG, config.PowerPunchSignal, config.PowerPunchPG}
	hdr := []string{"benchmark"}
	for _, s := range schemes {
		hdr = append(hdr, s.String())
	}
	t := &table{header: hdr}
	for _, br := range results {
		row := []string{br.Bench}
		for _, s := range schemes {
			row = append(row, fmtF(br.PerScheme[s].WakeWait))
		}
		t.add(row...)
	}
	avg := avgOver(results, func(m SchemeMetrics) float64 { return m.WakeWait })
	t.add("AVG", fmtF(avg[config.ConvOptPG]), fmtF(avg[config.PowerPunchSignal]), fmtF(avg[config.PowerPunchPG]))

	var b strings.Builder
	b.WriteString("Figure 10: cycles per packet waiting for router wakeup\n")
	b.WriteString(t.String())
	if avg[config.PowerPunchSignal] > 0 {
		fmt.Fprintf(&b, "PunchPG improvement over Signal: %.1f%% (paper: 36.2%%)\n",
			(1-avg[config.PowerPunchPG]/avg[config.PowerPunchSignal])*100)
	}
	writeHiddenSplit(&b, results)
	return b.String()
}

// FormatFig11 renders the router energy breakdown normalized to No-PG
// total, the paper's Figure 11.
func FormatFig11(results []BenchResult) string {
	t := &table{header: []string{"benchmark", "scheme", "dynamic", "static", "overhead", "total", "static saved"}}
	for _, br := range results {
		base := br.PerScheme[config.NoPG].Energy.Total()
		for _, s := range config.Schemes {
			m := br.PerScheme[s]
			t.add(br.Bench, s.String(),
				fmtPct(m.Energy.Dynamic/base),
				fmtPct(m.Energy.Static/base),
				fmtPct(m.Energy.Overhead/base),
				fmtPct(m.Energy.Total()/base),
				fmtPct(m.StaticSaved))
		}
	}
	var b strings.Builder
	b.WriteString("Figure 11: router energy breakdown (normalized to No-PG total)\n")
	b.WriteString(t.String())

	// Paper headline numbers: ~83% static savings; total energy savings
	// 50.3% (ConvOpt), 52.9% (Signal), 54.1% (PunchPG).
	totals := map[config.Scheme]float64{}
	saved := avgOver(results, func(m SchemeMetrics) float64 { return m.StaticSaved })
	for _, s := range config.Schemes {
		sum := 0.0
		for _, br := range results {
			sum += br.PerScheme[s].Energy.Total() / br.PerScheme[config.NoPG].Energy.Total()
		}
		totals[s] = sum / float64(len(results))
	}
	fmt.Fprintf(&b, "avg static energy saved: ConvOpt=%s Signal=%s PunchPG=%s (paper: ~83%% each)\n",
		fmtPct(saved[config.ConvOptPG]), fmtPct(saved[config.PowerPunchSignal]), fmtPct(saved[config.PowerPunchPG]))
	fmt.Fprintf(&b, "avg total router energy saved: ConvOpt=%s Signal=%s PunchPG=%s (paper: 50.3%%, 52.9%%, 54.1%%)\n",
		fmtPct(1-totals[config.ConvOptPG]), fmtPct(1-totals[config.PowerPunchSignal]), fmtPct(1-totals[config.PowerPunchPG]))
	return b.String()
}
