package experiments

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"powerpunch/internal/config"
)

// The committed golden baseline for the paper-§6 full-system suite:
// one seed-locked, fidelity-pinned run of every PARSEC profile under
// every scheme, with the headline claims and tolerance bands the suite
// enforces. Regenerate with `go test ./internal/experiments -run
// TestGoldenFullSystem -update` after a deliberate model change, and
// review the diff like any other behavioural change.
//
//go:embed golden/fullsystem.json
var goldenFullSystem []byte

// GoldenMetrics is one (benchmark, scheme) cell of the golden file —
// the subset of SchemeMetrics the suite pins. Energy joules are
// deliberately excluded: StaticSaved is the paper's claim, absolute
// joules are this repo's power model.
type GoldenMetrics struct {
	AvgLatency  float64 `json:"avg_latency"`
	ExecTime    int64   `json:"exec_time"`
	Blocked     float64 `json:"blocked"`
	WakeWait    float64 `json:"wake_wait"`
	StaticSaved float64 `json:"static_saved"`
	HiddenFrac  float64 `json:"hidden_frac"`
	Packets     int64   `json:"packets"`
}

// GoldenTolerance bands the per-cell comparison. The simulator is
// deterministic — a same-seed rerun reproduces the golden bit for bit —
// so the bands exist to absorb deliberate, reviewed model retuning
// without invalidating every cell, not run-to-run noise.
type GoldenTolerance struct {
	ExecTimeFrac   float64 `json:"exec_time_frac"`   // relative, on ExecTime
	AvgLatencyFrac float64 `json:"avg_latency_frac"` // relative, on AvgLatency
	BlockedFrac    float64 `json:"blocked_frac"`     // relative, on Blocked
	WakeWaitFrac   float64 `json:"wake_wait_frac"`   // relative, on WakeWait
	StaticSavedAbs float64 `json:"static_saved_abs"` // absolute, on StaticSaved
	HiddenFracAbs  float64 `json:"hidden_frac_abs"`  // absolute, on HiddenFrac
	PacketsFrac    float64 `json:"packets_frac"`     // relative, on Packets
}

// GoldenClaims are the paper-§6 headline assertions, checked against
// benchmark averages of the fresh run (not the stored cells, so the
// claims hold for the code as it is, not as it was).
type GoldenClaims struct {
	// MinStaticSaved: PunchPG saves at least this fraction of No-PG
	// static energy, averaged over benchmarks (paper: ~83%).
	MinStaticSaved float64 `json:"min_static_saved"`
	// MaxNormExec: PunchPG execution time normalized to No-PG stays
	// below this, averaged over benchmarks (paper: <1.004).
	MaxNormExec float64 `json:"max_norm_exec"`
	// MaxPunchBlocked / MinConvBlocked pin the "~1 vs ~4 powered-off
	// routers per packet" contrast (paper Figure 9: 0.96 vs 4.21).
	MaxPunchBlocked float64 `json:"max_punch_blocked"`
	MinConvBlocked  float64 `json:"min_conv_blocked"`
	// MinPunchHiddenFrac: under PunchPG, at least this fraction of all
	// wakeup cycles is hidden from traffic (the counters probe's
	// exposed-vs-hidden split, the instrument behind Figure 10).
	MinPunchHiddenFrac float64 `json:"min_punch_hidden_frac"`
}

// GoldenFile is the committed baseline: the exact run recipe, the
// tolerance bands, the headline claims, and the expected metrics keyed
// by benchmark then scheme name.
type GoldenFile struct {
	Description  string                              `json:"description"`
	Seed         int64                               `json:"seed"`
	InstrPerCore int64                               `json:"instr_per_core"`
	Topology     string                              `json:"topology"`
	Width        int                                 `json:"width"`
	Height       int                                 `json:"height"`
	Tolerance    GoldenTolerance                     `json:"tolerance"`
	Claims       GoldenClaims                        `json:"claims"`
	Benchmarks   map[string]map[string]GoldenMetrics `json:"benchmarks"`
}

// DefaultGolden returns the golden recipe without stored cells — the
// skeleton `-update` fills in. The recipe is part of the reviewed
// baseline: changing seed or budget is changing what the repo claims.
func DefaultGolden() *GoldenFile {
	return &GoldenFile{
		Description: "paper §6 full-system suite: PARSEC profiles × 5 schemes (paper's four + FlyOver bypass), " +
			"seed-locked; regenerate with `go test ./internal/experiments -run TestGoldenFullSystem -update`",
		Seed:         12,
		InstrPerCore: 12_000,
		Topology:     "mesh",
		Width:        8,
		Height:       8,
		Tolerance: GoldenTolerance{
			ExecTimeFrac:   0.02,
			AvgLatencyFrac: 0.05,
			BlockedFrac:    0.10,
			WakeWaitFrac:   0.15,
			StaticSavedAbs: 0.01,
			HiddenFracAbs:  0.02,
			PacketsFrac:    0.02,
		},
		Claims: GoldenClaims{
			MinStaticSaved:     0.83,
			MaxNormExec:        1.004,
			MaxPunchBlocked:    1.0,
			MinConvBlocked:     3.0,
			MinPunchHiddenFrac: 0.70,
		},
	}
}

// LoadGolden parses the committed golden baseline.
func LoadGolden() (*GoldenFile, error) {
	var g GoldenFile
	if err := json.Unmarshal(goldenFullSystem, &g); err != nil {
		return nil, fmt.Errorf("experiments: parsing embedded golden baseline: %w", err)
	}
	return &g, nil
}

// Marshal renders g as the stable, indented JSON committed to the repo.
func (g *GoldenFile) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Options translates the golden recipe into run options. Observe is
// always on: the wakeup split is part of the baseline.
func (g *GoldenFile) Options() FullSystemOptions {
	return FullSystemOptions{
		Seed:         g.Seed,
		InstrPerCore: g.InstrPerCore,
		Observe:      true,
	}
}

// RunGolden executes the golden recipe and returns the fresh results.
// The baseline is recorded on one exact fabric, so a CLI fabric
// override (-topo/-width/-height) is rejected rather than silently
// compared against numbers from a different network.
func RunGolden(g *GoldenFile) ([]BenchResult, error) {
	if fabric.set && (fabric.topology != g.Topology || fabric.width != g.Width || fabric.height != g.Height) {
		return nil, fmt.Errorf("experiments: golden baseline is recorded on %s %dx%d; fabric overrides are incompatible with the golden experiment",
			g.Topology, g.Width, g.Height)
	}
	return RunFullSystem(g.Options())
}

// Capture replaces g's stored cells with the measured results.
func (g *GoldenFile) Capture(results []BenchResult) {
	g.Benchmarks = map[string]map[string]GoldenMetrics{}
	for _, br := range results {
		cells := map[string]GoldenMetrics{}
		for _, s := range FullSystemSchemes {
			m := br.PerScheme[s]
			cells[s.String()] = GoldenMetrics{
				AvgLatency:  m.AvgLatency,
				ExecTime:    m.ExecTime,
				Blocked:     m.Blocked,
				WakeWait:    m.WakeWait,
				StaticSaved: m.StaticSaved,
				HiddenFrac:  m.HiddenFrac,
				Packets:     m.Packets,
			}
		}
		g.Benchmarks[br.Bench] = cells
	}
}

func bandRel(name string, got, want, frac float64, out *[]string) {
	lim := math.Abs(want) * frac
	if d := math.Abs(got - want); d > lim {
		*out = append(*out, fmt.Sprintf("%s: got %.4f, golden %.4f (|Δ|=%.4f > %.4f)", name, got, want, d, lim))
	}
}

func bandAbs(name string, got, want, lim float64, out *[]string) {
	if d := math.Abs(got - want); d > lim {
		*out = append(*out, fmt.Sprintf("%s: got %.4f, golden %.4f (|Δ|=%.4f > %.4f)", name, got, want, d, lim))
	}
}

// Compare checks fresh results against the stored cells, returning one
// human-readable line per out-of-band metric (empty means the baseline
// holds). Missing or extra benchmarks are deviations too.
func (g *GoldenFile) Compare(results []BenchResult) []string {
	var devs []string
	seen := map[string]bool{}
	tol := g.Tolerance
	for _, br := range results {
		seen[br.Bench] = true
		cells, ok := g.Benchmarks[br.Bench]
		if !ok {
			devs = append(devs, fmt.Sprintf("%s: benchmark missing from golden baseline", br.Bench))
			continue
		}
		for _, s := range FullSystemSchemes {
			want, ok := cells[s.String()]
			if !ok {
				devs = append(devs, fmt.Sprintf("%s/%s: scheme missing from golden baseline", br.Bench, s))
				continue
			}
			got := br.PerScheme[s]
			if !got.Drained {
				devs = append(devs, fmt.Sprintf("%s/%s: run did not drain", br.Bench, s))
			}
			id := br.Bench + "/" + s.String()
			bandRel(id+" exec_time", float64(got.ExecTime), float64(want.ExecTime), tol.ExecTimeFrac, &devs)
			bandRel(id+" avg_latency", got.AvgLatency, want.AvgLatency, tol.AvgLatencyFrac, &devs)
			bandRel(id+" blocked", got.Blocked, want.Blocked, tol.BlockedFrac, &devs)
			bandRel(id+" wake_wait", got.WakeWait, want.WakeWait, tol.WakeWaitFrac, &devs)
			bandRel(id+" packets", float64(got.Packets), float64(want.Packets), tol.PacketsFrac, &devs)
			bandAbs(id+" static_saved", got.StaticSaved, want.StaticSaved, tol.StaticSavedAbs, &devs)
			bandAbs(id+" hidden_frac", got.HiddenFrac, want.HiddenFrac, tol.HiddenFracAbs, &devs)
		}
	}
	for bench := range g.Benchmarks {
		if !seen[bench] {
			devs = append(devs, fmt.Sprintf("%s: golden benchmark missing from run", bench))
		}
	}
	sort.Strings(devs)
	return devs
}

// CheckClaims evaluates the headline claims against benchmark averages
// of the fresh results, returning one line per violated claim.
func (g *GoldenFile) CheckClaims(results []BenchResult) []string {
	var bad []string
	if len(results) == 0 {
		return []string{"no results to check claims against"}
	}
	n := float64(len(results))
	var saved, normExec, punchBlocked, convBlocked, punchHidden float64
	for _, br := range results {
		pp := br.PerScheme[config.PowerPunchPG]
		saved += pp.StaticSaved
		normExec += float64(pp.ExecTime) / float64(br.PerScheme[config.NoPG].ExecTime)
		punchBlocked += pp.Blocked
		convBlocked += br.PerScheme[config.ConvOptPG].Blocked
		punchHidden += pp.HiddenFrac
	}
	saved, normExec = saved/n, normExec/n
	punchBlocked, convBlocked, punchHidden = punchBlocked/n, convBlocked/n, punchHidden/n

	c := g.Claims
	if saved < c.MinStaticSaved {
		bad = append(bad, fmt.Sprintf("static energy saved: PunchPG avg %.4f < claimed minimum %.4f", saved, c.MinStaticSaved))
	}
	if normExec >= c.MaxNormExec {
		bad = append(bad, fmt.Sprintf("execution time: PunchPG avg %.4f× No-PG ≥ claimed bound %.4f×", normExec, c.MaxNormExec))
	}
	if punchBlocked > c.MaxPunchBlocked {
		bad = append(bad, fmt.Sprintf("gated routers per packet: PunchPG avg %.2f > claimed maximum %.2f", punchBlocked, c.MaxPunchBlocked))
	}
	if convBlocked < c.MinConvBlocked {
		bad = append(bad, fmt.Sprintf("gated routers per packet: ConvOpt avg %.2f < claimed minimum %.2f (contrast lost)", convBlocked, c.MinConvBlocked))
	}
	if punchHidden < c.MinPunchHiddenFrac {
		bad = append(bad, fmt.Sprintf("hidden wakeup fraction: PunchPG avg %.4f < claimed minimum %.4f", punchHidden, c.MinPunchHiddenFrac))
	}
	return bad
}

// FormatGolden renders the golden comparison for the CLI: the fresh
// headline numbers, every deviation from the stored cells, and every
// violated claim.
func FormatGolden(g *GoldenFile, results []BenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Golden full-system baseline (seed %d, %d instr/core, %s %dx%d)\n",
		g.Seed, g.InstrPerCore, g.Topology, g.Width, g.Height)

	t := &table{header: []string{"benchmark", "scheme", "exec", "norm", "latency", "blocked", "static saved", "hidden"}}
	for _, br := range results {
		base := float64(br.PerScheme[config.NoPG].ExecTime)
		for _, s := range FullSystemSchemes {
			m := br.PerScheme[s]
			t.add(br.Bench, s.String(),
				fmt.Sprintf("%d", m.ExecTime),
				fmt.Sprintf("%.4f", float64(m.ExecTime)/base),
				fmtF(m.AvgLatency), fmtF(m.Blocked),
				fmtPct(m.StaticSaved), fmtPct(m.HiddenFrac))
		}
	}
	b.WriteString(t.String())

	if devs := g.Compare(results); len(devs) > 0 {
		fmt.Fprintf(&b, "\nDEVIATIONS from committed baseline (%d):\n", len(devs))
		for _, d := range devs {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	} else {
		b.WriteString("\nall cells within tolerance of the committed baseline\n")
	}
	if bad := g.CheckClaims(results); len(bad) > 0 {
		fmt.Fprintf(&b, "HEADLINE CLAIMS VIOLATED (%d):\n", len(bad))
		for _, v := range bad {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	} else {
		b.WriteString("all §6 headline claims hold\n")
	}
	return b.String()
}

// GoldenMarkdown renders the committed baseline as the README's
// "Full-system results" table (PunchPG view with the No-PG and ConvOpt
// reference columns the claims contrast against, plus the FlyOver
// bypass scheme's normalized execution time, blocking, and savings).
func GoldenMarkdown(g *GoldenFile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| benchmark | exec (No-PG) | exec (PunchPG) | norm | norm FlyOver | blocked ConvOpt | blocked PunchPG | blocked FlyOver | static saved | saved FlyOver | hidden wakeups |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|\n")
	var nSaved, nNorm, nConv, nPunch, nHidden float64
	var nFNorm, nFBlocked, nFSaved float64
	benches := keysSorted(g.Benchmarks)
	for _, bench := range benches {
		cells := g.Benchmarks[bench]
		nopg := cells[config.NoPG.String()]
		conv := cells[config.ConvOptPG.String()]
		pp := cells[config.PowerPunchPG.String()]
		fly := cells[config.FlyOverPG.String()]
		norm := float64(pp.ExecTime) / float64(nopg.ExecTime)
		fnorm := float64(fly.ExecTime) / float64(nopg.ExecTime)
		nSaved += pp.StaticSaved
		nNorm += norm
		nConv += conv.Blocked
		nPunch += pp.Blocked
		nHidden += pp.HiddenFrac
		nFNorm += fnorm
		nFBlocked += fly.Blocked
		nFSaved += fly.StaticSaved
		fmt.Fprintf(&b, "| %s | %d | %d | %.4f | %.4f | %.2f | %.2f | %.2f | %.1f%% | %.1f%% | %.1f%% |\n",
			bench, nopg.ExecTime, pp.ExecTime, norm, fnorm, conv.Blocked, pp.Blocked,
			fly.Blocked, pp.StaticSaved*100, fly.StaticSaved*100, pp.HiddenFrac*100)
	}
	if n := float64(len(benches)); n > 0 {
		fmt.Fprintf(&b, "| **AVG** | | | **%.4f** | **%.4f** | **%.2f** | **%.2f** | **%.2f** | **%.1f%%** | **%.1f%%** | **%.1f%%** |\n",
			nNorm/n, nFNorm/n, nConv/n, nPunch/n, nFBlocked/n, nSaved/n*100, nFSaved/n*100, nHidden/n*100)
	}
	return b.String()
}
