package experiments

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// -update regenerates golden/fullsystem.json from a fresh run (and is
// the documented way to retune the baseline after a deliberate model
// change). The refreshed file must still satisfy the headline claims —
// a golden that contradicts the paper's §6 numbers is refused.
var update = flag.Bool("update", false, "regenerate the committed golden baseline")

// TestGoldenFullSystem is the paper-§6 golden experiment suite: it
// reruns every PARSEC profile under every scheme with the committed
// seed and instruction budget, compares each (benchmark, scheme) cell
// against golden/fullsystem.json within the committed tolerance bands,
// and asserts the headline claims — ≥83% static energy saved and
// <0.4% execution-time penalty for PunchPG, plus the ~1 vs ~4
// gated-routers-per-packet contrast against ConvOpt-PG — on the fresh
// numbers. The simulator is deterministic, so a same-seed rerun
// reproduces the baseline exactly; the bands only absorb deliberate,
// reviewed retuning.
func TestGoldenFullSystem(t *testing.T) {
	g, err := LoadGolden()
	if err != nil || *update {
		g = DefaultGolden()
	}
	results, err := RunGolden(g)
	if err != nil {
		t.Fatal(err)
	}
	if bad := g.CheckClaims(results); len(bad) > 0 {
		for _, v := range bad {
			t.Errorf("headline claim violated: %s", v)
		}
	}
	if *update {
		if t.Failed() {
			t.Fatal("refusing to write a golden baseline that violates the headline claims")
		}
		g.Capture(results)
		data, err := g.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("golden/fullsystem.json", data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden baseline regenerated; re-run without -update to verify, then commit the diff")
		return
	}
	if devs := g.Compare(results); len(devs) > 0 {
		for _, d := range devs {
			t.Errorf("golden deviation: %s", d)
		}
		t.Log("if the change is deliberate, regenerate with: go test ./internal/experiments -run TestGoldenFullSystem -update")
	}
}

// TestGoldenReadmeTable keeps the README's "Full-system results" table
// generated from — and therefore in sync with — the committed golden
// baseline, the same way apicheck pins API.txt.
func TestGoldenReadmeTable(t *testing.T) {
	g, err := LoadGolden()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Benchmarks) == 0 {
		t.Fatal("golden baseline has no cells; run -update first")
	}
	want := GoldenMarkdown(g)
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), want) {
		t.Errorf("README.md full-system results table is out of sync with golden/fullsystem.json; replace it with:\n%s", want)
	}
}

// TestGoldenRejectsFabricOverride pins the guard: the baseline is
// recorded on one exact fabric, so comparing it against numbers from
// another network must fail loudly instead of as a wall of deviations.
func TestGoldenRejectsFabricOverride(t *testing.T) {
	if err := SetFabric("torus", 4, 4); err != nil {
		t.Fatal(err)
	}
	defer func() { fabric.set = false }()
	g := DefaultGolden()
	if _, err := RunGolden(g); err == nil {
		t.Fatal("RunGolden accepted a fabric override that contradicts the baseline")
	}
}
