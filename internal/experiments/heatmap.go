package experiments

import (
	"fmt"
	"strings"

	"powerpunch/internal/config"
	"powerpunch/internal/mesh"
	"powerpunch/internal/network"
	"powerpunch/internal/pg"
	"powerpunch/internal/traffic"
)

// HeatmapResult holds per-router gated-time fractions for one scheme.
type HeatmapResult struct {
	Scheme    config.Scheme
	Width     int
	Height    int
	GatedFrac []float64 // per router, fraction of measured cycles gated
}

// RunHeatmap measures each router's gated-time fraction under a hotspot
// workload (traffic concentrated toward one node), visualizing how
// Power Punch keeps exactly the used paths awake while the rest of the
// chip sleeps — the spatial intuition behind the paper's energy
// results.
func RunHeatmap(scheme config.Scheme, f Fidelity, seed int64) (*HeatmapResult, error) {
	cfg := config.Default().WithScheme(scheme)
	cfg.WarmupCycles = f.warmupCycles()
	cfg.MeasureCycles = f.measureCycles()
	cfg = applyOverrides(cfg)
	net, err := network.New(cfg)
	if err != nil {
		return nil, err
	}
	// Hotspot one hop in from the origin corner; on single-row fabrics
	// (rings) the Y offset collapses to the only row there is.
	hotC := mesh.Coord{X: 1, Y: 1}
	if hotC.Y >= cfg.Height {
		hotC.Y = cfg.Height - 1
	}
	hot := net.M.NodeAt(hotC)
	drv := traffic.NewSynthetic(traffic.Hotspot{Node: hot, Frac: 0.7}, 0.02, seed)

	res := &HeatmapResult{Scheme: scheme, Width: cfg.Width, Height: cfg.Height,
		GatedFrac: make([]float64, net.M.NumNodes())}
	gated := make([]int64, net.M.NumNodes())
	var cycles int64

	warmEnd := cfg.WarmupCycles
	measEnd := warmEnd + cfg.MeasureCycles
	for net.Now() < measEnd {
		drv.Tick(net, net.Now())
		net.Step()
		if net.Now() > warmEnd {
			cycles++
			net.SyncInspection() // retired routers' FSMs are replayed lazily
			for i, r := range net.Routers {
				if r.Ctrl.State() == pg.Gated {
					gated[i]++
				}
			}
		}
	}
	for i := range gated {
		res.GatedFrac[i] = float64(gated[i]) / float64(cycles)
	}
	return res, nil
}

// FormatHeatmap renders the gated-fraction map as ASCII art: '#' routers
// are essentially always on, '.' routers essentially always gated.
func FormatHeatmap(h *HeatmapResult) string {
	glyph := func(f float64) byte {
		switch {
		case f < 0.2:
			return '#' // on (hot path)
		case f < 0.5:
			return '+'
		case f < 0.8:
			return '-'
		default:
			return '.' // gated (dark silicon)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Gated-time heatmap, %s, hotspot traffic ('#'=mostly on ... '.'=mostly gated):\n", h.Scheme)
	for y := 0; y < h.Height; y++ {
		for x := 0; x < h.Width; x++ {
			b.WriteByte(glyph(h.GatedFrac[y*h.Width+x]))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	var sum float64
	for _, f := range h.GatedFrac {
		sum += f
	}
	fmt.Fprintf(&b, "mean gated fraction: %.1f%%\n", 100*sum/float64(len(h.GatedFrac)))
	return b.String()
}
