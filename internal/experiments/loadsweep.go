package experiments

import (
	"fmt"
	"strings"

	"powerpunch/internal/config"
	"powerpunch/internal/network"
	"powerpunch/internal/traffic"
)

// LoadPoint is one (pattern, rate, scheme) measurement of Figure 12.
type LoadPoint struct {
	Pattern    string
	Rate       float64 // offered load, flits/node/cycle
	Scheme     config.Scheme
	AvgLatency float64
	Throughput float64 // delivered flits/node/cycle
	StaticW    float64 // average router static power (W), incl. overhead
	Saturated  bool

	// Per-packet stage decomposition of AvgLatency, from
	// RunResult.Detail (cycles/packet; the four stages sum to
	// AvgLatency exactly): source-NI queueing, wakeup cycles exposed at
	// the source NI, wakeup cycles exposed inside the network, and
	// everything else (routing, switching, link traversal, contention).
	NIQueue   float64
	WakeupNI  float64
	WakeupNet float64
	Transit   float64

	// Per-component energy over the measured window (J), from
	// RunResult.Detail.Energy — counter-derived, so engine-invariant.
	Energy network.EnergyBreakdown
}

// LoadSweepOptions parameterizes Figure 12.
type LoadSweepOptions struct {
	Fidelity Fidelity
	Patterns []string  // defaults to the paper's three
	Rates    []float64 // defaults per pattern (to saturation)
	Schemes  []config.Scheme
	Seed     int64
}

func (o *LoadSweepOptions) defaults() {
	if len(o.Patterns) == 0 {
		o.Patterns = []string{"uniform", "bit-complement", "transpose"}
	}
	if len(o.Schemes) == 0 {
		// Figure 12 compares No-PG, ConvOpt-PG, PowerPunch-PG.
		o.Schemes = []config.Scheme{config.NoPG, config.ConvOptPG, config.PowerPunchPG}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// defaultRates returns the paper's x-axis ranges: uniform sweeps to
// ~0.25 flits/node/cycle; the permutation patterns saturate near 0.15.
func defaultRates(pattern string, f Fidelity) []float64 {
	var max float64
	switch pattern {
	case "uniform":
		max = 0.26
	default:
		max = 0.15
	}
	steps := 6
	if f == Full {
		steps = 10
	}
	rates := make([]float64, 0, steps)
	for i := 1; i <= steps; i++ {
		rates = append(rates, 0.005+(max-0.005)*float64(i-1)/float64(steps-1))
	}
	return rates
}

// RunLoadSweep measures latency and static power across the load range
// for each pattern and scheme (Figure 12). The (pattern, rate, scheme)
// points are independent simulations and run in parallel.
func RunLoadSweep(o LoadSweepOptions) ([]LoadPoint, error) {
	o.defaults()
	type job struct {
		pattern string
		rate    float64
		scheme  config.Scheme
	}
	var jobs []job
	for _, pname := range o.Patterns {
		if _, err := traffic.ByName(pname); err != nil {
			return nil, err
		}
		rates := o.Rates
		if len(rates) == 0 {
			rates = defaultRates(pname, o.Fidelity)
		}
		for _, rate := range rates {
			for _, s := range o.Schemes {
				jobs = append(jobs, job{pname, rate, s})
			}
		}
	}
	out := make([]LoadPoint, len(jobs))
	errs := make([]error, len(jobs))
	parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		pat, _ := traffic.ByName(j.pattern)
		cfg := config.Default().WithScheme(j.scheme)
		cfg.WarmupCycles = o.Fidelity.warmupCycles()
		cfg.MeasureCycles = o.Fidelity.measureCycles()
		cfg = applyOverrides(cfg)
		net, err := network.New(cfg)
		if err != nil {
			errs[i] = err
			return
		}
		drv := traffic.NewSynthetic(pat, j.rate, o.Seed)
		res := net.Run(drv)
		thr := net.Col.Throughput(net.M.NumNodes(), cfg.MeasureCycles)
		out[i] = LoadPointFrom(j.pattern, j.rate, j.scheme, res, thr)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LoadPointFrom assembles one sweep measurement from a finished run.
// RunLoadSweep and the campaign server's CSV export both funnel
// through it (including the saturation threshold), which is what
// keeps the HTTP API's result.csv bit-identical to the in-process
// sweep.
func LoadPointFrom(pattern string, rate float64, scheme config.Scheme, res network.RunResult, throughput float64) LoadPoint {
	pt := LoadPoint{
		Pattern:    pattern,
		Rate:       rate,
		Scheme:     scheme,
		AvgLatency: res.Summary.AvgLatency,
		Throughput: throughput,
		StaticW:    res.AvgStaticW,
		Saturated:  !res.Drained || res.Summary.AvgLatency > 150,
	}
	if st := res.Detail.Stages; st.Packets > 0 {
		n := float64(st.Packets)
		pt.NIQueue = float64(st.NIQueueCycles) / n
		pt.WakeupNI = float64(st.WakeupNICycles) / n
		pt.WakeupNet = float64(st.WakeupNetCycles) / n
		pt.Transit = float64(st.TransitCycles) / n
	}
	pt.Energy = res.Detail.Energy
	return pt
}

// FormatFig12 renders the sweep as per-pattern latency and static-power
// tables, the paper's Figure 12.
func FormatFig12(points []LoadPoint, schemes []config.Scheme) string {
	if len(schemes) == 0 {
		schemes = []config.Scheme{config.NoPG, config.ConvOptPG, config.PowerPunchPG}
	}
	byPattern := map[string][]LoadPoint{}
	for _, p := range points {
		byPattern[p.Pattern] = append(byPattern[p.Pattern], p)
	}
	var b strings.Builder
	b.WriteString("Figure 12: packet latency and router static power across the load range\n")
	for _, pat := range keysSorted(byPattern) {
		pts := byPattern[pat]
		hdr := []string{"rate"}
		for _, s := range schemes {
			hdr = append(hdr, "lat:"+s.String())
		}
		for _, s := range schemes {
			hdr = append(hdr, "staticW:"+s.String())
		}
		t := &table{header: hdr}
		byRate := map[float64]map[config.Scheme]LoadPoint{}
		var rates []float64
		for _, p := range pts {
			if byRate[p.Rate] == nil {
				byRate[p.Rate] = map[config.Scheme]LoadPoint{}
				rates = append(rates, p.Rate)
			}
			byRate[p.Rate][p.Scheme] = p
		}
		for _, r := range rates {
			row := []string{fmt.Sprintf("%.3f", r)}
			for _, s := range schemes {
				p := byRate[r][s]
				lat := fmtF(p.AvgLatency)
				if p.Saturated {
					lat += "*"
				}
				row = append(row, lat)
			}
			for _, s := range schemes {
				row = append(row, fmt.Sprintf("%.3f", byRate[r][s].StaticW))
			}
			t.add(row...)
		}
		fmt.Fprintf(&b, "\n[%s] (* = at or near saturation)\n", pat)
		b.WriteString(t.String())
	}
	return b.String()
}
