package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// chunksPerWorker is the dispatch granularity multiplier: parallelFor
// splits the index space into chunksPerWorker chunks per worker, so the
// channel carries one message per chunk instead of one per index while
// still leaving enough chunks for the scheduler to rebalance when
// individual runs take uneven time.
const chunksPerWorker = 4

// chunksFor returns the number of contiguous chunks parallelFor splits
// n items into for the given worker count. The count scales with the
// worker count (itself sized by runtime.GOMAXPROCS) rather than a
// fixed constant, and never exceeds n so every chunk is non-empty.
func chunksFor(n, workers int) int {
	chunks := workers * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	return chunks
}

// chunkBounds returns the half-open index range [lo, hi) of chunk c of
// `chunks` total over n items, with sizes balanced to within one item.
func chunkBounds(n, chunks, c int) (lo, hi int) {
	return c * n / chunks, (c + 1) * n / chunks
}

// parallelFor runs fn(i) for i in [0, n) on up to GOMAXPROCS workers,
// dispatching contiguous chunks of indices (chunksFor per call) so the
// channel round-trips scale with the worker count, not with n. Each
// experiment run owns its network and RNGs, so runs are independent
// and results stay deterministic; only wall-clock order changes. fn
// must write results into pre-sized slots (no appends).
//
// A panic inside fn is captured and re-raised on the caller's
// goroutine after every worker has finished, so a crashing experiment
// surfaces as one panic with the offending index and original stack
// instead of killing the process from an anonymous goroutine. When
// several runs panic concurrently, the lowest index wins. Workers that
// observe a recorded panic keep draining the work channel without
// calling fn, so the feeding loop never blocks on dead workers.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		panicIdx   = -1
		panicVal   any
		panicStack []byte
	)
	record := func(i int, v any, stack []byte) {
		mu.Lock()
		if panicIdx == -1 || i < panicIdx {
			panicIdx, panicVal, panicStack = i, v, stack
		}
		mu.Unlock()
	}
	poisoned := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return panicIdx != -1
	}
	runOne := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				record(i, v, debug.Stack())
			}
		}()
		fn(i)
	}
	chunks := chunksFor(n, workers)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				lo, hi := chunkBounds(n, chunks, c)
				for i := lo; i < hi; i++ {
					if poisoned() {
						continue // finish the chunk cheaply, then drain
					}
					runOne(i)
				}
			}
		}()
	}
	for c := 0; c < chunks; c++ {
		next <- c
	}
	close(next)
	wg.Wait()
	if panicIdx != -1 {
		panic(fmt.Sprintf("experiments: run %d panicked: %v\n%s", panicIdx, panicVal, panicStack))
	}
}
