package experiments

import (
	"runtime"
	"sync"
)

// parallelFor runs fn(i) for i in [0, n) on up to GOMAXPROCS workers.
// Each experiment run owns its network and RNGs, so runs are
// independent and results stay deterministic; only wall-clock order
// changes. fn must write results into pre-sized slots (no appends).
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
