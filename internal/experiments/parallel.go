package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// parallelFor runs fn(i) for i in [0, n) on up to GOMAXPROCS workers.
// Each experiment run owns its network and RNGs, so runs are
// independent and results stay deterministic; only wall-clock order
// changes. fn must write results into pre-sized slots (no appends).
//
// A panic inside fn is captured and re-raised on the caller's
// goroutine after every worker has finished, so a crashing experiment
// surfaces as one panic with the offending index and original stack
// instead of killing the process from an anonymous goroutine. When
// several runs panic concurrently, the lowest index wins. Workers that
// observe a recorded panic keep draining the work channel without
// calling fn, so the feeding loop never blocks on dead workers.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		panicIdx   = -1
		panicVal   any
		panicStack []byte
	)
	record := func(i int, v any, stack []byte) {
		mu.Lock()
		if panicIdx == -1 || i < panicIdx {
			panicIdx, panicVal, panicStack = i, v, stack
		}
		mu.Unlock()
	}
	poisoned := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return panicIdx != -1
	}
	runOne := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				record(i, v, debug.Stack())
			}
		}()
		fn(i)
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if poisoned() {
					continue // drain so the sender never blocks
				}
				runOne(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicIdx != -1 {
		panic(fmt.Sprintf("experiments: run %d panicked: %v\n%s", panicIdx, panicVal, panicStack))
	}
}
