//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector, which multiplies simulation cost roughly tenfold; the
// driver-matrix test trims its shapes accordingly to stay inside the
// package test timeout.
const raceEnabled = true
