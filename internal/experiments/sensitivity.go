package experiments

import (
	"fmt"
	"strings"

	"powerpunch/internal/config"
	"powerpunch/internal/network"
	"powerpunch/internal/parsec"
	"powerpunch/internal/traffic"
)

// SensitivityPoint is one bar group of Figure 13: a (router stages,
// wakeup latency) pair and the three schemes' average latency under
// uniform traffic at the PARSEC-average load.
type SensitivityPoint struct {
	RouterStages  int
	WakeupLatency int
	PunchHops     int
	Latency       map[config.Scheme]float64
}

// SensitivityOptions parameterizes Figure 13.
type SensitivityOptions struct {
	Fidelity Fidelity
	Seed     int64
	// PunchHops for the Power Punch scheme (paper uses 3 throughout
	// Figure 13, deliberately including the under-covered Twakeup=10,
	// 3-stage case; pass 4 to reproduce the "becomes negligible with a
	// 4-hop punch" remark).
	PunchHops int
}

// RunSensitivity sweeps wakeup latency {6,8,10} on the 3-stage router and
// {8,10,12} on the 4-stage router (Figure 13).
func RunSensitivity(o SensitivityOptions) ([]SensitivityPoint, error) {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PunchHops == 0 {
		o.PunchHops = 3
	}
	cases := []struct{ stages, wakeup int }{
		{3, 6}, {3, 8}, {3, 10},
		{4, 8}, {4, 10}, {4, 12},
	}
	schemes := []config.Scheme{config.NoPG, config.ConvOptPG, config.PowerPunchPG}
	var out []SensitivityPoint
	for _, cse := range cases {
		pt := SensitivityPoint{
			RouterStages:  cse.stages,
			WakeupLatency: cse.wakeup,
			PunchHops:     o.PunchHops,
			Latency:       map[config.Scheme]float64{},
		}
		for _, s := range schemes {
			cfg := config.Default().WithScheme(s)
			cfg.RouterStages = cse.stages
			cfg.WakeupLatency = cse.wakeup
			cfg.PunchHops = o.PunchHops
			cfg.WarmupCycles = o.Fidelity.warmupCycles()
			cfg.MeasureCycles = o.Fidelity.measureCycles()
			cfg = applyOverrides(cfg)
			net, err := network.New(cfg)
			if err != nil {
				return nil, err
			}
			drv := traffic.NewSynthetic(traffic.UniformRandom{}, parsec.AverageLoadFlitsPerNodeCycle, o.Seed)
			res := net.Run(drv)
			pt.Latency[s] = res.Summary.AvgLatency
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatFig13 renders the sensitivity study, the paper's Figure 13.
func FormatFig13(points []SensitivityPoint) string {
	t := &table{header: []string{"router", "Twakeup", "No-PG", "ConvOpt-PG", "PowerPunch-PG", "PunchPG vs No-PG"}}
	for _, p := range points {
		base := p.Latency[config.NoPG]
		t.add(
			fmt.Sprintf("%d-stage", p.RouterStages),
			fmt.Sprintf("%d", p.WakeupLatency),
			fmtF(base),
			fmtF(p.Latency[config.ConvOptPG]),
			fmtF(p.Latency[config.PowerPunchPG]),
			fmt.Sprintf("%+.1f%%", (p.Latency[config.PowerPunchPG]/base-1)*100),
		)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: wakeup-latency sensitivity (uniform @ %.3f flits/node/cycle, %d-hop punch)\n",
		parsec.AverageLoadFlitsPerNodeCycle, points[0].PunchHops)
	b.WriteString(t.String())
	b.WriteString("paper: ConvOpt-PG 1.5x-2x No-PG in all cases; PowerPunch-PG +2.4%..+9.2%,\n" +
		"worst at Twakeup=10 on the 3-stage router where a 3-hop punch (9 cycles of slack) cannot cover the wakeup\n")
	return b.String()
}

// ScalabilityPoint is one mesh size of the Section 6.6(2) analysis.
type ScalabilityPoint struct {
	Width      int
	ConvOptLat float64
	PunchLat   float64
	NoPGLat    float64
	Reduction  float64 // PunchPG latency reduction vs ConvOpt (relative)
	// SavedCycles is the absolute penalty removed: ConvOpt - PunchPG.
	SavedCycles float64
}

// RunScalability measures average latency at 0.01 flits/node/cycle for
// 4x4, 8x8, and 16x16 meshes (paper: PowerPunch-PG reduces latency vs
// ConvOpt-PG by 43.4%, 54.9%, 69.1%).
func RunScalability(f Fidelity, seed int64) ([]ScalabilityPoint, error) {
	if seed == 0 {
		seed = 1
	}
	var out []ScalabilityPoint
	for _, w := range []int{4, 8, 16} {
		pt := ScalabilityPoint{Width: w}
		for _, s := range []config.Scheme{config.NoPG, config.ConvOptPG, config.PowerPunchPG} {
			cfg := config.Default().WithScheme(s)
			cfg.Width, cfg.Height = w, w
			cfg.WarmupCycles = f.warmupCycles()
			cfg.MeasureCycles = f.measureCycles()
			cfg = applyOverrides(cfg)
			net, err := network.New(cfg)
			if err != nil {
				return nil, err
			}
			drv := traffic.NewSynthetic(traffic.UniformRandom{}, 0.01, seed)
			drv.DataFrac = 1.0 // the paper's synthetic runs use 5-flit packets
			res := net.Run(drv)
			switch s {
			case config.NoPG:
				pt.NoPGLat = res.Summary.AvgLatency
			case config.ConvOptPG:
				pt.ConvOptLat = res.Summary.AvgLatency
			case config.PowerPunchPG:
				pt.PunchLat = res.Summary.AvgLatency
			}
		}
		if pt.ConvOptLat > 0 {
			pt.Reduction = 1 - pt.PunchLat/pt.ConvOptLat
		}
		pt.SavedCycles = pt.ConvOptLat - pt.PunchLat
		out = append(out, pt)
	}
	return out, nil
}

// FormatScalability renders the Section 6.6(2) table. The paper reports
// growing relative reductions (43.4%, 54.9%, 69.1%); in this simulator
// the absolute blocking penalty removed grows with network size (the
// cumulative-wakeup effect the paper describes) while the relative
// metric is diluted by the base latency growing too — see
// EXPERIMENTS.md.
func FormatScalability(points []ScalabilityPoint) string {
	t := &table{header: []string{"mesh", "No-PG", "ConvOpt-PG", "PowerPunch-PG", "cycles saved", "reduction vs ConvOpt"}}
	for _, p := range points {
		t.add(fmt.Sprintf("%dx%d", p.Width, p.Width),
			fmtF(p.NoPGLat), fmtF(p.ConvOptLat), fmtF(p.PunchLat),
			fmtF(p.SavedCycles), fmtPct(p.Reduction))
	}
	var b strings.Builder
	b.WriteString("Section 6.6(2): scalability at 0.01 flits/node/cycle (paper reductions: 43.4%, 54.9%, 69.1%)\n")
	b.WriteString(t.String())
	return b.String()
}
