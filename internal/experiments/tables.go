package experiments

import (
	"fmt"
	"strings"

	"powerpunch/internal/config"
	"powerpunch/internal/core"
	"powerpunch/internal/mesh"
)

// FormatTable1 reproduces the paper's Table 1: every distinct set of
// targeted routers on router 27's X+ punch channel of an 8x8 mesh with
// 3-hop punch, plus the resulting channel widths in both dimensions.
func FormatTable1() string {
	m := mesh.New(8, 8)
	enc := core.EncodeChannel(m, 27, mesh.East, 3)
	var b strings.Builder
	b.WriteString("Table 1: punch-signal encoding (router 27, X+ direction, 3-hop)\n\n")
	b.WriteString(enc.FormatTable())
	fmt.Fprintf(&b, "\ndistinct sets: %d (paper: 22) -> %d-bit X channels (paper: 5)\n", len(enc.Codes), enc.WidthBits)
	x3, y3 := core.MaxChannelWidths(m, 3)
	x4, y4 := core.MaxChannelWidths(m, 4)
	fmt.Fprintf(&b, "3-hop widths across all routers: X=%d bits, Y=%d bits (paper: 5, 2)\n", x3, y3)
	fmt.Fprintf(&b, "4-hop widths across all routers: X=%d bits, Y=%d bits (paper: 8, 2; our straight-line\n"+
		"Y enumeration needs one more bit to name the 4th-hop target plus idle)\n", x4, y4)
	return b.String()
}

// FormatTable2 reproduces the paper's Table 2: the key simulation
// parameters of the default configuration.
func FormatTable2() string {
	cfg := config.Default()
	t := &table{header: []string{"parameter", "value"}}
	t.add("Network topology", fmt.Sprintf("%dx%d mesh (also 4x4, 16x16 for scalability)", cfg.Width, cfg.Height))
	t.add("Routing / switching", "XY dimension-order, wormhole")
	t.add("Input buffer depth", fmt.Sprintf("%d-flit data VC, %d-flit control VC", cfg.DataVCDepth, cfg.CtrlVCDepth))
	t.add("Link bandwidth", fmt.Sprintf("%d bits/cycle", cfg.LinkBandwidth))
	t.add("Router", fmt.Sprintf("%d-stage (3-stage speculative and 4-stage supported)", cfg.RouterStages))
	t.add("Virtual channels", fmt.Sprintf("%d data + %d control VCs/VN, 3 VNs", cfg.DataVCs, cfg.CtrlVCs))
	t.add("Coherence protocol", "two-level MESI-style directory (cmp substrate)")
	t.add("Private L1", "32KB, 1-cycle (modelled as request latency)")
	t.add("Shared L2 per bank", fmt.Sprintf("256KB, %d-cycle (ResourceSlack)", cfg.ResourceSlack))
	t.add("Memory controllers", "4, one at each mesh corner")
	t.add("Memory latency", "128 cycles")
	t.add("Wakeup latency (Twakeup)", fmt.Sprintf("%d cycles (swept 6-12 in Figure 13)", cfg.WakeupLatency))
	t.add("Break-even time", fmt.Sprintf("%d cycles", cfg.BreakEven))
	t.add("Idle timeout", fmt.Sprintf("%d cycles (ConvOpt), %d (punch schemes)", cfg.IdleTimeout, cfg.PunchIdleTimeout))
	t.add("Punch hop slack", fmt.Sprintf("%d hops", cfg.PunchHops))
	t.add("NI latency", fmt.Sprintf("%d cycles", cfg.NILatency))

	var b strings.Builder
	b.WriteString("Table 2: key parameters for simulation\n")
	b.WriteString(t.String())
	return b.String()
}

// FormatArea renders the Section 6.6(1) area analysis.
func FormatArea() string {
	rep := core.EstimateArea(config.Default(), core.DefaultAreaModel())
	var b strings.Builder
	b.WriteString("Section 6.6(1): Power Punch hardware cost\n\n")
	b.WriteString(rep.String())
	return b.String()
}
