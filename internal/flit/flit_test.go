package flit

import (
	"testing"
	"testing/quick"
)

func TestNewFlitsSingle(t *testing.T) {
	p := &Packet{ID: 1, Size: 1}
	fs := NewFlits(p)
	if len(fs) != 1 || fs[0].Type != HeadTail {
		t.Fatalf("single-flit packet: %v", fs)
	}
	if !fs[0].Type.IsHead() || !fs[0].Type.IsTail() {
		t.Error("HeadTail must be both head and tail")
	}
}

func TestNewFlitsMulti(t *testing.T) {
	p := &Packet{ID: 2, Size: 5}
	fs := NewFlits(p)
	if len(fs) != 5 {
		t.Fatalf("got %d flits", len(fs))
	}
	if fs[0].Type != Head || fs[4].Type != Tail {
		t.Errorf("ends: %v %v", fs[0].Type, fs[4].Type)
	}
	for i := 1; i < 4; i++ {
		if fs[i].Type != Body {
			t.Errorf("flit %d is %v, want Body", i, fs[i].Type)
		}
	}
	for i, f := range fs {
		if f.Seq != i || f.Packet != p {
			t.Errorf("flit %d: seq=%d packet=%p", i, f.Seq, f.Packet)
		}
	}
}

func TestNewFlitsProperties(t *testing.T) {
	// Property: exactly one head-bearing and one tail-bearing flit per
	// packet, and sequence numbers are 0..Size-1.
	f := func(sizeRaw uint8) bool {
		size := int(sizeRaw%16) + 1
		p := &Packet{Size: size}
		fs := NewFlits(p)
		heads, tails := 0, 0
		for i, fl := range fs {
			if fl.Seq != i {
				return false
			}
			if fl.Type.IsHead() {
				heads++
			}
			if fl.Type.IsTail() {
				tails++
			}
		}
		return heads == 1 && tails == 1 && len(fs) == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewFlitsPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size 0")
		}
	}()
	NewFlits(&Packet{Size: 0})
}

func TestLatencyAccessors(t *testing.T) {
	p := &Packet{CreatedAt: 10, InjectedAt: 15, EjectedAt: 40}
	if p.NetworkLatency() != 30 {
		t.Errorf("NetworkLatency = %d", p.NetworkLatency())
	}
	if p.RouterLatency() != 25 {
		t.Errorf("RouterLatency = %d", p.RouterLatency())
	}
}

func TestStrings(t *testing.T) {
	if VNRequest.String() != "req" || VNCoherence.String() != "coh" || VNResponse.String() != "resp" {
		t.Error("VN names")
	}
	if KindControl.String() != "ctrl" || KindData.String() != "data" {
		t.Error("kind names")
	}
	if Head.String() != "H" || Body.String() != "B" || Tail.String() != "T" || HeadTail.String() != "HT" {
		t.Error("flit type names")
	}
	p := &Packet{ID: 3, Src: 1, Dst: 2, VN: VNResponse, Kind: KindData, Size: 5}
	if p.String() == "" || NewFlits(p)[0].String() == "" {
		t.Error("empty String()")
	}
}

func TestNumVirtualNetworks(t *testing.T) {
	if NumVirtualNetworks != 3 {
		t.Errorf("the paper's MESI configuration needs exactly 3 VNs, got %d", NumVirtualNetworks)
	}
}
