// Package link models inter-router channels as fixed-latency pipes:
// anything pushed in cycle t becomes visible to the receiver in cycle
// t + delay. Flit channels, credit channels, and any other latched
// sideband all use the same generic pipe.
package link

import "fmt"

// Pipe is a fixed-latency delivery queue. The zero value is unusable;
// use NewPipe. Pipe is not concurrency-safe: the simulator's single
// cycle loop owns it.
type Pipe[T any] struct {
	delay int64
	q     []entry[T]
}

type entry[T any] struct {
	at int64
	v  T
}

// NewPipe returns a pipe with the given latency in cycles (>= 1).
func NewPipe[T any](delay int) *Pipe[T] {
	if delay < 1 {
		panic(fmt.Sprintf("link: pipe delay must be >= 1, got %d", delay))
	}
	// One push per cycle stays in flight for `delay` cycles, so the
	// queue's steady-state occupancy is bounded by delay plus the
	// consumer's same-cycle lag. Preallocating that bound keeps Push
	// allocation-free in the steady state (append still grows the
	// queue if a caller bursts past it).
	return &Pipe[T]{delay: int64(delay), q: make([]entry[T], 0, delay+2)}
}

// Delay returns the pipe latency in cycles.
func (p *Pipe[T]) Delay() int { return int(p.delay) }

// Push enqueues v at cycle now; it arrives at now + delay. Pushes must
// occur in nondecreasing `now` order.
func (p *Pipe[T]) Push(v T, now int64) {
	p.q = append(p.q, entry[T]{at: now + p.delay, v: v})
}

// PopArrived removes and returns every item whose arrival time is <= now,
// in FIFO order. The returned slice is valid until the next call.
func (p *Pipe[T]) PopArrived(now int64) []T {
	n := 0
	for n < len(p.q) && p.q[n].at <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]T, n)
	for i := 0; i < n; i++ {
		out[i] = p.q[i].v
	}
	p.q = p.q[:copy(p.q, p.q[n:])]
	return out
}

// Empty reports whether nothing is in flight.
func (p *Pipe[T]) Empty() bool { return len(p.q) == 0 }

// Len returns the number of in-flight items.
func (p *Pipe[T]) Len() int { return len(p.q) }

// Drain invokes fn on every item whose arrival time is <= now, in FIFO
// order, removing them from the pipe. It allocates nothing and is the
// preferred form in the cycle loop.
func (p *Pipe[T]) Drain(now int64, fn func(T)) {
	n := 0
	for n < len(p.q) && p.q[n].at <= now {
		fn(p.q[n].v)
		n++
	}
	if n > 0 {
		p.q = p.q[:copy(p.q, p.q[n:])]
	}
}

// DrainAppend removes every item whose arrival time is <= now, in FIFO
// order, appending them to buf and returning the extended slice. It is
// the closure-free counterpart of Drain for the allocation-free cycle
// loop: callers pass a reused scratch slice (typically buf[:0]).
func (p *Pipe[T]) DrainAppend(now int64, buf []T) []T {
	n := 0
	for n < len(p.q) && p.q[n].at <= now {
		buf = append(buf, p.q[n].v)
		n++
	}
	if n > 0 {
		p.q = p.q[:copy(p.q, p.q[n:])]
	}
	return buf
}

// ForEach visits every in-flight item in FIFO order without removing it
// (used by invariant checks).
func (p *Pipe[T]) ForEach(fn func(T)) {
	for i := range p.q {
		fn(p.q[i].v)
	}
}

// StaleCount returns the number of in-flight items already due (arrival
// time <= now). After a cycle's delivery phase it must be zero; the
// invariant engine uses it to detect missed deliveries.
func (p *Pipe[T]) StaleCount(now int64) int {
	n := 0
	for i := range p.q {
		if p.q[i].at <= now {
			n++
		}
	}
	return n
}
