package link

import (
	"testing"
	"testing/quick"
)

func TestPipeDelay(t *testing.T) {
	p := NewPipe[int](2)
	p.Push(7, 10)
	if got := p.PopArrived(11); got != nil {
		t.Fatalf("arrived early: %v", got)
	}
	got := p.PopArrived(12)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("PopArrived(12) = %v", got)
	}
	if !p.Empty() {
		t.Error("pipe should be empty")
	}
}

func TestPipeFIFOOrder(t *testing.T) {
	p := NewPipe[int](1)
	for i := 0; i < 5; i++ {
		p.Push(i, int64(i))
	}
	var got []int
	for now := int64(0); now < 10; now++ {
		got = append(got, p.PopArrived(now)...)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("lost items: %v", got)
	}
}

func TestDrainMatchesPopArrived(t *testing.T) {
	// Property: Drain delivers the same items in the same order as
	// PopArrived for any push pattern.
	f := func(delaysRaw []uint8) bool {
		a, b := NewPipe[int](3), NewPipe[int](3)
		now := int64(0)
		for i, d := range delaysRaw {
			now += int64(d % 4)
			a.Push(i, now)
			b.Push(i, now)
		}
		end := now + 10
		var va, vb []int
		for c := int64(0); c <= end; c++ {
			va = append(va, a.PopArrived(c)...)
			b.Drain(c, func(v int) { vb = append(vb, v) })
		}
		if len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
		return a.Empty() && b.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipePartialDrain(t *testing.T) {
	p := NewPipe[string](1)
	p.Push("a", 0)
	p.Push("b", 5)
	if got := p.PopArrived(1); len(got) != 1 || got[0] != "a" {
		t.Fatalf("PopArrived(1) = %v", got)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	if got := p.PopArrived(6); len(got) != 1 || got[0] != "b" {
		t.Fatalf("PopArrived(6) = %v", got)
	}
}

func TestNewPipePanicsOnZeroDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPipe[int](0)
}

func TestDelayAccessor(t *testing.T) {
	if NewPipe[int](3).Delay() != 3 {
		t.Error("Delay accessor")
	}
}
