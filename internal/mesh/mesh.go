// Package mesh models 2D mesh network-on-chip topologies: node naming,
// coordinates, directions, ports, and link enumeration.
//
// Nodes are numbered row-major, matching the paper's Figure 4: node 0 is
// the top-left corner, X+ grows to the right (east), and Y+ grows downward
// (south). Router 27 of the paper's 8x8 example is therefore at column 3,
// row 3.
package mesh

import "fmt"

// NodeID identifies a router (and its co-located network interface) in a
// mesh. IDs are dense, row-major, in [0, Width*Height).
type NodeID int

// Invalid is returned by lookups that have no answer (e.g. the neighbor
// beyond an edge of the mesh).
const Invalid NodeID = -1

// Direction labels the four mesh directions plus the local port.
// The zero value is North.
type Direction int

// The five router ports. North is Y-, South is Y+, East is X+, West is X-,
// mirroring the paper's axis convention (Figure 4: X+ right, Y+ down).
const (
	North Direction = iota // Y-
	South                  // Y+
	East                   // X+
	West                   // X-
	Local                  // to/from the network interface
)

// NumPorts is the number of router ports in a 2D mesh router (4 mesh
// directions + 1 local port).
const NumPorts = 5

// NumLinkDirs is the number of inter-router directions (excludes Local).
const NumLinkDirs = 4

// LinkDirections lists the four inter-router directions in a fixed order
// convenient for iteration.
var LinkDirections = [NumLinkDirs]Direction{North, South, East, West}

// String returns the conventional compass name of the direction.
func (d Direction) String() string {
	switch d {
	case North:
		return "N"
	case South:
		return "S"
	case East:
		return "E"
	case West:
		return "W"
	case Local:
		return "L"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Opposite returns the direction a flit arrives from when sent toward d.
// Opposite(Local) is Local.
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Local
	}
}

// IsX reports whether the direction lies in the X dimension.
func (d Direction) IsX() bool { return d == East || d == West }

// IsY reports whether the direction lies in the Y dimension.
func (d Direction) IsY() bool { return d == North || d == South }

// Coord is a mesh coordinate. X is the column, Y the row.
type Coord struct {
	X, Y int
}

// Mesh is an immutable W x H 2D mesh topology.
type Mesh struct {
	width, height int
}

// New returns a mesh of the given width and height. It panics if either
// dimension is < 1; topology construction errors are programming errors,
// not runtime conditions.
func New(width, height int) *Mesh {
	if width < 1 || height < 1 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", width, height))
	}
	return &Mesh{width: width, height: height}
}

// Width returns the number of columns.
func (m *Mesh) Width() int { return m.width }

// Height returns the number of rows.
func (m *Mesh) Height() int { return m.height }

// NumNodes returns the total node count.
func (m *Mesh) NumNodes() int { return m.width * m.height }

// Contains reports whether id is a valid node of this mesh.
func (m *Mesh) Contains(id NodeID) bool {
	return id >= 0 && int(id) < m.NumNodes()
}

// CoordOf returns the coordinate of node id.
func (m *Mesh) CoordOf(id NodeID) Coord {
	return Coord{X: int(id) % m.width, Y: int(id) / m.width}
}

// NodeAt returns the node at coordinate c, or Invalid if c is outside the
// mesh.
func (m *Mesh) NodeAt(c Coord) NodeID {
	if c.X < 0 || c.X >= m.width || c.Y < 0 || c.Y >= m.height {
		return Invalid
	}
	return NodeID(c.Y*m.width + c.X)
}

// Neighbor returns the node adjacent to id in direction d, or Invalid if
// the link would leave the mesh (or d is Local).
func (m *Mesh) Neighbor(id NodeID, d Direction) NodeID {
	c := m.CoordOf(id)
	switch d {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return Invalid
	}
	return m.NodeAt(c)
}

// Step returns the coordinate delta of one hop in direction d.
func Step(d Direction) (dx, dy int) {
	switch d {
	case North:
		return 0, -1
	case South:
		return 0, 1
	case East:
		return 1, 0
	case West:
		return -1, 0
	default:
		return 0, 0
	}
}

// HopDistance returns the Manhattan distance between two nodes, which is
// the hop count of any minimal (and of the XY) path between them.
func (m *Mesh) HopDistance(a, b NodeID) int {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// Link is a unidirectional router-to-router channel.
type Link struct {
	Src NodeID
	Dst NodeID
	Dir Direction // direction of travel leaving Src
}

// Links enumerates every unidirectional inter-router link in the mesh, in
// a deterministic order (by source node, then direction order N,S,E,W).
func (m *Mesh) Links() []Link {
	var links []Link
	for id := NodeID(0); m.Contains(id); id++ {
		for _, d := range LinkDirections {
			if n := m.Neighbor(id, d); n != Invalid {
				links = append(links, Link{Src: id, Dst: n, Dir: d})
			}
		}
	}
	return links
}

// NodesWithin returns all nodes whose hop distance from id is in [1, k],
// in ascending NodeID order. It is used by the punch encoder to reason
// about which routers a punch channel can serve (paper Section 3's
// "24 routers within 3 hops of router 27" example).
func (m *Mesh) NodesWithin(id NodeID, k int) []NodeID {
	var out []NodeID
	for n := NodeID(0); m.Contains(n); n++ {
		if n == id {
			continue
		}
		if d := m.HopDistance(id, n); d >= 1 && d <= k {
			out = append(out, n)
		}
	}
	return out
}

// Corners returns the four corner nodes (or fewer for degenerate meshes)
// in the order NW, NE, SW, SE. The paper places one memory controller at
// each corner.
func (m *Mesh) Corners() []NodeID {
	set := map[NodeID]bool{}
	var out []NodeID
	for _, c := range []Coord{
		{0, 0},
		{m.width - 1, 0},
		{0, m.height - 1},
		{m.width - 1, m.height - 1},
	} {
		id := m.NodeAt(c)
		if !set[id] {
			set[id] = true
			out = append(out, id)
		}
	}
	return out
}

// String returns a short description such as "8x8 mesh".
func (m *Mesh) String() string {
	return fmt.Sprintf("%dx%d mesh", m.width, m.height)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
