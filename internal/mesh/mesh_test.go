package mesh

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadDimensions(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestCoordRoundTrip(t *testing.T) {
	m := New(8, 8)
	for id := NodeID(0); m.Contains(id); id++ {
		c := m.CoordOf(id)
		if got := m.NodeAt(c); got != id {
			t.Fatalf("NodeAt(CoordOf(%d)) = %d", id, got)
		}
	}
}

func TestPaperNodeNumbering(t *testing.T) {
	// Figure 4: node 27 of the 8x8 mesh is at column 3, row 3; its X+
	// neighbor is 28 and its Y+ neighbor is 35.
	m := New(8, 8)
	if c := m.CoordOf(27); c.X != 3 || c.Y != 3 {
		t.Fatalf("CoordOf(27) = %+v, want (3,3)", c)
	}
	if got := m.Neighbor(27, East); got != 28 {
		t.Errorf("East neighbor of 27 = %d, want 28", got)
	}
	if got := m.Neighbor(27, South); got != 35 {
		t.Errorf("South neighbor of 27 = %d, want 35", got)
	}
	if got := m.Neighbor(27, North); got != 19 {
		t.Errorf("North neighbor of 27 = %d, want 19", got)
	}
	if got := m.Neighbor(27, West); got != 26 {
		t.Errorf("West neighbor of 27 = %d, want 26", got)
	}
}

func TestNeighborEdges(t *testing.T) {
	m := New(4, 4)
	cases := []struct {
		id  NodeID
		d   Direction
		out NodeID
	}{
		{0, North, Invalid},
		{0, West, Invalid},
		{3, East, Invalid},
		{12, South, Invalid},
		{15, East, Invalid},
		{5, Local, Invalid},
	}
	for _, c := range cases {
		if got := m.Neighbor(c.id, c.d); got != c.out {
			t.Errorf("Neighbor(%d,%v) = %d, want %d", c.id, c.d, got, c.out)
		}
	}
}

func TestOppositeInvolution(t *testing.T) {
	for _, d := range LinkDirections {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not an involution for %v", d)
		}
		if d.Opposite() == d {
			t.Errorf("Opposite(%v) == %v", d, d)
		}
	}
	if Local.Opposite() != Local {
		t.Error("Opposite(Local) != Local")
	}
}

func TestNeighborSymmetry(t *testing.T) {
	// Property: if B is A's neighbor in direction d, then A is B's
	// neighbor in the opposite direction.
	m := New(7, 5)
	f := func(idRaw uint8, dRaw uint8) bool {
		id := NodeID(int(idRaw) % m.NumNodes())
		d := LinkDirections[int(dRaw)%NumLinkDirs]
		nb := m.Neighbor(id, d)
		if nb == Invalid {
			return true
		}
		return m.Neighbor(nb, d.Opposite()) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopDistanceProperties(t *testing.T) {
	// Property: symmetric, zero iff equal, and satisfies the triangle
	// inequality (it is the L1 metric).
	m := New(8, 8)
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a := NodeID(int(aRaw) % m.NumNodes())
		b := NodeID(int(bRaw) % m.NumNodes())
		c := NodeID(int(cRaw) % m.NumNodes())
		dab, dba := m.HopDistance(a, b), m.HopDistance(b, a)
		if dab != dba {
			return false
		}
		if (dab == 0) != (a == b) {
			return false
		}
		return m.HopDistance(a, c) <= dab+m.HopDistance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinksCount(t *testing.T) {
	// A WxH mesh has 2*(W*(H-1) + H*(W-1)) unidirectional links.
	for _, dims := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {3, 5}} {
		m := New(dims[0], dims[1])
		want := 2 * (dims[0]*(dims[1]-1) + dims[1]*(dims[0]-1))
		if got := len(m.Links()); got != want {
			t.Errorf("%v: %d links, want %d", m, got, want)
		}
	}
}

func TestLinksAreValidAndUnique(t *testing.T) {
	m := New(5, 4)
	seen := map[Link]bool{}
	for _, l := range m.Links() {
		if seen[l] {
			t.Fatalf("duplicate link %+v", l)
		}
		seen[l] = true
		if m.Neighbor(l.Src, l.Dir) != l.Dst {
			t.Fatalf("link %+v inconsistent with Neighbor", l)
		}
	}
}

func TestNodesWithinPaperExample(t *testing.T) {
	// Section 3: "There are 24 routers within 3 hops of router 27" on
	// the 8x8 mesh.
	m := New(8, 8)
	if got := len(m.NodesWithin(27, 3)); got != 24 {
		t.Errorf("NodesWithin(27, 3) = %d routers, want 24 (paper Section 3)", got)
	}
}

func TestCorners(t *testing.T) {
	m := New(8, 8)
	want := []NodeID{0, 7, 56, 63}
	got := m.Corners()
	if len(got) != 4 {
		t.Fatalf("Corners() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("corner %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Degenerate meshes deduplicate.
	if got := New(2, 2).Corners(); len(got) != 4 {
		t.Errorf("2x2 corners = %v", got)
	}
}

func TestStepMatchesNeighbor(t *testing.T) {
	m := New(6, 6)
	for _, d := range LinkDirections {
		dx, dy := Step(d)
		c := m.CoordOf(14)
		want := m.NodeAt(Coord{X: c.X + dx, Y: c.Y + dy})
		if got := m.Neighbor(14, d); got != want {
			t.Errorf("Step/Neighbor mismatch for %v: %d vs %d", d, got, want)
		}
	}
}

func TestDirectionStrings(t *testing.T) {
	if North.String() != "N" || South.String() != "S" || East.String() != "E" ||
		West.String() != "W" || Local.String() != "L" {
		t.Error("unexpected direction names")
	}
	if !East.IsX() || !West.IsX() || East.IsY() {
		t.Error("IsX misclassifies")
	}
	if !North.IsY() || !South.IsY() || North.IsX() {
		t.Error("IsY misclassifies")
	}
}
