package network

import (
	"testing"

	"powerpunch/internal/check"
	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/pg"
)

// activeTestConfig returns a 4x4 configuration with an unbounded
// measurement window, the shape every active-set edge-case test shares.
func activeTestConfig(s config.Scheme) config.Config {
	cfg := testConfig(s)
	return cfg
}

// stepUntilSetEmpty steps until the active set drains, failing after
// bound cycles. Returns the cycle count stepped.
func stepUntilSetEmpty(t *testing.T, n *Network, bound int) int {
	t.Helper()
	for i := 0; i < bound; i++ {
		if len(n.ActiveNodes()) == 0 {
			return i
		}
		n.Step()
	}
	t.Fatalf("active set not empty after %d cycles: %v", bound, n.ActiveNodes())
	return 0
}

// snapshotNodeSteps copies every node's in-set cycle count.
func snapshotNodeSteps(n *Network) []int64 {
	out := make([]int64, len(n.Routers))
	for i := range n.Routers {
		out[i] = n.NodeSteps(mesh.NodeID(i))
	}
	return out
}

// TestIdleNetworkGatesAndDrainsAtExactCycle pins the idle-timer expiry
// path with empty buffers: a fresh network with no traffic retires every
// node after exactly ONE stepped cycle — the scheduler does not babysit
// a deterministic idle countdown — yet the lazily-replayed controllers
// still reach Draining and Gated at exactly the cycles the full walk
// would: Draining through cycle timeout-1, Gated from cycle timeout.
// ConvOpt uses the long (break-even-oriented) filter, the punch schemes
// the 2-cycle minimum.
func TestIdleNetworkGatesAndDrainsAtExactCycle(t *testing.T) {
	cases := []struct {
		scheme  config.Scheme
		timeout func(cfg config.Config) int
	}{
		{config.ConvOptPG, func(cfg config.Config) int { return cfg.IdleTimeout }},
		{config.PowerPunchPG, func(cfg config.Config) int { return cfg.PunchIdleTimeout }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scheme.String(), func(t *testing.T) {
			cfg := activeTestConfig(tc.scheme)
			n := mustNew(t, cfg)
			timeout := tc.timeout(cfg)

			// The first cycle steps all nodes once; with nothing buffered
			// and no levels asserted, every node retires that same cycle.
			n.Step()
			if got := len(n.ActiveNodes()); got != 0 {
				t.Fatalf("cycle 1: want empty active set, got %v", n.ActiveNodes())
			}

			// One cycle before the timeout, the (replayed) FSMs are still
			// Draining...
			for i := 1; i < timeout-1; i++ {
				n.Step()
			}
			n.SyncInspection()
			for _, r := range n.Routers {
				if s := r.Ctrl.State(); s != pg.Draining {
					t.Fatalf("cycle %d: router %d is %v, want draining", timeout-1, r.ID, s)
				}
			}

			// ...and the timeout cycle gates every router, all without any
			// node re-entering the set.
			n.Step()
			n.SyncInspection()
			for _, r := range n.Routers {
				if s := r.Ctrl.State(); s != pg.Gated {
					t.Fatalf("cycle %d: router %d is %v, want gated", timeout, r.ID, s)
				}
			}
			for i := range n.Routers {
				if got := n.NodeSteps(mesh.NodeID(i)); got != 1 {
					t.Fatalf("node %d stepped %d cycles, want exactly 1", i, got)
				}
			}
		})
	}
}

// TestDrainDeactivationFreezesNodeSteps pins last-flit drain
// deactivation and the exactness of batched catch-up: after one packet
// delivers and the network re-gates, the active set empties, node step
// counts freeze completely, and 200 further skipped cycles are charged
// to the gated routers exactly (200 gated-cycles per router), proving a
// skipped cycle and a stepped idle cycle are indistinguishable in the
// accounts.
func TestDrainDeactivationFreezesNodeSteps(t *testing.T) {
	cfg := activeTestConfig(config.PowerPunchPG)
	n := mustNew(t, cfg)

	p := n.NewPacket(0, 15, flit.VNRequest, flit.KindControl)
	n.NI(0).Submit(p, true, 0)
	for i := 0; p.EjectedAt == 0; i++ {
		if i > 2000 {
			t.Fatalf("packet not delivered after 2000 cycles")
		}
		n.Step()
	}
	stepUntilSetEmpty(t, n, 200)
	if !n.Quiesced() {
		t.Fatal("active set empty but network not quiesced")
	}
	// Give the lazily-replayed FSMs time to pass their idle timeout, then
	// confirm the whole mesh gated without any node re-entering the set.
	for i := 0; i < 50; i++ {
		n.Step()
	}
	if got := len(n.ActiveNodes()); got != 0 {
		t.Fatalf("idle stepping re-armed nodes: %v", n.ActiveNodes())
	}
	n.SyncInspection()
	for _, r := range n.Routers {
		if s := r.Ctrl.State(); s != pg.Gated {
			t.Fatalf("router %d is %v after drain, want gated", r.ID, s)
		}
	}

	before := snapshotNodeSteps(n)
	gatedBefore := n.Report().Totals().GatedCycles
	start := n.Now()
	for i := 0; i < 200; i++ {
		n.Step()
	}
	if n.Now() != start+200 {
		t.Fatalf("cycle counter: got %d, want %d", n.Now(), start+200)
	}
	if got := len(n.ActiveNodes()); got != 0 {
		t.Fatalf("idle stepping re-armed nodes: %v", n.ActiveNodes())
	}
	for i, b := range before {
		if got := n.NodeSteps(mesh.NodeID(i)); got != b {
			t.Fatalf("node %d stepped while quiescent: %d -> %d", i, b, got)
		}
	}
	// Report() syncs parked nodes: exactly one gated-cycle per router per
	// skipped cycle.
	want := gatedBefore + 200*int64(len(n.Routers))
	if got := n.Report().Totals().GatedCycles; got != want {
		t.Fatalf("deferred gated-cycle charge: got %d, want exactly %d", got, want)
	}
}

// TestPunchWakesQuiescentGatedRouter pins the punch-arrival wakeup of a
// router that has left the active set: with the whole mesh gated and the
// set empty, a single injection re-arms only the source, and the punch
// fabric's holds re-arm the gated path routers — which the NI never
// touches — before the packet needs them awake.
func TestPunchWakesQuiescentGatedRouter(t *testing.T) {
	cfg := activeTestConfig(config.PowerPunchPG)
	n := mustNew(t, cfg)
	stepUntilSetEmpty(t, n, 50)
	// Step past the idle timeout so the retired routers' replayed FSMs
	// are all Gated before the punch scenario begins.
	for i := 0; i < 20; i++ {
		n.Step()
	}
	n.SyncInspection()
	for _, r := range n.Routers {
		if s := r.Ctrl.State(); s != pg.Gated {
			t.Fatalf("setup: router %d is %v, want gated", r.ID, s)
		}
	}

	path := []mesh.NodeID{1, 2, 3} // XY route of 0 -> 3: straight along the row
	before := snapshotNodeSteps(n)
	punchBefore := make(map[mesh.NodeID]int64)
	for _, id := range path {
		punchBefore[id] = n.Routers[id].Ctrl.Stats().WakeupsPunch
	}

	p := n.NewPacket(0, 3, flit.VNRequest, flit.KindControl)
	n.NI(0).Submit(p, true, n.Now())
	// The injection arms exactly the source node; the gated path routers
	// stay parked until a punch (or WU level) names them.
	if got := n.ActiveNodes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("after submit, want active set [0], got %v", got)
	}

	for i := 0; p.EjectedAt == 0; i++ {
		if i > 2000 {
			t.Fatalf("packet not delivered after 2000 cycles")
		}
		n.Step()
	}

	n.SyncInspection()
	var punchWakes int64
	for _, id := range path {
		if got := n.NodeSteps(id); got <= before[id] {
			t.Errorf("path router %d never re-entered the active set (steps %d)", id, got)
		}
		punchWakes += n.Routers[id].Ctrl.Stats().WakeupsPunch - punchBefore[id]
	}
	if punchWakes == 0 {
		t.Errorf("no path router woke by punch; the wakeups were not punch-driven")
	}

	// The mesh re-gates and the set drains again once the packet is out.
	stepUntilSetEmpty(t, n, 200)
	for i := 0; i < 20; i++ {
		n.Step()
	}
	n.SyncInspection()
	for _, r := range n.Routers {
		if s := r.Ctrl.State(); s != pg.Gated {
			t.Fatalf("router %d is %v after re-drain, want gated", r.ID, s)
		}
	}
}

// TestCreditReturnToRetiredUpstream pins the credit-return path across a
// parked node: an upstream router may leave the active set with credits
// still in flight back toward it (the downstream owner of the credit
// pipe delivers them), and its credit state must be exact — full — when
// the link goes quiet, without the credits ever re-arming it.
func TestCreditReturnToRetiredUpstream(t *testing.T) {
	cfg := activeTestConfig(config.NoPG)
	n := mustNew(t, cfg)

	// A data packet 0 -> 1 crosses one East link using more flits (5)
	// than any VC holds (3), so credit returns continue after the source
	// router has emptied and parked.
	p := n.NewPacket(0, 1, flit.VNRequest, flit.KindData)
	n.NI(0).Submit(p, true, 0)

	op := n.Routers[0].Out(mesh.East)
	depth := func(v int) int { return cfg.VCDepth(v % cfg.VCsPerVN()) }
	creditsOutstanding := func() bool {
		for v := 0; v < n.Routers[0].NumVCs(); v++ {
			if op.Credits(v) < depth(v) {
				return true
			}
		}
		return false
	}
	inSet := func(id mesh.NodeID) bool { return n.sched.inSet[id] }

	sawParkedWithCreditsInFlight := false
	for i := 0; i < 400; i++ {
		n.Step()
		n.CheckInvariants()
		if !inSet(0) && creditsOutstanding() {
			sawParkedWithCreditsInFlight = true
			// The pending credits must not have re-armed node 0.
			for _, id := range n.ActiveNodes() {
				if id == 0 {
					t.Fatal("credit in flight re-armed the parked upstream node")
				}
			}
		}
		if p.EjectedAt > 0 && n.Quiesced() && len(n.ActiveNodes()) == 0 {
			break
		}
	}
	if p.EjectedAt == 0 {
		t.Fatal("packet not delivered")
	}
	if !sawParkedWithCreditsInFlight {
		t.Fatal("scenario never materialized: node 0 stayed in the set until all credits returned")
	}
	// Link quiet: every credit found its way home through the parked node.
	for v := 0; v < n.Routers[0].NumVCs(); v++ {
		if got := op.Credits(v); got != depth(v) {
			t.Fatalf("vc%d credits: got %d, want full depth %d", v, got, depth(v))
		}
	}
}

// TestSimultaneousWakeAndSleepInOneCycle drives staggered traffic until
// some cycle both wakes one router (Gated -> Waking) and gates another
// (on -> Gated), and checks the scheduler tracks both sides of the same
// cycle: the woken router is in the active set (a wakeup needs a live
// punch or WU level, which only an armed node can observe), and — every
// cycle, not just that one — every node outside the set satisfies the
// scheduler's own quiescence rule, so nothing that could change
// network-visible state is ever skipped.
func TestSimultaneousWakeAndSleepInOneCycle(t *testing.T) {
	cfg := activeTestConfig(config.PowerPunchPG)
	n := mustNew(t, cfg)

	prev := make([]pg.State, len(n.Routers))
	record := func() {
		for i, r := range n.Routers {
			prev[i] = r.Ctrl.State()
		}
	}
	n.SyncInspection()
	record()

	simultaneous := false
	seq := 0
	for i := 0; i < 4000 && !simultaneous; i++ {
		// Deterministic staggered injections from rotating corners.
		if i%11 == 0 {
			src := mesh.NodeID((seq * 7) % 16)
			dst := mesh.NodeID((seq*5 + 3) % 16)
			if src != dst {
				p := n.NewPacket(src, dst, flit.VNRequest, flit.KindControl)
				n.NI(src).Submit(p, true, n.Now())
			}
			seq++
		}
		n.Step()

		// Set-membership invariant, checked before the states are synced
		// (syncing replays dormant FSMs but must not be needed for it):
		// a retired node is structurally quiescent.
		for j := range n.Routers {
			if !n.sched.inSet[j] && !n.sched.quiescent(int32(j)) {
				t.Fatalf("cycle %d: router %d is outside the active set but not quiescent", n.Now(), j)
			}
		}

		n.SyncInspection()
		wokeThisCycle, sleptThisCycle := -1, -1
		for j, r := range n.Routers {
			cur := r.Ctrl.State()
			if prev[j] == pg.Gated && cur == pg.Waking {
				wokeThisCycle = j
			}
			if (prev[j] == pg.Active || prev[j] == pg.Draining) && cur == pg.Gated {
				sleptThisCycle = j
			}
		}
		if wokeThisCycle >= 0 && sleptThisCycle >= 0 {
			simultaneous = true
			if !n.sched.inSet[wokeThisCycle] {
				t.Fatalf("cycle %d: router %d woke but is not in the active set", n.Now(), wokeThisCycle)
			}
		}
		record()
	}
	if !simultaneous {
		t.Fatal("no cycle had a simultaneous wake and sleep; adjust the injection schedule")
	}
}

// TestDropRearmsFaultIsCaught proves the invariant engine catches a
// scheduler that loses re-arm events (config.Faults.DropRearms): under a
// power-gating scheme the gated victim never observes its wakeup and the
// PG handshake invariants fire; under No-PG the victim holds a delivered
// head flit it never routes and the scheduler-liveness invariant fires.
// Either way the fault is caught by checks, not by silent wrong results.
func TestDropRearmsFaultIsCaught(t *testing.T) {
	run := func(t *testing.T, scheme config.Scheme, wantInvariants ...string) {
		t.Helper()
		cfg := activeTestConfig(scheme)
		cfg.Checks = true
		cfg.Faults.DropRearms = true
		n := mustNew(t, cfg)
		var got *check.Artifact
		n.OnViolation = func(a *check.Artifact) { got = a }

		// Let the mesh park, then push traffic whose re-arms get dropped.
		for i := 0; i < 10; i++ {
			n.Step()
		}
		seq := 0
		for i := 0; i < 3000 && got == nil; i++ {
			if i%17 == 0 {
				src := mesh.NodeID((seq * 3) % 16)
				dst := mesh.NodeID((seq*7 + 5) % 16)
				if src != dst {
					p := n.NewPacket(src, dst, flit.VNRequest, flit.KindControl)
					n.NI(src).Submit(p, true, n.Now())
				}
				seq++
			}
			n.Step()
		}
		if got == nil {
			t.Fatalf("%v: dropped re-arms never tripped an invariant (dropped=%d)",
				scheme, n.DroppedRearms())
		}
		if n.DroppedRearms() == 0 {
			t.Fatalf("%v: violation fired but no re-arm was ever dropped", scheme)
		}
		for _, w := range wantInvariants {
			if got.Violation.Invariant == w {
				return
			}
		}
		t.Fatalf("%v: violation %q (cycle %d), want one of %v",
			scheme, got.Violation.Invariant, got.Violation.Cycle, wantInvariants)
	}

	t.Run("PowerPunch-PG", func(t *testing.T) {
		run(t, config.PowerPunchPG, "pg-wake-handshake")
	})
	t.Run("No-PG", func(t *testing.T) {
		run(t, config.NoPG, "scheduler-liveness")
	})
}
