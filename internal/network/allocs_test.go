package network

import (
	"fmt"
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
)

// TestStepAllocsIdleSteadyState pins the allocation-free hot path on an
// idle, fully-parked mesh: once every node has left the active set,
// Step must not allocate at all — the whole cycle is a handful of
// counter bumps.
func TestStepAllocsIdleSteadyState(t *testing.T) {
	for _, s := range config.AllSchemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := testConfig(s)
			n := mustNew(t, cfg)
			// Warm: deliver one packet so pools and scratch buffers reach
			// their steady sizes, then let the mesh park completely.
			p := n.NewPacket(0, 15, flit.VNRequest, flit.KindControl)
			n.NI(0).Submit(p, true, 0)
			for i := 0; p.EjectedAt == 0 || len(n.ActiveNodes()) > 0; i++ {
				if i > 2000 {
					t.Fatal("network never drained")
				}
				n.Step()
			}
			if avg := testing.AllocsPerRun(200, n.Step); avg != 0 {
				t.Fatalf("idle Step allocates %.2f times per cycle, want 0", avg)
			}
		})
	}
}

// TestStepAllocsRecycledLoads pins the fully-recycled hot path: with
// packet recycling on, even the driver-side packet creation draws from
// the network's pools, so a whole inject+Step cycle — the exact shape
// of the benchmark loop — performs zero allocations at every
// benchmarked load, on both the serial and the sharded parallel
// engine. Without recycling the same loop costs 2–6 allocs/op at
// loads 0.10 and 0.30 (one packet plus its flits per injection).
func TestStepAllocsRecycledLoads(t *testing.T) {
	for _, workers := range []int{0, 4} {
		for _, load := range []float64{0.02, 0.10, 0.30} {
			workers, load := workers, load
			name := "serial"
			if workers > 0 {
				name = "par=4"
			}
			t.Run(fmt.Sprintf("%s/load=%.2f", name, load), func(t *testing.T) {
				cfg := testConfig(config.PowerPunchPG)
				cfg.Workers = workers
				cfg.RecyclePackets = true
				n := mustNew(t, cfg)
				defer n.Close()

				// Deterministic per-node Bernoulli injection at the given
				// load, mirroring the benchmark driver.
				rng := uint64(0x9e3779b97f4a7c15)
				next := func() uint64 {
					rng = rng*6364136223846793005 + 1442695040888963407
					return rng >> 33
				}
				thresh := uint64(load * 1024)
				tick := func() {
					for v := mesh.NodeID(0); v < 16; v++ {
						if next()%1024 >= thresh {
							continue
						}
						dst := mesh.NodeID(next() % 16)
						if dst == v {
							continue
						}
						p := n.NewPacket(v, dst, flit.VirtualNetwork(next()%3), flit.KindControl)
						n.NI(v).Submit(p, true, n.Now())
					}
					n.Step()
				}

				// Warm-up sizes every pool, free list, and per-worker
				// buffer past the in-flight peak the measured window can
				// reach.
				for i := 0; i < 4000; i++ {
					tick()
				}
				if avg := testing.AllocsPerRun(300, tick); avg != 0 {
					t.Fatalf("recycled inject+Step allocates %.3f times per cycle at load %.2f, want 0", avg, load)
				}
			})
		}
	}
}

// TestStepAllocsEnergyAccounting is TestStepAllocsRecycledLoads with
// the per-component energy accountant switched on for the measured
// window: every emission site charges its float expression AND bumps
// its integer event counter, and the whole inject+Step cycle must
// still allocate nothing — on the serial engine and on the sharded
// engine, whose per-worker counter lanes were sized at construction.
func TestStepAllocsEnergyAccounting(t *testing.T) {
	for _, workers := range []int{0, 4} {
		for _, load := range []float64{0.10, 0.30} {
			workers, load := workers, load
			name := "serial"
			if workers > 0 {
				name = "par=4"
			}
			t.Run(fmt.Sprintf("%s/load=%.2f", name, load), func(t *testing.T) {
				cfg := testConfig(config.PowerPunchPG)
				cfg.Workers = workers
				cfg.RecyclePackets = true
				n := mustNew(t, cfg)
				defer n.Close()
				n.SetAccounting(true)

				rng := uint64(0x9e3779b97f4a7c15)
				next := func() uint64 {
					rng = rng*6364136223846793005 + 1442695040888963407
					return rng >> 33
				}
				thresh := uint64(load * 1024)
				tick := func() {
					for v := mesh.NodeID(0); v < 16; v++ {
						if next()%1024 >= thresh {
							continue
						}
						dst := mesh.NodeID(next() % 16)
						if dst == v {
							continue
						}
						p := n.NewPacket(v, dst, flit.VirtualNetwork(next()%3), flit.KindControl)
						n.NI(v).Submit(p, true, n.Now())
					}
					n.Step()
				}
				for i := 0; i < 4000; i++ {
					tick()
				}
				if avg := testing.AllocsPerRun(300, tick); avg != 0 {
					t.Fatalf("accounted inject+Step allocates %.3f times per cycle at load %.2f, want 0", avg, load)
				}
				// The report-time component view must also be hot-path
				// clean: it folds the counters into a stack value.
				if avg := testing.AllocsPerRun(100, func() { _ = n.Acct.Components() }); avg != 0 {
					t.Fatalf("Components() allocates %.3f times per call, want 0", avg)
				}
			})
		}
	}
}

// TestStepAllocsLoadedSteadyState pins zero allocations per cycle with
// traffic in flight: after a warm-up burst has sized every scratch
// buffer, free list, and pool, a steady stream of new packets keeps
// moving through the mesh without a single allocation inside Step. The
// packets themselves are created by the driver (outside the network's
// own tick), exactly as in a real run.
func TestStepAllocsLoadedSteadyState(t *testing.T) {
	for _, s := range []config.Scheme{config.NoPG, config.PowerPunchPG, config.FlyOverPG} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := testConfig(s)
			n := mustNew(t, cfg)

			seq := 0
			inject := func() {
				src := mesh.NodeID((seq * 7) % 16)
				dst := mesh.NodeID((seq*5 + 3) % 16)
				if src != dst {
					kind := flit.KindControl
					if seq%2 == 0 {
						kind = flit.KindData
					}
					p := n.NewPacket(src, dst, flit.VirtualNetwork(seq % 3), kind)
					n.NI(src).Submit(p, true, n.Now())
				}
				seq++
			}

			// Warm-up: enough traffic to size every reusable structure
			// (flit pool per packet size, NI open-injection free list,
			// scratch buffers, scheduler pending list).
			for i := 0; i < 3000; i++ {
				if i%3 == 0 {
					inject()
				}
				n.Step()
			}

			// Measured phase: same load, all allocations must come from
			// the injector, none from Step. Packets are pre-built outside
			// the measured region to isolate the network's own tick.
			const cycles = 300
			type sub struct {
				p  *flit.Packet
				at int
			}
			var subs []sub
			for i := 0; i < cycles; i++ {
				if i%3 == 0 {
					src := mesh.NodeID((seq * 7) % 16)
					dst := mesh.NodeID((seq*5 + 3) % 16)
					if src != dst {
						kind := flit.KindControl
						if seq%2 == 0 {
							kind = flit.KindData
						}
						subs = append(subs, sub{p: n.NewPacket(src, dst, flit.VirtualNetwork(seq % 3), kind), at: i})
					}
					seq++
				}
			}
			si := 0
			i := 0
			step := func() {
				for si < len(subs) && subs[si].at == i {
					n.NI(subs[si].p.Src).Submit(subs[si].p, true, n.Now())
					si++
				}
				n.Step()
				i++
			}
			if avg := testing.AllocsPerRun(cycles, step); avg != 0 {
				t.Fatalf("loaded Step allocates %.3f times per cycle, want 0", avg)
			}
		})
	}
}
