package network

import (
	"testing"

	"powerpunch/internal/check"
	"powerpunch/internal/config"
	"powerpunch/internal/mesh"
	"powerpunch/internal/obs"
)

// totalBypassed sums the per-router bypass grant counters.
func totalBypassed(n *Network) int64 {
	var sum int64
	for _, r := range n.Routers {
		sum += r.FlitsBypassed
	}
	return sum
}

// TestFlyOverBypassFires pins that the FlyOver scheme's bypass path is
// actually exercised — not vacuously clean — under low-load traffic
// where routers gate: flits are granted onto the bypass, every grant
// emits a KindBypass event, the full invariant suite stays silent every
// cycle, and the run still drains completely.
func TestFlyOverBypassFires(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.FlyOverPG
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	cfg.Checks = true
	cfg.CheckInterval = 1
	n := mustNew(t, cfg)
	n.OnViolation = func(a *check.Artifact) { t.Errorf("violation: %v", &a.Violation) }
	probe := &obs.Counters{}
	n.Observe(probe)

	res := runWithDriver(t, n, 17, 0.01, 8000)
	if res.Summary.Ejected == 0 {
		t.Fatal("no packets delivered")
	}
	byp := totalBypassed(n)
	if byp == 0 {
		t.Fatal("FlyOver run granted no bypasses — the scheme is not being exercised")
	}
	if got := probe.Total(obs.KindBypass); got != byp {
		t.Errorf("probe saw %d bypass events, routers granted %d", got, byp)
	}
}

// TestFlyOverEngineDifferential is the bypass scheme's bit-identical
// engine guarantee: the same FlyOver traffic produces an identical
// RunResult — and identical per-router bypass counts — on the serial
// active-set scheduler, the FullTick full walk, and the sharded
// parallel engine at 2, 4, and 8 workers, on both the open mesh and
// the wrapped torus (whose dateline classes the landing-VC allocation
// must respect).
func TestFlyOverEngineDifferential(t *testing.T) {
	fabrics := []struct {
		topo          string
		width, height int
	}{
		{"mesh", 8, 8},
		{"torus", 4, 4},
	}
	for _, fab := range fabrics {
		fab := fab
		t.Run(fab.topo, func(t *testing.T) {
			t.Parallel()
			base := func() config.Config {
				cfg := config.Default()
				cfg.Scheme = config.FlyOverPG
				cfg.Topology = fab.topo
				cfg.Width, cfg.Height = fab.width, fab.height
				cfg.WarmupCycles = 0
				cfg.MeasureCycles = 1 << 40
				return cfg
			}

			ref := mustNew(t, base())
			want := runWithDriver(t, ref, 23, 0.015, 5000)
			wantByp := totalBypassed(ref)
			if wantByp == 0 {
				t.Fatal("reference run granted no bypasses — differential is vacuous")
			}

			variants := []struct {
				name   string
				mutate func(*config.Config)
			}{
				{"full-tick", func(c *config.Config) { c.FullTick = true }},
				{"workers=2", func(c *config.Config) { c.Workers = 2 }},
				{"workers=4", func(c *config.Config) { c.Workers = 4 }},
				{"workers=8", func(c *config.Config) { c.Workers = 8 }},
			}
			for _, v := range variants {
				v := v
				t.Run(v.name, func(t *testing.T) {
					t.Parallel()
					cfg := base()
					v.mutate(&cfg)
					n := mustNew(t, cfg)
					defer n.Close()
					got := runWithDriver(t, n, 23, 0.015, 5000)
					if got != want {
						t.Errorf("%s diverged from serial reference:\n want %+v\n  got %+v", v.name, want, got)
					}
					if byp := totalBypassed(n); byp != wantByp {
						t.Errorf("%s granted %d bypasses, serial reference %d", v.name, byp, wantByp)
					}
				})
			}
		})
	}
}

// TestFlyOverBypassNeverBlocksNonGatedPath is the metamorphic
// cross-scheme relation behind the scheme's name: FlyOver is ConvOpt
// plus a bypass that only ever REMOVES a reason to stall — it serves
// flits a gated neighbor would otherwise block and suppresses only
// wakeups the bypass itself replaces. Under identical traffic, FlyOver
// must therefore deliver every packet the ConvOpt run delivers, and
// its per-packet blocked-router and wakeup-wait averages must not
// exceed ConvOpt's.
func TestFlyOverBypassNeverBlocksNonGatedPath(t *testing.T) {
	run := func(s config.Scheme) (RunResult, *Network) {
		cfg := config.Default()
		cfg.Scheme = s
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40
		cfg.Checks = true
		cfg.CheckInterval = 1
		n := mustNew(t, cfg)
		n.OnViolation = func(a *check.Artifact) { t.Errorf("%v: violation: %v", s, &a.Violation) }
		return runWithDriver(t, n, 29, 0.01, 6000), n
	}
	conv, _ := run(config.ConvOptPG)
	fly, fn := run(config.FlyOverPG)

	if totalBypassed(fn) == 0 {
		t.Fatal("FlyOver leg granted no bypasses — relation is vacuous")
	}
	if fly.Summary.Ejected != conv.Summary.Ejected {
		t.Errorf("FlyOver delivered %d packets, ConvOpt %d — identical traffic must deliver identically",
			fly.Summary.Ejected, conv.Summary.Ejected)
	}
	if fly.Summary.AvgBlocked > conv.Summary.AvgBlocked {
		t.Errorf("FlyOver blocked-routers/packet %.4f exceeds ConvOpt %.4f — bypass added blocking",
			fly.Summary.AvgBlocked, conv.Summary.AvgBlocked)
	}
	if fly.Summary.AvgWakeWait > conv.Summary.AvgWakeWait {
		t.Errorf("FlyOver wakeup-wait/packet %.4f exceeds ConvOpt %.4f — bypass added wake stalls",
			fly.Summary.AvgWakeWait, conv.Summary.AvgWakeWait)
	}
}

// TestBypassRequiresUnitLinkLatency pins the config gate: the bypass
// path latches a flit across the flown-over router in a single cycle,
// which is only coherent with LinkLatency 1.
func TestBypassRequiresUnitLinkLatency(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.FlyOverPG
	cfg.LinkLatency = 2
	if err := cfg.Validate(); err == nil {
		t.Fatal("FlyOver with LinkLatency=2 validated; want error")
	}
}

// bypassEventSink records every KindBypass event for shape assertions.
type bypassEventSink struct {
	events []obs.Event
}

func (s *bypassEventSink) Event(e *obs.Event) {
	if e.Kind == obs.KindBypass {
		s.events = append(s.events, *e)
	}
}

// TestFlyOverObsEventShape pins the KindBypass event contract: Node is
// the granting router, Src the flown-over neighbor one hop along the
// travel direction, Dst the landing router two hops out.
func TestFlyOverObsEventShape(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.FlyOverPG
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	n := mustNew(t, cfg)
	sink := &bypassEventSink{}
	n.Observe(sink)
	runWithDriver(t, n, 17, 0.01, 6000)
	if len(sink.events) == 0 {
		t.Fatal("no bypass events observed")
	}
	if want := totalBypassed(n); int64(len(sink.events)) != want {
		t.Errorf("observed %d bypass events, routers granted %d", len(sink.events), want)
	}
	for _, ev := range sink.events {
		d := mesh.Direction(ev.Dir)
		over := n.M.Neighbor(mesh.NodeID(ev.Node), d)
		if over == mesh.Invalid || int32(over) != ev.Src {
			t.Fatalf("bypass event %+v: Src %d, want neighbor %d of node %d toward %v", ev, ev.Src, over, ev.Node, d)
		}
		land := n.M.Neighbor(over, d)
		if land == mesh.Invalid || int32(land) != ev.Dst {
			t.Fatalf("bypass event %+v: Dst %d, want landing router %d two hops from node %d toward %v", ev, ev.Dst, land, ev.Node, d)
		}
	}
}

// TestFlyOverSchemeSelectableByName pins the registry path end to end:
// the string name round-trips through config validation into a network
// whose routers bypass, and an unknown name surfaces
// scheme.UnknownSchemeError from Validate.
func TestFlyOverSchemeSelectableByName(t *testing.T) {
	s, err := config.SchemeByName("FlyOver-PG")
	if err != nil {
		t.Fatalf("SchemeByName: %v", err)
	}
	if s != config.FlyOverPG {
		t.Fatalf("SchemeByName returned %v", s)
	}
	cfg := config.Default()
	cfg.Scheme = s
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, err := config.SchemeByName("NoSuch-PG"); err == nil {
		t.Fatal("unknown scheme name resolved")
	}
}
