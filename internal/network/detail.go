package network

import "powerpunch/internal/power"

// DetailVersion identifies the RunDetail JSON schema. Bump it only
// with a deliberate format change; consumers key on it.
// Version 2 added the per-component Energy section.
const DetailVersion = 2

// EnergyVersion identifies the EnergyBreakdown JSON schema (the
// component taxonomy and class split).
const EnergyVersion = 1

// StageBreakdown decomposes the total packet latency of a run into
// pipeline stages, in exact integer cycles: summed over every measured
// ejected packet,
//
//	LatencyCycles == NIQueueCycles + WakeupNICycles +
//	                 WakeupNetCycles + TransitCycles
//
// holds exactly (no float rounding), and
// LatencyCycles / Packets == Summary.AvgLatency. The two wakeup terms
// reproduce the paper's §6 observation that conventional gating's
// latency penalty is wakeup exposure: WakeupNICycles were spent at the
// source NI blocked on a gated/waking local router, WakeupNetCycles
// inside the network stalled on gated/waking downstream routers.
type StageBreakdown struct {
	Packets         int64 `json:"packets"`           // measured packets ejected
	LatencyCycles   int64 `json:"latency_cycles"`    // Σ creation → ejection
	NIQueueCycles   int64 `json:"ni_queue_cycles"`   // NI pipeline + queueing, excl. wakeup blocks
	WakeupNICycles  int64 `json:"wakeup_ni_cycles"`  // wakeup waits at the source NI
	WakeupNetCycles int64 `json:"wakeup_net_cycles"` // wakeup waits inside the network
	TransitCycles   int64 `json:"transit_cycles"`    // in-network time minus wakeup waits
}

// PGBreakdown aggregates the power-gating controllers' activity over
// the run (sums over all routers).
type PGBreakdown struct {
	GatingEvents  int64 `json:"gating_events"`
	GatedCycles   int64 `json:"gated_cycles"`
	WakingCycles  int64 `json:"waking_cycles"`
	ShortGatings  int64 `json:"short_gatings"` // gated periods under the break-even time
	WakeupsPunch  int64 `json:"wakeups_punch"` // wakes triggered by punch signals
	WakeupsWU     int64 `json:"wakeups_wu"`    // wakes triggered by the WU handshake
	SleepsBlocked int64 `json:"sleeps_blocked"`
	StallCycles   int64 `json:"stall_cycles"` // router-side PG stall cycles (flit-cycles)
}

// PunchBreakdown aggregates punch-fabric activity (zero for schemes
// without punch signals).
type PunchBreakdown struct {
	SourceEmissions int64 `json:"source_emissions"`
	RelayedTargets  int64 `json:"relayed_targets"`
	ChannelCycles   int64 `json:"channel_cycles"`
	StrictDrops     int64 `json:"strict_drops"`
}

// ComponentEnergy is one component's energy over the measured window,
// in joules, split into the aggregate model's three classes.
type ComponentEnergy struct {
	Dynamic  float64 `json:"dynamic_j"`
	Static   float64 `json:"static_j"`
	Overhead float64 `json:"overhead_j"`
}

// Total returns the component's summed energy.
func (c ComponentEnergy) Total() float64 { return c.Dynamic + c.Static + c.Overhead }

// EnergyBreakdown is the versioned per-component energy decomposition
// of a run (EnergyVersion), derived from the power accountant's
// integer event counters — so it is bit-identical across the serial,
// full-walk, and sharded parallel tick engines. Its class sums
// reconcile with the float-accumulated aggregate RunResult.Energy
// within summation tolerance (the aggregate stays the regression
// oracle for the paper's numbers; a differential test in
// internal/experiments enforces the reconciliation).
type EnergyBreakdown struct {
	Version  int             `json:"version"`
	Buffer   ComponentEnergy `json:"buffer"`   // input buffers (write + read)
	Crossbar ComponentEnergy `json:"crossbar"` // crossbar traversal
	Alloc    ComponentEnergy `json:"alloc"`    // VC + switch allocation
	Clock    ComponentEnergy `json:"clock"`    // clock tree
	Link     ComponentEnergy `json:"link"`     // inter-router links
	Punch    ComponentEnergy `json:"punch"`    // punch-channel signalling
	Wakeup   ComponentEnergy `json:"wakeup"`   // WU/PG handshake
	Gate     ComponentEnergy `json:"gate"`     // gate transitions + gated residual leak
}

// Component returns component c's energy (the named fields, indexed).
func (e *EnergyBreakdown) Component(c power.Component) ComponentEnergy {
	switch c {
	case power.CompBuffer:
		return e.Buffer
	case power.CompCrossbar:
		return e.Crossbar
	case power.CompAlloc:
		return e.Alloc
	case power.CompClock:
		return e.Clock
	case power.CompLink:
		return e.Link
	case power.CompPunch:
		return e.Punch
	case power.CompWakeup:
		return e.Wakeup
	case power.CompGate:
		return e.Gate
	default:
		return ComponentEnergy{}
	}
}

// Total returns the summed energy of every component.
func (e *EnergyBreakdown) Total() float64 {
	var t float64
	for c := power.Component(0); c < power.NumComponents; c++ {
		t += e.Component(c).Total()
	}
	return t
}

// energyBreakdownFrom converts the power package's indexed component
// array into the named, JSON-stable export form.
func energyBreakdownFrom(b power.ComponentBreakdown) EnergyBreakdown {
	conv := func(c power.Component) ComponentEnergy {
		return ComponentEnergy{Dynamic: b[c].Dynamic, Static: b[c].Static, Overhead: b[c].Overhead}
	}
	return EnergyBreakdown{
		Version:  EnergyVersion,
		Buffer:   conv(power.CompBuffer),
		Crossbar: conv(power.CompCrossbar),
		Alloc:    conv(power.CompAlloc),
		Clock:    conv(power.CompClock),
		Link:     conv(power.CompLink),
		Punch:    conv(power.CompPunch),
		Wakeup:   conv(power.CompWakeup),
		Gate:     conv(power.CompGate),
	}
}

// RunDetail is the versioned, JSON-stable detail section of a
// RunResult: the exact latency stage decomposition plus power-gating,
// punch-fabric, and per-component energy breakdowns. It is a flat
// comparable value (tests compare whole RunResults with ==) and is
// always populated — the inputs are counters the simulation maintains
// anyway.
type RunDetail struct {
	Version int             `json:"version"`
	Stages  StageBreakdown  `json:"stages"`
	PG      PGBreakdown     `json:"pg"`
	Punch   PunchBreakdown  `json:"punch"`
	Energy  EnergyBreakdown `json:"energy"`
}

// detail assembles the RunDetail from the run's collectors. Call only
// after SyncInspection/syncAll (result does).
func (n *Network) detail() RunDetail {
	st := n.Col.Stages()
	d := RunDetail{
		Version: DetailVersion,
		Stages: StageBreakdown{
			Packets:         st.Packets,
			LatencyCycles:   st.Latency,
			NIQueueCycles:   st.NIWait - st.WakeupWaitNI,
			WakeupNICycles:  st.WakeupWaitNI,
			WakeupNetCycles: st.WakeupWait - st.WakeupWaitNI,
			TransitCycles:   st.Latency - st.NIWait - (st.WakeupWait - st.WakeupWaitNI),
		},
	}
	for _, r := range n.Routers {
		cs := r.Ctrl.Stats()
		d.PG.GatingEvents += cs.GatingEvents
		d.PG.GatedCycles += cs.GatedCycles
		d.PG.WakingCycles += cs.WakingCycles
		d.PG.ShortGatings += cs.ShortGatings
		d.PG.WakeupsPunch += cs.WakeupsPunch
		d.PG.WakeupsWU += cs.WakeupsWU
		d.PG.SleepsBlocked += cs.SleepsBlocked
		d.PG.StallCycles += r.PGStallCycles
	}
	if n.Fabric != nil {
		fs := n.Fabric.Stats()
		d.Punch = PunchBreakdown{
			SourceEmissions: fs.SourceEmissions,
			RelayedTargets:  fs.RelayedTargets,
			ChannelCycles:   fs.ChannelCycles,
			StrictDrops:     fs.StrictDrops,
		}
	}
	d.Energy = energyBreakdownFrom(n.Acct.Components())
	return d
}
