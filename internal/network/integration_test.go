package network

import (
	"math/rand"
	"testing"

	"powerpunch/internal/check"
	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/power"
)

// randomDriver injects uniformly random packets directly (bypassing the
// traffic package to keep this an independent check) and remembers them
// for liveness verification.
type randomDriver struct {
	rng   *rand.Rand
	rate  float64
	pkts  []*flit.Packet
	until int64
}

func (d *randomDriver) Tick(n *Network, now int64) {
	if now >= d.until {
		return
	}
	for id := mesh.NodeID(0); n.M.Contains(id); id++ {
		if d.rng.Float64() >= d.rate {
			continue
		}
		dst := mesh.NodeID(d.rng.Intn(n.M.NumNodes()))
		if dst == id {
			continue
		}
		vn := flit.VirtualNetwork(d.rng.Intn(int(flit.NumVirtualNetworks)))
		kind := flit.KindControl
		if d.rng.Intn(2) == 0 {
			kind = flit.KindData
		}
		p := n.NewPacket(id, dst, vn, kind)
		d.pkts = append(d.pkts, p)
		n.NI(id).Submit(p, d.rng.Intn(2) == 0, now)
	}
}

func (d *randomDriver) Done() bool { return false }

// TestLivenessAndInvariantsUnderRandomTraffic is the heavyweight
// integration check: random mixed traffic under every scheme, with the
// credit-conservation and gating invariants asserted every few cycles,
// and every injected packet eventually delivered.
func TestLivenessAndInvariantsUnderRandomTraffic(t *testing.T) {
	for _, s := range config.Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.Scheme = s
			cfg.Width, cfg.Height = 4, 4
			cfg.WarmupCycles = 0
			cfg.MeasureCycles = 1 << 40
			n := mustNew(t, cfg)
			d := &randomDriver{rng: rand.New(rand.NewSource(42)), rate: 0.05, until: 2000}
			for cyc := 0; cyc < 2000; cyc++ {
				d.Tick(n, n.Now())
				n.Step()
				if cyc%8 == 0 {
					n.CheckInvariants()
				}
			}
			for cyc := 0; cyc < 5000 && !n.Quiesced(); cyc++ {
				n.Step()
				if cyc%32 == 0 {
					n.CheckInvariants()
				}
			}
			if !n.Quiesced() {
				t.Fatal("network did not quiesce: possible deadlock or lost flit")
			}
			for _, p := range d.pkts {
				if p.EjectedAt == 0 {
					t.Fatalf("packet %v lost (%v scheme)", p, s)
				}
			}
		})
	}
}

// TestSaturationRecovery drives the network well past saturation and
// verifies it recovers: no lost flits, invariants intact, full drain.
func TestSaturationRecovery(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.PowerPunchPG
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	n := mustNew(t, cfg)
	d := &randomDriver{rng: rand.New(rand.NewSource(7)), rate: 0.9, until: 600}
	for cyc := 0; cyc < 600; cyc++ {
		d.Tick(n, n.Now())
		n.Step()
	}
	// NIs hold large backlogs now; let everything drain.
	for cyc := 0; cyc < 200_000 && !n.Quiesced(); cyc++ {
		n.Step()
		if cyc%256 == 0 {
			n.CheckInvariants()
		}
	}
	if !n.Quiesced() {
		t.Fatal("saturated network failed to drain")
	}
	for _, p := range d.pkts {
		if p.EjectedAt == 0 {
			t.Fatalf("lost packet %v after saturation", p)
		}
	}
}

// TestHotspotLiveness aims all traffic at one node — the hardest sink
// pressure — under ConvOpt gating.
func TestHotspotLiveness(t *testing.T) {
	cfg := config.Default()
	cfg.Scheme = config.ConvOptPG
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	n := mustNew(t, cfg)
	var pkts []*flit.Packet
	for round := 0; round < 20; round++ {
		for src := mesh.NodeID(0); n.M.Contains(src); src++ {
			if src == 5 {
				continue
			}
			p := n.NewPacket(src, 5, flit.VNResponse, flit.KindData)
			pkts = append(pkts, p)
			n.NI(src).Submit(p, true, n.Now())
		}
		for i := 0; i < 30; i++ {
			n.Step()
		}
	}
	for i := 0; i < 30_000 && !n.Quiesced(); i++ {
		n.Step()
	}
	for _, p := range pkts {
		if p.EjectedAt == 0 {
			t.Fatalf("hotspot packet lost: %v", p)
		}
	}
}

// TestSchemeLatencyOrdering verifies the paper's headline ordering
// statistically on an 8x8 mesh: NoPG <= PunchPG < Signal < ConvOpt.
func TestSchemeLatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical ordering test")
	}
	lat := map[config.Scheme]float64{}
	for _, s := range config.Schemes {
		cfg := config.Default()
		cfg.Scheme = s
		cfg.WarmupCycles = 2000
		cfg.MeasureCycles = 10_000
		n := mustNew(t, cfg)
		d := &randomDriver{rng: rand.New(rand.NewSource(3)), rate: 0.006, until: 1 << 40}
		res := n.Run(d)
		if !res.Drained {
			t.Fatalf("%v did not drain", s)
		}
		lat[s] = res.Summary.AvgLatency
	}
	if !(lat[config.NoPG] <= lat[config.PowerPunchPG] &&
		lat[config.PowerPunchPG] < lat[config.PowerPunchSignal] &&
		lat[config.PowerPunchSignal] < lat[config.ConvOptPG]) {
		t.Errorf("latency ordering violated: %v", lat)
	}
}

// TestFourStagePipelineEndToEnd runs the 4-stage router configuration
// end to end (Figure 13's second group).
func TestFourStagePipelineEndToEnd(t *testing.T) {
	cfg := testConfig(config.PowerPunchPG)
	cfg.RouterStages = 4
	cfg.WakeupLatency = 12
	_, p, _ := deliverOne(t, cfg, 0, 15, flit.KindData)
	if p.EjectedAt == 0 {
		t.Fatal("4-stage delivery failed")
	}
}

func TestTinyAndWideMeshes(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {2, 8}, {8, 2}} {
		cfg := testConfig(config.PowerPunchPG)
		cfg.Width, cfg.Height = dims[0], dims[1]
		if d := (dims[0] - 1) + (dims[1] - 1); cfg.PunchHops > d {
			cfg.PunchHops = d // Validate rejects punches longer than the diameter
		}
		n := mustNew(t, cfg)
		dst := mesh.NodeID(n.M.NumNodes() - 1)
		p := n.NewPacket(0, dst, flit.VNRequest, flit.KindControl)
		n.NI(0).Submit(p, true, 0)
		for i := 0; i < 2000 && p.EjectedAt == 0; i++ {
			n.Step()
			n.CheckInvariants()
		}
		if p.EjectedAt == 0 {
			t.Fatalf("%dx%d: packet undelivered", dims[0], dims[1])
		}
	}
}

// TestPunchKeepsPathAwakeForStream verifies the level semantics: a
// stream of packets along one row keeps the row's routers from gating
// between packets (the punch forewarning filter), while a far-away
// router still gates.
func TestPunchKeepsPathAwakeForStream(t *testing.T) {
	cfg := testConfig(config.PowerPunchPG)
	cfg.Width, cfg.Height = 8, 8
	n := mustNew(t, cfg)
	// Warm-up gate everything.
	for i := 0; i < 60; i++ {
		n.Step()
	}
	blockedTotal := 0
	for round := 0; round < 12; round++ {
		p := n.NewPacket(0, 7, flit.VNRequest, flit.KindControl)
		n.NI(0).Submit(p, true, n.Now())
		for i := 0; i < 12; i++ { // next packet before the row re-gates
			n.Step()
		}
		if round > 2 {
			blockedTotal += p.BlockedRouters
		}
	}
	for i := 0; i < 2000 && !n.Quiesced(); i++ {
		n.Step()
	}
	if blockedTotal > 2 {
		t.Errorf("steady stream still hit %d gated routers; punch filter ineffective", blockedTotal)
	}
	// A router far from the stream must be gated. Its FSM is replayed
	// lazily while it sits outside the active set, so sync first.
	n.SyncInspection()
	if st := n.Routers[63].Ctrl.State(); st.String() != "gated" {
		t.Errorf("far-away router 63 is %v, want gated", st)
	}
}

// TestNoPGHasZeroOverheadEnergy checks the energy accounting seams: the
// No-PG baseline must show zero gating overhead and zero gated cycles.
func TestNoPGHasZeroOverheadEnergy(t *testing.T) {
	cfg := testConfig(config.NoPG)
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 500
	n := mustNew(t, cfg)
	n.SetAccounting(true)
	p := n.NewPacket(0, 15, flit.VNRequest, flit.KindData)
	n.NI(0).Submit(p, true, 0)
	for i := 0; i < 500; i++ {
		n.Step()
	}
	e := n.Acct.Network()
	if e.Overhead != 0 {
		t.Errorf("No-PG overhead energy = %g", e.Overhead)
	}
	if n.Acct.Count(power.EvGatedCycle) != 0 {
		t.Errorf("No-PG gated cycles = %d", n.Acct.Count(power.EvGatedCycle))
	}
	if e.Dynamic == 0 || e.Static == 0 {
		t.Error("missing dynamic/static energy")
	}
}

// TestMeasuredWindowEnergyOnly: energy must accumulate only while
// accounting is enabled.
func TestMeasuredWindowEnergyOnly(t *testing.T) {
	cfg := testConfig(config.NoPG)
	n := mustNew(t, cfg)
	for i := 0; i < 100; i++ {
		n.Step()
	}
	if n.Acct.Network().Total() != 0 {
		t.Error("energy accumulated while disabled")
	}
}

// TestPlainPGIsWorseThanConvOpt quantifies what ConvOpt's timeout and
// early-wakeup optimizations buy over the unoptimized Section 2.2
// handshake.
func TestPlainPGIsWorseThanConvOpt(t *testing.T) {
	lat := map[config.Scheme]float64{}
	for _, s := range []config.Scheme{config.ConvOptPG, config.PlainPG} {
		cfg := config.Default()
		cfg.Scheme = s
		cfg.Width, cfg.Height = 8, 8
		cfg.WarmupCycles = 1000
		cfg.MeasureCycles = 6000
		n := mustNew(t, cfg)
		d := &randomDriver{rng: rand.New(rand.NewSource(5)), rate: 0.004, until: 1 << 40}
		res := n.Run(d)
		if !res.Drained {
			t.Fatalf("%v did not drain", s)
		}
		lat[s] = res.Summary.AvgLatency
	}
	if lat[config.PlainPG] <= lat[config.ConvOptPG] {
		t.Errorf("Plain-PG (%.2f) should be slower than ConvOpt-PG (%.2f)",
			lat[config.PlainPG], lat[config.ConvOptPG])
	}
}

// TestFourHopPunchCoversLongWakeup reproduces the paper's remark that
// the Twakeup=10, 3-stage penalty "becomes negligible when a 4-hop
// punch signal is used": 4 hops of slack hide 12 cycles.
func TestFourHopPunchCoversLongWakeup(t *testing.T) {
	waits := map[int]float64{}
	for _, hops := range []int{3, 4} {
		cfg := testConfig(config.PowerPunchPG)
		cfg.Width, cfg.Height = 8, 8
		cfg.WakeupLatency = 10
		cfg.PunchHops = hops
		cfg.WarmupCycles = 1000
		cfg.MeasureCycles = 6000
		n := mustNew(t, cfg)
		d := &randomDriver{rng: rand.New(rand.NewSource(9)), rate: 0.004, until: 1 << 40}
		res := n.Run(d)
		if !res.Drained {
			t.Fatalf("hops=%d did not drain", hops)
		}
		waits[hops] = res.Summary.AvgWakeWait
	}
	if waits[4] >= waits[3] {
		t.Errorf("4-hop punch (wait %.2f) should beat 3-hop (%.2f) at Twakeup=10",
			waits[4], waits[3])
	}
}

// TestStrictEncodingEndToEnd runs the hardware-exact punch arbitration
// (one new signal per emitter per channel per cycle) end to end and
// verifies liveness and near-identical blocking to the idealized merge.
func TestStrictEncodingEndToEnd(t *testing.T) {
	res := map[bool]float64{}
	for _, strict := range []bool{false, true} {
		cfg := testConfig(config.PowerPunchPG)
		cfg.Width, cfg.Height = 8, 8
		cfg.PunchStrict = strict
		cfg.WarmupCycles = 1000
		cfg.MeasureCycles = 6000
		n := mustNew(t, cfg)
		d := &randomDriver{rng: rand.New(rand.NewSource(11)), rate: 0.01, until: 1 << 40}
		r := n.Run(d)
		if !r.Drained {
			t.Fatalf("strict=%v did not drain", strict)
		}
		res[strict] = r.Summary.AvgLatency
	}
	// Strict arbitration may cost a little, but must stay within 10% of
	// the idealized merge (the paper's contention-free claim).
	if res[true] > res[false]*1.10 {
		t.Errorf("strict encoding latency %.2f far above idealized %.2f", res[true], res[false])
	}
}

// TestWakeupLatencySweepMonotonic: longer Twakeup can only hurt (or not
// help) ConvOpt's latency.
func TestWakeupLatencySweepMonotonic(t *testing.T) {
	var prev float64
	for i, tw := range []int{4, 8, 16} {
		cfg := testConfig(config.ConvOptPG)
		cfg.Width, cfg.Height = 8, 8
		cfg.WakeupLatency = tw
		cfg.WarmupCycles = 1000
		cfg.MeasureCycles = 6000
		n := mustNew(t, cfg)
		d := &randomDriver{rng: rand.New(rand.NewSource(13)), rate: 0.004, until: 1 << 40}
		r := n.Run(d)
		if i > 0 && r.Summary.AvgLatency < prev {
			t.Errorf("Twakeup=%d latency %.2f below Twakeup of previous step (%.2f)",
				tw, r.Summary.AvgLatency, prev)
		}
		prev = r.Summary.AvgLatency
	}
}

// patternDriver injects Bernoulli traffic under a destination pattern,
// bypassing the traffic package so this stays an independent check. Two
// drivers built with the same seed submit an identical event sequence,
// which is what makes the metamorphic scheme comparisons below valid:
// every run sees the same offered traffic, only the power-gating policy
// differs.
type patternDriver struct {
	rng   *rand.Rand
	rate  float64
	dst   func(n *Network, src mesh.NodeID, r *rand.Rand) mesh.NodeID
	until int64
}

func (d *patternDriver) Tick(n *Network, now int64) {
	if now >= d.until {
		return
	}
	for id := mesh.NodeID(0); n.M.Contains(id); id++ {
		if d.rng.Float64() >= d.rate {
			continue
		}
		dst := d.dst(n, id, d.rng)
		if dst == id {
			continue
		}
		kind, vn := flit.KindControl, flit.VNRequest
		if d.rng.Intn(2) == 0 {
			kind, vn = flit.KindData, flit.VNResponse
		}
		p := n.NewPacket(id, dst, vn, kind)
		n.NI(id).Submit(p, true, now)
	}
}

func (d *patternDriver) Done() bool { return false }

// metamorphicPatterns are the destination generators for the scheme
// comparison: uniform random, matrix transpose, and a 50% hotspot. Each
// carries its own low-load rate — the hotspot concentrates half the
// traffic on one ejection port, so it must offer less per node to stay
// out of the saturated regime where queueing delay swamps the
// power-gating penalty the relations are about.
func metamorphicPatterns() map[string]struct {
	rate float64
	dst  func(n *Network, src mesh.NodeID, r *rand.Rand) mesh.NodeID
} {
	return map[string]struct {
		rate float64
		dst  func(n *Network, src mesh.NodeID, r *rand.Rand) mesh.NodeID
	}{
		"uniform": {0.01, func(n *Network, src mesh.NodeID, r *rand.Rand) mesh.NodeID {
			return mesh.NodeID(r.Intn(n.M.NumNodes()))
		}},
		"transpose": {0.01, func(n *Network, src mesh.NodeID, r *rand.Rand) mesh.NodeID {
			c := n.M.CoordOf(src)
			return n.M.NodeAt(mesh.Coord{X: c.Y, Y: c.X})
		}},
		"hotspot": {0.002, func(n *Network, src mesh.NodeID, r *rand.Rand) mesh.NodeID {
			if r.Float64() < 0.5 {
				return mesh.NodeID(n.M.NumNodes() - 1)
			}
			return mesh.NodeID(r.Intn(n.M.NumNodes()))
		}},
	}
}

// TestMetamorphicSchemeRelations pins the paper's central claims as
// metamorphic relations over identical traffic (same seed, same
// pattern, different scheme), with the invariant engine live:
//
//  1. PowerPunch-PG at low load stays close to the No-PG baseline —
//     "power gating with no performance penalty" (Abstract, Section 6).
//     The paper reports +0.1%-0.6% latency on PARSEC; this simulator's
//     conventional-router model measures +5-10% at these synthetic
//     loads, so the bound is x1.15 rather than the paper's headline
//     (EXPERIMENTS.md tracks the absolute gap).
//  2. ConvOpt-PG is strictly and substantially worse than
//     PowerPunch-PG (the paper's ~1.5x-2x penalty, Figure 12): bound
//     ConvOpt > PunchPG x1.2.
func TestMetamorphicSchemeRelations(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical scheme comparison")
	}
	for name, pat := range metamorphicPatterns() {
		name, pat := name, pat
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			lat := map[config.Scheme]float64{}
			for _, s := range []config.Scheme{config.NoPG, config.PowerPunchPG, config.ConvOptPG} {
				cfg := config.Default()
				cfg.Scheme = s
				cfg.WarmupCycles = 1000
				cfg.MeasureCycles = 8000
				cfg.Checks = true
				n := mustNew(t, cfg)
				n.OnViolation = func(a *check.Artifact) {
					t.Errorf("%s/%v: %v", name, s, &a.Violation)
				}
				d := &patternDriver{rng: rand.New(rand.NewSource(17)), rate: pat.rate, dst: pat.dst, until: 1 << 40}
				res := n.Run(d)
				if !res.Drained {
					t.Fatalf("%v did not drain", s)
				}
				lat[s] = res.Summary.AvgLatency
			}
			noPG, punch, conv := lat[config.NoPG], lat[config.PowerPunchPG], lat[config.ConvOptPG]
			t.Logf("%s: NoPG=%.2f PunchPG=%.2f (%+.1f%%) ConvOpt=%.2f (%+.1f%%)",
				name, noPG, punch, (punch/noPG-1)*100, conv, (conv/noPG-1)*100)
			if punch > noPG*1.15 {
				t.Errorf("PowerPunch-PG latency %.2f exceeds No-PG %.2f by more than 15%%", punch, noPG)
			}
			if punch < noPG {
				t.Errorf("PowerPunch-PG latency %.2f below No-PG %.2f: gating cannot speed the network up", punch, noPG)
			}
			if conv <= punch*1.2 {
				t.Errorf("ConvOpt-PG latency %.2f not substantially worse than PowerPunch-PG %.2f", conv, punch)
			}
		})
	}
}

// TestStrictPunchSetsAlwaysEncodable is the runtime proof tying the
// behavioural fabric to the Table-1 hardware: under strict arbitration,
// every merged target set ever carried on any channel must be in that
// channel's code book.
func TestStrictPunchSetsAlwaysEncodable(t *testing.T) {
	cfg := testConfig(config.PowerPunchPG)
	cfg.Width, cfg.Height = 8, 8
	cfg.PunchStrict = true
	n := mustNew(t, cfg)
	n.Fabric.SetVerifyEncodable(true) // panics on violation
	d := &randomDriver{rng: rand.New(rand.NewSource(23)), rate: 0.03, until: 4000}
	for cyc := 0; cyc < 4000; cyc++ {
		d.Tick(n, n.Now())
		n.Step()
	}
	for cyc := 0; cyc < 5000 && !n.Quiesced(); cyc++ {
		n.Step()
	}
	if !n.Quiesced() {
		t.Fatal("did not quiesce")
	}
}
