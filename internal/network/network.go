// Package network assembles routers, links, network interfaces, the
// power-gating controllers, and the Power Punch fabric into a complete
// NoC over any topo.Topology (mesh, torus, or ring), and drives the
// synchronous cycle loop. All inter-component
// communication is latched: signals written in cycle t are visible in
// cycle t+1 (plus link latency), so component evaluation order within a
// cycle cannot leak information backwards.
package network

import (
	"fmt"

	"powerpunch/internal/check"
	"powerpunch/internal/config"
	"powerpunch/internal/core"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/ni"
	"powerpunch/internal/obs"
	"powerpunch/internal/pg"
	"powerpunch/internal/power"
	"powerpunch/internal/router"
	"powerpunch/internal/scheme"
	"powerpunch/internal/stats"
	"powerpunch/internal/topo"
)

// Network is a complete simulated NoC.
type Network struct {
	Cfg config.Config
	// pol is Cfg.Scheme's policy, resolved once at construction; every
	// scheme-dependent branch in the tick loop consults it instead of
	// the deprecated config predicates.
	pol scheme.Policy
	// M is the fabric and RF its routing function (XY on the mesh,
	// dateline dimension-order routing on torus and ring).
	M       topo.Topology
	RF      topo.RoutingFunction
	Routers []*router.Router
	NIs     []*ni.NI
	Fabric  *core.Fabric // nil unless the scheme uses punch signals
	Acct    *power.Accountant
	Col     *stats.Collector

	// Checker is the invariant engine, non-nil when Cfg.Checks is set.
	Checker *check.Engine
	// OnViolation, if non-nil, receives the failure artifact of the
	// first invariant violation instead of the default behaviour
	// (write the artifact to a JSON file in the temp directory and
	// panic). Checking stops after the first violation either way.
	OnViolation func(*check.Artifact)

	now    int64
	pktSeq uint64

	// bus is the observability event bus, nil until Observe attaches a
	// sink. With a bus attached the scheduler keeps nodes live while
	// their PG controllers are mid-transition (see scheduler.quiescent)
	// so every gate/wake event is emitted at its true cycle.
	bus *obs.Bus

	// sched is the active-set tick scheduler (see sched.go); nil under
	// Cfg.FullTick, where Step walks every node — the seed behaviour kept
	// as the differential-testing reference.
	sched *scheduler

	// par is the deterministic sharded parallel tick engine (see
	// par.go); nil unless Cfg.Workers > 1. It composes with either
	// scheduler: the parallel step shards the full walk under
	// Cfg.FullTick and the active set otherwise, bit-identically.
	par *parEngine

	// pool recycles flit objects on the hot path. It is wired only when
	// Cfg.Checks is off: the invariant engine's stall tracking compares
	// flit pointers across cycles, which recycling would alias. Pooling
	// changes no simulation state either way.
	pool *flit.Pool

	// scratch buffers reused across cycles
	wants   [][mesh.NumPorts]bool
	wakeups []bool
	flitBuf []router.FlitInTransit
	credBuf []router.Credit

	// nbr caches each node's neighbour in every direction (Invalid where
	// the fabric has no link), replacing per-cycle coordinate arithmetic.
	nbr [][mesh.NumPorts]mesh.NodeID

	// bypassOn caches pol.Bypass(): the scheme lets flits fly over gated
	// routers on a latch path (FlyOver), enabling the bypass branches in
	// delivery, quiescence, and the controller-input computation.
	bypassOn bool
}

// New builds a network for cfg. The statistics collector measures packets
// created in [cfg.WarmupCycles, cfg.WarmupCycles+cfg.MeasureCycles);
// power accounting starts disabled (call SetAccounting or use Run).
func New(cfg config.Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rf, err := cfg.BuildRouting()
	if err != nil {
		return nil, err
	}
	m := rf.Topology()
	nNodes := m.NumNodes()

	acct := power.NewAccountant(nNodes, powerConstants(cfg))
	col := stats.New(cfg.WarmupCycles, cfg.WarmupCycles+cfg.MeasureCycles)

	pol, err := cfg.Scheme.Policy()
	if err != nil {
		// Unreachable after Validate, but keep the typed error path.
		return nil, err
	}

	var fab *core.Fabric
	if pol.Punches() {
		fab = core.NewFabricOn(rf, cfg.PunchHops, cfg.PunchStrict, acct)
	}

	n := &Network{
		Cfg:     cfg,
		pol:     pol,
		M:       m,
		RF:      rf,
		Acct:    acct,
		Col:     col,
		Fabric:  fab,
		wants:   make([][mesh.NumPorts]bool, nNodes),
		wakeups: make([]bool, nNodes),
		nbr:     make([][mesh.NumPorts]mesh.NodeID, nNodes),
	}
	for id := mesh.NodeID(0); m.Contains(id); id++ {
		for p := 0; p < mesh.NumPorts; p++ {
			n.nbr[id][p] = mesh.Invalid
		}
		for _, d := range mesh.LinkDirections {
			n.nbr[id][d] = m.Neighbor(id, d)
		}
	}

	timeout := cfg.IdleTimeout
	switch {
	case pol.Punches():
		// Punch signals forewarn arrivals precisely, so the blind timeout
		// filter shrinks to the 2-cycle in-flight minimum (Section 4.3).
		timeout = cfg.PunchIdleTimeout
	case !pol.IdleFilter():
		// Without the BET-oriented idle filter (Plain-PG), only the
		// 2-cycle in-flight minimum remains.
		timeout = 2
	}
	for id := mesh.NodeID(0); m.Contains(id); id++ {
		ctrl := pg.New(pol.Gates(), timeout, cfg.WakeupLatency, cfg.BreakEven)
		ctrl.SetAdaptiveThrottle(cfg.AdaptiveThrottle)
		rid := int(id)
		ctrl.SetHooks(nil, func() { acct.GatingEvent(rid) })
		r := router.New(id, rf, &n.Cfg, ctrl, acct)
		n.Routers = append(n.Routers, r)
		n.NIs = append(n.NIs, ni.New(id, m, &n.Cfg, r, fab, col))
	}

	if pol.Bypass() {
		// Wire the through-paths: per router and link direction, the
		// flown-over neighbor's output port and controller plus the
		// landing router two hops out. Directions whose through-path
		// leaves the fabric (mesh edges) stay unwired and are simply
		// never bypass-eligible; torus/ring wrap links wire naturally.
		n.bypassOn = true
		be, _ := pol.(scheme.BypassEnergy)
		// Bypass admission and wakeup suppression read NEIGHBOR
		// controller state, which under the active-set scheduler may be
		// stale for a parked node. The sync hook replays the parked
		// controller's skipped idle cycles first, so the read sees
		// exactly the state the full walk would have computed. The
		// full-tick engine steps every controller every cycle and the
		// sharded engine syncs the 2-hop halo of every sectioned node
		// up front (par.go syncNeighbors), so the hook no-ops there.
		sync := func(id mesh.NodeID) {
			if n.par == nil && n.sched != nil {
				n.sched.catchUp(int32(id), n.now-1)
			}
		}
		for id, r := range n.Routers {
			r.EnableBypass(be)
			r.SetCtrlSync(sync)
			for _, d := range mesh.LinkDirections {
				b := n.nbr[id][d]
				if b == mesh.Invalid {
					continue
				}
				c := n.nbr[b][d]
				if c == mesh.Invalid {
					continue
				}
				r.SetBypassWiring(d, n.Routers[b].Out(d), n.Routers[b].Ctrl, c, n.Routers[c].Ctrl)
			}
		}
	}

	if !cfg.FullTick {
		n.sched = newScheduler(n)
		for _, r := range n.Routers {
			r.SetForwardHook(n.sched.activateNode)
		}
		for i, nif := range n.NIs {
			id := int32(i)
			nif.SetActivityHook(func() { n.sched.activate(id, false) })
		}
	}
	if !cfg.Checks {
		n.pool = flit.NewPool()
		for _, nif := range n.NIs {
			nif.SetPool(n.pool)
			nif.SetPacketRecycling(cfg.RecyclePackets)
		}
	}

	// Deliberate defects for exercising the invariant engine (and for
	// replaying artifacts captured from faulty runs).
	if cfg.Faults.IgnoreWakeups {
		for _, r := range n.Routers {
			r.Ctrl.SetFaultIgnoreWakeups(true)
		}
	}
	if cfg.Faults.DropPunchRelays && fab != nil {
		fab.SetFaultDropRelays(true)
	}
	if cfg.Faults.DropRearms && n.sched != nil {
		n.sched.dropRearms = true
	}
	if cfg.Faults.BypassIllegalTurn {
		for _, r := range n.Routers {
			r.SetFaultBypassIllegalTurn(true)
		}
	}

	if cfg.Checks {
		n.Checker = check.New(check.View{
			Cfg:     &n.Cfg,
			M:       m,
			RF:      rf,
			Routers: n.Routers,
			NIs:     n.NIs,
			Fabric:  fab,
		})
		for _, nif := range n.NIs {
			n.Checker.ObserveNI(nif)
		}
	}

	// The parallel engine re-wires the NI pools, collectors, punch
	// sinks, and forward hooks to per-worker lanes, so it is built last.
	if cfg.Workers > 1 && nNodes > 1 {
		n.par = newParEngine(n, cfg.Workers)
	}
	return n, nil
}

// Close releases the parallel engine's worker goroutines. A no-op on
// serial networks; safe to call more than once. Long-lived processes
// that build many Workers > 1 networks must call it (tests and
// benchmarks defer it), or the workers leak.
func (n *Network) Close() {
	if n.par != nil {
		n.par.Close()
	}
}

// powerConstants resolves the configured calibration preset and adapts
// it to the configured break-even time. Unknown preset names are
// rejected by cfg.Validate before construction reaches here; the
// defensive fallback keeps direct callers on the paper calibration.
func powerConstants(cfg config.Config) power.Constants {
	c, ok := power.PresetByName(cfg.PowerPreset)
	if !ok {
		c = power.DefaultConstants()
	}
	c.BreakEvenCycles = cfg.BreakEven
	return c
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// NI returns node id's network interface.
func (n *Network) NI(id mesh.NodeID) *ni.NI { return n.NIs[id] }

// Router returns node id's router.
func (n *Network) Router(id mesh.NodeID) *router.Router { return n.Routers[id] }

// NextPacketID returns a fresh packet ID.
func (n *Network) NextPacketID() uint64 {
	n.pktSeq++
	return n.pktSeq
}

// NewPacket builds a packet with a fresh ID. Size is derived from kind
// via the configuration.
func (n *Network) NewPacket(src, dst mesh.NodeID, vn flit.VirtualNetwork, kind flit.Kind) *flit.Packet {
	size := n.Cfg.CtrlPacketSize
	if kind == flit.KindData {
		size = n.Cfg.DataPacketSize
	}
	var p *flit.Packet
	switch {
	case !n.Cfg.RecyclePackets:
		p = new(flit.Packet)
	case n.par != nil && n.par.workers[0].pool != nil:
		// Draw from the destination owner's pool: the dst NI returns
		// the packet there at ejection, closing the loop per worker.
		p = n.par.workers[n.par.ownerOf[dst]].pool.Packet()
	default:
		p = n.pool.Packet() // nil pool (checked runs) falls back to new
	}
	p.ID = n.NextPacketID()
	p.Src, p.Dst = src, dst
	p.VN, p.Kind, p.Size = vn, kind, size
	p.ResourceHint = -1
	return p
}

// SetAccounting enables or disables energy accounting (typically enabled
// for exactly the measurement window). Parked nodes are synced through
// the previous cycle first so their deferred static charges land under
// the flag that was in force when the cycles elapsed.
func (n *Network) SetAccounting(v bool) {
	if n.sched != nil {
		n.sched.syncAll(n.now - 1)
	}
	if n.par != nil {
		// The sync's catch-up charges landed in the per-worker counter
		// lanes; fold them under the outgoing flag so the boundary is
		// exact for readers that arrive before the next cycle's fold.
		n.Acct.FoldLanes()
	}
	n.Acct.SetEnabled(v)
}

// Step advances the network one cycle: the full walk under Cfg.FullTick,
// the active-set path otherwise, sharded across workers when
// Cfg.Workers > 1. All paths are bit-identical.
func (n *Network) Step() {
	switch {
	case n.par != nil:
		n.par.step()
	case n.sched == nil:
		n.stepFull()
	default:
		n.stepActive()
	}
}

// stepFull is the seed tick: every node walks every phase every cycle.
// Kept as the differential-testing reference for the active-set path.
func (n *Network) stepFull() {
	now := n.now
	if n.bus != nil {
		n.bus.SetNow(now)
	}

	// 1. Deliver everything arriving this cycle (latched from earlier).
	for _, r := range n.Routers {
		n.deliverNode(r, now)
	}

	// 2. NI signalling: move announced messages along, emit injection-
	//    node punches (PowerPunch-PG slacks 1 and 2).
	for _, nif := range n.NIs {
		nif.StepSignals(now)
	}

	// 3. Punch fabric: resident packets assert their punches; the fabric
	//    merges, holds, and relays (one link per cycle).
	if n.Fabric != nil {
		for _, r := range n.Routers {
			r.EmitPunches(n.Fabric)
		}
		n.Fabric.Step()
	}

	// 4. Mask outputs whose downstream router asserts PG.
	for _, r := range n.Routers {
		n.maskBlocked(r)
	}

	// 5. Router pipelines (ST then VA inside each router).
	for _, r := range n.Routers {
		r.Step(now)
	}

	// 6. NI injection (at most one flit per node per cycle).
	for _, nif := range n.NIs {
		nif.StepInject(now)
	}

	// 7. Power-gating controllers observe this cycle's levels and step.
	n.stepControllers(now)

	// 8. Power accounting.
	for i, r := range n.Routers {
		n.Acct.TickStatic(i, routerPowerState(r.Ctrl))
	}
	n.Acct.TickCycle()

	// 9. Invariant engine (only when Cfg.Checks is set).
	if n.Checker != nil {
		if v := n.Checker.EndCycle(now); v != nil {
			n.reportViolation(v)
		}
	}

	if n.bus != nil {
		n.bus.EndCycle()
	}
	n.now = now + 1
}

// stepActive is the active-set tick: the same nine phases, iterated over
// only the nodes that can change state this cycle. Newly-armed nodes
// join at the flush points below, always before the first phase whose
// full-walk behaviour for them would differ from a no-op; every phase
// iterates the set in ascending node order, so the operation sequence —
// including floating-point accumulation order — matches the full walk
// with its no-op nodes deleted.
func (n *Network) stepActive() {
	now := n.now
	s := n.sched
	if n.bus != nil {
		n.bus.SetNow(now)
	}

	// Arm nodes the driver submitted work to since the last cycle.
	s.flush(now)

	// 1. Deliver. Parked nodes own no non-empty pipes (quiescence drains
	//    them first), so skipping them delivers everything.
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		n.deliverNode(n.Routers[i], now)
	}
	// Ejection Deliver callbacks may have submitted follow-up work.
	s.flush(now)

	// 2. NI signalling (a parked NI holds no work: nothing to signal).
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		n.NIs[i].StepSignals(now)
	}

	// 3. Punch fabric. Parked routers are empty and emit nothing; the
	//    fabric itself is skipped once no emission, inbound target, or
	//    hold remains. Nodes held by a punch must observe it in phase 7,
	//    so they join the set now.
	if n.Fabric != nil {
		for i := s.next(0); i != -1; i = s.next(i + 1) {
			n.Routers[i].EmitPunches(n.Fabric)
		}
		if n.Fabric.NeedsStep() {
			n.Fabric.Step()
			for _, id := range n.Fabric.Held() {
				s.activate(int32(id), true)
			}
			s.flush(now)
		}
	}

	// 4. Mask outputs whose downstream router asserts PG. A parked
	//    node's stale masks are unobservable: it is empty, so its switch
	//    allocator runs no grants until after it re-arms — and then this
	//    phase has refreshed the masks first.
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		n.maskBlocked(n.Routers[i])
	}

	// 5. Router pipelines (empty parked routers would no-op).
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		n.Routers[i].Step(now)
	}

	// 6. NI injection. Receivers of freshly-pushed flits were armed by
	//    the forward hook; flush so they live through phases 7-8 of this
	//    cycle exactly as the full walk would step them.
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		n.NIs[i].StepInject(now)
	}
	s.flush(now)

	// 7. Power-gating controllers (arms WU-wanted neighbours itself).
	n.stepControllersActive(now)

	// 8. Power accounting for live nodes; parked nodes accrue the same
	//    charges in batched catch-up when they re-arm (or eagerly below
	//    while the invariant engine is comparing counters).
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		n.Acct.TickStatic(int(i), routerPowerState(n.Routers[i].Ctrl))
	}
	n.Acct.TickCycle()

	// 9. Invariant engine: it reads every node's counters each cycle, so
	//    parked nodes must be charged eagerly while it runs.
	if n.Checker != nil {
		s.syncAll(now)
		if v := n.Checker.EndCycle(now); v != nil {
			n.reportViolation(v)
		}
	}

	s.endCycle(now)
	if n.bus != nil {
		n.bus.EndCycle()
	}
	n.now = now + 1
}

// maskBlocked refreshes r's output masks from its neighbours' PG levels.
// Under the active-set scheduler a neighbour may be retired with its
// controller mid-evolution (idle-counting toward a gate, or waking), so
// its FSM is caught up through the previous cycle first — the state the
// full walk's mask phase would read. The catch-up is a no-op for live
// neighbours and does not re-arm the dormant ones.
func (n *Network) maskBlocked(r *router.Router) {
	s := n.sched
	for _, d := range mesh.LinkDirections {
		op := r.Out(d)
		if nb := op.Neighbor(); nb != mesh.Invalid {
			if s != nil {
				s.catchUp(int32(nb), n.now-1)
			}
			op.Blocked = n.Routers[nb].Ctrl.PGAsserted()
		}
	}
}

// reportViolation handles the invariant engine's first violation: hand
// the artifact to OnViolation when set, otherwise persist it next to the
// temp directory and panic with the replay instructions.
func (n *Network) reportViolation(v *check.Violation) {
	a := n.Checker.Artifact(v)
	if n.OnViolation != nil {
		n.OnViolation(a)
		return
	}
	path, err := check.WriteArtifactFile(a, "")
	where := "artifact could not be written: " + fmt.Sprint(err)
	if err == nil {
		where = "artifact written to " + path + " (replay: noctrace replay-failure -in " + path + ")"
	}
	panic(fmt.Sprintf("network: %v; %s", v, where))
}

// deliverNode drains node rr's link pipes whose contents arrive at cycle
// `now`: its output flit pipes into the downstream routers (or its NI on
// the Local port) and its input credit pipes back to the upstream
// routers (or its NI). Closure-free: items are drained into reused
// scratch buffers, keeping the per-cycle path allocation-free.
func (n *Network) deliverNode(rr *router.Router, now int64) {
	for p := 0; p < mesh.NumPorts; p++ {
		d := mesh.Direction(p)
		op := rr.Out(d)
		if op.FlitOut.Empty() {
			continue
		}
		if d == mesh.Local {
			nif := n.NIs[rr.ID]
			n.flitBuf = op.FlitOut.DrainAppend(now, n.flitBuf[:0])
			for _, ft := range n.flitBuf {
				nif.ReceiveEject(ft, now)
			}
			continue
		}
		nb := op.Neighbor()
		if nb == mesh.Invalid {
			continue
		}
		dst := n.Routers[nb]
		from := d.Opposite()
		n.flitBuf = op.FlitOut.DrainAppend(now, n.flitBuf[:0])
		for _, ft := range n.flitBuf {
			if ft.Bypass {
				n.forwardBypass(rr, d, ft, now)
				continue
			}
			dst.ReceiveFlit(from, ft.VC, ft.Flit, now)
		}
	}
	for p := 0; p < mesh.NumPorts; p++ {
		d := mesh.Direction(p)
		ip := rr.In(d)
		if ip.CreditOut.Empty() {
			continue
		}
		if d == mesh.Local {
			nif := n.NIs[rr.ID]
			n.credBuf = ip.CreditOut.DrainAppend(now, n.credBuf[:0])
			for _, c := range n.credBuf {
				nif.ReceiveCredit(c.VC)
			}
			continue
		}
		nb := n.nbr[rr.ID][d]
		if nb == mesh.Invalid {
			continue
		}
		up := n.Routers[nb]
		toward := d.Opposite()
		n.credBuf = ip.CreditOut.DrainAppend(now, n.credBuf[:0])
		for _, c := range n.credBuf {
			up.ReceiveCredit(toward, c.VC)
		}
	}
}

// forwardBypass relays a bypass-tagged flit across the flown-over
// router: instead of entering the neighbor's buffers it is pushed
// (untagged) onto that router's own output pipe in the same direction,
// arriving at the landing router one cycle later — the 1-cycle latch
// path. The push targets the next cycle, so drain order within the
// delivery phase is immaterial. The sender's stream counter is
// released when the tail clears this first link: the latch (and the
// flown-over router's wake hold) is needed exactly until then.
func (n *Network) forwardBypass(from *router.Router, d mesh.Direction, ft router.FlitInTransit, now int64) {
	via := n.Routers[n.nbr[from.ID][d]]
	via.Out(d).FlitOut.Push(router.FlitInTransit{Flit: ft.Flit, VC: ft.VC}, now)
	if ft.Flit.Type.IsTail() {
		from.BypassStreamRelease(d)
	}
}

// bypassHeld reports whether any neighbor currently streams bypass
// flits over router i. It feeds the controller's BypassHold input and
// pins a flown-over router in the active set, so its held wake is
// stepped live every cycle. Stream counters are written in the router
// phase and read here (phase 7) and at end-of-cycle quiescence — never
// concurrently with a writer under the sharded engine.
func (n *Network) bypassHeld(i int) bool {
	for _, d := range mesh.LinkDirections {
		if nb := n.nbr[i][d]; nb != mesh.Invalid && n.Routers[nb].BypassStreams(d.Opposite()) > 0 {
			return true
		}
	}
	return false
}

// stepControllers computes each controller's inputs from this cycle's
// levels and advances the gating FSMs.
func (n *Network) stepControllers(now int64) {
	if !n.pol.Gates() {
		return
	}
	// WU levels: a router wants its neighbor awake while any resident
	// routed packet heads there — from route-computation time under
	// early wakeup (ConvOpt and the punch schemes), or only from
	// switch-allocation time under the unoptimized PlainPG baseline.
	early := n.pol.EarlyWakeup()
	for i, r := range n.Routers {
		if early {
			r.WantsOutput(&n.wants[i])
		} else {
			r.WantsOutputAtSA(&n.wants[i], now)
		}
	}
	for i, r := range n.Routers {
		wu := n.NIs[i].WantsWakeup()
		if !wu {
			for _, d := range mesh.LinkDirections {
				nb := n.nbr[r.ID][d]
				if nb == mesh.Invalid {
					continue
				}
				// Neighbor nb reaches r through its port facing r.
				if n.wants[nb][d.Opposite()] {
					wu = true
					break
				}
			}
		}
		n.wakeups[i] = wu
	}
	for i, r := range n.Routers {
		empty := r.Empty() && n.incomingQuiet(r)
		hold := false
		if n.Fabric != nil {
			hold = n.Fabric.Hold(r.ID)
		}
		bhold := n.bypassOn && n.bypassHeld(i)
		if n.wakeups[i] && n.Acct.Enabled() {
			n.Acct.WakeupSignal(i)
		}
		r.Ctrl.Step(pg.Inputs{Empty: empty, Wakeup: n.wakeups[i], PunchHold: hold, BypassHold: bhold})
	}
}

// stepControllersActive is stepControllers over the active set only. A
// parked node's contribution to the full walk is provably nil: it is
// empty (no WU wants, cleared on deactivation), its NI idle (no local
// WU), and its controller parked (Step is a no-op for disabled, and the
// Gated idle tick is applied by catch-up). The one coupling — an active
// neighbour's WU want toward a parked gated router — arms that router
// here, before the wakeup levels are read, so it wakes in the same cycle
// the full walk would wake it.
func (n *Network) stepControllersActive(now int64) {
	if !n.pol.Gates() {
		return
	}
	s := n.sched
	early := n.pol.EarlyWakeup()
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		r := n.Routers[i]
		if early {
			r.WantsOutput(&n.wants[i])
		} else {
			r.WantsOutputAtSA(&n.wants[i], now)
		}
		// Arm every wanted neighbour: it must observe the WU level this
		// cycle. (Arming is deferred to the flush below, so this pass
		// still iterates the pre-arm set.)
		if r.Empty() {
			continue
		}
		for _, d := range mesh.LinkDirections {
			if n.wants[i][d] {
				if nb := n.nbr[i][d]; nb != mesh.Invalid {
					s.activate(int32(nb), true)
				}
			}
		}
	}
	s.flush(now)
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		wu := n.NIs[i].WantsWakeup()
		if !wu {
			for _, d := range mesh.LinkDirections {
				nb := n.nbr[i][d]
				if nb == mesh.Invalid {
					continue
				}
				if n.wants[nb][d.Opposite()] {
					wu = true
					break
				}
			}
		}
		n.wakeups[i] = wu
	}
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		r := n.Routers[i]
		empty := r.Empty() && n.incomingQuiet(r)
		hold := false
		if n.Fabric != nil {
			hold = n.Fabric.Hold(r.ID)
		}
		bhold := n.bypassOn && n.bypassHeld(int(i))
		if n.wakeups[i] && n.Acct.Enabled() {
			n.Acct.WakeupSignal(int(i))
		}
		r.Ctrl.Step(pg.Inputs{Empty: empty, Wakeup: n.wakeups[i], PunchHold: hold, BypassHold: bhold})
	}
}

// incomingQuiet reports that no flit is in flight toward router r (its
// neighbors' output pipes facing r are empty). Together with the >= 2
// cycle idle timeout this guarantees gating never strands a flit.
//
// Under a bypass scheme a second, two-hop condition applies: a stream
// established two hops out in direction d skips the intermediate
// router's buffers entirely, so the one-hop pipe check cannot see its
// flits coming — the landing router must stay up (and un-gated) for
// the stream's whole lifetime, including cycles when the stream is
// stalled upstream with nothing physically in flight.
func (n *Network) incomingQuiet(r *router.Router) bool {
	for _, d := range mesh.LinkDirections {
		nb := n.nbr[r.ID][d]
		if nb == mesh.Invalid {
			continue
		}
		if !n.Routers[nb].Out(d.Opposite()).FlitOut.Empty() {
			return false
		}
		if n.bypassOn {
			if a := n.nbr[nb][d]; a != mesh.Invalid && n.Routers[a].BypassStreams(d.Opposite()) > 0 {
				return false
			}
		}
	}
	return true
}

func routerPowerState(c *pg.Controller) power.RouterState {
	switch c.State() {
	case pg.Gated:
		return power.Gated
	case pg.Waking:
		return power.WakingUp
	default:
		return power.On
	}
}

// Quiesced reports whether no packet or flit remains anywhere in the
// network or its NIs.
func (n *Network) Quiesced() bool {
	for _, r := range n.Routers {
		if !r.Empty() {
			return false
		}
		for p := 0; p < mesh.NumPorts; p++ {
			if !r.Out(mesh.Direction(p)).FlitOut.Empty() {
				return false
			}
		}
	}
	for _, nif := range n.NIs {
		if nif.Busy() {
			return false
		}
	}
	return true
}

// SyncInspection catches every retired node's controller and power
// counters up through the previous cycle, so direct reads of router or
// controller state (heatmaps, tests, ad-hoc probes) observe exactly
// what the full walk would hold. A no-op under Cfg.FullTick; it never
// re-arms a node.
func (n *Network) SyncInspection() {
	if n.sched != nil {
		n.sched.syncAll(n.now - 1)
	}
	if n.par != nil {
		n.Acct.FoldLanes()
	}
}

// GatedRouterCount returns the number of routers currently gated off.
func (n *Network) GatedRouterCount() int {
	n.SyncInspection()
	c := 0
	for _, r := range n.Routers {
		if r.Ctrl.State() == pg.Gated {
			c++
		}
	}
	return c
}

// CheckInvariants panics with a description if a structural invariant is
// violated; tests call it periodically.
//
// Invariants checked:
//  1. a gated or waking router holds no flits (gating requires empty);
//  2. credit conservation on every inter-router link: for each VC,
//     available credits + downstream buffer occupancy + flits on the
//     wire + credits on the reverse wire == buffer depth.
func (n *Network) CheckInvariants() {
	n.SyncInspection()
	for _, r := range n.Routers {
		if !r.Ctrl.IsOn() && !r.Empty() {
			panic(fmt.Sprintf("network: router %d is %v with %d buffered flits",
				r.ID, r.Ctrl.State(), r.BufferedFlits()))
		}
	}
	perVN := n.Cfg.VCsPerVN()
	for _, a := range n.Routers {
		for _, d := range mesh.LinkDirections {
			op := a.Out(d)
			nb := op.Neighbor()
			if nb == mesh.Invalid {
				continue
			}
			b := n.Routers[nb]
			from := d.Opposite()
			for v := 0; v < a.NumVCs(); v++ {
				inFlightFlits := 0
				op.FlitOut.ForEach(func(ft router.FlitInTransit) {
					// Bypass-tagged flits in this pipe are charged
					// against the *through* link's ledger (their VC
					// names the router two hops out), not this one.
					if ft.VC == v && !ft.Bypass {
						inFlightFlits++
					}
				})
				thruFlits := 0
				if n.bypassOn {
					if up := n.nbr[a.ID][from]; up != mesh.Invalid {
						n.Routers[up].Out(d).FlitOut.ForEach(func(ft router.FlitInTransit) {
							if ft.Bypass && ft.VC == v {
								thruFlits++
							}
						})
					}
				}
				inFlightCredits := 0
				b.In(from).CreditOut.ForEach(func(c router.Credit) {
					if c.VC == v {
						inFlightCredits++
					}
				})
				total := op.Credits(v) + b.VCOccupancy(from, v) + inFlightFlits + thruFlits + inFlightCredits
				if depth := n.Cfg.VCDepth(v % perVN); total != depth {
					panic(fmt.Sprintf("network: credit leak on %d->%d vc%d: credits=%d + buf=%d + wire=%d + thru=%d + credwire=%d != depth %d",
						a.ID, nb, v, op.Credits(v), b.VCOccupancy(from, v), inFlightFlits, thruFlits, inFlightCredits, depth))
				}
			}
		}
	}
}

// Driver injects traffic into the network: Tick is called once per cycle
// before Step, and Done reports whether the driver has finished its
// workload (synthetic drivers never finish; CMP workloads do).
type Driver interface {
	Tick(n *Network, now int64)
	Done() bool
}

// RunResult summarizes a complete simulation run. Detail carries the
// versioned per-stage decomposition (see RunDetail); the whole struct
// is a flat comparable value, so runs can be compared with ==.
type RunResult struct {
	Cycles       int64
	Summary      stats.Summary
	Energy       power.Breakdown
	AvgStaticW   float64
	StaticSaved  float64
	Drained      bool
	GatingEvents int64
	Detail       RunDetail
}

// Run executes the standard windowed experiment: warmup, measurement
// (with energy accounting), then drain until every measured packet is
// delivered or the drain budget expires. The driver is ticked every
// cycle of warmup+measurement.
func (n *Network) Run(d Driver) RunResult {
	warmEnd := n.Cfg.WarmupCycles
	measEnd := warmEnd + n.Cfg.MeasureCycles
	for n.now < warmEnd {
		d.Tick(n, n.now)
		n.Step()
	}
	n.SetAccounting(true)
	for n.now < measEnd {
		d.Tick(n, n.now)
		n.Step()
	}
	n.SetAccounting(false)

	drainEnd := measEnd + n.Cfg.DrainCycles
	drained := true
	for n.Col.InFlight() > 0 || !n.Quiesced() {
		if n.now >= drainEnd {
			drained = false
			break
		}
		n.Step()
	}
	return n.result(drained)
}

// RunUntil drives the network until the driver reports done and the
// network quiesces (execution-time experiments), up to maxCycles.
// Accounting is enabled for the whole run.
func (n *Network) RunUntil(d Driver, maxCycles int64) RunResult {
	n.SetAccounting(true)
	drained := true
	for !d.Done() || !n.Quiesced() {
		if n.now >= maxCycles {
			drained = false
			break
		}
		d.Tick(n, n.now)
		n.Step()
	}
	n.SetAccounting(false)
	return n.result(drained)
}

func (n *Network) result(drained bool) RunResult {
	if n.sched != nil {
		n.sched.syncAll(n.now - 1)
	}
	var gatings int64
	for _, r := range n.Routers {
		gatings += r.Ctrl.Stats().GatingEvents
	}
	return RunResult{
		Cycles:       n.now,
		Summary:      n.Col.Summarize(),
		Energy:       n.Acct.Network(),
		AvgStaticW:   n.Acct.AvgStaticPower(),
		StaticSaved:  n.Acct.StaticSavedFrac(),
		Drained:      drained,
		GatingEvents: gatings,
		Detail:       n.detail(),
	}
}
