package network

import (
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
)

func testConfig(s config.Scheme) config.Config {
	cfg := config.Default()
	cfg.Scheme = s
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	return cfg
}

func mustNew(t *testing.T, cfg config.Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

// driverFunc adapts a function to the Driver interface.
type driverFunc func(n *Network, now int64)

func (f driverFunc) Tick(n *Network, now int64) { f(n, now) }
func (driverFunc) Done() bool                   { return false }

// deliverOne submits a single packet at cycle 0 and steps until delivery.
func deliverOne(t *testing.T, cfg config.Config, src, dst mesh.NodeID, kind flit.Kind) (*Network, *flit.Packet, int64) {
	t.Helper()
	n := mustNew(t, cfg)
	p := n.NewPacket(src, dst, flit.VNRequest, kind)
	n.NI(src).Submit(p, true, 0)
	for i := 0; i < 3000; i++ {
		n.Step()
		n.CheckInvariants()
		if p.EjectedAt > 0 {
			return n, p, n.Now()
		}
	}
	t.Fatalf("packet %v not delivered after 3000 cycles (scheme %v)", p, cfg.Scheme)
	return nil, nil, 0
}

func TestSingleControlPacketDeliveredNoPG(t *testing.T) {
	cfg := testConfig(config.NoPG)
	_, p, _ := deliverOne(t, cfg, 0, 15, flit.KindControl)
	if p.EjectedAt <= p.CreatedAt {
		t.Fatalf("bad timestamps: %+v", p)
	}
	if p.BlockedRouters != 0 || p.WakeupWait != 0 {
		t.Errorf("No-PG packet should never block: blocked=%d wait=%d", p.BlockedRouters, p.WakeupWait)
	}
}

func TestZeroLoadLatencyMatchesPipelineModel(t *testing.T) {
	// A single control packet from 0 to 3 (3 hops east) on an idle,
	// always-on network: latency = NILatency + Trouter (source router)
	// + hops*(Trouter+Tlink) + Tlink (ejection).
	cfg := testConfig(config.NoPG)
	_, p, _ := deliverOne(t, cfg, 0, 3, flit.KindControl)

	hops := 3
	perHop := cfg.RouterCycles() + cfg.LinkLatency
	want := int64(cfg.NILatency + cfg.RouterCycles() + hops*perHop + cfg.LinkLatency)
	got := p.NetworkLatency()
	if got != want {
		t.Errorf("zero-load latency = %d, want about %d (injected=%d ejected=%d created=%d)",
			got, want, p.InjectedAt, p.EjectedAt, p.CreatedAt)
	}
}

func TestDataPacketWormholeDelivery(t *testing.T) {
	for _, s := range config.Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := testConfig(s)
			_, p, _ := deliverOne(t, cfg, 5, 10, flit.KindData)
			if p.EjectedAt == 0 {
				t.Fatal("data packet not delivered")
			}
		})
	}
}

func TestAllSchemesDeliverCrossTraffic(t *testing.T) {
	for _, s := range config.Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := testConfig(s)
			n := mustNew(t, cfg)
			var pkts []*flit.Packet
			// Every node sends to its bit-complement peer.
			for src := mesh.NodeID(0); n.M.Contains(src); src++ {
				dst := mesh.NodeID(n.M.NumNodes() - 1 - int(src))
				if dst == src {
					continue
				}
				p := n.NewPacket(src, dst, flit.VNResponse, flit.KindData)
				n.NI(src).Submit(p, true, 0)
				pkts = append(pkts, p)
			}
			for i := 0; i < 5000 && !allDelivered(pkts); i++ {
				n.Step()
				if i%16 == 0 {
					n.CheckInvariants()
				}
			}
			for _, p := range pkts {
				if p.EjectedAt == 0 {
					t.Fatalf("packet %v undelivered", p)
				}
			}
		})
	}
}

func allDelivered(pkts []*flit.Packet) bool {
	for _, p := range pkts {
		if p.EjectedAt == 0 {
			return false
		}
	}
	return true
}

func TestIdleNetworkGatesAllRouters(t *testing.T) {
	cfg := testConfig(config.ConvOptPG)
	n := mustNew(t, cfg)
	for i := 0; i < 50; i++ {
		n.Step()
	}
	if got := n.GatedRouterCount(); got != n.M.NumNodes() {
		t.Errorf("idle network: %d routers gated, want %d", got, n.M.NumNodes())
	}
}

func TestNoPGNeverGates(t *testing.T) {
	cfg := testConfig(config.NoPG)
	n := mustNew(t, cfg)
	for i := 0; i < 100; i++ {
		n.Step()
	}
	if got := n.GatedRouterCount(); got != 0 {
		t.Errorf("No-PG gated %d routers", got)
	}
}

func TestConvOptPacketSuffersWakeupLatency(t *testing.T) {
	// With all routers gated, a ConvOpt packet must wait for wakeups;
	// its blocked-router count and wait cycles must be positive.
	cfg := testConfig(config.ConvOptPG)
	n := mustNew(t, cfg)
	for i := 0; i < 50; i++ { // let everything gate off
		n.Step()
	}
	p := n.NewPacket(0, 15, flit.VNRequest, flit.KindControl)
	n.NI(0).Submit(p, true, n.Now())
	for i := 0; i < 2000 && p.EjectedAt == 0; i++ {
		n.Step()
	}
	if p.EjectedAt == 0 {
		t.Fatal("packet not delivered through gated network")
	}
	if p.BlockedRouters == 0 {
		t.Error("expected the packet to encounter gated routers")
	}
	if p.WakeupWait == 0 {
		t.Error("expected wakeup-wait cycles")
	}
}

func TestPowerPunchHidesWakeupOnLongPath(t *testing.T) {
	// From a cold (all-gated) network, a PowerPunch-PG packet on a long
	// path should wait far less than a ConvOpt packet: the first hops
	// are covered by NI slack and the rest by hop-count slack.
	waits := map[config.Scheme]int64{}
	for _, s := range []config.Scheme{config.ConvOptPG, config.PowerPunchPG} {
		cfg := testConfig(s)
		cfg.Width, cfg.Height = 8, 8
		n := mustNew(t, cfg)
		for i := 0; i < 60; i++ {
			n.Step()
		}
		p := n.NewPacket(0, 63, flit.VNRequest, flit.KindControl)
		n.NI(0).Submit(p, true, n.Now())
		for i := 0; i < 3000 && p.EjectedAt == 0; i++ {
			n.Step()
		}
		if p.EjectedAt == 0 {
			t.Fatalf("%v: packet not delivered", s)
		}
		waits[s] = p.WakeupWait
	}
	if waits[config.PowerPunchPG] >= waits[config.ConvOptPG] {
		t.Errorf("PowerPunch-PG wait (%d) should be below ConvOpt-PG wait (%d)",
			waits[config.PowerPunchPG], waits[config.ConvOptPG])
	}
}
