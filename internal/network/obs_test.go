package network

import (
	"io"
	"math/rand"
	"testing"

	"powerpunch/internal/check"
	"powerpunch/internal/config"
	"powerpunch/internal/obs"
)

// finiteDriver bounds a randomDriver: done once the injection window
// has passed, so RunUntil drains and returns.
type finiteDriver struct {
	*randomDriver
	net *Network
}

func (d finiteDriver) Done() bool { return d.net.Now() >= d.until }

// runWithDriver runs a fresh randomDriver (seed-deterministic) on n for
// inject cycles plus drain, and returns the result.
func runWithDriver(t *testing.T, n *Network, seed int64, rate float64, inject int64) RunResult {
	t.Helper()
	d := &randomDriver{rng: rand.New(rand.NewSource(seed)), rate: rate, until: inject}
	res := n.RunUntil(finiteDriver{d, n}, inject+30_000)
	if !res.Drained {
		t.Fatal("run did not drain")
	}
	return res
}

// TestObservedRunIsGoldenIdentical is the tentpole invariant: attaching
// observers must not perturb the simulation. For every scheme, under
// both the active-set scheduler and FullTick, a run with counter,
// sampler, and trace sinks attached produces a RunResult (including the
// Detail breakdowns) bit-identical to the unobserved run.
func TestObservedRunIsGoldenIdentical(t *testing.T) {
	for _, full := range []bool{false, true} {
		for _, s := range config.Schemes {
			s, full := s, full
			name := s.String()
			if full {
				name += "/full-tick"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := testConfig(s)
				cfg.FullTick = full

				base := runWithDriver(t, mustNew(t, cfg), 7, 0.015, 4000)

				n := mustNew(t, cfg)
				probe := &obs.Counters{}
				sampler := obs.NewSampler(128)
				tw := obs.NewTraceWriter(io.Discard, obs.MaskAll)
				n.Observe(probe, sampler, tw)
				got := runWithDriver(t, n, 7, 0.015, 4000)

				if got != base {
					t.Errorf("observed run diverged:\n base %+v\n  got %+v", base, got)
				}
				if probe.Latency.Count == 0 {
					t.Error("probe observed nothing")
				}
				if tw.Err() != nil {
					t.Errorf("trace writer: %v", tw.Err())
				}
			})
		}
	}
}

// TestDetailStageSumExact pins the RunDetail contract: the four stage
// terms sum to the total latency cycles exactly, and dividing by the
// packet count reproduces Summary.AvgLatency with no drift.
func TestDetailStageSumExact(t *testing.T) {
	for _, s := range config.Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			res := runWithDriver(t, mustNew(t, testConfig(s)), 11, 0.02, 5000)
			st := res.Detail.Stages
			if res.Detail.Version != DetailVersion {
				t.Fatalf("detail version %d", res.Detail.Version)
			}
			if st.Packets != res.Summary.Ejected {
				t.Fatalf("stage packets %d != ejected %d", st.Packets, res.Summary.Ejected)
			}
			sum := st.NIQueueCycles + st.WakeupNICycles + st.WakeupNetCycles + st.TransitCycles
			if sum != st.LatencyCycles {
				t.Errorf("stage sum %d != latency %d (%+v)", sum, st.LatencyCycles, st)
			}
			if st.Packets > 0 {
				if avg := float64(st.LatencyCycles) / float64(st.Packets); avg != res.Summary.AvgLatency {
					t.Errorf("latency cycles / packets = %v != AvgLatency %v", avg, res.Summary.AvgLatency)
				}
			}
			if st.NIQueueCycles < 0 || st.WakeupNICycles < 0 || st.WakeupNetCycles < 0 || st.TransitCycles < 0 {
				t.Errorf("negative stage term: %+v", st)
			}
			if s == config.NoPG && (st.WakeupNICycles != 0 || st.WakeupNetCycles != 0) {
				t.Errorf("No-PG run has wakeup cycles: %+v", st)
			}
		})
	}
}

// TestProbeCrossChecksCollector cross-validates the event stream
// against the simulator's own accounting: the counters probe must
// independently arrive at the same packet counts, latency sum, wakeup
// counts, and gating-event counts the collectors report.
func TestProbeCrossChecksCollector(t *testing.T) {
	for _, s := range []config.Scheme{config.ConvOptPG, config.PowerPunchPG} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(s)
			n := mustNew(t, cfg)
			probe := &obs.Counters{}
			n.Observe(probe)
			res := runWithDriver(t, n, 13, 0.02, 5000)

			if got := probe.Total(obs.KindInject); got != probe.Total(obs.KindEject) {
				t.Errorf("inject events %d != eject events %d after drain", got, probe.Total(obs.KindEject))
			}
			if probe.Latency.Count != res.Summary.Ejected {
				t.Errorf("probe saw %d ejections, collector %d", probe.Latency.Count, res.Summary.Ejected)
			}
			if probe.Latency.Sum != res.Detail.Stages.LatencyCycles {
				t.Errorf("probe latency sum %d != detail %d", probe.Latency.Sum, res.Detail.Stages.LatencyCycles)
			}
			pg := res.Detail.PG
			// Stats.GatingEvents counts COMPLETED power-off decisions
			// (incremented when the gated period ends in a wake), so
			// routers still gated when the run drains show up in the
			// event stream but not yet in the stat.
			stillGated := int64(n.GatedRouterCount())
			if got := probe.Total(obs.KindPGGate); got != pg.GatingEvents+stillGated {
				t.Errorf("pg_gate events %d != completed gatings %d + still gated %d",
					got, pg.GatingEvents, stillGated)
			}
			if got := probe.Total(obs.KindPGWake); got != pg.WakeupsPunch+pg.WakeupsWU {
				t.Errorf("pg_wake events %d != controller wakeups %d", got, pg.WakeupsPunch+pg.WakeupsWU)
			}
			if got := probe.PunchWakes.Wakeups + probe.ConvWakes.Wakeups; got != probe.Total(obs.KindPGActive) {
				t.Errorf("completed wake windows %d != pg_active events %d", got, probe.Total(obs.KindPGActive))
			}
			if s == config.PowerPunchPG {
				if got := probe.Total(obs.KindPunchEmit); got != res.Detail.Punch.SourceEmissions {
					t.Errorf("punch_emit events %d != fabric emissions %d", got, res.Detail.Punch.SourceEmissions)
				}
				if probe.PunchWakes.Wakeups != pg.WakeupsPunch {
					t.Errorf("probe punch wakes %d != controller %d", probe.PunchWakes.Wakeups, pg.WakeupsPunch)
				}
			}
		})
	}
}

// TestObservedHiddenFractionSeparatesSchemes reproduces the paper's §6
// claim from the event stream alone: Power Punch hides most wakeup
// latency, conventional gating exposes much more of it.
func TestObservedHiddenFractionSeparatesSchemes(t *testing.T) {
	frac := map[config.Scheme]float64{}
	for _, s := range []config.Scheme{config.ConvOptPG, config.PowerPunchPG} {
		cfg := testConfig(s)
		n := mustNew(t, cfg)
		probe := &obs.Counters{}
		n.Observe(probe)
		runWithDriver(t, n, 17, 0.02, 6000)
		if probe.PunchWakes.Wakeups+probe.ConvWakes.Wakeups == 0 {
			t.Fatalf("%v: no wake windows observed", s)
		}
		frac[s] = probe.HiddenFraction()
	}
	if frac[config.PowerPunchPG] <= frac[config.ConvOptPG] {
		t.Errorf("hidden fraction: PowerPunch %.3f <= ConvOpt %.3f",
			frac[config.PowerPunchPG], frac[config.ConvOptPG])
	}
	if frac[config.PowerPunchPG] < 0.5 {
		t.Errorf("PowerPunch hides only %.3f of wakeup cycles", frac[config.PowerPunchPG])
	}
}

// TestObserveRejectsLateAttach pins the API contract: observers attach
// at construction time, before the first cycle.
func TestObserveRejectsLateAttach(t *testing.T) {
	n := mustNew(t, testConfig(config.NoPG))
	n.Step()
	defer func() {
		if recover() == nil {
			t.Error("Observe after Step did not panic")
		}
	}()
	n.Observe(&obs.Counters{})
}

// TestSoakObserved is the obs-enabled variant of the soak gate: every
// scheme with the full invariant engine sweeping every cycle AND all
// three sink types attached, so event emission runs under the checker
// and (in CI) the race detector.
func TestSoakObserved(t *testing.T) {
	for _, s := range config.Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(s)
			cfg.Checks = true
			cfg.CheckInterval = 1
			n := mustNew(t, cfg)
			probe := &obs.Counters{}
			sampler := obs.NewSampler(64)
			tw := obs.NewTraceWriter(io.Discard, obs.MaskAll)
			n.Observe(probe, sampler, tw)
			violated := false
			n.OnViolation = func(a *check.Artifact) {
				violated = true
				t.Errorf("%v: %v", s, &a.Violation)
			}
			d := &randomDriver{rng: rand.New(rand.NewSource(99)), rate: 0.012, until: 6_000}
			for cyc := 0; cyc < 6_000 && !violated; cyc++ {
				d.Tick(n, n.Now())
				n.Step()
			}
			for cyc := 0; cyc < 20_000 && !n.Quiesced(); cyc++ {
				n.Step()
			}
			if !n.Quiesced() {
				t.Fatal("observed soak did not quiesce")
			}
			for _, p := range d.pkts {
				if p.EjectedAt == 0 {
					t.Fatalf("observed soak lost packet %v", p)
				}
			}
			if int(probe.Latency.Count) != len(d.pkts) {
				t.Errorf("probe counted %d ejections, driver injected %d", probe.Latency.Count, len(d.pkts))
			}
			if tw.Err() != nil {
				t.Errorf("trace writer: %v", tw.Err())
			}
			if len(sampler.Samples()) == 0 {
				t.Error("sampler produced no windows")
			}
		})
	}
}
