package network

import (
	"fmt"

	"powerpunch/internal/obs"
)

// Observe attaches observability sinks to the network: every router,
// PG controller, NI, and the punch fabric publish cycle-level events
// into a shared obs.Bus fanned out to the sinks. Must be called
// before the first Step — a mid-run attach would see a torn event
// stream (and, under the active-set scheduler, miss transitions that
// already collapsed into batched catch-up), so it panics after cycle 0.
//
// With no observer attached the whole layer is a nil-pointer check per
// emission site; the hot tick path stays allocation-free either way
// (events are stack values copied into one bus-owned scratch slot).
func (n *Network) Observe(sinks ...obs.Sink) {
	if n.now > 0 {
		panic(fmt.Sprintf("network: Observe called at cycle %d; observers must attach before the first Step", n.now))
	}
	if n.bus == nil {
		punch := 0
		if n.Fabric != nil {
			punch = n.Fabric.Hops()
		}
		n.bus = obs.NewBus(obs.Meta{
			Nodes:    n.M.NumNodes(),
			Width:    n.Cfg.Width,
			Height:   n.Cfg.Height,
			Topology: n.Cfg.TopologyKind().String(),
			Scheme:   n.Cfg.Scheme.String(),
			Twakeup:  n.Cfg.WakeupLatency,
			BET:      n.Cfg.BreakEven,
			Punch:    punch,
		})
		for i, r := range n.Routers {
			r.SetBus(n.bus)
			r.Ctrl.SetBus(n.bus, int32(i))
		}
		for _, nif := range n.NIs {
			nif.SetBus(n.bus)
		}
		if n.Fabric != nil {
			n.Fabric.SetBus(n.bus)
		}
		if n.par != nil {
			// Parallel engine: re-point routers, controllers, and NIs
			// at per-worker recording lane buses whose events the
			// coordinator replays onto the real bus in serial order.
			// The fabric keeps the real bus — it only emits on the
			// coordinator.
			n.par.installLaneBuses(n.bus)
		}
	}
	for _, s := range sinks {
		// Sinks that consume cumulative per-component energy (the
		// timeline Sampler's power columns) read the run's accountant.
		// Accounting settles — including the parallel engine's lane
		// fold — before any engine closes the bus cycle, so EndCycle
		// reads are current and engine-invariant.
		if pm, ok := s.(interface{ SetPowerMeter(obs.PowerMeter) }); ok {
			pm.SetPowerMeter(n.Acct)
		}
		n.bus.Attach(s)
	}
}

// Observed reports whether an observability bus is attached.
func (n *Network) Observed() bool { return n.bus != nil }

// Bus returns the attached observability bus, or nil when the network
// is unobserved.
func (n *Network) Bus() *obs.Bus { return n.bus }
