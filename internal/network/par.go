package network

// The deterministic sharded parallel tick engine (DESIGN.md §11).
//
// Config.Workers > 1 selects this engine: the node set is split into
// contiguous shards, one per worker, and each of the nine tick phases
// runs in parallel across the shards with barriers between groups of
// phases (sections). The result is bit-identical to the serial engines
// — including floating-point accumulation order, event order, and
// statistics sample order — because
//
//   - every mutation inside a worker section touches only state with a
//     single writer (own routers/NIs, own scratch, the uniquely-paired
//     link pipes and credit counters across a port), and
//   - every cross-shard effect (punch fabric signals, observability
//     events, scheduler arms, Deliver callbacks, flit-pool returns) is
//     captured in per-worker buffers and replayed by the coordinator in
//     worker-major order — which, with contiguous shards, is exactly
//     the serial engines' ascending-node order.
//
// Barrier placement per cycle (active-set form; the FullTick form is
// identical minus the scheduler interactions):
//
//	coordinator  flush, eager syncAll(now-1)
//	section A    pull-deliver flits, push credits, eject      [barrier]
//	coordinator  replay eject events, Deliver calls, flush
//	section A2   NI punch signals, router punch emission      [barrier]
//	             (fused into A when no Deliver hook is set)
//	coordinator  replay punch ops into the real fabric, Fabric.Step,
//	             arm held nodes, flush
//	section B    mask, router pipelines, NI injection         [barrier]
//	coordinator  replay pipeline+inject events, replay arms, flush
//	section C1   WU want levels (+ collect wanted-neighbour arms)
//	                                                          [barrier]
//	coordinator  replay arms, flush
//	section C2   wakeup levels, PG controller steps, static-power
//	             ticks                                        [barrier]
//	coordinator  replay controller events, TickCycle, fold counter
//	             lanes, merge collector lanes, drain flit returns,
//	             invariant checks, endCycle
//
// The eager syncAll at the top of each cycle is what makes the worker
// sections race-free against the scheduler: every parked node's catch-up
// charges are applied before the sections start, so the catchUp calls
// inside maskBlocked become read-only early returns. Catch-up replays
// the identical per-cycle operations whether batched or not, so the
// eager form changes no state relative to the serial engine.
//
// Flit and packet pools are per worker. Packets are keyed by the owner
// of their destination on both ends (NewPacket draws from the dst
// owner's pool; the dst NI returns them), a closed loop. Flit objects
// are keyed by the owner of their source (injection draws them); at
// ejection the destination worker defers each flit into a per-worker-
// pair return queue and the coordinator drains the queues in fixed
// (target, source) order — so steady state allocates nothing under any
// traffic pattern, and pool state stays deterministic.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/ni"
	"powerpunch/internal/obs"
	"powerpunch/internal/pg"
	"powerpunch/internal/router"
	"powerpunch/internal/stats"
)

// Section identifiers dispatched to workers.
const (
	secExit int32 = iota
	secDeliver
	secDeliverSignals // secDeliver + secSignals fused (no Deliver hooks)
	secSignals
	secPipeline
	secWants
	secCtrl
)

// punchOp is one deferred punch-fabric call.
type punchOp struct {
	kind uint8
	a, b mesh.NodeID
}

const (
	opEmitLocal uint8 = iota
	opHoldLocal
	opEmitSource
)

// punchSink is one worker's punch-fabric facade. During a section it
// defers every call into the worker's op buffers (sigOps for the NI
// signal phase, emitOps for the router emission phase) for worker-major
// replay into the real fabric. Outside sections — driver-time Announce
// and Submit paths — it forwards directly, preserving the serial
// engine's event stamping (driver-time punch events carry the previous
// cycle's stamp because SetNow has not run yet).
type punchSink struct{ w *parWorker }

func (ps *punchSink) EmitLocal(src, dst mesh.NodeID) {
	if !ps.w.eng.inSection {
		ps.w.eng.n.Fabric.EmitLocal(src, dst)
		return
	}
	ps.w.sigOps = append(ps.w.sigOps, punchOp{opEmitLocal, src, dst})
}

func (ps *punchSink) HoldLocal(n mesh.NodeID) {
	if !ps.w.eng.inSection {
		ps.w.eng.n.Fabric.HoldLocal(n)
		return
	}
	ps.w.sigOps = append(ps.w.sigOps, punchOp{opHoldLocal, n, n})
}

func (ps *punchSink) EmitSource(cur, dst mesh.NodeID) {
	ps.w.emitOps = append(ps.w.emitOps, punchOp{opEmitSource, cur, dst})
}

// flitSink routes an ejected flit back toward the pool of the worker
// that owns the flit's source node, via the ejecting worker's per-pair
// return queue (drained by the coordinator in fixed order).
type flitSink struct{ w *parWorker }

func (fs *flitSink) RecycleFlit(f *flit.Flit, src mesh.NodeID) {
	tw := fs.w.eng.ownerOf[src]
	fs.w.flitRet[tw] = append(fs.w.flitRet[tw], f)
}

// deferredDeliver is one buffered NI Deliver callback.
type deferredDeliver struct {
	nif *ni.NI
	p   *flit.Packet
	at  int64
}

// bypassFwd is one deferred bypass relay (bypass schemes only): a
// tagged flit drained from the first link that must be pushed onto the
// flown-over router's own output pipe. The push cannot happen inside
// the delivery section — the receiver's worker would write a pipe the
// landing router's worker may be draining — so it is buffered here and
// replayed by the coordinator after the section A barrier.
type bypassFwd struct {
	from mesh.NodeID    // sender whose stream counter releases at the tail
	via  mesh.NodeID    // flown-over router carrying the second link
	dir  mesh.Direction // travel direction
	ft   router.FlitInTransit
}

// parWorker is one shard's execution context. Worker 0 is the
// coordinator running inline; workers 1..nw-1 are goroutines.
type parWorker struct {
	eng    *parEngine
	id     int
	lo, hi int32 // owned node range [lo, hi)

	wakeCh chan struct{}

	// Lane sinks: events, statistics, flit/packet pool.
	rec  *obs.Recorder    // nil without an observer
	bus  *obs.Bus         // lane bus feeding rec; nil without an observer
	col  *stats.Collector // lane collector, merged each cycle
	pool *flit.Pool       // nil on checked runs

	sink     punchSink
	flitRec  flitSink
	sigOps   []punchOp
	emitOps  []punchOp
	arms     []mesh.NodeID
	delivs   []deferredDeliver
	bypFwd   []bypassFwd
	flitRet  [][]*flit.Flit // indexed by target worker
	marks    [4]int         // recorder cuts: A, B1, B2, C

	// Per-worker drain scratch (the parallel deliverNode).
	flitBuf []router.FlitInTransit
	credBuf []router.Credit

	panicked   bool
	panicVal   any
	panicStack []byte
}

// parEngine drives the worker pool. It lives on the Network when
// Config.Workers > 1.
type parEngine struct {
	n       *Network
	workers []*parWorker
	ownerOf []int32 // node -> worker

	realBus *obs.Bus // set by Observe; replay target

	// inSection tells the punch sinks whether to defer (worker context)
	// or forward (driver/coordinator context). Written by the
	// coordinator only, outside sections; the dispatch atomics order it
	// for the workers.
	inSection  bool
	hasDeliver bool

	// Dispatch state. sect and cycle are plain fields published to the
	// workers by the epoch increment and read back after the pending
	// count reaches zero.
	sect    int32
	cycle   int64
	epoch   atomic.Uint64
	pending atomic.Int32
	doneCh  chan struct{}

	closed bool
	wg     sync.WaitGroup
}

func newParEngine(n *Network, workers int) *parEngine {
	nNodes := n.M.NumNodes()
	nw := workers
	if nw > nNodes {
		nw = nNodes
	}
	e := &parEngine{n: n, doneCh: make(chan struct{}, 1)}
	e.ownerOf = make([]int32, nNodes)
	base, rem := nNodes/nw, nNodes%nw
	lo := 0
	for wid := 0; wid < nw; wid++ {
		size := base
		if wid < rem {
			size++
		}
		w := &parWorker{
			eng:    e,
			id:     wid,
			lo:     int32(lo),
			hi:     int32(lo + size),
			wakeCh: make(chan struct{}, 1),
			col:    stats.New(n.Col.MeasureStart, n.Col.MeasureEnd),
		}
		w.sink.w = w
		w.flitRec.w = w
		w.flitRet = make([][]*flit.Flit, 0) // sized below once nw is final
		for i := lo; i < lo+size; i++ {
			e.ownerOf[i] = int32(wid)
		}
		e.workers = append(e.workers, w)
		lo += size
	}
	for _, w := range e.workers {
		w.flitRet = make([][]*flit.Flit, nw)
	}

	n.Acct.SetLanes(e.ownerOf, nw)

	for i, nif := range n.NIs {
		w := e.workers[e.ownerOf[i]]
		nif.SetCollector(w.col)
		if n.Fabric != nil {
			nif.SetPunchFabric(&w.sink)
		}
		nif := nif
		nif.SetDeliverDefer(func(p *flit.Packet, at int64) {
			w.delivs = append(w.delivs, deferredDeliver{nif, p, at})
		})
	}
	if !n.Cfg.Checks {
		for _, w := range e.workers {
			w.pool = flit.NewPool()
		}
		for i, nif := range n.NIs {
			w := e.workers[e.ownerOf[i]]
			nif.SetPool(w.pool)
			nif.SetFlitRecycler(&w.flitRec)
			nif.SetPacketRecycling(n.Cfg.RecyclePackets)
		}
	}
	if n.sched != nil {
		for i, r := range n.Routers {
			w := e.workers[e.ownerOf[i]]
			r.SetForwardHook(func(id mesh.NodeID) { w.arms = append(w.arms, id) })
		}
	}

	for _, w := range e.workers[1:] {
		e.wg.Add(1)
		go e.workerLoop(w)
	}
	return e
}

// installLaneBuses gives every worker a recording lane bus and points
// the routers, PG controllers, and NIs of its shard at it; the punch
// fabric keeps the real bus (its emissions already happen on the
// coordinator, in serial order). Called by Observe.
func (e *parEngine) installLaneBuses(real *obs.Bus) {
	e.realBus = real
	n := e.n
	for _, w := range e.workers {
		w.rec = &obs.Recorder{}
		w.bus = obs.NewBus(real.Meta())
		w.bus.Attach(w.rec)
		for i := w.lo; i < w.hi; i++ {
			n.Routers[i].SetBus(w.bus)
			n.Routers[i].Ctrl.SetBus(w.bus, i)
			n.NIs[i].SetBus(w.bus)
		}
	}
}

// Close shuts the worker goroutines down. Idempotent; the engine is
// unusable afterwards.
func (e *parEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if len(e.workers) > 1 {
		e.sect = secExit
		e.epoch.Add(1)
		for _, w := range e.workers[1:] {
			select {
			case w.wakeCh <- struct{}{}:
			default:
			}
		}
		e.wg.Wait()
	}
}

// workerLoop is the body of workers 1..nw-1: wait for a dispatch, run
// the section over the own shard, signal completion. Waiting spins
// briefly (yielding) before parking on the wake channel; the
// coordinator's unconditional post-dispatch token makes the park
// race-free (a stale token only causes one extra epoch re-check).
func (e *parEngine) workerLoop(w *parWorker) {
	defer e.wg.Done()
	var last uint64
	for {
		spins := 0
		for e.epoch.Load() == last {
			spins++
			if spins < 128 {
				runtime.Gosched()
				continue
			}
			<-w.wakeCh
		}
		last = e.epoch.Load()
		if e.sect == secExit {
			return
		}
		w.run(e.sect, e.cycle)
		if e.pending.Add(-1) == 0 {
			select {
			case e.doneCh <- struct{}{}:
			default:
			}
		}
	}
}

// runSection dispatches one section to all workers, runs shard 0
// inline, waits for the barrier, and re-raises the first worker panic
// (lowest worker index) on the caller's goroutine.
func (e *parEngine) runSection(sec int32, now int64) {
	nw := len(e.workers)
	if nw > 1 {
		e.sect, e.cycle = sec, now
		e.pending.Store(int32(nw - 1))
		e.epoch.Add(1)
		for _, w := range e.workers[1:] {
			select {
			case w.wakeCh <- struct{}{}:
			default:
			}
		}
	}
	e.workers[0].run(sec, now)
	if nw > 1 {
		for e.pending.Load() != 0 {
			select {
			case <-e.doneCh:
			default:
				runtime.Gosched()
			}
		}
		select { // drain a stale completion token
		case <-e.doneCh:
		default:
		}
	}
	for _, w := range e.workers {
		if w.panicked {
			w.panicked = false
			panic(fmt.Sprintf("network: parallel worker %d panicked: %v\n%s",
				w.id, w.panicVal, w.panicStack))
		}
	}
}

// run executes one section over the worker's shard, capturing panics
// for deferred re-raise (a panic escaping a worker goroutine would kill
// the process without unwinding the coordinator).
func (w *parWorker) run(sec int32, now int64) {
	defer func() {
		if r := recover(); r != nil {
			w.panicked, w.panicVal, w.panicStack = true, r, debug.Stack()
		}
	}()
	switch sec {
	case secDeliver:
		w.secDeliver(now)
	case secDeliverSignals:
		w.secDeliver(now)
		w.secSignals(now)
	case secSignals:
		w.secSignals(now)
	case secPipeline:
		w.secPipeline(now)
	case secWants:
		w.secWants(now)
	case secCtrl:
		w.secCtrl(now)
	}
}

// first and after iterate the worker's share of the node set: the
// shard's slice of the active set under the scheduler, the full shard
// range under FullTick. The active bitset is frozen during sections
// (activations only append to the pending list), so concurrent reads
// are safe.
func (w *parWorker) first() int32 {
	if s := w.eng.n.sched; s != nil {
		if i := s.next(w.lo); i != -1 && i < w.hi {
			return i
		}
		return -1
	}
	if w.lo < w.hi {
		return w.lo
	}
	return -1
}

func (w *parWorker) after(i int32) int32 {
	if s := w.eng.n.sched; s != nil {
		if j := s.next(i + 1); j != -1 && j < w.hi {
			return j
		}
		return -1
	}
	if i+1 < w.hi {
		return i + 1
	}
	return -1
}

// secDeliver is phase 1 in pull form: instead of each sender pushing
// into downstream buffers, each receiver drains the upstream pipes
// facing it. The two forms deliver the identical flit multiset — a
// non-empty pipe's receiver is always in the active set (the forward
// hook armed it at push time; DropRearms, which breaks that, is
// rejected with Workers > 1) — and pipe/port/VC state is identical
// because each pipe and each credit counter has exactly one writer.
func (w *parWorker) secDeliver(now int64) {
	n := w.eng.n
	for i := w.first(); i != -1; i = w.after(i) {
		r := n.Routers[i]
		// Incoming flits from each upstream neighbour.
		for _, d := range mesh.LinkDirections {
			nb := n.nbr[i][d]
			if nb == mesh.Invalid {
				continue
			}
			op := n.Routers[nb].Out(d.Opposite())
			if op.FlitOut.Empty() {
				continue
			}
			w.flitBuf = op.FlitOut.DrainAppend(now, w.flitBuf[:0])
			for _, ft := range w.flitBuf {
				if ft.Bypass {
					w.bypFwd = append(w.bypFwd, bypassFwd{
						from: nb, via: mesh.NodeID(i), dir: d.Opposite(), ft: ft,
					})
					continue
				}
				r.ReceiveFlit(d, ft.VC, ft.Flit, now)
			}
		}
		// Local ejection into the own NI.
		if op := r.Out(mesh.Local); !op.FlitOut.Empty() {
			nif := n.NIs[i]
			w.flitBuf = op.FlitOut.DrainAppend(now, w.flitBuf[:0])
			for _, ft := range w.flitBuf {
				nif.ReceiveEject(ft, now)
			}
		}
		// Outgoing credits to the upstream routers (single writer: only
		// the node across a port feeds that port's credit counters).
		for p := 0; p < mesh.NumPorts; p++ {
			d := mesh.Direction(p)
			ip := r.In(d)
			if ip.CreditOut.Empty() {
				continue
			}
			if d == mesh.Local {
				nif := n.NIs[i]
				w.credBuf = ip.CreditOut.DrainAppend(now, w.credBuf[:0])
				for _, c := range w.credBuf {
					nif.ReceiveCredit(c.VC)
				}
				continue
			}
			nb := n.nbr[i][d]
			if nb == mesh.Invalid {
				continue
			}
			up := n.Routers[nb]
			toward := d.Opposite()
			w.credBuf = ip.CreditOut.DrainAppend(now, w.credBuf[:0])
			for _, c := range w.credBuf {
				up.ReceiveCredit(toward, c.VC)
			}
		}
	}
	if w.rec != nil {
		w.marks[0] = w.rec.Mark()
	}
}

// secSignals is phases 2 and 3's emission half: NI punch signalling and
// router punch emission, both deferred into op buffers (the fabric
// itself is stepped by the coordinator after worker-major replay).
func (w *parWorker) secSignals(now int64) {
	n := w.eng.n
	for i := w.first(); i != -1; i = w.after(i) {
		n.NIs[i].StepSignals(now)
	}
	if n.Fabric != nil {
		for i := w.first(); i != -1; i = w.after(i) {
			n.Routers[i].EmitPunches(&w.sink)
		}
	}
}

// secPipeline is phases 4-6: output masking, router pipelines, NI
// injection. Controllers and neighbour output pipes are frozen for the
// whole section, so the mask and pipeline reads are race-free; forward-
// hook arms land in the worker's arm buffer.
func (w *parWorker) secPipeline(now int64) {
	n := w.eng.n
	for i := w.first(); i != -1; i = w.after(i) {
		n.maskBlocked(n.Routers[i])
	}
	for i := w.first(); i != -1; i = w.after(i) {
		n.Routers[i].Step(now)
	}
	if w.rec != nil {
		w.marks[1] = w.rec.Mark()
	}
	for i := w.first(); i != -1; i = w.after(i) {
		n.NIs[i].StepInject(now)
	}
	if w.rec != nil {
		w.marks[2] = w.rec.Mark()
	}
}

// secWants is the WU-level half of phase 7: compute each own router's
// want levels and collect the wanted-neighbour arms the serial engine
// would apply inline.
func (w *parWorker) secWants(now int64) {
	n := w.eng.n
	early := n.pol.EarlyWakeup()
	sched := n.sched
	for i := w.first(); i != -1; i = w.after(i) {
		r := n.Routers[i]
		if early {
			r.WantsOutput(&n.wants[i])
		} else {
			r.WantsOutputAtSA(&n.wants[i], now)
		}
		if sched == nil || r.Empty() {
			continue
		}
		for _, d := range mesh.LinkDirections {
			if n.wants[i][d] {
				if nb := n.nbr[i][d]; nb != mesh.Invalid {
					w.arms = append(w.arms, nb)
				}
			}
		}
	}
}

// secCtrl is the rest of phase 7 plus phase 8: wakeup levels (own NI +
// frozen neighbour wants), PG controller steps (neighbour pipes and the
// fabric's hold state are frozen), and the static-power tick.
func (w *parWorker) secCtrl(now int64) {
	n := w.eng.n
	if n.pol.Gates() {
		for i := w.first(); i != -1; i = w.after(i) {
			wu := n.NIs[i].WantsWakeup()
			if !wu {
				for _, d := range mesh.LinkDirections {
					nb := n.nbr[i][d]
					if nb == mesh.Invalid {
						continue
					}
					if n.wants[nb][d.Opposite()] {
						wu = true
						break
					}
				}
			}
			n.wakeups[i] = wu
		}
		for i := w.first(); i != -1; i = w.after(i) {
			r := n.Routers[i]
			empty := r.Empty() && n.incomingQuiet(r)
			hold := false
			if n.Fabric != nil {
				hold = n.Fabric.Hold(r.ID)
			}
			bhold := n.bypassOn && n.bypassHeld(int(i))
			if n.wakeups[i] && n.Acct.Enabled() {
				n.Acct.WakeupSignal(int(i))
			}
			r.Ctrl.Step(pg.Inputs{Empty: empty, Wakeup: n.wakeups[i], PunchHold: hold, BypassHold: bhold})
		}
	}
	for i := w.first(); i != -1; i = w.after(i) {
		n.Acct.TickStatic(int(i), routerPowerState(n.Routers[i].Ctrl))
	}
	if w.rec != nil {
		w.marks[3] = w.rec.Mark()
	}
}

// replayCut re-emits the events of one recorder cut onto the real bus,
// worker-major — the serial engines' ascending-node order, since shards
// are contiguous. Emit restamps the cycle (the lane clocks are kept in
// step anyway, because emitters derive event payloads from bus.Now()).
func (e *parEngine) replayCut(cut int) {
	if e.realBus == nil {
		return
	}
	for _, w := range e.workers {
		lo := 0
		if cut > 0 {
			lo = w.marks[cut-1]
		}
		events := w.rec.Slice(lo, w.marks[cut])
		for i := range events {
			e.realBus.Emit(events[i])
		}
	}
}

// replayBypassForwards relays the deferred bypass-tagged flits across
// their flown-over routers (see forwardBypass), worker-major on the
// coordinator after the section A barrier. Pushes target the next
// cycle and stream-counter releases are first read in phase 7, so the
// replay point is behaviourally identical to the serial engines'
// inline forward during phase 1.
func (e *parEngine) replayBypassForwards(now int64) {
	n := e.n
	for _, w := range e.workers {
		for j := range w.bypFwd {
			bf := &w.bypFwd[j]
			n.Routers[bf.via].Out(bf.dir).FlitOut.Push(
				router.FlitInTransit{Flit: bf.ft.Flit, VC: bf.ft.VC}, now)
			if bf.ft.Flit.Type.IsTail() {
				n.Routers[bf.from].BypassStreamRelease(bf.dir)
			}
			*bf = bypassFwd{}
		}
		w.bypFwd = w.bypFwd[:0]
	}
}

// replayDelivers runs the buffered NI Deliver callbacks in ascending
// node order, on the coordinator — protocol handlers observe the exact
// serial call order, and their submissions (NewPacket, Submit) run in
// the single-threaded context they expect.
func (e *parEngine) replayDelivers() {
	for _, w := range e.workers {
		for j := range w.delivs {
			d := &w.delivs[j]
			d.nif.Deliver(d.p, d.at)
			*d = deferredDeliver{}
		}
		w.delivs = w.delivs[:0]
	}
}

// replayPunchOps applies the deferred punch-fabric calls to the real
// fabric: all NI signal ops (phase 2), then all router emissions
// (phase 3), each worker-major. Order matters — per-node pending lists,
// strict-port arbitration, and event emission all follow call order.
func (e *parEngine) replayPunchOps() {
	fab := e.n.Fabric
	for _, w := range e.workers {
		for _, op := range w.sigOps {
			if op.kind == opEmitLocal {
				fab.EmitLocal(op.a, op.b)
			} else {
				fab.HoldLocal(op.a)
			}
		}
		w.sigOps = w.sigOps[:0]
	}
	for _, w := range e.workers {
		for _, op := range w.emitOps {
			fab.EmitSource(op.a, op.b)
		}
		w.emitOps = w.emitOps[:0]
	}
}

// replayArms feeds the buffered activation attempts through the
// scheduler, worker-major. Every attempt is replayed (no dedup in the
// buffers) so the inSet guard runs exactly as it would have inline.
func (e *parEngine) replayArms(s *scheduler) {
	for _, w := range e.workers {
		for _, id := range w.arms {
			s.activate(int32(id), true)
		}
		w.arms = w.arms[:0]
	}
}

// drainFlitReturns returns every deferred ejected flit to the pool of
// the worker owning its source node, in fixed (target, source) order,
// keeping pool contents deterministic.
func (e *parEngine) drainFlitReturns() {
	if e.workers[0].pool == nil {
		return
	}
	for tw, wt := range e.workers {
		for _, ws := range e.workers {
			q := ws.flitRet[tw]
			for j, f := range q {
				wt.pool.PutFlit(f)
				q[j] = nil
			}
			ws.flitRet[tw] = q[:0]
		}
	}
}

// step advances the network one cycle on the parallel engine. The
// structure mirrors stepActive/stepFull phase for phase; see the file
// comment for the barrier placement rationale.
func (e *parEngine) step() {
	n := e.n
	now := n.now
	s := n.sched
	if n.bus != nil {
		n.bus.SetNow(now)
	}

	// Per-cycle housekeeping: recompute the Deliver-hook flag (it is a
	// settable public field), refresh lane sample-keeping, reset the
	// lane recorders.
	e.hasDeliver = false
	for _, nif := range n.NIs {
		if nif.Deliver != nil {
			e.hasDeliver = true
			break
		}
	}
	keep := n.Col.KeepingSamples()
	for _, w := range e.workers {
		if w.col.KeepingSamples() != keep {
			w.col.KeepSamples(keep)
		}
		if w.rec != nil {
			w.rec.Reset()
			// Lane clocks track the real bus: emitters compute event
			// payloads from bus.Now() (e.g. the KindPGGate active-period
			// length), so lanes must read the same cycle the real bus
			// does. Event cycle stamps would be correct either way —
			// replay restamps them — but payloads are recorded verbatim.
			w.bus.SetNow(now)
		}
	}

	if s != nil {
		// Arm driver-submitted work, then eagerly apply every parked
		// node's catch-up charges so the in-section catchUp calls
		// (maskBlocked) are read-only no-ops.
		s.flush(now)
		s.syncAll(now - 1)
	}

	// Phase 1 (+2/3 emission when fused): deliver, signal, emit.
	e.inSection = true
	if e.hasDeliver {
		e.runSection(secDeliver, now)
		e.inSection = false
		if n.bypassOn {
			e.replayBypassForwards(now)
		}
		e.replayCut(0)
		e.replayDelivers()
		if s != nil {
			s.flush(now)
		}
		e.inSection = true
		e.runSection(secSignals, now)
		e.inSection = false
	} else {
		e.runSection(secDeliverSignals, now)
		e.inSection = false
		if n.bypassOn {
			e.replayBypassForwards(now)
		}
		e.replayCut(0)
		if s != nil {
			s.flush(now)
		}
	}

	// Phase 3's fabric half, on the real fabric in serial order.
	if n.Fabric != nil {
		e.replayPunchOps()
		if s == nil {
			n.Fabric.Step()
		} else if n.Fabric.NeedsStep() {
			n.Fabric.Step()
			for _, id := range n.Fabric.Held() {
				s.activate(int32(id), true)
			}
			s.flush(now)
		}
	}

	// Phases 4-6: mask, pipelines, injection.
	e.inSection = true
	e.runSection(secPipeline, now)
	e.inSection = false
	e.replayCut(1)
	e.replayCut(2)
	if s != nil {
		e.replayArms(s)
		s.flush(now)
	}

	// Phase 7: want levels, then (after the wanted neighbours joined)
	// wakeups and controller steps; phase 8 static ticks ride along.
	if n.pol.Gates() {
		e.inSection = true
		e.runSection(secWants, now)
		e.inSection = false
		if s != nil {
			e.replayArms(s)
			s.flush(now)
		}
	}
	e.inSection = true
	e.runSection(secCtrl, now)
	e.inSection = false
	e.replayCut(3)

	n.Acct.TickCycle()
	n.Acct.FoldLanes()
	for _, w := range e.workers {
		n.Col.Merge(w.col)
	}
	e.drainFlitReturns()

	// Phase 9: invariant checks, serial on the coordinator.
	if n.Checker != nil {
		if s != nil {
			s.syncAll(now)
		}
		if v := n.Checker.EndCycle(now); v != nil {
			n.reportViolation(v)
		}
	}

	if s != nil {
		s.endCycle(now)
	}
	if n.bus != nil {
		n.bus.EndCycle()
	}
	n.now = now + 1
}
