package network

// The deterministic sharded parallel tick engine (DESIGN.md §11, §16).
//
// Config.Workers > 1 selects this engine. The node set is split into
// contiguous "homes", one per worker; each home owns its routers, NIs,
// per-home commit buffers (punch ops, obs events, scheduler arms,
// Deliver callbacks, pool returns), an obs recorder lane, a statistics
// lane, and a flit/packet pool. Ownership never moves. What does move,
// cycle to cycle, is the *execution grouping*: the homes are
// partitioned into k contiguous groups balanced by active-set
// occupancy, and each group is executed by one goroutine (the
// coordinator runs group 0 inline; group g >= 1 runs on the goroutine
// of its first home, which walks the group's homes in ascending
// order). Asleep regions therefore cost zero worker wakeups: with few
// active nodes k collapses to 1 and the coordinator runs everything
// inline with no atomics, and with none it skips the section outright.
//
// The result is bit-identical to the serial engines — including
// floating-point accumulation order, event order, and statistics
// sample order — because
//
//   - every mutation inside a worker section touches only state with a
//     single writer (own routers/NIs, own scratch, the uniquely-paired
//     link pipes and credit counters across a port),
//   - every cross-home effect is captured in per-home buffers and
//     replayed by the coordinator in home-major order — which, with
//     contiguous homes, is exactly the serial engines' ascending-node
//     order, independent of how homes were grouped for execution, and
//   - re-grouping happens only at deterministic points (cycle top and
//     after an arming flush), is a pure function of the active set, and
//     never changes which home a node commits through.
//
// Section fusion (active-set form; FullTick is the same minus the
// scheduler interactions). The serial engine's nine phases compress
// into three sections, so a gating cycle pays at most three rendezvous
// and a non-gating cycle at most two:
//
//	coordinator  flush + halo-sync + regroup
//	section A    pull-deliver flits, push credits, eject
//	coordinator  replay bypass forwards, eject events, Deliver
//	             calls, flush (+regroup)
//	section B    NI punch signals, router punch emission (deferred),
//	             mask, router pipelines, NI injection, WU want levels
//	             (+wanted-neighbour arms) — or, for non-gating schemes,
//	             the static-power ticks
//	coordinator  replay punch ops into the real fabric, Fabric.Step,
//	             replay pipeline+inject events, replay arms, flush
//	             (+regroup); non-gating: straggler static ticks
//	section C    wakeup levels, PG controller steps, static-power
//	             ticks (gating schemes only)
//	coordinator  replay controller events, TickCycle, merge dirty
//	             collector lanes, drain flit returns, invariant
//	             checks, endCycle, fold counter lanes
//
// Why the fusions are sound:
//
//   - Signals/emission fuse into B because StepSignals emits no bus
//     events and every punch-fabric call is deferred through the sink;
//     the fabric itself steps on the coordinator after B, and nothing
//     in B reads fabric state (controller inputs read Fabric.Hold in
//     C). Float order per router is preserved because PunchHop charges
//     only the Overhead accumulator while B's pipeline events charge
//     only Dynamic, and the other Overhead writers (WakeupSignal,
//     GatingEvent) run in C, after the fabric replay — per-field
//     accumulation order is exactly serial.
//   - Want levels fuse into B because WantsOutput reads only the own
//     router's post-pipeline state (serial computes it after all of
//     phases 4-6; per-node state is the same either way) and
//     controllers are frozen until C. Nodes armed between B and C
//     never ran B, but the serial engine computes all-false wants for
//     them (they are empty), which is exactly the cleared value their
//     retirement left behind.
//   - Nodes armed by the fabric's Held list miss B's mask/pipeline/
//     inject, but a just-armed node is empty (pushes land next cycle),
//     so those phases are strict no-ops for it and its stale masks are
//     refreshed before its switch allocator could ever use them.
//
// Rendezvous. Dispatch uses a per-worker sense counter (slot) plus a
// park flag instead of channel round-trips: the coordinator publishes
// the group range, bumps the slot, and sends a wake token only if the
// worker declared itself parked; the worker spins briefly (yielding),
// then parks on its buffered channel. Under Go's sequentially
// consistent atomics the worker's parkFlag store precedes its slot
// re-check and the coordinator's slot bump precedes its parkFlag read,
// so one side always sees the other — at worst one stale token is
// consumed and re-checked. Completion is a single shared countdown.
//
// Scheduler composition. Instead of eagerly syncing every parked node
// every cycle (O(n), which would dominate at 64x64), the coordinator
// catches up only the *halo*: the 1-hop neighbours (plus the 2-hop
// through-path when a bypass scheme is on) of every node entering a
// section, at the cycle top and at every arming flush. That is the
// complete set of parked-FSM reads inside sections (maskBlocked's
// PGAsserted, the bypass admission/suppression controller reads);
// section C reads no parked neighbour FSMs at all. The in-section
// catchUp calls therefore stay read-only early returns, and everything
// else syncs lazily exactly as the serial active-set engine does.
//
// Dirty homes. A home is dirty when any of its nodes is in the active
// set or was armed this cycle; regrouping and arming flushes maintain
// the flag, and the cycle top resets last cycle's dirty recorders (so
// a clean home always has an empty recorder and zero marks). Event
// replay, collector merging, and flit-return draining all skip clean
// homes, so per-cycle commit cost scales with the work done, not with
// the worker count.
//
// Flit and packet pools are per home. Packets are keyed by the owner
// of their destination on both ends (NewPacket draws from the dst
// owner's pool; the dst NI returns them), a closed loop. Flit objects
// are keyed by the owner of their source (injection draws them); at
// ejection the destination home defers each flit into a per-home-pair
// return queue and the coordinator drains the queues in fixed
// (target, source) order — so steady state allocates nothing under any
// traffic pattern, and pool state stays deterministic.

import (
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/ni"
	"powerpunch/internal/obs"
	"powerpunch/internal/pg"
	"powerpunch/internal/router"
	"powerpunch/internal/stats"
)

// Section identifiers dispatched to workers.
const (
	secExit int32 = iota
	secDeliver
	secMain
	secCtrl
)

// defaultParGrain is the occupancy-aware grouping grain: one execution
// group is spun up per ~grain active nodes (clamped to the home
// count), so a handful of awake routers never pays a worker dispatch.
// Tests override the engine's grain field to pin specific shapes.
const defaultParGrain = 32

// punchOp is one deferred punch-fabric call.
type punchOp struct {
	kind uint8
	a, b mesh.NodeID
}

const (
	opEmitLocal uint8 = iota
	opHoldLocal
	opEmitSource
)

// punchSink is one home's punch-fabric facade. During a section it
// defers every call into the home's op buffers (sigOps for the NI
// signal phase, emitOps for the router emission phase) for home-major
// replay into the real fabric. Outside sections — driver-time Announce
// and Submit paths — it forwards directly, preserving the serial
// engine's event stamping (driver-time punch events carry the previous
// cycle's stamp because SetNow has not run yet).
type punchSink struct{ w *parWorker }

func (ps *punchSink) EmitLocal(src, dst mesh.NodeID) {
	if !ps.w.eng.inSection {
		ps.w.eng.n.Fabric.EmitLocal(src, dst)
		return
	}
	ps.w.sigOps = append(ps.w.sigOps, punchOp{opEmitLocal, src, dst})
}

func (ps *punchSink) HoldLocal(n mesh.NodeID) {
	if !ps.w.eng.inSection {
		ps.w.eng.n.Fabric.HoldLocal(n)
		return
	}
	ps.w.sigOps = append(ps.w.sigOps, punchOp{opHoldLocal, n, n})
}

func (ps *punchSink) EmitSource(cur, dst mesh.NodeID) {
	ps.w.emitOps = append(ps.w.emitOps, punchOp{opEmitSource, cur, dst})
}

// flitSink routes an ejected flit back toward the pool of the home
// that owns the flit's source node, via the ejecting home's per-pair
// return queue (drained by the coordinator in fixed order).
type flitSink struct{ w *parWorker }

func (fs *flitSink) RecycleFlit(f *flit.Flit, src mesh.NodeID) {
	tw := fs.w.eng.ownerOf[src]
	fs.w.flitRet[tw] = append(fs.w.flitRet[tw], f)
}

// deferredDeliver is one buffered NI Deliver callback.
type deferredDeliver struct {
	nif *ni.NI
	p   *flit.Packet
	at  int64
}

// bypassFwd is one deferred bypass relay (bypass schemes only): a
// tagged flit drained from the first link that must be pushed onto the
// flown-over router's own output pipe. The push cannot happen inside
// the delivery section — the receiver's home would write a pipe the
// landing router's home may be draining — so it is buffered here and
// replayed by the coordinator after the section A rendezvous.
type bypassFwd struct {
	from mesh.NodeID    // sender whose stream counter releases at the tail
	via  mesh.NodeID    // flown-over router carrying the second link
	dir  mesh.Direction // travel direction
	ft   router.FlitInTransit
}

// parWorker is one home: a contiguous node range plus its commit lanes
// and, for homes 1..nw-1, a worker goroutine that executes whatever
// group of homes the coordinator assigns it.
type parWorker struct {
	eng    *parEngine
	id     int
	lo, hi int32 // owned node range [lo, hi)

	// Rendezvous state. slot is the sense counter the goroutine waits
	// on; runLo/runHi is the home range of the assigned group,
	// published before the slot bump. parkFlag tells the coordinator a
	// wake token is needed.
	slot     atomic.Uint64
	parkFlag atomic.Int32
	runLo    int32
	runHi    int32
	wakeCh   chan struct{}

	// Lane sinks: events, statistics, flit/packet pool.
	rec  *obs.Recorder    // nil without an observer
	bus  *obs.Bus         // lane bus feeding rec; nil without an observer
	col  *stats.Collector // lane collector, merged each cycle
	pool *flit.Pool       // nil on checked runs

	sink    punchSink
	flitRec flitSink
	sigOps  []punchOp
	emitOps []punchOp
	arms    []mesh.NodeID
	delivs  []deferredDeliver
	bypFwd  []bypassFwd
	flitRet [][]*flit.Flit // indexed by target home
	marks   [4]int         // recorder cuts: A, B-router, B-inject, C

	// Per-home drain scratch (the parallel deliverNode).
	flitBuf []router.FlitInTransit
	credBuf []router.Credit

	panicked   bool
	panicVal   any
	panicStack []byte
}

// parEngine drives the worker pool. It lives on the Network when
// Config.Workers > 1.
type parEngine struct {
	n       *Network
	workers []*parWorker
	ownerOf []int32 // node -> home
	gates   bool    // pol.Gates(), resolved once

	realBus *obs.Bus // set by Observe; replay target

	// inSection tells the punch sinks whether to defer (worker context)
	// or forward (driver/coordinator context). Written by the
	// coordinator only, outside sections; the dispatch atomics order it
	// for the workers.
	inSection bool

	// Occupancy-aware grouping state (see regroupNow). groups holds the
	// first home of each execution group; cnt the per-home active-node
	// counts it was derived from. dirty marks homes with work this
	// cycle; regroup requests a re-partition at the next section edge.
	grain      int
	cnt        []int
	groups     []int32
	dirty      []bool
	regroup    bool
	lastKeep   bool
	stragglers []int32

	// Rendezvous instrumentation (tests and DESIGN.md numbers):
	// sections dispatched to at least one worker goroutine, sections
	// the coordinator ran inline (k == 1), and sections skipped
	// outright (k == 0).
	nDispatch int64
	nInline   int64
	nSkip     int64

	// Dispatch state. sect and cycle are plain fields published to the
	// workers by the per-worker slot bumps; joins counts outstanding
	// groups.
	sect   int32
	cycle  int64
	joins  atomic.Int32
	doneCh chan struct{}

	closed bool
	wg     sync.WaitGroup
}

func newParEngine(n *Network, workers int) *parEngine {
	nNodes := n.M.NumNodes()
	nw := workers
	if nw > nNodes {
		nw = nNodes
	}
	e := &parEngine{
		n:      n,
		gates:  n.pol.Gates(),
		grain:  defaultParGrain,
		doneCh: make(chan struct{}, 1),
	}
	e.ownerOf = make([]int32, nNodes)
	base, rem := nNodes/nw, nNodes%nw
	lo := 0
	for wid := 0; wid < nw; wid++ {
		size := base
		if wid < rem {
			size++
		}
		w := &parWorker{
			eng:    e,
			id:     wid,
			lo:     int32(lo),
			hi:     int32(lo + size),
			wakeCh: make(chan struct{}, 1),
			col:    stats.New(n.Col.MeasureStart, n.Col.MeasureEnd),
		}
		w.sink.w = w
		w.flitRec.w = w
		for i := lo; i < lo+size; i++ {
			e.ownerOf[i] = int32(wid)
		}
		e.workers = append(e.workers, w)
		lo += size
	}
	for _, w := range e.workers {
		w.flitRet = make([][]*flit.Flit, nw)
	}
	e.cnt = make([]int, nw)
	e.groups = make([]int32, 0, nw+1)
	e.dirty = make([]bool, nw)
	e.stragglers = make([]int32, 0, nNodes)
	e.lastKeep = e.workers[0].col.KeepingSamples()
	if n.sched == nil {
		// FullTick: every node steps every cycle, so the grouping is
		// static — one group per home, all dispatched — and every home
		// is permanently dirty.
		for h := range e.workers {
			e.groups = append(e.groups, int32(h))
			e.dirty[h] = true
		}
	}

	n.Acct.SetLanes(e.ownerOf, nw)

	for i, nif := range n.NIs {
		w := e.workers[e.ownerOf[i]]
		nif.SetCollector(w.col)
		if n.Fabric != nil {
			nif.SetPunchFabric(&w.sink)
		}
		nif := nif
		nif.SetDeliverDefer(func(p *flit.Packet, at int64) {
			w.delivs = append(w.delivs, deferredDeliver{nif, p, at})
		})
	}
	if !n.Cfg.Checks {
		for _, w := range e.workers {
			w.pool = flit.NewPool()
		}
		for i, nif := range n.NIs {
			w := e.workers[e.ownerOf[i]]
			nif.SetPool(w.pool)
			nif.SetFlitRecycler(&w.flitRec)
			nif.SetPacketRecycling(n.Cfg.RecyclePackets)
		}
	}
	if n.sched != nil {
		for i, r := range n.Routers {
			w := e.workers[e.ownerOf[i]]
			r.SetForwardHook(func(id mesh.NodeID) { w.arms = append(w.arms, id) })
		}
	}

	for _, w := range e.workers[1:] {
		e.wg.Add(1)
		go e.workerLoop(w)
	}
	return e
}

// installLaneBuses gives every home a recording lane bus and points
// the routers, PG controllers, and NIs of its range at it; the punch
// fabric keeps the real bus (its emissions already happen on the
// coordinator, in serial order). Called by Observe.
func (e *parEngine) installLaneBuses(real *obs.Bus) {
	e.realBus = real
	n := e.n
	for _, w := range e.workers {
		w.rec = &obs.Recorder{}
		w.bus = obs.NewBus(real.Meta())
		w.bus.Attach(w.rec)
		for i := w.lo; i < w.hi; i++ {
			n.Routers[i].SetBus(w.bus)
			n.Routers[i].Ctrl.SetBus(w.bus, i)
			n.NIs[i].SetBus(w.bus)
		}
	}
}

// Close shuts the worker goroutines down. Idempotent; the engine is
// unusable afterwards.
func (e *parEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if len(e.workers) > 1 {
		e.sect = secExit
		for _, w := range e.workers[1:] {
			w.slot.Add(1)
			select {
			case w.wakeCh <- struct{}{}:
			default:
			}
		}
		e.wg.Wait()
	}
}

// workerLoop is the body of homes 1..nw-1's goroutines: wait for a
// slot bump, run the assigned group of homes in ascending order, join.
// Waiting spins briefly (yielding) before declaring itself parked and
// blocking on the wake channel; the parkFlag/slot protocol (see the
// file comment) makes the park race-free, with at worst one stale
// token consumed and re-checked.
func (e *parEngine) workerLoop(w *parWorker) {
	defer e.wg.Done()
	var seen uint64
	for {
		for spins := 0; w.slot.Load() == seen; spins++ {
			if spins < 128 {
				runtime.Gosched()
				continue
			}
			w.parkFlag.Store(1)
			if w.slot.Load() != seen {
				w.parkFlag.Store(0)
				break
			}
			<-w.wakeCh
			w.parkFlag.Store(0)
			spins = 0
		}
		seen = w.slot.Load()
		if e.sect == secExit {
			return
		}
		sec, now := e.sect, e.cycle
		for h := w.runLo; h < w.runHi; h++ {
			e.workers[h].run(sec, now)
		}
		if e.joins.Add(-1) == 0 {
			select {
			case e.doneCh <- struct{}{}:
			default:
			}
		}
	}
}

// runSection executes one section under the current grouping: skipped
// when no group has work, inline on the coordinator when one group
// suffices, otherwise group 0 inline with groups 1..k-1 dispatched to
// the goroutines of their first homes. Worker panics are re-raised on
// the caller's goroutine (lowest home first).
func (e *parEngine) runSection(sec int32, now int64) {
	ng := len(e.groups)
	if ng == 0 {
		e.nSkip++
		return
	}
	nw := len(e.workers)
	e.sect, e.cycle = sec, now
	if ng == 1 {
		e.nInline++
		for h := 0; h < nw; h++ {
			e.workers[h].run(sec, now)
		}
		e.checkPanics()
		return
	}
	e.nDispatch++
	e.joins.Store(int32(ng - 1))
	for g := 1; g < ng; g++ {
		glo := e.groups[g]
		ghi := int32(nw)
		if g+1 < ng {
			ghi = e.groups[g+1]
		}
		w := e.workers[glo]
		w.runLo, w.runHi = glo, ghi
		w.slot.Add(1)
		if w.parkFlag.Load() != 0 {
			select {
			case w.wakeCh <- struct{}{}:
			default:
			}
		}
	}
	for h := int32(0); h < e.groups[1]; h++ {
		e.workers[h].run(sec, now)
	}
	for e.joins.Load() != 0 {
		select {
		case <-e.doneCh:
		default:
			runtime.Gosched()
		}
	}
	select { // drain a stale completion token
	case <-e.doneCh:
	default:
	}
	e.checkPanics()
}

// checkPanics re-raises the first captured worker panic (lowest home
// index) on the coordinator's goroutine.
func (e *parEngine) checkPanics() {
	for _, w := range e.workers {
		if w.panicked {
			w.panicked = false
			panic(fmt.Sprintf("network: parallel worker %d panicked: %v\n%s",
				w.id, w.panicVal, w.panicStack))
		}
	}
}

// run executes one section over the home's node range, capturing
// panics for deferred re-raise (a panic escaping a worker goroutine
// would kill the process without unwinding the coordinator).
func (w *parWorker) run(sec int32, now int64) {
	defer func() {
		if r := recover(); r != nil {
			w.panicked, w.panicVal, w.panicStack = true, r, debug.Stack()
		}
	}()
	switch sec {
	case secDeliver:
		w.secDeliver(now)
	case secMain:
		w.secMain(now)
	case secCtrl:
		w.secCtrl(now)
	}
}

// first and after iterate the home's share of the node set: the home's
// slice of the active set under the scheduler, the full home range
// under FullTick. The active bitset is frozen during sections
// (activations only append to the pending list), so concurrent reads
// are safe.
func (w *parWorker) first() int32 {
	if s := w.eng.n.sched; s != nil {
		if i := s.next(w.lo); i != -1 && i < w.hi {
			return i
		}
		return -1
	}
	if w.lo < w.hi {
		return w.lo
	}
	return -1
}

func (w *parWorker) after(i int32) int32 {
	if s := w.eng.n.sched; s != nil {
		if j := s.next(i + 1); j != -1 && j < w.hi {
			return j
		}
		return -1
	}
	if i+1 < w.hi {
		return i + 1
	}
	return -1
}

// secDeliver is phase 1 in pull form: instead of each sender pushing
// into downstream buffers, each receiver drains the upstream pipes
// facing it. The two forms deliver the identical flit multiset — a
// non-empty pipe's receiver is always in the active set (the forward
// hook armed it at push time; DropRearms, which breaks that, is
// rejected with Workers > 1) — and pipe/port/VC state is identical
// because each pipe and each credit counter has exactly one writer.
func (w *parWorker) secDeliver(now int64) {
	n := w.eng.n
	for i := w.first(); i != -1; i = w.after(i) {
		r := n.Routers[i]
		// Incoming flits from each upstream neighbour.
		for _, d := range mesh.LinkDirections {
			nb := n.nbr[i][d]
			if nb == mesh.Invalid {
				continue
			}
			op := n.Routers[nb].Out(d.Opposite())
			if op.FlitOut.Empty() {
				continue
			}
			w.flitBuf = op.FlitOut.DrainAppend(now, w.flitBuf[:0])
			for _, ft := range w.flitBuf {
				if ft.Bypass {
					w.bypFwd = append(w.bypFwd, bypassFwd{
						from: nb, via: mesh.NodeID(i), dir: d.Opposite(), ft: ft,
					})
					continue
				}
				r.ReceiveFlit(d, ft.VC, ft.Flit, now)
			}
		}
		// Local ejection into the own NI.
		if op := r.Out(mesh.Local); !op.FlitOut.Empty() {
			nif := n.NIs[i]
			w.flitBuf = op.FlitOut.DrainAppend(now, w.flitBuf[:0])
			for _, ft := range w.flitBuf {
				nif.ReceiveEject(ft, now)
			}
		}
		// Outgoing credits to the upstream routers (single writer: only
		// the node across a port feeds that port's credit counters).
		for p := 0; p < mesh.NumPorts; p++ {
			d := mesh.Direction(p)
			ip := r.In(d)
			if ip.CreditOut.Empty() {
				continue
			}
			if d == mesh.Local {
				nif := n.NIs[i]
				w.credBuf = ip.CreditOut.DrainAppend(now, w.credBuf[:0])
				for _, c := range w.credBuf {
					nif.ReceiveCredit(c.VC)
				}
				continue
			}
			nb := n.nbr[i][d]
			if nb == mesh.Invalid {
				continue
			}
			up := n.Routers[nb]
			toward := d.Opposite()
			w.credBuf = ip.CreditOut.DrainAppend(now, w.credBuf[:0])
			for _, c := range w.credBuf {
				up.ReceiveCredit(toward, c.VC)
			}
		}
	}
	if w.rec != nil {
		w.marks[0] = w.rec.Mark()
	}
}

// secMain fuses the serial engine's phases 2-6 (plus the WU-want half
// of phase 7, or phase 8 for non-gating schemes) into one section: NI
// punch signalling and router punch emission (both deferred into op
// buffers; the fabric steps on the coordinator afterwards), output
// masking, router pipelines, NI injection, and the own-state want
// levels with their wanted-neighbour arms. Controllers, neighbour
// output pipes, and the punch fabric are all frozen for the whole
// section, so every cross-node read is race-free; nothing here reads
// fabric state, which is what lets the fabric step move after the
// section (see the file comment for the float-order argument).
func (w *parWorker) secMain(now int64) {
	n := w.eng.n
	for i := w.first(); i != -1; i = w.after(i) {
		n.NIs[i].StepSignals(now)
	}
	if n.Fabric != nil {
		for i := w.first(); i != -1; i = w.after(i) {
			n.Routers[i].EmitPunches(&w.sink)
		}
	}
	for i := w.first(); i != -1; i = w.after(i) {
		n.maskBlocked(n.Routers[i])
	}
	for i := w.first(); i != -1; i = w.after(i) {
		n.Routers[i].Step(now)
	}
	if w.rec != nil {
		w.marks[1] = w.rec.Mark()
	}
	for i := w.first(); i != -1; i = w.after(i) {
		n.NIs[i].StepInject(now)
	}
	if w.rec != nil {
		w.marks[2] = w.rec.Mark()
	}
	if w.eng.gates {
		w.secWants(now)
	} else {
		// No controllers to step: the static-power tick (phase 8) rides
		// along here. Nodes armed during this section are charged by
		// the coordinator's straggler pass instead.
		for i := w.first(); i != -1; i = w.after(i) {
			n.Acct.TickStatic(int(i), routerPowerState(n.Routers[i].Ctrl))
		}
	}
}

// secWants is the WU-level half of phase 7, fused into section B:
// compute each own router's want levels from its post-pipeline state
// and collect the wanted-neighbour arms the serial engine would apply
// inline.
func (w *parWorker) secWants(now int64) {
	n := w.eng.n
	early := n.pol.EarlyWakeup()
	sched := n.sched
	for i := w.first(); i != -1; i = w.after(i) {
		r := n.Routers[i]
		if early {
			r.WantsOutput(&n.wants[i])
		} else {
			r.WantsOutputAtSA(&n.wants[i], now)
		}
		if sched == nil || r.Empty() {
			continue
		}
		for _, d := range mesh.LinkDirections {
			if n.wants[i][d] {
				if nb := n.nbr[i][d]; nb != mesh.Invalid {
					w.arms = append(w.arms, nb)
				}
			}
		}
	}
}

// secCtrl is the rest of phase 7 plus phase 8, for gating schemes:
// wakeup levels (own NI + frozen neighbour wants), PG controller steps
// (neighbour pipes and the fabric's hold state are frozen), and the
// static-power tick. It reads no parked neighbour FSM state — wants
// are plain arrays and the quiescence inputs are structural — so the
// halo sync owes it nothing.
func (w *parWorker) secCtrl(now int64) {
	n := w.eng.n
	for i := w.first(); i != -1; i = w.after(i) {
		wu := n.NIs[i].WantsWakeup()
		if !wu {
			for _, d := range mesh.LinkDirections {
				nb := n.nbr[i][d]
				if nb == mesh.Invalid {
					continue
				}
				if n.wants[nb][d.Opposite()] {
					wu = true
					break
				}
			}
		}
		n.wakeups[i] = wu
	}
	for i := w.first(); i != -1; i = w.after(i) {
		r := n.Routers[i]
		empty := r.Empty() && n.incomingQuiet(r)
		hold := false
		if n.Fabric != nil {
			hold = n.Fabric.Hold(r.ID)
		}
		bhold := n.bypassOn && n.bypassHeld(int(i))
		if n.wakeups[i] && n.Acct.Enabled() {
			n.Acct.WakeupSignal(int(i))
		}
		r.Ctrl.Step(pg.Inputs{Empty: empty, Wakeup: n.wakeups[i], PunchHold: hold, BypassHold: bhold})
	}
	for i := w.first(); i != -1; i = w.after(i) {
		n.Acct.TickStatic(int(i), routerPowerState(n.Routers[i].Ctrl))
	}
	if w.rec != nil {
		w.marks[3] = w.rec.Mark()
	}
}

// homeActive counts the active-set bits in the node range [lo, hi).
func homeActive(set []uint64, lo, hi int32) int {
	wLo, wHi := int(lo)>>6, int(hi-1)>>6
	mLo := ^uint64(0) << (uint(lo) & 63)
	mHi := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if wLo == wHi {
		return bits.OnesCount64(set[wLo] & mLo & mHi)
	}
	c := bits.OnesCount64(set[wLo] & mLo)
	for i := wLo + 1; i < wHi; i++ {
		c += bits.OnesCount64(set[i])
	}
	return c + bits.OnesCount64(set[wHi]&mHi)
}

// markDirty flags home h as having work this cycle. The first marking
// also brings the home's lane-bus clock up to date, so any event its
// nodes emit later this cycle computes payloads from the same cycle
// the real bus holds.
func (e *parEngine) markDirty(h int, now int64) {
	if e.dirty[h] {
		return
	}
	e.dirty[h] = true
	if w := e.workers[h]; w.bus != nil {
		w.bus.SetNow(now)
	}
}

// regroupNow derives the execution grouping from the active set: one
// contiguous group of homes per ~grain active nodes (at most one per
// home), balanced greedily by per-home active counts. Homes with
// active nodes are marked dirty. An empty active set clears the
// grouping entirely (sections are skipped); a single group makes the
// coordinator run everything inline. The partition is a pure function
// of the active bitset, so the re-sharding points are deterministic —
// and since commits replay home-major regardless of grouping, the
// partition cannot affect results at all.
func (e *parEngine) regroupNow(now int64) {
	s := e.n.sched
	nw := len(e.workers)
	total := 0
	for h, w := range e.workers {
		c := homeActive(s.active, w.lo, w.hi)
		e.cnt[h] = c
		total += c
		if c > 0 {
			e.markDirty(h, now)
		}
	}
	e.groups = e.groups[:0]
	if total == 0 {
		return
	}
	k := (total + e.grain - 1) / e.grain
	if k > nw {
		k = nw
	}
	e.groups = append(e.groups, 0)
	acc, lastAcc := 0, 0
	for h := 0; h < nw-1 && len(e.groups) < k; h++ {
		acc += e.cnt[h]
		// Close the current group once it holds its proportional share,
		// but only after strict progress — interior groups never start
		// empty, so every group leader for g >= 1 is a goroutine-backed
		// home.
		if acc > lastAcc && acc*k >= len(e.groups)*total {
			e.groups = append(e.groups, int32(h+1))
			lastAcc = acc
		}
	}
	// A tail group with no active nodes would dispatch a worker for
	// nothing; fold it into its predecessor.
	if lastAcc == total && len(e.groups) > 1 {
		e.groups = e.groups[:len(e.groups)-1]
	}
}

// maybeRegroup re-partitions if an arming flush changed the active set
// since the last grouping.
func (e *parEngine) maybeRegroup(now int64) {
	if e.regroup {
		e.regroup = false
		e.regroupNow(now)
	}
}

// syncNeighbors catches up the parked 1-hop neighbours of node i (and
// the 2-hop through-path neighbours when a bypass scheme is on)
// through the previous cycle. This is the complete set of parked-FSM
// state the sections read on node i's behalf: maskBlocked's
// PGAsserted and the bypass admission/suppression controller reads.
// Members of the active set are already synced (endCycle marked them),
// and a catchUp on a synced node is a read-only early return — which
// is exactly what makes the identical calls inside the sections
// race-free.
func (e *parEngine) syncNeighbors(i int32, now int64) {
	n := e.n
	s := n.sched
	for _, d := range mesh.LinkDirections {
		nb := n.nbr[i][d]
		if nb == mesh.Invalid {
			continue
		}
		if !s.inSet[nb] {
			s.catchUp(int32(nb), now-1)
		}
		if n.bypassOn {
			if a := n.nbr[nb][d]; a != mesh.Invalid && !s.inSet[a] {
				s.catchUp(int32(a), now-1)
			}
		}
	}
}

// syncHalo catches up the halo of the whole active set (see
// syncNeighbors). Replaces the old engine's eager whole-network
// syncAll: cost scales with the active set, not the node count.
func (e *parEngine) syncHalo(now int64) {
	s := e.n.sched
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		e.syncNeighbors(i, now)
	}
}

// prepFlush is the parallel engine's arming flush: mark the pending
// nodes' homes dirty, sync their halos, move them into the active set,
// and request a re-partition before the next section.
func (e *parEngine) prepFlush(now int64) {
	s := e.n.sched
	if len(s.pending) == 0 {
		return
	}
	for _, i := range s.pending {
		e.markDirty(int(e.ownerOf[i]), now)
		e.syncNeighbors(i, now)
	}
	s.flush(now)
	e.regroup = true
}

// stragglerStatic charges the phase-8 static tick for nodes armed
// during section B (forward hooks), which joined too late for the
// fused tick — non-gating schemes only, where no section C runs. The
// flush's catch-up-then-tick per node is exactly the serial order, and
// cross-node order is free (per-node accumulators).
func (e *parEngine) stragglerStatic(now int64) {
	n := e.n
	s := n.sched
	if len(s.pending) == 0 {
		return
	}
	e.stragglers = append(e.stragglers[:0], s.pending...)
	s.flush(now)
	for _, i := range e.stragglers {
		n.Acct.TickStatic(int(i), routerPowerState(n.Routers[i].Ctrl))
	}
}

// replayCut re-emits the events of one recorder cut onto the real bus,
// home-major — the serial engines' ascending-node order, since homes
// are contiguous. Clean homes are skipped (their recorders are empty
// and their marks zero). Emit restamps the cycle (the lane clocks are
// kept in step anyway, because emitters derive event payloads from
// bus.Now()).
func (e *parEngine) replayCut(cut int) {
	if e.realBus == nil {
		return
	}
	for h, w := range e.workers {
		if !e.dirty[h] {
			continue
		}
		lo := 0
		if cut > 0 {
			lo = w.marks[cut-1]
		}
		events := w.rec.Slice(lo, w.marks[cut])
		for i := range events {
			e.realBus.Emit(events[i])
		}
	}
}

// replayBypassForwards relays the deferred bypass-tagged flits across
// their flown-over routers (see forwardBypass), home-major on the
// coordinator after the section A rendezvous. Pushes target the next
// cycle and stream-counter releases are first read in phase 7, so the
// replay point is behaviourally identical to the serial engines'
// inline forward during phase 1.
func (e *parEngine) replayBypassForwards(now int64) {
	n := e.n
	for _, w := range e.workers {
		for j := range w.bypFwd {
			bf := &w.bypFwd[j]
			n.Routers[bf.via].Out(bf.dir).FlitOut.Push(
				router.FlitInTransit{Flit: bf.ft.Flit, VC: bf.ft.VC}, now)
			if bf.ft.Flit.Type.IsTail() {
				n.Routers[bf.from].BypassStreamRelease(bf.dir)
			}
			*bf = bypassFwd{}
		}
		w.bypFwd = w.bypFwd[:0]
	}
}

// replayDelivers runs the buffered NI Deliver callbacks in ascending
// node order, on the coordinator — protocol handlers observe the exact
// serial call order, and their submissions (NewPacket, Submit) run in
// the single-threaded context they expect.
func (e *parEngine) replayDelivers() {
	for _, w := range e.workers {
		for j := range w.delivs {
			d := &w.delivs[j]
			d.nif.Deliver(d.p, d.at)
			*d = deferredDeliver{}
		}
		w.delivs = w.delivs[:0]
	}
}

// replayPunchOps applies the deferred punch-fabric calls to the real
// fabric: all NI signal ops (phase 2), then all router emissions
// (phase 3), each home-major. Order matters — per-node pending lists,
// strict-port arbitration, and event emission all follow call order.
func (e *parEngine) replayPunchOps() {
	fab := e.n.Fabric
	for _, w := range e.workers {
		for _, op := range w.sigOps {
			if op.kind == opEmitLocal {
				fab.EmitLocal(op.a, op.b)
			} else {
				fab.HoldLocal(op.a)
			}
		}
		w.sigOps = w.sigOps[:0]
	}
	for _, w := range e.workers {
		for _, op := range w.emitOps {
			fab.EmitSource(op.a, op.b)
		}
		w.emitOps = w.emitOps[:0]
	}
}

// replayArms feeds the buffered activation attempts through the
// scheduler, home-major. Every attempt is replayed (no dedup in the
// buffers) so the inSet guard runs exactly as it would have inline.
func (e *parEngine) replayArms(s *scheduler) {
	for _, w := range e.workers {
		for _, id := range w.arms {
			s.activate(int32(id), true)
		}
		w.arms = w.arms[:0]
	}
}

// drainFlitReturns returns every deferred ejected flit to the pool of
// the home owning its source node, in fixed (target, source) order,
// keeping pool contents deterministic. Clean source homes ejected
// nothing this cycle, so their queues are provably empty.
func (e *parEngine) drainFlitReturns() {
	if e.workers[0].pool == nil {
		return
	}
	for tw, wt := range e.workers {
		for sw, ws := range e.workers {
			if !e.dirty[sw] {
				continue
			}
			q := ws.flitRet[tw]
			for j, f := range q {
				wt.pool.PutFlit(f)
				q[j] = nil
			}
			ws.flitRet[tw] = q[:0]
		}
	}
}

// step advances the network one cycle on the parallel engine. The
// structure mirrors stepActive/stepFull phase for phase; see the file
// comment for the section fusion and rendezvous rationale.
func (e *parEngine) step() {
	n := e.n
	now := n.now
	s := n.sched
	if n.bus != nil {
		n.bus.SetNow(now)
	}

	// Per-cycle housekeeping: propagate the sample-keeping flag to the
	// lanes when it changes, reset last cycle's dirty recorders (clean
	// homes provably have empty recorders and zero marks, so the replay
	// cuts can always slice them safely), then flush, halo-sync, and
	// group for the cycle.
	keep := n.Col.KeepingSamples()
	if keep != e.lastKeep {
		e.lastKeep = keep
		for _, w := range e.workers {
			w.col.KeepSamples(keep)
		}
	}
	if s == nil {
		for _, w := range e.workers {
			if w.rec != nil {
				w.rec.Reset()
				w.marks = [4]int{}
				// Lane clocks track the real bus: emitters compute event
				// payloads from bus.Now() (e.g. the KindPGGate
				// active-period length), so lanes must read the same cycle
				// the real bus does. Event cycle stamps would be correct
				// either way — replay restamps them — but payloads are
				// recorded verbatim.
				w.bus.SetNow(now)
			}
		}
	} else {
		for h, w := range e.workers {
			if e.dirty[h] {
				e.dirty[h] = false
				if w.rec != nil {
					w.rec.Reset()
				}
				w.marks = [4]int{}
			}
		}
		e.prepFlush(now)
		e.syncHalo(now)
		e.regroupNow(now)
		e.regroup = false
	}

	// Section A — phase 1: pull-deliver, credits, ejection.
	e.inSection = true
	e.runSection(secDeliver, now)
	e.inSection = false
	if n.bypassOn {
		e.replayBypassForwards(now)
	}
	e.replayCut(0)
	e.replayDelivers()
	if s != nil {
		e.prepFlush(now)
		e.maybeRegroup(now)
	}

	// Section B — phases 2-6 (+ want levels or non-gating static).
	e.inSection = true
	e.runSection(secMain, now)
	e.inSection = false

	// Phase 3's fabric half, on the real fabric in serial order. B
	// generated this cycle's ops but read no fabric state, and the
	// holds the step produces are first read in section C — so the
	// fabric floats here without reordering any per-router, per-field
	// accumulation (see the file comment).
	if n.Fabric != nil {
		e.replayPunchOps()
		if s == nil {
			n.Fabric.Step()
		} else if n.Fabric.NeedsStep() {
			n.Fabric.Step()
			for _, id := range n.Fabric.Held() {
				s.activate(int32(id), true)
			}
		}
	}
	e.replayCut(1)
	e.replayCut(2)
	if s != nil {
		e.replayArms(s)
	}

	// Section C — phases 7-8 (gating schemes); non-gating schemes only
	// owe the stragglers their static tick.
	if e.gates {
		if s != nil {
			e.prepFlush(now)
			e.maybeRegroup(now)
		}
		e.inSection = true
		e.runSection(secCtrl, now)
		e.inSection = false
		e.replayCut(3)
	} else if s != nil {
		e.stragglerStatic(now)
	}

	n.Acct.TickCycle()
	for h, w := range e.workers {
		if e.dirty[h] {
			n.Col.Merge(w.col)
		}
	}
	e.drainFlitReturns()

	// Phase 9: invariant checks, serial on the coordinator. The engine
	// reads every node's counters, so the whole network is synced first
	// (checked runs trade the halo economy for coverage).
	if n.Checker != nil {
		if s != nil {
			s.syncAll(now)
		}
		if v := n.Checker.EndCycle(now); v != nil {
			n.reportViolation(v)
		}
	}

	if s != nil {
		s.endCycle(now)
	}
	// Fold the counter lanes after the checker's syncAll (whose
	// catch-up charges land in lanes) so end-of-cycle readers — the
	// sampler on bus EndCycle, post-run reports — see folded counts.
	n.Acct.FoldLanes()
	if n.bus != nil {
		n.bus.EndCycle()
	}
	n.now = now + 1
}
