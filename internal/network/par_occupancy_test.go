package network

import (
	"fmt"
	"math/rand"
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
)

// These tests pin the occupancy-aware grouping of the parallel engine
// (par.go regroupNow and friends) at its edge cases: an all-asleep
// fabric must cost zero worker wakeups, a lone active router must run
// inline on the coordinator, re-grouping across home boundaries must
// not perturb results, and — metamorphically — no (workers, grain)
// choice may ever change what the simulation computes.

// occupancyFingerprint drains the network and folds every observable
// the golden differential cares about into one comparable string:
// utilization report, final cycle, and the accounted energy floats.
func occupancyFingerprint(t *testing.T, n *Network) string {
	t.Helper()
	for i := 0; i < 20_000 && !n.Quiesced(); i++ {
		n.Step()
	}
	if !n.Quiesced() {
		t.Fatal("network did not quiesce")
	}
	pow := n.Acct.Network()
	return fmt.Sprintf("%s|cyc=%d|E=%.15e/%.15e/%.15e",
		n.Report().String(), n.Now(), pow.Dynamic, pow.Static, pow.Overhead)
}

// newOccupancyNet builds an 8x8 PowerPunch-PG network with accounting
// enabled and, when parallel, the engine's grouping grain overridden.
func newOccupancyNet(t *testing.T, workers, grain int) *Network {
	t.Helper()
	cfg := config.Default()
	cfg.Scheme = config.PowerPunchPG
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	cfg.Workers = workers
	n := mustNew(t, cfg)
	if n.par != nil && grain > 0 {
		n.par.grain = grain
	}
	n.SetAccounting(true)
	return n
}

// TestParOccupancyAllAsleep pins the zero-work contract: once every
// router has parked, each cycle's sections all see an empty active set
// and are skipped outright — no group is dispatched to a worker
// goroutine and nothing runs inline either.
func TestParOccupancyAllAsleep(t *testing.T) {
	n := newOccupancyNet(t, 4, 0)
	defer n.Close()
	e := n.par
	// A fresh gated network parks in a handful of cycles.
	stepUntilSetEmpty(t, n, 100)
	skip, inline, dispatch := e.nSkip, e.nInline, e.nDispatch
	const quiet = 50
	for i := 0; i < quiet; i++ {
		n.Step()
	}
	// Every section of every quiet cycle must have been skipped: A and
	// B always run, C runs because PowerPunch-PG gates, so three
	// skipped sections per cycle.
	if got, want := e.nSkip-skip, int64(3*quiet); got != want {
		t.Errorf("asleep fabric skipped %d sections over %d cycles, want %d", got, quiet, want)
	}
	if e.nInline != inline || e.nDispatch != dispatch {
		t.Errorf("asleep fabric ran sections: inline +%d, dispatched +%d (want 0/0)",
			e.nInline-inline, e.nDispatch-dispatch)
	}
}

// TestParOccupancySingleActive pins the inline path: one packet
// between neighbors wakes a handful of routers — far under the
// grouping grain — so every section runs inline on the coordinator
// and no worker goroutine is ever woken.
func TestParOccupancySingleActive(t *testing.T) {
	n := newOccupancyNet(t, 4, 0)
	defer n.Close()
	e := n.par
	stepUntilSetEmpty(t, n, 100)
	dispatch := e.nDispatch
	inline := e.nInline
	p := n.NewPacket(0, 1, flit.VNRequest, flit.KindData)
	n.NI(0).Submit(p, true, n.Now())
	for i := 0; p.EjectedAt == 0; i++ {
		if i > 2000 {
			t.Fatal("packet not delivered")
		}
		n.Step()
	}
	stepUntilSetEmpty(t, n, 200)
	if e.nInline == inline {
		t.Error("single-active delivery never ran a section inline")
	}
	if e.nDispatch != dispatch {
		t.Errorf("single-active delivery dispatched %d sections to workers (grain %d should keep it inline)",
			e.nDispatch-dispatch, e.grain)
	}
}

// TestParRegroupStraddlesHomeBoundary drives traffic whose active set
// repeatedly grows and shrinks across the fixed home boundaries (16
// nodes per home at 4 workers on the 8x8 mesh) with the grain forced
// to 1, so every cycle re-partitions the active homes into maximal
// group counts and successive cycles see group boundaries move across
// a home that stays active. The result must match the serial engine
// exactly, and the shape must actually have exercised multi-group
// dispatch.
func TestParRegroupStraddlesHomeBoundary(t *testing.T) {
	// Packet waves bouncing across the three home boundaries
	// (15|16, 31|32, 47|48), staggered so activity straddles a
	// different boundary as earlier waves drain.
	drive := func(n *Network, cyc int64) {
		if cyc%40 != 0 || cyc >= 400 {
			return
		}
		wave := (cyc / 40) % 3
		lo := mesh.NodeID(15 + 16*wave)
		p := n.NewPacket(lo, lo+1, flit.VNRequest, flit.KindData)
		n.NI(lo).Submit(p, true, n.Now())
		q := n.NewPacket(lo+1, lo, flit.VNResponse, flit.KindData)
		n.NI(lo + 1).Submit(q, true, n.Now())
	}
	run := func(workers, grain int) (string, int64) {
		n := newOccupancyNet(t, workers, grain)
		defer n.Close()
		for cyc := int64(0); cyc < 440; cyc++ {
			drive(n, cyc)
			n.Step()
		}
		var dispatched int64
		if n.par != nil {
			dispatched = n.par.nDispatch
		}
		return occupancyFingerprint(t, n), dispatched
	}
	want, _ := run(0, 0)
	got, dispatched := run(4, 1)
	if got != want {
		t.Errorf("straddling re-group diverged from serial:\n got %s\nwant %s", got, want)
	}
	if dispatched == 0 {
		t.Error("grain=1 boundary waves never dispatched a multi-group section")
	}
}

// TestParMetamorphicGrainInvariance is the metamorphic property: the
// grouping grain and the worker count select an execution schedule,
// never a result. At a sparse load and at a load heavy enough to keep
// most of the fabric awake, every (workers, grain) combination must
// produce the identical fingerprint as the serial engine.
func TestParMetamorphicGrainInvariance(t *testing.T) {
	for _, rate := range []float64{0.01, 0.20} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%.2f", rate), func(t *testing.T) {
			run := func(workers, grain int) string {
				n := newOccupancyNet(t, workers, grain)
				defer n.Close()
				d := &randomDriver{rng: rand.New(rand.NewSource(23)), rate: rate, until: 300}
				for cyc := 0; cyc < 300; cyc++ {
					d.Tick(n, n.Now())
					n.Step()
				}
				return occupancyFingerprint(t, n)
			}
			want := run(0, 0)
			for _, workers := range []int{2, 4, 8} {
				for _, grain := range []int{1, 4, 32} {
					if got := run(workers, grain); got != want {
						t.Errorf("workers=%d grain=%d diverged from serial:\n got %s\nwant %s",
							workers, grain, got, want)
					}
				}
			}
		})
	}
}
