package network

import (
	"fmt"
	"sort"
	"strings"

	"powerpunch/internal/mesh"
)

// RouterReport is one router's activity summary over a run.
type RouterReport struct {
	ID             mesh.NodeID
	FlitsForwarded int64
	PGStallCycles  int64
	GatingEvents   int64
	GatedCycles    int64
	ShortGatings   int64
	WakeupsPunch   int64
	WakeupsWU      int64
}

// UtilizationReport aggregates per-router activity, the raw material of
// the heatmap experiment and of load-balance debugging.
type UtilizationReport struct {
	Cycles  int64
	Routers []RouterReport
}

// Report snapshots per-router statistics. Parked nodes are synced first
// so their deferred gated-cycle counts are exact.
func (n *Network) Report() *UtilizationReport {
	if n.sched != nil {
		n.sched.syncAll(n.now - 1)
	}
	rep := &UtilizationReport{Cycles: n.now}
	for _, r := range n.Routers {
		cs := r.Ctrl.Stats()
		rep.Routers = append(rep.Routers, RouterReport{
			ID:             r.ID,
			FlitsForwarded: r.FlitsForwarded,
			PGStallCycles:  r.PGStallCycles,
			GatingEvents:   cs.GatingEvents,
			GatedCycles:    cs.GatedCycles,
			ShortGatings:   cs.ShortGatings,
			WakeupsPunch:   cs.WakeupsPunch,
			WakeupsWU:      cs.WakeupsWU,
		})
	}
	return rep
}

// Totals sums the per-router rows.
func (u *UtilizationReport) Totals() RouterReport {
	var t RouterReport
	t.ID = mesh.Invalid
	for _, r := range u.Routers {
		t.FlitsForwarded += r.FlitsForwarded
		t.PGStallCycles += r.PGStallCycles
		t.GatingEvents += r.GatingEvents
		t.GatedCycles += r.GatedCycles
		t.ShortGatings += r.ShortGatings
		t.WakeupsPunch += r.WakeupsPunch
		t.WakeupsWU += r.WakeupsWU
	}
	return t
}

// GatedFraction returns router id's gated-time share of the run.
func (u *UtilizationReport) GatedFraction(id mesh.NodeID) float64 {
	if u.Cycles == 0 {
		return 0
	}
	return float64(u.Routers[id].GatedCycles) / float64(u.Cycles)
}

// Hottest returns the k routers with the most forwarded flits,
// descending.
func (u *UtilizationReport) Hottest(k int) []RouterReport {
	rs := make([]RouterReport, len(u.Routers))
	copy(rs, u.Routers)
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].FlitsForwarded != rs[j].FlitsForwarded {
			return rs[i].FlitsForwarded > rs[j].FlitsForwarded
		}
		return rs[i].ID < rs[j].ID
	})
	if k > len(rs) {
		k = len(rs)
	}
	return rs[:k]
}

// String renders a compact summary: totals plus the five busiest
// routers.
func (u *UtilizationReport) String() string {
	var b strings.Builder
	t := u.Totals()
	n := int64(len(u.Routers))
	fmt.Fprintf(&b, "utilization over %d cycles, %d routers:\n", u.Cycles, n)
	fmt.Fprintf(&b, "  flits forwarded: %d (%.4f/router/cycle)\n",
		t.FlitsForwarded, safeDiv(t.FlitsForwarded, n*u.Cycles))
	fmt.Fprintf(&b, "  gated router-cycles: %d (%.1f%%), %d gating events (%d short)\n",
		t.GatedCycles, 100*safeDiv(t.GatedCycles, n*u.Cycles), t.GatingEvents, t.ShortGatings)
	fmt.Fprintf(&b, "  PG stall cycles: %d; wakeups: %d punch, %d WU\n",
		t.PGStallCycles, t.WakeupsPunch, t.WakeupsWU)
	b.WriteString("  busiest routers:")
	for _, r := range u.Hottest(5) {
		fmt.Fprintf(&b, " R%d(%d)", r.ID, r.FlitsForwarded)
	}
	b.WriteByte('\n')
	return b.String()
}

func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
