package network

import (
	"math/rand"
	"strings"
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/mesh"
)

func TestUtilizationReport(t *testing.T) {
	cfg := testConfig(config.PowerPunchPG)
	cfg.Width, cfg.Height = 4, 4
	n := mustNew(t, cfg)
	d := &randomDriver{rng: rand.New(rand.NewSource(21)), rate: 0.03, until: 1500}
	for i := 0; i < 1500; i++ {
		d.Tick(n, n.Now())
		n.Step()
	}
	for i := 0; i < 3000 && !n.Quiesced(); i++ {
		n.Step()
	}
	rep := n.Report()
	if len(rep.Routers) != 16 {
		t.Fatalf("routers = %d", len(rep.Routers))
	}
	tot := rep.Totals()
	if tot.FlitsForwarded == 0 {
		t.Error("no forwarded flits recorded")
	}
	if tot.GatingEvents == 0 {
		t.Error("no gating events under a PG scheme")
	}
	hot := rep.Hottest(3)
	if len(hot) != 3 || hot[0].FlitsForwarded < hot[2].FlitsForwarded {
		t.Errorf("Hottest ordering: %+v", hot)
	}
	if f := rep.GatedFraction(mesh.NodeID(0)); f < 0 || f > 1 {
		t.Errorf("gated fraction %v", f)
	}
	if s := rep.String(); !strings.Contains(s, "utilization") || !strings.Contains(s, "busiest") {
		t.Errorf("report rendering: %q", s)
	}
}

func TestReportOnIdleNetwork(t *testing.T) {
	cfg := testConfig(config.NoPG)
	n := mustNew(t, cfg)
	for i := 0; i < 50; i++ {
		n.Step()
	}
	rep := n.Report()
	if tot := rep.Totals(); tot.FlitsForwarded != 0 || tot.GatingEvents != 0 {
		t.Errorf("idle No-PG totals: %+v", tot)
	}
	if rep.String() == "" {
		t.Error("empty report")
	}
}
