package network

import (
	"math/bits"

	"powerpunch/internal/mesh"
	"powerpunch/internal/pg"
)

// scheduler is the active-set tick scheduler: the network's answer to the
// paper's own observation that most routers are idle most of the time.
// Instead of walking all N nodes every cycle, Step iterates only the
// nodes that can change state this cycle — a node is a router together
// with its NI. A node leaves the set when it is provably quiescent
// (nothing buffered, nothing in flight in or out, NI idle, controller
// parked) and re-enters when a wakeup source touches it: a local
// injection, a flit pushed toward it, a punch hold naming it, or a
// neighbour's WU level wanting it awake.
//
// The set is a bitset over node IDs: iteration walks set bits in
// ascending order (the full-walk iteration order) with no sorting, and
// arming or retiring a node is a single bit operation. Mid-cycle
// activations go through a pending list first and join the set only at
// the explicit flush points in stepActive, so a phase never observes a
// node armed while that phase was already iterating.
//
// Quiescence does not require the PG controller to have finished its
// own idle journey: with an empty datapath and no wakeup or punch level
// — and every source of those levels re-arms the node before the level
// is readable — the gating FSM's inputs are pinned to (Empty, no WU, no
// punch), under which Active counts idle, Draining counts down, Waking
// counts Twakeup, and Gated is a fixed point. That evolution is
// deterministic, so the scheduler retires the node immediately and
// replays the controller cycle by cycle in catch-up when something next
// observes or re-arms it. This is what makes the set small at low load:
// a router leaves the set the first cycle it goes quiet, not Twakeup +
// timeout cycles later.
//
// Skipped nodes are therefore never unaccounted: catch-up replays the
// identical per-cycle operations — controller Step with idle inputs,
// then the static-power tick, including per-cycle floating-point adds —
// so active-set runs are bit-identical to Config.FullTick full-walk
// runs; the golden-metrics tests assert it. Once the replayed FSM
// parks (disabled or Gated, both fixed points), the remaining cycles
// collapse into the batched AdvanceIdleGated fast path.
type scheduler struct {
	n *Network

	inSet   []bool   // per node: in the set or pending (activation guard)
	active  []uint64 // bitset over node IDs: the current active set
	pending []int32  // armed since the last flush, not yet in active

	// syncedTo[i] is the last cycle whose parked-node charges (gated
	// controller tick, static power tick) have been applied to node i.
	// Live-stepped nodes are charged in the cycle loop itself and marked
	// synced at end of cycle.
	syncedTo []int64

	// nodeSteps[i] counts the cycles node i spent in the active set
	// (instrumentation for the edge-case tests).
	nodeSteps []int64

	// dropRearms implements config.Faults.DropRearms: droppable re-arm
	// events (pushes, punch holds, WU wants) are discarded, proving the
	// invariant engine catches a lost-wakeup scheduler bug. Local
	// injections are never droppable — work must enter for the bug to be
	// observable.
	dropRearms    bool
	droppedRearms int64
}

func newScheduler(n *Network) *scheduler {
	nNodes := n.M.NumNodes()
	s := &scheduler{
		n:         n,
		inSet:     make([]bool, nNodes),
		active:    make([]uint64, (nNodes+63)/64),
		pending:   make([]int32, 0, nNodes),
		syncedTo:  make([]int64, nNodes),
		nodeSteps: make([]int64, nNodes),
	}
	// Every node starts active: PG controllers begin in Active and must
	// step to count idle cycles toward the gating decision; quiescent
	// nodes fall out of the set on their own.
	for i := 0; i < nNodes; i++ {
		s.inSet[i] = true
		s.active[i>>6] |= 1 << (i & 63)
		s.syncedTo[i] = -1
	}
	return s
}

// next returns the smallest active node ID >= from, or -1. Ascending
// bit order is the full-walk iteration order; every phase loops
// `for i := s.next(0); i != -1; i = s.next(i + 1)`.
func (s *scheduler) next(from int32) int32 {
	w := int(from) >> 6
	if w >= len(s.active) {
		return -1
	}
	word := s.active[w] &^ (1<<(from&63) - 1)
	for {
		if word != 0 {
			return int32(w<<6 + bits.TrailingZeros64(word))
		}
		w++
		if w >= len(s.active) {
			return -1
		}
		word = s.active[w]
	}
}

// activate arms node i. droppable marks re-arm events the DropRearms
// fault may discard; injections of new work pass false.
func (s *scheduler) activate(i int32, droppable bool) {
	if s.inSet[i] {
		return
	}
	if droppable && s.dropRearms {
		s.droppedRearms++
		return
	}
	s.inSet[i] = true
	s.pending = append(s.pending, i)
}

// activateNode is the router forward-hook shape of activate.
func (s *scheduler) activateNode(id mesh.NodeID) { s.activate(int32(id), true) }

// flush moves pending activations into the active set, first catching
// each node's parked charges up through the previous cycle (the current
// cycle is charged live by the phases the node now participates in).
func (s *scheduler) flush(now int64) {
	if len(s.pending) == 0 {
		return
	}
	for _, i := range s.pending {
		s.catchUp(i, now-1)
		s.active[i>>6] |= 1 << (i & 63)
	}
	s.pending = s.pending[:0]
}

// catchUp applies node i's skipped per-cycle charges for every cycle in
// (syncedTo, through]: the controller's idle-input Step and the power
// accountant's static tick, in the live phase order (controller first,
// then static power at the post-step state) — exactly what the full
// walk would have done. The replay runs cycle by cycle only while the
// FSM is still evolving (Active/Draining counting idle, Waking counting
// down, a throttled controller draining its back-off window); once it
// parks — disabled or Gated, both fixed points — the rest of the window
// collapses into one batched AdvanceIdleGated + TickStaticN call whose
// result is bit-identical to the per-cycle loop. Safe only while the
// node is quiescent: its idle inputs are guaranteed because every
// wakeup source (flit push, punch hold, WU want, injection) re-arms the
// node before the level becomes readable.
func (s *scheduler) catchUp(i int32, through int64) {
	if through <= s.syncedTo[i] {
		return
	}
	d := through - s.syncedTo[i]
	c := s.n.Routers[i].Ctrl
	for d > 0 && !c.Parked() {
		c.Step(pg.Inputs{Empty: true})
		s.n.Acct.TickStatic(int(i), routerPowerState(c))
		d--
	}
	if d > 0 {
		c.AdvanceIdleGated(d)
		s.n.Acct.TickStaticN(int(i), routerPowerState(c), d)
	}
	s.syncedTo[i] = through
}

// syncAll catches every parked node up through the given cycle. Called
// before anything reads controller or accountant counters (the invariant
// engine every cycle, SetAccounting at window boundaries, reports), and
// with the old accounting flag still in force at boundaries.
func (s *scheduler) syncAll(through int64) {
	for _, i := range s.pending {
		s.catchUp(i, through)
	}
	for i := range s.inSet {
		if !s.inSet[i] {
			s.catchUp(int32(i), through)
		}
	}
}

// quiescent reports whether node i can leave the active set: no flit
// buffered, NI holding no work, nothing in flight in its outgoing flit
// and credit pipes, and no flit in flight toward it. The PG controller's
// state is deliberately NOT consulted: an idle-counting, draining,
// waking, or gated FSM all evolve deterministically under the idle
// inputs a quiescent datapath pins (catchUp replays them), and every
// event that would change those inputs — flit push, punch hold, WU
// want, local injection — re-arms the node before the controller could
// observe it. A quiescent node's skipped cycles are therefore exact
// replays of what the full walk would have computed.
// Nodes pinned by a level signal — a punch hold or a neighbour's WU
// want — are kept in the set even when structurally idle: the level's
// source would re-arm them next cycle anyway, so retiring them would
// only churn the pending list, and their controllers' inputs are not
// the idle ones catch-up replays.
func (s *scheduler) quiescent(i int32) bool {
	n := s.n
	r := n.Routers[i]
	if !r.Empty() || n.NIs[i].Busy() {
		return false
	}
	if n.bus != nil && !r.Ctrl.Parked() {
		// An observability bus is attached: keep the node live until its
		// controller reaches a fixed point, so every gate/wake/active
		// transition is emitted at its true cycle instead of being
		// replayed silently inside catch-up. Live stepping computes
		// bit-identical state to catch-up; only event timing needs this.
		return false
	}
	if n.Fabric != nil && n.Fabric.Hold(mesh.NodeID(i)) {
		return false
	}
	if n.bypassOn && n.bypassHeld(int(i)) {
		// A neighbor streams bypass flits over this router: its held
		// wake (BypassHold) is not the idle input catch-up replays, so
		// it must be stepped live until the stream's tail clears.
		return false
	}
	for _, d := range mesh.LinkDirections {
		if nb := n.nbr[i][d]; nb != mesh.Invalid && n.wants[nb][d.Opposite()] {
			return false
		}
	}
	for p := 0; p < mesh.NumPorts; p++ {
		d := mesh.Direction(p)
		if !r.Out(d).FlitOut.Empty() || !r.In(d).CreditOut.Empty() {
			return false
		}
	}
	return n.incomingQuiet(r)
}

// endCycle retires quiescent nodes from the active set and marks the
// cycle's charges applied for the nodes that stayed live. Retired nodes
// clear their WU wants (a parked node is empty, so the full walk would
// compute all-false wants for it).
func (s *scheduler) endCycle(now int64) {
	for i := s.next(0); i != -1; i = s.next(i + 1) {
		s.nodeSteps[i]++
		s.syncedTo[i] = now
		if s.quiescent(i) {
			s.inSet[i] = false
			s.active[i>>6] &^= 1 << (i & 63)
			s.n.wants[i] = [mesh.NumPorts]bool{}
		}
	}
}

// empty reports whether the active set and the pending list hold nothing.
func (s *scheduler) empty() bool {
	if len(s.pending) > 0 {
		return false
	}
	for _, w := range s.active {
		if w != 0 {
			return false
		}
	}
	return true
}

// NodeSteps returns the number of cycles node id spent in the active set
// (under FullTick every node steps every cycle, so Now() is returned).
func (n *Network) NodeSteps(id mesh.NodeID) int64 {
	if n.sched == nil {
		return n.now
	}
	return n.sched.nodeSteps[id]
}

// ActiveNodes returns a snapshot of the active set (armed-but-pending
// nodes included) in ascending order; nil under FullTick, where the
// concept does not apply.
func (n *Network) ActiveNodes() []mesh.NodeID {
	if n.sched == nil {
		return nil
	}
	s := n.sched
	out := make([]mesh.NodeID, 0, 16)
	for i := range s.inSet {
		if s.inSet[i] {
			out = append(out, mesh.NodeID(i))
		}
	}
	return out
}

// DroppedRearms returns the number of re-arm events discarded by the
// DropRearms fault.
func (n *Network) DroppedRearms() int64 {
	if n.sched == nil {
		return 0
	}
	return n.sched.droppedRearms
}
