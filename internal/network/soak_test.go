package network

import (
	"math/rand"
	"testing"

	"powerpunch/internal/check"
	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/obs"
)

// TestSoakLongRun exercises 60k cycles of mixed traffic on an 8x8 mesh
// under PowerPunch-PG with periodic invariant checks — the long-run
// stability test. Skipped under -short.
func TestSoakLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := config.Default()
	cfg.Scheme = config.PowerPunchPG
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 40
	n := mustNew(t, cfg)
	d := &randomDriver{rng: rand.New(rand.NewSource(99)), rate: 0.012, until: 60_000}
	for cyc := 0; cyc < 60_000; cyc++ {
		d.Tick(n, n.Now())
		n.Step()
		if cyc%512 == 0 {
			n.CheckInvariants()
		}
	}
	for cyc := 0; cyc < 20_000 && !n.Quiesced(); cyc++ {
		n.Step()
	}
	if !n.Quiesced() {
		t.Fatal("soak run did not quiesce")
	}
	n.CheckInvariants()
	for _, p := range d.pkts {
		if p.EjectedAt == 0 {
			t.Fatalf("soak lost packet %v", p)
		}
	}
}

// TestSoakParallel is the parallel-engine soak (Makefile `soak-par`,
// run under the race detector in CI): every scheme on every fabric on
// the sharded engine with the invariant engine sweeping every cycle,
// then a longer recycled high-load leg at eight workers. The golden
// differential suite proves the engine bit-identical; this soak's job
// is liveness and data-race coverage — section bodies, barrier
// handoffs, replay buffers, and the per-worker pools all run under
// -race with checks observing every NI.
func TestSoakParallel(t *testing.T) {
	fabrics := []struct {
		topo          string
		width, height int
	}{
		{"mesh", 8, 8},
		{"torus", 4, 4},
		{"ring", 8, 1},
	}
	for _, fab := range fabrics {
		for _, s := range config.AllSchemes {
			fab, s := fab, s
			t.Run(fab.topo+"/"+s.String(), func(t *testing.T) {
				t.Parallel()
				cfg := config.Default()
				cfg.Scheme = s
				cfg.Topology = fab.topo
				cfg.Width, cfg.Height = fab.width, fab.height
				cfg.WarmupCycles = 0
				cfg.MeasureCycles = 1 << 40
				cfg.Checks = true
				cfg.CheckInterval = 1
				cfg.Workers = 4
				n := mustNew(t, cfg)
				defer n.Close()
				violated := false
				n.OnViolation = func(a *check.Artifact) {
					violated = true
					t.Errorf("%v/%v: %v", fab.topo, s, &a.Violation)
				}
				d := &randomDriver{rng: rand.New(rand.NewSource(99)), rate: 0.012, until: 4_000}
				for cyc := 0; cyc < 4_000 && !violated; cyc++ {
					d.Tick(n, n.Now())
					n.Step()
				}
				for cyc := 0; cyc < 20_000 && !n.Quiesced(); cyc++ {
					n.Step()
				}
				if !n.Quiesced() {
					t.Fatal("parallel checked soak did not quiesce")
				}
				for _, p := range d.pkts {
					if p.EjectedAt == 0 {
						t.Fatalf("parallel soak lost packet %v", p)
					}
				}
			})
		}
	}

	// Large-fabric legs (bounded cycles so the -race CI job stays
	// tractable). The occupancy-aware grouping is the engine's whole
	// point at scale — a sparse active set on a big fabric regroups
	// every cycle, so these legs race-soak the regroup/dirty-home/halo
	// machinery in exactly the regime the 8x8 legs cannot reach.
	t.Run("32x32-checked", func(t *testing.T) {
		t.Parallel()
		cfg := config.Default()
		cfg.Scheme = config.PowerPunchPG
		cfg.Width, cfg.Height = 32, 32
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40
		cfg.Checks = true
		cfg.CheckInterval = 1
		cfg.Workers = 4
		n := mustNew(t, cfg)
		defer n.Close()
		violated := false
		n.OnViolation = func(a *check.Artifact) {
			violated = true
			t.Errorf("32x32: %v", &a.Violation)
		}
		d := &randomDriver{rng: rand.New(rand.NewSource(99)), rate: 0.004, until: 500}
		for cyc := 0; cyc < 500 && !violated; cyc++ {
			d.Tick(n, n.Now())
			n.Step()
		}
		for cyc := 0; cyc < 20_000 && !n.Quiesced(); cyc++ {
			n.Step()
		}
		if !n.Quiesced() {
			t.Fatal("32x32 checked soak did not quiesce")
		}
		for _, p := range d.pkts {
			if p.EjectedAt == 0 {
				t.Fatalf("32x32 soak lost packet %v", p)
			}
		}
	})
	t.Run("64x64-flyover", func(t *testing.T) {
		t.Parallel()
		cfg := config.Default()
		cfg.Scheme = config.FlyOverPG
		cfg.Width, cfg.Height = 64, 64
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40
		cfg.Workers = 8
		n := mustNew(t, cfg)
		defer n.Close()
		d := &randomDriver{rng: rand.New(rand.NewSource(17)), rate: 0.002, until: 250}
		for cyc := 0; cyc < 250; cyc++ {
			d.Tick(n, n.Now())
			n.Step()
		}
		for cyc := 0; cyc < 30_000 && !n.Quiesced(); cyc++ {
			n.Step()
		}
		if !n.Quiesced() {
			t.Fatal("64x64 FlyOver soak did not quiesce")
		}
		n.CheckInvariants()
		for _, p := range d.pkts {
			if p.EjectedAt == 0 {
				t.Fatalf("64x64 FlyOver soak lost packet %v", p)
			}
		}
	})

	// Recycled high-load leg: eight workers, packet recycling on, so the
	// per-worker pools and the cross-shard flit-return queues churn for
	// thousands of cycles. The driver retains no packet pointers —
	// recycled packets are reused the moment they eject.
	t.Run("recycled-highload", func(t *testing.T) {
		t.Parallel()
		cfg := config.Default()
		cfg.Scheme = config.PowerPunchPG
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40
		cfg.Workers = 8
		cfg.RecyclePackets = true
		n := mustNew(t, cfg)
		defer n.Close()
		rng := rand.New(rand.NewSource(7))
		injected := int64(0)
		for cyc := 0; cyc < 12_000; cyc++ {
			for id := mesh.NodeID(0); n.M.Contains(id); id++ {
				if rng.Float64() >= 0.05 {
					continue
				}
				dst := mesh.NodeID(rng.Intn(n.M.NumNodes()))
				if dst == id {
					continue
				}
				p := n.NewPacket(id, dst, flit.VirtualNetwork(rng.Intn(int(flit.NumVirtualNetworks))), flit.KindData)
				n.NI(id).Submit(p, true, n.Now())
				injected++
			}
			n.Step()
			if cyc%512 == 0 {
				n.CheckInvariants()
			}
		}
		for cyc := 0; cyc < 20_000 && !n.Quiesced(); cyc++ {
			n.Step()
		}
		if !n.Quiesced() {
			t.Fatal("recycled parallel soak did not quiesce")
		}
		n.CheckInvariants()
		ejected := int64(0)
		for id := mesh.NodeID(0); n.M.Contains(id); id++ {
			ejected += n.NI(id).Ejected
		}
		if ejected != injected {
			t.Fatalf("ejected %d of %d injected packets", ejected, injected)
		}
	})
}

// TestSoakParallelEnergy is the energy-enabled leg of the parallel
// soak (its name matches `soak-par`'s TestSoakParallel regex, so it
// runs under -race in the same target): every scheme on mesh and
// torus on the sharded engine with per-component accounting charging
// every cycle and a timeline sampler differencing the accountant at
// window boundaries — full data-race coverage of the counter lanes,
// the lane fold, and the fold-before-EndCycle ordering. At the end the
// component view must reconcile with the float aggregate and the
// sampler must have produced live power columns.
func TestSoakParallelEnergy(t *testing.T) {
	fabrics := []struct {
		topo          string
		width, height int
	}{
		{"mesh", 8, 8},
		{"torus", 4, 4},
	}
	for _, fab := range fabrics {
		for _, s := range config.AllSchemes {
			fab, s := fab, s
			t.Run(fab.topo+"/"+s.String(), func(t *testing.T) {
				t.Parallel()
				cfg := config.Default()
				cfg.Scheme = s
				cfg.Topology = fab.topo
				cfg.Width, cfg.Height = fab.width, fab.height
				cfg.WarmupCycles = 0
				cfg.MeasureCycles = 1 << 40
				cfg.Workers = 4
				n := mustNew(t, cfg)
				defer n.Close()
				sampler := obs.NewSampler(256)
				n.Observe(sampler)
				n.SetAccounting(true)
				d := &randomDriver{rng: rand.New(rand.NewSource(31)), rate: 0.012, until: 4_000}
				for cyc := 0; cyc < 4_000; cyc++ {
					d.Tick(n, n.Now())
					n.Step()
				}
				for cyc := 0; cyc < 20_000 && !n.Quiesced(); cyc++ {
					n.Step()
				}
				if !n.Quiesced() {
					t.Fatal("energy soak did not quiesce")
				}

				agg := n.Acct.Network()
				comps := n.Acct.Components()
				cls := comps.Classes()
				const tol = 1e-9
				for _, c := range []struct {
					name     string
					got, ref float64
				}{
					{"dynamic", cls.Dynamic, agg.Dynamic},
					{"static", cls.Static, agg.Static},
					{"overhead", cls.Overhead, agg.Overhead},
				} {
					d := c.got - c.ref
					if d < 0 {
						d = -d
					}
					if m := max(abs(c.got), abs(c.ref)); m > 0 && d/m > tol {
						t.Errorf("%s: components %.12e vs aggregate %.12e", c.name, c.got, c.ref)
					}
				}
				livePower := false
				for _, sm := range sampler.Samples() {
					for _, w := range sm.PowerW {
						if w > 0 {
							livePower = true
						}
					}
				}
				if !livePower {
					t.Error("sampler recorded no nonzero power columns")
				}
			})
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestSoakWithChecks is the tier-2 gate variant (Makefile `check`,
// `go test -short -run Soak`): every scheme on every fabric — 8x8 mesh,
// 4x4 torus, 8-node ring — with the full invariant engine sweeping
// every cycle (including the dateline-legality invariant on the wrapped
// fabrics), sized to stay fast enough for -short. The long randomized
// run above stresses duration; this one stresses invariant coverage
// under concurrent schemes and topologies.
func TestSoakWithChecks(t *testing.T) {
	fabrics := []struct {
		topo          string
		width, height int
	}{
		{"mesh", 8, 8},
		{"torus", 4, 4},
		{"ring", 8, 1},
	}
	for _, fab := range fabrics {
		for _, s := range config.AllSchemes {
			fab, s := fab, s
			t.Run(fab.topo+"/"+s.String(), func(t *testing.T) {
				t.Parallel()
				cfg := config.Default()
				cfg.Scheme = s
				cfg.Topology = fab.topo
				cfg.Width, cfg.Height = fab.width, fab.height
				cfg.WarmupCycles = 0
				cfg.MeasureCycles = 1 << 40
				cfg.Checks = true
				cfg.CheckInterval = 1
				n := mustNew(t, cfg)
				violated := false
				n.OnViolation = func(a *check.Artifact) {
					violated = true
					t.Errorf("%v/%v: %v", fab.topo, s, &a.Violation)
				}
				d := &randomDriver{rng: rand.New(rand.NewSource(99)), rate: 0.012, until: 6_000}
				for cyc := 0; cyc < 6_000 && !violated; cyc++ {
					d.Tick(n, n.Now())
					n.Step()
				}
				for cyc := 0; cyc < 20_000 && !n.Quiesced(); cyc++ {
					n.Step()
				}
				if !n.Quiesced() {
					t.Fatal("checked soak did not quiesce")
				}
				for _, p := range d.pkts {
					if p.EjectedAt == 0 {
						t.Fatalf("checked soak lost packet %v", p)
					}
				}
			})
		}
	}
}
