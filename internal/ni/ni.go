// Package ni implements the network interface of the paper's Figure 6:
// message generation feeds an NI pipeline (packetization, VC arbitration,
// availability check) before flits enter the local router. The NI is the
// anchor of Power Punch's injection-node mechanism (Section 4.2): it
// exploits "slack 1" (the destination is known a full NI latency before
// injection) and "slack 2" (an L2/directory access guarantees a packet
// will be generated even earlier) to fire wakeup and punch signals ahead
// of packet injection.
package ni

import (
	"fmt"

	"powerpunch/internal/config"
	"powerpunch/internal/core"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/obs"
	"powerpunch/internal/router"
	"powerpunch/internal/stats"
	"powerpunch/internal/topo"
)

// openInjection tracks a packet whose flits are partially injected.
type openInjection struct {
	p     *flit.Packet
	flits []*flit.Flit
	next  int
	vcIdx int
}

// futureMessage is a message announced by a resource access but not yet
// generated (the window between the paper's slack-2 and slack-1 points).
type futureMessage struct {
	p         *flit.Packet
	genAt     int64
	hintValid bool
}

// PunchFabric is the subset of the punch fabric the NI drives: the
// injection-node signals of the paper's Section 4.2. The serial engine
// wires the real *core.Fabric; the sharded parallel tick engine wires a
// per-worker sink that defers the calls into an op buffer replayed in
// fixed node order before Fabric.Step — both orders produce identical
// fabric state because the signals are per-emitter levels.
type PunchFabric interface {
	EmitLocal(src, dst mesh.NodeID)
	HoldLocal(n mesh.NodeID)
}

// FlitRecycler diverts ejected-flit recycling. The parallel engine uses
// it to route each flit back to the pool of the worker that owns the
// flit's source node (injection draws from that pool), keeping every
// per-worker flit population closed so steady state stays allocation-
// free under any traffic pattern.
type FlitRecycler interface {
	RecycleFlit(f *flit.Flit, src mesh.NodeID)
}

// NI is one node's network interface. It is driven by the network's
// cycle loop; it is not concurrency-safe.
type NI struct {
	Node mesh.NodeID
	cfg  *config.Config
	m    topo.Topology
	r    *router.Router
	fab  PunchFabric // nil unless a Power Punch scheme is active
	col  *stats.Collector

	// Deliver, if non-nil, receives every ejected packet (the coherence
	// substrate's protocol handler).
	Deliver func(p *flit.Packet, now int64)

	// OnSubmit, if non-nil, observes every SubmitDelayed call (used by
	// the traffic recorder).
	OnSubmit func(p *flit.Packet, hintValid bool, delay int, now int64)

	future  []futureMessage
	pipe    []*flit.Packet // in the NI pipeline (ready at NIEnterAt+NILatency)
	readyQ  [flit.NumVirtualNetworks][]*flit.Packet
	open    [flit.NumVirtualNetworks]*openInjection
	credits []int // local-port VC credits (NI is the upstream "router")
	vcBusy  []bool
	vnRR    int

	// activityHook, when set, is called whenever new work enters the NI
	// from outside the cycle loop (SubmitDelayed / Generate); the
	// active-set scheduler uses it to arm this node.
	activityHook func()

	// pool, when set, recycles flit objects and slices (the allocation-
	// free hot path); nil falls back to plain allocation. openFree
	// recycles openInjection records alongside it.
	pool     *flit.Pool
	openFree []*openInjection

	// flitRec, when set, diverts ejected-flit recycling (the parallel
	// engine routes flits back to their source-owner's pool); when nil,
	// ejected flits go straight back to pool.
	flitRec FlitRecycler

	// recycle enables returning ejected packets to the pool's packet
	// free list (config.RecyclePackets). Only honoured when Deliver is
	// nil: delivered packets are owned by the protocol handler.
	recycle bool

	// deliverDefer, when set, intercepts Deliver-bound packets. The
	// parallel engine buffers them per worker and replays the real
	// Deliver calls on the coordinator in ascending node order, so a
	// protocol handler observes the serial engine's exact call order.
	deliverDefer func(p *flit.Packet, now int64)

	// bus, when non-nil, receives inject/eject/NI-block events.
	bus *obs.Bus

	// niSlack caches the policy's NISlack predicate, resolved once at
	// construction (Section 4.2 injection-node signalling).
	niSlack bool

	asm [][]*flit.Flit // ejection reassembly per local-output VC

	// Stats.
	Submitted int64
	Injected  int64
	Ejected   int64

	// Per-VN flit counters for the invariant engine's conservation check.
	injFlits [flit.NumVirtualNetworks]int64
	ejFlits  [flit.NumVirtualNetworks]int64
}

// New returns the NI for node id attached to router r. fab may be nil
// (non-punch schemes); col must be non-nil.
func New(id mesh.NodeID, m topo.Topology, cfg *config.Config, r *router.Router, fab *core.Fabric, col *stats.Collector) *NI {
	numVCs := r.NumVCs()
	pol, _ := cfg.Scheme.Policy() // Validate vetted the name already
	n := &NI{
		Node:    id,
		cfg:     cfg,
		m:       m,
		r:       r,
		col:     col,
		niSlack: pol != nil && pol.NISlack(),
		credits: make([]int, numVCs),
		vcBusy:  make([]bool, numVCs),
		asm:     make([][]*flit.Flit, numVCs),
	}
	if fab != nil { // guard the interface against a typed nil
		n.fab = fab
	}
	for v := 0; v < numVCs; v++ {
		n.credits[v] = cfg.VCDepth(v % cfg.VCsPerVN())
	}
	return n
}

// Submit announces a message at cycle now (the start of its generating
// resource access) to be generated ResourceSlack cycles later. hintValid
// marks accesses that certainly produce a packet (L2/directory — the
// paper's slack-2 valid bit); L1-triggered messages pass false. The
// packet's CreatedAt/NIEnterAt and ResourceHint are filled in here.
func (n *NI) Submit(p *flit.Packet, hintValid bool, now int64) {
	n.SubmitDelayed(p, hintValid, n.cfg.ResourceSlack, now)
}

// SubmitDelayed is Submit with an explicit resource-access latency: the
// message materializes in the NI `delay` cycles from now. The coherence
// substrate uses it to model L1 (short, hint-invalid), L2/directory
// (ResourceSlack, hint-valid) and memory (long) access times.
func (n *NI) SubmitDelayed(p *flit.Packet, hintValid bool, delay int, now int64) {
	p.ResourceHint = now
	n.future = append(n.future, futureMessage{p: p, genAt: now + int64(delay), hintValid: hintValid})
	n.Submitted++
	if n.activityHook != nil {
		n.activityHook()
	}
	if n.OnSubmit != nil {
		n.OnSubmit(p, hintValid, delay, now)
	}
}

// Generate places a fully-formed message directly into the NI pipeline at
// cycle now (the slack-1 point). Callers that model their own resource
// timing (the coherence substrate) use Announce + Generate; synthetic
// traffic uses Submit.
func (n *NI) Generate(p *flit.Packet, now int64) {
	p.CreatedAt = now
	p.NIEnterAt = now
	n.pipe = append(n.pipe, p)
	if n.activityHook != nil {
		n.activityHook()
	}
}

// SetActivityHook registers the active-set scheduler's arming callback;
// it fires on every SubmitDelayed/Generate so externally-submitted work
// can never be missed (injections are never droppable re-arm events).
func (n *NI) SetActivityHook(fn func()) { n.activityHook = fn }

// SetBus attaches an observability bus; a nil bus (the default) keeps
// the NI silent.
func (n *NI) SetBus(b *obs.Bus) { n.bus = b }

// SetPool installs a flit pool for the allocation-free injection path.
// Must only be used when no other component retains flit pointers past
// ejection (the invariant engine does, so checked runs leave it unset).
func (n *NI) SetPool(p *flit.Pool) { n.pool = p }

// SetPunchFabric replaces the punch-fabric sink (the parallel engine
// installs per-worker deferring sinks). A nil value silences the NI's
// punch signalling.
func (n *NI) SetPunchFabric(f PunchFabric) { n.fab = f }

// SetCollector replaces the statistics collector (the parallel engine
// points each NI at its owning worker's lane collector).
func (n *NI) SetCollector(c *stats.Collector) { n.col = c }

// SetPacketRecycling enables returning ejected, undelivered packets to
// the pool's packet free list (see config.RecyclePackets for the
// aliasing contract callers accept).
func (n *NI) SetPacketRecycling(v bool) { n.recycle = v }

// SetFlitRecycler diverts ejected-flit recycling through r instead of
// the NI's own pool.
func (n *NI) SetFlitRecycler(r FlitRecycler) { n.flitRec = r }

// SetDeliverDefer intercepts Deliver-bound packets with fn (see the
// deliverDefer field); nil restores direct delivery.
func (n *NI) SetDeliverDefer(fn func(p *flit.Packet, now int64)) { n.deliverDefer = fn }

// Announce asserts the slack-2 hold for the current cycle: a resource
// access in flight guarantees a packet will be injected here. Only
// meaningful under PowerPunch-PG; no-op otherwise.
func (n *NI) Announce() {
	if n.fab != nil && n.niSlack {
		n.fab.HoldLocal(n.Node)
	}
}

// StepSignals emits this cycle's injection-node signals into the punch
// fabric. Under both punch schemes, a packet that has reached the NI's
// availability check (injection-ready or mid-injection) punches the
// local router and the routers on its first hops — Section 4.2's
// baseline NI behaviour. PowerPunch-PG additionally moves these signals
// earlier: slack 1 punches from NI entry (destination known) and slack-2
// local holds from the start of the generating L2/directory access.
// Call before Fabric.Step each cycle.
func (n *NI) StepSignals(now int64) {
	// Move announced messages whose generation time arrived into the NI
	// pipeline regardless of scheme (the timeline is physical; only the
	// signalling is scheme-dependent).
	kept := n.future[:0]
	for _, fm := range n.future {
		if now >= fm.genAt {
			n.Generate(fm.p, now)
		} else {
			kept = append(kept, fm)
		}
	}
	n.future = kept

	if n.fab == nil {
		return
	}

	// Injection-ready packets punch under every punch scheme.
	for vn := range n.readyQ {
		for _, p := range n.readyQ[vn] {
			n.fab.EmitLocal(n.Node, p.Dst)
		}
	}
	for vn := range n.open {
		if o := n.open[vn]; o != nil {
			n.fab.EmitLocal(n.Node, o.p.Dst)
		}
	}

	if !n.niSlack {
		return
	}
	// Slack 1: the destination is known from NI entry, so the punch can
	// be sent a full NI latency early.
	for _, p := range n.pipe {
		n.fab.EmitLocal(n.Node, p.Dst)
	}
	// Slack 2: the access guarantees a packet but the destination is not
	// yet known, so only the local router can be held. The hold covers at
	// most the last ResourceSlack cycles of a long access (no point
	// keeping the router awake through a 128-cycle DRAM access).
	for _, fm := range n.future {
		if fm.hintValid && fm.genAt-now <= int64(n.cfg.ResourceSlack) {
			n.fab.HoldLocal(n.Node)
		}
	}
}

// WantsWakeup reports the NI's WU level toward the local router: true
// while a packet is ready to inject (past the NI pipeline) or is mid-
// injection. This is the conventional handshake of Figure 2 — it fires
// only at the availability-check point, which is why ConvOpt-PG packets
// suffer the full wakeup latency at injection.
func (n *NI) WantsWakeup() bool {
	for vn := range n.readyQ {
		if len(n.readyQ[vn]) > 0 || n.open[vn] != nil {
			return true
		}
	}
	return false
}

// ReceiveCredit restores one local-port credit (a flit left the local
// input port's VC).
func (n *NI) ReceiveCredit(vcIdx int) { n.credits[vcIdx]++ }

// StepInject advances the NI pipeline and injects at most one flit into
// the local router (one physical injection channel, paper Section 4.2).
func (n *NI) StepInject(now int64) {
	// NI pipeline: packets become injectable NILatency cycles after entry.
	kept := n.pipe[:0]
	for _, p := range n.pipe {
		if now-p.NIEnterAt >= int64(n.cfg.NILatency) {
			n.readyQ[p.VN] = append(n.readyQ[p.VN], p)
		} else {
			kept = append(kept, p)
		}
	}
	n.pipe = kept

	if !n.r.Ctrl.IsOn() {
		// The local router is gated or waking: every injection-ready
		// packet at the head of its VN queue is blocked by power gating.
		blocked := int64(0)
		for vn := range n.readyQ {
			if len(n.readyQ[vn]) == 0 {
				continue
			}
			p := n.readyQ[vn][0]
			p.WakeupWait++
			p.WakeupWaitNI++
			blocked++
			if !p.CountedNIBlock {
				p.CountedNIBlock = true
				p.BlockedRouters++
			}
		}
		if blocked > 0 && n.bus != nil {
			n.bus.Emit(obs.Event{Kind: obs.KindNIBlock, Node: int32(n.Node), A: blocked})
		}
		return
	}

	// One flit per cycle across all VNs, round-robin.
	for i := 0; i < int(flit.NumVirtualNetworks); i++ {
		vn := (n.vnRR + i) % int(flit.NumVirtualNetworks)
		if o := n.open[vn]; o != nil {
			if n.pushFlit(o, now) {
				n.vnRR = (vn + 1) % int(flit.NumVirtualNetworks)
				return
			}
			continue
		}
		if len(n.readyQ[vn]) == 0 {
			continue
		}
		p := n.readyQ[vn][0]
		vcIdx, ok := n.chooseVC(p)
		if !ok {
			continue
		}
		o := n.newOpen(p, vcIdx)
		n.vcBusy[vcIdx] = true
		if !n.pushFlit(o, now) {
			// Credit race cannot happen (chooseVC checked); back out.
			n.vcBusy[vcIdx] = false
			continue
		}
		p.InjectedAt = now
		n.col.PacketInjected(p)
		n.Injected++
		if n.bus != nil {
			n.bus.Emit(obs.Event{Kind: obs.KindInject, Node: int32(n.Node),
				VC: int16(p.VN), Pkt: p.ID, Src: int32(p.Src), Dst: int32(p.Dst),
				A: now - p.CreatedAt})
		}
		q := n.readyQ[vn]
		n.readyQ[vn] = q[:copy(q, q[1:])] // capacity-preserving pop
		n.open[vn] = o
		if o.next >= len(o.flits) { // single-flit packet completed
			n.finishOpen(vn)
		}
		n.vnRR = (vn + 1) % int(flit.NumVirtualNetworks)
		return
	}
}

// pushFlit injects the next flit of o if a credit is available, returning
// whether a flit was sent.
func (n *NI) pushFlit(o *openInjection, now int64) bool {
	if n.credits[o.vcIdx] <= 0 {
		return false
	}
	f := o.flits[o.next]
	n.credits[o.vcIdx]--
	n.r.ReceiveFlit(mesh.Local, o.vcIdx, f, now)
	n.injFlits[o.p.VN]++
	o.next++
	if o.next >= len(o.flits) {
		vn := int(o.p.VN)
		if n.open[vn] == o {
			n.finishOpen(vn)
		} else {
			n.vcBusy[o.vcIdx] = false
		}
	}
	return true
}

// newOpen builds an injection record, reusing a recycled one when the
// pool is active.
func (n *NI) newOpen(p *flit.Packet, vcIdx int) *openInjection {
	if k := len(n.openFree); k > 0 {
		o := n.openFree[k-1]
		n.openFree[k-1] = nil
		n.openFree = n.openFree[:k-1]
		o.p, o.flits, o.next, o.vcIdx = p, n.pool.Flits(p), 0, vcIdx
		return o
	}
	return &openInjection{p: p, flits: n.pool.Flits(p), vcIdx: vcIdx}
}

func (n *NI) finishOpen(vn int) {
	if o := n.open[vn]; o != nil && o.next >= len(o.flits) {
		n.vcBusy[o.vcIdx] = false
		n.open[vn] = nil
		if n.pool != nil {
			// The flits are still in flight downstream; only the slice
			// header and the injection record are recycled here.
			n.pool.PutSlice(o.flits)
			o.p, o.flits = nil, nil
			n.openFree = append(n.openFree, o)
		}
	}
}

// chooseVC picks a free local-port VC for packet p: data packets use data
// VCs of their VN; control packets prefer the control VC.
func (n *NI) chooseVC(p *flit.Packet) (int, bool) {
	perVN := n.cfg.VCsPerVN()
	base := int(p.VN) * perVN
	try := func(lo, hi int) (int, bool) {
		for v := lo; v < hi; v++ {
			if !n.vcBusy[v] && n.credits[v] > 0 {
				return v, true
			}
		}
		return -1, false
	}
	if p.Kind == flit.KindData {
		return try(base, base+n.cfg.DataVCs)
	}
	if v, ok := try(base+n.cfg.DataVCs, base+perVN); ok {
		return v, true
	}
	return try(base, base+n.cfg.DataVCs)
}

// ReceiveEject accepts a flit arriving from the router's Local output
// port, reassembling packets and delivering them on tail arrival.
func (n *NI) ReceiveEject(ft router.FlitInTransit, now int64) {
	if got, want := ft.Flit.Seq, len(n.asm[ft.VC]); got != want {
		panic(fmt.Sprintf("ni %d: out-of-order flit on eject VC %d: seq %d, want %d (%v)",
			n.Node, ft.VC, got, want, ft.Flit))
	}
	n.asm[ft.VC] = append(n.asm[ft.VC], ft.Flit)
	n.ejFlits[ft.Flit.Packet.VN]++
	if !ft.Flit.Type.IsTail() {
		return
	}
	p := ft.Flit.Packet
	p.EjectedAt = now
	if n.flitRec != nil {
		// Parallel engine: route each flit back toward the pool of the
		// worker that owns the packet's source (injection drew it from
		// there), keeping every per-worker flit population closed.
		for _, f := range n.asm[ft.VC] {
			n.flitRec.RecycleFlit(f, p.Src)
		}
	} else if n.pool != nil {
		// The packet has fully ejected: its flits can never be observed
		// again, so return them to the pool (the Packet itself lives on —
		// stats and the coherence substrate keep it).
		for _, f := range n.asm[ft.VC] {
			n.pool.PutFlit(f)
		}
	}
	n.asm[ft.VC] = n.asm[ft.VC][:0]
	n.Ejected++
	n.col.PacketEjected(p, n.m.HopDistance(p.Src, p.Dst))
	if n.bus != nil {
		n.bus.Emit(obs.Event{Kind: obs.KindEject, Node: int32(n.Node),
			VC: int16(p.VN), Pkt: p.ID, Src: int32(p.Src), Dst: int32(p.Dst),
			A: p.NetworkLatency(), B: p.WakeupWait})
	}
	if n.Deliver != nil {
		if n.deliverDefer != nil {
			n.deliverDefer(p, now)
		} else {
			n.Deliver(p, now)
		}
	} else if n.recycle && n.pool != nil {
		n.pool.PutPacket(p)
	}
}

// Busy reports whether the NI still holds work: announced, pipelined,
// queued, or partially injected messages.
func (n *NI) Busy() bool {
	if len(n.future) > 0 || len(n.pipe) > 0 {
		return true
	}
	for vn := range n.readyQ {
		if len(n.readyQ[vn]) > 0 || n.open[vn] != nil {
			return true
		}
	}
	return false
}

// InjectedFlitsVN returns the number of flits this NI has pushed into the
// local router on virtual network vn (invariant engine).
func (n *NI) InjectedFlitsVN(vn flit.VirtualNetwork) int64 { return n.injFlits[vn] }

// EjectedFlitsVN returns the number of flits this NI has accepted from the
// local router's ejection port on virtual network vn (invariant engine).
func (n *NI) EjectedFlitsVN(vn flit.VirtualNetwork) int64 { return n.ejFlits[vn] }

// CreditCount returns the NI's credit count for local-port VC v: the free
// slots it believes the router's local input VC has (invariant engine).
func (n *NI) CreditCount(v int) int { return n.credits[v] }

// QueuedPackets returns the number of messages waiting anywhere in the NI.
func (n *NI) QueuedPackets() int {
	c := len(n.future) + len(n.pipe)
	for vn := range n.readyQ {
		c += len(n.readyQ[vn])
		if n.open[vn] != nil {
			c++
		}
	}
	return c
}
