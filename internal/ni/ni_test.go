package ni

import (
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/core"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/pg"
	"powerpunch/internal/router"
	"powerpunch/internal/stats"
	"powerpunch/internal/topo"
)

// rig is a single node (router + NI) harness; the router's output pipes
// are drained manually.
type rig struct {
	cfg config.Config
	m   *mesh.Mesh
	r   *router.Router
	ni  *NI
	fab *core.Fabric
	col *stats.Collector
}

func newRig(t *testing.T, scheme config.Scheme) *rig {
	t.Helper()
	cfg := config.Default()
	cfg.Scheme = scheme
	cfg.Width, cfg.Height = 4, 4
	m := mesh.New(4, 4)
	rf := topo.Routing(topo.FromMesh(m))
	ctrl := pg.New(scheme.UsesPowerGating(), 4, cfg.WakeupLatency, cfg.BreakEven)
	r := router.New(5, rf, &cfg, ctrl, nil)
	col := stats.New(0, 0)
	var fab *core.Fabric
	if scheme.UsesPunch() {
		fab = core.NewFabric(m, cfg.PunchHops, false, nil)
	}
	n := New(5, topo.FromMesh(m), &cfg, r, fab, col)
	return &rig{cfg: cfg, m: m, r: r, ni: n, fab: fab, col: col}
}

// step advances one cycle: NI signals, fabric, router, injection, credit
// return.
func (rg *rig) step(now int64) {
	rg.ni.StepSignals(now)
	if rg.fab != nil {
		rg.fab.Step()
	}
	rg.r.Step(now)
	rg.ni.StepInject(now)
	rg.r.In(mesh.Local).CreditOut.Drain(now, func(c router.Credit) { rg.ni.ReceiveCredit(c.VC) })
}

func mkPkt(rg *rig, dst mesh.NodeID, size int) *flit.Packet {
	kind := flit.KindControl
	if size > 1 {
		kind = flit.KindData
	}
	return &flit.Packet{ID: 1, Src: 5, Dst: dst, VN: flit.VNRequest, Kind: kind, Size: size, ResourceHint: -1}
}

func TestSubmitDelaysByResourceSlack(t *testing.T) {
	rg := newRig(t, config.NoPG)
	p := mkPkt(rg, 7, 1)
	rg.ni.Submit(p, true, 10)
	for now := int64(10); now < 40 && p.InjectedAt == 0; now++ {
		rg.step(now)
	}
	// CreatedAt = submit + ResourceSlack (6); injected after NILatency (3).
	if p.CreatedAt != 16 {
		t.Errorf("CreatedAt = %d, want 16", p.CreatedAt)
	}
	if p.InjectedAt != 19 {
		t.Errorf("InjectedAt = %d, want 19 (NI latency 3)", p.InjectedAt)
	}
	if p.ResourceHint != 10 {
		t.Errorf("ResourceHint = %d, want 10", p.ResourceHint)
	}
}

func TestOneFlitPerCycleAcrossVNs(t *testing.T) {
	rg := newRig(t, config.NoPG)
	// Three single-flit packets in three VNs, all ready: injection must
	// serialize at one flit per cycle.
	for vn := 0; vn < 3; vn++ {
		p := mkPkt(rg, 7, 1)
		p.VN = flit.VirtualNetwork(vn)
		rg.ni.Generate(p, 0)
	}
	for now := int64(0); now < 3; now++ {
		rg.step(now)
	}
	// NI latency 3: all become ready at cycle 3; injected at 3,4,5.
	counts := []int{}
	for now := int64(3); now < 6; now++ {
		before := rg.r.BufferedFlits()
		rg.step(now)
		counts = append(counts, rg.r.BufferedFlits()-before)
	}
	for i, c := range counts {
		if c > 1 {
			t.Errorf("cycle %d injected %d flits (>1/cycle)", i, c)
		}
	}
	if rg.r.BufferedFlits() != 3 {
		t.Errorf("buffered = %d, want 3", rg.r.BufferedFlits())
	}
}

func TestInjectionBlockedByGatedRouterAccruesStats(t *testing.T) {
	rg := newRig(t, config.ConvOptPG)
	// Gate the local router.
	for i := 0; i < 6; i++ {
		rg.r.Ctrl.Step(pg.Inputs{Empty: true})
	}
	if rg.r.Ctrl.IsOn() {
		t.Fatal("setup: router should be gated")
	}
	p := mkPkt(rg, 7, 1)
	rg.ni.Generate(p, 0)
	for now := int64(0); now < 6; now++ {
		rg.step(now)
	}
	if p.BlockedRouters != 1 {
		t.Errorf("BlockedRouters = %d, want 1", p.BlockedRouters)
	}
	if p.WakeupWait == 0 {
		t.Error("WakeupWait not accrued at injection")
	}
	if !rg.ni.WantsWakeup() {
		t.Error("NI must assert WU while a ready packet waits")
	}
}

func TestWantsWakeupOnlyWhenReady(t *testing.T) {
	rg := newRig(t, config.ConvOptPG)
	// Gate the local router so the packet cannot inject the moment it
	// becomes ready.
	for i := 0; i < 6; i++ {
		rg.r.Ctrl.Step(pg.Inputs{Empty: true})
	}
	p := mkPkt(rg, 7, 1)
	rg.ni.Generate(p, 0)
	// During the NI pipeline (cycles 0..2) the conventional handshake is
	// silent — that is exactly why ConvOpt packets eat Twakeup at
	// injection.
	for now := int64(0); now <= 3; now++ {
		if rg.ni.WantsWakeup() {
			t.Fatalf("cycle %d: WU asserted before the availability check", now)
		}
		rg.ni.StepSignals(now)
		rg.ni.StepInject(now)
	}
	if !rg.ni.WantsWakeup() {
		t.Error("WU must assert once the packet is injection-ready")
	}
}

func TestPunchSignalsFromNI(t *testing.T) {
	// PowerPunch-PG: slack-1 punches flow from NI entry.
	rg := newRig(t, config.PowerPunchPG)
	p := mkPkt(rg, 7, 1)
	rg.ni.Generate(p, 0)
	rg.ni.StepSignals(0)
	rg.fab.Step()
	if !rg.fab.Hold(5) {
		t.Error("slack-1 punch must hold the local router from NI entry")
	}

	// PowerPunch-Signal: no NI-entry punch, but the injection-ready
	// packet punches (keep the router gated so it stays at the NI).
	rg2 := newRig(t, config.PowerPunchSignal)
	for i := 0; i < 6; i++ {
		rg2.r.Ctrl.Step(pg.Inputs{Empty: true})
	}
	p2 := mkPkt(rg2, 7, 1)
	rg2.ni.Generate(p2, 0)
	rg2.ni.StepSignals(0)
	rg2.fab.Step()
	if rg2.fab.Hold(5) {
		t.Error("Signal scheme must not use NI-entry slack")
	}
	for now := int64(0); now <= 3; now++ {
		rg2.ni.StepSignals(now)
		rg2.fab.Step()
		rg2.ni.StepInject(now)
	}
	rg2.ni.StepSignals(4)
	rg2.fab.Step()
	if !rg2.fab.Hold(5) {
		t.Error("Signal scheme must punch from the availability check")
	}
}

func TestSlack2HoldForAnnouncedMessages(t *testing.T) {
	rg := newRig(t, config.PowerPunchPG)
	p := mkPkt(rg, 7, 1)
	rg.ni.Submit(p, true, 0) // hint-valid resource access starts at 0
	rg.ni.StepSignals(1)
	rg.fab.Step()
	if !rg.fab.Hold(5) {
		t.Error("slack-2 hold missing during the resource access")
	}
	// Hint-invalid accesses (L1) must not hold.
	rg2 := newRig(t, config.PowerPunchPG)
	p2 := mkPkt(rg2, 7, 1)
	rg2.ni.Submit(p2, false, 0)
	rg2.ni.StepSignals(1)
	rg2.fab.Step()
	if rg2.fab.Hold(5) {
		t.Error("L1-triggered (hint-invalid) access must not assert slack-2")
	}
}

func TestSlack2HoldCappedForLongAccesses(t *testing.T) {
	rg := newRig(t, config.PowerPunchPG)
	p := mkPkt(rg, 7, 1)
	rg.ni.SubmitDelayed(p, true, 128, 0) // DRAM-length access
	rg.ni.StepSignals(1)
	rg.fab.Step()
	if rg.fab.Hold(5) {
		t.Error("hold must not cover the whole 128-cycle access")
	}
	// Within the last ResourceSlack cycles it holds.
	rg.ni.StepSignals(124)
	rg.fab.Step()
	if !rg.fab.Hold(5) {
		t.Error("hold missing in the final ResourceSlack window")
	}
}

func TestEjectionReassemblyAndDelivery(t *testing.T) {
	rg := newRig(t, config.NoPG)
	var delivered *flit.Packet
	rg.ni.Deliver = func(p *flit.Packet, now int64) { delivered = p }
	p := &flit.Packet{ID: 9, Src: 4, Dst: 5, VN: flit.VNResponse, Kind: flit.KindData, Size: 3, CreatedAt: 1}
	fs := flit.NewFlits(p)
	for i, f := range fs {
		rg.ni.ReceiveEject(router.FlitInTransit{Flit: f, VC: 0}, int64(20+i))
	}
	if delivered != p {
		t.Fatal("packet not delivered on tail")
	}
	if p.EjectedAt != 22 {
		t.Errorf("EjectedAt = %d, want 22", p.EjectedAt)
	}
	if rg.ni.Ejected != 1 {
		t.Error("Ejected counter")
	}
}

func TestEjectionPanicsOnOutOfOrderFlits(t *testing.T) {
	rg := newRig(t, config.NoPG)
	p := &flit.Packet{ID: 9, Src: 4, Dst: 5, VN: flit.VNResponse, Kind: flit.KindData, Size: 3}
	fs := flit.NewFlits(p)
	defer func() {
		if recover() == nil {
			t.Error("expected out-of-order panic")
		}
	}()
	rg.ni.ReceiveEject(router.FlitInTransit{Flit: fs[1], VC: 0}, 0)
}

func TestBusyAndQueuedPackets(t *testing.T) {
	rg := newRig(t, config.NoPG)
	if rg.ni.Busy() || rg.ni.QueuedPackets() != 0 {
		t.Error("fresh NI must be idle")
	}
	p := mkPkt(rg, 7, 1)
	rg.ni.Submit(p, true, 0)
	if !rg.ni.Busy() || rg.ni.QueuedPackets() != 1 {
		t.Error("announced message must count as busy")
	}
	for now := int64(0); now < 30 && rg.ni.Busy(); now++ {
		rg.step(now)
	}
	if rg.ni.Busy() {
		t.Error("NI stuck busy after injection")
	}
}

func TestMultiFlitInjectionRespectsCredits(t *testing.T) {
	rg := newRig(t, config.NoPG)
	p := mkPkt(rg, 7, 5) // 5-flit data into 3-deep VC
	rg.ni.Generate(p, 0)
	injected := func() int { return int(rg.r.BufferedFlits()) }
	stuck := 0
	for now := int64(0); now < 8; now++ {
		// Do NOT step the router: no credits return, so at most 3 flits fit.
		rg.ni.StepSignals(now)
		rg.ni.StepInject(now)
		stuck = injected()
	}
	if stuck != 3 {
		t.Errorf("injected %d flits into a 3-deep VC without credits", stuck)
	}
}

func TestControlPacketFallsBackToDataVC(t *testing.T) {
	// With the control VC busy, a second control packet may use a data
	// VC rather than wait (allocVC fallback, mirrored in the NI).
	rg := newRig(t, config.NoPG)
	p1 := mkPkt(rg, 7, 1)
	p2 := mkPkt(rg, 11, 1)
	p2.ID = 2
	vc1, ok1 := rg.ni.chooseVC(p1)
	if !ok1 || vc1 != rg.cfg.DataVCs {
		t.Fatalf("first control packet got VC %d, want control VC %d", vc1, rg.cfg.DataVCs)
	}
	rg.ni.vcBusy[vc1] = true
	vc2, ok2 := rg.ni.chooseVC(p2)
	if !ok2 || rg.cfg.IsDataVC(vc2%rg.cfg.VCsPerVN()) == false {
		t.Fatalf("second control packet got VC %d, want a data VC fallback", vc2)
	}
}

func TestSubmittedCounter(t *testing.T) {
	rg := newRig(t, config.NoPG)
	rg.ni.Submit(mkPkt(rg, 7, 1), true, 0)
	rg.ni.SubmitDelayed(mkPkt(rg, 9, 1), false, 2, 0)
	if rg.ni.Submitted != 2 {
		t.Errorf("Submitted = %d", rg.ni.Submitted)
	}
}
