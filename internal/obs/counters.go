package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// HistBuckets is the number of log2 buckets in a Histogram. Bucket i
// holds values v with bits.Len64(v) == i, i.e. bucket 0 holds v==0,
// bucket 1 holds v==1, bucket 2 holds 2..3, bucket 3 holds 4..7, and
// so on; 63-bit values land in the last bucket.
const HistBuckets = 32

// Histogram is a fixed-size log2 histogram of non-negative cycle
// counts. The zero value is ready to use.
type Histogram struct {
	Buckets [HistBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// Observe records one value (negative values are clamped to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the average observed value, or 0 for an empty
// histogram.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// NodeCounters is the per-node event tally kept by Counters.
type NodeCounters struct {
	Kinds [NumKinds]int64 // events seen, indexed by Kind
}

// wakeWindow tracks one in-flight wakeup at a router.
type wakeWindow struct {
	active bool
	punch  bool // wake was triggered by a punch signal
	short  bool // gating period fell short of the break-even time
	stalls int64
}

// BlockingSplit is the paper's §6 blocking analysis for one wake
// cause: of the Twakeup cycles each wakeup takes, how many were
// exposed to traffic (a flit sat stalled waiting on the waking
// router) and how many were hidden (the router woke with slack to
// spare).
type BlockingSplit struct {
	Wakeups       int64 // completed wake windows with this cause
	ExposedCycles int64 // distinct stall cycles inside those windows
	HiddenCycles  int64 // Twakeup minus exposed, clamped at 0, summed
}

// Counters is a Sink accumulating per-node event counts, global
// latency-breakdown histograms, and the wakeup-exposed vs punch-
// hidden stall split of the paper's §6 blocking analysis. The zero
// value is ready to attach.
type Counters struct {
	meta  Meta
	nodes []NodeCounters
	total [NumKinds]int64

	// Latency breakdown histograms over ejected packets.
	Latency  Histogram // end-to-end packet latency
	NIQueue  Histogram // source-NI queueing delay
	WakeWait Histogram // cycles spent waiting on router wakeups

	// Distinct (router, cycle) stall pairs: cycles in which at least
	// one flit was blocked on a gated or waking downstream router.
	StallCycles int64
	stallMark   []int64 // last cycle a stall was counted per router

	// §6 blocking analysis: wake windows split by trigger.
	PunchWakes BlockingSplit // wakes triggered by punch signals
	ConvWakes  BlockingSplit // conventional (WU handshake) wakes
	ShortWakes int64         // wakes whose gated period missed BET

	wakes []wakeWindow
}

// SetMeta implements MetaSink; the bus calls it at attach time.
func (c *Counters) SetMeta(m Meta) {
	c.meta = m
	c.ensure(m.Nodes)
}

func (c *Counters) ensure(n int) {
	if n <= len(c.nodes) {
		return
	}
	c.nodes = append(c.nodes, make([]NodeCounters, n-len(c.nodes))...)
	mark := make([]int64, n)
	wk := make([]wakeWindow, n)
	copy(mark, c.stallMark)
	copy(wk, c.wakes)
	for i := len(c.stallMark); i < n; i++ {
		mark[i] = -1
	}
	c.stallMark = mark
	c.wakes = wk
}

// Meta returns the run description received at attach time.
func (c *Counters) Meta() Meta { return c.meta }

// Event implements Sink.
func (c *Counters) Event(e *Event) {
	c.ensure(int(e.Node) + 1)
	c.nodes[e.Node].Kinds[e.Kind]++
	c.total[e.Kind]++
	switch e.Kind {
	case KindInject:
		c.NIQueue.Observe(e.A)
	case KindEject:
		c.Latency.Observe(e.A)
		c.WakeWait.Observe(e.B)
	case KindPGStall:
		// Dst is the gated/waking downstream router the flit waits
		// on; count each (router, cycle) pair once no matter how
		// many flits pile up behind it.
		d := int(e.Dst)
		c.ensure(d + 1)
		if c.stallMark[d] != e.Cycle {
			c.stallMark[d] = e.Cycle
			c.StallCycles++
			if c.wakes[d].active {
				c.wakes[d].stalls++
			}
		}
	case KindPGWake:
		w := &c.wakes[e.Node]
		w.active = true
		w.punch = e.B == 1
		w.short = e.Dir == 1
		w.stalls = 0
		if w.short {
			c.ShortWakes++
		}
	case KindPGActive:
		w := &c.wakes[e.Node]
		if !w.active {
			break
		}
		w.active = false
		split := &c.ConvWakes
		if w.punch {
			split = &c.PunchWakes
		}
		split.Wakeups++
		exposed := w.stalls
		if t := int64(c.meta.Twakeup); exposed > t && t > 0 {
			exposed = t
		}
		split.ExposedCycles += exposed
		hidden := int64(c.meta.Twakeup) - exposed
		if hidden < 0 {
			hidden = 0
		}
		split.HiddenCycles += hidden
	}
}

// Total returns the run-wide count of events of kind k.
func (c *Counters) Total(k Kind) int64 { return c.total[k] }

// Node returns the counter block for node id (zeros if the node never
// emitted).
func (c *Counters) Node(id int) NodeCounters {
	if id < 0 || id >= len(c.nodes) {
		return NodeCounters{}
	}
	return c.nodes[id]
}

// Nodes returns how many nodes have counter blocks.
func (c *Counters) Nodes() int { return len(c.nodes) }

// HiddenFraction returns the fraction of wakeup cycles hidden from
// traffic across all completed wake windows (the paper's headline
// blocking metric), or 1 if no wakeups completed.
func (c *Counters) HiddenFraction() float64 {
	exp := c.PunchWakes.ExposedCycles + c.ConvWakes.ExposedCycles
	hid := c.PunchWakes.HiddenCycles + c.ConvWakes.HiddenCycles
	if exp+hid == 0 {
		return 1
	}
	return float64(hid) / float64(exp+hid)
}

// WriteReport writes a human-readable summary: run-wide event totals,
// the latency breakdown, and the blocking analysis.
func (c *Counters) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "events:\n"); err != nil {
		return err
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		if c.total[k] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-12s %12d\n", k.String(), c.total[k]); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "latency:   mean %.2f max %d (n=%d)\n", c.Latency.Mean(), c.Latency.Max, c.Latency.Count)
	fmt.Fprintf(w, "ni queue:  mean %.2f max %d\n", c.NIQueue.Mean(), c.NIQueue.Max)
	fmt.Fprintf(w, "wake wait: mean %.2f max %d\n", c.WakeWait.Mean(), c.WakeWait.Max)
	fmt.Fprintf(w, "stall cycles (distinct router-cycles): %d\n", c.StallCycles)
	fmt.Fprintf(w, "wakeups: punch %d (exposed %d, hidden %d)  conv %d (exposed %d, hidden %d)  short %d\n",
		c.PunchWakes.Wakeups, c.PunchWakes.ExposedCycles, c.PunchWakes.HiddenCycles,
		c.ConvWakes.Wakeups, c.ConvWakes.ExposedCycles, c.ConvWakes.HiddenCycles,
		c.ShortWakes)
	_, err := fmt.Fprintf(w, "hidden fraction: %.4f\n", c.HiddenFraction())
	return err
}

// TopNodes returns the ids of the n nodes with the highest count of
// kind k, busiest first (ties broken by lower id).
func (c *Counters) TopNodes(k Kind, n int) []int {
	ids := make([]int, 0, len(c.nodes))
	for i := range c.nodes {
		if c.nodes[i].Kinds[k] > 0 {
			ids = append(ids, i)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		ca, cb := c.nodes[ids[a]].Kinds[k], c.nodes[ids[b]].Kinds[k]
		if ca != cb {
			return ca > cb
		}
		return ids[a] < ids[b]
	})
	if n > 0 && len(ids) > n {
		ids = ids[:n]
	}
	return ids
}
