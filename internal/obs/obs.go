// Package obs is the cycle-level observability layer: a tiny event bus
// that the router, power-gating controller, punch fabric, and network
// interfaces publish into, fanned out to pluggable sinks.
//
// The design contract (DESIGN.md §10) is zero overhead when disabled:
// every publisher holds a *Bus that is nil unless an observer was
// attached, and every emission site is guarded by a single nil check.
// The simulator's hot tick path is pinned at 0 allocs/cycle by
// AllocsPerRun tests; the bus preserves that by never allocating on
// Emit — events are value types copied into a bus-resident scratch
// slot and handed to sinks by pointer, valid only for the duration of
// the call.
//
// Sinks that want end-of-cycle batching (timeline samplers, flush
// points) additionally implement CycleSink; the network calls EndCycle
// exactly once per simulated cycle, after all phases of that cycle.
package obs

// Kind discriminates event types on the bus. The numeric values are
// part of the JSONL trace format (see TraceWriter) and must not be
// reordered; add new kinds at the end.
type Kind uint8

const (
	// KindInject: a packet's head flit entered the network at the
	// source NI. Node = source, Dst = destination, Pkt = packet ID,
	// VC = virtual network, A = NI queueing delay in cycles
	// (inject cycle − creation cycle).
	KindInject Kind = iota
	// KindVCAlloc: a head flit won VC allocation at Node for output
	// Dir, acquiring downstream VC.
	KindVCAlloc
	// KindSwitch: a flit won switch allocation and traversed the
	// crossbar at Node toward output Dir (ST stage). A = 1 if tail.
	KindSwitch
	// KindLink: the same flit departed on the link from Node (Src)
	// to the downstream router Dst in direction Dir.
	KindLink
	// KindEject: a packet's tail flit left the network at the
	// destination NI. Node = destination, Src = original source,
	// A = total packet latency in cycles, B = cycles the packet
	// spent waiting on router wakeups.
	KindEject
	// KindNIBlock: a source NI spent this cycle unable to inject
	// because the local router (or, under conventional gating, a
	// gated router on the path) is not ready. Node = source.
	KindNIBlock
	// KindPGStall: a flit at Node was denied switch traversal this
	// cycle because the downstream router Dst is gated or waking.
	// One event per stalled flit per cycle.
	KindPGStall
	// KindPGGate: router Node turned its power gate on (entered
	// Gated). A = cycles spent Active since the last wake.
	KindPGGate
	// KindPGWake: router Node began waking. A = cycles it spent
	// gated, B = 1 if the wake was triggered by a punch signal,
	// 0 for a conventional wakeup/drain trigger. Dir = 1 if the
	// gating period fell short of the break-even time.
	KindPGWake
	// KindPGActive: router Node completed its wakeup and is Active.
	// A = the configured wakeup latency it just paid.
	KindPGActive
	// KindPunchEmit: the NI/core at Node emitted a punch along an
	// escape channel. Dst = the punch target router, A = encoded
	// target set / code index.
	KindPunchEmit
	// KindPunchLocal: the core at Node asserted (or refreshed) the
	// punch wire of its own local router.
	KindPunchLocal
	// KindPunchMerge: a relayed punch at Node merged into a
	// non-empty outbound punch register (paper Table 1 merging).
	// Dst = the merged target.
	KindPunchMerge
	// KindPunchArrive: a punch addressed to Node arrived and was
	// absorbed (it will hold Node's wake wire this cycle).
	KindPunchArrive
	// KindPunchHold: Node's wake wire is held high by punch state
	// this cycle (level signal derived from arrivals/local wires).
	KindPunchHold
	// KindWorkloadMiss: the core at Node issued an L1 miss into the
	// coherence protocol. Dst = home L2 bank/directory, Pkt = protocol
	// transaction id, VC = virtual network of the request, A = 1 for a
	// write (GetX), 0 for a read (GetS). Emitted at driver time, so the
	// stamp carries the previous cycle (the packet enters the NI at the
	// cycle after the stamp), matching driver-time punch events.
	KindWorkloadMiss
	// KindWorkloadFill: the miss identified by Pkt completed at the
	// core at Node (the data response arrived and the MSHR retired).
	// Src = responding node (home bank or memory controller).
	KindWorkloadFill
	// KindWorkloadDir: the directory at Node acted on a request.
	// Pkt = transaction id, Src = original requester, A = action:
	// 0 clean L2 hit (data response), 1 invalidation round (B = sharer
	// count), 2 L2 miss forwarded to a memory controller (Dst = MC).
	KindWorkloadDir
	// KindBypass: router Node granted a flit onto the bypass path
	// around its gated neighbor Src (FlyOver-style schemes): the flit
	// flies over Src and lands directly at router Dst's input. Dir =
	// the travel direction, VC = the landing router's input VC.
	KindBypass
	numKinds
)

// NumKinds is the number of defined event kinds.
const NumKinds = int(numKinds)

var kindNames = [NumKinds]string{
	"inject", "vc_alloc", "switch", "link", "eject", "ni_block",
	"pg_stall", "pg_gate", "pg_wake", "pg_active",
	"punch_emit", "punch_local", "punch_merge", "punch_arrive", "punch_hold",
	"wl_miss", "wl_fill", "wl_dir",
	"bypass",
}

// String returns the stable snake_case name used in JSONL traces.
func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves a stable snake_case kind name (as used in JSONL
// traces); ok is false for unknown names.
func KindByName(name string) (k Kind, ok bool) {
	for i := range kindNames {
		if kindNames[i] == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// KindMask selects a subset of kinds for filtering sinks.
type KindMask uint32

// MaskOf builds a mask matching exactly the given kinds.
func MaskOf(kinds ...Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// MaskAll matches every kind.
const MaskAll = KindMask(1<<numKinds - 1)

// Has reports whether k is in the mask.
func (m KindMask) Has(k Kind) bool { return m&(1<<k) != 0 }

// Event is one observation on the bus. It is a flat value type —
// comparable, pointer-free — so sinks may copy and retain it freely.
// Field meaning depends on Kind (see the Kind constants); unused
// fields are zero.
type Event struct {
	Cycle int64 // simulation cycle, stamped by the bus
	Kind  Kind
	Node  int32 // router/NI where the event happened
	Dir   int8  // output direction or kind-specific small flag
	VC    int16 // virtual channel / virtual network, -1 if n/a
	Pkt   uint64
	Src   int32 // kind-specific: packet source, link source
	Dst   int32 // kind-specific: packet dest, downstream router, punch target
	A     int64 // kind-specific payload
	B     int64 // kind-specific payload
}

// Sink consumes events. The *Event passed to Event points at
// bus-owned scratch storage and is valid only for the duration of the
// call; copy the value to retain it. Sinks run synchronously on the
// simulation goroutine and must not block.
type Sink interface {
	Event(e *Event)
}

// CycleSink is implemented by sinks that additionally want a callback
// at the end of every simulated cycle (after all events of that
// cycle).
type CycleSink interface {
	Sink
	EndCycle(cycle int64)
}

// Meta describes the run being observed; the network fills it in when
// the bus is installed so sinks can interpret events (e.g. split
// wakeup stalls into exposed vs hidden using Twakeup).
type Meta struct {
	Nodes    int
	Width    int
	Height   int
	Topology string
	Scheme   string
	Twakeup  int // configured wakeup latency, cycles
	BET      int // break-even time, cycles
	Punch    int // punch reach in hops (0 if the scheme has no punch)
}

// Bus fans events out to attached sinks. A nil *Bus is the disabled
// state: publishers guard every emission with a nil check and the
// whole layer costs one predictable branch per site.
type Bus struct {
	meta       Meta
	now        int64
	sinks      []Sink
	cycleSinks []CycleSink
	ev         Event // scratch slot handed to sinks by pointer
}

// NewBus returns an empty bus for a run described by meta.
func NewBus(meta Meta) *Bus {
	return &Bus{meta: meta}
}

// Meta returns the run description the bus was created with.
func (b *Bus) Meta() Meta { return b.meta }

// MetaSink is implemented by sinks that want the run description at
// attach time (e.g. to size per-node state or interpret Twakeup).
type MetaSink interface {
	Sink
	SetMeta(m Meta)
}

// Attach adds a sink. Sinks implementing CycleSink also receive
// EndCycle callbacks; sinks implementing MetaSink receive the run
// description immediately. Attach is not safe concurrently with Emit.
func (b *Bus) Attach(s Sink) {
	if s == nil {
		return
	}
	b.sinks = append(b.sinks, s)
	if cs, ok := s.(CycleSink); ok {
		b.cycleSinks = append(b.cycleSinks, cs)
	}
	if ms, ok := s.(MetaSink); ok {
		ms.SetMeta(b.meta)
	}
}

// SetNow sets the cycle stamped onto subsequently emitted events. The
// network calls this once at the start of each cycle.
func (b *Bus) SetNow(cycle int64) { b.now = cycle }

// Now returns the current stamping cycle.
func (b *Bus) Now() int64 { return b.now }

// Emit delivers e to every sink, stamping the current cycle. e is
// copied into bus-owned storage; the pointer sinks receive must not
// be retained past the call.
func (b *Bus) Emit(e Event) {
	e.Cycle = b.now
	b.ev = e
	for _, s := range b.sinks {
		s.Event(&b.ev)
	}
}

// EndCycle notifies cycle-aware sinks that the current cycle is
// complete. The network calls this exactly once per cycle, after all
// phases.
func (b *Bus) EndCycle() {
	for _, cs := range b.cycleSinks {
		cs.EndCycle(b.now)
	}
}

// Recorder is a Sink that buffers every event in memory, in emission
// order, for deterministic deferred replay. The sharded parallel tick
// engine attaches one Recorder per worker lane bus: routers, PG
// controllers, and NIs publish into their owning worker's recorder
// during a parallel section, and the coordinator replays the buffered
// events onto the real bus in fixed (phase-major, worker-minor) order —
// reproducing the serial engine's ascending-node emission order exactly.
// Mark/Slice let the replayer split one cycle's buffer into per-phase
// segments without per-phase sinks. The buffer's capacity is retained
// across Reset, so steady-state recording allocates nothing.
type Recorder struct {
	events []Event
}

// Event implements Sink by appending a copy of e.
func (r *Recorder) Event(e *Event) { r.events = append(r.events, *e) }

// Mark returns the current buffer position (for later Slice calls).
func (r *Recorder) Mark() int { return len(r.events) }

// Slice returns the events recorded in [lo, hi). The slice aliases the
// recorder's buffer and is valid until the next Reset.
func (r *Recorder) Slice(lo, hi int) []Event { return r.events[lo:hi] }

// Reset empties the buffer, keeping its capacity.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Funnel adapts a plain function into a Sink, optionally filtered by
// a kind mask. Useful for tests and ad-hoc probes.
type Funnel struct {
	Mask KindMask
	Fn   func(e *Event)
}

// Event implements Sink.
func (f *Funnel) Event(e *Event) {
	if f.Mask.Has(e.Kind) {
		f.Fn(e)
	}
}
