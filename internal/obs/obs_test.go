package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v", name, got, ok, k)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Error("KindByName accepted an unknown name")
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}

func TestKindMask(t *testing.T) {
	m := MaskOf(KindInject, KindPGWake)
	if !m.Has(KindInject) || !m.Has(KindPGWake) || m.Has(KindEject) {
		t.Errorf("mask membership wrong: %b", m)
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		if !MaskAll.Has(k) {
			t.Errorf("MaskAll missing %v", k)
		}
	}
}

// endCycleCounter records EndCycle callbacks.
type endCycleCounter struct {
	events int
	cycles []int64
	meta   Meta
}

func (s *endCycleCounter) Event(e *Event)   { s.events++ }
func (s *endCycleCounter) EndCycle(c int64) { s.cycles = append(s.cycles, c) }
func (s *endCycleCounter) SetMeta(m Meta)   { s.meta = m }

func TestBusStampsAndFansOut(t *testing.T) {
	b := NewBus(Meta{Nodes: 16, Twakeup: 8})
	var got []Event
	b.Attach(&Funnel{Mask: MaskAll, Fn: func(e *Event) { got = append(got, *e) }})
	cs := &endCycleCounter{}
	b.Attach(cs)
	if cs.meta.Nodes != 16 {
		t.Fatalf("MetaSink not called at attach: %+v", cs.meta)
	}

	b.SetNow(42)
	b.Emit(Event{Kind: KindInject, Node: 3, A: 7})
	b.Emit(Event{Kind: KindEject, Node: 5})
	b.EndCycle()
	b.SetNow(43)
	b.Emit(Event{Kind: KindPGWake, Node: 1})
	b.EndCycle()

	if len(got) != 3 || cs.events != 3 {
		t.Fatalf("fan-out lost events: funnel=%d counter=%d", len(got), cs.events)
	}
	if got[0].Cycle != 42 || got[1].Cycle != 42 || got[2].Cycle != 43 {
		t.Errorf("cycle stamping wrong: %+v", got)
	}
	if got[0].Node != 3 || got[0].A != 7 {
		t.Errorf("payload lost: %+v", got[0])
	}
	if len(cs.cycles) != 2 || cs.cycles[0] != 42 || cs.cycles[1] != 43 {
		t.Errorf("EndCycle callbacks: %v", cs.cycles)
	}
}

func TestFunnelFilters(t *testing.T) {
	b := NewBus(Meta{})
	n := 0
	b.Attach(&Funnel{Mask: MaskOf(KindPGGate), Fn: func(e *Event) { n++ }})
	b.Emit(Event{Kind: KindPGGate})
	b.Emit(Event{Kind: KindInject})
	if n != 1 {
		t.Errorf("funnel passed %d events, want 1", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      int64
		bucket int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 40, HistBuckets - 1}}
	for _, c := range cases {
		h.Observe(c.v)
		if h.Buckets[c.bucket] == 0 {
			t.Errorf("Observe(%d) missed bucket %d", c.v, c.bucket)
		}
	}
	h.Observe(-5) // clamps to 0
	if h.Buckets[0] != 2 {
		t.Errorf("negative clamp: bucket0=%d", h.Buckets[0])
	}
	if h.Count != int64(len(cases))+1 || h.Max != 1<<40 {
		t.Errorf("count=%d max=%d", h.Count, h.Max)
	}
	if h.Mean() <= 0 {
		t.Errorf("mean=%f", h.Mean())
	}
	var empty Histogram
	if empty.Mean() != 0 {
		t.Error("empty histogram mean")
	}
}

// TestCountersWakeSplit drives the §6 blocking-split logic with a
// hand-built event sequence: a punch wake with two exposed stall cycles
// (one duplicated within a cycle, which must dedup) and a conventional
// wake with none.
func TestCountersWakeSplit(t *testing.T) {
	c := &Counters{}
	c.SetMeta(Meta{Nodes: 8, Twakeup: 8})
	b := NewBus(Meta{Nodes: 8, Twakeup: 8})
	b.Attach(c)

	b.SetNow(100)
	b.Emit(Event{Kind: KindPGWake, Node: 3, A: 50, B: 1}) // punch-triggered
	b.SetNow(101)
	b.Emit(Event{Kind: KindPGStall, Node: 2, Dst: 3})
	b.Emit(Event{Kind: KindPGStall, Node: 6, Dst: 3}) // same router+cycle: dedup
	b.SetNow(103)
	b.Emit(Event{Kind: KindPGStall, Node: 2, Dst: 3})
	b.SetNow(108)
	b.Emit(Event{Kind: KindPGActive, Node: 3, A: 8})

	b.SetNow(200)
	b.Emit(Event{Kind: KindPGWake, Node: 5, A: 4, B: 0, Dir: 1}) // short, conventional
	b.SetNow(208)
	b.Emit(Event{Kind: KindPGActive, Node: 5, A: 8})

	if c.StallCycles != 2 {
		t.Errorf("StallCycles = %d, want 2 (dedup per router-cycle)", c.StallCycles)
	}
	if c.PunchWakes.Wakeups != 1 || c.PunchWakes.ExposedCycles != 2 || c.PunchWakes.HiddenCycles != 6 {
		t.Errorf("punch split: %+v", c.PunchWakes)
	}
	if c.ConvWakes.Wakeups != 1 || c.ConvWakes.ExposedCycles != 0 || c.ConvWakes.HiddenCycles != 8 {
		t.Errorf("conv split: %+v", c.ConvWakes)
	}
	if c.ShortWakes != 1 {
		t.Errorf("ShortWakes = %d", c.ShortWakes)
	}
	// 2 exposed of 16 wakeup cycles -> 14/16 hidden.
	if got := c.HiddenFraction(); got != 14.0/16.0 {
		t.Errorf("HiddenFraction = %f", got)
	}
	if c.Total(KindPGWake) != 2 || c.Node(3).Kinds[KindPGWake] != 1 {
		t.Error("per-node kind counts wrong")
	}
	var rep strings.Builder
	if err := c.WriteReport(&rep); err != nil || !strings.Contains(rep.String(), "hidden fraction") {
		t.Errorf("WriteReport: %v %q", err, rep.String())
	}
	if top := c.TopNodes(KindPGStall, 1); len(top) != 1 || top[0] != 2 {
		t.Errorf("TopNodes = %v", top)
	}
}

func TestCountersLatencyHistograms(t *testing.T) {
	c := &Counters{}
	c.SetMeta(Meta{Nodes: 4, Twakeup: 8})
	c.Event(&Event{Kind: KindInject, Node: 0, A: 3})
	c.Event(&Event{Kind: KindEject, Node: 1, A: 25, B: 8})
	if c.NIQueue.Sum != 3 || c.Latency.Sum != 25 || c.WakeWait.Sum != 8 {
		t.Errorf("histogram sums: ni=%d lat=%d wake=%d", c.NIQueue.Sum, c.Latency.Sum, c.WakeWait.Sum)
	}
}

func TestSamplerWindows(t *testing.T) {
	s := NewSampler(4)
	s.SetMeta(Meta{Nodes: 4})
	b := NewBus(Meta{Nodes: 4})
	b.Attach(s)
	for cyc := int64(0); cyc < 8; cyc++ {
		b.SetNow(cyc)
		if cyc == 1 {
			b.Emit(Event{Kind: KindPGGate, Node: 2})
			b.Emit(Event{Kind: KindInject, Node: 0})
		}
		if cyc == 5 {
			b.Emit(Event{Kind: KindPGWake, Node: 2})
			b.Emit(Event{Kind: KindSwitch, Node: 1})
		}
		b.EndCycle()
	}
	rows := s.Samples()
	if len(rows) != 2 {
		t.Fatalf("want 2 windows, got %d", len(rows))
	}
	w0, w1 := rows[0], rows[1]
	if w0.Cycle != 3 || w0.Gated != 1 || w0.Active != 3 || w0.Injected != 1 {
		t.Errorf("window 0: %+v", w0)
	}
	if w1.Cycle != 7 || w1.Waking != 1 || w1.Gated != 0 || w1.Switched != 1 || w1.Wakeups != 1 {
		t.Errorf("window 1: %+v", w1)
	}
	// Window counters are deltas: the injection must not leak into w1.
	if w1.Injected != 0 {
		t.Errorf("window counters not reset: %+v", w1)
	}

	var csvb, jb strings.Builder
	if err := s.WriteCSV(&csvb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvb.String()), "\n")
	if len(lines) != 3 || lines[0] != csvHeader {
		t.Errorf("csv: %q", csvb.String())
	}
	if err := s.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	var parsed Sample
	if err := json.Unmarshal([]byte(strings.SplitN(jb.String(), "\n", 2)[0]), &parsed); err != nil {
		t.Fatalf("jsonl row does not parse: %v", err)
	}
	if parsed != w0 {
		t.Errorf("jsonl row %+v != %+v", parsed, w0)
	}
}

func TestTraceWriterJSONL(t *testing.T) {
	var buf strings.Builder
	tw := NewTraceWriter(&buf, MaskOf(KindPGWake, KindEject))
	b := NewBus(Meta{})
	b.Attach(tw)
	b.SetNow(9)
	b.Emit(Event{Kind: KindPGWake, Node: 3, A: 17, B: 1})
	b.Emit(Event{Kind: KindInject, Node: 0}) // filtered out
	b.SetNow(10)
	b.Emit(Event{Kind: KindEject, Node: 1, VC: 2, Pkt: 77, Src: 4, Dst: 1, A: 30})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() != 2 {
		t.Errorf("Events() = %d", tw.Events())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace: %q", buf.String())
	}
	var row map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if row["cycle"] != float64(9) || row["kind"] != "pg_wake" || row["node"] != float64(3) ||
		row["a"] != float64(17) || row["b"] != float64(1) {
		t.Errorf("row 0: %v", row)
	}
	if _, present := row["pkt"]; present {
		t.Error("zero field not omitted")
	}
	if err := json.Unmarshal([]byte(lines[1]), &row); err != nil {
		t.Fatal(err)
	}
	if row["kind"] != "eject" || row["pkt"] != float64(77) || row["src"] != float64(4) {
		t.Errorf("row 1: %v", row)
	}
	if tw.Err() != nil {
		t.Errorf("Err() = %v", tw.Err())
	}
}
