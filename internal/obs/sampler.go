package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"powerpunch/internal/power"
)

// Sample is one row of the time-series a Sampler produces: the state
// of the network over one sampling window. Counter fields are deltas
// over the window; Gated/Waking/Active are instantaneous at the
// window's closing cycle. The JSON field names are a stable export
// format (sampleVersion).
//
// The PowerW fields are the per-component average power draw over the
// window in watts, derived from a PowerMeter when one is attached
// (Network.Observe wires the power accountant in automatically) and
// zero otherwise — including during warmup, when accounting is off.
type Sample struct {
	Cycle    int64 `json:"cycle"`  // closing cycle of the window
	Gated    int   `json:"gated"`  // routers gated at Cycle
	Waking   int   `json:"waking"` // routers mid-wakeup at Cycle
	Active   int   `json:"active"` // routers active at Cycle
	Injected int64 `json:"injected"`
	Ejected  int64 `json:"ejected"`
	Switched int64 `json:"switched"` // crossbar traversals in window
	Punches  int64 `json:"punches"`  // punch emissions in window
	Stalls   int64 `json:"stalls"`   // pg-stall events in window
	Wakeups  int64 `json:"wakeups"`  // wakeups begun in window
	NIBlock  int64 `json:"ni_block"` // blocked source-NI cycles

	// Per-component window-average power (W), in power.Component order.
	PowerW [power.NumComponents]float64 `json:"power_w"`
}

// SampleVersion identifies the Sample JSON schema.
// Version 2 added the per-component power columns.
const SampleVersion = 2

// PowerMeter provides cumulative per-component energy readings; the
// Sampler differences them at window boundaries to produce power
// columns. power.Accountant implements it. Readings must be current at
// EndCycle (all tick engines settle accounting — including parallel
// lane folds — before the bus closes the cycle).
type PowerMeter interface {
	Components() power.ComponentBreakdown
	CycleTime() float64
}

// Sampler is a CycleSink producing a periodic timeline of power and
// traffic activity: how many routers are gated/waking, and windowed
// injection/ejection/switching/punch/stall rates. Use NewSampler to
// pick the window length.
type Sampler struct {
	interval int64
	meta     Meta
	state    []uint8 // per-node power state: 0 active, 1 waking, 2 gated
	win      Sample  // accumulating window
	samples  []Sample

	meter PowerMeter               // nil: power columns stay zero
	last  power.ComponentBreakdown // cumulative energies at last window close
}

// NewSampler returns a Sampler emitting one Sample every interval
// cycles (interval < 1 is treated as 1).
func NewSampler(interval int64) *Sampler {
	if interval < 1 {
		interval = 1
	}
	return &Sampler{interval: interval}
}

// SetMeta implements MetaSink.
func (s *Sampler) SetMeta(m Meta) {
	s.meta = m
	if m.Nodes > len(s.state) {
		s.state = append(s.state, make([]uint8, m.Nodes-len(s.state))...)
	}
}

// Interval returns the sampling window length in cycles.
func (s *Sampler) Interval() int64 { return s.interval }

// SetPowerMeter attaches the cumulative energy source the power
// columns are differenced from. Network.Observe calls it with the
// run's power accountant; attach before the first cycle.
func (s *Sampler) SetPowerMeter(m PowerMeter) { s.meter = m }

func (s *Sampler) ensure(n int) {
	if n > len(s.state) {
		s.state = append(s.state, make([]uint8, n-len(s.state))...)
	}
}

// Event implements Sink.
func (s *Sampler) Event(e *Event) {
	switch e.Kind {
	case KindInject:
		s.win.Injected++
	case KindEject:
		s.win.Ejected++
	case KindSwitch:
		s.win.Switched++
	case KindPunchEmit:
		s.win.Punches++
	case KindPGStall:
		s.win.Stalls++
	case KindNIBlock:
		s.win.NIBlock++
	case KindPGGate:
		s.ensure(int(e.Node) + 1)
		s.state[e.Node] = 2
	case KindPGWake:
		s.ensure(int(e.Node) + 1)
		s.state[e.Node] = 1
		s.win.Wakeups++
	case KindPGActive:
		s.ensure(int(e.Node) + 1)
		s.state[e.Node] = 0
	}
}

// EndCycle implements CycleSink: closes the window every interval
// cycles.
func (s *Sampler) EndCycle(cycle int64) {
	if (cycle+1)%s.interval != 0 {
		return
	}
	s.win.Cycle = cycle
	s.win.Gated, s.win.Waking = 0, 0
	for _, st := range s.state {
		switch st {
		case 1:
			s.win.Waking++
		case 2:
			s.win.Gated++
		}
	}
	s.win.Active = len(s.state) - s.win.Gated - s.win.Waking
	if s.meter != nil {
		cur := s.meter.Components()
		secs := float64(s.interval) * s.meter.CycleTime()
		for c := range cur {
			e := cur[c]
			prev := s.last[c]
			s.win.PowerW[c] = (e.Total() - prev.Total()) / secs
		}
		s.last = cur
	}
	s.samples = append(s.samples, s.win)
	s.win = Sample{}
}

// Samples returns the collected timeline (shared backing array; do
// not mutate while the run continues).
func (s *Sampler) Samples() []Sample { return s.samples }

// csvHeader lists the CSV columns: the Sample counter fields in order,
// then one p_<component>_w power column per power.Component.
var csvHeader = func() string {
	h := "cycle,gated,waking,active,injected,ejected,switched,punches,stalls,wakeups,ni_block"
	for _, name := range power.ComponentNames() {
		h += ",p_" + name + "_w"
	}
	return h
}()

// WriteCSV writes the timeline as CSV with a header row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, r := range s.samples {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
			r.Cycle, r.Gated, r.Waking, r.Active, r.Injected, r.Ejected,
			r.Switched, r.Punches, r.Stalls, r.Wakeups, r.NIBlock)
		if err != nil {
			return err
		}
		for _, p := range r.PowerW {
			if _, err := fmt.Fprintf(w, ",%.6e", p); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes the timeline as JSON lines, one Sample per line.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range s.samples {
		if err := enc.Encode(&s.samples[i]); err != nil {
			return err
		}
	}
	return nil
}
