package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sample is one row of the time-series a Sampler produces: the state
// of the network over one sampling window. Counter fields are deltas
// over the window; Gated/Waking/Active are instantaneous at the
// window's closing cycle. The JSON field names are a stable export
// format (sampleVersion).
type Sample struct {
	Cycle    int64 `json:"cycle"`  // closing cycle of the window
	Gated    int   `json:"gated"`  // routers gated at Cycle
	Waking   int   `json:"waking"` // routers mid-wakeup at Cycle
	Active   int   `json:"active"` // routers active at Cycle
	Injected int64 `json:"injected"`
	Ejected  int64 `json:"ejected"`
	Switched int64 `json:"switched"` // crossbar traversals in window
	Punches  int64 `json:"punches"`  // punch emissions in window
	Stalls   int64 `json:"stalls"`   // pg-stall events in window
	Wakeups  int64 `json:"wakeups"`  // wakeups begun in window
	NIBlock  int64 `json:"ni_block"` // blocked source-NI cycles
}

// SampleVersion identifies the Sample JSON schema.
const SampleVersion = 1

// Sampler is a CycleSink producing a periodic timeline of power and
// traffic activity: how many routers are gated/waking, and windowed
// injection/ejection/switching/punch/stall rates. Use NewSampler to
// pick the window length.
type Sampler struct {
	interval int64
	meta     Meta
	state    []uint8 // per-node power state: 0 active, 1 waking, 2 gated
	win      Sample  // accumulating window
	samples  []Sample
}

// NewSampler returns a Sampler emitting one Sample every interval
// cycles (interval < 1 is treated as 1).
func NewSampler(interval int64) *Sampler {
	if interval < 1 {
		interval = 1
	}
	return &Sampler{interval: interval}
}

// SetMeta implements MetaSink.
func (s *Sampler) SetMeta(m Meta) {
	s.meta = m
	if m.Nodes > len(s.state) {
		s.state = append(s.state, make([]uint8, m.Nodes-len(s.state))...)
	}
}

// Interval returns the sampling window length in cycles.
func (s *Sampler) Interval() int64 { return s.interval }

func (s *Sampler) ensure(n int) {
	if n > len(s.state) {
		s.state = append(s.state, make([]uint8, n-len(s.state))...)
	}
}

// Event implements Sink.
func (s *Sampler) Event(e *Event) {
	switch e.Kind {
	case KindInject:
		s.win.Injected++
	case KindEject:
		s.win.Ejected++
	case KindSwitch:
		s.win.Switched++
	case KindPunchEmit:
		s.win.Punches++
	case KindPGStall:
		s.win.Stalls++
	case KindNIBlock:
		s.win.NIBlock++
	case KindPGGate:
		s.ensure(int(e.Node) + 1)
		s.state[e.Node] = 2
	case KindPGWake:
		s.ensure(int(e.Node) + 1)
		s.state[e.Node] = 1
		s.win.Wakeups++
	case KindPGActive:
		s.ensure(int(e.Node) + 1)
		s.state[e.Node] = 0
	}
}

// EndCycle implements CycleSink: closes the window every interval
// cycles.
func (s *Sampler) EndCycle(cycle int64) {
	if (cycle+1)%s.interval != 0 {
		return
	}
	s.win.Cycle = cycle
	s.win.Gated, s.win.Waking = 0, 0
	for _, st := range s.state {
		switch st {
		case 1:
			s.win.Waking++
		case 2:
			s.win.Gated++
		}
	}
	s.win.Active = len(s.state) - s.win.Gated - s.win.Waking
	s.samples = append(s.samples, s.win)
	s.win = Sample{}
}

// Samples returns the collected timeline (shared backing array; do
// not mutate while the run continues).
func (s *Sampler) Samples() []Sample { return s.samples }

// csvHeader lists the CSV columns, in Sample field order.
const csvHeader = "cycle,gated,waking,active,injected,ejected,switched,punches,stalls,wakeups,ni_block"

// WriteCSV writes the timeline as CSV with a header row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, r := range s.samples {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			r.Cycle, r.Gated, r.Waking, r.Active, r.Injected, r.Ejected,
			r.Switched, r.Punches, r.Stalls, r.Wakeups, r.NIBlock)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes the timeline as JSON lines, one Sample per line.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range s.samples {
		if err := enc.Encode(&s.samples[i]); err != nil {
			return err
		}
	}
	return nil
}
