package obs

import (
	"bufio"
	"io"
	"strconv"
)

// TraceWriter is a Sink streaming every matching event as one JSON
// object per line (JSONL). Lines carry only the fields meaningful for
// the event's kind plus the always-present cycle/kind/node triple, so
// traces stay compact and diff-friendly:
//
//	{"cycle":412,"kind":"pg_wake","node":27,"a":96,"b":1}
//
// Writes are buffered; call Flush (or Close) before reading the
// underlying writer. TraceWriter is not safe for concurrent use.
type TraceWriter struct {
	w    *bufio.Writer
	mask KindMask
	n    int64
	err  error
	buf  []byte
}

// NewTraceWriter returns a TraceWriter streaming to w. mask selects
// the kinds to record; use MaskAll for everything.
func NewTraceWriter(w io.Writer, mask KindMask) *TraceWriter {
	return &TraceWriter{
		w:    bufio.NewWriterSize(w, 1<<16),
		mask: mask,
		buf:  make([]byte, 0, 160),
	}
}

// Events returns how many events have been written.
func (t *TraceWriter) Events() int64 { return t.n }

// Err returns the first write error encountered, if any.
func (t *TraceWriter) Err() error { return t.err }

func (t *TraceWriter) field(name string, v int64) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '"', ':')
	t.buf = strconv.AppendInt(t.buf, v, 10)
}

// Event implements Sink. The encoding is hand-rolled (no reflection,
// no allocation beyond the reusable buffer) so full-trace runs stay
// fast.
func (t *TraceWriter) Event(e *Event) {
	if t.err != nil || !t.mask.Has(e.Kind) {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"cycle":`...)
	b = strconv.AppendInt(b, e.Cycle, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	t.buf = b
	if e.Dir != 0 {
		t.field("dir", int64(e.Dir))
	}
	if e.VC != 0 {
		t.field("vc", int64(e.VC))
	}
	if e.Pkt != 0 {
		t.field("pkt", int64(e.Pkt))
	}
	if e.Src != 0 {
		t.field("src", int64(e.Src))
	}
	if e.Dst != 0 {
		t.field("dst", int64(e.Dst))
	}
	if e.A != 0 {
		t.field("a", e.A)
	}
	if e.B != 0 {
		t.field("b", e.B)
	}
	t.buf = append(t.buf, '}', '\n')
	if _, err := t.w.Write(t.buf); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Flush drains the internal buffer to the underlying writer.
func (t *TraceWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	if err := t.w.Flush(); err != nil {
		t.err = err
	}
	return t.err
}

// Close flushes the writer. The underlying io.Writer is not closed.
func (t *TraceWriter) Close() error { return t.Flush() }
