package parsec

import (
	"fmt"
	"testing"

	"powerpunch/internal/cmp"
	"powerpunch/internal/config"
	"powerpunch/internal/network"
)

// TestProfilesAreSeedDeterministic mirrors the synthetic determinism
// suite for the full-system path: a CMP run built from the same
// profile, configuration, and seed must reproduce the RunResult —
// Detail included, the full floating-point energy breakdown — the
// execution time, and the protocol statistics byte for byte. The
// golden full-system baseline (internal/experiments/golden) rests on
// this property; any hidden nondeterminism in the workload (map
// iteration, shared RNG misuse) shows up here first.
func TestProfilesAreSeedDeterministic(t *testing.T) {
	for _, b := range Benchmarks {
		b := b
		t.Run(b, func(t *testing.T) {
			t.Parallel()
			run := func() (network.RunResult, int64, string) {
				cfg := config.Default()
				cfg.Scheme = config.PowerPunchPG
				cfg.Width, cfg.Height = 4, 4
				cfg.WarmupCycles = 0
				cfg.MeasureCycles = 1 << 40
				net, err := network.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				sys := cmp.NewSystem(MustProfile(b, 2000), net, 9)
				res := net.RunUntil(sys, 300_000)
				if !res.Drained {
					t.Fatalf("%s did not complete", b)
				}
				stats := fmt.Sprintf("misses=%d reads=%d writes=%d invs=%d memreqs=%d wbs=%d pkts=%v stalls=%d",
					sys.TotalMisses, sys.TotalReads, sys.TotalWrites,
					sys.TotalInvs, sys.TotalMemReqs, sys.TotalWBs,
					sys.PacketsByType, sys.TotalStallCycles())
				return res, sys.ExecutionTime(), stats
			}
			r1, exec1, stats1 := run()
			r2, exec2, stats2 := run()
			if r1 != r2 {
				t.Errorf("identical profile+seed diverged:\n  %+v\n  %+v", r1, r2)
			}
			if fmt.Sprintf("%+v", r1) != fmt.Sprintf("%+v", r2) {
				t.Errorf("rendered results differ:\n  %+v\n  %+v", r1, r2)
			}
			if exec1 != exec2 {
				t.Errorf("execution times differ: %d vs %d", exec1, exec2)
			}
			if stats1 != stats2 {
				t.Errorf("protocol statistics differ:\n  %s\n  %s", stats1, stats2)
			}
		})
	}
}
