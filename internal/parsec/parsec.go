// Package parsec defines the eight PARSEC-like workload profiles used in
// the paper's full-system evaluation (Figures 7-11), plus the
// PARSEC-average synthetic load of the sensitivity study (Figure 13).
//
// The real PARSEC 2.0 binaries cannot run on this simulator; instead each
// profile is a statistical stand-in calibrated to the published
// characteristics of the benchmark on a 64-core CMP: compute-bound codes
// (swaptions, blackscholes) with very low NoC utilization, cache-hostile
// codes (canneal) with high miss rates, pipeline-parallel codes (dedup,
// ferret) with heavy sharing, and bursty streaming codes (x264,
// bodytrack). What matters for reproducing the paper is (a) the low
// average load regime that makes router static power dominate and
// (b) per-benchmark diversity in network sensitivity — both preserved.
package parsec

import (
	"fmt"

	"powerpunch/internal/cmp"
)

// Benchmarks lists the profile names in the paper's presentation order.
var Benchmarks = []string{
	"blackscholes", "bodytrack", "canneal", "dedup",
	"ferret", "fluidanimate", "swaptions", "x264",
}

// Profile returns the named workload profile scaled so each core retires
// `instrPerCore` instructions (the knob trading run time for statistical
// weight; the paper-shape experiments use 40k+).
func Profile(name string, instrPerCore int64) (cmp.Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return cmp.Profile{}, fmt.Errorf("parsec: unknown benchmark %q (have %v)", name, Benchmarks)
	}
	p.InstrPerCore = instrPerCore
	return p, nil
}

// MustProfile is Profile for known-good names; it panics on error.
func MustProfile(name string, instrPerCore int64) cmp.Profile {
	p, err := Profile(name, instrPerCore)
	if err != nil {
		panic(err)
	}
	return p
}

// AverageLoadFlitsPerNodeCycle is the mean injected load across the eight
// profiles on the default 8x8 system, used by the Figure 13 sensitivity
// study ("uniform random traffic ... set to the average load rate of
// PARSEC benchmarks").
const AverageLoadFlitsPerNodeCycle = 0.015

var profiles = map[string]cmp.Profile{
	// Compute-bound option pricing: tiny working set, little sharing.
	"blackscholes": {
		Name: "blackscholes", MPKI: 0.35, L2HitRate: 0.85,
		InvFrac: 0.10, MaxSharers: 2, WBFrac: 0.20, BlockFrac: 0.75,
		LocalFrac: 0.6, LocalRadius: 2,
	},
	// Vision pipeline: moderate misses, bursty frame phases.
	"bodytrack": {
		Name: "bodytrack", MPKI: 0.55, L2HitRate: 0.78,
		InvFrac: 0.18, MaxSharers: 2, WBFrac: 0.25, BlockFrac: 0.80,
		LocalFrac: 0.5, LocalRadius: 2,
		PhasePeriod: 4000, PhaseDuty: 0.6, PhaseScale: 0.25,
	},
	// Cache-hostile simulated annealing: high MPKI, poor L2 locality.
	"canneal": {
		Name: "canneal", MPKI: 1.40, L2HitRate: 0.52,
		InvFrac: 0.12, MaxSharers: 2, WBFrac: 0.35, BlockFrac: 0.85,
		LocalFrac: 0.25, LocalRadius: 2,
	},
	// Pipeline-parallel dedup: queue sharing between stages.
	"dedup": {
		Name: "dedup", MPKI: 0.80, L2HitRate: 0.70,
		InvFrac: 0.25, MaxSharers: 3, WBFrac: 0.30, BlockFrac: 0.80,
		LocalFrac: 0.45, LocalRadius: 2,
	},
	// Content-similarity search: large shared tables, high traffic.
	"ferret": {
		Name: "ferret", MPKI: 1.00, L2HitRate: 0.65,
		InvFrac: 0.22, MaxSharers: 3, WBFrac: 0.30, BlockFrac: 0.80,
		LocalFrac: 0.4, LocalRadius: 2,
	},
	// Particle simulation: neighbor sharing, moderate misses.
	"fluidanimate": {
		Name: "fluidanimate", MPKI: 0.60, L2HitRate: 0.80,
		InvFrac: 0.20, MaxSharers: 2, WBFrac: 0.25, BlockFrac: 0.75,
		LocalFrac: 0.65, LocalRadius: 2,
	},
	// Compute-bound Monte-Carlo swaption pricing: near-idle NoC.
	"swaptions": {
		Name: "swaptions", MPKI: 0.15, L2HitRate: 0.90,
		InvFrac: 0.08, MaxSharers: 1, WBFrac: 0.15, BlockFrac: 0.70,
		LocalFrac: 0.6, LocalRadius: 2,
	},
	// Video encoder: bursty GOP phases, producer/consumer sharing.
	"x264": {
		Name: "x264", MPKI: 0.70, L2HitRate: 0.74,
		InvFrac: 0.28, MaxSharers: 3, WBFrac: 0.30, BlockFrac: 0.75,
		LocalFrac: 0.5, LocalRadius: 2,
		PhasePeriod: 6000, PhaseDuty: 0.5, PhaseScale: 0.3,
	},
}
