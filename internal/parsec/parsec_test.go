package parsec

import (
	"testing"

	"powerpunch/internal/cmp"
	"powerpunch/internal/config"
	"powerpunch/internal/network"
)

func TestAllBenchmarksResolve(t *testing.T) {
	if len(Benchmarks) != 8 {
		t.Fatalf("the paper evaluates 8 PARSEC benchmarks, have %d", len(Benchmarks))
	}
	for _, b := range Benchmarks {
		p, err := Profile(b, 1000)
		if err != nil {
			t.Fatalf("Profile(%q): %v", b, err)
		}
		if p.Name != b || p.InstrPerCore != 1000 {
			t.Errorf("%s: name/budget not applied: %+v", b, p)
		}
		if p.MPKI <= 0 || p.L2HitRate <= 0 || p.L2HitRate > 1 {
			t.Errorf("%s: implausible parameters: %+v", b, p)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Profile("doom", 1); err == nil {
		t.Error("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustProfile must panic on unknown name")
		}
	}()
	MustProfile("doom", 1)
}

func TestWorkloadDiversity(t *testing.T) {
	// The per-benchmark spread is what produces Figures 7-11's
	// variation: canneal must be the most network-hungry profile and
	// swaptions the least.
	canneal := MustProfile("canneal", 1)
	swaptions := MustProfile("swaptions", 1)
	if canneal.MPKI <= 2*swaptions.MPKI {
		t.Errorf("canneal (%.2f) should miss far more than swaptions (%.2f)",
			canneal.MPKI, swaptions.MPKI)
	}
	bursty := 0
	for _, b := range Benchmarks {
		if MustProfile(b, 1).PhasePeriod > 0 {
			bursty++
		}
	}
	if bursty == 0 {
		t.Error("at least one profile should exhibit phase behaviour")
	}
}

func TestProfilesRunToCompletion(t *testing.T) {
	// Every profile must complete on a small system under the punch
	// scheme (smoke test for the full Figure 7-11 pipeline).
	for _, b := range Benchmarks {
		b := b
		t.Run(b, func(t *testing.T) {
			cfg := config.Default()
			cfg.Scheme = config.PowerPunchPG
			cfg.Width, cfg.Height = 4, 4
			cfg.WarmupCycles = 0
			cfg.MeasureCycles = 1 << 40
			net, err := network.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sys := cmp.NewSystem(MustProfile(b, 2000), net, 3)
			res := net.RunUntil(sys, 300_000)
			if !res.Drained {
				t.Fatalf("%s did not complete", b)
			}
		})
	}
}

func TestAverageLoadConstantSane(t *testing.T) {
	if AverageLoadFlitsPerNodeCycle <= 0 || AverageLoadFlitsPerNodeCycle > 0.1 {
		t.Errorf("PARSEC average load %v outside the paper's low-load regime",
			AverageLoadFlitsPerNodeCycle)
	}
}
