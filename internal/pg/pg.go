// Package pg implements the per-router power-gating controller of the
// paper's Section 2.2: a small always-on FSM that monitors datapath
// emptiness and wakeup (WU) levels, gates the router off after an idle
// timeout, asserts the PG signal to neighbors while the router is
// unavailable, and wakes the router over Twakeup cycles when a WU or
// punch signal arrives.
//
// The controller is policy-agnostic: the network computes its per-cycle
// inputs (emptiness, WU level, punch hold) according to the scheme under
// evaluation (ConvOpt early wakeup, Power Punch, ...), and the controller
// applies the gating FSM. For the No-PG baseline the controller is
// disabled and reports the router as permanently on.
package pg

import (
	"fmt"

	"powerpunch/internal/obs"
)

// State is the gating FSM state.
type State int

// FSM states. Draining routers are fully functional (they are merely
// counting idle cycles); Gated and Waking routers are unavailable and
// assert PG to their neighbors.
const (
	Active State = iota
	Draining
	Gated
	Waking
)

// String returns a short state name.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Draining:
		return "draining"
	case Gated:
		return "gated"
	case Waking:
		return "waking"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Inputs are the controller's per-cycle observations, computed by the
// network for the scheme under test.
type Inputs struct {
	// Empty reports that the router datapath holds no flits and none are
	// in flight toward it.
	Empty bool
	// Wakeup is the merged WU level from neighbors and the local NI.
	Wakeup bool
	// PunchHold is asserted when a punch signal names this router or
	// transits it this cycle (Power Punch schemes only): the router must
	// wake if gated and must not gate off.
	PunchHold bool
	// BypassHold is asserted while a neighbor is streaming flits over
	// this gated router on the bypass path (FlyOver-style schemes).
	// A waking router pauses its countdown until the stream drains:
	// the bypass latch and the router pipeline must never be live in
	// the same cycle. It does not wake a gated router — bypass traffic
	// is exactly the traffic that does not need this router on.
	BypassHold bool
}

// Stats counts controller activity for energy accounting and analysis.
type Stats struct {
	GatingEvents  int64 // completed power-off decisions
	GatedCycles   int64 // cycles spent in Gated
	WakingCycles  int64 // cycles spent in Waking
	ShortGatings  int64 // gated periods shorter than the break-even time
	WakeupsPunch  int64 // wakeups triggered by punch signals
	WakeupsWU     int64 // wakeups triggered by plain WU level
	SleepsBlocked int64 // timeout expiries vetoed by a punch hold
}

// Controller is one router's power-gating controller. The zero value is
// unusable; use New.
type Controller struct {
	enabled bool
	timeout int // idle cycles before gating (>= 2)
	wakeup  int // Twakeup

	state     State
	idleCnt   int
	wakeCnt   int
	gatedFor  int64 // cycles in current gated period
	breakEven int64

	// Adaptive throttle (extension, off by default): when the recent
	// average gated-period length falls below the break-even time,
	// gating is counter-productive churn, so the controller backs off
	// for a while. See SetAdaptiveThrottle.
	adaptive     bool
	gatedEWMA    float64
	ewmaSamples  int
	throttleLeft int64

	stats Stats

	// faultIgnoreWakeups is a deliberate defect for invariant-engine
	// tests; see SetFaultIgnoreWakeups.
	faultIgnoreWakeups bool

	// onGate/onWake are optional energy-accounting callbacks.
	onGate func()
	onWake func()

	// bus, when non-nil, receives gate/wake/active transition events
	// (see SetBus). activeSince tracks the cycle the router last
	// became usable, for the KindPGGate active-period payload.
	bus         *obs.Bus
	node        int32
	activeSince int64
}

// New returns a controller. enabled=false yields a permanently-Active
// controller (the No-PG baseline). timeout is the idle filter (paper: 4,
// minimum 2) and wakeupLatency is Twakeup (paper: 8). breakEven is used
// only for the ShortGatings statistic.
func New(enabled bool, timeout, wakeupLatency int, breakEven int) *Controller {
	if enabled && timeout < 2 {
		panic(fmt.Sprintf("pg: timeout must be >= 2, got %d", timeout))
	}
	if enabled && wakeupLatency < 1 {
		panic(fmt.Sprintf("pg: wakeup latency must be >= 1, got %d", wakeupLatency))
	}
	return &Controller{
		enabled:   enabled,
		timeout:   timeout,
		wakeup:    wakeupLatency,
		state:     Active,
		breakEven: int64(breakEven),
	}
}

// SetHooks registers energy-accounting callbacks: onWake fires once per
// gating event when the wake transition begins (the paper charges the
// full sleep+wake overhead there).
func (c *Controller) SetHooks(onGate, onWake func()) {
	c.onGate, c.onWake = onGate, onWake
}

// Adaptive back-off tuning: gating pauses for throttleWindow cycles
// whenever the exponentially-weighted average gated-period length
// (computed over at least throttleMinSamples events, decay
// throttleDecay) drops below the break-even time.
const (
	throttleWindow     = 4096
	throttleMinSamples = 4
	throttleDecay      = 0.75
)

// SetBus attaches an observability bus: the controller for router
// `node` emits KindPGGate / KindPGWake / KindPGActive transition
// events. A nil bus (the default) keeps the controller silent at the
// cost of one branch per transition.
func (c *Controller) SetBus(b *obs.Bus, node int32) {
	c.bus, c.node = b, node
	if b != nil {
		c.activeSince = b.Now()
	}
}

// SetAdaptiveThrottle enables the churn back-off extension: gating
// pauses for a window whenever the recent average gated-period length
// fails to reach the break-even time (medium-load churn turns power
// gating into a net energy loss; the paper's fixed timeout cannot
// detect this).
func (c *Controller) SetAdaptiveThrottle(v bool) { c.adaptive = v }

// State returns the current FSM state.
func (c *Controller) State() State { return c.state }

// IsOn reports whether the router datapath is powered and functional
// (Active or Draining).
func (c *Controller) IsOn() bool { return c.state == Active || c.state == Draining }

// PGAsserted reports whether the PG (unavailable) signal is asserted to
// neighbors: true while Gated or Waking, matching the paper's handshake
// ("the packet is stalled ... until router A is fully awoken and the PG
// signal is cleared").
func (c *Controller) PGAsserted() bool { return c.state == Gated || c.state == Waking }

// Enabled reports whether power gating is active at all.
func (c *Controller) Enabled() bool { return c.enabled }

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// WakeRemaining returns the cycles left before a Waking router becomes
// Active (0 otherwise).
func (c *Controller) WakeRemaining() int {
	if c.state == Waking {
		return c.wakeCnt
	}
	return 0
}

// Step advances the FSM by one cycle given this cycle's observations.
// Call exactly once per simulation cycle; the resulting state governs the
// next cycle.
//
// Concurrency contract: Step mutates only this controller and emits
// only on its own bus. Inputs is a value snapshot — under the sharded
// parallel engine each worker assembles it from state frozen at the
// preceding barrier (neighbor wants, punch holds), so controllers of
// different shards step concurrently without observing each other
// mid-transition.
func (c *Controller) Step(in Inputs) {
	if !c.enabled {
		return
	}
	if c.throttleLeft > 0 {
		c.throttleLeft--
	}
	switch c.state {
	case Active, Draining:
		if !in.Empty || in.Wakeup || in.PunchHold {
			c.state = Active
			c.idleCnt = 0
			return
		}
		c.idleCnt++
		if c.idleCnt < c.timeout {
			c.state = Draining
			return
		}
		if c.adaptive && c.throttleLeft > 0 {
			c.state = Draining // back-off: recent gatings were churn
			c.stats.SleepsBlocked++
			return
		}
		// Timeout expired with a quiet datapath: gate off.
		c.state = Gated
		c.idleCnt = 0
		c.gatedFor = 0
		if c.onGate != nil {
			c.onGate()
		}
		if c.bus != nil {
			c.bus.Emit(obs.Event{Kind: obs.KindPGGate, Node: c.node, A: c.bus.Now() - c.activeSince})
		}
	case Gated:
		c.stats.GatedCycles++
		c.gatedFor++
		if c.faultIgnoreWakeups {
			return
		}
		if in.Wakeup || in.PunchHold {
			if in.PunchHold {
				c.stats.WakeupsPunch++
			} else {
				c.stats.WakeupsWU++
			}
			c.beginWake(in.PunchHold)
		}
	case Waking:
		c.stats.WakingCycles++
		if in.BypassHold {
			return // wake paused until the bypass stream drains
		}
		c.wakeCnt--
		if c.wakeCnt <= 0 {
			c.state = Active
			c.idleCnt = 0
			if c.bus != nil {
				c.activeSince = c.bus.Now()
				c.bus.Emit(obs.Event{Kind: obs.KindPGActive, Node: c.node, A: int64(c.wakeup)})
			}
		}
	}
}

func (c *Controller) beginWake(punch bool) {
	c.state = Waking
	// The WU was observed this cycle (counted Gated); wakeup-1 further
	// Waking cycles make the router usable exactly Twakeup cycles after
	// the WU assertion.
	c.wakeCnt = c.wakeup - 1
	c.stats.GatingEvents++
	short := c.gatedFor < c.breakEven
	if short {
		c.stats.ShortGatings++
	}
	if c.bus != nil {
		ev := obs.Event{Kind: obs.KindPGWake, Node: c.node, A: c.gatedFor}
		if punch {
			ev.B = 1
		}
		if short {
			ev.Dir = 1
		}
		c.bus.Emit(ev)
	}
	if c.adaptive {
		if c.ewmaSamples == 0 {
			c.gatedEWMA = float64(c.gatedFor)
		} else {
			c.gatedEWMA = throttleDecay*c.gatedEWMA + (1-throttleDecay)*float64(c.gatedFor)
		}
		c.ewmaSamples++
		if c.ewmaSamples >= throttleMinSamples && c.gatedEWMA < float64(c.breakEven) {
			c.throttleLeft = throttleWindow
			c.ewmaSamples = 0 // re-sample fresh after the pause
		}
	}
	if c.onWake != nil {
		c.onWake()
	}
}

// Parked reports whether the controller has reached a fixed point under
// idle inputs: it is disabled (No-PG, Step is a no-op) or Gated (each
// idle Step only bumps the gated counters, which AdvanceIdleGated
// batches). The active-set scheduler's catch-up replays an unparked
// controller cycle by cycle — Active/Draining advancing the idle
// counter, Waking counting down Twakeup — and switches to the batched
// fast path the moment Parked becomes true.
func (c *Controller) Parked() bool { return !c.enabled || c.state == Gated }

// AdvanceIdleGated applies n cycles of Step with a parked controller's
// only possible inputs (empty datapath, no wakeup, no punch hold) in one
// call. For a Gated controller each such Step increments the gated-cycle
// counters and drains the adaptive-throttle window; for a disabled
// controller Step is a no-op. The active-set scheduler uses it to catch
// a skipped controller up when its router re-arms; the result is
// bit-identical to n individual Step calls.
func (c *Controller) AdvanceIdleGated(n int64) {
	if !c.enabled || n <= 0 {
		return
	}
	if c.state != Gated {
		panic(fmt.Sprintf("pg: AdvanceIdleGated in state %v", c.state))
	}
	if c.throttleLeft > 0 {
		c.throttleLeft -= n
		if c.throttleLeft < 0 {
			c.throttleLeft = 0
		}
	}
	c.stats.GatedCycles += n
	c.gatedFor += n
}

// SetFaultIgnoreWakeups installs a deliberate defect: a gated controller
// ignores WU and punch-hold levels and never wakes. It exists solely so
// the invariant engine's power-gating safety checks can be demonstrated
// against a real failure; see config.Faults.
func (c *Controller) SetFaultIgnoreWakeups(v bool) { c.faultIgnoreWakeups = v }

// ForceWake immediately begins waking a gated router (used by tests and
// by drain logic at the end of a simulation).
func (c *Controller) ForceWake() {
	if c.state == Gated {
		c.beginWake(false)
	}
}
