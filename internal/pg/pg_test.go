package pg

import (
	"testing"
	"testing/quick"
)

// idle is the all-clear input.
var idle = Inputs{Empty: true}

func newCtl() *Controller { return New(true, 4, 8, 10) }

func TestDisabledControllerStaysActive(t *testing.T) {
	c := New(false, 0, 0, 0)
	for i := 0; i < 100; i++ {
		c.Step(idle)
	}
	if c.State() != Active || !c.IsOn() || c.PGAsserted() {
		t.Errorf("disabled controller changed state: %v", c.State())
	}
}

func TestGatesAfterTimeout(t *testing.T) {
	c := newCtl()
	for i := 0; i < 3; i++ {
		c.Step(idle)
		if c.State() == Gated {
			t.Fatalf("gated after %d idle cycles (timeout 4)", i+1)
		}
		if !c.IsOn() {
			t.Fatalf("draining controller must remain on")
		}
	}
	c.Step(idle)
	if c.State() != Gated {
		t.Fatalf("not gated after 4 idle cycles: %v", c.State())
	}
	if c.IsOn() || !c.PGAsserted() {
		t.Error("gated controller must be off and assert PG")
	}
}

func TestActivityResetsTimeout(t *testing.T) {
	c := newCtl()
	c.Step(idle)
	c.Step(idle)
	c.Step(Inputs{Empty: false}) // traffic resets the countdown
	for i := 0; i < 3; i++ {
		c.Step(idle)
	}
	if c.State() == Gated {
		t.Error("countdown must restart after activity")
	}
	c.Step(idle)
	if c.State() != Gated {
		t.Error("should gate after 4 fresh idle cycles")
	}
}

func TestWakeupLevelPreventsGating(t *testing.T) {
	c := newCtl()
	for i := 0; i < 20; i++ {
		c.Step(Inputs{Empty: true, Wakeup: true})
	}
	if c.State() != Active {
		t.Errorf("WU level must hold the router active: %v", c.State())
	}
}

func TestPunchHoldPreventsGating(t *testing.T) {
	c := newCtl()
	for i := 0; i < 20; i++ {
		c.Step(Inputs{Empty: true, PunchHold: true})
	}
	if c.State() != Active {
		t.Errorf("punch hold must prevent gating: %v", c.State())
	}
	if s := c.Stats(); s.GatingEvents != 0 {
		t.Errorf("no gating events expected, got %d", s.GatingEvents)
	}
}

// gate drives c to the Gated state.
func gate(c *Controller) {
	for i := 0; i < 10; i++ {
		c.Step(idle)
	}
}

func TestWakeupTakesExactlyTwakeupCycles(t *testing.T) {
	// A WU observed in cycle t must make the router usable in cycle
	// t + Twakeup, matching Section 2.2's handshake timing.
	c := newCtl()
	gate(c)
	if c.State() != Gated {
		t.Fatal("setup failed")
	}
	c.Step(Inputs{Empty: true, Wakeup: true}) // cycle t
	if c.State() != Waking {
		t.Fatalf("state after WU: %v", c.State())
	}
	for i := 1; i < 8; i++ { // cycles t+1 .. t+7
		c.Step(Inputs{Empty: true})
		if i < 7 && c.State() != Waking {
			t.Fatalf("cycle t+%d: %v, want waking", i, c.State())
		}
	}
	if c.State() != Active {
		t.Fatalf("after t+7 steps: %v, want active (usable in cycle t+8)", c.State())
	}
}

func TestPunchWakesGatedRouter(t *testing.T) {
	c := newCtl()
	gate(c)
	c.Step(Inputs{Empty: true, PunchHold: true})
	if c.State() != Waking {
		t.Fatalf("punch must wake: %v", c.State())
	}
	s := c.Stats()
	if s.WakeupsPunch != 1 || s.WakeupsWU != 0 {
		t.Errorf("wakeup attribution: %+v", s)
	}
}

func TestShortGatingCounted(t *testing.T) {
	c := newCtl()
	gate(c)
	// Wake after only 3 gated cycles: below the 10-cycle break-even.
	c.Step(idle)
	c.Step(idle)
	c.Step(Inputs{Empty: true, Wakeup: true})
	s := c.Stats()
	if s.GatingEvents != 1 || s.ShortGatings != 1 {
		t.Errorf("expected one short gating event: %+v", s)
	}
}

func TestLongGatingNotShort(t *testing.T) {
	c := newCtl()
	gate(c)
	for i := 0; i < 20; i++ {
		c.Step(idle)
	}
	c.Step(Inputs{Empty: true, Wakeup: true})
	if s := c.Stats(); s.ShortGatings != 0 {
		t.Errorf("20-cycle gating flagged short: %+v", s)
	}
}

func TestForceWake(t *testing.T) {
	c := newCtl()
	gate(c)
	c.ForceWake()
	if c.State() != Waking {
		t.Errorf("ForceWake: %v", c.State())
	}
	c2 := newCtl()
	c2.ForceWake() // no-op when active
	if c2.State() != Active {
		t.Errorf("ForceWake on active: %v", c2.State())
	}
}

func TestHooksFire(t *testing.T) {
	c := newCtl()
	gates, wakes := 0, 0
	c.SetHooks(func() { gates++ }, func() { wakes++ })
	gate(c)
	c.Step(Inputs{Empty: true, Wakeup: true})
	if gates != 1 || wakes != 1 {
		t.Errorf("hooks: gates=%d wakes=%d", gates, wakes)
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { New(true, 1, 8, 10) },
		func() { New(true, 4, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFSMInvariants(t *testing.T) {
	// Property: under any input sequence, (a) PGAsserted and IsOn are
	// mutually exclusive and exhaustive, (b) the router never gates
	// while non-empty, (c) a gated router begins waking the cycle a
	// wakeup or punch arrives.
	f := func(seq []uint8) bool {
		c := newCtl()
		prev := c.State()
		for _, b := range seq {
			in := Inputs{Empty: b&1 == 0, Wakeup: b&2 != 0, PunchHold: b&4 != 0}
			c.Step(in)
			s := c.State()
			if c.IsOn() == c.PGAsserted() {
				return false
			}
			if s == Gated && prev != Gated && prev != Draining {
				return false // gating only from the idle countdown
			}
			if prev == Gated && (in.Wakeup || in.PunchHold) && s != Waking {
				return false
			}
			if s == Gated && !in.Empty && prev == Gated && !(in.Wakeup || in.PunchHold) {
				// A gated router cannot hold flits; Empty=false while
				// gated means the network violated the protocol — the
				// FSM itself stays gated, which is what we assert.
				if c.State() != Gated {
					return false
				}
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWakeRemaining(t *testing.T) {
	c := newCtl()
	gate(c)
	c.Step(Inputs{Empty: true, Wakeup: true})
	if c.WakeRemaining() != 7 {
		t.Errorf("WakeRemaining = %d, want 7", c.WakeRemaining())
	}
	c.Step(idle)
	if c.WakeRemaining() != 6 {
		t.Errorf("WakeRemaining = %d, want 6", c.WakeRemaining())
	}
	c2 := newCtl()
	if c2.WakeRemaining() != 0 {
		t.Error("active controller WakeRemaining must be 0")
	}
}

func TestStateStrings(t *testing.T) {
	names := map[State]string{Active: "active", Draining: "draining", Gated: "gated", Waking: "waking"}
	for s, w := range names {
		if s.String() != w {
			t.Errorf("%v", s)
		}
	}
}

func TestAdaptiveThrottleBacksOffOnChurn(t *testing.T) {
	c := newCtl()
	c.SetAdaptiveThrottle(true)
	// Induce churn: repeated 2-cycle gated periods (far below BET=10).
	for ev := 0; ev < 6; ev++ {
		gate(c)
		if c.State() != Gated {
			// Throttled: gating was refused, which is the point.
			break
		}
		c.Step(idle)
		c.Step(Inputs{Empty: true, Wakeup: true})
		for c.State() == Waking {
			c.Step(idle)
		}
	}
	// With the EWMA now far below break-even, a timeout expiry must be
	// vetoed.
	for i := 0; i < 10; i++ {
		c.Step(idle)
	}
	if c.State() == Gated {
		t.Fatal("throttle did not veto gating after sustained churn")
	}
	if c.Stats().SleepsBlocked == 0 {
		t.Error("vetoed sleeps not counted")
	}
}

func TestAdaptiveThrottleLeavesLongGatingsAlone(t *testing.T) {
	c := newCtl()
	c.SetAdaptiveThrottle(true)
	// Long gated periods (>= BET): the throttle must never engage.
	for ev := 0; ev < 6; ev++ {
		gate(c)
		if c.State() != Gated {
			t.Fatalf("event %d: gating refused despite healthy history", ev)
		}
		for i := 0; i < 40; i++ {
			c.Step(idle)
		}
		c.Step(Inputs{Empty: true, Wakeup: true})
		for c.State() == Waking {
			c.Step(idle)
		}
	}
	if c.Stats().SleepsBlocked != 0 {
		t.Errorf("throttle engaged on healthy gating: %+v", c.Stats())
	}
}
