package power

// Component identifies one energy-bearing router subsystem in the
// DSENT-style per-component decomposition. Every joule the Accountant
// charges is attributable to exactly one component; the per-component
// totals reconcile with the aggregate Breakdown classes within float
// tolerance (the aggregate model is retained as the regression oracle
// for the paper's numbers — see ComponentBreakdown.Classes).
type Component int

// The modelled components. The first four (buffers, crossbar,
// allocators, clock tree) leak; Constants.StaticFrac* apportions the
// router's leakage power across them. Links are charged dynamically to
// the sending router. The last three are power-gating machinery:
// punch-channel signalling, the WU/PG handshake, and the gate
// transition overhead itself (plus any residual leakage of the sleep
// switches while gated).
const (
	CompBuffer   Component = iota // input buffers: write + read energy
	CompCrossbar                  // crossbar traversal
	CompAlloc                     // VC + switch allocation (SA/VA stages)
	CompClock                     // clock tree (per powered-on cycle)
	CompLink                      // inter-router link traversal
	CompPunch                     // punch-channel assertion (Figure 5 sideband)
	CompWakeup                    // WU/PG handshake assertion
	CompGate                      // power-gate transitions + gated residual leak
	NumComponents
)

// String returns the component's stable export name (used as a CSV
// column stem and a JSON key stem).
func (c Component) String() string {
	switch c {
	case CompBuffer:
		return "buffer"
	case CompCrossbar:
		return "crossbar"
	case CompAlloc:
		return "alloc"
	case CompClock:
		return "clock"
	case CompLink:
		return "link"
	case CompPunch:
		return "punch"
	case CompWakeup:
		return "wakeup"
	case CompGate:
		return "gate"
	default:
		return "component?"
	}
}

// ComponentNames lists the component export names in enum order.
func ComponentNames() []string {
	names := make([]string, NumComponents)
	for c := Component(0); c < NumComponents; c++ {
		names[c] = c.String()
	}
	return names
}

// ComponentBreakdown is the per-component energy decomposition in
// joules, indexed by Component. It is a flat comparable value (tests
// compare whole RunResults with ==) derived purely from the integer
// event counters, so it is bit-identical across the serial, full-walk,
// and sharded parallel engines by construction.
type ComponentBreakdown [NumComponents]Breakdown

// Classes sums the components into the aggregate three-class Breakdown
// (dynamic / static / overhead). The result reconciles with the
// float-accumulated aggregate oracle within rounding tolerance: the
// oracle accumulates per event in simulation order, Classes multiplies
// folded counters once, so the two differ only by float summation
// error (the differential test in internal/experiments bounds it).
func (b *ComponentBreakdown) Classes() Breakdown {
	var t Breakdown
	for i := range b {
		t.Add(b[i])
	}
	return t
}

// Total returns the summed energy of every component.
func (b *ComponentBreakdown) Total() float64 {
	c := b.Classes()
	return c.Total()
}
