// Package power implements the event-based router energy model used to
// reproduce the paper's energy results (Figures 11 and 12). Its structure
// follows DSENT-style NoC power modelling at 45 nm: dynamic energy is
// charged per microarchitectural event (buffer write/read, arbitration,
// crossbar traversal, link traversal), static energy per cycle per
// powered-on router, and power-gating overhead per sleep/wake transition.
//
// The model keeps two reconciled views of the same charges:
//
//   - The aggregate Breakdown (dynamic / static / overhead) is
//     accumulated per event in per-router float accumulators, in
//     simulation order — the original model, retained as the regression
//     oracle for the paper's aggregate numbers (the seed-locked golden
//     suite pins it).
//   - The per-component ComponentBreakdown (buffers, crossbar,
//     allocators, clock tree, links, punch channel, WU handshake, gate
//     overhead) is derived on demand from the integer event counters.
//     Integer sums are order-insensitive, so this view is bit-identical
//     across the serial, full-walk, and sharded parallel engines.
//
// The constants are calibrated so that, at PARSEC-like loads on the
// paper's minimal 8x8 configuration, static power is ~64% of total router
// power (paper Section 2.1) and the break-even time is 10 cycles (paper
// Section 5): gating for fewer than BET cycles wastes energy, exactly as
// in the paper's accounting. Alternative calibrations are grouped into
// named presets (see PresetByName); the paper's numbers are the
// paper-hpca15 preset.
package power

// Constants is the set of per-event energies (joules) and per-cycle
// powers used by the model. The zero value is useless; start from
// DefaultConstants or a named preset (PresetByName).
type Constants struct {
	CycleTime float64 // seconds per cycle

	// Dynamic energy per flit per event (J).
	EBufferWrite float64
	EBufferRead  float64
	EArbitration float64 // VC + switch allocation per traversing flit
	ECrossbar    float64
	ELink        float64

	// EClockCycle is the clock tree's dynamic energy per powered-on
	// router-cycle. Zero in the paper-hpca15 preset (the paper folds the
	// clock into the static figure), nonzero in the scaled presets.
	EClockCycle float64

	// EPunchHop is the dynamic energy of asserting one punch channel for
	// one cycle (the narrow 5-bit/2-bit sideband of Figure 5 plus its
	// relay logic). Charged to power-gating overhead.
	EPunchHop float64

	// EWakeupSignal is the energy of one WU/PG handshake assertion.
	EWakeupSignal float64

	// PStaticRouter is the leakage power of one powered-on router (W).
	PStaticRouter float64

	// StaticFracBuffer..StaticFracClock apportion PStaticRouter across
	// the leaking components (input buffers, crossbar, allocators, clock
	// tree) for the per-component view. They must sum to 1 so the
	// component static energies reconcile with the aggregate oracle; the
	// apportionment itself never changes any aggregate number.
	StaticFracBuffer   float64
	StaticFracCrossbar float64
	StaticFracAlloc    float64
	StaticFracClock    float64

	// GatedLeakFrac is the fraction of PStaticRouter still leaking while
	// gated (sleep-switch and always-on PG controller leakage),
	// attributed to the gate component.
	GatedLeakFrac float64

	// BreakEvenCycles converts to the per-gating-event overhead: one
	// sleep/wake round trip (charging the power rail, distributing the
	// sleep signal) costs BreakEvenCycles * PStaticRouter * CycleTime.
	BreakEvenCycles int
}

// DefaultConstants returns the 45 nm, 2 GHz calibration described in the
// package comment — the paper-hpca15 preset.
func DefaultConstants() Constants {
	return Constants{
		CycleTime: 0.5e-9, // 2 GHz

		EBufferWrite: 85.0e-12,
		EBufferRead:  70.0e-12,
		EArbitration: 15.0e-12,
		ECrossbar:    110.0e-12,
		ELink:        140.0e-12,
		EClockCycle:  0,

		EPunchHop:     0.12e-12,
		EWakeupSignal: 0.05e-12,

		PStaticRouter: 28.0e-3, // 28 mW leakage per router
		GatedLeakFrac: 0.0,

		// DSENT-flavoured leakage apportionment for the per-component
		// view: buffers and the clock tree dominate, the crossbar wires
		// and allocator logic leak less. Sums to 1 exactly.
		StaticFracBuffer:   0.32,
		StaticFracCrossbar: 0.15,
		StaticFracAlloc:    0.08,
		StaticFracClock:    0.45,

		BreakEvenCycles: 10,
	}
}

// EStaticCycle returns the leakage energy of one powered-on router for
// one cycle.
func (c Constants) EStaticCycle() float64 { return c.PStaticRouter * c.CycleTime }

// EGatingOverhead returns the energy overhead of one complete power-gating
// event (power off + wake up), the quantity whose ratio to per-cycle
// leakage defines the break-even time.
func (c Constants) EGatingOverhead() float64 {
	return float64(c.BreakEvenCycles) * c.EStaticCycle()
}

// StaticFrac returns the fraction of PStaticRouter attributed to
// component comp (zero for components that are not modelled as leaking:
// links and the PG machinery, whose residual gated leak is charged via
// GatedLeakFrac instead).
func (c Constants) StaticFrac(comp Component) float64 {
	switch comp {
	case CompBuffer:
		return c.StaticFracBuffer
	case CompCrossbar:
		return c.StaticFracCrossbar
	case CompAlloc:
		return c.StaticFracAlloc
	case CompClock:
		return c.StaticFracClock
	default:
		return 0
	}
}

// RouterState is the power-relevant state of a router during a cycle.
type RouterState int

// Power-relevant router states. WakingUp routers leak like powered-on
// ones (the rail is charging) but cannot do work.
const (
	On RouterState = iota
	Gated
	WakingUp
)

// Breakdown is an energy decomposition in joules, matching the three bars
// of the paper's Figure 11.
type Breakdown struct {
	Dynamic  float64 // buffers, allocators, crossbars, clock, links
	Static   float64 // leakage while on or waking (+ residual gated leak)
	Overhead float64 // gating transitions, punch & wakeup signalling
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.Dynamic + b.Static + b.Overhead }

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Dynamic += o.Dynamic
	b.Static += o.Static
	b.Overhead += o.Overhead
}

// Event identifies one kind of component-tagged charge. Each emission
// site in the simulator maps to one or more events; each event maps to
// exactly one Component (see eventComponent), which is what makes the
// counter set sufficient to derive the per-component breakdown.
type Event int

// The counted events. The trailing two are state events (router-cycles
// in a power state), the rest are occurrence events.
const (
	EvBufferWrite Event = iota
	EvBufferRead
	EvArbitration
	EvCrossbar
	EvLink
	EvPunchHop
	EvWakeupSig
	EvGating
	EvGatedCycle // router-cycles spent gated
	EvOnCycle    // router-cycles spent on or waking
	numEvents
)

// eventCounters is one set of integer event counters, indexed by Event.
// Integer sums are order-insensitive, which is what lets the sharded
// parallel tick engine accumulate them in per-worker lanes and fold
// them afterwards while staying bit-identical to the serial engine.
type eventCounters [numEvents]int64

// add accumulates o into c.
func (c *eventCounters) add(o *eventCounters) {
	for ev := range c {
		c[ev] += o[ev]
	}
}

// counterLane is one worker's counter lane, padded so lanes on adjacent
// cache lines do not false-share under the parallel engine.
type counterLane struct {
	eventCounters
	_ [64]byte
}

// Accountant accumulates energy for a network of routers. It is not
// concurrency-safe in general; the simulator drives it from the single
// cycle loop. The exception is the sharded parallel tick engine: after
// SetLanes, the integer event counters are written to per-worker lanes
// (each router's events always come from the worker that owns it, per
// laneOf), the per-router float accumulators stay owner-exclusive by
// construction, and the coordinator calls FoldLanes between cycles.
type Accountant struct {
	C       Constants
	enabled bool

	perRouter []Breakdown
	cycles    int64 // enabled cycles accumulated

	// Folded event counters (for reporting, the per-component view, and
	// tests). With lanes installed these are only current after
	// FoldLanes.
	counts eventCounters

	lanes  []counterLane
	laneOf []int32 // router -> lane; nil selects the direct (serial) path
}

// NewAccountant returns an accountant for n routers using constants c.
// Accounting starts disabled (warmup); call SetEnabled(true) at the start
// of the measurement window.
func NewAccountant(n int, c Constants) *Accountant {
	return &Accountant{C: c, perRouter: make([]Breakdown, n)}
}

// SetEnabled turns accounting on or off (off during warmup and drain of
// unmeasured traffic).
func (a *Accountant) SetEnabled(v bool) { a.enabled = v }

// SetLanes installs nLanes per-worker counter lanes with the given
// router-to-lane ownership map (nil laneOf restores the direct serial
// path). The parallel engine calls it once at construction; each lane
// must only ever be written by its owning worker (or by the coordinator
// outside worker sections), and FoldLanes must run before anything reads
// the folded counters.
func (a *Accountant) SetLanes(laneOf []int32, nLanes int) {
	if laneOf == nil || nLanes <= 0 {
		a.laneOf, a.lanes = nil, nil
		return
	}
	a.laneOf = laneOf
	a.lanes = make([]counterLane, nLanes)
}

// FoldLanes drains every lane into the folded counters. Integer
// addition commutes, so the fold order cannot affect the result; the
// coordinator calls this once per cycle with all workers quiescent.
func (a *Accountant) FoldLanes() {
	for i := range a.lanes {
		a.counts.add(&a.lanes[i].eventCounters)
		a.lanes[i].eventCounters = eventCounters{}
	}
}

// counters returns the counter set router r's events accumulate into:
// the folded set on the serial path, the owning worker's lane once
// lanes are installed.
func (a *Accountant) counters(r int) *eventCounters {
	if a.laneOf == nil {
		return &a.counts
	}
	return &a.lanes[a.laneOf[r]].eventCounters
}

// Enabled reports whether accounting is active.
func (a *Accountant) Enabled() bool { return a.enabled }

// Count returns the folded count of event ev. With lanes installed the
// value is current only after FoldLanes.
func (a *Accountant) Count(ev Event) int64 { return a.counts[ev] }

// TickStatic charges one cycle of leakage for router r in state s, and
// must be called exactly once per router per cycle. Powered-on (and
// waking) routers additionally draw the clock tree's dynamic energy
// when the calibration models it.
func (a *Accountant) TickStatic(r int, s RouterState) {
	if !a.enabled {
		return
	}
	switch s {
	case Gated:
		a.counters(r)[EvGatedCycle]++
		if a.C.GatedLeakFrac > 0 {
			a.perRouter[r].Static += a.C.GatedLeakFrac * a.C.EStaticCycle()
		}
	default:
		a.counters(r)[EvOnCycle]++
		a.perRouter[r].Static += a.C.EStaticCycle()
		if a.C.EClockCycle != 0 {
			a.perRouter[r].Dynamic += a.C.EClockCycle
		}
	}
}

// TickStaticN charges n cycles of leakage for router r in state s, as if
// TickStatic had been called n times. The active-set scheduler uses it to
// catch a skipped (parked) router up; the per-router float accumulators
// are advanced by n individual additions so the result stays
// bit-identical to the per-cycle full-walk path.
func (a *Accountant) TickStaticN(r int, s RouterState, n int64) {
	if !a.enabled || n <= 0 {
		return
	}
	switch s {
	case Gated:
		a.counters(r)[EvGatedCycle] += n
		if a.C.GatedLeakFrac > 0 {
			e := a.C.GatedLeakFrac * a.C.EStaticCycle()
			for i := int64(0); i < n; i++ {
				a.perRouter[r].Static += e
			}
		}
	default:
		a.counters(r)[EvOnCycle] += n
		e := a.C.EStaticCycle()
		for i := int64(0); i < n; i++ {
			a.perRouter[r].Static += e
		}
		if a.C.EClockCycle != 0 {
			for i := int64(0); i < n; i++ {
				a.perRouter[r].Dynamic += a.C.EClockCycle
			}
		}
	}
}

// TickCycle advances the accountant's notion of elapsed measured time by
// one cycle. Call once per network cycle.
func (a *Accountant) TickCycle() {
	if a.enabled {
		a.cycles++
	}
}

// Cycles returns the number of measured cycles.
func (a *Accountant) Cycles() int64 { return a.cycles }

// BufferWrite charges a flit buffer write at router r (component:
// input buffers).
func (a *Accountant) BufferWrite(r int) {
	if !a.enabled {
		return
	}
	a.counters(r)[EvBufferWrite]++
	a.perRouter[r].Dynamic += a.C.EBufferWrite
}

// Traverse charges a flit's buffer read, arbitration, and crossbar
// traversal at router r — the switch-traversal event, spanning the
// buffer, allocator, and crossbar components.
func (a *Accountant) Traverse(r int) {
	if !a.enabled {
		return
	}
	c := a.counters(r)
	c[EvBufferRead]++
	c[EvArbitration]++
	c[EvCrossbar]++
	a.perRouter[r].Dynamic += a.C.EBufferRead + a.C.EArbitration + a.C.ECrossbar
}

// LinkHop charges a flit's traversal of one inter-router link, attributed
// to the sending router r (component: links).
func (a *Accountant) LinkHop(r int) {
	if !a.enabled {
		return
	}
	a.counters(r)[EvLink]++
	a.perRouter[r].Dynamic += a.C.ELink
}

// PunchHop charges one cycle of punch-channel assertion leaving router r
// (component: punch channel; overhead class).
func (a *Accountant) PunchHop(r int) {
	if !a.enabled {
		return
	}
	a.counters(r)[EvPunchHop]++
	a.perRouter[r].Overhead += a.C.EPunchHop
}

// WakeupSignal charges one WU/PG handshake assertion at router r
// (component: wakeup signalling; overhead class).
func (a *Accountant) WakeupSignal(r int) {
	if !a.enabled {
		return
	}
	a.counters(r)[EvWakeupSig]++
	a.perRouter[r].Overhead += a.C.EWakeupSignal
}

// GatingEvent charges the sleep/wake round-trip overhead of one
// power-gating event at router r (charged when the router begins
// waking; component: gate).
func (a *Accountant) GatingEvent(r int) {
	if !a.enabled {
		return
	}
	a.counters(r)[EvGating]++
	a.perRouter[r].Overhead += a.C.EGatingOverhead()
}

// Router returns router r's accumulated aggregate breakdown.
func (a *Accountant) Router(r int) Breakdown { return a.perRouter[r] }

// Network returns the network-wide aggregate breakdown (the float
// oracle, accumulated in simulation order).
func (a *Accountant) Network() Breakdown {
	var total Breakdown
	for i := range a.perRouter {
		total.Add(a.perRouter[i])
	}
	return total
}

// Components returns the network-wide per-component breakdown, derived
// from the folded integer event counters and the calibration. With
// lanes installed the result is current only after FoldLanes (the
// parallel engine folds once per cycle, so post-run and end-of-cycle
// reads always see folded counters). Being a pure function of integer
// counters, the result is bit-identical across tick engines.
func (a *Accountant) Components() ComponentBreakdown {
	var b ComponentBreakdown
	c := a.C
	n := &a.counts
	b[CompBuffer].Dynamic = float64(n[EvBufferWrite])*c.EBufferWrite + float64(n[EvBufferRead])*c.EBufferRead
	b[CompCrossbar].Dynamic = float64(n[EvCrossbar]) * c.ECrossbar
	b[CompAlloc].Dynamic = float64(n[EvArbitration]) * c.EArbitration
	b[CompClock].Dynamic = float64(n[EvOnCycle]) * c.EClockCycle
	b[CompLink].Dynamic = float64(n[EvLink]) * c.ELink

	es := c.EStaticCycle()
	on := float64(n[EvOnCycle])
	b[CompBuffer].Static = on * c.StaticFracBuffer * es
	b[CompCrossbar].Static = on * c.StaticFracCrossbar * es
	b[CompAlloc].Static = on * c.StaticFracAlloc * es
	b[CompClock].Static = on * c.StaticFracClock * es

	b[CompPunch].Overhead = float64(n[EvPunchHop]) * c.EPunchHop
	b[CompWakeup].Overhead = float64(n[EvWakeupSig]) * c.EWakeupSignal
	b[CompGate].Overhead = float64(n[EvGating]) * c.EGatingOverhead()
	b[CompGate].Static = float64(n[EvGatedCycle]) * c.GatedLeakFrac * es
	return b
}

// CycleTime returns the calibration's seconds per cycle (obs.PowerMeter).
func (a *Accountant) CycleTime() float64 { return a.C.CycleTime }

// AvgStaticPower returns the average network static power in watts over
// the measured window, counting gating overhead as static (the paper's
// "net static energy" convention for Figures 11 and 12).
func (a *Accountant) AvgStaticPower() float64 {
	if a.cycles == 0 {
		return 0
	}
	b := a.Network()
	return (b.Static + b.Overhead) / (float64(a.cycles) * a.C.CycleTime)
}

// StaticSavedFrac returns the fraction of No-PG static energy saved:
// 1 - (static+overhead) / (routers * cycles * EStaticCycle).
func (a *Accountant) StaticSavedFrac() float64 {
	if a.cycles == 0 {
		return 0
	}
	baseline := float64(len(a.perRouter)) * float64(a.cycles) * a.C.EStaticCycle()
	if baseline == 0 {
		return 0
	}
	b := a.Network()
	return 1 - (b.Static+b.Overhead)/baseline
}
