// Package power implements the event-based router energy model used to
// reproduce the paper's energy results (Figures 11 and 12). Its structure
// follows DSENT-style NoC power modelling at 45 nm: dynamic energy is
// charged per microarchitectural event (buffer write/read, arbitration,
// crossbar traversal, link traversal), static energy per cycle per
// powered-on router, and power-gating overhead per sleep/wake transition.
//
// The constants are calibrated so that, at PARSEC-like loads on the
// paper's minimal 8x8 configuration, static power is ~64% of total router
// power (paper Section 2.1) and the break-even time is 10 cycles (paper
// Section 5): gating for fewer than BET cycles wastes energy, exactly as
// in the paper's accounting.
package power

// Constants is the set of per-event energies (joules) and per-cycle
// powers used by the model. The zero value is useless; start from
// DefaultConstants.
type Constants struct {
	CycleTime float64 // seconds per cycle

	// Dynamic energy per flit per event (J).
	EBufferWrite float64
	EBufferRead  float64
	EArbitration float64 // VC + switch allocation per traversing flit
	ECrossbar    float64
	ELink        float64

	// EPunchHop is the dynamic energy of asserting one punch channel for
	// one cycle (the narrow 5-bit/2-bit sideband of Figure 5 plus its
	// relay logic). Charged to power-gating overhead.
	EPunchHop float64

	// EWakeupSignal is the energy of one WU/PG handshake assertion.
	EWakeupSignal float64

	// PStaticRouter is the leakage power of one powered-on router (W).
	PStaticRouter float64

	// GatedLeakFrac is the fraction of PStaticRouter still leaking while
	// gated (sleep-switch and always-on PG controller leakage).
	GatedLeakFrac float64

	// BreakEvenCycles converts to the per-gating-event overhead: one
	// sleep/wake round trip (charging the power rail, distributing the
	// sleep signal) costs BreakEvenCycles * PStaticRouter * CycleTime.
	BreakEvenCycles int
}

// DefaultConstants returns the 45 nm, 2 GHz calibration described in the
// package comment.
func DefaultConstants() Constants {
	return Constants{
		CycleTime: 0.5e-9, // 2 GHz

		EBufferWrite: 85.0e-12,
		EBufferRead:  70.0e-12,
		EArbitration: 15.0e-12,
		ECrossbar:    110.0e-12,
		ELink:        140.0e-12,

		EPunchHop:     0.12e-12,
		EWakeupSignal: 0.05e-12,

		PStaticRouter: 28.0e-3, // 28 mW leakage per router
		GatedLeakFrac: 0.0,

		BreakEvenCycles: 10,
	}
}

// EStaticCycle returns the leakage energy of one powered-on router for
// one cycle.
func (c Constants) EStaticCycle() float64 { return c.PStaticRouter * c.CycleTime }

// EGatingOverhead returns the energy overhead of one complete power-gating
// event (power off + wake up), the quantity whose ratio to per-cycle
// leakage defines the break-even time.
func (c Constants) EGatingOverhead() float64 {
	return float64(c.BreakEvenCycles) * c.EStaticCycle()
}

// RouterState is the power-relevant state of a router during a cycle.
type RouterState int

// Power-relevant router states. WakingUp routers leak like powered-on
// ones (the rail is charging) but cannot do work.
const (
	On RouterState = iota
	Gated
	WakingUp
)

// Breakdown is an energy decomposition in joules, matching the three bars
// of the paper's Figure 11.
type Breakdown struct {
	Dynamic  float64 // buffers, allocators, crossbars, links
	Static   float64 // leakage while on or waking
	Overhead float64 // gating transitions, punch & wakeup signalling
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.Dynamic + b.Static + b.Overhead }

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Dynamic += o.Dynamic
	b.Static += o.Static
	b.Overhead += o.Overhead
}

// eventCounters is the set of integer event counters the accountant
// exposes (embedded, so they read as Accountant fields). Integer sums
// are order-insensitive, which is what lets the sharded parallel tick
// engine accumulate them in per-worker lanes and fold them afterwards
// while staying bit-identical to the serial engine.
type eventCounters struct {
	BufferWrites int64
	BufferReads  int64
	Crossbars    int64
	LinkHops     int64
	PunchHops    int64
	WakeupSigs   int64
	GatingEvents int64
	GatedCycles  int64 // router-cycles spent gated
	OnCycles     int64 // router-cycles spent on or waking
}

// add accumulates o into c.
func (c *eventCounters) add(o *eventCounters) {
	c.BufferWrites += o.BufferWrites
	c.BufferReads += o.BufferReads
	c.Crossbars += o.Crossbars
	c.LinkHops += o.LinkHops
	c.PunchHops += o.PunchHops
	c.WakeupSigs += o.WakeupSigs
	c.GatingEvents += o.GatingEvents
	c.GatedCycles += o.GatedCycles
	c.OnCycles += o.OnCycles
}

// counterLane is one worker's counter lane, padded so lanes on adjacent
// cache lines do not false-share under the parallel engine.
type counterLane struct {
	eventCounters
	_ [64]byte
}

// Accountant accumulates energy for a network of routers. It is not
// concurrency-safe in general; the simulator drives it from the single
// cycle loop. The exception is the sharded parallel tick engine: after
// SetLanes, the integer event counters are written to per-worker lanes
// (each router's events always come from the worker that owns it, per
// laneOf), the per-router float accumulators stay owner-exclusive by
// construction, and the coordinator calls FoldLanes between cycles.
type Accountant struct {
	C       Constants
	enabled bool

	perRouter []Breakdown
	cycles    int64 // enabled cycles accumulated

	// Event counters (for reporting and tests); embedded so they are
	// addressable as a.BufferWrites etc. With lanes installed these are
	// only current after FoldLanes.
	eventCounters

	lanes  []counterLane
	laneOf []int32 // router -> lane; nil selects the direct (serial) path
}

// NewAccountant returns an accountant for n routers using constants c.
// Accounting starts disabled (warmup); call SetEnabled(true) at the start
// of the measurement window.
func NewAccountant(n int, c Constants) *Accountant {
	return &Accountant{C: c, perRouter: make([]Breakdown, n)}
}

// SetEnabled turns accounting on or off (off during warmup and drain of
// unmeasured traffic).
func (a *Accountant) SetEnabled(v bool) { a.enabled = v }

// SetLanes installs nLanes per-worker counter lanes with the given
// router-to-lane ownership map (nil laneOf restores the direct serial
// path). The parallel engine calls it once at construction; each lane
// must only ever be written by its owning worker (or by the coordinator
// outside worker sections), and FoldLanes must run before anything reads
// the embedded counters.
func (a *Accountant) SetLanes(laneOf []int32, nLanes int) {
	if laneOf == nil || nLanes <= 0 {
		a.laneOf, a.lanes = nil, nil
		return
	}
	a.laneOf = laneOf
	a.lanes = make([]counterLane, nLanes)
}

// FoldLanes drains every lane into the embedded counters. Integer
// addition commutes, so the fold order cannot affect the result; the
// coordinator calls this once per cycle with all workers quiescent.
func (a *Accountant) FoldLanes() {
	for i := range a.lanes {
		a.eventCounters.add(&a.lanes[i].eventCounters)
		a.lanes[i].eventCounters = eventCounters{}
	}
}

// counters returns the counter set router r's events accumulate into:
// the embedded struct on the serial path, the owning worker's lane once
// lanes are installed.
func (a *Accountant) counters(r int) *eventCounters {
	if a.laneOf == nil {
		return &a.eventCounters
	}
	return &a.lanes[a.laneOf[r]].eventCounters
}

// Enabled reports whether accounting is active.
func (a *Accountant) Enabled() bool { return a.enabled }

// TickStatic charges one cycle of leakage for router r in state s, and
// must be called exactly once per router per cycle.
func (a *Accountant) TickStatic(r int, s RouterState) {
	if !a.enabled {
		return
	}
	switch s {
	case Gated:
		a.counters(r).GatedCycles++
		if a.C.GatedLeakFrac > 0 {
			a.perRouter[r].Static += a.C.GatedLeakFrac * a.C.EStaticCycle()
		}
	default:
		a.counters(r).OnCycles++
		a.perRouter[r].Static += a.C.EStaticCycle()
	}
}

// TickStaticN charges n cycles of leakage for router r in state s, as if
// TickStatic had been called n times. The active-set scheduler uses it to
// catch a skipped (parked) router up; the per-router Static accumulator
// is advanced by n individual float additions so the result stays
// bit-identical to the per-cycle full-walk path.
func (a *Accountant) TickStaticN(r int, s RouterState, n int64) {
	if !a.enabled || n <= 0 {
		return
	}
	switch s {
	case Gated:
		a.counters(r).GatedCycles += n
		if a.C.GatedLeakFrac > 0 {
			e := a.C.GatedLeakFrac * a.C.EStaticCycle()
			for i := int64(0); i < n; i++ {
				a.perRouter[r].Static += e
			}
		}
	default:
		a.counters(r).OnCycles += n
		e := a.C.EStaticCycle()
		for i := int64(0); i < n; i++ {
			a.perRouter[r].Static += e
		}
	}
}

// TickCycle advances the accountant's notion of elapsed measured time by
// one cycle. Call once per network cycle.
func (a *Accountant) TickCycle() {
	if a.enabled {
		a.cycles++
	}
}

// Cycles returns the number of measured cycles.
func (a *Accountant) Cycles() int64 { return a.cycles }

// BufferWrite charges a flit buffer write at router r.
func (a *Accountant) BufferWrite(r int) {
	if !a.enabled {
		return
	}
	a.counters(r).BufferWrites++
	a.perRouter[r].Dynamic += a.C.EBufferWrite
}

// Traverse charges a flit's buffer read, arbitration, and crossbar
// traversal at router r (the switch-traversal event).
func (a *Accountant) Traverse(r int) {
	if !a.enabled {
		return
	}
	c := a.counters(r)
	c.BufferReads++
	c.Crossbars++
	a.perRouter[r].Dynamic += a.C.EBufferRead + a.C.EArbitration + a.C.ECrossbar
}

// LinkHop charges a flit's traversal of one inter-router link, attributed
// to the sending router r.
func (a *Accountant) LinkHop(r int) {
	if !a.enabled {
		return
	}
	a.counters(r).LinkHops++
	a.perRouter[r].Dynamic += a.C.ELink
}

// PunchHop charges one cycle of punch-channel assertion leaving router r.
func (a *Accountant) PunchHop(r int) {
	if !a.enabled {
		return
	}
	a.counters(r).PunchHops++
	a.perRouter[r].Overhead += a.C.EPunchHop
}

// WakeupSignal charges one WU/PG handshake assertion at router r.
func (a *Accountant) WakeupSignal(r int) {
	if !a.enabled {
		return
	}
	a.counters(r).WakeupSigs++
	a.perRouter[r].Overhead += a.C.EWakeupSignal
}

// GatingEvent charges the sleep/wake round-trip overhead of one
// power-gating event at router r (charged when the router begins waking).
func (a *Accountant) GatingEvent(r int) {
	if !a.enabled {
		return
	}
	a.counters(r).GatingEvents++
	a.perRouter[r].Overhead += a.C.EGatingOverhead()
}

// Router returns router r's accumulated breakdown.
func (a *Accountant) Router(r int) Breakdown { return a.perRouter[r] }

// Network returns the network-wide breakdown.
func (a *Accountant) Network() Breakdown {
	var total Breakdown
	for i := range a.perRouter {
		total.Add(a.perRouter[i])
	}
	return total
}

// AvgStaticPower returns the average network static power in watts over
// the measured window, counting gating overhead as static (the paper's
// "net static energy" convention for Figures 11 and 12).
func (a *Accountant) AvgStaticPower() float64 {
	if a.cycles == 0 {
		return 0
	}
	b := a.Network()
	return (b.Static + b.Overhead) / (float64(a.cycles) * a.C.CycleTime)
}

// StaticSavedFrac returns the fraction of No-PG static energy saved:
// 1 - (static+overhead) / (routers * cycles * EStaticCycle).
func (a *Accountant) StaticSavedFrac() float64 {
	if a.cycles == 0 {
		return 0
	}
	baseline := float64(len(a.perRouter)) * float64(a.cycles) * a.C.EStaticCycle()
	if baseline == 0 {
		return 0
	}
	b := a.Network()
	return 1 - (b.Static+b.Overhead)/baseline
}
