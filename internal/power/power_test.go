package power

import (
	"math"
	"testing"
)

func TestBreakEvenIdentity(t *testing.T) {
	// The defining property of the break-even time: the overhead of one
	// gating event equals BET cycles of leakage. Gating for exactly BET
	// cycles is therefore energy-neutral.
	c := DefaultConstants()
	if got, want := c.EGatingOverhead(), float64(c.BreakEvenCycles)*c.EStaticCycle(); math.Abs(got-want) > 1e-18 {
		t.Errorf("EGatingOverhead = %g, want %g", got, want)
	}
}

func TestGatingForBreakEvenCyclesIsEnergyNeutral(t *testing.T) {
	c := DefaultConstants()

	// Router A: stays on for BET cycles. Router B: gated for BET cycles,
	// then charged one gating event. Net static+overhead must be equal.
	a := NewAccountant(2, c)
	a.SetEnabled(true)
	for i := 0; i < c.BreakEvenCycles; i++ {
		a.TickStatic(0, On)
		a.TickStatic(1, Gated)
		a.TickCycle()
	}
	a.GatingEvent(1)
	eA := a.Router(0)
	eB := a.Router(1)
	if math.Abs((eA.Static+eA.Overhead)-(eB.Static+eB.Overhead)) > 1e-18 {
		t.Errorf("break-even violated: on=%g gated=%g", eA.Static+eA.Overhead, eB.Static+eB.Overhead)
	}
}

func TestDisabledAccountantChargesNothing(t *testing.T) {
	a := NewAccountant(1, DefaultConstants())
	a.TickStatic(0, On)
	a.BufferWrite(0)
	a.Traverse(0)
	a.LinkHop(0)
	a.PunchHop(0)
	a.GatingEvent(0)
	a.TickCycle()
	if tot := a.Network().Total(); tot != 0 {
		t.Errorf("disabled accountant accumulated %g J", tot)
	}
	if a.Cycles() != 0 {
		t.Error("disabled accountant counted cycles")
	}
}

func TestEventEnergies(t *testing.T) {
	c := DefaultConstants()
	a := NewAccountant(1, c)
	a.SetEnabled(true)
	a.BufferWrite(0)
	a.Traverse(0)
	a.LinkHop(0)
	want := c.EBufferWrite + c.EBufferRead + c.EArbitration + c.ECrossbar + c.ELink
	if got := a.Router(0).Dynamic; math.Abs(got-want) > 1e-18 {
		t.Errorf("dynamic = %g, want %g", got, want)
	}
	if a.BufferWrites != 1 || a.BufferReads != 1 || a.Crossbars != 1 || a.LinkHops != 1 {
		t.Error("event counters")
	}
}

func TestWakingLeaksLikeOn(t *testing.T) {
	a := NewAccountant(2, DefaultConstants())
	a.SetEnabled(true)
	a.TickStatic(0, On)
	a.TickStatic(1, WakingUp)
	if a.Router(0).Static != a.Router(1).Static {
		t.Error("a waking router must leak like a powered-on one")
	}
}

func TestGatedLeakFraction(t *testing.T) {
	c := DefaultConstants()
	c.GatedLeakFrac = 0.1
	a := NewAccountant(1, c)
	a.SetEnabled(true)
	a.TickStatic(0, Gated)
	want := 0.1 * c.EStaticCycle()
	if got := a.Router(0).Static; math.Abs(got-want) > 1e-20 {
		t.Errorf("gated leak = %g, want %g", got, want)
	}
}

func TestStaticSavedFrac(t *testing.T) {
	c := DefaultConstants()
	a := NewAccountant(1, c)
	a.SetEnabled(true)
	// 100 cycles: 25 on, 75 gated, no overhead => 75% saved.
	for i := 0; i < 100; i++ {
		if i < 25 {
			a.TickStatic(0, On)
		} else {
			a.TickStatic(0, Gated)
		}
		a.TickCycle()
	}
	if got := a.StaticSavedFrac(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("StaticSavedFrac = %g, want 0.75", got)
	}
}

func TestAvgStaticPowerAlwaysOn(t *testing.T) {
	// A single always-on router's average static power equals its
	// leakage power.
	c := DefaultConstants()
	a := NewAccountant(1, c)
	a.SetEnabled(true)
	for i := 0; i < 1000; i++ {
		a.TickStatic(0, On)
		a.TickCycle()
	}
	if got := a.AvgStaticPower(); math.Abs(got-c.PStaticRouter) > 1e-9 {
		t.Errorf("AvgStaticPower = %g, want %g", got, c.PStaticRouter)
	}
}

func TestBreakdownAdd(t *testing.T) {
	b := Breakdown{Dynamic: 1, Static: 2, Overhead: 3}
	b.Add(Breakdown{Dynamic: 10, Static: 20, Overhead: 30})
	if b.Dynamic != 11 || b.Static != 22 || b.Overhead != 33 || b.Total() != 66 {
		t.Errorf("Add/Total: %+v", b)
	}
}

func TestNetworkAggregates(t *testing.T) {
	a := NewAccountant(3, DefaultConstants())
	a.SetEnabled(true)
	a.BufferWrite(0)
	a.BufferWrite(1)
	a.BufferWrite(2)
	want := 3 * a.C.EBufferWrite
	if got := a.Network().Dynamic; math.Abs(got-want) > 1e-18 {
		t.Errorf("network dynamic = %g, want %g", got, want)
	}
}

func TestZeroCycleGuards(t *testing.T) {
	a := NewAccountant(1, DefaultConstants())
	if a.AvgStaticPower() != 0 || a.StaticSavedFrac() != 0 {
		t.Error("zero-cycle accountant must report zeros, not NaN")
	}
}
