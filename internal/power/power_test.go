package power

import (
	"math"
	"testing"
)

func TestBreakEvenIdentity(t *testing.T) {
	// The defining property of the break-even time: the overhead of one
	// gating event equals BET cycles of leakage. Gating for exactly BET
	// cycles is therefore energy-neutral.
	c := DefaultConstants()
	if got, want := c.EGatingOverhead(), float64(c.BreakEvenCycles)*c.EStaticCycle(); math.Abs(got-want) > 1e-18 {
		t.Errorf("EGatingOverhead = %g, want %g", got, want)
	}
}

func TestGatingForBreakEvenCyclesIsEnergyNeutral(t *testing.T) {
	c := DefaultConstants()

	// Router A: stays on for BET cycles. Router B: gated for BET cycles,
	// then charged one gating event. Net static+overhead must be equal.
	a := NewAccountant(2, c)
	a.SetEnabled(true)
	for i := 0; i < c.BreakEvenCycles; i++ {
		a.TickStatic(0, On)
		a.TickStatic(1, Gated)
		a.TickCycle()
	}
	a.GatingEvent(1)
	eA := a.Router(0)
	eB := a.Router(1)
	if math.Abs((eA.Static+eA.Overhead)-(eB.Static+eB.Overhead)) > 1e-18 {
		t.Errorf("break-even violated: on=%g gated=%g", eA.Static+eA.Overhead, eB.Static+eB.Overhead)
	}
}

func TestDisabledAccountantChargesNothing(t *testing.T) {
	a := NewAccountant(1, DefaultConstants())
	a.TickStatic(0, On)
	a.BufferWrite(0)
	a.Traverse(0)
	a.LinkHop(0)
	a.PunchHop(0)
	a.GatingEvent(0)
	a.TickCycle()
	if tot := a.Network().Total(); tot != 0 {
		t.Errorf("disabled accountant accumulated %g J", tot)
	}
	if a.Cycles() != 0 {
		t.Error("disabled accountant counted cycles")
	}
}

func TestEventEnergies(t *testing.T) {
	c := DefaultConstants()
	a := NewAccountant(1, c)
	a.SetEnabled(true)
	a.BufferWrite(0)
	a.Traverse(0)
	a.LinkHop(0)
	want := c.EBufferWrite + c.EBufferRead + c.EArbitration + c.ECrossbar + c.ELink
	if got := a.Router(0).Dynamic; math.Abs(got-want) > 1e-18 {
		t.Errorf("dynamic = %g, want %g", got, want)
	}
	if a.Count(EvBufferWrite) != 1 || a.Count(EvBufferRead) != 1 ||
		a.Count(EvArbitration) != 1 || a.Count(EvCrossbar) != 1 || a.Count(EvLink) != 1 {
		t.Error("event counters")
	}
}

func TestWakingLeaksLikeOn(t *testing.T) {
	a := NewAccountant(2, DefaultConstants())
	a.SetEnabled(true)
	a.TickStatic(0, On)
	a.TickStatic(1, WakingUp)
	if a.Router(0).Static != a.Router(1).Static {
		t.Error("a waking router must leak like a powered-on one")
	}
}

func TestGatedLeakFraction(t *testing.T) {
	c := DefaultConstants()
	c.GatedLeakFrac = 0.1
	a := NewAccountant(1, c)
	a.SetEnabled(true)
	a.TickStatic(0, Gated)
	want := 0.1 * c.EStaticCycle()
	if got := a.Router(0).Static; math.Abs(got-want) > 1e-20 {
		t.Errorf("gated leak = %g, want %g", got, want)
	}
}

func TestStaticSavedFrac(t *testing.T) {
	c := DefaultConstants()
	a := NewAccountant(1, c)
	a.SetEnabled(true)
	// 100 cycles: 25 on, 75 gated, no overhead => 75% saved.
	for i := 0; i < 100; i++ {
		if i < 25 {
			a.TickStatic(0, On)
		} else {
			a.TickStatic(0, Gated)
		}
		a.TickCycle()
	}
	if got := a.StaticSavedFrac(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("StaticSavedFrac = %g, want 0.75", got)
	}
}

func TestAvgStaticPowerAlwaysOn(t *testing.T) {
	// A single always-on router's average static power equals its
	// leakage power.
	c := DefaultConstants()
	a := NewAccountant(1, c)
	a.SetEnabled(true)
	for i := 0; i < 1000; i++ {
		a.TickStatic(0, On)
		a.TickCycle()
	}
	if got := a.AvgStaticPower(); math.Abs(got-c.PStaticRouter) > 1e-9 {
		t.Errorf("AvgStaticPower = %g, want %g", got, c.PStaticRouter)
	}
}

func TestBreakdownAdd(t *testing.T) {
	b := Breakdown{Dynamic: 1, Static: 2, Overhead: 3}
	b.Add(Breakdown{Dynamic: 10, Static: 20, Overhead: 30})
	if b.Dynamic != 11 || b.Static != 22 || b.Overhead != 33 || b.Total() != 66 {
		t.Errorf("Add/Total: %+v", b)
	}
}

func TestNetworkAggregates(t *testing.T) {
	a := NewAccountant(3, DefaultConstants())
	a.SetEnabled(true)
	a.BufferWrite(0)
	a.BufferWrite(1)
	a.BufferWrite(2)
	want := 3 * a.C.EBufferWrite
	if got := a.Network().Dynamic; math.Abs(got-want) > 1e-18 {
		t.Errorf("network dynamic = %g, want %g", got, want)
	}
}

func TestZeroCycleGuards(t *testing.T) {
	a := NewAccountant(1, DefaultConstants())
	if a.AvgStaticPower() != 0 || a.StaticSavedFrac() != 0 {
		t.Error("zero-cycle accountant must report zeros, not NaN")
	}
}

func TestPresetRegistry(t *testing.T) {
	names := Presets()
	if len(names) < 2 {
		t.Fatalf("expected multiple presets, got %v", names)
	}
	seen := false
	for _, n := range names {
		c, ok := PresetByName(n)
		if !ok {
			t.Fatalf("Presets lists %q but PresetByName rejects it", n)
		}
		if c.CycleTime <= 0 || c.PStaticRouter <= 0 {
			t.Errorf("preset %q has degenerate constants: %+v", n, c)
		}
		// The static apportionment must sum to 1 so the per-component
		// static energies reconcile with the aggregate oracle.
		sum := c.StaticFracBuffer + c.StaticFracCrossbar + c.StaticFracAlloc + c.StaticFracClock
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("preset %q static fractions sum to %g, want 1", n, sum)
		}
		if n == DefaultPreset {
			seen = true
			if c != DefaultConstants() {
				t.Errorf("preset %q must be exactly DefaultConstants (the golden suite pins it)", n)
			}
		}
	}
	if !seen {
		t.Fatalf("default preset %q missing from %v", DefaultPreset, names)
	}
	if c, ok := PresetByName(""); !ok || c != DefaultConstants() {
		t.Error("empty name must select the default preset")
	}
	if _, ok := PresetByName("no-such-preset"); ok {
		t.Error("unknown preset accepted")
	}
}

func TestComponentNames(t *testing.T) {
	names := ComponentNames()
	if len(names) != int(NumComponents) {
		t.Fatalf("ComponentNames has %d entries, want %d", len(names), NumComponents)
	}
	uniq := map[string]bool{}
	for _, n := range names {
		if n == "" || n == "component?" || uniq[n] {
			t.Errorf("bad or duplicate component name %q", n)
		}
		uniq[n] = true
	}
}

// chargeScript drives a fixed mixed workload against an accountant:
// every event kind on a spread of routers, so both views accumulate
// nontrivial values in every class.
func chargeScript(a *Accountant, routers int) {
	a.SetEnabled(true)
	for cyc := 0; cyc < 200; cyc++ {
		for r := 0; r < routers; r++ {
			st := On
			if (r+cyc)%3 == 0 {
				st = Gated
			}
			a.TickStatic(r, st)
			if (r+cyc)%2 == 0 {
				a.BufferWrite(r)
			}
			if (r+cyc)%4 == 0 {
				a.Traverse(r)
				a.LinkHop(r)
			}
			if (r+cyc)%7 == 0 {
				a.PunchHop(r)
			}
			if (r+cyc)%11 == 0 {
				a.WakeupSignal(r)
			}
			if (r+cyc)%13 == 0 {
				a.GatingEvent(r)
			}
		}
		a.TickCycle()
	}
}

// TestComponentsReconcileWithAggregate is the unit-level form of the
// aggregate-oracle differential: the per-component class sums must
// match the float-accumulated aggregate within summation tolerance,
// for every preset (including ones with clock dynamic energy and
// residual gated leak).
func TestComponentsReconcileWithAggregate(t *testing.T) {
	for _, name := range Presets() {
		c, _ := PresetByName(name)
		t.Run(name, func(t *testing.T) {
			a := NewAccountant(16, c)
			chargeScript(a, 16)
			comp := a.Components()
			got, want := comp.Classes(), a.Network()
			for _, pair := range []struct {
				label     string
				got, want float64
			}{
				{"dynamic", got.Dynamic, want.Dynamic},
				{"static", got.Static, want.Static},
				{"overhead", got.Overhead, want.Overhead},
				{"total", comp.Total(), want.Total()},
			} {
				if relDiff(pair.got, pair.want) > 1e-9 {
					t.Errorf("%s: components=%g aggregate=%g", pair.label, pair.got, pair.want)
				}
			}
		})
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}

// TestLaneFoldBitIdentical is the table-driven lane-folding proof at
// the accountant level: the same charge stream applied through 2/4/8
// lanes (with routers distributed round-robin) folds to counters — and
// therefore a per-component breakdown — bit-identical to the serial
// path.
func TestLaneFoldBitIdentical(t *testing.T) {
	const routers = 16
	serial := NewAccountant(routers, DefaultConstants())
	chargeScript(serial, routers)
	want := serial.Components()

	for _, lanes := range []int{2, 4, 8} {
		a := NewAccountant(routers, DefaultConstants())
		laneOf := make([]int32, routers)
		for r := range laneOf {
			laneOf[r] = int32(r % lanes)
		}
		a.SetLanes(laneOf, lanes)
		chargeScript(a, routers)
		a.FoldLanes()
		if got := a.Components(); got != want {
			t.Errorf("lanes=%d: per-component breakdown diverged from serial\n got=%+v\nwant=%+v", lanes, got, want)
		}
		for ev := Event(0); ev < numEvents; ev++ {
			if a.Count(ev) != serial.Count(ev) {
				t.Errorf("lanes=%d: event %d count %d != serial %d", lanes, ev, a.Count(ev), serial.Count(ev))
			}
		}
		// Folding again must be a no-op (lanes were zeroed).
		a.FoldLanes()
		if got := a.Components(); got != want {
			t.Errorf("lanes=%d: second fold changed the breakdown", lanes)
		}
	}
}
