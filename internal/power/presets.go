package power

import "sort"

// DefaultPreset is the calibration every configuration uses unless it
// selects another: the constants the paper's aggregate numbers were
// locked against (the golden suite pins them).
const DefaultPreset = "paper-hpca15"

// presets is the calibrated Constants registry. paper-hpca15 must stay
// exactly DefaultConstants — the seed-locked golden suite and the
// committed README table are captured against it.
var presets = map[string]func() Constants{
	DefaultPreset: DefaultConstants,

	// dsent-22nm: a 22 nm scaling of the default calibration in the
	// spirit of DSENT's technology roll-down — roughly halved dynamic
	// event energies, 0.6x leakage, an explicit clock-tree dynamic
	// charge per powered-on cycle, and a small residual sleep-switch
	// leak while gated. Illustrative calibration, not a paper claim.
	"dsent-22nm": func() Constants {
		c := DefaultConstants()
		c.EBufferWrite = 42.0e-12
		c.EBufferRead = 35.0e-12
		c.EArbitration = 8.0e-12
		c.ECrossbar = 55.0e-12
		c.ELink = 75.0e-12
		c.EClockCycle = 9.0e-12
		c.EPunchHop = 0.06e-12
		c.EWakeupSignal = 0.03e-12
		c.PStaticRouter = 16.8e-3
		c.GatedLeakFrac = 0.02
		c.StaticFracBuffer = 0.30
		c.StaticFracCrossbar = 0.13
		c.StaticFracAlloc = 0.07
		c.StaticFracClock = 0.50
		return c
	},

	// leaky-32nm: a leakage-dominated corner (hot die, low-Vt library):
	// 1.6x the default router leakage, a visible clock-tree dynamic
	// term, and 5% residual leak while gated. Makes power gating look
	// as good as it ever will; useful as the other end of the
	// sensitivity range.
	"leaky-32nm": func() Constants {
		c := DefaultConstants()
		c.EClockCycle = 5.0e-12
		c.PStaticRouter = 45.0e-3
		c.GatedLeakFrac = 0.05
		return c
	},
}

// Presets returns the known preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PresetByName returns the named calibration ("" selects
// DefaultPreset). The bool reports whether the name is known; callers
// that accept user input should surface unknown names loudly
// (config.Validate wraps this in a typed error).
func PresetByName(name string) (Constants, bool) {
	if name == "" {
		name = DefaultPreset
	}
	f, ok := presets[name]
	if !ok {
		return Constants{}, false
	}
	return f(), true
}
