// Package router implements the cycle-accurate wormhole virtual-channel
// router of the paper's Figure 3: input-buffered, credit-based flow
// control, per-virtual-network VCs, look-ahead routing, and either a
// 4-stage pipeline (BW, VA, SA, ST) or the 3-stage variant with
// speculative switch allocation. Power-gating integration follows
// Figure 2: a gated or waking neighbor is masked in the switch allocator
// and traffic toward it stalls, accruing the paper's blocking statistics.
package router

import (
	"fmt"
	"math/bits"

	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/link"
	"powerpunch/internal/mesh"
	"powerpunch/internal/obs"
	"powerpunch/internal/pg"
	"powerpunch/internal/power"
	"powerpunch/internal/scheme"
	"powerpunch/internal/topo"
)

// Credit is the upstream flow-control token: one buffer slot freed in
// virtual channel VC of the receiving input port.
type Credit struct {
	VC int
}

// FlitInTransit pairs a flit with the downstream virtual channel it was
// allocated to. Bypass marks a flit flying over a gated router on the
// bypass latch path (FlyOver-style schemes): it is set only on the
// first link of the two-link hop, and VC then names an input VC of the
// router two hops out — the network forwards the flit across the gated
// router's output pipe (untagged) instead of delivering it into its
// buffers.
type FlitInTransit struct {
	Flit   *flit.Flit
	VC     int
	Bypass bool
}

// vc is one input virtual channel: a FIFO of flits plus the routing state
// of the packet currently at its front.
type vc struct {
	idx   int // global VC index within the port
	depth int

	buf []*flit.Flit
	arr []int64 // arrival cycle of each buffered flit

	// State of the packet currently being forwarded through this VC.
	routed      bool // output direction computed (look-ahead RC)
	vaDone      bool // downstream VC allocated
	outDir      mesh.Direction
	outVC       int
	blockedOnce bool // current head already counted as PG-blocked

	// Bypass (FlyOver-style) state: thruOK is computed at route time
	// and reports that the packet would continue straight through the
	// downstream router, making it eligible to fly over it if gated;
	// bypassing marks an established bypass stream, with outVC naming
	// an input VC of the router two hops out.
	thruOK    bool
	bypassing bool
}

func (v *vc) empty() bool         { return len(v.buf) == 0 }
func (v *vc) front() *flit.Flit   { return v.buf[0] }
func (v *vc) frontArrival() int64 { return v.arr[0] }

func (v *vc) push(f *flit.Flit, now int64) {
	v.buf = append(v.buf, f)
	v.arr = append(v.arr, now)
}

func (v *vc) pop() *flit.Flit {
	f := v.buf[0]
	v.buf = v.buf[:copy(v.buf, v.buf[1:])]
	v.arr = v.arr[:copy(v.arr, v.arr[1:])]
	return f
}

// InputPort is one of the router's five input ports.
type InputPort struct {
	dir mesh.Direction
	vcs []*vc
	// CreditOut carries freed-slot credits back to the upstream router
	// (or the local NI for the Local port). Owned by the network.
	CreditOut *link.Pipe[Credit]
}

// OutputPort is one of the router's five output ports.
type OutputPort struct {
	dir      mesh.Direction
	neighbor mesh.NodeID // Invalid for Local and mesh edges
	// FlitOut carries flits to the downstream input port (or NI).
	FlitOut *link.Pipe[FlitInTransit]
	credits []int
	owner   []int // per downstream VC: global input-VC key, or -1
	// Blocked is set by the network each cycle when the downstream
	// router asserts PG (gated or waking): the switch allocator masks
	// this output.
	Blocked bool
}

// Neighbor returns the downstream router (Invalid for Local/edges).
func (op *OutputPort) Neighbor() mesh.NodeID { return op.neighbor }

// Credits returns the available credit count for downstream VC v.
func (op *OutputPort) Credits(v int) int { return op.credits[v] }

// Owner returns the arbitration key (see Router.ForEachVC) of the input
// VC holding downstream VC v of this output port, or -1 when free.
func (op *OutputPort) Owner(v int) int { return op.owner[v] }

// Router is one fabric router.
//
// Concurrency contract (the sharded parallel tick engine in
// internal/network relies on these; keep them when changing the
// router):
//
//   - Step, EmitPunches, and the stall-accounting walk touch only this
//     router's own state and its own accounting lane / lane bus; they
//     never read or write a neighboring router. Cross-router effects
//     travel exclusively through the output pipes and credit queues,
//     drained by the *receiving* side.
//   - ReceiveFlit mutates only input-port state on this router, emits
//     no events, and its accounting (one buffer write) is a constant
//     independent of arrival order — so the receiver's worker may apply
//     arrivals from several upstream routers in any port order.
//   - EmitPunches reads only this router's own input VC buffers.
type Router struct {
	ID   mesh.NodeID
	cfg  *config.Config
	rf   topo.RoutingFunction
	Ctrl *pg.Controller

	in   [mesh.NumPorts]*InputPort
	out  [mesh.NumPorts]*OutputPort
	acct *power.Accountant

	numVCs   int // per port
	classes  int // dateline VC classes of the routing function (1 or 2)
	buffered int // total flits buffered (fast idle check)
	swRR     [mesh.NumPorts]int
	trouter  int64

	// occ is a bitset over global VC keys (vcKey) with a bit set exactly
	// while that input VC buffers at least one flit. The per-cycle router
	// stages iterate set bits instead of probing every (port, VC)
	// combination, so stage cost scales with resident packets, not with
	// the 5 x numVCs buffer geometry.
	occ []uint64

	// forwardHook, when set, is called with the downstream router's ID
	// whenever a flit is pushed onto a non-Local output link. The
	// active-set scheduler uses it to arm the receiver before the flit
	// arrives.
	forwardHook func(mesh.NodeID)

	// bus, when non-nil, receives flit-lifecycle events (VC allocation,
	// switch traversal, link departure, PG stalls). Nil keeps the hot
	// path free of observability work beyond one branch per site.
	bus *obs.Bus

	// Bypass (FlyOver-style) wiring, installed by the network when the
	// scheme policy enables bypass. Per link direction d: thruOut is
	// the flown-over neighbor's output port in the same direction (the
	// landing router's input VC space), nbrCtrl the flown-over
	// neighbor's controller, thruCtrl/thruNbr the landing router two
	// hops out. All nil/Invalid where the through-path leaves the
	// fabric (mesh edges).
	//
	// Concurrency note: tryBypassGrant writes thruOut's owner/credit
	// arrays from this router's pipeline phase. That is safe because a
	// stream is admitted only while the flown-over neighbor is Gated
	// and pg.Inputs.BypassHold keeps it from completing a wake until
	// the stream's tail clears the first link — its own pipeline never
	// runs concurrently. Each (neighbor, direction) pair has exactly
	// one upstream router, so two senders never share a thruOut port.
	bypassOn      bool
	bypassEnergy  scheme.BypassEnergy
	thruOut       [mesh.NumPorts]*OutputPort
	nbrCtrl       [mesh.NumPorts]*pg.Controller
	thruCtrl      [mesh.NumPorts]*pg.Controller
	thruNbr       [mesh.NumPorts]mesh.NodeID
	bypassStreams [mesh.NumPorts]int

	// faultBypassIllegalTurn is a deliberate defect: bypass admission
	// skips the straight-through routing check (see config.Faults).
	faultBypassIllegalTurn bool

	// ctrlSync, when set, is invoked with a neighbor's ID immediately
	// before this router reads that neighbor's PG controller state for
	// bypass decisions. The active-set engine installs it to replay a
	// parked controller's skipped idle cycles first; engines that step
	// every controller every cycle leave the call a no-op.
	ctrlSync func(mesh.NodeID)

	// Stats.
	FlitsForwarded int64
	PGStallCycles  int64
	FlitsBypassed  int64
}

// New constructs a router. Pipes for output flits and input credits are
// created here with the configured link latency; the network wires them
// to neighbors. ctrl must be non-nil (use a disabled controller for the
// No-PG baseline). acct may be nil.
func New(id mesh.NodeID, rf topo.RoutingFunction, cfg *config.Config, ctrl *pg.Controller, acct *power.Accountant) *Router {
	numVCs := int(flit.NumVirtualNetworks) * cfg.VCsPerVN()
	r := &Router{
		ID:      id,
		cfg:     cfg,
		rf:      rf,
		Ctrl:    ctrl,
		acct:    acct,
		numVCs:  numVCs,
		classes: rf.VCClasses(),
		trouter: int64(cfg.RouterCycles()),
	}
	r.occ = make([]uint64, (mesh.NumPorts*numVCs+63)/64)
	for p := range r.thruNbr {
		r.thruNbr[p] = mesh.Invalid
	}
	for p := 0; p < mesh.NumPorts; p++ {
		dir := mesh.Direction(p)
		ip := &InputPort{
			dir:       dir,
			CreditOut: link.NewPipe[Credit](cfg.LinkLatency),
		}
		for v := 0; v < numVCs; v++ {
			// Buffers are preallocated to the credit-enforced depth so
			// push never grows them mid-run: on large fabrics the long
			// tail of first-time-full VCs would otherwise keep the
			// steady-state tick allocating for tens of thousands of
			// cycles.
			d := cfg.VCDepth(v % cfg.VCsPerVN())
			ip.vcs = append(ip.vcs, &vc{
				idx: v, depth: d,
				buf: make([]*flit.Flit, 0, d),
				arr: make([]int64, 0, d),
			})
		}
		r.in[p] = ip

		op := &OutputPort{
			dir:      dir,
			neighbor: mesh.Invalid,
			FlitOut:  link.NewPipe[FlitInTransit](cfg.LinkLatency),
			credits:  make([]int, numVCs),
			owner:    make([]int, numVCs),
		}
		if dir != mesh.Local {
			op.neighbor = rf.Topology().Neighbor(id, dir)
		}
		for v := range op.credits {
			if dir == mesh.Local {
				// The NI ejection sink always accepts (responses must
				// always sink for protocol deadlock freedom).
				op.credits[v] = 1 << 30
			} else {
				op.credits[v] = cfg.VCDepth(v % cfg.VCsPerVN())
			}
			op.owner[v] = -1
		}
		r.out[p] = op
	}
	return r
}

// In returns the input port on side d.
func (r *Router) In(d mesh.Direction) *InputPort { return r.in[d] }

// Out returns the output port on side d.
func (r *Router) Out(d mesh.Direction) *OutputPort { return r.out[d] }

// NumVCs returns the number of virtual channels per port.
func (r *Router) NumVCs() int { return r.numVCs }

// BufferedFlits returns the number of flits currently buffered.
func (r *Router) BufferedFlits() int { return r.buffered }

// Empty reports whether the router datapath holds no flits.
func (r *Router) Empty() bool { return r.buffered == 0 }

// ReceiveFlit writes an arriving flit into input port side d, virtual
// channel vcIdx (the VC the upstream allocator chose). The caller
// guarantees buffer space (credit-based flow control).
func (r *Router) ReceiveFlit(d mesh.Direction, vcIdx int, f *flit.Flit, now int64) {
	v := r.in[d].vcs[vcIdx]
	if len(v.buf) >= v.depth {
		panic(fmt.Sprintf("router %d: VC overflow on %v vc%d (credit protocol violated)", r.ID, d, vcIdx))
	}
	v.push(f, now)
	r.setOcc(r.vcKey(int(d), vcIdx))
	r.buffered++
	if r.acct != nil {
		r.acct.BufferWrite(int(r.ID))
	}
}

// CanAcceptFlit reports whether input port d, VC vcIdx has buffer space.
// The NI, which plays the upstream-router role on the Local port, keeps
// its own credit count; this is for tests and assertions.
func (r *Router) CanAcceptFlit(d mesh.Direction, vcIdx int) bool {
	v := r.in[d].vcs[vcIdx]
	return len(v.buf) < v.depth
}

// ReceiveCredit restores one credit for output port d, VC vcIdx.
func (r *Router) ReceiveCredit(d mesh.Direction, vcIdx int) {
	r.out[d].credits[vcIdx]++
}

// VCOccupancy returns the number of flits buffered in input port d,
// virtual channel v (used by the network's invariant checks).
func (r *Router) VCOccupancy(d mesh.Direction, v int) int {
	return len(r.in[d].vcs[v].buf)
}

// vcKey packs (input port, vc index) into a single arbitration key.
func (r *Router) vcKey(port, vcIdx int) int { return port*r.numVCs + vcIdx }

func (r *Router) setOcc(key int)   { r.occ[key>>6] |= 1 << (key & 63) }
func (r *Router) clearOcc(key int) { r.occ[key>>6] &^= 1 << (key & 63) }

// nextOcc returns the smallest occupied VC key >= from, or -1. Keys come
// back in ascending order, so iterating nextOcc(0), nextOcc(k+1), ...
// visits occupied VCs in exactly the (port, vc) order the plain nested
// loops would.
func (r *Router) nextOcc(from int) int {
	w := from >> 6
	if w >= len(r.occ) {
		return -1
	}
	word := r.occ[w] &^ (1<<(from&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(r.occ) {
			return -1
		}
		word = r.occ[w]
	}
}

// Step advances the router one cycle: switch traversal first, then VC
// allocation / route computation, so a flit moves through at most one
// stage per cycle. A gated or waking router does nothing (its datapath
// is unpowered — and provably empty, since gating requires emptiness).
func (r *Router) Step(now int64) {
	if r.buffered == 0 || !r.Ctrl.IsOn() {
		return
	}
	if r.cfg.FullTick {
		// Reference mode: the seed's simple probing walks, kept verbatim
		// so the differential path exercises the original implementation,
		// not the occupancy-bitset rewrite it validates.
		r.stepSTRef(now)
		r.stepVARef(now)
		return
	}
	r.stepST(now)
	r.stepVA(now)
}

// stepST performs switch allocation + traversal: for every output port,
// pick one eligible input VC round-robin and forward its front flit. For
// an output masked by a gated/waking neighbor it instead accrues the
// paper's per-packet blocking statistics (Figures 9 and 10).
func (r *Router) stepST(now int64) {
	total := mesh.NumPorts * r.numVCs
	for p := 0; p < mesh.NumPorts; p++ {
		op := r.out[p]
		if op.Blocked {
			// Downstream router is gated or waking. Under a bypass
			// scheme, eligible traffic flies over it first; everything
			// else accrues the paper's per-packet blocking statistics
			// (Figures 9 and 10).
			if r.bypassOn {
				r.stepBypass(p, now)
			}
			for key := r.nextOcc(0); key != -1; key = r.nextOcc(key + 1) {
				v := r.in[key/r.numVCs].vcs[key%r.numVCs]
				if !v.routed || int(v.outDir) != p {
					continue
				}
				if r.bypassOn && r.wantSuppressed(v) {
					continue // served by the bypass path, not PG-blocked
				}
				if now-v.frontArrival() < r.trouter {
					continue
				}
				r.PGStallCycles++
				pkt := v.front().Packet
				pkt.WakeupWait++
				if !v.blockedOnce {
					v.blockedOnce = true
					pkt.BlockedRouters++
				}
				if r.bus != nil {
					r.emitStall(p, key%r.numVCs, pkt)
				}
			}
			continue
		}

		// Round-robin over the occupied VCs only, starting at swRR[p] and
		// wrapping: pass 0 covers [swRR[p], total), pass 1 [0, swRR[p]) —
		// the same circular order the full (swRR[p]+k)%total probe walks,
		// with its empty slots deleted.
		start := r.swRR[p]
	grant:
		for pass := 0; pass < 2; pass++ {
			lo, hi := start, total
			if pass == 1 {
				lo, hi = 0, start
			}
			for key := r.nextOcc(lo); key != -1 && key < hi; key = r.nextOcc(key + 1) {
				v := r.in[key/r.numVCs].vcs[key%r.numVCs]
				if !v.routed || int(v.outDir) != p || !v.vaDone {
					continue
				}
				if now-v.frontArrival() < r.trouter {
					continue // pipeline depth not yet traversed
				}
				if op.credits[v.outVC] <= 0 {
					continue // no downstream buffer space
				}

				// Grant: traverse the switch and the link.
				r.swRR[p] = (key + 1) % total
				out := v.pop()
				if v.empty() {
					r.clearOcc(key)
				}
				r.buffered--
				op.credits[v.outVC]--
				op.FlitOut.Push(FlitInTransit{Flit: out, VC: v.outVC}, now)
				r.FlitsForwarded++
				if r.acct != nil {
					r.acct.Traverse(int(r.ID))
					if op.dir != mesh.Local {
						r.acct.LinkHop(int(r.ID))
					}
				}
				if r.forwardHook != nil && op.dir != mesh.Local && op.neighbor != mesh.Invalid {
					r.forwardHook(op.neighbor)
				}
				if r.bus != nil {
					r.emitGrant(op, out, v.outVC)
				}
				// Return the freed slot upstream.
				r.in[key/r.numVCs].CreditOut.Push(Credit{VC: key % r.numVCs}, now)

				if out.Type.IsTail() {
					// Release the downstream VC and the per-packet state.
					op.owner[v.outVC] = -1
					v.routed = false
					v.vaDone = false
					v.blockedOnce = false
				}
				break grant // one flit per output port per cycle
			}
		}
	}
}

// stepSTRef is the reference (Config.FullTick) switch stage: the seed's
// full probe over every (input port, VC) slot, kept structurally intact
// so differential runs compare the production bitset scan against the
// original implementation. The only additions are occ maintenance on pop
// (ReceiveFlit sets the bit unconditionally) and the forward hook, which
// is nil under FullTick.
func (r *Router) stepSTRef(now int64) {
	total := mesh.NumPorts * r.numVCs
	for p := 0; p < mesh.NumPorts; p++ {
		op := r.out[p]
		if op.Blocked {
			// Downstream router is gated or waking. Under a bypass
			// scheme, eligible traffic flies over it first; everything
			// else accrues the paper's per-packet blocking statistics.
			if r.bypassOn {
				r.stepBypassRef(p, now)
			}
			for ip := 0; ip < mesh.NumPorts; ip++ {
				for vi := 0; vi < r.numVCs; vi++ {
					v := r.in[ip].vcs[vi]
					if v.empty() || !v.routed || int(v.outDir) != p {
						continue
					}
					if r.bypassOn && r.wantSuppressed(v) {
						continue // served by the bypass path, not PG-blocked
					}
					if now-v.frontArrival() < r.trouter {
						continue
					}
					r.PGStallCycles++
					pkt := v.front().Packet
					pkt.WakeupWait++
					if !v.blockedOnce {
						v.blockedOnce = true
						pkt.BlockedRouters++
					}
					if r.bus != nil {
						r.emitStall(p, vi, pkt)
					}
				}
			}
			continue
		}

		for k := 0; k < total; k++ {
			key := (r.swRR[p] + k) % total
			ip, vi := key/r.numVCs, key%r.numVCs
			v := r.in[ip].vcs[vi]
			if v.empty() || !v.routed || int(v.outDir) != p || !v.vaDone {
				continue
			}
			if now-v.frontArrival() < r.trouter {
				continue // pipeline depth not yet traversed
			}
			if op.credits[v.outVC] <= 0 {
				continue // no downstream buffer space
			}

			// Grant: traverse the switch and the link.
			r.swRR[p] = (key + 1) % total
			out := v.pop()
			if v.empty() {
				r.clearOcc(key)
			}
			r.buffered--
			op.credits[v.outVC]--
			op.FlitOut.Push(FlitInTransit{Flit: out, VC: v.outVC}, now)
			r.FlitsForwarded++
			if r.acct != nil {
				r.acct.Traverse(int(r.ID))
				if op.dir != mesh.Local {
					r.acct.LinkHop(int(r.ID))
				}
			}
			if r.forwardHook != nil && op.dir != mesh.Local && op.neighbor != mesh.Invalid {
				r.forwardHook(op.neighbor)
			}
			if r.bus != nil {
				r.emitGrant(op, out, v.outVC)
			}
			// Return the freed slot upstream.
			r.in[ip].CreditOut.Push(Credit{VC: vi}, now)

			if out.Type.IsTail() {
				// Release the downstream VC and the per-packet state.
				op.owner[v.outVC] = -1
				v.routed = false
				v.vaDone = false
				v.blockedOnce = false
			}
			break // one flit per output port per cycle
		}
	}
}

// BypassOwner is the sentinel claiming a landing VC for a bypass
// stream in the flown-over neighbor's owner array: the owner is an
// input VC of another router, so no local arbitration key applies.
// Exported so the invariant engine can assert the claim's shape.
const BypassOwner = -2

// thruEligible reports whether a head routed toward direction d would
// continue straight through the downstream router — the structural
// condition for flying over it if it gates. Computed once at route
// time and cached in vc.thruOK.
func (r *Router) thruEligible(d mesh.Direction, f *flit.Flit) bool {
	if d == mesh.Local || r.thruOut[d] == nil {
		return false
	}
	if r.faultBypassIllegalTurn {
		return true // deliberate defect: fling turning/ejecting heads too
	}
	next, err := r.rf.Route(r.out[d].neighbor, f.Dst())
	return err == nil && next == d
}

// wantSuppressed reports whether an occupied, routed VC withholds its
// WU want toward its output: an established bypass stream, or a
// thru-eligible head whose landing router is on. In both cases the
// detour (or the normal path, if the neighbor is still on) makes
// progress without waking the neighbor — waking it would defeat the
// bypass. A body flit following the normal path, or a head whose
// landing router is itself gated, wants the neighbor awake as usual.
func (r *Router) wantSuppressed(v *vc) bool {
	if v.bypassing {
		return true
	}
	if !v.thruOK || v.empty() || !v.front().Type.IsHead() || r.thruCtrl[v.outDir] == nil {
		return false
	}
	if r.ctrlSync != nil {
		r.ctrlSync(r.thruNbr[v.outDir])
	}
	return !r.thruCtrl[v.outDir].PGAsserted()
}

// stepBypass arbitrates the bypass path for output port p while the
// downstream neighbor asserts PG: at most one flit per cycle flies
// over the gated neighbor onto the landing router two hops out,
// chosen by the same round-robin order as normal switch allocation.
func (r *Router) stepBypass(p int, now int64) {
	if r.thruOut[p] == nil {
		return
	}
	total := mesh.NumPorts * r.numVCs
	start := r.swRR[p]
	for pass := 0; pass < 2; pass++ {
		lo, hi := start, total
		if pass == 1 {
			lo, hi = 0, start
		}
		for key := r.nextOcc(lo); key != -1 && key < hi; key = r.nextOcc(key + 1) {
			if r.tryBypassGrant(key, p, now) {
				return
			}
		}
	}
}

// stepBypassRef is the reference (Config.FullTick) bypass arbitration:
// the full modular probe over every (input port, VC) slot, matching
// stepBypass's circular order with the empty slots kept.
func (r *Router) stepBypassRef(p int, now int64) {
	if r.thruOut[p] == nil {
		return
	}
	total := mesh.NumPorts * r.numVCs
	for k := 0; k < total; k++ {
		key := (r.swRR[p] + k) % total
		if r.in[key/r.numVCs].vcs[key%r.numVCs].empty() {
			continue
		}
		if r.tryBypassGrant(key, p, now) {
			return
		}
	}
}

// tryBypassGrant attempts to send the front flit of VC key over the
// gated neighbor in direction p. New streams are admitted only for a
// pipeline-ready thru-eligible head while the neighbor is fully Gated
// (never mid-wake: pg.Inputs.BypassHold then pins it down until the
// tail clears the first link) and the landing router is on; an
// established stream continues on landing-VC credit alone, so a
// wake-in-progress at the flown-over router never strands a wormhole
// mid-stream.
func (r *Router) tryBypassGrant(key, p int, now int64) bool {
	v := r.in[key/r.numVCs].vcs[key%r.numVCs]
	if !v.routed || int(v.outDir) != p {
		return false
	}
	if now-v.frontArrival() < r.trouter {
		return false // pipeline depth not yet traversed
	}
	to := r.thruOut[p]
	if v.bypassing {
		if to.credits[v.outVC] <= 0 {
			return false // no buffer space at the landing router
		}
	} else {
		f := v.front()
		if !v.thruOK || !f.Type.IsHead() {
			return false
		}
		if r.ctrlSync != nil {
			r.ctrlSync(r.out[p].neighbor)
			r.ctrlSync(r.thruNbr[p])
		}
		if r.nbrCtrl[p] == nil || r.nbrCtrl[p].State() != pg.Gated {
			return false
		}
		if r.thruCtrl[p] == nil || r.thruCtrl[p].PGAsserted() {
			return false
		}
		ov, ok := r.allocBypassVC(p, f)
		if !ok {
			return false
		}
		// The normal path may have allocated a VC in the neighbor
		// before it gated; the stream will not use it.
		if v.vaDone {
			r.out[p].owner[v.outVC] = -1
			v.vaDone = false
		}
		v.outVC = ov
		v.bypassing = true
		r.bypassStreams[p]++
	}

	// Grant: the flit traverses this router's switch, the first link,
	// the neighbor's bypass latch, and the second link, landing in the
	// input buffer of the router two hops out one cycle after it would
	// have reached the neighbor.
	r.swRR[p] = (key + 1) % (mesh.NumPorts * r.numVCs)
	out := v.pop()
	if v.empty() {
		r.clearOcc(key)
	}
	r.buffered--
	to.credits[v.outVC]--
	r.out[p].FlitOut.Push(FlitInTransit{Flit: out, VC: v.outVC, Bypass: true}, now)
	r.FlitsForwarded++
	r.FlitsBypassed++
	if r.acct != nil {
		r.acct.Traverse(int(r.ID))
		r.acct.LinkHop(int(r.ID))
		if r.bypassEnergy != nil {
			r.bypassEnergy.AttributeBypass(r.acct, int(r.ID))
		}
	}
	if r.forwardHook != nil {
		r.forwardHook(r.out[p].neighbor)
		r.forwardHook(r.thruNbr[p])
	}
	if r.bus != nil {
		r.emitGrant(r.out[p], out, v.outVC)
		r.bus.Emit(obs.Event{
			Kind: obs.KindBypass,
			Node: int32(r.ID),
			Dir:  int8(p),
			VC:   int16(v.outVC),
			Pkt:  out.Packet.ID,
			Src:  int32(r.out[p].neighbor),
			Dst:  int32(r.thruNbr[p]),
		})
	}
	// Return the freed slot upstream.
	r.in[key/r.numVCs].CreditOut.Push(Credit{VC: key % r.numVCs}, now)

	if out.Type.IsTail() {
		// Release the landing VC and per-packet state. The stream
		// counter is released by the network when the tail clears the
		// first link — the bypass latch is live until then.
		to.owner[v.outVC] = -1
		v.routed = false
		v.vaDone = false
		v.bypassing = false
		v.thruOK = false
		v.blockedOnce = false
	}
	return true
}

// allocBypassVC claims a landing VC for a new bypass stream: a free
// VC with credit in the flown-over neighbor's output port p,
// restricted to the dateline class the neighbor's own allocator would
// have chosen — the contracted channel-dependency path is a subpath
// of the normal one, so wrap-link deadlock freedom is preserved.
// Credit is required at claim time because the claim and the first
// grant are one atomic step.
func (r *Router) allocBypassVC(p int, f *flit.Flit) (int, bool) {
	to := r.thruOut[p]
	perVN := r.cfg.VCsPerVN()
	base := int(f.Packet.VN) * perVN

	tryRange := func(lo, hi int) (int, bool) {
		for v := lo; v < hi; v++ {
			if to.owner[v] == -1 && to.credits[v] > 0 {
				to.owner[v] = BypassOwner
				return v, true
			}
		}
		return -1, false
	}

	if r.classes > 1 {
		cls := r.rf.ClassFor(r.out[p].neighbor, f.Dst(), mesh.Direction(p))
		if r.cfg.Faults.InvertDatelineClass {
			cls = 1 - cls
		}
		dlo, dhi := r.cfg.DataVCClassRange(cls)
		if f.Packet.Kind == flit.KindData {
			return tryRange(base+dlo, base+dhi)
		}
		// Control packet: the class's control VCs first, then its data VCs.
		clo, chi := r.cfg.CtrlVCClassRange(cls)
		if v, ok := tryRange(base+clo, base+chi); ok {
			return v, true
		}
		return tryRange(base+dlo, base+dhi)
	}

	if f.Packet.Kind == flit.KindData {
		return tryRange(base, base+r.cfg.DataVCs)
	}
	// Control packet: control VCs first, then data VCs.
	if v, ok := tryRange(base+r.cfg.DataVCs, base+perVN); ok {
		return v, true
	}
	return tryRange(base, base+r.cfg.DataVCs)
}

// stepVA computes routes for newly-arrived heads (look-ahead RC costs no
// extra stage) and allocates downstream VCs. VA is eligible one cycle
// after head arrival (stage 2); the speculative 3-stage router differs
// only in total pipeline depth (config.RouterCycles), modelling
// always-successful speculation at low load — allocation conflicts add
// their own cycles naturally.
func (r *Router) stepVA(now int64) {
	for key := r.nextOcc(0); key != -1; key = r.nextOcc(key + 1) {
		p, vi := key/r.numVCs, key%r.numVCs
		v := r.in[p].vcs[vi]
		f := v.front()
		if !f.Type.IsHead() {
			continue // body/tail follow the established route
		}
		if !v.routed {
			// Route computation (look-ahead: available on arrival). A
			// routing error here means a corrupted destination — a
			// programming error, surfaced as the typed *topo.RouteError.
			v.outDir = topo.MustRoute(r.rf, r.ID, f.Dst())
			v.routed = true
			v.blockedOnce = false
			v.thruOK = r.bypassOn && r.thruEligible(v.outDir, f)
		}
		if v.vaDone {
			continue
		}
		if now-v.frontArrival() < 1 {
			continue // VA is pipeline stage 2
		}
		op := r.out[v.outDir]
		if got, ov := r.allocVC(op, f, p, vi); got {
			v.vaDone = true
			v.outVC = ov
			if r.bus != nil {
				r.bus.Emit(obs.Event{Kind: obs.KindVCAlloc, Node: int32(r.ID),
					Dir: int8(v.outDir), VC: int16(ov), Pkt: f.Packet.ID})
			}
		}
	}
}

// stepVARef is the reference (Config.FullTick) VA stage: the seed's full
// nested probe over every (port, VC) slot.
func (r *Router) stepVARef(now int64) {
	for p := 0; p < mesh.NumPorts; p++ {
		for vi := 0; vi < r.numVCs; vi++ {
			v := r.in[p].vcs[vi]
			if v.empty() {
				continue
			}
			f := v.front()
			if !f.Type.IsHead() {
				continue // body/tail follow the established route
			}
			if !v.routed {
				// Route computation (look-ahead: available on arrival).
				v.outDir = topo.MustRoute(r.rf, r.ID, f.Dst())
				v.routed = true
				v.blockedOnce = false
				v.thruOK = r.bypassOn && r.thruEligible(v.outDir, f)
			}
			if v.vaDone {
				continue
			}
			if now-v.frontArrival() < 1 {
				continue // VA is pipeline stage 2
			}
			op := r.out[v.outDir]
			if got, ov := r.allocVC(op, f, p, vi); got {
				v.vaDone = true
				v.outVC = ov
				if r.bus != nil {
					r.bus.Emit(obs.Event{Kind: obs.KindVCAlloc, Node: int32(r.ID),
						Dir: int8(v.outDir), VC: int16(ov), Pkt: f.Packet.ID})
				}
			}
		}
	}
}

// allocVC tries to allocate a downstream VC at output port op for packet
// head f arriving on (port, vcIdx). Data packets use data VCs; control
// packets prefer the control VC and fall back to data VCs. On fabrics
// with wrap links (torus, ring) inter-router outputs are additionally
// restricted to the packet's dateline VC class, which is what breaks
// the ring's channel-dependency cycle (see topo.RoutingFunction.ClassFor);
// ejection through the Local port is never class-restricted.
func (r *Router) allocVC(op *OutputPort, f *flit.Flit, port, vcIdx int) (bool, int) {
	perVN := r.cfg.VCsPerVN()
	base := int(f.Packet.VN) * perVN
	key := r.vcKey(port, vcIdx)

	tryRange := func(lo, hi int) (bool, int) {
		for v := lo; v < hi; v++ {
			if op.owner[v] == -1 {
				op.owner[v] = key
				return true, v
			}
		}
		return false, -1
	}

	if r.classes > 1 && op.dir != mesh.Local {
		cls := r.rf.ClassFor(r.ID, f.Dst(), op.dir)
		if r.cfg.Faults.InvertDatelineClass {
			cls = 1 - cls
		}
		dlo, dhi := r.cfg.DataVCClassRange(cls)
		if f.Packet.Kind == flit.KindData {
			return tryRange(base+dlo, base+dhi)
		}
		// Control packet: the class's control VCs first, then its data VCs.
		clo, chi := r.cfg.CtrlVCClassRange(cls)
		if ok, v := tryRange(base+clo, base+chi); ok {
			return true, v
		}
		return tryRange(base+dlo, base+dhi)
	}

	if f.Packet.Kind == flit.KindData {
		return tryRange(base, base+r.cfg.DataVCs)
	}
	// Control packet: control VCs first, then data VCs.
	if ok, v := tryRange(base+r.cfg.DataVCs, base+perVN); ok {
		return true, v
	}
	return tryRange(base, base+r.cfg.DataVCs)
}

// WantsOutput fills want with, per direction, whether any resident packet
// is routed toward that output. The network derives the WU levels of the
// paper's Figure 2 handshake from it (asserted from route-computation
// time — the ConvOpt "early wakeup" optimization).
func (r *Router) WantsOutput(want *[mesh.NumPorts]bool) {
	for p := 0; p < mesh.NumPorts; p++ {
		want[p] = false
	}
	if r.buffered == 0 {
		return
	}
	if r.cfg.FullTick {
		for p := 0; p < mesh.NumPorts; p++ {
			for vi := 0; vi < r.numVCs; vi++ {
				v := r.in[p].vcs[vi]
				if !v.empty() && v.routed && !(r.bypassOn && r.wantSuppressed(v)) {
					want[v.outDir] = true
				}
			}
		}
		return
	}
	for key := r.nextOcc(0); key != -1; key = r.nextOcc(key + 1) {
		v := r.in[key/r.numVCs].vcs[key%r.numVCs]
		if v.routed && !(r.bypassOn && r.wantSuppressed(v)) {
			want[v.outDir] = true
		}
	}
}

// WantsOutputAtSA is the PlainPG variant of WantsOutput: the WU level
// fires only once a packet actually requests the switch toward the
// output (no early wakeup), matching the unoptimized handshake of the
// paper's Section 2.2.
func (r *Router) WantsOutputAtSA(want *[mesh.NumPorts]bool, now int64) {
	for p := 0; p < mesh.NumPorts; p++ {
		want[p] = false
	}
	if r.buffered == 0 {
		return
	}
	if r.cfg.FullTick {
		for p := 0; p < mesh.NumPorts; p++ {
			for vi := 0; vi < r.numVCs; vi++ {
				v := r.in[p].vcs[vi]
				if !v.empty() && v.routed && now-v.frontArrival() >= r.trouter {
					want[v.outDir] = true
				}
			}
		}
		return
	}
	for key := r.nextOcc(0); key != -1; key = r.nextOcc(key + 1) {
		v := r.in[key/r.numVCs].vcs[key%r.numVCs]
		if v.routed && now-v.frontArrival() >= r.trouter {
			want[v.outDir] = true
		}
	}
}

// VCView is a read-only snapshot of one input virtual channel, exposed
// for the internal/check invariant engine. Routed/VADone/OutDir/OutVC
// describe the packet currently owning the VC; they can outlive the
// buffered flits (a wormhole packet's body may still be upstream while
// the route is held).
type VCView struct {
	Port      mesh.Direction
	Index     int // VC index within the port
	Key       int // arbitration key, matches OutputPort.Owner
	Depth     int
	Occupancy int
	Front     *flit.Flit // nil when the VC is empty
	FrontAge  int64      // cycles since the front flit arrived
	Routed    bool
	VADone    bool
	OutDir    mesh.Direction
	OutVC     int
	// Bypass (FlyOver-style) state: see the vc fields of the same name.
	// While Bypassing, OutVC names an input VC of the router two hops
	// out, not of the direct neighbor.
	ThruOK    bool
	Bypassing bool
}

// ForEachVC invokes fn with a snapshot of every input VC of every port.
func (r *Router) ForEachVC(now int64, fn func(VCView)) {
	for p := 0; p < mesh.NumPorts; p++ {
		for vi := 0; vi < r.numVCs; vi++ {
			v := r.in[p].vcs[vi]
			view := VCView{
				Port:      mesh.Direction(p),
				Index:     vi,
				Key:       r.vcKey(p, vi),
				Depth:     v.depth,
				Occupancy: len(v.buf),
				Routed:    v.routed,
				VADone:    v.vaDone,
				OutDir:    v.outDir,
				OutVC:     v.outVC,
				ThruOK:    v.thruOK,
				Bypassing: v.bypassing,
			}
			if len(v.buf) > 0 {
				view.Front = v.buf[0]
				view.FrontAge = now - v.arr[0]
			}
			fn(view)
		}
	}
}

// PipelineCycles returns Trouter, the per-hop pipeline depth in cycles.
func (r *Router) PipelineCycles() int64 { return r.trouter }

// ResidentHeads invokes fn for every packet whose head flit is currently
// buffered in this router. Power Punch emits one punch per resident head
// per cycle (level semantics: a stalled packet keeps punching).
func (r *Router) ResidentHeads(fn func(p *flit.Packet)) {
	if r.buffered == 0 {
		return
	}
	for p := 0; p < mesh.NumPorts; p++ {
		for vi := 0; vi < r.numVCs; vi++ {
			v := r.in[p].vcs[vi]
			for _, f := range v.buf {
				if f.Type.IsHead() {
					fn(f.Packet)
				}
			}
		}
	}
}

// EnableBypass turns on FlyOver-style bypass admission at this router.
// energy, when non-nil, is charged once per bypass grant at this
// (sending) router; nil skips the detour's extra energy.
func (r *Router) EnableBypass(energy scheme.BypassEnergy) {
	r.bypassOn = true
	r.bypassEnergy = energy
}

// SetCtrlSync installs the neighbor-controller catch-up hook consulted
// before bypass reads of a parked neighbor's PG state.
func (r *Router) SetCtrlSync(f func(mesh.NodeID)) { r.ctrlSync = f }

// SetBypassWiring installs the through-path for link direction d: the
// flown-over neighbor's output port (whose VC space belongs to the
// landing router's input) and controller, plus the landing router two
// hops out and its controller. Directions whose through-path leaves
// the fabric are simply never wired.
func (r *Router) SetBypassWiring(d mesh.Direction, nbOut *OutputPort, nbCtrl *pg.Controller, landing mesh.NodeID, landingCtrl *pg.Controller) {
	r.thruOut[d] = nbOut
	r.nbrCtrl[d] = nbCtrl
	r.thruNbr[d] = landing
	r.thruCtrl[d] = landingCtrl
}

// BypassStreams returns the number of bypass streams currently
// established from this router over its neighbor in direction d. The
// network derives the neighbor's BypassHold controller input and the
// two-hop incoming-quiet extension from it.
func (r *Router) BypassStreams(d mesh.Direction) int { return r.bypassStreams[d] }

// BypassStreamRelease retires one bypass stream in direction d. The
// network calls it when the stream's tail flit clears the first link
// (is forwarded across the flown-over router): the bypass latch — and
// therefore the neighbor's wake hold — is needed until then.
func (r *Router) BypassStreamRelease(d mesh.Direction) { r.bypassStreams[d]-- }

// SetFaultBypassIllegalTurn installs the bypass-admission defect; see
// config.Faults.BypassIllegalTurn.
func (r *Router) SetFaultBypassIllegalTurn(v bool) { r.faultBypassIllegalTurn = v }

// SetForwardHook registers the active-set scheduler's receiver-arming
// callback; see the forwardHook field.
func (r *Router) SetForwardHook(fn func(mesh.NodeID)) { r.forwardHook = fn }

// SetBus attaches an observability bus; see the bus field.
func (r *Router) SetBus(b *obs.Bus) { r.bus = b }

// emitStall publishes one KindPGStall event for a pipeline-ready flit
// denied switch traversal because the downstream router is gated or
// waking.
func (r *Router) emitStall(outPort int, vcIdx int, pkt *flit.Packet) {
	r.bus.Emit(obs.Event{
		Kind: obs.KindPGStall,
		Node: int32(r.ID),
		Dir:  int8(outPort),
		VC:   int16(vcIdx),
		Pkt:  pkt.ID,
		Dst:  int32(r.out[outPort].neighbor),
	})
}

// emitGrant publishes the KindSwitch (crossbar traversal) and, for
// inter-router outputs, KindLink (link departure) events for one
// granted flit.
func (r *Router) emitGrant(op *OutputPort, out *flit.Flit, outVC int) {
	tail := int64(0)
	if out.Type.IsTail() {
		tail = 1
	}
	r.bus.Emit(obs.Event{
		Kind: obs.KindSwitch,
		Node: int32(r.ID),
		Dir:  int8(op.dir),
		VC:   int16(outVC),
		Pkt:  out.Packet.ID,
		A:    tail,
	})
	if op.dir != mesh.Local && op.neighbor != mesh.Invalid {
		r.bus.Emit(obs.Event{
			Kind: obs.KindLink,
			Node: int32(r.ID),
			Dir:  int8(op.dir),
			VC:   int16(outVC),
			Pkt:  out.Packet.ID,
			Src:  int32(r.ID),
			Dst:  int32(op.neighbor),
		})
	}
}

// PunchEmitter receives one punch emission per resident packet head;
// core.Fabric implements it.
type PunchEmitter interface {
	EmitSource(cur, dst mesh.NodeID)
}

// EmitPunches emits one source punch per resident packet head, the
// closure-free hot-path form of ResidentHeads + EmitSource (level
// semantics: a stalled packet keeps punching every cycle).
func (r *Router) EmitPunches(f PunchEmitter) {
	if r.buffered == 0 {
		return
	}
	if r.cfg.FullTick {
		for p := 0; p < mesh.NumPorts; p++ {
			for vi := 0; vi < r.numVCs; vi++ {
				for _, fl := range r.in[p].vcs[vi].buf {
					if fl.Type.IsHead() {
						f.EmitSource(r.ID, fl.Packet.Dst)
					}
				}
			}
		}
		return
	}
	for key := r.nextOcc(0); key != -1; key = r.nextOcc(key + 1) {
		v := r.in[key/r.numVCs].vcs[key%r.numVCs]
		for _, fl := range v.buf {
			if fl.Type.IsHead() {
				f.EmitSource(r.ID, fl.Packet.Dst)
			}
		}
	}
}
