package router

import (
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/pg"
	"powerpunch/internal/topo"
)

func testCfg() config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.Scheme = config.NoPG
	return cfg
}

func newRouter(t *testing.T, id mesh.NodeID, cfg *config.Config) *Router {
	t.Helper()
	m := mesh.New(cfg.Width, cfg.Height)
	ctrl := pg.New(false, 2, 1, 0)
	return New(id, topo.Routing(topo.FromMesh(m)), cfg, ctrl, nil)
}

func mkPacket(id uint64, src, dst mesh.NodeID, size int) *flit.Packet {
	return &flit.Packet{ID: id, Src: src, Dst: dst, VN: flit.VNRequest, Kind: kindFor(size), Size: size}
}

func kindFor(size int) flit.Kind {
	if size > 1 {
		return flit.KindData
	}
	return flit.KindControl
}

// stepUntil steps the router until pred or the cycle budget runs out,
// returning the cycle pred first held.
func stepUntil(r *Router, from int64, budget int, pred func() bool) int64 {
	for now := from; now < from+int64(budget); now++ {
		r.Step(now)
		if pred() {
			return now
		}
	}
	return -1
}

func TestHeadFlitTraversesInTrouterCycles(t *testing.T) {
	cfg := testCfg()
	r := newRouter(t, 5, &cfg) // interior router of the 4x4 mesh
	p := mkPacket(1, 4, 7, 1)  // heading east through 5
	f := flit.NewFlits(p)[0]
	r.ReceiveFlit(mesh.West, 0, f, 10)

	out := r.Out(mesh.East)
	departed := stepUntil(r, 10, 20, func() bool { return !out.FlitOut.Empty() })
	if departed != 13 {
		t.Fatalf("head departed at cycle %d, want 13 (arrival 10 + Trouter 3)", departed)
	}
}

func TestFourStageRouterIsOneCycleSlower(t *testing.T) {
	cfg := testCfg()
	cfg.RouterStages = 4
	r := newRouter(t, 5, &cfg)
	p := mkPacket(1, 4, 7, 1)
	r.ReceiveFlit(mesh.West, 0, flit.NewFlits(p)[0], 10)
	out := r.Out(mesh.East)
	departed := stepUntil(r, 10, 20, func() bool { return !out.FlitOut.Empty() })
	if departed != 14 {
		t.Fatalf("4-stage head departed at %d, want 14", departed)
	}
}

func TestRouteComputation(t *testing.T) {
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	cases := []struct {
		dst  mesh.NodeID
		want mesh.Direction
	}{
		{6, mesh.East}, {4, mesh.West}, {1, mesh.North}, {9, mesh.South},
		{10, mesh.East}, // X first
		{5, mesh.Local},
	}
	for i, c := range cases {
		p := mkPacket(uint64(i), 0, c.dst, 1)
		r.ReceiveFlit(mesh.Local, i%r.NumVCs(), flit.NewFlits(p)[0], 0)
	}
	r.Step(1) // routes computed in VA phase
	var want [mesh.NumPorts]bool
	r.WantsOutput(&want)
	for _, c := range cases {
		if !want[c.want] {
			t.Errorf("output %v not wanted (dst %d)", c.want, c.dst)
		}
	}
}

func TestCreditsBlockWhenExhausted(t *testing.T) {
	// A 5-flit data packet through a 3-deep downstream VC: without
	// credit returns only 3 flits may leave; returning credits releases
	// the rest.
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	out := r.Out(mesh.East)

	p := mkPacket(1, 4, 7, 5)
	fs := flit.NewFlits(p)
	next := 0
	var allocatedVC = -1
	for now := int64(0); now < 30; now++ {
		if next < len(fs) && r.CanAcceptFlit(mesh.West, 0) {
			r.ReceiveFlit(mesh.West, 0, fs[next], now)
			next++
		}
		r.Step(now)
		out.FlitOut.Drain(now+100, func(ft FlitInTransit) { allocatedVC = ft.VC })
	}
	// 3 drained, credits for the downstream VC now 0; flits 3,4 stuck.
	if got := r.BufferedFlits(); got != 2 {
		t.Fatalf("buffered = %d, want 2 stuck flits (credits exhausted)", got)
	}
	if out.Credits(allocatedVC) != 0 {
		t.Fatalf("credits = %d, want 0", out.Credits(allocatedVC))
	}
	// Returning credits unblocks the tail of the packet.
	r.ReceiveCredit(mesh.East, allocatedVC)
	r.ReceiveCredit(mesh.East, allocatedVC)
	forwarded := 0
	for now := int64(30); now < 40; now++ {
		r.Step(now)
		out.FlitOut.Drain(now+100, func(FlitInTransit) { forwarded++ })
	}
	if forwarded != 2 || r.BufferedFlits() != 0 {
		t.Fatalf("after credit return: forwarded %d, buffered %d", forwarded, r.BufferedFlits())
	}
}

func TestWormholeKeepsPacketContiguousPerVC(t *testing.T) {
	// A 5-flit data packet must depart in order, one flit per cycle once
	// flowing.
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	p := mkPacket(1, 4, 7, 5)
	fs := flit.NewFlits(p)
	out := r.Out(mesh.East)
	var seqs []int
	next := 0
	for now := int64(0); now < 30; now++ {
		if next < len(fs) && r.CanAcceptFlit(mesh.West, 0) {
			r.ReceiveFlit(mesh.West, 0, fs[next], now)
			next++
		}
		r.Step(now)
		// Return credits promptly so the whole packet can flow.
		out.FlitOut.Drain(now+100, func(ft FlitInTransit) {
			seqs = append(seqs, ft.Flit.Seq)
			r.ReceiveCredit(mesh.East, ft.VC)
		})
	}
	if len(seqs) != 5 {
		t.Fatalf("forwarded %d flits, want 5", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("out-of-order flits: %v", seqs)
		}
	}
}

func TestBlockedOutputAccruesPaperStats(t *testing.T) {
	cfg := testCfg()
	cfg.Scheme = config.ConvOptPG
	r := newRouter(t, 5, &cfg)
	r.Out(mesh.East).Blocked = true

	p := mkPacket(1, 4, 7, 1)
	r.ReceiveFlit(mesh.West, 0, flit.NewFlits(p)[0], 0)
	for now := int64(0); now < 10; now++ {
		r.Step(now)
	}
	if p.BlockedRouters != 1 {
		t.Errorf("BlockedRouters = %d, want 1 (counted once per router)", p.BlockedRouters)
	}
	// Eligible from cycle 3 (arrival 0 + Trouter 3): waits cycles 3..9.
	if p.WakeupWait != 7 {
		t.Errorf("WakeupWait = %d, want 7", p.WakeupWait)
	}
	if r.PGStallCycles != 7 {
		t.Errorf("PGStallCycles = %d, want 7", r.PGStallCycles)
	}

	// Unblocking lets the packet proceed; the counters stop.
	r.Out(mesh.East).Blocked = false
	for now := int64(10); now < 15; now++ {
		r.Step(now)
	}
	if r.Out(mesh.East).FlitOut.Empty() {
		t.Error("packet did not proceed after unblock")
	}
	if p.BlockedRouters != 1 {
		t.Errorf("BlockedRouters grew after unblock: %d", p.BlockedRouters)
	}
}

func TestGatedRouterDoesNothing(t *testing.T) {
	cfg := testCfg()
	cfg.Scheme = config.ConvOptPG
	m := mesh.New(cfg.Width, cfg.Height)
	ctrl := pg.New(true, 2, 8, 10)
	r := New(5, topo.Routing(topo.FromMesh(m)), &cfg, ctrl, nil)
	// Gate the controller.
	for i := 0; i < 5; i++ {
		ctrl.Step(pg.Inputs{Empty: true})
	}
	if ctrl.IsOn() {
		t.Fatal("setup: controller should be gated")
	}
	// Step must be a no-op (and must not panic) while gated.
	r.Step(100)
	if !r.Empty() {
		t.Error("gated router mutated state")
	}
}

func TestVCAllocationRespectsVirtualNetworks(t *testing.T) {
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	// A VN0 packet must never be allocated a VN1/VN2 downstream VC.
	p := mkPacket(1, 4, 7, 1)
	r.ReceiveFlit(mesh.West, 0, flit.NewFlits(p)[0], 0)
	for now := int64(0); now < 6; now++ {
		r.Step(now)
	}
	var got FlitInTransit
	found := false
	r.Out(mesh.East).FlitOut.Drain(100, func(ft FlitInTransit) { got, found = ft, true })
	if !found {
		t.Fatal("packet not forwarded")
	}
	perVN := cfg.VCsPerVN()
	if got.VC < 0 || got.VC >= perVN {
		t.Errorf("VN0 packet allocated downstream VC %d outside [0,%d)", got.VC, perVN)
	}
}

func TestControlPacketPrefersControlVC(t *testing.T) {
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	p := mkPacket(1, 4, 7, 1) // control packet
	r.ReceiveFlit(mesh.West, 0, flit.NewFlits(p)[0], 0)
	for now := int64(0); now < 6; now++ {
		r.Step(now)
	}
	var vc int
	r.Out(mesh.East).FlitOut.Drain(100, func(ft FlitInTransit) { vc = ft.VC })
	if vc != cfg.DataVCs { // control VC follows the data VCs
		t.Errorf("control packet on VC %d, want control VC %d", vc, cfg.DataVCs)
	}
}

func TestDataPacketUsesDataVC(t *testing.T) {
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	p := mkPacket(1, 4, 7, 5)
	fs := flit.NewFlits(p)
	for i, f := range fs[:3] {
		r.ReceiveFlit(mesh.West, 0, f, int64(i))
	}
	for now := int64(0); now < 8; now++ {
		r.Step(now)
	}
	seen := false
	r.Out(mesh.East).FlitOut.Drain(100, func(ft FlitInTransit) {
		seen = true
		if !defaultIsData(&cfg, ft.VC) {
			t.Errorf("data packet on non-data VC %d", ft.VC)
		}
	})
	if !seen {
		t.Fatal("no flits forwarded")
	}
}

func defaultIsData(cfg *config.Config, vcIdx int) bool {
	return cfg.IsDataVC(vcIdx % cfg.VCsPerVN())
}

func TestReceiveFlitPanicsOnOverflow(t *testing.T) {
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	p := mkPacket(1, 4, 7, 5)
	fs := flit.NewFlits(p)
	for i := 0; i < 3; i++ { // data VC depth is 3
		r.ReceiveFlit(mesh.West, 0, fs[i], int64(i))
	}
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	r.ReceiveFlit(mesh.West, 0, fs[3], 3)
}

func TestEjectionPortHasUnboundedCredits(t *testing.T) {
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	// Many packets to the local port must never stall on credits.
	var pending []*flit.Flit
	for i := 0; i < 8; i++ {
		p := mkPacket(uint64(i), 4, 5, 1)
		pending = append(pending, flit.NewFlits(p)[0])
	}
	count := 0
	for now := int64(0); now < 60; now++ {
		vc := int(now) % cfg.VCsPerVN()
		if len(pending) > 0 && r.CanAcceptFlit(mesh.West, vc) {
			r.ReceiveFlit(mesh.West, vc, pending[0], now)
			pending = pending[1:]
		}
		r.Step(now)
		r.Out(mesh.Local).FlitOut.Drain(now+100, func(FlitInTransit) { count++ })
	}
	if count != 8 {
		t.Errorf("ejected %d flits, want 8", count)
	}
}

func TestCanAcceptFlit(t *testing.T) {
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	if !r.CanAcceptFlit(mesh.Local, 0) {
		t.Error("fresh router must accept")
	}
	p := mkPacket(1, 5, 7, 5)
	fs := flit.NewFlits(p)
	for i := 0; i < 3; i++ {
		r.ReceiveFlit(mesh.Local, 0, fs[i], int64(i))
	}
	if r.CanAcceptFlit(mesh.Local, 0) {
		t.Error("full VC must refuse")
	}
	if r.BufferedFlits() != 3 {
		t.Errorf("BufferedFlits = %d", r.BufferedFlits())
	}
}

func TestResidentHeadsEnumeratesAllHeadFlits(t *testing.T) {
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	p1 := mkPacket(1, 4, 7, 1)
	p2 := mkPacket(2, 4, 11, 1)
	r.ReceiveFlit(mesh.West, 0, flit.NewFlits(p1)[0], 0)
	r.ReceiveFlit(mesh.West, 1, flit.NewFlits(p2)[0], 0)
	var got []uint64
	r.ResidentHeads(func(p *flit.Packet) { got = append(got, p.ID) })
	if len(got) != 2 {
		t.Fatalf("ResidentHeads found %d packets, want 2", len(got))
	}
	// Two queued packets in ONE VC both expose their heads.
	r2 := newRouter(t, 5, &cfg)
	q1 := mkPacket(3, 4, 7, 1)
	q2 := mkPacket(4, 4, 11, 1)
	r2.ReceiveFlit(mesh.West, 2, flit.NewFlits(q1)[0], 0)
	// control VC depth is 1, use a data VC for queueing two heads
	r2.ReceiveFlit(mesh.West, 0, flit.NewFlits(q2)[0], 0)
	n := 0
	r2.ResidentHeads(func(*flit.Packet) { n++ })
	if n != 2 {
		t.Errorf("queued heads: %d, want 2", n)
	}
}

func TestSwitchAllocationIsRoundRobinFair(t *testing.T) {
	// Two input VCs stream single-flit packets toward the same output;
	// over many cycles each must win about half the grants.
	cfg := testCfg()
	r := newRouter(t, 5, &cfg)
	out := r.Out(mesh.East)
	wins := map[int]int{}
	var nextID uint64
	for now := int64(0); now < 400; now++ {
		for _, vc := range []int{0, 1} {
			if r.CanAcceptFlit(mesh.West, vc) {
				nextID++
				p := mkPacket(nextID, 4, 7, 1)
				r.ReceiveFlit(mesh.West, vc, flit.NewFlits(p)[0], now)
			}
		}
		r.Step(now)
		out.FlitOut.Drain(now+100, func(ft FlitInTransit) {
			wins[ft.VC%cfg.VCsPerVN()]++ // downstream VC tracks input class
			r.ReceiveCredit(mesh.East, ft.VC)
		})
	}
	total := 0
	for _, w := range wins {
		total += w
	}
	if total < 100 {
		t.Fatalf("too few grants: %d", total)
	}
	// No starvation: every contending class forwarded something and no
	// class took more than 80% of the link.
	for vc, w := range wins {
		frac := float64(w) / float64(total)
		if frac > 0.8 {
			t.Errorf("VC class %d monopolized the output (%.0f%%)", vc, frac*100)
		}
	}
}
