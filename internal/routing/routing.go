// Package routing implements dimension-order (XY) routing for 2D meshes,
// plus the path-walking helpers Power Punch needs: computing the router a
// given number of hops ahead on a packet's path (the paper's "targeted
// router") and the legal-turn predicates that bound which wakeup signals
// can share a punch channel.
//
// XY routing forwards a packet along the X dimension until the packet is
// in the destination's column, then along the Y dimension. X-to-Y turns
// are legal; Y-to-X turns are not, which is what makes the routing
// deadlock-free and what lets the punch encoder prune impossible signal
// combinations (paper Section 4.1, step 3).
package routing

import (
	"fmt"

	"powerpunch/internal/mesh"
)

// XY computes the output direction at router cur for a packet destined to
// dst under dimension-order routing. It returns mesh.Local when cur == dst.
func XY(m *mesh.Mesh, cur, dst mesh.NodeID) mesh.Direction {
	cc, dc := m.CoordOf(cur), m.CoordOf(dst)
	switch {
	case dc.X > cc.X:
		return mesh.East
	case dc.X < cc.X:
		return mesh.West
	case dc.Y > cc.Y:
		return mesh.South
	case dc.Y < cc.Y:
		return mesh.North
	default:
		return mesh.Local
	}
}

// NextHop returns the next router on the XY path from cur to dst, or cur
// itself when cur == dst.
func NextHop(m *mesh.Mesh, cur, dst mesh.NodeID) mesh.NodeID {
	d := XY(m, cur, dst)
	if d == mesh.Local {
		return cur
	}
	n := m.Neighbor(cur, d)
	if n == mesh.Invalid {
		// XY on a mesh can never route off an edge; this is a corrupted
		// destination and a programming error.
		cc, dc := m.CoordOf(cur), m.CoordOf(dst)
		panic(fmt.Sprintf("routing: XY step %v from node %d (%d,%d) toward node %d (%d,%d) leaves the %s",
			d, cur, cc.X, cc.Y, dst, dc.X, dc.Y, m))
	}
	return n
}

// Path returns the full XY path from src to dst, inclusive of both
// endpoints. Path(src, src) returns [src].
func Path(m *mesh.Mesh, src, dst mesh.NodeID) []mesh.NodeID {
	path := []mesh.NodeID{src}
	cur := src
	for cur != dst {
		cur = NextHop(m, cur, dst)
		path = append(path, cur)
	}
	return path
}

// Ahead returns the router k hops ahead of cur on the XY path to dst. If
// fewer than k hops remain, it returns dst. Ahead(cur, dst, 0) == cur.
// This is the paper's targeted-router computation: with a 3-hop punch,
// the targeted router of a packet at cur is Ahead(cur, dst, 3).
func Ahead(m *mesh.Mesh, cur, dst mesh.NodeID, k int) mesh.NodeID {
	node := cur
	for i := 0; i < k && node != dst; i++ {
		node = NextHop(m, node, dst)
	}
	return node
}

// HopsRemaining returns the number of hops left on the XY path from cur
// to dst (the Manhattan distance, since XY is minimal).
func HopsRemaining(m *mesh.Mesh, cur, dst mesh.NodeID) int {
	return m.HopDistance(cur, dst)
}

// OnPath reports whether node lies on the XY path from src to dst
// (inclusive of the endpoints).
func OnPath(m *mesh.Mesh, src, dst, node mesh.NodeID) bool {
	cur := src
	for {
		if cur == node {
			return true
		}
		if cur == dst {
			return false
		}
		cur = NextHop(m, cur, dst)
	}
}

// LegalTurn reports whether a packet arriving on input direction `in`
// (the direction of travel, not the port side) may depart in direction
// `out` under XY routing. Continuing straight and X-to-Y turns are legal;
// Y-to-X turns are not. Injection (in == Local) and ejection
// (out == Local) are always legal.
func LegalTurn(in, out mesh.Direction) bool {
	if in == mesh.Local || out == mesh.Local {
		return true
	}
	if in.IsY() && out.IsX() {
		return false
	}
	// A packet never reverses direction under minimal routing.
	if out == in.Opposite() {
		return false
	}
	return true
}

// FirstDirection returns the direction of the first hop of the XY path
// from src to dst, or mesh.Local if src == dst. It is used by the punch
// relay to decide which outgoing channel serves a target.
func FirstDirection(m *mesh.Mesh, src, dst mesh.NodeID) mesh.Direction {
	return XY(m, src, dst)
}
