package routing

import (
	"testing"
	"testing/quick"

	"powerpunch/internal/mesh"
)

func TestXYDirections(t *testing.T) {
	m := mesh.New(8, 8)
	cases := []struct {
		cur, dst mesh.NodeID
		want     mesh.Direction
	}{
		{27, 31, mesh.East},  // same row, east
		{27, 24, mesh.West},  // same row, west
		{27, 3, mesh.North},  // same column, north
		{27, 59, mesh.South}, // same column, south
		{27, 36, mesh.East},  // X resolves before Y
		{27, 20, mesh.East},
		{27, 27, mesh.Local},
	}
	for _, c := range cases {
		if got := XY(m, c.cur, c.dst); got != c.want {
			t.Errorf("XY(%d->%d) = %v, want %v", c.cur, c.dst, got, c.want)
		}
	}
}

func TestPathPaperExample(t *testing.T) {
	// Section 4.1 step 1: a packet at R26 destined to R31 targets R29;
	// the path runs along the row.
	m := mesh.New(8, 8)
	want := []mesh.NodeID{26, 27, 28, 29, 30, 31}
	got := Path(m, 26, 31)
	if len(got) != len(want) {
		t.Fatalf("Path(26,31) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path(26,31) = %v, want %v", got, want)
		}
	}
	if tr := Ahead(m, 26, 31, 3); tr != 29 {
		t.Errorf("Ahead(26,31,3) = %d, want 29 (paper targeted router)", tr)
	}
}

func TestAheadClampsAtDestination(t *testing.T) {
	m := mesh.New(8, 8)
	if got := Ahead(m, 26, 28, 3); got != 28 {
		t.Errorf("Ahead(26,28,3) = %d, want 28", got)
	}
	if got := Ahead(m, 5, 5, 3); got != 5 {
		t.Errorf("Ahead(5,5,3) = %d, want 5", got)
	}
	if got := Ahead(m, 10, 50, 0); got != 10 {
		t.Errorf("Ahead(_,_,0) must be cur")
	}
}

func TestPathLengthEqualsManhattanDistance(t *testing.T) {
	// Property: XY is minimal — path length == HopDistance + 1 nodes.
	m := mesh.New(8, 8)
	f := func(aRaw, bRaw uint8) bool {
		a := mesh.NodeID(int(aRaw) % m.NumNodes())
		b := mesh.NodeID(int(bRaw) % m.NumNodes())
		return len(Path(m, a, b)) == m.HopDistance(a, b)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathSuffixProperty(t *testing.T) {
	// Property underlying punch relays (Section 4.1 step 2): for any
	// node Mon the XY path from S to D, the XY path from M to D is the
	// suffix of the original path. Punches can therefore be re-routed at
	// every relay with plain XY and still follow the packet's path.
	m := mesh.New(8, 8)
	f := func(aRaw, bRaw uint8) bool {
		a := mesh.NodeID(int(aRaw) % m.NumNodes())
		b := mesh.NodeID(int(bRaw) % m.NumNodes())
		p := Path(m, a, b)
		for i, node := range p {
			sub := Path(m, node, b)
			if len(sub) != len(p)-i {
				return false
			}
			for j := range sub {
				if sub[j] != p[i+j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPathsUseOnlyLegalTurns(t *testing.T) {
	// Property: XY paths never take a Y-to-X turn (deadlock freedom).
	m := mesh.New(8, 8)
	f := func(aRaw, bRaw uint8) bool {
		a := mesh.NodeID(int(aRaw) % m.NumNodes())
		b := mesh.NodeID(int(bRaw) % m.NumNodes())
		p := Path(m, a, b)
		in := mesh.Local
		for i := 0; i+1 < len(p); i++ {
			out := XY(m, p[i], b)
			if !LegalTurn(in, out) {
				return false
			}
			in = out
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLegalTurn(t *testing.T) {
	cases := []struct {
		in, out mesh.Direction
		want    bool
	}{
		{mesh.East, mesh.East, true},
		{mesh.East, mesh.North, true},  // X to Y: legal
		{mesh.East, mesh.South, true},  // X to Y: legal
		{mesh.North, mesh.East, false}, // Y to X: illegal
		{mesh.South, mesh.West, false}, // Y to X: illegal
		{mesh.North, mesh.North, true},
		{mesh.East, mesh.West, false}, // reversal
		{mesh.North, mesh.South, false},
		{mesh.Local, mesh.East, true},
		{mesh.North, mesh.Local, true},
	}
	for _, c := range cases {
		if got := LegalTurn(c.in, c.out); got != c.want {
			t.Errorf("LegalTurn(%v,%v) = %v, want %v", c.in, c.out, got, c.want)
		}
	}
}

func TestOnPath(t *testing.T) {
	m := mesh.New(8, 8)
	// Path 27 -> 21 is 27,28,29,21 (paper: "R26 to R29 is along the path
	// from R27 to R21").
	for _, node := range []mesh.NodeID{27, 28, 29, 21} {
		if !OnPath(m, 27, 21, node) {
			t.Errorf("OnPath(27,21,%d) = false", node)
		}
	}
	for _, node := range []mesh.NodeID{26, 20, 37, 13} {
		if OnPath(m, 27, 21, node) {
			t.Errorf("OnPath(27,21,%d) = true", node)
		}
	}
}

func TestNextHopPanicsOffMesh(t *testing.T) {
	// NextHop toward an invalid destination must panic rather than route
	// off the edge silently. (Destinations are validated upstream; this
	// guards the invariant.)
	m := mesh.New(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for off-mesh destination")
		}
	}()
	Path(m, 3, 99)
}

func TestFirstDirectionMatchesXY(t *testing.T) {
	m := mesh.New(8, 8)
	if FirstDirection(m, 27, 21) != XY(m, 27, 21) {
		t.Error("FirstDirection disagrees with XY")
	}
}
