// Package scheme defines the pluggable power-management policy layer:
// the Policy contract every gating scheme implements, a string-keyed
// registry the configuration layer resolves names through, and the
// built-in policies — the paper's comparison set (No-PG, ConvOpt-PG,
// PowerPunch-Signal, PowerPunch-PG, the ablation-only Plain-PG) plus
// the FlyOver-style bypass scheme.
//
// Before this layer existed, scheme behaviour was an int enum in
// internal/config whose boolean predicates leaked into six packages;
// adding a rival scheme meant touching every layer. Now the network,
// router, NI, parallel engine, and invariant engine consult one Policy
// resolved once at construction, and a new scheme is one Register call
// (see DESIGN.md §15 and the README "Adding a scheme" walkthrough).
//
// The registry is populated in init and read-only afterwards, so
// Lookup is safe for concurrent use.
package scheme

import (
	"fmt"
	"sort"
	"strings"
)

// Policy is the contract a power-management scheme implements. All
// methods are pure: the simulator resolves a Config's policy once at
// network construction and consults these predicates to wire gating,
// wakeup, punch, NI, and bypass behaviour. Implementations must be
// stateless (one registered value serves every concurrent network).
type Policy interface {
	// Name is the scheme's presentation name — the registry key, the
	// Config.Scheme spelling, and the name golden files and CLI flags
	// use (e.g. "PowerPunch-PG").
	Name() string

	// Gates reports whether routers may be power-gated off at all.
	Gates() bool
	// EarlyWakeup reports whether WU levels fire at route-computation
	// time (the ConvOpt optimization, subsumed by the punch schemes);
	// without it WU asserts only when the packet requests the switch.
	EarlyWakeup() bool
	// IdleFilter reports whether the long (BET-oriented) idle timeout
	// applies before gating; without it only the 2-cycle in-flight
	// minimum holds.
	IdleFilter() bool
	// Punches reports whether multi-hop punch signals are active.
	Punches() bool
	// NISlack reports whether injection-node slack (paper Section 4.2)
	// is exploited.
	NISlack() bool
	// Bypass reports whether flits may detour around gated routers on
	// a latch-based bypass path instead of waking them (the FlyOver
	// approach). Bypass schemes require LinkLatency == 1.
	Bypass() bool
}

// Accountant is the narrow slice of the power model a policy's energy
// attribution hooks may charge through (power.Accountant implements
// it). Node IDs are plain ints.
type Accountant interface {
	// LinkHop charges one link traversal's dynamic energy to router r.
	LinkHop(r int)
	// Traverse charges one crossbar traversal's dynamic energy to
	// router r.
	Traverse(r int)
}

// BypassEnergy is implemented by bypass policies that charge the
// detour's extra energy. The router invokes it at the granting
// (upstream) router when a flit is sent onto a bypass path — the
// charge lands on the sender so the float accumulation order is
// identical across the serial, full-walk, and parallel engines.
type BypassEnergy interface {
	// AttributeBypass charges the energy of one bypass hop (the latch
	// path through the gated router) against sender's accumulators.
	AttributeBypass(a Accountant, sender int)
}

// UnknownSchemeError reports a scheme name that is not in the
// registry. It is a typed error so the CLIs can exit 2 on it, the
// campaign server can reject bad submissions with the exact message in
// its 400 JSON envelope, and tests can assert on it with errors.As —
// mirroring config's UnknownPowerPresetError contract.
type UnknownSchemeError struct {
	Name  string
	Known []string // registered scheme names, sorted
}

func (e *UnknownSchemeError) Error() string {
	return fmt.Sprintf("config: unknown scheme %q (known schemes: %s)",
		e.Name, strings.Join(e.Known, ", "))
}

// registry maps presentation names to policies. Populated in init and
// by Register; read-only after package initialization in practice.
var registry = map[string]Policy{}

// Register adds p to the registry. It panics on a duplicate or empty
// name: registration happens at init time and a collision is a
// programming error, not a runtime condition.
func Register(p Policy) {
	name := p.Name()
	if name == "" {
		panic("scheme: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scheme: duplicate Register(%q)", name))
	}
	registry[name] = p
}

// Lookup resolves a registered scheme by name. The empty string
// resolves to the No-PG baseline (the zero Config.Scheme). Unknown
// names fail with *UnknownSchemeError carrying the known names.
func Lookup(name string) (Policy, error) {
	if name == "" {
		name = NoPG
	}
	p, ok := registry[name]
	if !ok {
		return nil, &UnknownSchemeError{Name: name, Known: Names()}
	}
	return p, nil
}

// Names returns the registered scheme names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The built-in scheme names (registry keys).
const (
	NoPG             = "No-PG"
	ConvOptPG        = "ConvOpt-PG"
	PowerPunchSignal = "PowerPunch-Signal"
	PowerPunchPG     = "PowerPunch-PG"
	PlainPG          = "Plain-PG"
	FlyOverPG        = "FlyOver-PG"
)

// flat is the stateless predicate-table policy the built-in schemes
// are expressed as.
type flat struct {
	name                                       string
	gates, early, idleFilter, punches, niSlack bool
	bypass                                     bool
}

func (f flat) Name() string      { return f.name }
func (f flat) Gates() bool       { return f.gates }
func (f flat) EarlyWakeup() bool { return f.early }
func (f flat) IdleFilter() bool  { return f.idleFilter }
func (f flat) Punches() bool     { return f.punches }
func (f flat) NISlack() bool     { return f.niSlack }
func (f flat) Bypass() bool      { return f.bypass }

// flyOver is the FlyOver-style bypass policy: routers gate like
// ConvOpt (long idle filter, early wakeup for turning traffic), but
// straight-through flits detour around gated routers on a 1-cycle
// latch path instead of waking them. The detour costs one extra link
// hop of dynamic energy, charged at the sender.
type flyOver struct{ flat }

// AttributeBypass implements BypassEnergy: the latch path through the
// gated router is modeled as one additional link traversal.
func (flyOver) AttributeBypass(a Accountant, sender int) { a.LinkHop(sender) }

func init() {
	Register(flat{name: NoPG})
	Register(flat{name: ConvOptPG, gates: true, early: true, idleFilter: true})
	Register(flat{name: PowerPunchSignal, gates: true, early: true, punches: true})
	Register(flat{name: PowerPunchPG, gates: true, early: true, punches: true, niSlack: true})
	Register(flat{name: PlainPG, gates: true})
	Register(flyOver{flat{name: FlyOverPG, gates: true, early: true, idleFilter: true, bypass: true}})
}
