package scheme

import (
	"errors"
	"sort"
	"testing"
)

// TestLookupContract pins the registry's resolution rules: the empty
// string is the No-PG baseline (the zero Config.Scheme), every
// registered name round-trips, and unknown names fail with a typed
// *UnknownSchemeError carrying the full sorted name list.
func TestLookupContract(t *testing.T) {
	p, err := Lookup("")
	if err != nil || p.Name() != NoPG {
		t.Fatalf("Lookup(\"\") = %v, %v; want the No-PG baseline", p, err)
	}
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, p.Name())
		}
	}
	_, err = Lookup("Bogus-PG")
	var ue *UnknownSchemeError
	if !errors.As(err, &ue) {
		t.Fatalf("Lookup(Bogus-PG) error is %T, want *UnknownSchemeError", err)
	}
	if ue.Name != "Bogus-PG" || len(ue.Known) != len(Names()) {
		t.Errorf("error payload %+v does not carry the known names", ue)
	}
}

// TestNamesSorted pins that Names is sorted and contains exactly the
// built-in set — the spelling golden files, CLI flags, and serve specs
// depend on.
func TestNamesSorted(t *testing.T) {
	got := Names()
	if !sort.StringsAreSorted(got) {
		t.Errorf("Names() not sorted: %v", got)
	}
	want := map[string]bool{
		NoPG: true, ConvOptPG: true, PowerPunchSignal: true,
		PowerPunchPG: true, PlainPG: true, FlyOverPG: true,
	}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want the %d built-ins", got, len(want))
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("unexpected registered scheme %q", n)
		}
	}
}

// TestRegisterRejectsCollisions pins the init-time programming-error
// contract: duplicate and empty names panic rather than silently
// shadowing an existing policy.
func TestRegisterRejectsCollisions(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate Register", func() { Register(flat{name: NoPG}) })
	mustPanic("empty-name Register", func() { Register(flat{}) })
}

// TestBuiltinPolicyTable pins the predicate rows of the built-in
// schemes — the capability matrix every layer wires against.
func TestBuiltinPolicyTable(t *testing.T) {
	cases := []struct {
		name                                               string
		gates, early, idleFilter, punches, niSlack, bypass bool
	}{
		{NoPG, false, false, false, false, false, false},
		{ConvOptPG, true, true, true, false, false, false},
		{PowerPunchSignal, true, true, false, true, false, false},
		{PowerPunchPG, true, true, false, true, true, false},
		{PlainPG, true, false, false, false, false, false},
		{FlyOverPG, true, true, true, false, false, true},
	}
	for _, c := range cases {
		p, err := Lookup(c.name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", c.name, err)
		}
		if p.Gates() != c.gates || p.EarlyWakeup() != c.early ||
			p.IdleFilter() != c.idleFilter || p.Punches() != c.punches ||
			p.NISlack() != c.niSlack || p.Bypass() != c.bypass {
			t.Errorf("%s predicate row wrong: %+v", c.name, p)
		}
	}
	// The bypass policy must also attribute its detour energy.
	p, _ := Lookup(FlyOverPG)
	if _, ok := p.(BypassEnergy); !ok {
		t.Errorf("%s does not implement BypassEnergy", FlyOverPG)
	}
}
