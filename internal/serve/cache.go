package serve

import (
	"container/list"
	"sync"
)

// cacheEntry is one result in the cache. ready is closed when the
// entry is filled (data or err set); an entry is completed-and-cached
// iff elem is non-nil (failures are never retained).
type cacheEntry struct {
	key   string
	ready chan struct{}
	data  []byte
	err   error
	elem  *list.Element // LRU position; nil while in flight
}

// resultCache is an LRU of marshaled JobRecords keyed by the
// canonical spec hash, with single-flight semantics: the first
// acquirer of a key owns the simulation, concurrent acquirers of the
// same key wait on the one in-flight entry instead of re-simulating.
type resultCache struct {
	mu        sync.Mutex
	max       int // completed entries retained; in-flight entries are unbounded
	ll        *list.List
	m         map[string]*cacheEntry
	evictions int64
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), m: make(map[string]*cacheEntry)}
}

// acquire returns the entry for key and whether the caller owns
// filling it. Non-owners must wait on entry.ready before reading
// data/err.
func (c *resultCache) acquire(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		if e.elem != nil {
			c.ll.MoveToFront(e.elem)
		}
		return e, false
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.m[key] = e
	return e, true
}

// fill completes an entry acquired with ownership. Failed entries are
// forgotten (the next acquire retries); successful entries enter the
// LRU, evicting the coldest completed entries beyond max.
func (c *resultCache) fill(e *cacheEntry, data []byte, err error) {
	c.mu.Lock()
	e.data, e.err = data, err
	if err != nil {
		delete(c.m, e.key)
	} else {
		e.elem = c.ll.PushFront(e)
		c.evict()
	}
	c.mu.Unlock()
	close(e.ready)
}

// peek returns the completed cached bytes for key, if any, touching
// the entry's LRU position. In-flight entries do not count: a peek
// miss followed by acquire is how waiters join them.
func (c *resultCache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok || e.elem == nil {
		return nil, false
	}
	c.ll.MoveToFront(e.elem)
	return e.data, true
}

// seed inserts an already-computed record, used when restoring
// persisted campaign state so resumed campaigns don't re-simulate
// finished points.
func (c *resultCache) seed(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	e := &cacheEntry{key: key, ready: make(chan struct{}), data: data}
	close(e.ready)
	c.m[key] = e
	e.elem = c.ll.PushFront(e)
	c.evict()
}

// evict drops completed entries beyond max. Callers hold mu.
func (c *resultCache) evict() {
	for c.max > 0 && c.ll.Len() > c.max {
		old := c.ll.Remove(c.ll.Back()).(*cacheEntry)
		delete(c.m, old.key)
		c.evictions++
	}
}

// Evictions returns how many completed entries have been evicted.
func (c *resultCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of completed cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
