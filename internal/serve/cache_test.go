package serve

import (
	"bytes"
	"errors"
	"net/http"
	"testing"
)

func TestCanonicalKeyStability(t *testing.T) {
	// A spec spelling every default explicitly and the empty spec are
	// the same job, so they must share a cache key.
	minimal := JobSpec{}
	explicit := JobSpec{
		Scheme:   "PowerPunch-PG",
		Topology: "mesh",
		Width:    8,
		Height:   8,
		Pattern:  "uniform",
		Rate:     0.02,
		Cycles:   20_000,
		Seed:     1,
	}
	nm, err := minimal.normalize()
	if err != nil {
		t.Fatal(err)
	}
	ne, err := explicit.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if nm.Key() != ne.Key() {
		t.Errorf("minimal key %s != explicit-defaults key %s", nm.Key(), ne.Key())
	}
}

func TestCanonicalKeyFieldSensitivity(t *testing.T) {
	base := quickSpec(1)
	mutations := map[string]func(*JobSpec){
		"scheme":   func(s *JobSpec) { s.Scheme = "No-PG" },
		"topology": func(s *JobSpec) { s.Topology = "torus" },
		"width":    func(s *JobSpec) { s.Width = 6 },
		"height":   func(s *JobSpec) { s.Height = 6 },
		"pattern":  func(s *JobSpec) { s.Pattern = "transpose" },
		"rate":     func(s *JobSpec) { s.Rate = 0.051 },
		"cycles":   func(s *JobSpec) { s.Cycles = 301 },
		"warmup":   func(s *JobSpec) { s.Warmup = 10 },
		"seed":     func(s *JobSpec) { s.Seed = 2 },
	}
	nb, err := base.normalize()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{nb.Key(): "base"}
	for name, mutate := range mutations {
		sp := base
		mutate(&sp)
		n, err := sp.normalize()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[n.Key()]; dup {
			t.Errorf("mutating %s collides with %s on key %s", name, prev, n.Key())
		}
		seen[n.Key()] = name
	}
	// Bench jobs key on bench/instr instead of the synthetic axes.
	b1, err := JobSpec{Bench: "canneal", Instr: 1000}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := JobSpec{Bench: "canneal", Instr: 2000}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if b1.Key() == b2.Key() {
		t.Error("bench instr change did not change the key")
	}
	if _, dup := seen[b1.Key()]; dup {
		t.Error("bench key collides with a synthetic key")
	}
}

func TestCanonicalKeyIgnoresEngine(t *testing.T) {
	serial := quickSpec(1)
	sharded := quickSpec(1)
	sharded.Workers = 8
	ns, err := serial.normalize()
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sharded.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ns.Key() != nw.Key() {
		t.Errorf("engine choice split the cache: %s vs %s", ns.Key(), nw.Key())
	}
}

// TestCacheHitByteIdentical is the PR's core determinism claim over
// the wire: resubmitting the same (config, seed) returns the exact
// bytes of the first run, costs zero additional simulated cycles, and
// increments the hit counter — even when the resubmission asks for a
// different tick engine.
func TestCacheHitByteIdentical(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2})
	spec := quickSpec(81)

	first := ts.submit(t, spec, http.StatusAccepted)
	ts.waitJob(t, first.ID)
	_, bytesA := ts.get(t, "/api/v1/jobs/"+first.ID+"/result")
	st := ts.statsOf(t)
	if st["cache_misses"] != 1 || st["cache_hits"] != 0 {
		t.Fatalf("after first run: misses=%v hits=%v", st["cache_misses"], st["cache_hits"])
	}
	// sim_cycles counts the whole run, measurement window plus drain.
	simCycles := st["sim_cycles"]
	if simCycles < float64(spec.Cycles) {
		t.Fatalf("sim_cycles = %v, want >= %d", simCycles, spec.Cycles)
	}

	// Same job on the sharded engine: served from cache without
	// touching the pool (200 with cached=true, not 202).
	respec := spec
	respec.Workers = 2
	second := ts.submit(t, respec, http.StatusOK)
	if !second.Cached || second.Status != "done" {
		t.Fatalf("resubmission not served from cache: %+v", second)
	}
	if second.Key != first.Key {
		t.Fatalf("resubmission key %s != original %s", second.Key, first.Key)
	}
	_, bytesB := ts.get(t, "/api/v1/jobs/"+second.ID+"/result")
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatalf("cached result differs from original:\nA: %s\nB: %s", bytesA, bytesB)
	}
	st = ts.statsOf(t)
	if st["cache_hits"] != 1 || st["cache_misses"] != 1 {
		t.Errorf("after hit: hits=%v misses=%v", st["cache_hits"], st["cache_misses"])
	}
	if st["sim_cycles"] != simCycles {
		t.Errorf("cache hit simulated cycles: %v -> %v", simCycles, st["sim_cycles"])
	}

	// One field changed -> different key -> a real simulation.
	third := spec
	third.Seed = 82
	tr := ts.submit(t, third, http.StatusAccepted)
	if tr.Key == first.Key {
		t.Fatal("seed change kept the same key")
	}
	ts.waitJob(t, tr.ID)
	st = ts.statsOf(t)
	if st["cache_misses"] != 2 || st["sim_cycles"] <= simCycles {
		t.Errorf("after seed change: misses=%v sim_cycles=%v", st["cache_misses"], st["sim_cycles"])
	}
}

// TestFreshServerByteIdentical locks cross-process determinism: two
// independent servers produce byte-identical records for the same
// spec, which is what makes the cache (and persisted campaign state)
// portable across restarts.
func TestFreshServerByteIdentical(t *testing.T) {
	spec := quickSpec(91)
	var runs [][]byte
	for i := 0; i < 2; i++ {
		ts := newTestServer(t, Options{Workers: 2})
		sr := ts.submit(t, spec, http.StatusAccepted)
		ts.waitJob(t, sr.ID)
		_, body := ts.get(t, "/api/v1/jobs/"+sr.ID+"/result")
		runs = append(runs, body)
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Errorf("independent servers disagree:\nA: %s\nB: %s", runs[0], runs[1])
	}
}

func TestCacheEviction(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, CacheSize: 1})
	for seed := int64(101); seed <= 103; seed++ {
		sr := ts.submit(t, quickSpec(seed), http.StatusAccepted)
		ts.waitJob(t, sr.ID)
	}
	st := ts.statsOf(t)
	if st["cache_misses"] != 3 {
		t.Errorf("cache_misses = %v, want 3", st["cache_misses"])
	}
	if st["cache_evictions"] != 2 || st["cache_entries"] != 1 {
		t.Errorf("evictions=%v entries=%v, want 2 and 1", st["cache_evictions"], st["cache_entries"])
	}
}

func TestCacheUnit(t *testing.T) {
	c := newResultCache(2)

	// First acquire owns; the second joins as a waiter.
	e1, owner := c.acquire("k1")
	if !owner {
		t.Fatal("first acquire is not the owner")
	}
	e1b, owner2 := c.acquire("k1")
	if owner2 || e1b != e1 {
		t.Fatal("second acquire did not join the in-flight entry")
	}
	if _, ok := c.peek("k1"); ok {
		t.Fatal("peek sees an in-flight entry")
	}
	c.fill(e1, []byte("r1"), nil)
	<-e1b.ready
	if string(e1b.data) != "r1" {
		t.Fatalf("waiter read %q", e1b.data)
	}
	if data, ok := c.peek("k1"); !ok || string(data) != "r1" {
		t.Fatalf("peek after fill = %q, %v", data, ok)
	}

	// A failed fill is forgotten so the next acquire retries.
	ef, _ := c.acquire("bad")
	c.fill(ef, nil, errors.New("boom"))
	if _, ok := c.peek("bad"); ok {
		t.Fatal("failed entry retained")
	}
	if _, owner := c.acquire("bad"); !owner {
		t.Fatal("retry after failure did not own")
	}

	// LRU: touching k1 keeps it resident when k3 evicts the coldest.
	e2, _ := c.acquire("k2")
	c.fill(e2, []byte("r2"), nil)
	c.peek("k1") // k2 is now coldest ("bad" is still in flight and uncounted)
	e3, _ := c.acquire("k3")
	c.fill(e3, []byte("r3"), nil)
	if _, ok := c.peek("k2"); ok {
		t.Error("coldest entry k2 survived eviction")
	}
	if _, ok := c.peek("k1"); !ok {
		t.Error("recently-touched k1 was evicted")
	}
	if c.Evictions() != 1 || c.Len() != 2 {
		t.Errorf("evictions=%d len=%d, want 1 and 2", c.Evictions(), c.Len())
	}
}
