package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"powerpunch/internal/config"
	"powerpunch/internal/experiments"
)

// maxCampaignPoints bounds one campaign's fan-out. Large sweeps should
// shard into several campaigns rather than monopolize the pool.
const maxCampaignPoints = 4096

// CampaignSpec is a parameter sweep: the cross product of the axes,
// each point a copy of Base with that axis value substituted. An empty
// axis keeps Base's value. Axis nesting order is patterns, then rates,
// then schemes, then seeds — the in-process loadsweep's order, so the
// CSV export matches it row for row.
type CampaignSpec struct {
	Base     JobSpec   `json:"base"`
	Patterns []string  `json:"patterns,omitempty"`
	Rates    []float64 `json:"rates,omitempty"`
	Schemes  []string  `json:"schemes,omitempty"`
	Seeds    []int64   `json:"seeds,omitempty"`
}

// expand returns the normalized point specs in sweep order.
func (cs CampaignSpec) expand() ([]JobSpec, error) {
	pats := cs.Patterns
	if len(pats) == 0 {
		pats = []string{cs.Base.Pattern}
	}
	rates := cs.Rates
	if len(rates) == 0 {
		rates = []float64{cs.Base.Rate}
	}
	schemes := cs.Schemes
	if len(schemes) == 0 {
		schemes = []string{cs.Base.Scheme}
	}
	seeds := cs.Seeds
	if len(seeds) == 0 {
		seeds = []int64{cs.Base.Seed}
	}
	total := len(pats) * len(rates) * len(schemes) * len(seeds)
	if total > maxCampaignPoints {
		return nil, fmt.Errorf("campaign expands to %d points, limit %d", total, maxCampaignPoints)
	}
	out := make([]JobSpec, 0, total)
	for _, p := range pats {
		for _, r := range rates {
			for _, sch := range schemes {
				for _, seed := range seeds {
					sp := cs.Base
					sp.Pattern, sp.Rate, sp.Scheme, sp.Seed = p, r, sch, seed
					norm, err := sp.normalize()
					if err != nil {
						return nil, fmt.Errorf("point (pattern=%q rate=%g scheme=%q seed=%d): %v", p, r, sch, seed, err)
					}
					out = append(out, norm)
				}
			}
		}
	}
	return out, nil
}

// campaignPoint is one sweep point's persistent record. The JSON tags
// are the state-file schema.
type campaignPoint struct {
	Spec   JobSpec         `json:"spec"`
	Key    string          `json:"key"`
	Done   bool            `json:"done"`
	Failed bool            `json:"failed,omitempty"`
	Err    string          `json:"error,omitempty"`
	Record json.RawMessage `json:"record,omitempty"`
}

// campaign is one sweep in flight (or restored from the state file).
type campaign struct {
	id   string
	spec CampaignSpec

	mu       sync.Mutex
	points   []campaignPoint
	enqueued []bool // point dispatched in this process
	doneN    int
	failedN  int
}

// progress snapshots the campaign's counts.
func (c *campaign) progress() campaignProgress {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := len(c.points)
	return campaignProgress{
		ID:       c.id,
		Total:    total,
		Done:     c.doneN,
		Failed:   c.failedN,
		Pending:  total - c.doneN - c.failedN,
		Complete: c.doneN == total,
	}
}

// pendingUndispatched returns the indices of points neither finished
// nor dispatched in this process, marking them dispatched.
func (c *campaign) pendingUndispatched() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var idxs []int
	for i := range c.points {
		if !c.points[i].Done && !c.points[i].Failed && !c.enqueued[i] {
			c.enqueued[i] = true
			idxs = append(idxs, i)
		}
	}
	return idxs
}

type campaignProgress struct {
	ID       string `json:"id"`
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Pending  int    `json:"pending"`
	Complete bool   `json:"complete"`
}

// notePoint records a finished campaign job into its point, and
// persists the campaign state when the sweep just completed.
func (s *Server) notePoint(j *job, data []byte, err error) {
	c := j.camp
	c.mu.Lock()
	pt := &c.points[j.point]
	if err != nil {
		pt.Failed, pt.Err = true, err.Error()
		c.failedN++
	} else {
		pt.Done = true
		pt.Record = json.RawMessage(data)
		c.doneN++
	}
	complete := c.doneN == len(c.points)
	c.mu.Unlock()
	if complete && s.opts.StatePath != "" {
		if err := s.saveState(); err != nil {
			s.mPersistFails.Add(1)
		}
	}
}

// dispatch enqueues the given points on a fan-out goroutine. Campaign
// points use blocking sends (a sweep is one admitted unit of work, its
// points are not individually 429'd) but yield to shutdown.
func (s *Server) dispatch(c *campaign, idxs []int) {
	go func() {
		for _, i := range idxs {
			c.mu.Lock()
			spec := c.points[i].Spec
			c.mu.Unlock()
			j := s.newJob(spec, c, i)
			// Completed cache entries answer campaign points without
			// occupying the pool, exactly like ad-hoc fast-path hits.
			if data, ok := s.cache.peek(j.key); ok {
				s.mSubmitted.Add(1)
				s.mHits.Add(1)
				s.mCompleted.Add(1)
				j.complete(data, true)
				s.notePoint(j, data, nil)
				continue
			}
			select {
			case s.jobs <- j:
				s.mSubmitted.Add(1)
			case <-s.quit:
				// Draining: leave the point pending for resume.
				s.mu.Lock()
				delete(s.jobm, j.id)
				s.mu.Unlock()
				c.mu.Lock()
				c.enqueued[i] = false
				c.mu.Unlock()
				return
			}
		}
	}()
}

func (s *Server) handleCampaignCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var spec CampaignSpec
	if err := decodeStrict(r, &spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad campaign spec: %v", err)
		return
	}
	specs, err := spec.expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid campaign: %v", err)
		return
	}
	c := &campaign{spec: spec, points: make([]campaignPoint, len(specs)), enqueued: make([]bool, len(specs))}
	idxs := make([]int, len(specs))
	for i, sp := range specs {
		c.points[i] = campaignPoint{Spec: sp, Key: sp.Key()}
		c.enqueued[i] = true
		idxs[i] = i
	}
	s.mu.Lock()
	s.nextID++
	c.id = fmt.Sprintf("c-%d", s.nextID)
	s.camps[c.id] = c
	s.mu.Unlock()
	s.mCampaigns.Add(1)
	s.dispatch(c, idxs)
	writeJSON(w, http.StatusAccepted, c.progress())
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c := s.lookupCampaign(id)
	if c == nil {
		httpError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	writeJSON(w, http.StatusOK, c.progress())
}

// handleCampaignResume re-dispatches every pending point of a
// campaign, typically after a restart from persisted state. Resuming
// a complete (or already fully dispatched) campaign is a no-op that
// reports current progress.
func (s *Server) handleCampaignResume(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	id := r.PathValue("id")
	c := s.lookupCampaign(id)
	if c == nil {
		httpError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	if idxs := c.pendingUndispatched(); len(idxs) > 0 {
		s.mResumed.Add(1)
		s.dispatch(c, idxs)
	}
	writeJSON(w, http.StatusOK, c.progress())
}

// handleCampaignCSV exports a completed synthetic sweep campaign in
// the exact format (and byte order) of the in-process loadsweep
// driver's CSV: both funnel through experiments.LoadPointFrom and
// experiments.WriteLoadSweepCSV.
func (s *Server) handleCampaignCSV(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c := s.lookupCampaign(id)
	if c == nil {
		httpError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	c.mu.Lock()
	points := make([]campaignPoint, len(c.points))
	copy(points, c.points)
	doneN, failedN := c.doneN, c.failedN
	c.mu.Unlock()
	if failedN > 0 {
		httpError(w, http.StatusInternalServerError, "campaign %s has %d failed points", id, failedN)
		return
	}
	if doneN < len(points) {
		httpError(w, http.StatusConflict, "campaign %s incomplete (%d/%d points done)", id, doneN, len(points))
		return
	}
	pts := make([]experiments.LoadPoint, 0, len(points))
	for _, p := range points {
		if p.Spec.Bench != "" {
			httpError(w, http.StatusBadRequest, "csv export applies to synthetic sweep campaigns, not bench campaigns")
			return
		}
		var rec JobRecord
		if err := json.Unmarshal(p.Record, &rec); err != nil {
			httpError(w, http.StatusInternalServerError, "corrupt record for key %s: %v", p.Key, err)
			return
		}
		sch, _ := config.SchemeByName(p.Spec.Scheme)
		pts = append(pts, experiments.LoadPointFrom(p.Spec.Pattern, p.Spec.Rate, sch, rec.Result, rec.Throughput))
	}
	w.Header().Set("Content-Type", "text/csv")
	if err := experiments.WriteLoadSweepCSV(w, pts); err != nil {
		// Headers are gone; nothing better to do than note it.
		s.mPersistFails.Add(1)
	}
}
