package serve

import (
	"bytes"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/experiments"
	"powerpunch/internal/power"
)

// TestCampaignMatchesInProcessLoadsweep is the PR's golden
// equivalence claim: a sweep campaign run through the HTTP API
// exports the exact bytes the in-process loadsweep driver writes for
// the same axes. Both paths assemble the same configs, run the same
// deterministic simulations, and funnel through
// experiments.LoadPointFrom + WriteLoadSweepCSV; any drift in config
// assembly, axis ordering, or CSV formatting breaks this test.
func TestCampaignMatchesInProcessLoadsweep(t *testing.T) {
	patterns := []string{"uniform"}
	rates := []float64{0.02, 0.06}

	pts, err := experiments.RunLoadSweep(experiments.LoadSweepOptions{
		Fidelity: experiments.Quick,
		Patterns: patterns,
		Rates:    rates,
		Schemes:  []config.Scheme{config.NoPG, config.ConvOptPG, config.PowerPunchPG},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := experiments.WriteLoadSweepCSV(&want, pts); err != nil {
		t.Fatal(err)
	}

	// The same sweep as an API campaign: Quick fidelity spelled out as
	// warmup/cycles, axes in the same order, defaults (8x8 mesh)
	// implied.
	ts := newTestServer(t, Options{Workers: 4})
	code, body := ts.post(t, "/api/v1/campaigns", CampaignSpec{
		Base:     JobSpec{Warmup: 2000, Cycles: 8000, Seed: 1},
		Patterns: patterns,
		Rates:    rates,
		Schemes:  []string{"No-PG", "ConvOpt-PG", "PowerPunch-PG"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("campaign create = %d (%s)", code, body)
	}
	var cp campaignProgress
	mustJSON(t, body, &cp)
	if cp.Total != len(pts) {
		t.Fatalf("campaign has %d points, loadsweep has %d", cp.Total, len(pts))
	}
	done := ts.waitCampaign(t, cp.ID)
	if !done.Complete {
		t.Fatalf("campaign finished as %+v", done)
	}

	code, got := ts.get(t, "/api/v1/campaigns/"+cp.ID+"/result.csv")
	if code != http.StatusOK {
		t.Fatalf("result.csv = %d (%s)", code, got)
	}
	if !bytes.Equal(want.Bytes(), got) {
		t.Errorf("API sweep CSV diverges from in-process loadsweep:\nin-process:\n%s\nAPI:\n%s", want.Bytes(), got)
	}

	// The per-component energy columns ride the same equivalence: they
	// must be present in the exported header and carry real (nonzero)
	// values — the component detail survives the JSON round trip through
	// the job record exactly because float64 marshaling is lossless.
	lines := strings.Split(strings.TrimRight(string(got), "\n"), "\n")
	header := strings.Split(lines[0], ",")
	for _, name := range power.ComponentNames() {
		col := "e_" + name + "_J"
		idx := slices.Index(header, col)
		if idx < 0 {
			t.Fatalf("exported CSV header %v is missing column %s", header, col)
		}
		if name == "buffer" || name == "clock" {
			// Every scheme buffers flits; the paper preset folds the
			// clock tree into static power, so both columns must be
			// nonzero on every row.
			for _, line := range lines[1:] {
				cells := strings.Split(line, ",")
				if v, err := strconv.ParseFloat(cells[idx], 64); err != nil || v <= 0 {
					t.Errorf("column %s: row %q has value %q, want > 0", col, line, cells[idx])
				}
			}
		}
	}
}
