package serve

import (
	"bytes"
	"net/http"
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/experiments"
)

// TestCampaignMatchesInProcessLoadsweep is the PR's golden
// equivalence claim: a sweep campaign run through the HTTP API
// exports the exact bytes the in-process loadsweep driver writes for
// the same axes. Both paths assemble the same configs, run the same
// deterministic simulations, and funnel through
// experiments.LoadPointFrom + WriteLoadSweepCSV; any drift in config
// assembly, axis ordering, or CSV formatting breaks this test.
func TestCampaignMatchesInProcessLoadsweep(t *testing.T) {
	patterns := []string{"uniform"}
	rates := []float64{0.02, 0.06}

	pts, err := experiments.RunLoadSweep(experiments.LoadSweepOptions{
		Fidelity: experiments.Quick,
		Patterns: patterns,
		Rates:    rates,
		Schemes:  []config.Scheme{config.NoPG, config.ConvOptPG, config.PowerPunchPG},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := experiments.WriteLoadSweepCSV(&want, pts); err != nil {
		t.Fatal(err)
	}

	// The same sweep as an API campaign: Quick fidelity spelled out as
	// warmup/cycles, axes in the same order, defaults (8x8 mesh)
	// implied.
	ts := newTestServer(t, Options{Workers: 4})
	code, body := ts.post(t, "/api/v1/campaigns", CampaignSpec{
		Base:     JobSpec{Warmup: 2000, Cycles: 8000, Seed: 1},
		Patterns: patterns,
		Rates:    rates,
		Schemes:  []string{"No-PG", "ConvOpt-PG", "PowerPunch-PG"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("campaign create = %d (%s)", code, body)
	}
	var cp campaignProgress
	mustJSON(t, body, &cp)
	if cp.Total != len(pts) {
		t.Fatalf("campaign has %d points, loadsweep has %d", cp.Total, len(pts))
	}
	done := ts.waitCampaign(t, cp.ID)
	if !done.Complete {
		t.Fatalf("campaign finished as %+v", done)
	}

	code, got := ts.get(t, "/api/v1/campaigns/"+cp.ID+"/result.csv")
	if code != http.StatusOK {
		t.Fatalf("result.csv = %d (%s)", code, got)
	}
	if !bytes.Equal(want.Bytes(), got) {
		t.Errorf("API sweep CSV diverges from in-process loadsweep:\nin-process:\n%s\nAPI:\n%s", want.Bytes(), got)
	}
}
