// Package serve implements the noctrace campaign server: simulation
// as a service over HTTP/JSON. Clients submit jobs (scheme + topology
// + traffic + seed + cycles), which run concurrently on a bounded
// worker pool with admission control; finished results are cached by
// a canonical (config, seed) hash, so repeated queries are served
// byte-identically at zero simulation cost — sound because runs are
// seed-deterministic and bit-identical across the serial, full-walk,
// and sharded parallel engines. Campaigns fan parameter sweeps out
// over the same pool, report progress, survive graceful shutdown via
// a persisted state file, and export the in-process loadsweep CSV
// bit-for-bit. See DESIGN.md §13.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"powerpunch/internal/config"
	"powerpunch/internal/network"
	"powerpunch/internal/parsec"
	"powerpunch/internal/power"
	"powerpunch/internal/traffic"
)

// JobSpec describes one simulation job. The zero value of every field
// selects the paper's default (8x8 mesh, uniform traffic at 0.02
// flits/node/cycle, PowerPunch-PG, seed 1, 20k measured cycles), so a
// submission needs only the fields it wants to vary. Bench switches
// the job to a full-system CMP/PARSEC workload, which replaces the
// synthetic pattern/rate/warmup knobs.
type JobSpec struct {
	Scheme   string  `json:"scheme,omitempty"`   // any registered scheme name (see config.SchemeNames)
	Topology string  `json:"topology,omitempty"` // mesh|torus|ring
	Width    int     `json:"width,omitempty"`    // grid columns
	Height   int     `json:"height,omitempty"`   // grid rows (1 for a ring)
	Pattern  string  `json:"pattern,omitempty"`  // synthetic pattern (synthetic jobs only)
	Rate     float64 `json:"rate,omitempty"`     // offered load, flits/node/cycle
	Bench    string  `json:"bench,omitempty"`    // PARSEC-like profile name (full-system jobs)
	Instr    int64   `json:"instr,omitempty"`    // instructions per core (bench jobs only)
	Cycles   int64   `json:"cycles,omitempty"`   // measured cycles (bench: safety bound)
	Warmup   int64   `json:"warmup,omitempty"`   // warmup cycles before measurement
	Seed     int64   `json:"seed,omitempty"`     // RNG seed
	Workers  int     `json:"workers,omitempty"`  // tick-engine shards; results are engine-invariant

	// PowerPreset selects the power-model calibration (power.Presets);
	// empty means the paper's calibration. Unknown names are rejected at
	// submission with config's typed error, before any job is queued.
	PowerPreset string `json:"power_preset,omitempty"`
}

// withDefaults fills every zero field with its canonical default, so
// that specs spelling a default explicitly and specs omitting it are
// the same job (and hash to the same cache key).
func (s JobSpec) withDefaults() JobSpec {
	if s.Scheme == "" {
		s.Scheme = config.PowerPunchPG.String()
	}
	if s.Topology == "" {
		s.Topology = "mesh"
	}
	if s.Width == 0 {
		s.Width = 8
	}
	if s.Height == 0 {
		if s.Topology == "ring" {
			s.Height = 1
		} else {
			s.Height = 8
		}
	}
	if s.Bench == "" {
		if s.Pattern == "" {
			s.Pattern = "uniform"
		}
		if s.Rate == 0 {
			s.Rate = 0.02
		}
	} else if s.Instr == 0 {
		s.Instr = 20_000
	}
	if s.Cycles == 0 {
		s.Cycles = 20_000
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.PowerPreset == "" {
		s.PowerPreset = power.DefaultPreset
	}
	return s
}

// normalize validates the spec and returns its canonical form. The
// checks mirror the CLI's: field combinations the pre-campaign serve
// silently ignored (synthetic knobs under bench, instr without bench)
// are rejected here, and the assembled config must pass
// config.Validate.
func (s JobSpec) normalize() (JobSpec, error) {
	if s.Bench != "" {
		if s.Pattern != "" || s.Rate != 0 || s.Warmup != 0 {
			return s, fmt.Errorf("pattern, rate, and warmup do not apply to bench (full-system) jobs")
		}
	} else if s.Instr != 0 {
		return s, fmt.Errorf("instr applies only to bench (full-system) jobs")
	}
	if s.Cycles < 0 || s.Warmup < 0 || s.Instr < 0 || s.Seed < 0 {
		return s, fmt.Errorf("cycles, warmup, instr, and seed must be >= 0")
	}
	if s.Rate < 0 || s.Rate > 1 {
		return s, fmt.Errorf("rate must be in [0,1], got %g", s.Rate)
	}
	s = s.withDefaults()
	if _, err := config.SchemeByName(s.Scheme); err != nil {
		// The typed *config.UnknownSchemeError carries the known names;
		// its exact message lands in the 400 JSON envelope, mirroring
		// the power-preset contract.
		return s, err
	}
	if s.Bench != "" {
		if _, err := parsec.Profile(s.Bench, s.Instr); err != nil {
			return s, err
		}
	} else if _, err := traffic.ByName(s.Pattern); err != nil {
		return s, err
	}
	cfg, err := s.config()
	if err != nil {
		return s, err
	}
	if err := cfg.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// config assembles the simulation configuration for a normalized spec,
// starting from the paper's defaults exactly like the in-process
// experiment drivers do (which is what keeps API sweeps bit-identical
// to them).
func (s JobSpec) config() (config.Config, error) {
	sch, err := config.SchemeByName(s.Scheme)
	if err != nil {
		return config.Config{}, err
	}
	cfg := config.Default()
	cfg.Scheme = sch
	cfg.Topology = s.Topology
	cfg.Width, cfg.Height = s.Width, s.Height
	cfg.Seed = s.Seed
	cfg.Workers = s.Workers
	cfg.PowerPreset = s.PowerPreset
	if s.Bench != "" {
		// Full-system runs measure from cycle 0 until the protocol
		// drains; Cycles only bounds the run.
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40
	} else {
		cfg.WarmupCycles = s.Warmup
		cfg.MeasureCycles = s.Cycles
	}
	return cfg, nil
}

// Key returns the canonical (config, seed) hash of the normalized
// spec: SHA-256 over a versioned, field-tagged rendering with floats
// in exact hexadecimal form. Workers is deliberately excluded — the
// serial, full-walk, and sharded engines are proven bit-identical, so
// the engine choice cannot change the result and must not split the
// cache.
func (s JobSpec) Key() string {
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"noctrace-job-v2|scheme=%s|topo=%s|w=%d|h=%d|pattern=%s|rate=%s|bench=%s|instr=%d|cycles=%d|warmup=%d|seed=%d|preset=%s",
		s.Scheme, s.Topology, s.Width, s.Height, s.Pattern,
		strconv.FormatFloat(s.Rate, 'x', -1, 64),
		s.Bench, s.Instr, s.Cycles, s.Warmup, s.Seed, s.PowerPreset)))
	return hex.EncodeToString(h[:])
}

// JobRecord is the stored (and served) result of one job: the
// normalized spec, its cache key, and the full RunResult including
// the versioned Detail breakdown. Records are marshaled exactly once,
// when the simulation finishes; every later response for the same key
// serves those bytes, so repeated queries are byte-identical.
type JobRecord struct {
	Key  string  `json:"key"`
	Spec JobSpec `json:"spec"`

	Result network.RunResult `json:"result"`

	// Throughput is delivered flits/node/cycle over the measurement
	// window (synthetic jobs; the loadsweep CSV needs it).
	Throughput float64 `json:"throughput_flits_node_cycle,omitempty"`
	// ExecTime is the workload's execution time (bench jobs).
	ExecTime int64 `json:"exec_time_cycles,omitempty"`
}
