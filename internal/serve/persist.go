package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// stateVersion identifies the campaign state-file schema.
const stateVersion = 1

// persistedCampaign is one campaign's durable form: the original
// sweep spec plus every point with its result record (when done), so
// a restarted server serves completed points from the warm cache and
// re-runs only the pending ones.
type persistedCampaign struct {
	ID     string          `json:"id"`
	Spec   CampaignSpec    `json:"spec"`
	Points []campaignPoint `json:"points"`
}

type persistedState struct {
	Version   int                 `json:"version"`
	NextID    int64               `json:"next_id"`
	Campaigns []persistedCampaign `json:"campaigns"`
}

// saveState writes every campaign (spec, per-point completion, result
// records) to Options.StatePath atomically (temp file + rename).
// Called on graceful shutdown and whenever a campaign completes.
func (s *Server) saveState() error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()

	s.mu.Lock()
	nextID := s.nextID
	camps := make([]*campaign, 0, len(s.camps))
	for _, c := range s.camps {
		camps = append(camps, c)
	}
	s.mu.Unlock()
	sort.Slice(camps, func(i, j int) bool { return camps[i].id < camps[j].id })

	st := persistedState{Version: stateVersion, NextID: nextID}
	for _, c := range camps {
		c.mu.Lock()
		pc := persistedCampaign{ID: c.id, Spec: c.spec, Points: make([]campaignPoint, len(c.points))}
		copy(pc.Points, c.points)
		c.mu.Unlock()
		st.Campaigns = append(st.Campaigns, pc)
	}

	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: marshaling state: %w", err)
	}
	dir := filepath.Dir(s.opts.StatePath)
	tmp, err := os.CreateTemp(dir, ".noctrace-state-*")
	if err != nil {
		return fmt.Errorf("serve: persisting state: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: persisting state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: persisting state: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.opts.StatePath); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: persisting state: %w", err)
	}
	return nil
}

// loadState restores campaigns from Options.StatePath. A missing file
// is a fresh start, not an error. Completed point records are seeded
// into the result cache, so resumed campaigns (and any job sharing a
// key with a persisted point) cost zero simulation for finished work.
func (s *Server) loadState() error {
	data, err := os.ReadFile(s.opts.StatePath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: reading state file: %w", err)
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("serve: parsing state file %s: %w", s.opts.StatePath, err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("serve: state file %s has version %d, want %d", s.opts.StatePath, st.Version, stateVersion)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.NextID > s.nextID {
		s.nextID = st.NextID
	}
	for _, pc := range st.Campaigns {
		c := &campaign{
			id:       pc.ID,
			spec:     pc.Spec,
			points:   pc.Points,
			enqueued: make([]bool, len(pc.Points)),
		}
		for i := range c.points {
			p := &c.points[i]
			switch {
			case p.Failed:
				// Persisted failures reset to pending: the failure was
				// environmental (the simulator is deterministic), so a
				// resume retries them.
				p.Failed, p.Err = false, ""
			case p.Done:
				c.doneN++
				s.cache.seed(p.Key, []byte(p.Record))
			}
		}
		s.camps[c.id] = c
	}
	return nil
}
