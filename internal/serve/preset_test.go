package serve

import (
	"net/http"
	"strings"
	"testing"

	"powerpunch/internal/power"
)

// TestSubmitUnknownPowerPresetRejected pins the submission-time
// surface of the typed preset error: an unknown power preset is a 400
// with config's exact message in the JSON error envelope — the known
// presets are spelled out so a client can self-correct.
func TestSubmitUnknownPowerPresetRejected(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	code, body := ts.post(t, "/api/v1/jobs", JobSpec{PowerPreset: "dsent-9000nm"})
	if code != http.StatusBadRequest {
		t.Fatalf("submit with unknown preset = %d (%s), want 400", code, body)
	}
	want := `{"error":"invalid job spec: config: unknown power preset \"dsent-9000nm\" (known presets: ` +
		strings.Join(power.Presets(), ", ") + `)"}` + "\n"
	if string(body) != want {
		t.Errorf("error body:\n got %q\nwant %q", body, want)
	}
}

// TestCampaignUnknownPowerPresetRejected: the campaign path normalizes
// every point at creation, so a bad preset in Base fails the whole
// sweep up front with the same typed message.
func TestCampaignUnknownPowerPresetRejected(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	code, body := ts.post(t, "/api/v1/campaigns", CampaignSpec{
		Base:  JobSpec{PowerPreset: "nope", Cycles: 100},
		Rates: []float64{0.01, 0.02},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("campaign with unknown preset = %d (%s), want 400", code, body)
	}
	msg := errorOf(t, body)
	if !strings.Contains(msg, `config: unknown power preset "nope"`) {
		t.Errorf("campaign error %q does not carry the typed preset message", msg)
	}
}

// TestPowerPresetSplitsCacheKey: the preset changes the physics, so it
// must split the result cache; the default spelled explicitly must
// still hash like the default omitted.
func TestPowerPresetSplitsCacheKey(t *testing.T) {
	base, err := JobSpec{Cycles: 100}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := JobSpec{Cycles: 100, PowerPreset: power.DefaultPreset}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.Key() != explicit.Key() {
		t.Errorf("explicit default preset changed the cache key")
	}
	other, err := JobSpec{Cycles: 100, PowerPreset: "dsent-22nm"}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if other.Key() == base.Key() {
		t.Errorf("dsent-22nm job hashed to the paper-preset key; cache would serve wrong physics")
	}
}

// TestJobResultCarriesPreset runs one tiny job under a non-default
// preset end to end and checks the energy detail reflects it (the
// dsent-22nm calibration halves dynamic event energies, so the
// per-component totals must differ from a paper-preset run of the
// same job).
func TestJobResultCarriesPreset(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2})
	run := func(preset string) JobRecord {
		spec := quickSpec(77)
		spec.PowerPreset = preset
		sr := ts.submit(t, spec, http.StatusAccepted)
		st := ts.waitJob(t, sr.ID)
		if st.Status != "done" {
			t.Fatalf("job %s finished as %+v", sr.ID, st)
		}
		code, body := ts.get(t, "/api/v1/jobs/"+sr.ID+"/result")
		if code != http.StatusOK {
			t.Fatalf("result = %d (%s)", code, body)
		}
		var rec JobRecord
		mustJSON(t, body, &rec)
		return rec
	}
	paper := run("")
	dsent := run("dsent-22nm")
	pe := paper.Result.Detail.Energy
	de := dsent.Result.Detail.Energy
	if pe.Total() == 0 || de.Total() == 0 {
		t.Fatalf("empty energy detail: paper=%g dsent=%g", pe.Total(), de.Total())
	}
	if pe == de {
		t.Errorf("paper and dsent-22nm presets produced identical energy breakdowns")
	}
}
