package serve

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// limiter is a per-client token bucket: each client (keyed by remote
// host) accrues rate tokens per second up to burst; a request costs
// one token. A nil limiter or rate <= 0 allows everything.
type limiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &limiter{rate: rate, burst: float64(burst), now: now, buckets: make(map[string]*bucket)}
}

// allow reports whether client may make a request now.
func (l *limiter) allow(client string) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.now()
	b, ok := l.buckets[client]
	if !ok {
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[client] = b
	}
	b.tokens += l.rate * t.Sub(b.last).Seconds()
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// clientKey identifies a client for rate limiting: the remote host
// without the ephemeral port.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
