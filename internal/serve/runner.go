package serve

import (
	"fmt"

	"powerpunch/internal/cmp"
	"powerpunch/internal/network"
	"powerpunch/internal/obs"
	"powerpunch/internal/parsec"
	"powerpunch/internal/traffic"
)

// buildRun constructs the network and driver for a normalized spec,
// attaching any observer sinks at construction. The caller owns the
// returned network's lifecycle (Close releases the parallel engine's
// workers when spec.Workers > 1).
func buildRun(spec JobSpec, sinks ...obs.Sink) (*network.Network, network.Driver, error) {
	cfg, err := spec.config()
	if err != nil {
		return nil, nil, err
	}
	net, err := network.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if len(sinks) > 0 {
		net.Observe(sinks...)
	}
	if spec.Bench != "" {
		prof, err := parsec.Profile(spec.Bench, spec.Instr)
		if err != nil {
			net.Close()
			return nil, nil, err
		}
		return net, cmp.NewSystem(prof, net, spec.Seed), nil
	}
	pat, err := traffic.ByName(spec.Pattern)
	if err != nil {
		net.Close()
		return nil, nil, err
	}
	return net, traffic.NewSynthetic(pat, spec.Rate, spec.Seed), nil
}

// benchBound is the safety bound on a full-system run: the requested
// Cycles with the same 1M-cycle floor the noctrace CLI applies.
func (s JobSpec) benchBound() int64 {
	if s.Cycles < 1_000_000 {
		return 1_000_000
	}
	return s.Cycles
}

// runSpec executes one simulation to completion and assembles its
// record. Synthetic jobs use the standard windowed Run (warmup,
// measurement, drain) and record throughput exactly as the in-process
// loadsweep driver does; bench jobs run the CMP workload until the
// protocol drains and record its execution time.
func runSpec(spec JobSpec) (*JobRecord, error) {
	net, drv, err := buildRun(spec)
	if err != nil {
		return nil, err
	}
	defer net.Close()
	rec := &JobRecord{Key: spec.Key(), Spec: spec}
	if spec.Bench != "" {
		res := net.RunUntil(drv, spec.benchBound())
		if !res.Drained {
			return nil, fmt.Errorf("workload %s did not complete within %d cycles", spec.Bench, spec.benchBound())
		}
		rec.Result = res
		rec.ExecTime = drv.(*cmp.System).ExecutionTime()
		return rec, nil
	}
	res := net.Run(drv)
	rec.Result = res
	rec.Throughput = net.Col.Throughput(net.M.NumNodes(), spec.Cycles)
	return rec, nil
}
