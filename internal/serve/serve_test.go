package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// quickSpec is the cheap 4x4 job most tests submit; distinct tests
// vary the seed so they don't share cache keys across subtests.
func quickSpec(seed int64) JobSpec {
	return JobSpec{
		Scheme:  "PowerPunch-PG",
		Width:   4,
		Height:  4,
		Pattern: "uniform",
		Rate:    0.05,
		Cycles:  300,
		Seed:    seed,
	}
}

// testServer wires a Server into an httptest listener and tears both
// down (listener first, then a drained Shutdown) at test end.
type testServer struct {
	*Server
	ts *httptest.Server
}

func newTestServer(t *testing.T, opts Options) *testServer {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return &testServer{Server: s, ts: ts}
}

func (ts *testServer) post(t *testing.T, path string, body any) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encoding request: %v", err)
		}
	}
	resp, err := http.Post(ts.ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading POST %s response: %v", path, err)
	}
	return resp.StatusCode, out.Bytes()
}

func (ts *testServer) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading GET %s response: %v", path, err)
	}
	return resp.StatusCode, out.Bytes()
}

// mustJSON decodes body into v, failing the test on bad JSON.
func mustJSON(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
}

// errorOf asserts body is the JSON error envelope and returns the
// message.
func errorOf(t *testing.T, body []byte) string {
	t.Helper()
	var e errorBody
	mustJSON(t, body, &e)
	if e.Error == "" {
		t.Fatalf("error response %q has empty error field", body)
	}
	return e.Error
}

// submit POSTs a spec and requires the given status code.
func (ts *testServer) submit(t *testing.T, spec JobSpec, wantCode int) submitResponse {
	t.Helper()
	code, body := ts.post(t, "/api/v1/jobs", spec)
	if code != wantCode {
		t.Fatalf("submit = %d (%s), want %d", code, body, wantCode)
	}
	var sr submitResponse
	mustJSON(t, body, &sr)
	return sr
}

// waitJob polls a job's status until it leaves the queue/pool.
func (ts *testServer) waitJob(t *testing.T, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := ts.get(t, "/api/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status %s = %d (%s)", id, code, body)
		}
		var js jobStatus
		mustJSON(t, body, &js)
		if js.Status == "done" || js.Status == "failed" {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, js.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitCampaign polls campaign progress until complete.
func (ts *testServer) waitCampaign(t *testing.T, id string) campaignProgress {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := ts.get(t, "/api/v1/campaigns/"+id)
		if code != http.StatusOK {
			t.Fatalf("campaign status %s = %d (%s)", id, code, body)
		}
		var cp campaignProgress
		mustJSON(t, body, &cp)
		if cp.Complete || cp.Failed > 0 {
			return cp
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck at %+v", id, cp)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// statsOf fetches /api/v1/stats as a numeric map.
func (ts *testServer) statsOf(t *testing.T) map[string]float64 {
	t.Helper()
	code, body := ts.get(t, "/api/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d (%s)", code, body)
	}
	var m map[string]float64
	mustJSON(t, body, &m)
	return m
}

func TestSubmitAndResult(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2})
	spec := quickSpec(21)

	sr := ts.submit(t, spec, http.StatusAccepted)
	if sr.ID == "" || sr.Key == "" || sr.Status != "queued" || sr.Cached {
		t.Fatalf("unexpected submit response %+v", sr)
	}
	js := ts.waitJob(t, sr.ID)
	if js.Status != "done" || js.Error != "" {
		t.Fatalf("job finished as %+v", js)
	}

	code, body := ts.get(t, "/api/v1/jobs/"+sr.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result = %d (%s)", code, body)
	}
	var rec JobRecord
	mustJSON(t, body, &rec)
	if rec.Key != sr.Key {
		t.Errorf("record key %s, want %s", rec.Key, sr.Key)
	}
	// The stored spec is the normalized form: defaults filled in.
	if rec.Spec.Topology != "mesh" || rec.Spec.Scheme != "PowerPunch-PG" {
		t.Errorf("record spec not normalized: %+v", rec.Spec)
	}
	// Cycles counts the whole run including the post-measurement drain.
	if rec.Result.Cycles < spec.Cycles {
		t.Errorf("measured %d cycles, want >= %d", rec.Result.Cycles, spec.Cycles)
	}
	if !rec.Result.Drained {
		t.Error("quick run did not drain")
	}
	if rec.Result.Summary.Injected == 0 || rec.Throughput <= 0 {
		t.Errorf("empty run: injected=%d throughput=%g", rec.Result.Summary.Injected, rec.Throughput)
	}
}

func TestSubmitErrors(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"scheme":`},
		{"unknown field", `{"shceme":"No-PG"}`},
		{"trailing garbage", `{}{"scheme":"No-PG"}`},
		{"unknown scheme", `{"scheme":"Turbo-PG"}`},
		{"unknown pattern", `{"pattern":"zigzag"}`},
		{"unknown bench", `{"bench":"doom"}`},
		{"rate out of range", `{"rate":1.5}`},
		{"negative cycles", `{"cycles":-5}`},
		{"bench with rate", `{"bench":"canneal","rate":0.1}`},
		{"bench with warmup", `{"bench":"canneal","warmup":100}`},
		{"instr without bench", `{"instr":5000}`},
		{"ring with height 2", `{"topology":"ring","height":2}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := ts.post(t, "/api/v1/jobs", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("submit(%s) = %d (%s), want 400", tc.body, code, body)
			}
			errorOf(t, body)
		})
	}
}

func TestUnknownIDs(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	paths := []struct {
		method, path string
	}{
		{"GET", "/api/v1/jobs/j-999"},
		{"GET", "/api/v1/jobs/j-999/result"},
		{"GET", "/api/v1/campaigns/c-999"},
		{"GET", "/api/v1/campaigns/c-999/result.csv"},
		{"POST", "/api/v1/campaigns/c-999/resume"},
	}
	for _, p := range paths {
		var code int
		var body []byte
		if p.method == "GET" {
			code, body = ts.get(t, p.path)
		} else {
			code, body = ts.post(t, p.path, "{}")
		}
		if code != http.StatusNotFound {
			t.Errorf("%s %s = %d (%s), want 404", p.method, p.path, code, body)
		}
		errorOf(t, body)
	}
}

// blockPool installs a hookRunning that parks every worker pickup
// until release is closed, and reports each pickup on started. The
// registered cleanup tolerates tests that already closed release.
func blockPool(t *testing.T, s *Server) (started chan *job, release chan struct{}) {
	started = make(chan *job, 64)
	release = make(chan struct{})
	s.hookRunning = func(j *job) {
		started <- j
		<-release
	}
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})
	return started, release
}

func TestResultConflictWhileQueued(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	started, _ := blockPool(t, ts.Server)

	a := ts.submit(t, quickSpec(31), http.StatusAccepted)
	<-started // the lone worker is now parked inside job A
	b := ts.submit(t, quickSpec(32), http.StatusAccepted)

	code, body := ts.get(t, "/api/v1/jobs/"+b.ID+"/result")
	if code != http.StatusConflict {
		t.Fatalf("result of queued job = %d (%s), want 409", code, body)
	}
	if msg := errorOf(t, body); !strings.Contains(msg, "queued") {
		t.Errorf("conflict message %q does not name the state", msg)
	}
	code, body = ts.get(t, "/api/v1/jobs/"+a.ID)
	var js jobStatus
	mustJSON(t, body, &js)
	if code != http.StatusOK || js.Status != "running" {
		t.Fatalf("job A status = %d %+v, want running", code, js)
	}
}

func TestAdmissionControl(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	started, release := blockPool(t, ts.Server)

	j1 := ts.submit(t, quickSpec(41), http.StatusAccepted)
	<-started // worker holds j1; the queue itself is empty
	j2 := ts.submit(t, quickSpec(42), http.StatusAccepted)

	// Queue now full: admission control rejects with 429.
	code, body := ts.post(t, "/api/v1/jobs", quickSpec(43))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d (%s), want 429", code, body)
	}
	if msg := errorOf(t, body); !strings.Contains(msg, "queue full") {
		t.Errorf("rejection message %q does not mention the queue", msg)
	}
	if got := ts.statsOf(t)["jobs_rejected"]; got != 1 {
		t.Errorf("jobs_rejected = %v, want 1", got)
	}
	// The rejected job leaves no tracked residue.
	if code, _ := ts.get(t, "/api/v1/jobs/j-3"); code != http.StatusNotFound {
		t.Errorf("rejected job still resolvable, status %d", code)
	}

	close(release)
	for _, id := range []string{j1.ID, j2.ID} {
		if js := ts.waitJob(t, id); js.Status != "done" {
			t.Errorf("job %s finished as %+v", id, js)
		}
	}
}

func TestCampaignLifecycle(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 4})
	spec := CampaignSpec{
		Base:     JobSpec{Width: 4, Height: 4, Cycles: 300, Seed: 51},
		Patterns: []string{"uniform", "transpose"},
		Rates:    []float64{0.02, 0.05},
	}
	code, body := ts.post(t, "/api/v1/campaigns", spec)
	if code != http.StatusAccepted {
		t.Fatalf("campaign create = %d (%s), want 202", code, body)
	}
	var cp campaignProgress
	mustJSON(t, body, &cp)
	if cp.ID == "" || cp.Total != 4 {
		t.Fatalf("campaign progress %+v, want 4 points", cp)
	}

	done := ts.waitCampaign(t, cp.ID)
	if done.Done != 4 || done.Failed != 0 || done.Pending != 0 || !done.Complete {
		t.Fatalf("campaign finished as %+v", done)
	}

	resp, err := http.Get(ts.ts.URL + "/api/v1/campaigns/" + cp.ID + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result.csv = %d (%s)", resp.StatusCode, buf.Bytes())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("result.csv content type %q, want text/csv", ct)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("result.csv has %d lines, want header + 4 rows:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "pattern,rate_flits_node_cycle,scheme") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}

	// Resuming a complete campaign is a no-op reporting progress.
	code, body = ts.post(t, "/api/v1/campaigns/"+cp.ID+"/resume", "{}")
	var after campaignProgress
	mustJSON(t, body, &after)
	if code != http.StatusOK || !after.Complete {
		t.Fatalf("resume of complete campaign = %d %+v", code, after)
	}
	if got := ts.statsOf(t)["campaigns_resumed"]; got != 0 {
		t.Errorf("campaigns_resumed = %v after a no-op resume, want 0", got)
	}
}

func TestCampaignCSVConflict(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	started, _ := blockPool(t, ts.Server)

	spec := CampaignSpec{
		Base:  JobSpec{Width: 4, Height: 4, Cycles: 300, Seed: 61},
		Rates: []float64{0.02, 0.05},
	}
	code, body := ts.post(t, "/api/v1/campaigns", spec)
	if code != http.StatusAccepted {
		t.Fatalf("campaign create = %d (%s)", code, body)
	}
	var cp campaignProgress
	mustJSON(t, body, &cp)
	<-started // first point running, second queued: definitely incomplete

	code, body = ts.get(t, "/api/v1/campaigns/"+cp.ID+"/result.csv")
	if code != http.StatusConflict {
		t.Fatalf("incomplete result.csv = %d (%s), want 409", code, body)
	}
	if msg := errorOf(t, body); !strings.Contains(msg, "incomplete") {
		t.Errorf("conflict message %q does not say incomplete", msg)
	}
}

func TestBadCampaigns(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{"base":`},
		{"bad point", `{"rates":[0.02,2.5]}`},
		{"fanout too large", fmt.Sprintf(`{"seeds":[%s]}`, seedList(maxCampaignPoints+1))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := ts.post(t, "/api/v1/campaigns", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("campaign(%s) = %d (%s), want 400", tc.name, code, body)
			}
			errorOf(t, body)
		})
	}
}

func seedList(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", i)
	}
	return b.String()
}

func TestStreamEvents(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2})
	spec := quickSpec(71)

	body := func(extra string) string {
		return fmt.Sprintf(`{"scheme":%q,"width":4,"height":4,"pattern":"uniform","rate":0.05,"cycles":300,"seed":71%s}`,
			spec.Scheme, extra)
	}

	t.Run("events", func(t *testing.T) {
		resp, err := http.Post(ts.ts.URL+"/api/v1/stream", "application/json",
			strings.NewReader(body(`,"kinds":"inject,eject"`)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("stream content type %q", ct)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		if len(lines) < 2 {
			t.Fatalf("stream produced %d lines, want events plus terminator", len(lines))
		}
		for i, ln := range lines {
			if !json.Valid([]byte(ln)) {
				t.Fatalf("line %d is not JSON: %q", i, ln)
			}
		}
		var end streamEnd
		mustJSON(t, []byte(lines[len(lines)-1]), &end)
		if !end.StreamEnd || end.Cycles < spec.Cycles || end.Events != int64(len(lines)-1) {
			t.Errorf("terminator %+v does not match %d event lines", end, len(lines)-1)
		}
	})

	t.Run("timeline", func(t *testing.T) {
		resp, err := http.Post(ts.ts.URL+"/api/v1/stream", "application/json",
			strings.NewReader(body(`,"mode":"timeline","interval":50`)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("timeline stream = %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		var end streamEnd
		mustJSON(t, []byte(lines[len(lines)-1]), &end)
		if !end.StreamEnd || end.Samples != len(lines)-1 || end.Samples < 300/50 {
			t.Errorf("timeline terminator %+v vs %d sample lines", end, len(lines)-1)
		}
	})

	t.Run("errors", func(t *testing.T) {
		for name, payload := range map[string]string{
			"unknown kind": body(`,"kinds":"pg_wake,bogus"`),
			"bad mode":     body(`,"mode":"firehose"`),
			"bad spec":     `{"rate":7}`,
		} {
			code, respBody := ts.post(t, "/api/v1/stream", payload)
			if code != http.StatusBadRequest {
				t.Errorf("%s = %d (%s), want 400", name, code, respBody)
				continue
			}
			errorOf(t, respBody)
		}
	})
}

func TestRateLimit(t *testing.T) {
	var nanos atomic.Int64
	nanos.Store(time.Hour.Nanoseconds())
	ts := newTestServer(t, Options{
		Workers:   1,
		RateLimit: 1,
		RateBurst: 2,
		now:       func() time.Time { return time.Unix(0, nanos.Load()) },
	})

	for i := 0; i < 2; i++ {
		if code, body := ts.get(t, "/api/v1/stats"); code != http.StatusOK {
			t.Fatalf("request %d = %d (%s), want 200", i+1, code, body)
		}
	}
	code, body := ts.get(t, "/api/v1/stats")
	if code != http.StatusTooManyRequests {
		t.Fatalf("burst-exhausted request = %d (%s), want 429", code, body)
	}
	errorOf(t, body)
	if got := ts.mRateLimited.Value(); got != 1 {
		t.Errorf("rate_limited = %d, want 1", got)
	}

	// healthz is exempt: probes must not burn client tokens.
	if code, _ := ts.get(t, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz rate-limited, status %d", code)
	}

	// One second at 1 req/s buys exactly one more request.
	nanos.Add(time.Second.Nanoseconds())
	if code, _ := ts.get(t, "/api/v1/stats"); code != http.StatusOK {
		t.Errorf("post-refill request = %d, want 200", code)
	}
	if code, _ := ts.get(t, "/api/v1/stats"); code != http.StatusTooManyRequests {
		t.Errorf("second post-refill request = %d, want 429", code)
	}
}

func TestDrainingRejects(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ts.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for name, path := range map[string]string{
		"job":      "/api/v1/jobs",
		"campaign": "/api/v1/campaigns",
		"stream":   "/api/v1/stream",
	} {
		code, body := ts.post(t, path, "{}")
		if code != http.StatusServiceUnavailable {
			t.Errorf("%s submit while draining = %d (%s), want 503", name, code, body)
		}
		errorOf(t, body)
	}
	// Reads still work on a draining server.
	if code, _ := ts.get(t, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz while draining = %d", code)
	}
}

// TestSubmitFlyOverScheme pins the bypass scheme's HTTP exposure: a
// job naming FlyOver-PG runs to completion through the same registry
// path as every other scheme, and its cache key is distinct from the
// identical spec under ConvOpt-PG (the scheme name is part of the key).
func TestSubmitFlyOverScheme(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2})
	spec := quickSpec(77)
	spec.Scheme = "FlyOver-PG"

	sr := ts.submit(t, spec, http.StatusAccepted)
	js := ts.waitJob(t, sr.ID)
	if js.Status != "done" || js.Error != "" {
		t.Fatalf("FlyOver job finished as %+v", js)
	}
	code, body := ts.get(t, "/api/v1/jobs/"+sr.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result = %d (%s)", code, body)
	}
	var rec JobRecord
	mustJSON(t, body, &rec)
	if rec.Spec.Scheme != "FlyOver-PG" {
		t.Errorf("record spec scheme %q", rec.Spec.Scheme)
	}
	if !rec.Result.Drained || rec.Result.Summary.Injected == 0 {
		t.Errorf("empty FlyOver run: %+v", rec.Result.Summary)
	}

	conv := spec
	conv.Scheme = "ConvOpt-PG"
	cr := ts.submit(t, conv, http.StatusAccepted)
	if cr.Key == sr.Key {
		t.Errorf("ConvOpt-PG spec shares cache key %s with FlyOver-PG", cr.Key)
	}
	ts.waitJob(t, cr.ID)
}
