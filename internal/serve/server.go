package serve

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Server. Zero fields take the defaults noted.
type Options struct {
	Workers    int    // simulation worker pool size (default 4); also bounds concurrent streams
	QueueDepth int    // job queue bound; a full queue rejects with 429 (default 64)
	CacheSize  int    // completed results retained in the LRU cache (default 1024)
	StatePath  string // campaign state file, persisted on Shutdown ("" = in-memory only)
	RateLimit  float64 // per-client requests/second (0 = unlimited)
	RateBurst  int    // per-client burst (default 16, only with RateLimit > 0)

	// now overrides the limiter's clock (tests).
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.RateBurst == 0 {
		o.RateBurst = 16
	}
	return o
}

func (o Options) validate() error {
	switch {
	case o.Workers < 1:
		return fmt.Errorf("serve: Workers must be >= 1, got %d", o.Workers)
	case o.QueueDepth < 1:
		return fmt.Errorf("serve: QueueDepth must be >= 1, got %d", o.QueueDepth)
	case o.CacheSize < 1:
		return fmt.Errorf("serve: CacheSize must be >= 1, got %d", o.CacheSize)
	case o.RateLimit < 0:
		return fmt.Errorf("serve: RateLimit must be >= 0, got %g", o.RateLimit)
	case o.RateBurst < 1:
		return fmt.Errorf("serve: RateBurst must be >= 1, got %d", o.RateBurst)
	}
	return nil
}

// jobState is a job's position in its lifecycle.
type jobState int

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
)

func (s jobState) String() string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	default:
		return fmt.Sprintf("jobState(%d)", int(s))
	}
}

// job is one tracked submission: either ad-hoc (camp nil) or a
// campaign point.
type job struct {
	id    string
	spec  JobSpec // normalized
	key   string
	camp  *campaign
	point int

	mu     sync.Mutex
	state  jobState
	record []byte
	errmsg string
	cached bool
	done   chan struct{}
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = jobRunning
	j.mu.Unlock()
}

func (j *job) complete(record []byte, cached bool) {
	j.mu.Lock()
	j.state = jobDone
	j.record = record
	j.cached = cached
	j.mu.Unlock()
	close(j.done)
}

func (j *job) fail(msg string) {
	j.mu.Lock()
	j.state = jobFailed
	j.errmsg = msg
	j.mu.Unlock()
	close(j.done)
}

// view snapshots the job's externally-visible state.
func (j *job) view() (state jobState, record []byte, errmsg string, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.record, j.errmsg, j.cached
}

// Server is the campaign server. Build one with New, mount Handler on
// an HTTP listener, and call Shutdown to drain in-flight jobs and
// persist campaign state.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	cache *resultCache
	lim   *limiter

	quit      chan struct{}
	jobs      chan *job
	wg        sync.WaitGroup
	draining  atomic.Bool
	closeOnce sync.Once

	streamSem chan struct{}

	mu     sync.Mutex
	jobm   map[string]*job
	camps  map[string]*campaign
	nextID int64

	persistMu sync.Mutex // serializes state-file writes

	metrics       *expvar.Map
	mSubmitted    *expvar.Int // accepted job submissions (ad-hoc + campaign points)
	mCompleted    *expvar.Int
	mFailed       *expvar.Int
	mRejected     *expvar.Int // 429s from the job queue
	mHits         *expvar.Int // cache hits (no simulation ran)
	mMisses       *expvar.Int // cache misses (a simulation ran)
	mSimCycles    *expvar.Int // total cycles actually simulated
	mCampaigns    *expvar.Int
	mResumed      *expvar.Int
	mStreams      *expvar.Int
	mRateLimited  *expvar.Int
	mPersistFails *expvar.Int

	// hookRunning, when set before any submission, is called by a pool
	// worker as it picks up a job — the test seam for freezing the pool
	// deterministically (admission-control and shutdown tests).
	hookRunning func(*job)
}

// New builds a Server, restores campaign state from Options.StatePath
// if the file exists, and starts the worker pool.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	s := &Server{
		opts:      opts,
		mux:       http.NewServeMux(),
		cache:     newResultCache(opts.CacheSize),
		lim:       newLimiter(opts.RateLimit, opts.RateBurst, opts.now),
		quit:      make(chan struct{}),
		jobs:      make(chan *job, opts.QueueDepth),
		streamSem: make(chan struct{}, opts.Workers),
		jobm:      make(map[string]*job),
		camps:     make(map[string]*campaign),
	}
	s.initMetrics()
	if opts.StatePath != "" {
		if err := s.loadState(); err != nil {
			return nil, err
		}
	}
	s.routes()
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

func (s *Server) initMetrics() {
	s.metrics = new(expvar.Map).Init()
	add := func(name string) *expvar.Int {
		v := new(expvar.Int)
		s.metrics.Set(name, v)
		return v
	}
	s.mSubmitted = add("jobs_submitted")
	s.mCompleted = add("jobs_completed")
	s.mFailed = add("jobs_failed")
	s.mRejected = add("jobs_rejected")
	s.mHits = add("cache_hits")
	s.mMisses = add("cache_misses")
	s.mSimCycles = add("sim_cycles")
	s.mCampaigns = add("campaigns_created")
	s.mResumed = add("campaigns_resumed")
	s.mStreams = add("streams")
	s.mRateLimited = add("rate_limited")
	s.mPersistFails = add("persist_failures")
	s.metrics.Set("cache_evictions", expvar.Func(func() any { return s.cache.Evictions() }))
	s.metrics.Set("cache_entries", expvar.Func(func() any { return s.cache.Len() }))
}

// Metrics returns the server's expvar map, for publishing under a
// process-wide name (the CLI exposes it as "serve" in /debug/vars).
func (s *Server) Metrics() expvar.Var { return s.metrics }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("POST /api/v1/campaigns", s.handleCampaignCreate)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleCampaignStatus)
	s.mux.HandleFunc("POST /api/v1/campaigns/{id}/resume", s.handleCampaignResume)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/result.csv", s.handleCampaignCSV)
	s.mux.HandleFunc("POST /api/v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// Handler returns the server's HTTP handler with the per-client rate
// limiter applied to every endpoint except /healthz.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" && !s.lim.allow(clientKey(r)) {
			s.mRateLimited.Add(1)
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Shutdown drains the server: new submissions are rejected with 503,
// pool workers finish their in-flight jobs and exit, and campaign
// state (including results of every completed point) is persisted to
// Options.StatePath so a restarted server can resume. Queued-but-not-
// started jobs are not run; campaign points among them stay pending in
// the persisted state.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.closeOnce.Do(func() { close(s.quit) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.opts.StatePath != "" {
		return s.saveState()
	}
	return nil
}

// newJob registers a job under a fresh ID. camp is nil for ad-hoc
// submissions.
func (s *Server) newJob(spec JobSpec, camp *campaign, point int) *job {
	j := &job{spec: spec, key: spec.Key(), camp: camp, point: point, done: make(chan struct{})}
	s.mu.Lock()
	s.nextID++
	j.id = fmt.Sprintf("j-%d", s.nextID)
	s.jobm[j.id] = j
	s.mu.Unlock()
	return j
}

func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobm[id]
}

func (s *Server) lookupCampaign(id string) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.camps[id]
}

// enqueue offers j to the pool without blocking; false means the
// queue is full (admission control).
func (s *Server) enqueue(j *job) bool {
	select {
	case s.jobs <- j:
		return true
	default:
		return false
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Prefer quit so a draining pool stops even when the queue is
		// still non-empty.
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.jobs:
			s.runJob(j)
		}
	}
}

// runJob executes one dequeued job through the cache's single-flight
// discipline: the first worker on a key simulates and fills the
// cache; concurrent workers on the same key wait and reuse its bytes.
func (s *Server) runJob(j *job) {
	j.setRunning()
	if h := s.hookRunning; h != nil {
		h(j)
	}
	e, owner := s.cache.acquire(j.key)
	if owner {
		rec, err := runSpec(j.spec)
		var data []byte
		if err == nil {
			data, err = json.Marshal(rec)
		}
		if err == nil {
			s.mMisses.Add(1)
			s.mSimCycles.Add(rec.Result.Cycles)
		}
		s.cache.fill(e, data, err)
	} else {
		s.mHits.Add(1)
		<-e.ready
	}
	if e.err != nil {
		s.mFailed.Add(1)
		j.fail(e.err.Error())
	} else {
		s.mCompleted.Add(1)
		j.complete(e.data, !owner)
	}
	if j.camp != nil {
		s.notePoint(j, e.data, e.err)
	}
}

// --- HTTP plumbing -------------------------------------------------

// errorBody is the JSON error envelope every non-2xx response uses.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeStrict decodes the request body into v, rejecting unknown
// fields and trailing garbage.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("unexpected trailing data after the JSON body")
	}
	return nil
}

// submitResponse answers POST /api/v1/jobs.
type submitResponse struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var spec JobSpec
	if err := decodeStrict(r, &spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	norm, err := spec.normalize()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	j := s.newJob(norm, nil, 0)
	// Fast path: a completed cache entry answers without touching the
	// pool — the hit is free even when the queue is saturated.
	if data, ok := s.cache.peek(j.key); ok {
		s.mSubmitted.Add(1)
		s.mHits.Add(1)
		s.mCompleted.Add(1)
		j.complete(data, true)
		writeJSON(w, http.StatusOK, submitResponse{ID: j.id, Key: j.key, Status: jobDone.String(), Cached: true})
		return
	}
	if !s.enqueue(j) {
		s.mu.Lock()
		delete(s.jobm, j.id)
		s.mu.Unlock()
		s.mRejected.Add(1)
		httpError(w, http.StatusTooManyRequests, "job queue full (depth %d)", s.opts.QueueDepth)
		return
	}
	s.mSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, submitResponse{ID: j.id, Key: j.key, Status: jobQueued.String()})
}

// jobStatus answers GET /api/v1/jobs/{id}.
type jobStatus struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	state, _, errmsg, cached := j.view()
	writeJSON(w, http.StatusOK, jobStatus{ID: j.id, Key: j.key, Status: state.String(), Cached: cached, Error: errmsg})
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	state, record, errmsg, _ := j.view()
	switch state {
	case jobDone:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(record)
	case jobFailed:
		httpError(w, http.StatusInternalServerError, "job %s failed: %s", id, errmsg)
	default:
		httpError(w, http.StatusConflict, "job %s is %s", id, state)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = fmt.Fprintln(w, s.metrics.String())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
