package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSoakServe hammers the server with concurrent clients over a
// small set of distinct jobs, so most requests race the cache
// (in-flight joins, fast-path hits) under -race. Every response for a
// key must be byte-identical, and the pool must simulate each
// distinct job exactly once.
func TestSoakServe(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 4})
	specs := make([]JobSpec, 4)
	keys := make(map[string]bool, len(specs))
	for i := range specs {
		specs[i] = quickSpec(int64(201 + i))
		n, err := specs[i].normalize()
		if err != nil {
			t.Fatal(err)
		}
		keys[n.Key()] = true
	}

	const clients, rounds = 8, 12
	var (
		mu       sync.Mutex
		byKey    = map[string][]byte{}
		mismatch atomic.Int32
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				spec := specs[(c+i)%len(specs)]
				result, key, err := runJobOverHTTP(ts.ts.URL, spec)
				if err != nil {
					t.Errorf("client %d round %d: %v", c, i, err)
					return
				}
				mu.Lock()
				if prev, ok := byKey[key]; !ok {
					byKey[key] = result
				} else if !bytes.Equal(prev, result) {
					mismatch.Add(1)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if n := mismatch.Load(); n > 0 {
		t.Errorf("%d responses differed from the first bytes of their key", n)
	}
	if len(byKey) != len(keys) {
		t.Errorf("observed %d distinct keys, want %d", len(byKey), len(keys))
	}
	st := ts.statsOf(t)
	if st["cache_misses"] != float64(len(keys)) {
		t.Errorf("cache_misses = %v, want %d (one simulation per distinct job)", st["cache_misses"], len(keys))
	}
	if st["jobs_failed"] != 0 || st["jobs_rejected"] != 0 {
		t.Errorf("failed=%v rejected=%v, want 0", st["jobs_failed"], st["jobs_rejected"])
	}
	if want := float64(clients * rounds); st["jobs_submitted"] != want {
		t.Errorf("jobs_submitted = %v, want %v", st["jobs_submitted"], want)
	}
}

// runJobOverHTTP submits spec, polls to completion, and fetches the
// result bytes. Goroutine-safe (reports by error, never t.Fatal).
func runJobOverHTTP(baseURL string, spec JobSpec) (result []byte, key string, err error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, "", err
	}
	resp, err := http.Post(baseURL+"/api/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, "", err
	}
	body, err := readAll(resp)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("submit = %d (%s)", resp.StatusCode, body)
	}
	var sr submitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, "", fmt.Errorf("submit response %q: %v", body, err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/api/v1/jobs/" + sr.ID)
		if err != nil {
			return nil, "", err
		}
		body, err := readAll(resp)
		if err != nil {
			return nil, "", err
		}
		var js jobStatus
		if err := json.Unmarshal(body, &js); err != nil {
			return nil, "", fmt.Errorf("status response %q: %v", body, err)
		}
		if js.Status == "failed" {
			return nil, "", fmt.Errorf("job %s failed: %s", sr.ID, js.Error)
		}
		if js.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			return nil, "", fmt.Errorf("job %s stuck in state %q", sr.ID, js.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err = http.Get(baseURL + "/api/v1/jobs/" + sr.ID + "/result")
	if err != nil {
		return nil, "", err
	}
	body, err = readAll(resp)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("result = %d (%s)", resp.StatusCode, body)
	}
	return body, sr.Key, nil
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestShutdownResume interrupts a campaign mid-flight: graceful
// shutdown drains the in-flight point, persists the completed ones,
// and a restarted server resumes from the state file, re-simulating
// only the never-started point — with a final CSV byte-identical to
// an uninterrupted run.
func TestShutdownResume(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "campaigns.json")
	rates := []float64{0.02, 0.04, 0.06, 0.08}
	campaign := CampaignSpec{
		Base:  JobSpec{Width: 4, Height: 4, Cycles: 300, Seed: 71},
		Rates: rates,
	}

	srvA, err := New(Options{Workers: 1, StatePath: statePath})
	if err != nil {
		t.Fatal(err)
	}
	tsA := &testServer{Server: srvA, ts: httptest.NewServer(srvA.Handler())}
	defer tsA.ts.Close()

	// Park the single worker on its third pickup: points 1-2 complete,
	// point 3 is in flight, point 4 is queued but never started.
	var pickups atomic.Int32
	thirdRunning := make(chan struct{})
	release := make(chan struct{})
	srvA.hookRunning = func(*job) {
		if pickups.Add(1) == 3 {
			close(thirdRunning)
			<-release
		}
	}
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})

	code, body := tsA.post(t, "/api/v1/campaigns", campaign)
	if code != http.StatusAccepted {
		t.Fatalf("campaign create = %d (%s)", code, body)
	}
	var cp campaignProgress
	mustJSON(t, body, &cp)
	<-thirdRunning

	// Shutdown mid-campaign. Wait for quit to close before releasing
	// the worker, so the drained point 3 is deterministically the last
	// work this process does.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srvA.Shutdown(ctx) }()
	<-srvA.quit
	close(release)
	if err := <-errc; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The state file records three completed points and one pending.
	raw, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatalf("state file not written: %v", err)
	}
	var st persistedState
	mustJSON(t, raw, &st)
	if st.Version != stateVersion || len(st.Campaigns) != 1 {
		t.Fatalf("persisted state %+v", st)
	}
	var doneN, pendingN int
	for _, p := range st.Campaigns[0].Points {
		switch {
		case p.Done && len(p.Record) > 0:
			doneN++
		case !p.Done && !p.Failed:
			pendingN++
		default:
			t.Errorf("point in unexpected persisted state: %+v", p)
		}
	}
	if doneN != 3 || pendingN != 1 {
		t.Fatalf("persisted %d done / %d pending, want 3 / 1", doneN, pendingN)
	}

	// A restarted server sees the campaign, refuses the CSV while
	// incomplete, and resume finishes only the missing point.
	tsB := newTestServer(t, Options{Workers: 1, StatePath: statePath})
	codeB, bodyB := tsB.get(t, "/api/v1/campaigns/"+cp.ID)
	var progB campaignProgress
	mustJSON(t, bodyB, &progB)
	if codeB != http.StatusOK || progB.Done != 3 || progB.Pending != 1 {
		t.Fatalf("restored campaign progress = %d %+v", codeB, progB)
	}
	if code, _ := tsB.get(t, "/api/v1/campaigns/"+cp.ID+"/result.csv"); code != http.StatusConflict {
		t.Fatalf("incomplete restored CSV = %d, want 409", code)
	}
	code, body = tsB.post(t, "/api/v1/campaigns/"+cp.ID+"/resume", "{}")
	if code != http.StatusOK {
		t.Fatalf("resume = %d (%s)", code, body)
	}
	final := tsB.waitCampaign(t, cp.ID)
	if !final.Complete {
		t.Fatalf("resumed campaign did not complete: %+v", final)
	}
	stB := tsB.statsOf(t)
	if stB["cache_misses"] != 1 {
		t.Errorf("resume simulated %v points, want 1 (rest from persisted state)", stB["cache_misses"])
	}
	if stB["campaigns_resumed"] != 1 {
		t.Errorf("campaigns_resumed = %v, want 1", stB["campaigns_resumed"])
	}
	codeB, csvB := tsB.get(t, "/api/v1/campaigns/"+cp.ID+"/result.csv")
	if codeB != http.StatusOK {
		t.Fatalf("resumed CSV = %d (%s)", codeB, csvB)
	}

	// An uninterrupted control run must produce the same bytes.
	tsC := newTestServer(t, Options{Workers: 2})
	code, body = tsC.post(t, "/api/v1/campaigns", campaign)
	if code != http.StatusAccepted {
		t.Fatalf("control campaign = %d (%s)", code, body)
	}
	var cpC campaignProgress
	mustJSON(t, body, &cpC)
	tsC.waitCampaign(t, cpC.ID)
	codeC, csvC := tsC.get(t, "/api/v1/campaigns/"+cpC.ID+"/result.csv")
	if codeC != http.StatusOK {
		t.Fatalf("control CSV = %d (%s)", codeC, csvC)
	}
	if !bytes.Equal(csvB, csvC) {
		t.Errorf("resumed CSV differs from uninterrupted run:\nresumed:\n%s\ncontrol:\n%s", csvB, csvC)
	}
}
