package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"powerpunch/internal/network"
	"powerpunch/internal/obs"
)

// StreamSpec parameterizes POST /api/v1/stream: a job spec plus the
// streaming mode. "events" (the default) streams the cycle-level obs
// event trace as JSONL, optionally filtered by kind; "timeline"
// streams periodic power/activity samples. Streams always simulate
// (they are about watching a run, not fetching a result) and do not
// touch the result cache.
type StreamSpec struct {
	JobSpec
	Mode     string `json:"mode,omitempty"`     // "events" (default) | "timeline"
	Kinds    string `json:"kinds,omitempty"`    // comma-separated event kinds (events mode; empty = all)
	Interval int64  `json:"interval,omitempty"` // sampling window, cycles (timeline mode; default 100)
}

// streamEnd is the closing JSONL line of every stream, so clients can
// distinguish a completed stream from a truncated one.
type streamEnd struct {
	StreamEnd bool  `json:"stream_end"`
	Cycles    int64 `json:"cycles"`
	Events    int64 `json:"events,omitempty"`
	Samples   int   `json:"samples,omitempty"`
}

// flushEvery is the stream flush cadence in simulated cycles.
const flushEvery = 1024

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var ss StreamSpec
	if err := decodeStrict(r, &ss); err != nil {
		httpError(w, http.StatusBadRequest, "bad stream spec: %v", err)
		return
	}
	spec, err := ss.JobSpec.normalize()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid stream spec: %v", err)
		return
	}
	mode := ss.Mode
	if mode == "" {
		mode = "events"
	}
	mask := obs.MaskAll
	switch mode {
	case "events":
		if ss.Kinds != "" {
			var kinds []obs.Kind
			for _, name := range strings.Split(ss.Kinds, ",") {
				k, ok := obs.KindByName(strings.TrimSpace(name))
				if !ok {
					httpError(w, http.StatusBadRequest, "unknown event kind %q", name)
					return
				}
				kinds = append(kinds, k)
			}
			mask = obs.MaskOf(kinds...)
		}
	case "timeline":
		if ss.Interval < 0 {
			httpError(w, http.StatusBadRequest, "interval must be >= 0")
			return
		}
	default:
		httpError(w, http.StatusBadRequest, "unknown stream mode %q (want events or timeline)", mode)
		return
	}

	// Streams share the pool's concurrency budget via a semaphore so a
	// burst of stream requests cannot oversubscribe the host.
	select {
	case s.streamSem <- struct{}{}:
		defer func() { <-s.streamSem }()
	default:
		httpError(w, http.StatusTooManyRequests, "all %d stream slots busy", s.opts.Workers)
		return
	}
	s.mStreams.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	var cycles int64
	if mode == "events" {
		cycles = s.streamEvents(w, flush, spec, mask)
	} else {
		interval := ss.Interval
		if interval == 0 {
			interval = 100
		}
		cycles = s.streamTimeline(w, flush, spec, interval)
	}
	s.mSimCycles.Add(cycles)
}

// tickAll drives the built run to completion, invoking step after
// every simulated cycle (for incremental emission/flushing). It
// returns the cycle count.
func tickAll(net *network.Network, drv network.Driver, spec JobSpec, step func(now int64)) int64 {
	defer net.Close()
	if spec.Bench != "" {
		bound := spec.benchBound()
		for (!drv.Done() || !net.Quiesced()) && net.Now() < bound {
			drv.Tick(net, net.Now())
			net.Step()
			step(net.Now())
		}
		return net.Now()
	}
	budget := spec.Warmup + spec.Cycles
	for net.Now() < budget {
		drv.Tick(net, net.Now())
		net.Step()
		step(net.Now())
	}
	drainEnd := budget + net.Cfg.DrainCycles
	for !net.Quiesced() && net.Now() < drainEnd {
		net.Step()
		step(net.Now())
	}
	return net.Now()
}

// streamEvents runs the spec with a JSONL trace writer attached,
// flushing down the wire every flushEvery cycles.
func (s *Server) streamEvents(w io.Writer, flush func(), spec JobSpec, mask obs.KindMask) int64 {
	tw := obs.NewTraceWriter(w, mask)
	net, drv, err := buildRun(spec, tw)
	if err != nil {
		// The spec validated, so this is an environment failure; the
		// status line is already written — report in-band.
		fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
		flush()
		return 0
	}
	cycles := tickAll(net, drv, spec, func(now int64) {
		if now%flushEvery == 0 {
			tw.Flush()
			flush()
		}
	})
	tw.Flush()
	data, _ := json.Marshal(streamEnd{StreamEnd: true, Cycles: cycles, Events: tw.Events()})
	_, _ = w.Write(append(data, '\n'))
	flush()
	return cycles
}

// streamTimeline runs the spec with a periodic sampler attached,
// emitting each closed sample window as one JSON line.
func (s *Server) streamTimeline(w io.Writer, flush func(), spec JobSpec, interval int64) int64 {
	sampler := obs.NewSampler(interval)
	net, drv, err := buildRun(spec, sampler)
	if err != nil {
		fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
		flush()
		return 0
	}
	enc := json.NewEncoder(w)
	emitted := 0
	emit := func() {
		samples := sampler.Samples()
		if emitted == len(samples) {
			return
		}
		for ; emitted < len(samples); emitted++ {
			_ = enc.Encode(samples[emitted])
		}
		flush()
	}
	cycles := tickAll(net, drv, spec, func(now int64) {
		if now%interval == 0 {
			emit()
		}
	})
	emit()
	data, _ := json.Marshal(streamEnd{StreamEnd: true, Cycles: cycles, Samples: emitted})
	_, _ = w.Write(append(data, '\n'))
	flush()
	return cycles
}
