// Package stats collects the performance metrics the paper reports:
// average packet latency (Figures 7, 12, 13), per-packet blocking counts
// (Figure 9), wakeup-wait cycles (Figure 10), plus throughput and
// distribution data used for saturation detection and tests.
package stats

import (
	"fmt"
	"math"
	"sort"

	"powerpunch/internal/flit"
)

// Collector accumulates per-packet statistics over a measurement window.
// Packets created outside [MeasureStart, MeasureEnd) are transported but
// not counted. The zero value with window [0, MaxInt64) counts everything.
type Collector struct {
	MeasureStart int64
	MeasureEnd   int64

	injectedPackets int64
	ejectedPackets  int64
	injectedFlits   int64
	ejectedFlits    int64

	latencySum       int64 // creation -> ejection
	networkLatSum    int64 // injection -> ejection
	blockedSum       int64 // powered-off routers encountered
	wakeupWaitSum    int64 // cycles stalled waiting for wakeup
	niWaitSum        int64 // creation -> injection (time before entering the net)
	wakeupWaitNISum  int64 // wakeup-wait portion accrued at the source NI
	hopsSum          int64
	perVNejected     [flit.NumVirtualNetworks]int64
	latencySamples   []int64
	maxLatency       int64
	keepSamples      bool
	inFlightMeasured int64
}

// New returns a collector measuring packets created in [start, end).
func New(start, end int64) *Collector {
	if end <= 0 {
		end = math.MaxInt64
	}
	return &Collector{MeasureStart: start, MeasureEnd: end}
}

// KeepSamples makes the collector retain every measured latency sample so
// percentiles can be computed. Off by default to bound memory.
func (c *Collector) KeepSamples(v bool) { c.keepSamples = v }

// KeepingSamples reports whether latency samples are retained.
func (c *Collector) KeepingSamples() bool { return c.keepSamples }

// Merge folds collector o into c and resets o. The sharded parallel
// tick engine gives each worker a lane collector (every NI records into
// the lane of the worker that owns it) and merges the lanes into the
// real collector in fixed worker order once per cycle, with all workers
// quiescent. All counters are integers, so lane accumulation commutes;
// latency samples are appended in merge order, which — lanes owning
// contiguous node ranges, merged ascending, once per cycle — reproduces
// the serial engine's ascending-node ejection order exactly.
func (c *Collector) Merge(o *Collector) {
	c.injectedPackets += o.injectedPackets
	c.ejectedPackets += o.ejectedPackets
	c.injectedFlits += o.injectedFlits
	c.ejectedFlits += o.ejectedFlits
	c.latencySum += o.latencySum
	c.networkLatSum += o.networkLatSum
	c.blockedSum += o.blockedSum
	c.wakeupWaitSum += o.wakeupWaitSum
	c.niWaitSum += o.niWaitSum
	c.wakeupWaitNISum += o.wakeupWaitNISum
	c.hopsSum += o.hopsSum
	for vn := range o.perVNejected {
		c.perVNejected[vn] += o.perVNejected[vn]
	}
	if o.maxLatency > c.maxLatency {
		c.maxLatency = o.maxLatency
	}
	c.inFlightMeasured += o.inFlightMeasured
	if c.keepSamples && len(o.latencySamples) > 0 {
		c.latencySamples = append(c.latencySamples, o.latencySamples...)
	}
	start, end, keep := o.MeasureStart, o.MeasureEnd, o.keepSamples
	*o = Collector{MeasureStart: start, MeasureEnd: end, keepSamples: keep,
		latencySamples: o.latencySamples[:0]}
}

// Measured reports whether a packet created at cycle t falls in the
// measurement window.
func (c *Collector) Measured(t int64) bool {
	end := c.MeasureEnd
	if end == 0 {
		end = math.MaxInt64
	}
	return t >= c.MeasureStart && t < end
}

// PacketInjected records a packet entering the network (head flit
// accepted by the source router).
func (c *Collector) PacketInjected(p *flit.Packet) {
	if !c.Measured(p.CreatedAt) {
		return
	}
	c.injectedPackets++
	c.injectedFlits += int64(p.Size)
	c.inFlightMeasured++
}

// PacketEjected records a packet fully delivered to its destination NI.
func (c *Collector) PacketEjected(p *flit.Packet, hops int) {
	if !c.Measured(p.CreatedAt) {
		return
	}
	c.ejectedPackets++
	c.ejectedFlits += int64(p.Size)
	c.inFlightMeasured--
	lat := p.NetworkLatency()
	c.latencySum += lat
	c.networkLatSum += p.RouterLatency()
	c.blockedSum += int64(p.BlockedRouters)
	c.wakeupWaitSum += p.WakeupWait
	c.niWaitSum += p.InjectedAt - p.CreatedAt
	c.wakeupWaitNISum += p.WakeupWaitNI
	c.hopsSum += int64(hops)
	c.perVNejected[p.VN]++
	if lat > c.maxLatency {
		c.maxLatency = lat
	}
	if c.keepSamples {
		c.latencySamples = append(c.latencySamples, lat)
	}
}

// InjectedPackets returns the number of measured packets injected.
func (c *Collector) InjectedPackets() int64 { return c.injectedPackets }

// EjectedPackets returns the number of measured packets delivered.
func (c *Collector) EjectedPackets() int64 { return c.ejectedPackets }

// EjectedFlits returns the number of measured flits delivered.
func (c *Collector) EjectedFlits() int64 { return c.ejectedFlits }

// InFlight returns measured packets injected but not yet delivered.
func (c *Collector) InFlight() int64 { return c.inFlightMeasured }

// AvgLatency returns the mean creation-to-ejection packet latency in
// cycles — the paper's "average packet latency".
func (c *Collector) AvgLatency() float64 {
	if c.ejectedPackets == 0 {
		return 0
	}
	return float64(c.latencySum) / float64(c.ejectedPackets)
}

// AvgNetworkLatency returns the mean injection-to-ejection latency.
func (c *Collector) AvgNetworkLatency() float64 {
	if c.ejectedPackets == 0 {
		return 0
	}
	return float64(c.networkLatSum) / float64(c.ejectedPackets)
}

// AvgBlockedRouters returns the mean number of powered-off routers a
// packet encountered (Figure 9).
func (c *Collector) AvgBlockedRouters() float64 {
	if c.ejectedPackets == 0 {
		return 0
	}
	return float64(c.blockedSum) / float64(c.ejectedPackets)
}

// AvgWakeupWait returns the mean cycles per packet spent stalled waiting
// for router wakeups (Figure 10).
func (c *Collector) AvgWakeupWait() float64 {
	if c.ejectedPackets == 0 {
		return 0
	}
	return float64(c.wakeupWaitSum) / float64(c.ejectedPackets)
}

// AvgHops returns the mean hop count of delivered packets.
func (c *Collector) AvgHops() float64 {
	if c.ejectedPackets == 0 {
		return 0
	}
	return float64(c.hopsSum) / float64(c.ejectedPackets)
}

// MaxLatency returns the largest observed packet latency.
func (c *Collector) MaxLatency() int64 { return c.maxLatency }

// VNEjected returns delivered packet counts per virtual network.
func (c *Collector) VNEjected(vn flit.VirtualNetwork) int64 { return c.perVNejected[vn] }

// Throughput returns delivered flits per node per cycle over a window of
// `cycles` cycles and `nodes` nodes.
func (c *Collector) Throughput(nodes int, cycles int64) float64 {
	if nodes == 0 || cycles == 0 {
		return 0
	}
	return float64(c.ejectedFlits) / (float64(nodes) * float64(cycles))
}

// Percentile returns the p-th (0-100) latency percentile. KeepSamples
// must have been enabled; otherwise it returns NaN.
func (c *Collector) Percentile(p float64) float64 {
	if !c.keepSamples || len(c.latencySamples) == 0 {
		return math.NaN()
	}
	s := make([]int64, len(c.latencySamples))
	copy(s, c.latencySamples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx])
}

// StageSums are the exact integer cycle sums behind the latency
// metrics, the inputs to RunResult.Detail's stage decomposition. All
// sums cover measured ejected packets only, so
// Latency == NIWait' + transit' for every packet and
// Latency / Packets == Summary.AvgLatency exactly.
type StageSums struct {
	Packets      int64 // measured packets ejected
	Latency      int64 // Σ (EjectedAt − CreatedAt)
	NIWait       int64 // Σ (InjectedAt − CreatedAt)
	WakeupWait   int64 // Σ WakeupWait (NI-side + in-network)
	WakeupWaitNI int64 // Σ WakeupWaitNI (the NI-side portion)
}

// Stages returns the integer cycle sums of the latency decomposition.
func (c *Collector) Stages() StageSums {
	return StageSums{
		Packets:      c.ejectedPackets,
		Latency:      c.latencySum,
		NIWait:       c.niWaitSum,
		WakeupWait:   c.wakeupWaitSum,
		WakeupWaitNI: c.wakeupWaitNISum,
	}
}

// Summary is a snapshot of the headline metrics for reporting.
type Summary struct {
	Injected    int64
	Ejected     int64
	AvgLatency  float64
	AvgBlocked  float64
	AvgWakeWait float64
	AvgHops     float64
}

// Summarize returns the headline metrics.
func (c *Collector) Summarize() Summary {
	return Summary{
		Injected:    c.injectedPackets,
		Ejected:     c.ejectedPackets,
		AvgLatency:  c.AvgLatency(),
		AvgBlocked:  c.AvgBlockedRouters(),
		AvgWakeWait: c.AvgWakeupWait(),
		AvgHops:     c.AvgHops(),
	}
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("ejected=%d lat=%.2f blocked=%.2f wait=%.2f hops=%.2f",
		s.Ejected, s.AvgLatency, s.AvgBlocked, s.AvgWakeWait, s.AvgHops)
}
