package stats

import (
	"math"
	"testing"

	"powerpunch/internal/flit"
)

func pkt(created, ejected int64, blocked int, wait int64) *flit.Packet {
	return &flit.Packet{
		Size: 1, CreatedAt: created, InjectedAt: created + 3, EjectedAt: ejected,
		BlockedRouters: blocked, WakeupWait: wait, VN: flit.VNRequest,
	}
}

func TestMeasurementWindow(t *testing.T) {
	c := New(100, 200)
	if c.Measured(99) || !c.Measured(100) || !c.Measured(199) || c.Measured(200) {
		t.Error("window boundaries")
	}
	// A packet created before the window is transported but not counted.
	early := pkt(50, 150, 0, 0)
	c.PacketInjected(early)
	c.PacketEjected(early, 4)
	if c.EjectedPackets() != 0 {
		t.Error("early packet counted")
	}
	in := pkt(150, 190, 1, 5)
	c.PacketInjected(in)
	c.PacketEjected(in, 4)
	if c.EjectedPackets() != 1 {
		t.Error("in-window packet not counted")
	}
}

func TestZeroEndMeansUnbounded(t *testing.T) {
	c := New(0, 0)
	if !c.Measured(1 << 50) {
		t.Error("zero end must mean unbounded")
	}
}

func TestAverages(t *testing.T) {
	c := New(0, 0)
	for i, l := range []int64{10, 20, 30} {
		p := pkt(0, l, i, int64(i*2))
		c.PacketInjected(p)
		c.PacketEjected(p, i+1)
	}
	if got := c.AvgLatency(); got != 20 {
		t.Errorf("AvgLatency = %g", got)
	}
	if got := c.AvgBlockedRouters(); got != 1 {
		t.Errorf("AvgBlocked = %g", got)
	}
	if got := c.AvgWakeupWait(); got != 2 {
		t.Errorf("AvgWakeupWait = %g", got)
	}
	if got := c.AvgHops(); got != 2 {
		t.Errorf("AvgHops = %g", got)
	}
	if got := c.MaxLatency(); got != 30 {
		t.Errorf("MaxLatency = %d", got)
	}
	if got := c.AvgNetworkLatency(); got != 17 {
		t.Errorf("AvgNetworkLatency = %g", got)
	}
}

func TestInFlight(t *testing.T) {
	c := New(0, 0)
	p := pkt(0, 10, 0, 0)
	c.PacketInjected(p)
	if c.InFlight() != 1 {
		t.Error("in-flight after inject")
	}
	c.PacketEjected(p, 1)
	if c.InFlight() != 0 {
		t.Error("in-flight after eject")
	}
}

func TestThroughput(t *testing.T) {
	c := New(0, 0)
	for i := 0; i < 10; i++ {
		p := pkt(0, 5, 0, 0)
		p.Size = 4
		c.PacketInjected(p)
		c.PacketEjected(p, 2)
	}
	// 40 flits / (4 nodes * 100 cycles) = 0.1
	if got := c.Throughput(4, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Throughput = %g", got)
	}
	if c.Throughput(0, 0) != 0 {
		t.Error("zero guard")
	}
}

func TestPercentiles(t *testing.T) {
	c := New(0, 0)
	c.KeepSamples(true)
	for i := int64(1); i <= 100; i++ {
		p := pkt(0, i, 0, 0)
		c.PacketInjected(p)
		c.PacketEjected(p, 1)
	}
	if got := c.Percentile(50); got != 50 {
		t.Errorf("p50 = %g", got)
	}
	if got := c.Percentile(99); got != 99 {
		t.Errorf("p99 = %g", got)
	}
	noSamples := New(0, 0)
	if !math.IsNaN(noSamples.Percentile(50)) {
		t.Error("percentile without samples must be NaN")
	}
}

func TestPerVNCounts(t *testing.T) {
	c := New(0, 0)
	p := pkt(0, 5, 0, 0)
	p.VN = flit.VNResponse
	c.PacketInjected(p)
	c.PacketEjected(p, 1)
	if c.VNEjected(flit.VNResponse) != 1 || c.VNEjected(flit.VNRequest) != 0 {
		t.Error("per-VN counts")
	}
}

func TestEmptyCollectorAverages(t *testing.T) {
	c := New(0, 0)
	if c.AvgLatency() != 0 || c.AvgBlockedRouters() != 0 || c.AvgWakeupWait() != 0 || c.AvgHops() != 0 {
		t.Error("empty collector must report zeros")
	}
}

func TestSummaryString(t *testing.T) {
	c := New(0, 0)
	p := pkt(0, 7, 2, 3)
	c.PacketInjected(p)
	c.PacketEjected(p, 3)
	s := c.Summarize()
	if s.Ejected != 1 || s.AvgLatency != 7 || s.AvgBlocked != 2 || s.AvgWakeWait != 3 {
		t.Errorf("summary: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}
