package topo

import (
	"fmt"

	"powerpunch/internal/mesh"
)

// grid is a W x H grid with optional wraparound per dimension: the
// torus wraps both, the ring is W x 1 wrapping X only. It reuses the
// mesh package's row-major node numbering and coordinate frame, so a
// torus node's ID matches the same node on a mesh of the same shape.
type grid struct {
	kind         Kind
	w, h         int
	wrapX, wrapY bool
}

func (g *grid) Kind() Kind    { return g.kind }
func (g *grid) Width() int    { return g.w }
func (g *grid) Height() int   { return g.h }
func (g *grid) NumNodes() int { return g.w * g.h }

func (g *grid) Contains(id mesh.NodeID) bool {
	return id >= 0 && int(id) < g.NumNodes()
}

func (g *grid) CoordOf(id mesh.NodeID) mesh.Coord {
	return mesh.Coord{X: int(id) % g.w, Y: int(id) / g.w}
}

func (g *grid) NodeAt(c mesh.Coord) mesh.NodeID {
	if c.X < 0 || c.X >= g.w || c.Y < 0 || c.Y >= g.h {
		return mesh.Invalid
	}
	return mesh.NodeID(c.Y*g.w + c.X)
}

func (g *grid) Neighbor(id mesh.NodeID, d mesh.Direction) mesh.NodeID {
	if !g.Contains(id) {
		return mesh.Invalid
	}
	c := g.CoordOf(id)
	dx, dy := mesh.Step(d)
	if dx == 0 && dy == 0 {
		return mesh.Invalid // Local or unknown direction
	}
	c.X += dx
	c.Y += dy
	if g.wrapX {
		c.X = (c.X + g.w) % g.w
	}
	if g.wrapY {
		c.Y = (c.Y + g.h) % g.h
	}
	return g.NodeAt(c)
}

// dimDist is the minimal distance along one dimension of size n,
// wrapping if wrap is set.
func dimDist(a, b, n int, wrap bool) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap && n-d < d {
		d = n - d
	}
	return d
}

func (g *grid) HopDistance(a, b mesh.NodeID) int {
	ca, cb := g.CoordOf(a), g.CoordOf(b)
	return dimDist(ca.X, cb.X, g.w, g.wrapX) + dimDist(ca.Y, cb.Y, g.h, g.wrapY)
}

func (g *grid) Diameter() int {
	d := 0
	if g.wrapX {
		d += g.w / 2
	} else {
		d += g.w - 1
	}
	if g.wrapY {
		d += g.h / 2
	} else {
		d += g.h - 1
	}
	return d
}

func (g *grid) Links() []mesh.Link {
	var links []mesh.Link
	for id := mesh.NodeID(0); g.Contains(id); id++ {
		for _, d := range mesh.LinkDirections {
			if n := g.Neighbor(id, d); n != mesh.Invalid {
				links = append(links, mesh.Link{Src: id, Dst: n, Dir: d})
			}
		}
	}
	return links
}

func (g *grid) NodesWithin(id mesh.NodeID, k int) []mesh.NodeID {
	var out []mesh.NodeID
	for n := mesh.NodeID(0); g.Contains(n); n++ {
		if n == id {
			continue
		}
		if d := g.HopDistance(id, n); d >= 1 && d <= k {
			out = append(out, n)
		}
	}
	return out
}

func (g *grid) Corners() []mesh.NodeID {
	set := map[mesh.NodeID]bool{}
	var out []mesh.NodeID
	for _, c := range []mesh.Coord{
		{X: 0, Y: 0},
		{X: g.w - 1, Y: 0},
		{X: 0, Y: g.h - 1},
		{X: g.w - 1, Y: g.h - 1},
	} {
		id := g.NodeAt(c)
		if !set[id] {
			set[id] = true
			out = append(out, id)
		}
	}
	return out
}

func (g *grid) String() string {
	if g.kind == KindRing {
		return fmt.Sprintf("%d-node ring", g.w)
	}
	return fmt.Sprintf("%dx%d torus", g.w, g.h)
}

// dorRouting is minimal dimension-order routing on a wrapped grid: X
// first, then Y, taking the shorter way around each wrapped dimension
// (ties break toward East/South so the function is deterministic).
//
// Deadlock freedom uses the classic dateline argument, with the class
// computed purely from coordinates rather than from per-packet state:
// a packet departing East is in class 0 exactly when its destination
// column is behind it (dst.X < cur.X — the wrap link from column W-1
// to column 0 still lies ahead) and in class 1 otherwise. Class-0
// eastward packets can therefore never occupy the link leaving column
// 0 (that would need dst.X < 0), class-1 eastward packets can never
// occupy the wrap link leaving column W-1 (crossing it requires
// dst.X < cur.X, i.e. class 0), so each class's channel dependency
// graph is a broken — acyclic — chain around the ring. The same holds
// per direction in Y, and dimension order makes the X->Y dependencies
// acyclic, so the whole fabric is deadlock-free with two VC classes.
// A packet crossing the dateline moves from class 0 to class 1, never
// back; the class resets at the X->Y turn, which is safe because the
// dimensions' channel sets are disjoint.
type dorRouting struct {
	t *grid
}

func (r *dorRouting) Topology() Topology { return r.t }

// dirAlong picks the travel direction along one dimension: neg/pos are
// the directions of decreasing/increasing coordinate, n the dimension
// size. With wrap it takes the shorter way, breaking ties toward pos.
func dirAlong(cur, dst, n int, wrap bool, neg, pos mesh.Direction) mesh.Direction {
	if !wrap {
		if dst > cur {
			return pos
		}
		return neg
	}
	fwd := ((dst - cur) + n) % n // hops going pos
	if fwd <= n-fwd {
		return pos
	}
	return neg
}

func (r *dorRouting) Route(cur, dst mesh.NodeID) (mesh.Direction, error) {
	if !r.t.Contains(cur) || !r.t.Contains(dst) {
		return mesh.Local, routeError(r.t, cur, dst, "node outside the fabric")
	}
	cc, dc := r.t.CoordOf(cur), r.t.CoordOf(dst)
	if cc.X != dc.X {
		return dirAlong(cc.X, dc.X, r.t.w, r.t.wrapX, mesh.West, mesh.East), nil
	}
	if cc.Y != dc.Y {
		return dirAlong(cc.Y, dc.Y, r.t.h, r.t.wrapY, mesh.North, mesh.South), nil
	}
	return mesh.Local, nil
}

func (r *dorRouting) NextHop(cur, dst mesh.NodeID) (mesh.NodeID, error) {
	d, err := r.Route(cur, dst)
	if err != nil {
		return mesh.Invalid, err
	}
	if d == mesh.Local {
		return cur, nil
	}
	n := r.t.Neighbor(cur, d)
	if n == mesh.Invalid {
		return mesh.Invalid, routeError(r.t, cur, dst, fmt.Sprintf("no link %v", d))
	}
	return n, nil
}

// LegalTurn uses the same rule as XY: dimension order forbids Y-to-X
// turns, and minimal routing never reverses. Direction along each
// dimension is fixed for a packet's whole traversal (the shorter-way
// choice is consistent hop to hop), so the no-reversal clause holds on
// wrapped dimensions too.
func (r *dorRouting) LegalTurn(in, out mesh.Direction) bool {
	if in == mesh.Local || out == mesh.Local {
		return true
	}
	if in.IsY() && out.IsX() {
		return false
	}
	if out == in.Opposite() {
		return false
	}
	return true
}

func (r *dorRouting) VCClasses() int { return 2 }

func (r *dorRouting) ClassFor(cur, dst mesh.NodeID, d mesh.Direction) int {
	cc, dc := r.t.CoordOf(cur), r.t.CoordOf(dst)
	switch d {
	case mesh.East:
		if r.t.wrapX && dc.X < cc.X {
			return 0
		}
	case mesh.West:
		if r.t.wrapX && dc.X > cc.X {
			return 0
		}
	case mesh.South:
		if r.t.wrapY && dc.Y < cc.Y {
			return 0
		}
	case mesh.North:
		if r.t.wrapY && dc.Y > cc.Y {
			return 0
		}
	}
	return 1
}

func (r *dorRouting) String() string {
	if r.t.kind == KindRing {
		return "ring-DOR"
	}
	return "torus-DOR"
}
