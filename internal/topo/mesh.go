package topo

import (
	"powerpunch/internal/mesh"
	"powerpunch/internal/routing"
)

// meshTopo adapts the concrete *mesh.Mesh to the Topology interface.
// It is the paper's fabric: everything the rest of the simulator used
// to get from mesh.Mesh directly now flows through here.
type meshTopo struct {
	m *mesh.Mesh
}

// FromMesh wraps an existing mesh as a Topology.
func FromMesh(m *mesh.Mesh) Topology { return &meshTopo{m: m} }

// Mesh unwraps a Topology back to its underlying *mesh.Mesh, or nil if
// the topology is not a mesh. Legacy call sites that still speak
// *mesh.Mesh (the core encoder's compatibility wrappers) use this.
func Mesh(t Topology) *mesh.Mesh {
	if mt, ok := t.(*meshTopo); ok {
		return mt.m
	}
	return nil
}

func (t *meshTopo) Kind() Kind                                    { return KindMesh }
func (t *meshTopo) Width() int                                    { return t.m.Width() }
func (t *meshTopo) Height() int                                   { return t.m.Height() }
func (t *meshTopo) NumNodes() int                                 { return t.m.NumNodes() }
func (t *meshTopo) Contains(id mesh.NodeID) bool                  { return t.m.Contains(id) }
func (t *meshTopo) CoordOf(id mesh.NodeID) mesh.Coord             { return t.m.CoordOf(id) }
func (t *meshTopo) NodeAt(c mesh.Coord) mesh.NodeID               { return t.m.NodeAt(c) }
func (t *meshTopo) Neighbor(id mesh.NodeID, d mesh.Direction) mesh.NodeID {
	return t.m.Neighbor(id, d)
}
func (t *meshTopo) HopDistance(a, b mesh.NodeID) int              { return t.m.HopDistance(a, b) }
func (t *meshTopo) Diameter() int                                 { return (t.m.Width() - 1) + (t.m.Height() - 1) }
func (t *meshTopo) Links() []mesh.Link                            { return t.m.Links() }
func (t *meshTopo) NodesWithin(id mesh.NodeID, k int) []mesh.NodeID {
	return t.m.NodesWithin(id, k)
}
func (t *meshTopo) Corners() []mesh.NodeID { return t.m.Corners() }
func (t *meshTopo) String() string         { return t.m.String() }

// xyRouting adapts package routing's XY dimension-order routing to the
// RoutingFunction interface. A mesh has no cyclic channel dependencies,
// so a single VC class suffices.
type xyRouting struct {
	t *meshTopo
}

func (r *xyRouting) Topology() Topology { return r.t }

func (r *xyRouting) Route(cur, dst mesh.NodeID) (mesh.Direction, error) {
	if !r.t.Contains(cur) || !r.t.Contains(dst) {
		return mesh.Local, routeError(r.t, cur, dst, "node outside the fabric")
	}
	return routing.XY(r.t.m, cur, dst), nil
}

func (r *xyRouting) NextHop(cur, dst mesh.NodeID) (mesh.NodeID, error) {
	d, err := r.Route(cur, dst)
	if err != nil {
		return mesh.Invalid, err
	}
	if d == mesh.Local {
		return cur, nil
	}
	n := r.t.Neighbor(cur, d)
	if n == mesh.Invalid {
		// XY on a mesh can never route off an edge; reaching this means
		// the destination (or the mesh) is corrupted.
		return mesh.Invalid, routeError(r.t, cur, dst, "XY step leaves the mesh")
	}
	return n, nil
}

func (r *xyRouting) LegalTurn(in, out mesh.Direction) bool { return routing.LegalTurn(in, out) }
func (r *xyRouting) VCClasses() int                        { return 1 }
func (r *xyRouting) ClassFor(cur, dst mesh.NodeID, d mesh.Direction) int { return 0 }
func (r *xyRouting) String() string                        { return "XY" }
