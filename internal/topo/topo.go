// Package topo abstracts the fabric underneath the simulator: a
// Topology enumerates nodes, ports, and links; a RoutingFunction turns
// (current, destination) pairs into output directions and exposes the
// legal-turn predicate the punch encoder prunes with.
//
// The 2D mesh with XY dimension-order routing (package mesh + package
// routing) is one implementation; the torus (wraparound links, deadlock
// freedom via a dateline VC class on wrap links) and the ring (a 1xN
// degenerate torus) are the others. Everything above this package —
// encoder, fabric, router, network, checks — is written against these
// two interfaces, so the paper's Table 1 code books fall out of the
// XY-mesh special case rather than being hardwired.
package topo

import (
	"fmt"

	"powerpunch/internal/mesh"
)

// Kind identifies a fabric family.
type Kind int

const (
	// KindMesh is the paper's 2D mesh (no wraparound links).
	KindMesh Kind = iota
	// KindTorus is a 2D torus: both dimensions wrap.
	KindTorus
	// KindRing is a 1xN ring: a degenerate torus with a single wrapped
	// dimension.
	KindRing
)

// String returns the canonical lowercase name used in configs and flags.
func (k Kind) String() string {
	switch k {
	case KindMesh:
		return "mesh"
	case KindTorus:
		return "torus"
	case KindRing:
		return "ring"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a topology name. The empty string selects the mesh,
// so configurations predating the topology field keep their meaning.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "mesh":
		return KindMesh, nil
	case "torus":
		return KindTorus, nil
	case "ring":
		return KindRing, nil
	default:
		return KindMesh, fmt.Errorf("topo: unknown topology %q (want mesh, torus, or ring)", s)
	}
}

// Topology enumerates the nodes, coordinates, and unidirectional links
// of a fabric. All fabrics use the mesh package's coordinate frame and
// five-port router model (N/S/E/W + Local); a direction with no link —
// North on a ring, say — simply has no neighbor.
type Topology interface {
	// Kind identifies the fabric family.
	Kind() Kind
	// Width and Height are the grid dimensions (a ring is Width x 1).
	Width() int
	Height() int
	// NumNodes is the total node count.
	NumNodes() int
	// Contains reports whether id is a valid node.
	Contains(id mesh.NodeID) bool
	// CoordOf returns the coordinate of node id.
	CoordOf(id mesh.NodeID) mesh.Coord
	// NodeAt returns the node at c, or mesh.Invalid when c is outside
	// the grid.
	NodeAt(c mesh.Coord) mesh.NodeID
	// Neighbor returns the node one hop from id in direction d, or
	// mesh.Invalid when no such link exists (or d is Local).
	Neighbor(id mesh.NodeID, d mesh.Direction) mesh.NodeID
	// HopDistance is the minimal hop count between two nodes (wrap-aware
	// on torus and ring).
	HopDistance(a, b mesh.NodeID) int
	// Diameter is the maximum HopDistance over all node pairs.
	Diameter() int
	// Links enumerates every unidirectional inter-router link in a
	// deterministic order (by source node, then N,S,E,W).
	Links() []mesh.Link
	// NodesWithin returns all nodes whose hop distance from id is in
	// [1, k], in ascending NodeID order.
	NodesWithin(id mesh.NodeID, k int) []mesh.NodeID
	// Corners returns the memory-controller placement sites: the four
	// grid corners (deduplicated for degenerate shapes).
	Corners() []mesh.NodeID
	// String is a short description such as "8x8 mesh" or "16-node ring".
	String() string
}

// RouteError reports a routing query over nodes the fabric cannot
// route between — a corrupted destination, typically. It carries the
// offending coordinates so the failure is diagnosable without a
// debugger.
type RouteError struct {
	Topo     string
	Cur, Dst mesh.NodeID
	CurCoord mesh.Coord
	DstCoord mesh.Coord
	Reason   string
}

func (e *RouteError) Error() string {
	return fmt.Sprintf("topo: cannot route on %s from node %d (%d,%d) to node %d (%d,%d): %s",
		e.Topo, e.Cur, e.CurCoord.X, e.CurCoord.Y, e.Dst, e.DstCoord.X, e.DstCoord.Y, e.Reason)
}

// RoutingFunction is a deterministic minimal routing algorithm over a
// Topology. Implementations must be consistent along a path: the
// direction chosen at any intermediate router extends the same minimal
// path chosen at the source, so Path/Ahead walks are well defined.
type RoutingFunction interface {
	// Topology returns the fabric this function routes over.
	Topology() Topology
	// Route computes the output direction at cur for a packet destined
	// to dst. It returns mesh.Local when cur == dst, and a *RouteError
	// when either node is not part of the fabric.
	Route(cur, dst mesh.NodeID) (mesh.Direction, error)
	// NextHop returns the next router on the path from cur to dst (cur
	// itself when cur == dst), or a *RouteError for corrupted inputs.
	NextHop(cur, dst mesh.NodeID) (mesh.NodeID, error)
	// LegalTurn reports whether a packet travelling in direction `in`
	// may depart in direction `out`. The punch encoder uses this to
	// prune impossible signal combinations (paper Section 4.1, step 3).
	LegalTurn(in, out mesh.Direction) bool
	// VCClasses is the number of dateline VC classes the function needs
	// for deadlock freedom: 1 on the mesh, 2 on fabrics with wrap links.
	VCClasses() int
	// ClassFor returns the dateline class (in [0, VCClasses())) a packet
	// at cur destined to dst must use when departing in direction d.
	// Class 0 is the pre-dateline class (the packet still has the wrap
	// link of d's dimension ahead of it); class 1 is post-dateline.
	// With VCClasses() == 1 it always returns 0.
	ClassFor(cur, dst mesh.NodeID, d mesh.Direction) int
	// String names the algorithm, e.g. "XY" or "torus-DOR".
	String() string
}

// New constructs the topology of the given kind. Width and height carry
// the same meaning as config.Width/Height; a ring requires height 1.
func New(k Kind, width, height int) (Topology, error) {
	switch k {
	case KindMesh:
		if width < 1 || height < 1 {
			return nil, fmt.Errorf("topo: invalid mesh dimensions %dx%d", width, height)
		}
		return FromMesh(mesh.New(width, height)), nil
	case KindTorus:
		if width < 2 || height < 2 {
			return nil, fmt.Errorf("topo: torus needs both dimensions >= 2, got %dx%d", width, height)
		}
		return &grid{kind: KindTorus, w: width, h: height, wrapX: true, wrapY: true}, nil
	case KindRing:
		if height != 1 {
			return nil, fmt.Errorf("topo: ring needs height 1, got %dx%d", width, height)
		}
		if width < 2 {
			return nil, fmt.Errorf("topo: ring needs >= 2 nodes, got %d", width)
		}
		return &grid{kind: KindRing, w: width, h: 1, wrapX: true}, nil
	default:
		return nil, fmt.Errorf("topo: unknown kind %v", k)
	}
}

// Routing returns the canonical deterministic routing function for t:
// XY on the mesh, minimal dimension-order routing with dateline VC
// classes on torus and ring.
func Routing(t Topology) RoutingFunction {
	switch tt := t.(type) {
	case *meshTopo:
		return &xyRouting{t: tt}
	case *grid:
		return &dorRouting{t: tt}
	default:
		panic(fmt.Sprintf("topo: no routing function for topology %T", t))
	}
}

// Build resolves a config-level topology name and dimensions into a
// routing function (and, via Topology(), the fabric itself).
func Build(name string, width, height int) (RoutingFunction, error) {
	k, err := ParseKind(name)
	if err != nil {
		return nil, err
	}
	t, err := New(k, width, height)
	if err != nil {
		return nil, err
	}
	return Routing(t), nil
}

// MustRoute is Route for callers on paths where a routing error is a
// programming error; it panics with the underlying *RouteError.
func MustRoute(rf RoutingFunction, cur, dst mesh.NodeID) mesh.Direction {
	d, err := rf.Route(cur, dst)
	if err != nil {
		panic(err)
	}
	return d
}

// MustNextHop is NextHop for callers on paths where a routing error is
// a programming error; it panics with the underlying *RouteError.
func MustNextHop(rf RoutingFunction, cur, dst mesh.NodeID) mesh.NodeID {
	n, err := rf.NextHop(cur, dst)
	if err != nil {
		panic(err)
	}
	return n
}

// Path returns the full routed path from src to dst, inclusive of both
// endpoints. Path(rf, src, src) returns [src].
func Path(rf RoutingFunction, src, dst mesh.NodeID) []mesh.NodeID {
	path := []mesh.NodeID{src}
	cur := src
	for cur != dst {
		cur = MustNextHop(rf, cur, dst)
		path = append(path, cur)
	}
	return path
}

// Ahead returns the router k hops ahead of cur on the path to dst. If
// fewer than k hops remain it returns dst; Ahead(rf, cur, dst, 0) is
// cur. This is the paper's targeted-router computation.
func Ahead(rf RoutingFunction, cur, dst mesh.NodeID, k int) mesh.NodeID {
	node := cur
	for i := 0; i < k && node != dst; i++ {
		node = MustNextHop(rf, node, dst)
	}
	return node
}

// HopsRemaining returns the hop count left on the path from cur to dst.
// The routing functions here are minimal, so this is the topology's hop
// distance.
func HopsRemaining(rf RoutingFunction, cur, dst mesh.NodeID) int {
	return rf.Topology().HopDistance(cur, dst)
}

// OnPath reports whether node lies on the routed path from src to dst
// (inclusive of the endpoints).
func OnPath(rf RoutingFunction, src, dst, node mesh.NodeID) bool {
	cur := src
	for {
		if cur == node {
			return true
		}
		if cur == dst {
			return false
		}
		cur = MustNextHop(rf, cur, dst)
	}
}

// PathUsesLink reports whether the routed path from src to dst
// traverses the directed link a -> b.
func PathUsesLink(rf RoutingFunction, src, dst, a, b mesh.NodeID) bool {
	cur := src
	for cur != dst {
		next := MustNextHop(rf, cur, dst)
		if cur == a && next == b {
			return true
		}
		cur = next
	}
	return false
}

// routeError builds a *RouteError with coordinates filled in where the
// nodes are part of the fabric.
func routeError(t Topology, cur, dst mesh.NodeID, reason string) *RouteError {
	e := &RouteError{Topo: t.String(), Cur: cur, Dst: dst, Reason: reason}
	if t.Contains(cur) {
		e.CurCoord = t.CoordOf(cur)
	} else {
		e.CurCoord = mesh.Coord{X: -1, Y: -1}
	}
	if t.Contains(dst) {
		e.DstCoord = t.CoordOf(dst)
	} else {
		e.DstCoord = mesh.Coord{X: -1, Y: -1}
	}
	return e
}
