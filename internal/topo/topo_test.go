package topo

import (
	"strings"
	"testing"

	"powerpunch/internal/mesh"
	"powerpunch/internal/routing"
)

func mustBuild(t *testing.T, name string, w, h int) RoutingFunction {
	t.Helper()
	rf, err := Build(name, w, h)
	if err != nil {
		t.Fatalf("Build(%q, %d, %d): %v", name, w, h, err)
	}
	return rf
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"", KindMesh, true},
		{"mesh", KindMesh, true},
		{"torus", KindTorus, true},
		{"ring", KindRing, true},
		{"hypercube", KindMesh, false},
	} {
		k, err := ParseKind(tc.in)
		if (err == nil) != tc.ok || (tc.ok && k != tc.want) {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, ok=%v", tc.in, k, err, tc.want, tc.ok)
		}
	}
}

// TestMeshAdapterMatchesMesh pins that the Topology adapter is a pure
// view over mesh.Mesh: every query agrees with the concrete type, so
// the refactor cannot have changed mesh behaviour.
func TestMeshAdapterMatchesMesh(t *testing.T) {
	m := mesh.New(4, 3)
	tp := FromMesh(m)
	if tp.Kind() != KindMesh || tp.NumNodes() != 12 || tp.Diameter() != 5 {
		t.Fatalf("adapter basics wrong: kind=%v nodes=%d diam=%d", tp.Kind(), tp.NumNodes(), tp.Diameter())
	}
	if Mesh(tp) != m {
		t.Fatal("Mesh() did not unwrap the adapter")
	}
	for id := mesh.NodeID(0); m.Contains(id); id++ {
		if tp.CoordOf(id) != m.CoordOf(id) {
			t.Fatalf("CoordOf(%d) mismatch", id)
		}
		for _, d := range mesh.LinkDirections {
			if tp.Neighbor(id, d) != m.Neighbor(id, d) {
				t.Fatalf("Neighbor(%d, %v) mismatch", id, d)
			}
		}
		for n := mesh.NodeID(0); m.Contains(n); n++ {
			if tp.HopDistance(id, n) != m.HopDistance(id, n) {
				t.Fatalf("HopDistance(%d, %d) mismatch", id, n)
			}
		}
	}
	if len(tp.Links()) != len(m.Links()) {
		t.Fatal("Links() mismatch")
	}
}

// TestXYRoutingMatchesRoutingPackage pins that the mesh RoutingFunction
// is exactly package routing's XY: same direction at every (cur, dst)
// pair, same legal turns. Golden/bench bit-identity on the mesh depends
// on this.
func TestXYRoutingMatchesRoutingPackage(t *testing.T) {
	m := mesh.New(5, 4)
	rf := mustBuild(t, "mesh", 5, 4)
	for cur := mesh.NodeID(0); m.Contains(cur); cur++ {
		for dst := mesh.NodeID(0); m.Contains(dst); dst++ {
			got, err := rf.Route(cur, dst)
			if err != nil {
				t.Fatalf("Route(%d, %d): %v", cur, dst, err)
			}
			if want := routing.XY(m, cur, dst); got != want {
				t.Fatalf("Route(%d, %d) = %v, routing.XY says %v", cur, dst, got, want)
			}
			nh, err := rf.NextHop(cur, dst)
			if err != nil {
				t.Fatalf("NextHop(%d, %d): %v", cur, dst, err)
			}
			if want := routing.NextHop(m, cur, dst); nh != want {
				t.Fatalf("NextHop(%d, %d) = %d, routing says %d", cur, dst, nh, want)
			}
		}
	}
	for _, in := range []mesh.Direction{mesh.North, mesh.South, mesh.East, mesh.West, mesh.Local} {
		for _, out := range []mesh.Direction{mesh.North, mesh.South, mesh.East, mesh.West, mesh.Local} {
			if rf.LegalTurn(in, out) != routing.LegalTurn(in, out) {
				t.Fatalf("LegalTurn(%v, %v) diverges from routing.LegalTurn", in, out)
			}
		}
	}
	if rf.VCClasses() != 1 {
		t.Fatalf("mesh needs no dateline classes, got %d", rf.VCClasses())
	}
}

// TestRouteErrorsCarryCoordinates is the satellite requirement: a
// corrupted destination produces a typed error naming the offending
// coordinates instead of a panic.
func TestRouteErrorsCarryCoordinates(t *testing.T) {
	for _, name := range []string{"mesh", "torus"} {
		rf := mustBuild(t, name, 4, 4)
		_, err := rf.Route(5, 99)
		re, ok := err.(*RouteError)
		if !ok {
			t.Fatalf("%s: Route with corrupt dst returned %v, want *RouteError", name, err)
		}
		if re.Cur != 5 || re.Dst != 99 {
			t.Fatalf("%s: error nodes = %d, %d", name, re.Cur, re.Dst)
		}
		msg := re.Error()
		if !strings.Contains(msg, "(1,1)") || !strings.Contains(msg, "99") {
			t.Fatalf("%s: error message lacks coordinates: %q", name, msg)
		}
		if _, err := rf.NextHop(5, -3); err == nil {
			t.Fatalf("%s: NextHop with corrupt dst did not error", name)
		}
	}
}

func TestTorusBasics(t *testing.T) {
	rf := mustBuild(t, "torus", 4, 4)
	g := rf.Topology()
	if g.Kind() != KindTorus || g.Diameter() != 4 {
		t.Fatalf("kind=%v diameter=%d", g.Kind(), g.Diameter())
	}
	// Wrap links exist in all four directions.
	if g.Neighbor(0, mesh.West) != 3 || g.Neighbor(0, mesh.North) != 12 {
		t.Fatalf("wrap neighbors wrong: W=%d N=%d", g.Neighbor(0, mesh.West), g.Neighbor(0, mesh.North))
	}
	// Wrap-aware distance: corner to corner is 2, not 6.
	if d := g.HopDistance(0, 15); d != 2 {
		t.Fatalf("HopDistance(0, 15) = %d, want 2", d)
	}
	// Every node has all four links: 4*16 unidirectional links.
	if n := len(g.Links()); n != 64 {
		t.Fatalf("torus links = %d, want 64", n)
	}
}

func TestRingBasics(t *testing.T) {
	rf := mustBuild(t, "ring", 8, 1)
	g := rf.Topology()
	if g.Kind() != KindRing || g.Diameter() != 4 || g.NumNodes() != 8 {
		t.Fatalf("kind=%v diameter=%d nodes=%d", g.Kind(), g.Diameter(), g.NumNodes())
	}
	if g.Neighbor(0, mesh.West) != 7 || g.Neighbor(7, mesh.East) != 0 {
		t.Fatal("ring wrap links wrong")
	}
	if g.Neighbor(3, mesh.North) != mesh.Invalid || g.Neighbor(3, mesh.South) != mesh.Invalid {
		t.Fatal("ring should have no Y links")
	}
	if d := g.HopDistance(1, 7); d != 2 {
		t.Fatalf("HopDistance(1, 7) = %d, want 2", d)
	}
	if _, err := Build("ring", 8, 2); err == nil {
		t.Fatal("ring with height 2 should be rejected")
	}
}

// TestDORRoutesAreMinimalAndConsistent checks, for every (src, dst)
// pair on torus and ring fabrics, that the routed path exists, has
// exactly HopDistance hops (minimal), and that each intermediate
// router's independent decision extends the same path (consistency —
// what makes Path/Ahead walks well defined).
func TestDORRoutesAreMinimalAndConsistent(t *testing.T) {
	for _, tc := range []struct{ name string; w, h int }{
		{"torus", 4, 4}, {"torus", 5, 3}, {"torus", 2, 2}, {"ring", 8, 1}, {"ring", 5, 1}, {"ring", 2, 1},
	} {
		rf := mustBuild(t, tc.name, tc.w, tc.h)
		g := rf.Topology()
		for src := mesh.NodeID(0); g.Contains(src); src++ {
			for dst := mesh.NodeID(0); g.Contains(dst); dst++ {
				path := Path(rf, src, dst)
				if got, want := len(path)-1, g.HopDistance(src, dst); got != want {
					t.Fatalf("%s %dx%d: path %d->%d has %d hops, distance is %d",
						tc.name, tc.w, tc.h, src, dst, got, want)
				}
				for i := 0; i+1 < len(path); i++ {
					d := MustRoute(rf, path[i], dst)
					if g.Neighbor(path[i], d) != path[i+1] {
						t.Fatalf("%s: inconsistent decision at hop %d of %d->%d", tc.name, i, src, dst)
					}
					if i > 0 {
						prev := MustRoute(rf, path[i-1], dst)
						if !rf.LegalTurn(prev, d) {
							t.Fatalf("%s: illegal turn %v->%v on path %d->%d", tc.name, prev, d, src, dst)
						}
					}
				}
			}
		}
	}
}

// TestDatelineClasses verifies the deadlock-freedom argument's two
// load-bearing facts on every wrapped fabric: (1) the class is
// monotone along a path — once a packet is in class 1 for a dimension
// it never returns to class 0 before turning; (2) class-1 packets
// never occupy a wrap link and class-0 packets never occupy the link
// leaving the dateline column/row, so each class's dependency chain
// around the ring is broken.
func TestDatelineClasses(t *testing.T) {
	for _, tc := range []struct{ name string; w, h int }{
		{"torus", 4, 4}, {"torus", 5, 3}, {"ring", 8, 1}, {"ring", 5, 1},
	} {
		rf := mustBuild(t, tc.name, tc.w, tc.h)
		g := rf.Topology()
		if rf.VCClasses() != 2 {
			t.Fatalf("%s: VCClasses = %d, want 2", tc.name, rf.VCClasses())
		}
		for src := mesh.NodeID(0); g.Contains(src); src++ {
			for dst := mesh.NodeID(0); g.Contains(dst); dst++ {
				path := Path(rf, src, dst)
				prevClass, prevDir := -1, mesh.Local
				for i := 0; i+1 < len(path); i++ {
					cur, next := path[i], path[i+1]
					d := MustRoute(rf, cur, dst)
					cls := rf.ClassFor(cur, dst, d)
					// (1) monotone within a dimension.
					if d == prevDir && cls < prevClass {
						t.Fatalf("%s: class went backwards (%d->%d) at hop %d of %d->%d",
							tc.name, prevClass, cls, i, src, dst)
					}
					prevClass, prevDir = cls, d
					// (2) wrap links carry only class 0.
					cc, nc := g.CoordOf(cur), g.CoordOf(next)
					wrap := (d == mesh.East && nc.X < cc.X) || (d == mesh.West && nc.X > cc.X) ||
						(d == mesh.South && nc.Y < cc.Y) || (d == mesh.North && nc.Y > cc.Y)
					// On 2-wide dimensions every hop is a tie; treat the
					// canonical wrap (East from last column, etc.) as wrap.
					if wrap && cls != 0 {
						t.Fatalf("%s: class-%d packet on wrap link %d->%d (dir %v, path %d->%d)",
							tc.name, cls, cur, next, d, src, dst)
					}
				}
			}
		}
		// Class-0 packets never leave the first column/row in the same
		// direction (the broken-chain fact), checked directly from the
		// class rule.
		for dst := mesh.NodeID(0); g.Contains(dst); dst++ {
			for _, row := range []int{0} {
				n := g.NodeAt(mesh.Coord{X: 0, Y: row})
				if g.CoordOf(dst).X != 0 && rf.ClassFor(n, dst, mesh.East) == 0 {
					t.Fatalf("%s: class 0 on eastward link leaving column 0 (dst %d)", tc.name, dst)
				}
			}
		}
	}
}

// TestAheadOnTorusUsesWrap pins the punch targeting computation on a
// wrapped fabric: the targeted router follows the minimal (wrapping)
// path, not the mesh path.
func TestAheadOnTorusUsesWrap(t *testing.T) {
	rf := mustBuild(t, "torus", 8, 8)
	// Node 0 to node 6 (row 0): minimal path goes West across the wrap:
	// 0 -> 7 -> 6.
	if got := Ahead(rf, 0, 6, 1); got != 7 {
		t.Fatalf("Ahead(0, 6, 1) = %d, want 7 (wrap west)", got)
	}
	if got := Ahead(rf, 0, 6, 3); got != 6 {
		t.Fatalf("Ahead(0, 6, 3) = %d, want 6", got)
	}
	if !PathUsesLink(rf, 0, 6, 0, 7) {
		t.Fatal("path 0->6 should use wrap link 0->7")
	}
}
