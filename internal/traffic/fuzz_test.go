package traffic

import (
	"strings"
	"testing"

	"powerpunch/internal/check"
	"powerpunch/internal/config"
	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/network"
	"powerpunch/internal/topo"
)

// FuzzReadTrace hardens the trace parser against malformed input: it
// must never panic, and anything it accepts must either validate or be
// rejected by Validate with a clean error.
func FuzzReadTrace(f *testing.F) {
	f.Add(`{"t":0,"src":0,"dst":1,"vn":0,"kind":0,"size":1,"hint":true,"delay":3}` + "\n")
	f.Add(`{"t":5,"src":3,"dst":2,"vn":2,"kind":1,"size":5,"hint":false,"delay":0}` + "\n")
	f.Add("")
	f.Add("{")
	f.Add(`{"t":-1,"src":999}`)
	m := topo.FromMesh(mesh.New(4, 4))
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		_ = tr.Validate(m) // must not panic
	})
}

// FuzzNetworkEndToEnd turns arbitrary bytes into a bounded workload on
// a small mesh and runs it end to end with the full invariant engine on
// every cycle: whatever submission sequence the fuzzer invents, the
// simulator must satisfy every invariant, quiesce, and deliver every
// packet. The first byte picks the scheme, so the corpus explores all
// gating policies; each subsequent 5-byte record is one submission
// (cycle gap, endpoints, class, slack hint).
func FuzzNetworkEndToEnd(f *testing.F) {
	f.Add([]byte{3, 0, 0, 15, 1, 0})
	f.Add([]byte{1, 2, 5, 10, 0, 7, 0, 10, 5, 3, 1})
	f.Add([]byte{0, 9, 1, 2, 2, 2, 9, 2, 1, 0, 5, 9, 3, 0, 1, 1})
	f.Add([]byte{4, 50, 0, 8, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		schemes := []config.Scheme{
			config.NoPG, config.ConvOptPG, config.PowerPunchSignal, config.PowerPunchPG, config.PlainPG,
		}
		cfg := config.Default()
		cfg.Width, cfg.Height = 4, 4
		cfg.Scheme = schemes[int(data[0])%len(schemes)]
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 1 << 40
		cfg.Checks = true
		cfg.CheckInterval = 1
		cfg.CheckStallLimit = 2048
		n, err := network.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.OnViolation = func(a *check.Artifact) {
			t.Fatalf("invariant violation under fuzzed traffic: %v", &a.Violation)
		}

		type sub struct {
			at       int64
			src, dst mesh.NodeID
			vn       flit.VirtualNetwork
			kind     flit.Kind
			hint     bool
			delay    int
		}
		var subs []sub
		var at int64
		for rec := data[1:]; len(rec) >= 5 && len(subs) < 128; rec = rec[5:] {
			at += int64(rec[0] % 32)
			src := mesh.NodeID(rec[1] % 16)
			dst := mesh.NodeID(rec[2] % 16)
			if src == dst {
				continue
			}
			kind, vn := flit.KindControl, flit.VirtualNetwork(rec[3]%uint8(flit.NumVirtualNetworks))
			if rec[3]&0x80 != 0 {
				kind = flit.KindData
			}
			subs = append(subs, sub{
				at: at, src: src, dst: dst, vn: vn, kind: kind,
				hint: rec[4]&1 != 0, delay: int(rec[4] % 9),
			})
		}

		var pkts []*flit.Packet
		i := 0
		for n.Now() <= at {
			for i < len(subs) && subs[i].at <= n.Now() {
				s := subs[i]
				i++
				p := n.NewPacket(s.src, s.dst, s.vn, s.kind)
				pkts = append(pkts, p)
				n.NI(s.src).SubmitDelayed(p, s.hint, s.delay, n.Now())
			}
			n.Step()
		}
		for cyc := 0; cyc < 20_000 && !n.Quiesced(); cyc++ {
			n.Step()
		}
		if !n.Quiesced() {
			t.Fatalf("network did not quiesce after %d fuzzed submissions (%v)", len(subs), cfg.Scheme)
		}
		for _, p := range pkts {
			if p.EjectedAt == 0 {
				t.Fatalf("fuzzed packet %v lost (%v)", p, cfg.Scheme)
			}
		}
	})
}
