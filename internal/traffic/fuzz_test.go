package traffic

import (
	"strings"
	"testing"

	"powerpunch/internal/mesh"
)

// FuzzReadTrace hardens the trace parser against malformed input: it
// must never panic, and anything it accepts must either validate or be
// rejected by Validate with a clean error.
func FuzzReadTrace(f *testing.F) {
	f.Add(`{"t":0,"src":0,"dst":1,"vn":0,"kind":0,"size":1,"hint":true,"delay":3}` + "\n")
	f.Add(`{"t":5,"src":3,"dst":2,"vn":2,"kind":1,"size":5,"hint":false,"delay":0}` + "\n")
	f.Add("")
	f.Add("{")
	f.Add(`{"t":-1,"src":999}`)
	m := mesh.New(4, 4)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		_ = tr.Validate(m) // must not panic
	})
}
