package traffic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/network"
	"powerpunch/internal/topo"
)

// Event is one recorded message submission. Traces let a workload —
// synthetic or full-system — be captured once and replayed bit-exactly
// under different schemes or configurations, the NoC equivalent of a
// gem5 network trace.
type Event struct {
	Now   int64               `json:"t"`
	Src   mesh.NodeID         `json:"src"`
	Dst   mesh.NodeID         `json:"dst"`
	VN    flit.VirtualNetwork `json:"vn"`
	Kind  flit.Kind           `json:"kind"`
	Size  int                 `json:"size"`
	Hint  bool                `json:"hint"`
	Delay int                 `json:"delay"`
}

// Trace is an ordered list of submission events.
type Trace struct {
	Events []Event
}

// Recorder captures every NI submission on a network into a Trace.
type Recorder struct {
	trace Trace
}

// NewRecorder attaches a recorder to every NI of net. Attach before
// running the workload. A previously-installed OnSubmit consumer (the
// invariant engine's event log) keeps firing.
func NewRecorder(net *network.Network) *Recorder {
	rec := &Recorder{}
	for id := mesh.NodeID(0); net.M.Contains(id); id++ {
		src := id
		prev := net.NI(id).OnSubmit
		net.NI(id).OnSubmit = func(p *flit.Packet, hint bool, delay int, now int64) {
			rec.trace.Events = append(rec.trace.Events, Event{
				Now: now, Src: src, Dst: p.Dst, VN: p.VN, Kind: p.Kind,
				Size: p.Size, Hint: hint, Delay: delay,
			})
			if prev != nil {
				prev(p, hint, delay, now)
			}
		}
	}
	return rec
}

// Trace returns the recorded trace, sorted by cycle (stable within a
// cycle, preserving submission order).
func (r *Recorder) Trace() *Trace {
	sort.SliceStable(r.trace.Events, func(i, j int) bool {
		return r.trace.Events[i].Now < r.trace.Events[j].Now
	})
	return &r.trace
}

// WriteTo writes the trace as JSON lines.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	enc := json.NewEncoder(bw)
	for _, e := range t.Events {
		if err := enc.Encode(e); err != nil {
			return n, fmt.Errorf("traffic: encoding trace: %w", err)
		}
	}
	return n, bw.Flush()
}

// ReadTrace parses a JSON-lines trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("traffic: decoding trace: %w", err)
		}
		t.Events = append(t.Events, e)
	}
	return t, nil
}

// Validate checks the trace against a topology: events in cycle order,
// endpoints on the fabric, sane sizes.
func (t *Trace) Validate(m topo.Topology) error {
	var prev int64
	for i, e := range t.Events {
		if e.Now < prev {
			return fmt.Errorf("traffic: trace event %d out of order (t=%d after %d)", i, e.Now, prev)
		}
		prev = e.Now
		if !m.Contains(e.Src) || !m.Contains(e.Dst) {
			return fmt.Errorf("traffic: trace event %d has endpoints %d->%d outside %v", i, e.Src, e.Dst, m)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("traffic: trace event %d is a self-send", i)
		}
		if e.Size < 1 || e.Size > 64 {
			return fmt.Errorf("traffic: trace event %d has size %d", i, e.Size)
		}
		if e.VN < 0 || e.VN >= flit.NumVirtualNetworks {
			return fmt.Errorf("traffic: trace event %d has VN %d", i, e.VN)
		}
	}
	return nil
}

// Replay is a network.Driver that re-submits a recorded trace.
type Replay struct {
	trace *Trace
	idx   int
}

// NewReplay returns a driver replaying t from cycle 0.
func NewReplay(t *Trace) *Replay { return &Replay{trace: t} }

// Tick implements network.Driver.
func (r *Replay) Tick(n *network.Network, now int64) {
	for r.idx < len(r.trace.Events) && r.trace.Events[r.idx].Now <= now {
		e := r.trace.Events[r.idx]
		r.idx++
		p := n.NewPacket(e.Src, e.Dst, e.VN, e.Kind)
		p.Size = e.Size
		n.NI(e.Src).SubmitDelayed(p, e.Hint, e.Delay, now)
	}
}

// Done implements network.Driver: the replay finishes when every event
// has been submitted.
func (r *Replay) Done() bool { return r.idx >= len(r.trace.Events) }

// Remaining returns the number of unsubmitted events.
func (r *Replay) Remaining() int { return len(r.trace.Events) - r.idx }
