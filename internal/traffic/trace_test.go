package traffic

import (
	"bytes"
	"strings"
	"testing"

	"powerpunch/internal/config"
	"powerpunch/internal/mesh"
	"powerpunch/internal/network"
	"powerpunch/internal/topo"
)

func smallCfg(s config.Scheme) config.Config {
	cfg := config.Default()
	cfg.Scheme = s
	cfg.Width, cfg.Height = 4, 4
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 2000
	return cfg
}

func recordRun(t *testing.T, cfg config.Config) (*Trace, float64) {
	t.Helper()
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(net)
	res := net.Run(NewSynthetic(UniformRandom{}, 0.03, 17))
	if !res.Drained {
		t.Fatal("record run did not drain")
	}
	return rec.Trace(), res.Summary.AvgLatency
}

func TestRecordCapturesAllSubmissions(t *testing.T) {
	cfg := smallCfg(config.NoPG)
	tr, _ := recordRun(t, cfg)
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	if err := tr.Validate(topo.FromMesh(mesh.New(4, 4))); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
}

func TestReplayReproducesRunExactly(t *testing.T) {
	cfg := smallCfg(config.PowerPunchPG)
	tr, wantLat := recordRun(t, cfg)

	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run(NewReplay(tr))
	if !res.Drained {
		t.Fatal("replay did not drain")
	}
	if res.Summary.AvgLatency != wantLat {
		t.Errorf("replay latency %.4f != recorded run %.4f", res.Summary.AvgLatency, wantLat)
	}
}

func TestReplayAcrossSchemes(t *testing.T) {
	// The same trace replayed under ConvOpt must be slower than under
	// No-PG — the controlled-workload comparison traces exist for.
	tr, _ := recordRun(t, smallCfg(config.NoPG))
	lat := map[config.Scheme]float64{}
	for _, s := range []config.Scheme{config.NoPG, config.ConvOptPG} {
		net, err := network.New(smallCfg(s))
		if err != nil {
			t.Fatal(err)
		}
		res := net.Run(NewReplay(tr))
		if !res.Drained {
			t.Fatalf("%v replay did not drain", s)
		}
		lat[s] = res.Summary.AvgLatency
	}
	if lat[config.ConvOptPG] <= lat[config.NoPG] {
		t.Errorf("trace under ConvOpt (%.2f) should be slower than No-PG (%.2f)",
			lat[config.ConvOptPG], lat[config.NoPG])
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr, _ := recordRun(t, smallCfg(config.NoPG))
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json\n")); err == nil {
		t.Error("expected parse error")
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	m := topo.FromMesh(mesh.New(4, 4))
	cases := []Trace{
		{Events: []Event{{Now: 5}, {Now: 3, Src: 0, Dst: 1, Size: 1}}}, // out of order
		{Events: []Event{{Now: 0, Src: 0, Dst: 99, Size: 1}}},          // off mesh
		{Events: []Event{{Now: 0, Src: 2, Dst: 2, Size: 1}}},           // self send
		{Events: []Event{{Now: 0, Src: 0, Dst: 1, Size: 0}}},           // bad size
		{Events: []Event{{Now: 0, Src: 0, Dst: 1, Size: 1, VN: 7}}},    // bad VN
	}
	for i, tr := range cases {
		if err := tr.Validate(m); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestReplayDone(t *testing.T) {
	tr := &Trace{Events: []Event{{Now: 3, Src: 0, Dst: 1, Size: 1, Delay: 1}}}
	r := NewReplay(tr)
	if r.Done() || r.Remaining() != 1 {
		t.Error("fresh replay state")
	}
	cfg := smallCfg(config.NoPG)
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Tick(net, 0)
	if r.Done() {
		t.Error("event at t=3 submitted at t=0")
	}
	r.Tick(net, 3)
	if !r.Done() {
		t.Error("replay not done after last event")
	}
}
