// Package traffic generates synthetic workloads for the load-sweep and
// sensitivity experiments (paper Figures 12 and 13): uniform random,
// transpose, and bit-complement patterns (plus tornado, neighbor, and
// hotspot extensions), injected as a Bernoulli process at a configured
// rate in flits per node per cycle.
package traffic

import (
	"fmt"
	"math/rand"

	"powerpunch/internal/flit"
	"powerpunch/internal/mesh"
	"powerpunch/internal/network"
	"powerpunch/internal/topo"
)

// Pattern maps a source node to a destination node.
type Pattern interface {
	// Dst returns the destination for a packet injected at src. It may
	// consult rng (uniform/hotspot) or be deterministic (permutations).
	Dst(t topo.Topology, src mesh.NodeID, rng *rand.Rand) mesh.NodeID
	// Name returns the pattern's conventional name.
	Name() string
}

// UniformRandom sends each packet to a destination chosen uniformly from
// all other nodes.
type UniformRandom struct{}

// Name implements Pattern.
func (UniformRandom) Name() string { return "uniform" }

// Dst implements Pattern.
func (UniformRandom) Dst(t topo.Topology, src mesh.NodeID, rng *rand.Rand) mesh.NodeID {
	n := t.NumNodes()
	d := mesh.NodeID(rng.Intn(n - 1))
	if d >= src {
		d++
	}
	return d
}

// Transpose sends node (x, y) to node (y, x).
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dst implements Pattern.
func (Transpose) Dst(t topo.Topology, src mesh.NodeID, _ *rand.Rand) mesh.NodeID {
	c := t.CoordOf(src)
	// For non-square meshes, mirror within bounds.
	d := mesh.Coord{X: c.Y % t.Width(), Y: c.X % t.Height()}
	return t.NodeAt(d)
}

// BitComplement sends node (x, y) to (W-1-x, H-1-y).
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "bit-complement" }

// Dst implements Pattern.
func (BitComplement) Dst(t topo.Topology, src mesh.NodeID, _ *rand.Rand) mesh.NodeID {
	c := t.CoordOf(src)
	return t.NodeAt(mesh.Coord{X: t.Width() - 1 - c.X, Y: t.Height() - 1 - c.Y})
}

// Tornado sends node (x, y) to ((x + W/2 - 1) mod W, y), stressing one
// dimension.
type Tornado struct{}

// Name implements Pattern.
func (Tornado) Name() string { return "tornado" }

// Dst implements Pattern.
func (Tornado) Dst(t topo.Topology, src mesh.NodeID, _ *rand.Rand) mesh.NodeID {
	c := t.CoordOf(src)
	shift := t.Width()/2 - 1
	if shift < 1 {
		shift = 1
	}
	return t.NodeAt(mesh.Coord{X: (c.X + shift) % t.Width(), Y: c.Y})
}

// Neighbor sends each packet one hop east (wrapping), a minimal-distance
// pattern that exercises the injection-slack path heavily.
type Neighbor struct{}

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// Dst implements Pattern.
func (Neighbor) Dst(t topo.Topology, src mesh.NodeID, _ *rand.Rand) mesh.NodeID {
	c := t.CoordOf(src)
	return t.NodeAt(mesh.Coord{X: (c.X + 1) % t.Width(), Y: c.Y})
}

// Hotspot sends a fraction of traffic to a fixed hotspot node and the
// rest uniformly.
type Hotspot struct {
	Node mesh.NodeID
	Frac float64 // probability a packet targets the hotspot
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot(%d,%.2f)", h.Node, h.Frac) }

// Dst implements Pattern.
func (h Hotspot) Dst(t topo.Topology, src mesh.NodeID, rng *rand.Rand) mesh.NodeID {
	if src != h.Node && rng.Float64() < h.Frac {
		return h.Node
	}
	return (UniformRandom{}).Dst(t, src, rng)
}

// ByName returns the pattern with the given conventional name.
func ByName(name string) (Pattern, error) {
	switch name {
	case "uniform":
		return UniformRandom{}, nil
	case "transpose":
		return Transpose{}, nil
	case "bit-complement", "bitcomplement":
		return BitComplement{}, nil
	case "tornado":
		return Tornado{}, nil
	case "neighbor":
		return Neighbor{}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// Synthetic is a Bernoulli open-loop injector: each node independently
// generates packets so that the offered load equals Rate flits per node
// per cycle, with DataFrac of the packets being multi-flit data packets
// (the remainder single-flit control packets), mirroring the mixed
// coherence traffic the paper's full-system runs carry.
type Synthetic struct {
	Pattern  Pattern
	Rate     float64 // offered load, flits/node/cycle
	DataFrac float64 // fraction of packets that are data packets
	// HintValidFrac is the probability a message's generating access
	// carries the slack-2 valid bit (defaults from config when NaN).
	HintValidFrac float64

	rng *rand.Rand
}

// NewSynthetic returns a synthetic driver with the given pattern and
// offered load, seeded deterministically.
func NewSynthetic(p Pattern, rate float64, seed int64) *Synthetic {
	return &Synthetic{
		Pattern:       p,
		Rate:          rate,
		DataFrac:      0.5,
		HintValidFrac: -1,
		rng:           rand.New(rand.NewSource(seed)),
	}
}

// pktProb returns the per-node per-cycle packet-generation probability
// that yields the offered flit load.
func (s *Synthetic) pktProb(n *network.Network) float64 {
	avgSize := s.DataFrac*float64(n.Cfg.DataPacketSize) + (1-s.DataFrac)*float64(n.Cfg.CtrlPacketSize)
	if avgSize <= 0 {
		return 0
	}
	p := s.Rate / avgSize
	if p > 1 {
		p = 1
	}
	return p
}

// Tick implements network.Driver: every node flips its injection coin.
func (s *Synthetic) Tick(n *network.Network, now int64) {
	p := s.pktProb(n)
	if p <= 0 {
		return
	}
	hintFrac := s.HintValidFrac
	if hintFrac < 0 {
		hintFrac = n.Cfg.ResourceSlackValidFrac
	}
	for id := mesh.NodeID(0); n.M.Contains(id); id++ {
		if s.rng.Float64() >= p {
			continue
		}
		dst := s.Pattern.Dst(n.M, id, s.rng)
		if dst == id || dst == mesh.Invalid {
			continue
		}
		kind := flit.KindControl
		vn := flit.VNRequest
		if s.rng.Float64() < s.DataFrac {
			kind = flit.KindData
			vn = flit.VNResponse
		}
		pkt := n.NewPacket(id, dst, vn, kind)
		hint := s.rng.Float64() < hintFrac
		n.NI(id).Submit(pkt, hint, now)
	}
}

// Done implements network.Driver; synthetic traffic never finishes.
func (s *Synthetic) Done() bool { return false }
