package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powerpunch/internal/config"
	"powerpunch/internal/mesh"
	"powerpunch/internal/network"
	"powerpunch/internal/topo"
)

func TestPermutationPatternsAreDeterministic(t *testing.T) {
	m := topo.FromMesh(mesh.New(8, 8))
	for _, p := range []Pattern{Transpose{}, BitComplement{}, Tornado{}, Neighbor{}} {
		for src := mesh.NodeID(0); m.Contains(src); src++ {
			d1 := p.Dst(m, src, nil)
			d2 := p.Dst(m, src, nil)
			if d1 != d2 {
				t.Errorf("%s: nondeterministic for src %d", p.Name(), src)
			}
			if !m.Contains(d1) {
				t.Errorf("%s: invalid destination %d for src %d", p.Name(), d1, src)
			}
		}
	}
}

func TestTransposeMirrorsCoordinates(t *testing.T) {
	m := topo.FromMesh(mesh.New(8, 8))
	// Node (x=5,y=2) = 21 -> (x=2,y=5) = 42.
	if got := (Transpose{}).Dst(m, 21, nil); got != 42 {
		t.Errorf("transpose(21) = %d, want 42", got)
	}
	// Diagonal nodes map to themselves.
	if got := (Transpose{}).Dst(m, 27, nil); got != 27 {
		t.Errorf("transpose(27) = %d, want 27", got)
	}
}

func TestBitComplementIsInvolution(t *testing.T) {
	m := topo.FromMesh(mesh.New(8, 8))
	f := func(raw uint8) bool {
		src := mesh.NodeID(int(raw) % m.NumNodes())
		p := BitComplement{}
		return p.Dst(m, p.Dst(m, src, nil), nil) == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := (BitComplement{}).Dst(m, 0, nil); got != 63 {
		t.Errorf("bit-complement(0) = %d, want 63", got)
	}
}

func TestUniformNeverSelfSends(t *testing.T) {
	m := topo.FromMesh(mesh.New(4, 4))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		src := mesh.NodeID(i % 16)
		if d := (UniformRandom{}).Dst(m, src, rng); d == src || !m.Contains(d) {
			t.Fatalf("uniform produced dst %d for src %d", d, src)
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	m := topo.FromMesh(mesh.New(4, 4))
	rng := rand.New(rand.NewSource(2))
	seen := map[mesh.NodeID]bool{}
	for i := 0; i < 5000; i++ {
		seen[(UniformRandom{}).Dst(m, 0, rng)] = true
	}
	if len(seen) != 15 {
		t.Errorf("uniform covered %d destinations, want 15", len(seen))
	}
}

func TestHotspotBias(t *testing.T) {
	m := topo.FromMesh(mesh.New(4, 4))
	rng := rand.New(rand.NewSource(3))
	h := Hotspot{Node: 5, Frac: 0.5}
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if h.Dst(m, 0, rng) == 5 {
			hits++
		}
	}
	frac := float64(hits) / n
	// 0.5 + uniform leakage (1/15 of the other half) ≈ 0.533.
	if math.Abs(frac-0.533) > 0.05 {
		t.Errorf("hotspot fraction = %.3f, want ~0.53", frac)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "bit-complement", "tornado", "neighbor"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown pattern")
	}
}

func TestSyntheticOfferedLoadMatchesRate(t *testing.T) {
	// Delivered throughput at a non-saturating load must track the
	// offered load within ~15%.
	cfg := config.Default()
	cfg.Scheme = config.NoPG
	cfg.WarmupCycles = 2000
	cfg.MeasureCycles = 10000
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.05
	drv := NewSynthetic(UniformRandom{}, rate, 7)
	res := net.Run(drv)
	if !res.Drained {
		t.Fatal("run did not drain")
	}
	thr := net.Col.Throughput(net.M.NumNodes(), cfg.MeasureCycles)
	if math.Abs(thr-rate)/rate > 0.15 {
		t.Errorf("throughput %.4f vs offered %.4f", thr, rate)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := config.Default()
		cfg.Scheme = config.PowerPunchPG
		cfg.WarmupCycles = 500
		cfg.MeasureCycles = 3000
		net, err := network.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := net.Run(NewSynthetic(UniformRandom{}, 0.03, 99))
		return res.Summary.AvgLatency
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different results: %v vs %v", a, b)
	}
}

func TestSyntheticZeroRate(t *testing.T) {
	cfg := config.Default()
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 100
	cfg.DrainCycles = 100
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run(NewSynthetic(UniformRandom{}, 0, 1))
	if res.Summary.Ejected != 0 {
		t.Error("zero rate injected packets")
	}
}

func TestPatternNames(t *testing.T) {
	if (UniformRandom{}).Name() != "uniform" || (Transpose{}).Name() != "transpose" ||
		(BitComplement{}).Name() != "bit-complement" || (Tornado{}).Name() != "tornado" ||
		(Neighbor{}).Name() != "neighbor" {
		t.Error("pattern names")
	}
	if (Hotspot{Node: 3, Frac: 0.25}).Name() == "" {
		t.Error("hotspot name")
	}
}
