package powerpunch_test

import (
	"fmt"
	"strings"
	"testing"

	"powerpunch"
	"powerpunch/internal/traffic"
)

// runSynthetic builds a network for cfg, drives it with seeded
// synthetic traffic, and returns the run result plus the per-router
// report fingerprint.
func runSynthetic(t *testing.T, cfg powerpunch.Config, pat powerpunch.TrafficPattern, load float64) (powerpunch.RunResult, string) {
	t.Helper()
	net, err := powerpunch.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	res := net.Run(powerpunch.NewSyntheticTraffic(pat, load, 11))
	return res, net.Report().String()
}

// TestParallelMatchesSerial is the golden differential suite for the
// sharded parallel tick engine: for every scheme, on every fabric, under
// both schedulers (active-set and FullTick), the parallel engine at 2,
// 4, and 8 workers must produce a RunResult (Detail included — the full
// floating-point energy breakdown and exact stage decomposition) and a
// per-router report bit-identical to the serial engine's. The parallel
// runs also enable packet recycling, proving the pooled hot path is
// invisible to results.
func TestParallelMatchesSerial(t *testing.T) {
	fabrics := []struct {
		topo          string
		width, height int
	}{
		{"mesh", 4, 4},
		{"torus", 4, 4},
		{"ring", 8, 1},
	}
	patterns := []struct {
		name string
		p    powerpunch.TrafficPattern
		load float64
	}{
		{"uniform-0.30", powerpunch.Uniform(), 0.30},
		{"uniform-0.02", powerpunch.Uniform(), 0.02},
		// Hotspot concentrates ejections on one shard, exercising the
		// cross-worker flit-return path of the per-worker pools.
		{"hotspot-0.30", traffic.Hotspot{Node: 5, Frac: 0.5}, 0.30},
	}

	for _, fab := range fabrics {
		for _, s := range powerpunch.Schemes {
			for _, fullTick := range []bool{false, true} {
				for _, pat := range patterns {
					if pat.name == "hotspot-0.30" && (fab.topo != "mesh" || fullTick) {
						continue // one hotspot config is enough for pool routing
					}
					fab, s, fullTick, pat := fab, s, fullTick, pat
					sched := "active"
					if fullTick {
						sched = "full"
					}
					name := fmt.Sprintf("%s/%s/%s/%s", fab.topo, s, sched, pat.name)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						cfg := powerpunch.DefaultConfig()
						cfg.Scheme = s
						cfg.Topology = fab.topo
						cfg.Width, cfg.Height = fab.width, fab.height
						cfg.WarmupCycles = 300
						cfg.MeasureCycles = 1500
						cfg.FullTick = fullTick

						serial, serialRep := runSynthetic(t, cfg, pat.p, pat.load)
						if serial.Summary.Ejected == 0 {
							t.Fatalf("degenerate run, nothing ejected: %+v", serial)
						}
						for _, workers := range []int{2, 4, 8} {
							pcfg := cfg
							pcfg.Workers = workers
							pcfg.RecyclePackets = true
							par, parRep := runSynthetic(t, pcfg, pat.p, pat.load)
							if par != serial {
								t.Errorf("workers=%d result differs from serial:\nserial   %+v\nparallel %+v",
									workers, serial, par)
							}
							if parRep != serialRep {
								t.Errorf("workers=%d per-router reports differ:\nserial:\n%s\nparallel:\n%s",
									workers, serialRep, parRep)
							}
						}
					})
				}
			}
		}
	}
}

// TestParallelEnergyComponentsBitIdentical is the per-component energy
// model's engine-invariance claim, spelled out: on mesh and torus, for
// every scheme, the parallel engine at 2, 4, and 8 workers must
// reproduce the serial engine's RunDetail.Energy exactly — not within
// tolerance, with == on every component's dynamic/static/overhead
// float — because the breakdown is derived from folded integer event
// counters, which commute across shard interleavings.
func TestParallelEnergyComponentsBitIdentical(t *testing.T) {
	fabrics := []struct {
		topo          string
		width, height int
	}{
		{"mesh", 4, 4},
		{"torus", 4, 4},
	}
	for _, fab := range fabrics {
		for _, s := range powerpunch.Schemes {
			fab, s := fab, s
			t.Run(fmt.Sprintf("%s/%s", fab.topo, s), func(t *testing.T) {
				t.Parallel()
				cfg := powerpunch.DefaultConfig()
				cfg.Scheme = s
				cfg.Topology = fab.topo
				cfg.Width, cfg.Height = fab.width, fab.height
				cfg.WarmupCycles = 200
				cfg.MeasureCycles = 1200

				serial, _ := runSynthetic(t, cfg, powerpunch.Uniform(), 0.25)
				se := serial.Detail.Energy
				if se.Total() == 0 {
					t.Fatal("serial run accumulated no component energy")
				}
				if se.Buffer.Dynamic == 0 || se.Buffer.Static == 0 {
					t.Errorf("buffer component missing energy: %+v", se.Buffer)
				}
				for _, workers := range []int{2, 4, 8} {
					pcfg := cfg
					pcfg.Workers = workers
					par, _ := runSynthetic(t, pcfg, powerpunch.Uniform(), 0.25)
					if pe := par.Detail.Energy; pe != se {
						t.Errorf("workers=%d per-component energy differs from serial:\nserial   %+v\nparallel %+v",
							workers, se, pe)
					}
				}
			})
		}
	}
}

// TestParallelObservedIsGoldenIdentical proves the parallel engine's
// deferred event replay reproduces the serial engine's event stream
// exactly: an attached counters probe (which tallies every event kind
// per node and derives latency splits from event payloads) must render
// the identical report, and attaching the observer must not perturb the
// run result.
func TestParallelObservedIsGoldenIdentical(t *testing.T) {
	for _, s := range []powerpunch.Scheme{powerpunch.ConvOptPG, powerpunch.PowerPunchPG} {
		for _, fullTick := range []bool{false, true} {
			s, fullTick := s, fullTick
			sched := "active"
			if fullTick {
				sched = "full"
			}
			t.Run(fmt.Sprintf("%s/%s", s, sched), func(t *testing.T) {
				t.Parallel()
				run := func(workers int) (powerpunch.RunResult, string, string) {
					cfg := powerpunch.DefaultConfig()
					cfg.Scheme = s
					cfg.Width, cfg.Height = 4, 4
					cfg.WarmupCycles = 300
					cfg.MeasureCycles = 1500
					cfg.FullTick = fullTick
					cfg.Workers = workers
					probe := powerpunch.NewCountersProbe()
					var trace strings.Builder
					tw := powerpunch.NewEventTraceWriter(&trace)
					net, err := powerpunch.NewNetwork(cfg, powerpunch.WithObserver(probe, tw))
					if err != nil {
						t.Fatal(err)
					}
					defer net.Close()
					res := net.Run(powerpunch.NewSyntheticTraffic(powerpunch.Uniform(), 0.30, 11))
					if err := tw.Flush(); err != nil {
						t.Fatal(err)
					}
					var rep strings.Builder
					if err := probe.WriteReport(&rep); err != nil {
						t.Fatal(err)
					}
					return res, rep.String(), trace.String()
				}
				serial, serialProbe, serialTrace := run(0)
				par, parProbe, parTrace := run(4)
				if par != serial {
					t.Errorf("observed parallel result differs:\nserial   %+v\nparallel %+v", serial, par)
				}
				if parProbe != serialProbe {
					t.Errorf("probe reports differ:\nserial:\n%s\nparallel:\n%s", serialProbe, parProbe)
				}
				// The full JSONL event trace compares every event's kind,
				// node, cycle stamp, AND payload fields — the strictest
				// replay-order check available.
				if parTrace != serialTrace {
					t.Error("full event traces differ between serial and parallel runs")
				}
			})
		}
	}
}

// TestParallelWithChecks runs the parallel engine with the invariant
// engine attached (which disables flit pooling and observes every NI)
// and requires bit-identical results to the serial checked run — and no
// violations from either.
func TestParallelWithChecks(t *testing.T) {
	for _, s := range []powerpunch.Scheme{powerpunch.PowerPunchSignal, powerpunch.PowerPunchPG} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			run := func(workers int) (powerpunch.RunResult, string) {
				cfg := powerpunch.DefaultConfig()
				cfg.Scheme = s
				cfg.Width, cfg.Height = 4, 4
				cfg.WarmupCycles = 200
				cfg.MeasureCycles = 800
				cfg.Checks = true
				cfg.Workers = workers
				return runSynthetic(t, cfg, powerpunch.Uniform(), 0.30)
			}
			serial, serialRep := run(0)
			for _, workers := range []int{2, 8} {
				par, parRep := run(workers)
				if par != serial {
					t.Errorf("checked workers=%d result differs:\nserial   %+v\nparallel %+v",
						workers, serial, par)
				}
				if parRep != serialRep {
					t.Errorf("checked workers=%d reports differ", workers)
				}
			}
		})
	}
}

// TestParallelWorkloadDeliver exercises the deferred-Deliver path: a
// full-system CMP workload delivers every ejected packet to its
// coherence protocol handler, whose follow-up submissions (with fresh
// packet IDs) must observe the serial engine's exact callback order.
func TestParallelWorkloadDeliver(t *testing.T) {
	for _, s := range []powerpunch.Scheme{powerpunch.ConvOptPG, powerpunch.PowerPunchPG} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			run := func(workers int) (powerpunch.RunResult, int64) {
				prof, err := powerpunch.PARSECProfile("swaptions", 2000)
				if err != nil {
					t.Fatal(err)
				}
				cfg := powerpunch.DefaultConfig()
				cfg.Scheme = s
				cfg.Width, cfg.Height = 4, 4
				cfg.WarmupCycles = 0
				cfg.MeasureCycles = 1 << 40
				cfg.Workers = workers
				net, err := powerpunch.NewNetwork(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer net.Close()
				wl := powerpunch.NewWorkload(prof, net, 1)
				res := net.RunUntil(wl, 300_000)
				if !res.Drained {
					t.Fatal("workload incomplete")
				}
				return res, wl.ExecutionTime()
			}
			serial, serialExec := run(0)
			par, parExec := run(4)
			if par != serial || parExec != serialExec {
				t.Errorf("workload differs:\nserial   %+v exec=%d\nparallel %+v exec=%d",
					serial, serialExec, par, parExec)
			}
		})
	}
}
